#!/usr/bin/env python3
"""Validate a metrics export against the documented registry.

src/obs/README.md is the single source of truth for the metric
namespace: a markdown table of |`name`|kind|meaning| rows, where
`<shard>` and `<svc>` stand for non-negative integer indices. This
checker parses that table and verifies that every metric in an
exported file (Prometheus text, metrics CSV, or metrics JSON — the
three MetricsRegistry::writeFile formats) matches a documented name,
and, for Prometheus text, that its declared kind matches too.

CI runs it on the scenario-smoke artifacts, so a metric added in code
but not documented (or vice versa: a doc row that drifted from the
code) fails the build.

Usage: check_metrics_schema.py <obs-readme.md> <metrics-file>...
Exit status: 0 clean, 1 violations, 2 usage/parse error.
"""

import json
import pathlib
import re
import sys

TABLE_ROW = re.compile(r"^\|\s*`([^`]+)`\s*\|\s*(counter|gauge|histogram)\s*\|")
PROM_TYPE = re.compile(r"^# TYPE (\S+) (counter|gauge|histogram)$")


def load_registry(readme):
    """@return list of (regex, kind) from the README's registry table."""
    entries = []
    for line in readme.read_text(encoding="utf-8").splitlines():
        m = TABLE_ROW.match(line)
        if not m:
            continue
        name, kind = m.group(1), m.group(2)
        pat = re.escape(name)
        pat = pat.replace(re.escape("<shard>"), r"\d+")
        pat = pat.replace(re.escape("<svc>"), r"\d+")
        entries.append((re.compile("^" + pat + "$"), kind))
    return entries


def match(registry, name):
    """@return the documented kind for `name`, or None."""
    for pat, kind in registry:
        if pat.match(name):
            return kind
    return None


def names_from_prometheus(path):
    """@return [(name, declared_kind)] from # TYPE lines."""
    out = []
    for line in path.read_text(encoding="utf-8").splitlines():
        m = PROM_TYPE.match(line)
        if m:
            out.append((m.group(1), m.group(2)))
    return out


def names_from_csv(path):
    """@return [(name, None)] from the long-form t_s,name,value CSV."""
    names = []
    seen = set()
    for lineno, line in enumerate(
        path.read_text(encoding="utf-8").splitlines()
    ):
        if lineno == 0 and line.startswith("t_s,"):
            continue
        parts = line.split(",")
        if len(parts) == 3 and parts[1] not in seen:
            seen.add(parts[1])
            names.append((parts[1], None))
    return names


def names_from_json(path):
    """@return [(name, kind)] from the registry JSON dump."""
    doc = json.loads(path.read_text(encoding="utf-8"))
    return [
        (m["name"], m.get("kind"))
        for m in doc.get("metrics", [])
        if "name" in m
    ]


def check_file(registry, path):
    if path.suffix == ".csv":
        entries = names_from_csv(path)
    elif path.suffix == ".json":
        entries = names_from_json(path)
    else:
        entries = names_from_prometheus(path)
    if not entries:
        print(f"{path}: no metrics found (wrong format?)",
              file=sys.stderr)
        return 1

    bad = 0
    for name, declared_kind in entries:
        kind = match(registry, name)
        if kind is None:
            print(f"{path}: undocumented metric '{name}' "
                  "(add it to src/obs/README.md)")
            bad += 1
        elif declared_kind is not None and declared_kind != kind:
            print(f"{path}: '{name}' exported as {declared_kind} but "
                  f"documented as {kind}")
            bad += 1
    if bad == 0:
        print(f"{path}: {len(entries)} metric(s) match the registry")
    return bad


def main(argv):
    if len(argv) < 3:
        print(f"usage: {argv[0]} <obs-readme.md> <metrics-file>...",
              file=sys.stderr)
        return 2
    readme = pathlib.Path(argv[1])
    if not readme.is_file():
        print(f"{readme}: not a file", file=sys.stderr)
        return 2
    registry = load_registry(readme)
    if not registry:
        print(f"{readme}: no registry table rows found", file=sys.stderr)
        return 2

    total = 0
    for arg in argv[2:]:
        path = pathlib.Path(arg)
        if not path.is_file():
            print(f"{path}: not a file", file=sys.stderr)
            return 2
        total += check_file(registry, path)
    if total:
        print(f"check-metrics-schema: {total} violation(s)",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
