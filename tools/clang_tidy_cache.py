#!/usr/bin/env python3
"""Content-hash cache wrapper around clang-tidy.

run-clang-tidy re-analyzes the whole tree on every CI run even though
most files (and their include closures) did not change. This wrapper
keys each translation unit by a digest of everything that can affect
its diagnostics and replays the stored output on a hit:

  - the clang-tidy version string,
  - the .clang-tidy configuration,
  - the TU's compile command from compile_commands.json,
  - the TU's own bytes,
  - the bytes of every repo-local header in its quoted-include
    closure (system headers are assumed fixed within one toolchain
    version, which the version string already pins).

Cache layout: one <digest>.log file per TU under --cache-dir; the CI
job persists that directory with actions/cache. Misses run clang-tidy
with the shared build directory's compile_commands.json, so this job
and the thread-safety build analyze identical compile commands.

Exit status: 0 when no replayed-or-fresh output line matches
": error: " (the WarningsAsErrors gate), 1 otherwise, 2 on setup
errors. Warnings stay advisory, exactly like running clang-tidy raw.
"""

import argparse
import hashlib
import json
import os
import re
import subprocess
import sys

INCLUDE_RE = re.compile(r'^\s*#\s*include\s*"([^"]+)"', re.M)


def include_closure(path, include_dirs, seen):
    """Repo-local quoted-include closure of `path` (best effort: a
    miss just means the file hashes into the key directly)."""
    if path in seen:
        return
    seen.add(path)
    try:
        with open(path, encoding="utf-8", errors="replace") as f:
            text = f.read()
    except OSError:
        return
    for target in INCLUDE_RE.findall(text):
        for base in [os.path.dirname(path)] + include_dirs:
            cand = os.path.normpath(os.path.join(base, target))
            if os.path.isfile(cand):
                include_closure(cand, include_dirs, seen)
                break


def file_digest(path):
    h = hashlib.sha256()
    try:
        with open(path, "rb") as f:
            h.update(f.read())
    except OSError:
        h.update(b"<unreadable>")
    return h.hexdigest()


def tu_key(entry, tidy_version, config_bytes, include_dirs):
    h = hashlib.sha256()
    h.update(tidy_version.encode())
    h.update(config_bytes)
    h.update(entry.get("command", " ".join(
        entry.get("arguments", []))).encode())
    closure = set()
    include_closure(entry["abs_file"], include_dirs, closure)
    for dep in sorted(closure):
        h.update(dep.encode())
        h.update(file_digest(dep).encode())
    return h.hexdigest()


def compile_include_dirs(entry):
    """-I / -isystem directories out of one compile command."""
    args = entry.get("arguments")
    if not args:
        args = entry.get("command", "").split()
    dirs = []
    i = 0
    while i < len(args):
        a = args[i]
        if a in ("-I", "-isystem") and i + 1 < len(args):
            dirs.append(args[i + 1])
            i += 2
            continue
        if a.startswith("-I"):
            dirs.append(a[2:])
        i += 1
    cwd = entry.get("directory", ".")
    return [d if os.path.isabs(d) else os.path.join(cwd, d)
            for d in dirs]


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("--build-dir", required=True,
                    help="directory holding compile_commands.json")
    ap.add_argument("--cache-dir", required=True)
    ap.add_argument("--clang-tidy", default="clang-tidy")
    ap.add_argument("--source-filter", default=r"/src/|/tests/",
                    help="regex; only matching TUs are analyzed")
    args = ap.parse_args()

    db_path = os.path.join(args.build_dir, "compile_commands.json")
    try:
        with open(db_path, encoding="utf-8") as f:
            db = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print("clang-tidy-cache: cannot load %s: %s" % (db_path, e),
              file=sys.stderr)
        return 2
    try:
        tidy_version = subprocess.run(
            [args.clang_tidy, "--version"], capture_output=True,
            text=True, check=True).stdout.strip()
    except (OSError, subprocess.CalledProcessError) as e:
        print("clang-tidy-cache: cannot run %s: %s"
              % (args.clang_tidy, e), file=sys.stderr)
        return 2

    config_bytes = b""
    for parent in (os.getcwd(), os.path.dirname(os.getcwd())):
        cfg = os.path.join(parent, ".clang-tidy")
        if os.path.isfile(cfg):
            with open(cfg, "rb") as f:
                config_bytes = f.read()
            break

    os.makedirs(args.cache_dir, exist_ok=True)
    source_filter = re.compile(args.source_filter)
    hits = misses = 0
    failed = False
    for entry in db:
        path = entry["file"]
        if not os.path.isabs(path):
            path = os.path.join(entry.get("directory", "."), path)
        entry["abs_file"] = os.path.normpath(path)
        if not source_filter.search(entry["abs_file"]):
            continue
        key = tu_key(entry, tidy_version, config_bytes,
                     compile_include_dirs(entry))
        log = os.path.join(args.cache_dir, key + ".log")
        if os.path.isfile(log):
            hits += 1
            with open(log, encoding="utf-8") as f:
                output = f.read()
        else:
            misses += 1
            proc = subprocess.run(
                [args.clang_tidy, "-p", args.build_dir,
                 entry["abs_file"]],
                capture_output=True, text=True)
            output = proc.stdout
            # Hard tool failures (crash, bad flags) must not be
            # cached as "clean" — surface and fail the run instead.
            if proc.returncode != 0 and ": error: " not in output:
                print(output, end="")
                print(proc.stderr, file=sys.stderr, end="")
                print("clang-tidy-cache: %s exited %d on %s"
                      % (args.clang_tidy, proc.returncode,
                         entry["abs_file"]), file=sys.stderr)
                return 2
            with open(log, "w", encoding="utf-8") as f:
                f.write(output)
        if output.strip():
            print(output, end="")
        if ": error: " in output:
            failed = True
    print("clang-tidy-cache: %d cached, %d analyzed"
          % (hits, misses), file=sys.stderr)
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
