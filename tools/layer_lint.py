#!/usr/bin/env python3
"""Layer lint: enforce the declared module-dependency DAG over src/.

Builds the quoted-#include graph of every .h/.cc under src/ and checks
it against tools/layers.json, which declares — per module (= first
directory component under src/) — the set of other modules that module
may include from. See tools/README.md for the rules and the escape
hatch.

Checks
  1. layers.json itself must be a DAG (a cycle in the *declaration* is
     rejected even before any source file is read).
  2. Every module directory under src/ must be declared, and every
     declared module must exist.
  3. A file may only include (a) its own module, (b) modules listed for
     its module in layers.json.
  4. Includes of .cc files are always rejected (no reaching into
     another translation unit's internals).
  5. Waivers that no longer suppress anything are themselves errors, so
     stale escape hatches cannot accumulate.

Escape hatch (mirrors determinism_lint.py):
  // layer-lint: allow(<module>)       on the include line or the line
                                       directly above it
  // layer-lint: allow-file(<module>)  anywhere in the file

Exit status: 0 clean, 1 violations, 2 usage/config error.
"""

import json
import os
import re
import sys

INCLUDE_RE = re.compile(r'^\s*#\s*include\s*"([^"]+)"')
ALLOW_RE = re.compile(r"//\s*layer-lint:\s*allow\(([A-Za-z0-9_,\s-]+)\)")
ALLOW_FILE_RE = re.compile(
    r"//\s*layer-lint:\s*allow-file\(([A-Za-z0-9_,\s-]+)\)")

SOURCE_EXTS = (".h", ".hpp", ".cc", ".cpp")


def strip_block_comments(text):
    """Blank out /* ... */ spans, preserving newlines so line numbers
    survive. Line comments are kept: waivers live in them."""
    out = []
    i, n = 0, len(text)
    while i < n:
        if text.startswith("/*", i):
            end = text.find("*/", i + 2)
            if end < 0:
                end = n
            else:
                end += 2
            out.append("".join(c if c == "\n" else " "
                               for c in text[i:end]))
            i = end
        else:
            out.append(text[i])
            i += 1
    return "".join(out)


def check_dag(modules):
    """Return a cycle (list of module names) in the declared graph, or
    None when it is acyclic."""
    WHITE, GREY, BLACK = 0, 1, 2
    color = {m: WHITE for m in modules}
    stack = []

    def visit(m):
        color[m] = GREY
        stack.append(m)
        for dep in modules[m]:
            if dep not in modules:
                continue  # reported separately
            if color[dep] == GREY:
                return stack[stack.index(dep):] + [dep]
            if color[dep] == WHITE:
                cyc = visit(dep)
                if cyc:
                    return cyc
        stack.pop()
        color[m] = BLACK
        return None

    for m in modules:
        if color[m] == WHITE:
            cyc = visit(m)
            if cyc:
                return cyc
    return None


def module_of(relpath):
    """src-relative path -> module name, or None for files at the
    src/ root (none exist today; flagged if one appears)."""
    parts = relpath.replace(os.sep, "/").split("/")
    return parts[0] if len(parts) > 1 else None


def lint_file(path, relpath, modules, violations):
    mod = module_of(relpath)
    if mod is None:
        violations.append((relpath, 0,
                           "file sits at the src/ root; move it into a "
                           "module directory"))
        return
    if mod not in modules:
        violations.append((relpath, 0,
                           "module '%s' is not declared in "
                           "tools/layers.json" % mod))
        return
    allowed = set(modules[mod]) | {mod}

    with open(path, encoding="utf-8", errors="replace") as f:
        text = strip_block_comments(f.read())
    lines = text.split("\n")

    file_allows = {}  # module -> first declaration line, for staleness
    used_file_allows = set()
    for ln, line in enumerate(lines, 1):
        m = ALLOW_FILE_RE.search(line)
        if m:
            for name in m.group(1).split(","):
                file_allows.setdefault(name.strip(), ln)

    for ln, line in enumerate(lines, 1):
        m = INCLUDE_RE.match(line)
        if not m:
            # A line-level waiver with no waivable include on it or
            # directly below it is stale.
            a = ALLOW_RE.search(line)
            if a and not ALLOW_FILE_RE.search(line):
                below = lines[ln] if ln < len(lines) else ""
                if not INCLUDE_RE.match(below):
                    violations.append(
                        (relpath, ln,
                         "stale waiver: no #include on this line or "
                         "the next"))
            continue
        target = m.group(1)
        if target.endswith((".cc", ".cpp")):
            violations.append(
                (relpath, ln,
                 "includes translation-unit internals '%s'" % target))
            continue
        tmod = target.replace(os.sep, "/").split("/")[0]
        if tmod not in modules:
            # Quoted include that is not one of our modules (e.g. a
            # vendored header); out of scope for the layer check.
            continue
        if tmod in allowed:
            continue
        waivers = []
        a = ALLOW_RE.search(line)
        if a:
            waivers += [x.strip() for x in a.group(1).split(",")]
        if ln >= 2:
            a = ALLOW_RE.search(lines[ln - 2])
            if a and not INCLUDE_RE.match(lines[ln - 2]):
                waivers += [x.strip() for x in a.group(1).split(",")]
        if tmod in waivers:
            continue
        if tmod in file_allows:
            used_file_allows.add(tmod)
            continue
        violations.append(
            (relpath, ln,
             "module '%s' may not include from '%s' "
             "(layers.json deps: %s)" %
             (mod, tmod, ", ".join(sorted(modules[mod])) or "none")))

    for name, ln in sorted(file_allows.items()):
        if name not in used_file_allows:
            violations.append(
                (relpath, ln,
                 "stale allow-file(%s): no include from '%s' needs it"
                 % (name, name)))


def main(argv):
    if len(argv) != 3:
        print("usage: layer_lint.py <src-dir> <layers.json>",
              file=sys.stderr)
        return 2
    src_dir, layers_path = argv[1], argv[2]
    try:
        with open(layers_path, encoding="utf-8") as f:
            modules = json.load(f)["modules"]
    except (OSError, KeyError, json.JSONDecodeError) as e:
        print("layer-lint: cannot load %s: %s" % (layers_path, e),
              file=sys.stderr)
        return 2

    cycle = check_dag(modules)
    if cycle:
        print("layer-lint: layers.json declares a cycle: %s"
              % " -> ".join(cycle), file=sys.stderr)
        return 2

    present = set()
    violations = []
    for root, dirs, files in os.walk(src_dir):
        dirs.sort()
        for name in sorted(files):
            if not name.endswith(SOURCE_EXTS):
                continue
            path = os.path.join(root, name)
            relpath = os.path.relpath(path, src_dir)
            mod = module_of(relpath)
            if mod:
                present.add(mod)
            lint_file(path, relpath, modules, violations)

    for mod in sorted(set(modules) - present):
        violations.append(
            ("tools/layers.json", 0,
             "declared module '%s' has no sources under src/" % mod))

    for relpath, ln, msg in violations:
        where = "%s:%d" % (relpath, ln) if ln else relpath
        print("%s: %s" % (where, msg))
    if violations:
        print("layer-lint: %d violation(s)" % len(violations),
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
