#!/usr/bin/env python3
"""Unit tests for tools/determinism_lint.py (the lint linting itself).

Each case writes a small C++ snippet to a temp tree and asserts which
rules fire — known-bad snippets must be caught, known-good ones must
stay silent, and the allow()/allow-file() escape hatches plus the
string/comment edge cases must behave. Registered as the
`determinism_lint_selftest` ctest.
"""

import pathlib
import sys
import tempfile
import unittest

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))

import determinism_lint  # noqa: E402


class LintFileTest(unittest.TestCase):
    def setUp(self):
        self._tmp = tempfile.TemporaryDirectory()
        self.root = pathlib.Path(self._tmp.name)

    def tearDown(self):
        self._tmp.cleanup()

    def lint(self, source, name="snippet.cc"):
        path = self.root / name
        path.write_text(source, encoding="utf-8")
        return determinism_lint.lint_file(path)

    def rules(self, source, name="snippet.cc"):
        return [rule for _, rule, _ in self.lint(source, name)]

    # ---- known-bad snippets -------------------------------------------

    def test_std_rand_fires(self):
        self.assertEqual(self.rules("int x = std::rand();"),
                         ["std-rand"])

    def test_bare_rand_call_fires(self):
        self.assertEqual(self.rules("int x = rand();"), ["std-rand"])

    def test_random_device_fires(self):
        self.assertEqual(self.rules("std::random_device rd;"),
                         ["random-device"])

    def test_wall_clock_fires(self):
        self.assertEqual(
            self.rules("auto t = std::chrono::system_clock::now();"),
            ["wall-clock"])
        self.assertEqual(self.rules("std::time_t t = time(nullptr);"),
                         ["wall-clock"])

    def test_locale_fires(self):
        self.assertEqual(self.rules('setlocale(LC_ALL, "de_DE");'),
                         ["locale-format"])

    def test_violation_reports_line_number(self):
        out = self.lint("int a;\nint b;\nint c = std::rand();\n")
        self.assertEqual([(3, "std-rand")],
                         [(ln, rule) for ln, rule, _ in out])

    # ---- known-good snippets ------------------------------------------

    def test_seeded_engine_is_clean(self):
        self.assertEqual(
            self.rules("std::mt19937_64 rng(seed);\n"
                       "uint64_t x = rng();\n"), [])

    def test_identifier_containing_rand_is_clean(self):
        # \b / [^_\w] guards: operand, strand, my_rand are not rand().
        self.assertEqual(
            self.rules("int operand(int); int x = my_rand(3);"), [])

    def test_runtime_identifier_is_clean(self):
        # "runtime(" must not match the time( pattern.
        self.assertEqual(self.rules("double r = runtime(cfg);"), [])

    # ---- escape hatches -----------------------------------------------

    def test_allow_same_line(self):
        src = "t = time(nullptr);  // determinism-lint: allow(wall-clock)"
        self.assertEqual(self.rules(src), [])

    def test_allow_line_above(self):
        src = ("// determinism-lint: allow(wall-clock)\n"
               "t = time(nullptr);\n")
        self.assertEqual(self.rules(src), [])

    def test_allow_wrong_rule_does_not_suppress(self):
        src = "t = time(nullptr);  // determinism-lint: allow(std-rand)"
        self.assertEqual(self.rules(src), ["wall-clock"])

    def test_allow_two_lines_above_does_not_suppress(self):
        src = ("// determinism-lint: allow(wall-clock)\n"
               "\n"
               "t = time(nullptr);\n")
        self.assertEqual(self.rules(src), ["wall-clock"])

    def test_allow_file_waives_rule_everywhere(self):
        src = ("// determinism-lint: allow-file(wall-clock)\n"
               "t = time(nullptr);\n"
               "u = std::chrono::system_clock::now();\n")
        self.assertEqual(self.rules(src), [])

    def test_allow_file_waives_only_named_rule(self):
        src = ("// determinism-lint: allow-file(wall-clock)\n"
               "t = time(nullptr);\n"
               "int x = std::rand();\n")
        self.assertEqual(self.rules(src), ["std-rand"])

    # ---- comment and string-literal edge cases ------------------------

    def test_line_comment_does_not_fire(self):
        self.assertEqual(self.rules("// calls time() eventually"), [])

    def test_block_comment_does_not_fire(self):
        src = "/* std::rand() is banned\n   time(nullptr) too */\nint x;\n"
        self.assertEqual(self.rules(src), [])

    def test_string_literal_does_not_fire(self):
        src = 'const char* m = "do not call std::rand() or time()";'
        self.assertEqual(self.rules(src), [])

    def test_string_with_comment_opener_does_not_hide_code(self):
        # The "/*" inside the string must not swallow the next line.
        src = ('const char* url = "http://x/*y";\n'
               "int x = std::rand();\n")
        self.assertEqual([(2, "std-rand")],
                         [(ln, rule) for ln, rule, _ in self.lint(src)])

    def test_string_with_line_comment_does_not_hide_code(self):
        src = 'f("//header", std::rand());'
        self.assertEqual(self.rules(src), ["std-rand"])

    def test_escaped_quote_in_string(self):
        src = 'const char* m = "quote \\" then std::rand()";'
        self.assertEqual(self.rules(src), [])

    def test_raw_string_does_not_fire(self):
        src = 'const char* m = R"(std::rand() time(0))";'
        self.assertEqual(self.rules(src), [])

    def test_multiline_raw_string(self):
        # Contents spanning lines are ignored; code after the
        # terminator is linted again.
        src = ('const char* m = R"doc(\n'
               "  std::rand() inside the raw string\n"
               ')doc";\n'
               "int x = std::rand();\n")
        self.assertEqual([(4, "std-rand")],
                         [(ln, rule) for ln, rule, _ in self.lint(src)])

    def test_digit_separator_is_not_char_literal(self):
        # The ' in 1'000'000 must not open a literal that would hide
        # the rest of the line.
        src = "size_t n = 1'000'000; int x = std::rand();"
        self.assertEqual(self.rules(src), ["std-rand"])

    def test_char_literal_quote_does_not_hide_code(self):
        src = "if (c == '\"') x = std::rand();"
        self.assertEqual(self.rules(src), ["std-rand"])

    # ---- unordered-iteration ------------------------------------------

    def test_unordered_iteration_fires(self):
        src = ("std::unordered_map<int, int> m;\n"
               "for (auto& kv : m) use(kv);\n")
        self.assertEqual(self.rules(src), ["unordered-iteration"])

    def test_unordered_begin_fires(self):
        src = ("std::unordered_set<int> seen;\n"
               "auto it = seen.begin();\n")
        self.assertEqual(self.rules(src), ["unordered-iteration"])

    def test_vector_iteration_is_clean(self):
        src = ("std::vector<int> v;\n"
               "for (int x : v) use(x);\n")
        self.assertEqual(self.rules(src), [])

    def test_companion_header_decl_detected(self):
        (self.root / "thing.h").write_text(
            "struct T { std::unordered_map<int, int> table_; };\n",
            encoding="utf-8")
        src = "for (auto& kv : table_) use(kv);\n"
        self.assertEqual(self.rules(src, name="thing.cc"),
                         ["unordered-iteration"])

    def test_unordered_lookup_is_clean(self):
        src = ("std::unordered_map<int, int> m;\n"
               "auto it = m.find(3);\n"
               "m[4] = 5;\n")
        self.assertEqual(self.rules(src), [])


class MainTest(unittest.TestCase):
    def test_exit_codes(self):
        with tempfile.TemporaryDirectory() as tmp:
            root = pathlib.Path(tmp)
            (root / "good.cc").write_text("int x = 1;\n",
                                          encoding="utf-8")
            self.assertEqual(
                determinism_lint.main(["determinism_lint.py", tmp]), 0)
            (root / "bad.cc").write_text("int x = std::rand();\n",
                                         encoding="utf-8")
            self.assertEqual(
                determinism_lint.main(["determinism_lint.py", tmp]), 1)
        self.assertEqual(
            determinism_lint.main(["determinism_lint.py"]), 2)


if __name__ == "__main__":
    unittest.main()
