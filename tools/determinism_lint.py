#!/usr/bin/env python3
"""Source-level determinism lint for the Hercules tree.

The simulator's contract is bit-identical results for identical specs
and seeds — across runs, machines, and thread counts (the serial ==
pooled golden pins in tests/ depend on it). This lint bans the C++
constructs that silently break that contract. It is registered as the
`determinism_lint` ctest, so a violation fails tier-1.

Rules (see tools/README.md for the rationale and examples):

  std-rand            std::rand/srand/rand(): ambient global RNG.
                      Use util::SplitMix64 / seeded std::mt19937_64.
  random-device       std::random_device: hardware entropy, different
                      every run. Seeds come from the spec.
  wall-clock          time(...)/std::time/system_clock::now/
                      steady_clock::now/localtime/gmtime in
                      result-affecting code.
  unordered-iteration Iterating a std::unordered_map/unordered_set
                      declared in the same file: bucket order is
                      implementation-defined and seed-dependent, so
                      anything derived from the traversal (files,
                      sums, schedules) varies. Iterate a sorted copy
                      or keep a side vector in insertion order.
  locale-format       setlocale/std::locale/imbue: "%f" suddenly
                      prints "0,5" under a European locale, breaking
                      golden files and CSV round-trips.

Escape hatch — when a use is deliberate and result-neutral (e.g. a
provenance timestamp in a log header), annotate the offending line or
the line directly above it:

    // determinism-lint: allow(wall-clock)

A file whose whole purpose is such a use (e.g. the self-profiling
wall timer obs/self_profile.h) can waive one rule file-wide with a
top-of-file directive instead of annotating every line:

    // determinism-lint: allow-file(wall-clock)

Exit status: 0 clean, 1 violations, 2 usage error.
"""

import pathlib
import re
import sys

RULES = [
    ("std-rand", re.compile(r"\bstd::rand\b|\bsrand\s*\(|[^_\w]rand\s*\(")),
    ("random-device", re.compile(r"\brandom_device\b")),
    (
        "wall-clock",
        re.compile(
            r"\btime\s*\(|system_clock::now|steady_clock::now"
            r"|\blocaltime\b|\bgmtime\b"
        ),
    ),
    (
        "locale-format",
        re.compile(r"\bsetlocale\s*\(|std::locale\b|\.imbue\s*\("),
    ),
]

ALLOW = re.compile(r"//\s*determinism-lint:\s*allow\(([a-z-]+)\)")
ALLOW_FILE = re.compile(
    r"//\s*determinism-lint:\s*allow-file\(([a-z-]+)\)"
)
UNORDERED_DECL = re.compile(
    r"\bunordered_(?:map|set|multimap|multiset)\s*<[^;]*?>\s+(\w+)"
)
SUFFIXES = {".cc", ".h", ".cpp", ".hpp"}


def allowed(rule, line, prev_line):
    for text in (line, prev_line):
        m = ALLOW.search(text)
        if m and m.group(1) == rule:
            return True
    return False


RAW_START = re.compile(r'(?:u8|u|U|L)?R"([^\s()\\]{0,16})\(')


def strip_non_code(lines):
    """Reduce each line to lintable code: drop comments (// and
    /*...*/, including multi-line) and the *contents* of string, raw
    string (R"delim(...)delim", including multi-line) and character
    literals. Keeps the line count, so a pattern inside a string —
    `printf("seeded, no time() call")` — or a string containing `//`
    or `/*` can neither fire a rule nor derail the comment scanner.
    C++14 digit separators (1'000'000) are not char literals."""
    out = []
    state = "code"  # code | block-comment | raw-string
    raw_end = ""
    for line in lines:
        buf = []
        i = 0
        n = len(line)
        while i < n:
            if state == "block-comment":
                end = line.find("*/", i)
                if end == -1:
                    i = n
                else:
                    state = "code"
                    i = end + 2
                continue
            if state == "raw-string":
                end = line.find(raw_end, i)
                if end == -1:
                    i = n
                else:
                    state = "code"
                    i = end + len(raw_end)
                continue
            c = line[i]
            if c == "/" and line.startswith("//", i):
                break
            if c == "/" and line.startswith("/*", i):
                state = "block-comment"
                i += 2
                continue
            m = RAW_START.match(line, i)
            if m and not (i > 0 and (line[i - 1].isalnum()
                                     or line[i - 1] == "_")):
                buf.append('""')
                raw_end = ')' + m.group(1) + '"'
                end = line.find(raw_end, m.end())
                if end == -1:
                    state = "raw-string"
                    i = n
                else:
                    i = end + len(raw_end)
                continue
            if c == '"':
                buf.append('""')
                i += 1
                while i < n:
                    if line[i] == "\\":
                        i += 2
                    elif line[i] == '"':
                        i += 1
                        break
                    else:
                        i += 1
                continue
            if c == "'":
                prev_c = line[i - 1] if i > 0 else ""
                next_c = line[i + 1] if i + 1 < n else ""
                if prev_c.isalnum() and next_c.isalnum():
                    buf.append(c)  # digit separator, not a literal
                    i += 1
                    continue
                buf.append("''")
                i += 1
                while i < n:
                    if line[i] == "\\":
                        i += 2
                    elif line[i] == "'":
                        i += 1
                        break
                    else:
                        i += 1
                continue
            buf.append(c)
            i += 1
        out.append("".join(buf))
    return out


def unordered_decls(lines):
    names = set()
    for line in lines:
        for m in UNORDERED_DECL.finditer(line):
            names.add(m.group(1))
    return names


def file_waivers(lines):
    """Rules waived file-wide by allow-file(...) directives."""
    waived = set()
    for line in lines:
        for m in ALLOW_FILE.finditer(line):
            waived.add(m.group(1))
    return waived


def lint_file(path):
    violations = []
    lines = path.read_text(encoding="utf-8").splitlines()
    code_lines = strip_non_code(lines)
    waived = file_waivers(lines)

    # Names declared as unordered containers in this file — plus, for a
    # .cc, in its companion header: members live in the .h while the
    # order-sensitive traversal lives in the .cc.
    unordered_names = unordered_decls(code_lines)
    if path.suffix in {".cc", ".cpp"}:
        for header_suffix in (".h", ".hpp"):
            header = path.with_suffix(header_suffix)
            if header.is_file():
                unordered_names |= unordered_decls(
                    strip_non_code(
                        header.read_text(
                            encoding="utf-8"
                        ).splitlines()
                    )
                )
    iter_pats = []
    if unordered_names:
        names = "|".join(re.escape(n) for n in sorted(unordered_names))
        iter_pats = [
            re.compile(r":\s*(?:this->)?(?:" + names + r")\s*\)"),
            re.compile(r"\b(?:" + names + r")\s*\.\s*(?:c?begin)\s*\("),
        ]

    prev = ""
    for lineno, (line, stripped) in enumerate(
        zip(lines, code_lines), 1
    ):
        code = stripped
        for rule, pat in RULES:
            if rule in waived:
                continue
            if pat.search(code) and not allowed(rule, line, prev):
                violations.append((lineno, rule, line.strip()))
        for pat in iter_pats:
            if "unordered-iteration" in waived:
                continue
            if pat.search(code) and not allowed(
                "unordered-iteration", line, prev
            ):
                violations.append(
                    (lineno, "unordered-iteration", line.strip())
                )
        prev = line
    return violations


def main(argv):
    if len(argv) != 2:
        print(f"usage: {argv[0]} <source-root>", file=sys.stderr)
        return 2
    root = pathlib.Path(argv[1])
    if not root.is_dir():
        print(f"{root}: not a directory", file=sys.stderr)
        return 2

    total = 0
    files = 0
    for path in sorted(root.rglob("*")):
        if path.suffix not in SUFFIXES:
            continue
        files += 1
        for lineno, rule, text in lint_file(path):
            total += 1
            print(f"{path}:{lineno}: [{rule}] {text}")
    if total:
        print(
            f"determinism-lint: {total} violation(s) in {files} file(s); "
            "fix or annotate with "
            "'// determinism-lint: allow(<rule>)'",
            file=sys.stderr,
        )
        return 1
    print(f"determinism-lint: {files} files clean")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
