#!/usr/bin/env python3
"""Unit tests for tools/layer_lint.py.

Builds miniature src/ trees plus a layers declaration in a temp dir
and asserts the DAG checks, include checks, waiver handling, and exit
codes. Registered as the `layer_lint_selftest` ctest.
"""

import contextlib
import io
import json
import pathlib
import sys
import tempfile
import unittest

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))

import layer_lint  # noqa: E402


class LayerLintTest(unittest.TestCase):
    def setUp(self):
        self._tmp = tempfile.TemporaryDirectory()
        self.root = pathlib.Path(self._tmp.name)
        self.src = self.root / "src"
        self.src.mkdir()

    def tearDown(self):
        self._tmp.cleanup()

    def write(self, relpath, text):
        path = self.src / relpath
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(text, encoding="utf-8")

    def layers(self, modules):
        path = self.root / "layers.json"
        path.write_text(json.dumps({"modules": modules}),
                        encoding="utf-8")
        return path

    def run_lint(self, modules):
        layers = self.layers(modules)
        out, err = io.StringIO(), io.StringIO()
        with contextlib.redirect_stdout(out), \
                contextlib.redirect_stderr(err):
            rc = layer_lint.main(
                ["layer_lint.py", str(self.src), str(layers)])
        return rc, out.getvalue(), err.getvalue()

    # ---- DAG validation -----------------------------------------------

    def test_clean_tree_passes(self):
        self.write("util/log.h", "#pragma once\n")
        self.write("sim/des.h", '#include "util/log.h"\n')
        rc, out, _ = self.run_lint({"util": [], "sim": ["util"]})
        self.assertEqual(rc, 0, out)

    def test_cycle_in_declaration_is_config_error(self):
        self.write("a/a.h", "")
        self.write("b/b.h", "")
        rc, _, err = self.run_lint({"a": ["b"], "b": ["a"]})
        self.assertEqual(rc, 2)
        self.assertIn("cycle", err)

    def test_self_cycle_rejected(self):
        self.write("a/a.h", "")
        rc, _, err = self.run_lint({"a": ["a"]})
        self.assertEqual(rc, 2)
        self.assertIn("cycle", err)

    # ---- include checks -----------------------------------------------

    def test_upward_include_rejected(self):
        self.write("util/log.h", '#include "sim/des.h"\n')
        self.write("sim/des.h", "")
        rc, out, _ = self.run_lint({"util": [], "sim": ["util"]})
        self.assertEqual(rc, 1)
        self.assertIn("util/log.h:1", out)
        self.assertIn("may not include from 'sim'", out)

    def test_same_module_include_allowed(self):
        self.write("util/a.h", '#include "util/b.h"\n')
        self.write("util/b.h", "")
        rc, out, _ = self.run_lint({"util": []})
        self.assertEqual(rc, 0, out)

    def test_transitive_dep_is_not_implicit(self):
        # core may use sim, sim may use util; core -> util still needs
        # its own declared edge.
        self.write("util/log.h", "")
        self.write("sim/des.h", "")
        self.write("core/engine.h", '#include "util/log.h"\n')
        rc, out, _ = self.run_lint(
            {"util": [], "sim": ["util"], "core": ["sim"]})
        self.assertEqual(rc, 1)
        self.assertIn("may not include from 'util'", out)

    def test_cc_include_rejected_even_within_module(self):
        self.write("sim/a.cc", '#include "sim/b.cc"\n')
        self.write("sim/b.cc", "")
        rc, out, _ = self.run_lint({"sim": []})
        self.assertEqual(rc, 1)
        self.assertIn("translation-unit internals", out)

    def test_system_and_foreign_includes_ignored(self):
        self.write("util/log.h",
                   "#include <vector>\n"
                   '#include "third_party/fmt.h"\n')
        rc, out, _ = self.run_lint({"util": []})
        self.assertEqual(rc, 0, out)

    def test_include_in_block_comment_ignored(self):
        self.write("util/log.h",
                   '/*\n#include "sim/des.h"\n*/\n')
        self.write("sim/des.h", "")
        rc, out, _ = self.run_lint({"util": [], "sim": ["util"]})
        self.assertEqual(rc, 0, out)

    def test_undeclared_module_flagged(self):
        self.write("rogue/x.h", "")
        rc, out, _ = self.run_lint({"util": []})
        self.assertEqual(rc, 1)
        self.assertIn("not declared", out)

    def test_declared_module_without_sources_flagged(self):
        self.write("util/log.h", "")
        rc, out, _ = self.run_lint({"util": [], "ghost": []})
        self.assertEqual(rc, 1)
        self.assertIn("ghost", out)
        self.assertIn("no sources", out)

    # ---- waivers ------------------------------------------------------

    def test_waiver_same_line(self):
        self.write("util/log.h",
                   '#include "sim/des.h"  // layer-lint: allow(sim)\n')
        self.write("sim/des.h", "")
        rc, out, _ = self.run_lint({"util": [], "sim": ["util"]})
        self.assertEqual(rc, 0, out)

    def test_waiver_line_above(self):
        self.write("util/log.h",
                   "// layer-lint: allow(sim)\n"
                   '#include "sim/des.h"\n')
        self.write("sim/des.h", "")
        rc, out, _ = self.run_lint({"util": [], "sim": ["util"]})
        self.assertEqual(rc, 0, out)

    def test_waiver_for_wrong_module_does_not_suppress(self):
        self.write("util/log.h",
                   '#include "sim/des.h"  // layer-lint: allow(core)\n')
        self.write("sim/des.h", "")
        self.write("core/engine.h", '#include "util/log.h"\n')
        rc, out, _ = self.run_lint(
            {"util": [], "sim": ["util"], "core": ["util"]})
        self.assertEqual(rc, 1)
        self.assertIn("may not include from 'sim'", out)

    def test_stale_line_waiver_flagged(self):
        self.write("util/log.h",
                   "// layer-lint: allow(sim)\n"
                   "int x;\n")
        self.write("sim/des.h", "")
        rc, out, _ = self.run_lint({"util": [], "sim": ["util"]})
        self.assertEqual(rc, 1)
        self.assertIn("stale waiver", out)

    def test_allow_file_waiver(self):
        self.write("util/log.h",
                   "// layer-lint: allow-file(sim)\n"
                   '#include "sim/des.h"\n'
                   '#include "sim/event.h"\n')
        self.write("sim/des.h", "")
        self.write("sim/event.h", "")
        rc, out, _ = self.run_lint({"util": [], "sim": ["util"]})
        self.assertEqual(rc, 0, out)

    def test_stale_allow_file_flagged(self):
        self.write("util/log.h",
                   "// layer-lint: allow-file(sim)\n"
                   "int x;\n")
        self.write("sim/des.h", "")
        rc, out, _ = self.run_lint({"util": [], "sim": ["util"]})
        self.assertEqual(rc, 1)
        self.assertIn("stale allow-file(sim)", out)

    # ---- usage / config errors ----------------------------------------

    def test_missing_layers_file_is_config_error(self):
        err = io.StringIO()
        with contextlib.redirect_stderr(err):
            rc = layer_lint.main(
                ["layer_lint.py", str(self.src),
                 str(self.root / "nope.json")])
        self.assertEqual(rc, 2)

    def test_bad_usage(self):
        err = io.StringIO()
        with contextlib.redirect_stderr(err):
            rc = layer_lint.main(["layer_lint.py"])
        self.assertEqual(rc, 2)


if __name__ == "__main__":
    unittest.main()
