/**
 * @file
 * Tests of the provisioning policies: constraint compliance for all
 * four provisioners, the paper's cost ordering (Hercules <= priority <=
 * greedy <= NH in provisioned power), and the §III-C competition
 * scenario where greedy misallocates the contested NMP servers.
 */
#include <gtest/gtest.h>

#include "cluster/provision.h"
#include "util/rng.h"

namespace hercules::cluster {
namespace {

using hw::ServerType;
using model::ModelId;

/**
 * The §III-C scenario: CPU, CPU+NMP, CPU+GPU serving RMC1 and RMC2.
 * CPU+NMP is the most efficient for both, but RMC2 gains more from it
 * (paper: 2.04x vs 1.75x over CPU).
 */
ProvisionProblem
characterizationProblem()
{
    ProvisionProblem p({ServerType::T2, ServerType::T3, ServerType::T7},
                       {70, 15, 5},
                       {ModelId::DlrmRmc1, ModelId::DlrmRmc2});
    // (qps, power) tuples shaped after Fig 8(a): NMP best for both,
    // with a larger margin on RMC2.
    p.setPerf(0, 0, {true, 2500.0, 160.0});   // T2 / RMC1
    p.setPerf(0, 1, {true, 900.0, 160.0});    // T2 / RMC2
    p.setPerf(1, 0, {true, 4400.0, 165.0});   // T3 / RMC1 (1.75x eff)
    p.setPerf(1, 1, {true, 1850.0, 165.0});   // T3 / RMC2 (2.04x eff)
    p.setPerf(2, 0, {true, 3200.0, 250.0});   // T7 / RMC1
    p.setPerf(2, 1, {true, 1100.0, 250.0});   // T7 / RMC2
    return p;
}

TEST(Allocation, ZeroShape)
{
    ProvisionProblem p = characterizationProblem();
    Allocation a = Allocation::zero(p);
    EXPECT_EQ(a.activatedServers(), 0);
    EXPECT_DOUBLE_EQ(a.provisionedPowerW(p), 0.0);
    EXPECT_TRUE(a.withinAvailability(p));
}

TEST(Allocation, AccountingMatchesHandComputation)
{
    ProvisionProblem p = characterizationProblem();
    Allocation a = Allocation::zero(p);
    a.n[1][0] = 2;  // two T3 for RMC1
    a.n[0][1] = 3;  // three T2 for RMC2
    EXPECT_EQ(a.activatedServers(), 5);
    EXPECT_EQ(a.activatedOfType(1), 2);
    EXPECT_DOUBLE_EQ(a.coverageQps(p, 0), 8800.0);
    EXPECT_DOUBLE_EQ(a.coverageQps(p, 1), 2700.0);
    EXPECT_DOUBLE_EQ(a.provisionedPowerW(p), 2 * 165.0 + 3 * 160.0);
}

TEST(Allocation, SatisfiesChecksOverprovisionRate)
{
    ProvisionProblem p = characterizationProblem();
    Allocation a = Allocation::zero(p);
    a.n[1][0] = 1;  // 4400 QPS for RMC1
    std::vector<double> loads = {4000.0, 0.0};
    EXPECT_TRUE(a.satisfies(p, loads, 0.05));   // needs 4200
    EXPECT_FALSE(a.satisfies(p, loads, 0.15));  // needs 4600
}

/** All four policies must produce valid allocations. */
class PolicyCompliance : public ::testing::TestWithParam<int>
{
  protected:
    std::unique_ptr<Provisioner>
    makePolicy(int which)
    {
        switch (which) {
          case 0: return std::make_unique<HerculesProvisioner>();
          case 1: return std::make_unique<GreedyProvisioner>();
          case 2: return std::make_unique<PriorityAwareProvisioner>();
          default: return std::make_unique<NhProvisioner>(5);
        }
    }
};

TEST_P(PolicyCompliance, MeetsLoadsWithinAvailability)
{
    ProvisionProblem p = characterizationProblem();
    auto policy = makePolicy(GetParam());
    std::vector<double> loads = {30'000.0, 12'000.0};
    Allocation a = policy->provision(p, loads, 0.05);
    EXPECT_TRUE(a.withinAvailability(p)) << policy->name();
    EXPECT_TRUE(a.satisfies(p, loads, 0.05)) << policy->name();
}

TEST_P(PolicyCompliance, ZeroLoadZeroServers)
{
    ProvisionProblem p = characterizationProblem();
    auto policy = makePolicy(GetParam());
    std::vector<double> loads = {0.0, 0.0};
    Allocation a = policy->provision(p, loads, 0.05);
    EXPECT_EQ(a.activatedServers(), 0) << policy->name();
}

TEST_P(PolicyCompliance, OverCapacityBestEffort)
{
    ProvisionProblem p = characterizationProblem();
    auto policy = makePolicy(GetParam());
    // Far beyond the ~430K total capacity: policies must allocate a
    // large share of the fleet without exceeding availability.
    std::vector<double> loads = {1e7, 1e7};
    Allocation a = policy->provision(p, loads, 0.0);
    EXPECT_TRUE(a.withinAvailability(p)) << policy->name();
    EXPECT_FALSE(a.satisfies(p, loads, 0.0)) << policy->name();
    EXPECT_GT(a.activatedServers(), 60) << policy->name();
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, PolicyCompliance,
                         ::testing::Range(0, 4));

TEST(PolicyOrdering, HerculesNoWorseThanGreedy)
{
    ProvisionProblem p = characterizationProblem();
    HerculesProvisioner hercules;
    GreedyProvisioner greedy;
    std::vector<double> loads = {45'000.0, 25'000.0};
    double ph = hercules.provision(p, loads, 0.05).provisionedPowerW(p);
    double pg = greedy.provision(p, loads, 0.05).provisionedPowerW(p);
    EXPECT_LE(ph, pg + 1e-6);
}

TEST(PolicyOrdering, GreedyNoWorseThanNhOnAverage)
{
    ProvisionProblem p = characterizationProblem();
    GreedyProvisioner greedy;
    std::vector<double> loads = {45'000.0, 25'000.0};
    double pg = greedy.provision(p, loads, 0.05).provisionedPowerW(p);
    double nh_sum = 0.0;
    const int trials = 7;
    for (int s = 0; s < trials; ++s) {
        NhProvisioner nh(static_cast<uint64_t>(s) + 1);
        nh_sum += nh.provision(p, loads, 0.05).provisionedPowerW(p);
    }
    EXPECT_LE(pg, nh_sum / trials + 1e-6);
}

TEST(PolicyOrdering, PriorityFixesNmpContention)
{
    // §III-C: when RMC1 and RMC2 compete for the 15 CPU+NMP servers,
    // greedy divides the pool between them without regard for who
    // benefits most; the priority-aware scheduler hands the pool to the
    // bigger marginal gainer (RMC2) and saves provisioned power.
    ProvisionProblem p = characterizationProblem();
    GreedyProvisioner greedy;
    PriorityAwareProvisioner priority;
    std::vector<double> loads = {50'000.0, 25'000.0};
    Allocation ag = greedy.provision(p, loads, 0.02);
    Allocation ap = priority.provision(p, loads, 0.02);
    ASSERT_TRUE(ag.satisfies(p, loads, 0.02));
    ASSERT_TRUE(ap.satisfies(p, loads, 0.02));
    // Greedy splits the NMP pool across both workloads; priority gives
    // RMC2 strictly more of it.
    EXPECT_GT(ag.n[1][0], 0);
    EXPECT_GT(ag.n[1][1], 0);
    EXPECT_GT(ap.n[1][1], ag.n[1][1]);
    EXPECT_LE(ap.provisionedPowerW(p), ag.provisionedPowerW(p));
}

TEST(Hercules, BeatsGreedyUnderContention)
{
    // The LP sees the global picture; under heavy competition for the
    // small efficient pool it must strictly win.
    ProvisionProblem p = characterizationProblem();
    HerculesProvisioner hercules;
    GreedyProvisioner greedy;
    std::vector<double> loads = {50'000.0, 28'000.0};
    double ph = hercules.provision(p, loads, 0.02).provisionedPowerW(p);
    double pg = greedy.provision(p, loads, 0.02).provisionedPowerW(p);
    EXPECT_LT(ph, pg);
}

TEST(Hercules, MatchesLpOnIntegerFriendlyInstance)
{
    // When the LP optimum is integral, the repair must not distort it.
    ProvisionProblem p({ServerType::T2, ServerType::T3}, {10, 10},
                       {ModelId::DlrmRmc1});
    p.setPerf(0, 0, {true, 1000.0, 200.0});
    p.setPerf(1, 0, {true, 1000.0, 100.0});
    HerculesProvisioner hercules;
    std::vector<double> loads = {5000.0};
    Allocation a = hercules.provision(p, loads, 0.0);
    // 5 of the cheap type, none of the expensive.
    EXPECT_EQ(a.n[1][0], 5);
    EXPECT_EQ(a.n[0][0], 0);
    EXPECT_DOUBLE_EQ(a.provisionedPowerW(p), 500.0);
}

TEST(Hercules, InfeasiblePairsNeverUsed)
{
    ProvisionProblem p({ServerType::T2, ServerType::T7}, {10, 10},
                       {ModelId::Din});
    p.setPerf(0, 0, {true, 500.0, 150.0});
    p.setPerf(1, 0, PairPerf{});  // infeasible pair
    HerculesProvisioner hercules;
    Allocation a = hercules.provision(p, {2000.0}, 0.0);
    EXPECT_EQ(a.n[1][0], 0);
    EXPECT_GE(a.n[0][0], 4);
}

TEST(FromTable, BuildsFromEfficiencyEntries)
{
    core::EfficiencyTable table;
    core::EfficiencyEntry e;
    e.server = ServerType::T2;
    e.model = ModelId::DlrmRmc1;
    e.feasible = true;
    e.qps = 1234.0;
    e.power_w = 150.0;
    table.set(e);
    ProvisionProblem p = ProvisionProblem::fromTable(
        table, {ServerType::T2, ServerType::T3}, {ModelId::DlrmRmc1});
    EXPECT_TRUE(p.perf(0, 0).feasible);
    EXPECT_DOUBLE_EQ(p.perf(0, 0).qps, 1234.0);
    EXPECT_FALSE(p.perf(1, 0).feasible);  // unprofiled pair
    EXPECT_EQ(p.availability(0), 100);    // catalog default
}

TEST(FromTable, TotalCapacity)
{
    ProvisionProblem p = characterizationProblem();
    EXPECT_DOUBLE_EQ(p.totalCapacity(0),
                     70 * 2500.0 + 15 * 4400.0 + 5 * 3200.0);
}

/**
 * Randomized cost-ordering property: across random instances the LP
 * policy never provisions more power than greedy, and greedy (averaged
 * over NH seeds) never more than NH.
 */
class RandomInstanceOrdering : public ::testing::TestWithParam<int>
{
};

TEST_P(RandomInstanceOrdering, HerculesLeqGreedy)
{
    Rng rng(static_cast<uint64_t>(GetParam()) * 104729 + 3);
    std::vector<ServerType> servers = {ServerType::T1, ServerType::T3,
                                       ServerType::T7};
    std::vector<int> avail = {
        static_cast<int>(rng.uniformInt(5, 60)),
        static_cast<int>(rng.uniformInt(3, 20)),
        static_cast<int>(rng.uniformInt(2, 10))};
    std::vector<ModelId> models = {ModelId::DlrmRmc1, ModelId::DlrmRmc2,
                                   ModelId::Din};
    ProvisionProblem p(servers, avail, models);
    for (int h = 0; h < 3; ++h)
        for (int m = 0; m < 3; ++m)
            p.setPerf(h, m, {true, rng.uniform(500.0, 5000.0),
                             rng.uniform(100.0, 400.0)});
    std::vector<double> loads;
    for (int m = 0; m < 3; ++m)
        loads.push_back(rng.uniform(0.1, 0.5) * p.totalCapacity(m));

    HerculesProvisioner hercules;
    GreedyProvisioner greedy;
    Allocation ah = hercules.provision(p, loads, 0.05);
    Allocation ag = greedy.provision(p, loads, 0.05);
    EXPECT_TRUE(ah.withinAvailability(p));
    if (ah.satisfies(p, loads, 0.05) && ag.satisfies(p, loads, 0.05)) {
        EXPECT_LE(ah.provisionedPowerW(p),
                  ag.provisionedPowerW(p) + 1e-6);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomInstanceOrdering,
                         ::testing::Range(0, 15));

}  // namespace
}  // namespace hercules::cluster
