/**
 * @file
 * Conformance tests of the hardware catalog against Table II, and of
 * the power model's physical bounds.
 */
#include <gtest/gtest.h>

#include "hw/power.h"
#include "hw/server.h"

namespace hercules::hw {
namespace {

TEST(Specs, CpuT1MatchesTable2)
{
    CpuSpec c = cpuT1();
    EXPECT_EQ(c.name, "Intel Xeon D-2191");
    EXPECT_DOUBLE_EQ(c.freq_ghz, 1.6);
    EXPECT_EQ(c.cores, 18);
    EXPECT_DOUBLE_EQ(c.tdp_w, 86.0);
}

TEST(Specs, CpuT2MatchesTable2)
{
    CpuSpec c = cpuT2();
    EXPECT_EQ(c.name, "Intel Xeon Gold 6138");
    EXPECT_DOUBLE_EQ(c.freq_ghz, 2.0);
    EXPECT_EQ(c.cores, 20);
    EXPECT_DOUBLE_EQ(c.tdp_w, 125.0);
}

TEST(Specs, CpuEffectiveRateScalesWithClock)
{
    EXPECT_GT(cpuT2().effGflopsPerCore(), cpuT1().effGflopsPerCore());
}

TEST(Specs, MemoryCapacitiesMatchTable2)
{
    EXPECT_EQ(ddr4T1().capacity_gb, 64);
    EXPECT_EQ(ddr4T2().capacity_gb, 128);
    EXPECT_EQ(nmpX(2).capacity_gb, 128);
    EXPECT_EQ(nmpX(4).capacity_gb, 256);
    EXPECT_EQ(nmpX(8).capacity_gb, 512);
}

TEST(Specs, MemoryTdpsMatchTable2)
{
    EXPECT_DOUBLE_EQ(ddr4T1().tdp_w, 28.0);
    EXPECT_DOUBLE_EQ(ddr4T2().tdp_w, 50.0);
    EXPECT_DOUBLE_EQ(nmpX(2).tdp_w, 50.0);
    EXPECT_DOUBLE_EQ(nmpX(4).tdp_w, 100.0);
    EXPECT_DOUBLE_EQ(nmpX(8).tdp_w, 200.0);
}

TEST(Specs, NmpRankParallelism)
{
    EXPECT_EQ(nmpX(2).totalRanks(), 8);
    EXPECT_EQ(nmpX(4).totalRanks(), 16);
    EXPECT_EQ(nmpX(8).totalRanks(), 32);
    EXPECT_EQ(ddr4T1().totalRanks(), 4);
    EXPECT_EQ(ddr4T2().totalRanks(), 8);
}

TEST(SpecsDeath, InvalidNmpConfigIsFatal)
{
    EXPECT_DEATH(nmpX(3), "unsupported");
}

TEST(Specs, GpuMatchTable2)
{
    GpuSpec p = gpuP100();
    GpuSpec v = gpuV100();
    EXPECT_EQ(p.sms, 56);
    EXPECT_EQ(v.sms, 80);
    EXPECT_DOUBLE_EQ(p.boost_mhz, 1480.0);
    EXPECT_DOUBLE_EQ(v.boost_mhz, 1530.0);
    EXPECT_EQ(p.mem_gb, 16);
    EXPECT_EQ(v.mem_gb, 16);
    EXPECT_DOUBLE_EQ(v.pcie_gbps, 16.0);
    EXPECT_DOUBLE_EQ(v.tdp_w, 300.0);
}

TEST(Specs, V100FasterThanP100)
{
    EXPECT_GT(gpuV100().peakTflops(), gpuP100().peakTflops());
    // V100 fp32 peak is ~15.7 TFLOP/s.
    EXPECT_NEAR(gpuV100().peakTflops(), 15.7, 0.3);
}

TEST(Catalog, TenServerTypes)
{
    EXPECT_EQ(serverCatalog().size(), 10u);
    EXPECT_EQ(allServerTypes().size(), 10u);
}

TEST(Catalog, AvailabilitiesMatchTable2)
{
    const std::vector<int> expected = {100, 100, 15, 10, 5,
                                       10,  5,   6,  4,  2};
    for (size_t i = 0; i < expected.size(); ++i)
        EXPECT_EQ(serverCatalog()[i].availability, expected[i])
            << "T" << (i + 1);
}

TEST(Catalog, GpuAndNmpFlags)
{
    EXPECT_FALSE(serverSpec(ServerType::T1).hasGpu());
    EXPECT_FALSE(serverSpec(ServerType::T2).hasNmp());
    EXPECT_TRUE(serverSpec(ServerType::T3).hasNmp());
    EXPECT_TRUE(serverSpec(ServerType::T7).hasGpu());
    EXPECT_TRUE(serverSpec(ServerType::T8).hasGpu());
    EXPECT_TRUE(serverSpec(ServerType::T8).hasNmp());
}

TEST(Catalog, T6UsesP100RestUseV100)
{
    EXPECT_EQ(serverSpec(ServerType::T6).gpu->name, "NVIDIA P100");
    for (ServerType t : {ServerType::T7, ServerType::T8, ServerType::T9,
                         ServerType::T10})
        EXPECT_EQ(serverSpec(t).gpu->name, "NVIDIA V100");
}

TEST(Catalog, NamesAreDescriptive)
{
    EXPECT_EQ(serverSpec(ServerType::T2).name, "CPU-T2");
    EXPECT_EQ(serverSpec(ServerType::T3).name, "CPU-T2+NMPx2");
    EXPECT_EQ(serverSpec(ServerType::T10).name, "CPU-T2+NMPx8+V100");
}

TEST(Power, IdleBelowPeak)
{
    for (const auto& s : serverCatalog()) {
        PowerModel p(s);
        EXPECT_LT(p.idlePowerW(), p.peakPowerW()) << s.name;
        EXPECT_GT(p.idlePowerW(), 0.0) << s.name;
    }
}

TEST(Power, PeakBoundedByComponentTdps)
{
    for (const auto& s : serverCatalog()) {
        PowerModel p(s);
        // NMP PU idle power slightly exceeds the DIMM TDP budget line,
        // so allow that documented margin.
        double margin = s.hasNmp() ? 1.5 * s.mem.totalRanks() : 0.0;
        EXPECT_LE(p.peakPowerW(), s.maxPowerW() + margin + 1e-9)
            << s.name;
    }
}

TEST(Power, MonotoneInUtilization)
{
    PowerModel p(serverSpec(ServerType::T7));
    double prev = -1.0;
    for (double u = 0.0; u <= 1.0; u += 0.1) {
        double w = p.serverPowerW(Utilization{u, u, u});
        EXPECT_GT(w, prev);
        prev = w;
    }
}

TEST(Power, UtilizationClamped)
{
    PowerModel p(serverSpec(ServerType::T2));
    EXPECT_DOUBLE_EQ(p.cpuPowerW(-1.0), p.cpuPowerW(0.0));
    EXPECT_DOUBLE_EQ(p.cpuPowerW(2.0), p.cpuPowerW(1.0));
}

TEST(Power, GpuZeroWithoutGpu)
{
    PowerModel p(serverSpec(ServerType::T2));
    EXPECT_DOUBLE_EQ(p.gpuPowerW(1.0), 0.0);
}

TEST(Power, GpuLeakageIsSubstantial)
{
    // The paper attributes weak GPU energy efficiency partly to high
    // leakage: idle GPU power must be a noticeable TDP fraction.
    PowerModel p(serverSpec(ServerType::T7));
    EXPECT_GT(p.gpuPowerW(0.0), 0.10 * 300.0);
}

TEST(Power, NmpIdleTax)
{
    // More NMP DIMMs/PUs -> more idle power (why NMPx8 loses QPS/W on
    // one-hot models, Fig 15).
    PowerModel t2(serverSpec(ServerType::T2));
    PowerModel t3(serverSpec(ServerType::T3));
    PowerModel t5(serverSpec(ServerType::T5));
    EXPECT_GT(t3.idlePowerW(), t2.idlePowerW());
    EXPECT_GT(t5.idlePowerW(), t3.idlePowerW());
}

/** Every catalog entry behaves like a physical machine. */
class CatalogEveryServer : public ::testing::TestWithParam<ServerType>
{
};

TEST_P(CatalogEveryServer, SaneSpec)
{
    const ServerSpec& s = serverSpec(GetParam());
    EXPECT_GT(s.cpu.cores, 0);
    EXPECT_GT(s.cpu.freq_ghz, 0.0);
    EXPECT_GT(s.mem.peakBwGbps(), 0.0);
    EXPECT_GT(s.mem.capacityBytes(), 0);
    EXPECT_GT(s.availability, 0);
    if (s.hasGpu()) {
        EXPECT_GT(s.gpu->peakTflops(), 0.0);
        EXPECT_GT(s.gpu->memBytes(), 0);
    }
}

INSTANTIATE_TEST_SUITE_P(AllTypes, CatalogEveryServer,
                         ::testing::ValuesIn(allServerTypes()));

}  // namespace
}  // namespace hercules::hw
