/**
 * @file
 * Tests for the computation-graph IR: construction, topological order,
 * stage queries and dependency-chain analysis.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <unordered_set>

#include "model/graph.h"

namespace hercules::model {
namespace {

FcParams
fc(int in, int out)
{
    FcParams p;
    p.in_dim = in;
    p.out_dim = out;
    return p;
}

EmbeddingParams
emb(int64_t rows, int dim)
{
    EmbeddingParams p;
    p.rows = rows;
    p.emb_dim = dim;
    p.pooled = true;
    p.pooling_min = p.pooling_max = 10;
    return p;
}

TEST(Graph, AddAndQueryNodes)
{
    Graph g;
    int a = g.addNode("emb0", emb(100, 32), Stage::Sparse);
    int b = g.addNode("fc0", fc(32, 16), Stage::Dense, {a});
    EXPECT_EQ(g.size(), 2);
    EXPECT_EQ(g.node(a).name, "emb0");
    EXPECT_EQ(g.node(b).deps, std::vector<int>{a});
    EXPECT_EQ(g.node(a).kind(), OpKind::EmbeddingLookup);
    EXPECT_EQ(g.node(b).kind(), OpKind::Fc);
}

TEST(Graph, FindNode)
{
    Graph g;
    g.addNode("x", fc(1, 1), Stage::Dense);
    EXPECT_EQ(g.findNode("x"), 0);
    EXPECT_EQ(g.findNode("nope"), -1);
}

TEST(GraphDeath, DuplicateNameIsFatal)
{
    Graph g;
    g.addNode("x", fc(1, 1), Stage::Dense);
    EXPECT_DEATH(g.addNode("x", fc(1, 1), Stage::Dense), "duplicate");
}

TEST(GraphDeath, UnknownDepIsFatal)
{
    Graph g;
    EXPECT_DEATH(g.addNode("x", fc(1, 1), Stage::Dense, {5}), "unknown");
}

TEST(Graph, TopoOrderRespectsDeps)
{
    Graph g;
    int a = g.addNode("a", fc(1, 1), Stage::Dense);
    int b = g.addNode("b", fc(1, 1), Stage::Dense, {a});
    int c = g.addNode("c", fc(1, 1), Stage::Dense, {a});
    int d = g.addNode("d", fc(1, 1), Stage::Dense, {b, c});
    const auto& order = g.topoOrder();
    ASSERT_EQ(order.size(), 4u);
    auto pos = [&](int id) {
        return std::find(order.begin(), order.end(), id) - order.begin();
    };
    EXPECT_LT(pos(a), pos(b));
    EXPECT_LT(pos(a), pos(c));
    EXPECT_LT(pos(b), pos(d));
    EXPECT_LT(pos(c), pos(d));
}

TEST(Graph, TopoOrderCachedAndInvalidated)
{
    Graph g;
    int a = g.addNode("a", fc(1, 1), Stage::Dense);
    EXPECT_EQ(g.topoOrder().size(), 1u);
    g.addNode("b", fc(1, 1), Stage::Dense, {a});
    EXPECT_EQ(g.topoOrder().size(), 2u);
}

TEST(Graph, StageQueries)
{
    Graph g;
    g.addNode("e0", emb(10, 8), Stage::Sparse);
    g.addNode("e1", emb(10, 8), Stage::Sparse);
    g.addNode("f", fc(8, 4), Stage::Dense);
    EXPECT_EQ(g.stageNodes(Stage::Sparse).size(), 2u);
    EXPECT_EQ(g.stageNodes(Stage::Dense).size(), 1u);
    EXPECT_TRUE(g.hasStage(Stage::Sparse));
    EXPECT_TRUE(g.hasStage(Stage::Dense));
}

TEST(Graph, HasStageFalseWhenAbsent)
{
    Graph g;
    g.addNode("f", fc(8, 4), Stage::Dense);
    EXPECT_FALSE(g.hasStage(Stage::Sparse));
}

TEST(Graph, Roots)
{
    Graph g;
    int a = g.addNode("a", fc(1, 1), Stage::Dense);
    g.addNode("b", fc(1, 1), Stage::Dense, {a});
    int c = g.addNode("c", fc(1, 1), Stage::Dense);
    auto roots = g.roots();
    EXPECT_EQ(roots, (std::vector<int>{a, c}));
}

TEST(Graph, CriticalPathChainVsParallel)
{
    Graph g;
    // A chain of 4 plus 3 independent nodes.
    int a = g.addNode("a", fc(1, 1), Stage::Dense);
    int b = g.addNode("b", fc(1, 1), Stage::Dense, {a});
    int c = g.addNode("c", fc(1, 1), Stage::Dense, {b});
    int d = g.addNode("d", fc(1, 1), Stage::Dense, {c});
    int p0 = g.addNode("p0", fc(1, 1), Stage::Dense);
    int p1 = g.addNode("p1", fc(1, 1), Stage::Dense);
    int p2 = g.addNode("p2", fc(1, 1), Stage::Dense);

    EXPECT_EQ(g.criticalPathLength({a, b, c, d}), 4);
    EXPECT_EQ(g.criticalPathLength({p0, p1, p2}), 1);
    EXPECT_EQ(g.criticalPathLength({a, b, p0}), 2);
    EXPECT_EQ(g.criticalPathLength({}), 0);
}

TEST(Graph, CriticalPathIgnoresOutsideDeps)
{
    Graph g;
    int a = g.addNode("a", fc(1, 1), Stage::Dense);
    int b = g.addNode("b", fc(1, 1), Stage::Dense, {a});
    // Restricted to {b}, the chain through `a` is invisible.
    EXPECT_EQ(g.criticalPathLength({b}), 1);
}

TEST(OpKindNames, AllDistinct)
{
    std::unordered_set<std::string> names;
    for (OpKind k : {OpKind::EmbeddingLookup, OpKind::Fc, OpKind::Attention,
                     OpKind::Gru, OpKind::Interaction, OpKind::Concat,
                     OpKind::Activation})
        names.insert(opKindName(k));
    EXPECT_EQ(names.size(), 7u);
}

TEST(OpKindOf, MatchesVariantAlternative)
{
    EXPECT_EQ(opKindOf(OpParams{fc(1, 2)}), OpKind::Fc);
    EXPECT_EQ(opKindOf(OpParams{emb(10, 4)}), OpKind::EmbeddingLookup);
    EXPECT_EQ(opKindOf(OpParams{GruParams{}}), OpKind::Gru);
    EXPECT_EQ(opKindOf(OpParams{AttentionParams{}}), OpKind::Attention);
    EXPECT_EQ(opKindOf(OpParams{InteractionParams{}}),
              OpKind::Interaction);
    EXPECT_EQ(opKindOf(OpParams{ConcatParams{}}), OpKind::Concat);
    EXPECT_EQ(opKindOf(OpParams{ActivationParams{}}), OpKind::Activation);
}

TEST(EmbeddingParams, Helpers)
{
    EmbeddingParams p = emb(1000, 32);
    p.pooling_min = 20;
    p.pooling_max = 160;
    EXPECT_DOUBLE_EQ(p.avgPooling(), 90.0);
    EXPECT_EQ(p.tableBytes(), 1000 * 32 * 4);
}

}  // namespace
}  // namespace hercules::model
