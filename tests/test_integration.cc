/**
 * @file
 * End-to-end integration tests: the full Hercules pipeline from offline
 * profiling through online cluster provisioning, cross-module
 * determinism, and the paper's headline dominance relations on
 * actually-profiled (not synthetic) efficiency tuples.
 */
#include <gtest/gtest.h>

#include "cluster/cluster_manager.h"
#include "cluster/evolution.h"
#include "core/profiler.h"
#include "sched/baselines.h"

namespace hercules {
namespace {

using cluster::Allocation;
using cluster::ClusterWorkload;
using cluster::GreedyProvisioner;
using cluster::HerculesProvisioner;
using cluster::NhProvisioner;
using cluster::ProvisionProblem;
using hw::ServerType;
using model::ModelId;

sched::SearchOptions
fastSearch()
{
    sched::SearchOptions opt;
    opt.measure.sim.num_queries = 250;
    opt.measure.sim.warmup_queries = 50;
    opt.measure.bisect_iters = 4;
    opt.space.batches = {64, 256};
    opt.space.fusion_limits = {0, 2000};
    opt.space.max_gpu_threads = 2;
    opt.space.host_helper_threads = {2};
    return opt;
}

/** Shared profiled table for the pipeline tests (built once). */
const core::EfficiencyTable&
profiledTable()
{
    static const core::EfficiencyTable table = [] {
        core::ProfilerOptions popt;
        popt.search = fastSearch();
        popt.servers = {ServerType::T2, ServerType::T3, ServerType::T7};
        popt.models = {ModelId::DlrmRmc1, ModelId::DlrmRmc2};
        return core::offlineProfile(popt);
    }();
    return table;
}

TEST(Pipeline, OfflineProfileAllPairsFeasible)
{
    const core::EfficiencyTable& t = profiledTable();
    EXPECT_EQ(t.entries().size(), 6u);
    for (const auto& e : t.entries()) {
        EXPECT_TRUE(e.feasible)
            << hw::serverTypeName(e.server) << "/"
            << model::modelName(e.model);
        EXPECT_GT(e.qps, 0.0);
        EXPECT_GT(e.power_w, 0.0);
        EXPECT_GT(e.qps_per_watt, 0.0);
    }
}

TEST(Pipeline, NmpServerBeatsCpuForPooledModels)
{
    const core::EfficiencyTable& t = profiledTable();
    for (ModelId mid : {ModelId::DlrmRmc1, ModelId::DlrmRmc2}) {
        const auto* cpu = t.get(ServerType::T2, mid);
        const auto* nmp = t.get(ServerType::T3, mid);
        ASSERT_TRUE(cpu && nmp);
        EXPECT_GT(nmp->qps, cpu->qps) << model::modelName(mid);
        EXPECT_GT(nmp->qps_per_watt, cpu->qps_per_watt)
            << model::modelName(mid);
    }
}

TEST(Pipeline, Fig8aNmpGainLargerForRmc2)
{
    // The §III-C premise: RMC2 gains more energy efficiency from NMP
    // than RMC1 (paper: 2.04x vs 1.75x).
    const core::EfficiencyTable& t = profiledTable();
    auto gain = [&](ModelId mid) {
        return t.get(ServerType::T3, mid)->qps_per_watt /
               t.get(ServerType::T2, mid)->qps_per_watt;
    };
    // At the reduced probe sizes this suite uses, the two gains land
    // within measurement noise of each other; assert the paper's band
    // (~1.7-2.1x) rather than their strict ordering (the full-quality
    // bench_fig08 run reproduces the ordering itself).
    EXPECT_GT(gain(ModelId::DlrmRmc2), 0.85 * gain(ModelId::DlrmRmc1));
    EXPECT_GT(gain(ModelId::DlrmRmc1), 1.3);
    EXPECT_LT(gain(ModelId::DlrmRmc1), 3.0);
    EXPECT_GT(gain(ModelId::DlrmRmc2), 1.3);
    EXPECT_LT(gain(ModelId::DlrmRmc2), 3.0);
}

TEST(Pipeline, ProvisionFromProfiledTableSatisfiesLoads)
{
    ProvisionProblem p = ProvisionProblem::fromTable(
        profiledTable(), {ServerType::T2, ServerType::T3, ServerType::T7},
        {ModelId::DlrmRmc1, ModelId::DlrmRmc2}, {70, 15, 5});
    std::vector<double> loads = {0.4 * p.totalCapacity(0),
                                 0.4 * p.totalCapacity(1)};
    HerculesProvisioner hercules;
    Allocation a = hercules.provision(p, loads, 0.05);
    EXPECT_TRUE(a.withinAvailability(p));
    EXPECT_TRUE(a.satisfies(p, loads, 0.05));
}

TEST(Pipeline, HerculesNeverWorseThanGreedyOnProfiledTuples)
{
    ProvisionProblem p = ProvisionProblem::fromTable(
        profiledTable(), {ServerType::T2, ServerType::T3, ServerType::T7},
        {ModelId::DlrmRmc1, ModelId::DlrmRmc2}, {70, 15, 5});
    HerculesProvisioner hercules;
    GreedyProvisioner greedy;
    // Fractions are of each model's own whole-fleet capacity; the two
    // workloads share the fleet, so stay below ~0.4 each to remain in
    // the feasible regime where the dominance guarantee applies (beyond
    // it both policies degrade to best-effort coverage).
    for (double frac : {0.1, 0.2, 0.3, 0.4}) {
        std::vector<double> loads = {frac * p.totalCapacity(0),
                                     frac * p.totalCapacity(1)};
        Allocation ah = hercules.provision(p, loads, 0.05);
        Allocation ag = greedy.provision(p, loads, 0.05);
        if (!ag.satisfies(p, loads, 0.05))
            continue;  // over fleet capacity: no power guarantee
        EXPECT_TRUE(ah.satisfies(p, loads, 0.05))
            << "load fraction " << frac;
        EXPECT_LE(ah.provisionedPowerW(p),
                  ag.provisionedPowerW(p) + 1e-6)
            << "load fraction " << frac;
    }
}

TEST(Pipeline, FullDayClusterRunOrdering)
{
    ProvisionProblem p = ProvisionProblem::fromTable(
        profiledTable(), {ServerType::T2, ServerType::T3, ServerType::T7},
        {ModelId::DlrmRmc1, ModelId::DlrmRmc2}, {70, 15, 5});
    std::vector<ClusterWorkload> workloads(2);
    workloads[0].model = ModelId::DlrmRmc1;
    workloads[0].load.peak_qps = 0.35 * p.totalCapacity(0);
    workloads[0].load.seed = 1;
    workloads[1].model = ModelId::DlrmRmc2;
    workloads[1].load.peak_qps = 0.35 * p.totalCapacity(1);
    workloads[1].load.seed = 2;

    cluster::ClusterManagerOptions opt;
    HerculesProvisioner hercules;
    GreedyProvisioner greedy;
    NhProvisioner nh(5);
    auto rh = cluster::runCluster(p, workloads, hercules, opt);
    auto rg = cluster::runCluster(p, workloads, greedy, opt);
    auto rn = cluster::runCluster(p, workloads, nh, opt);
    EXPECT_EQ(rh.unsatisfied_intervals, 0);
    // The paper's ordering: Hercules <= greedy <= NH provisioned power.
    EXPECT_LE(rh.avg_power_w, rg.avg_power_w + 1e-6);
    EXPECT_LE(rg.avg_power_w, rn.avg_power_w + 1e-6);
}

TEST(Pipeline, EfficiencyTableCsvRoundtripDrivesSameProvision)
{
    std::string path = ::testing::TempDir() + "/hercules_integration.csv";
    profiledTable().writeCsv(path);
    core::EfficiencyTable loaded = core::EfficiencyTable::readCsv(path);

    std::vector<ServerType> servers = {ServerType::T2, ServerType::T3,
                                       ServerType::T7};
    std::vector<ModelId> models = {ModelId::DlrmRmc1, ModelId::DlrmRmc2};
    ProvisionProblem p1 = ProvisionProblem::fromTable(
        profiledTable(), servers, models, {70, 15, 5});
    ProvisionProblem p2 =
        ProvisionProblem::fromTable(loaded, servers, models, {70, 15, 5});
    std::vector<double> loads = {10'000.0, 2'000.0};
    HerculesProvisioner hercules;
    Allocation a1 = hercules.provision(p1, loads, 0.05);
    Allocation a2 = hercules.provision(p2, loads, 0.05);
    EXPECT_EQ(a1.n, a2.n);
    std::remove(path.c_str());
}

TEST(Pipeline, SearchIsDeterministic)
{
    model::Model m = model::buildModel(ModelId::DlrmRmc1);
    sched::SearchResult a = sched::herculesTaskSearch(
        hw::serverSpec(ServerType::T2), m, 20.0, fastSearch());
    sched::SearchResult b = sched::herculesTaskSearch(
        hw::serverSpec(ServerType::T2), m, 20.0, fastSearch());
    ASSERT_TRUE(a.best && b.best);
    EXPECT_EQ(a.best->str(), b.best->str());
    EXPECT_DOUBLE_EQ(a.best_qps, b.best_qps);
    EXPECT_EQ(a.evals, b.evals);
}

TEST(Pipeline, ElementwiseFusionAblation)
{
    // Disabling operator fusion adds per-op dispatch overhead and can
    // only hurt (or match) throughput.
    model::Model m = model::buildModel(ModelId::DlrmRmc3);
    const hw::ServerSpec& server = hw::serverSpec(ServerType::T2);
    sched::SchedulingConfig cfg;
    cfg.mapping = sched::Mapping::CpuModelBased;
    cfg.cpu_threads = 10;
    cfg.cores_per_thread = 2;
    cfg.batch = 128;
    sim::MeasureOptions mo = fastSearch().measure;
    cfg.fuse_elementwise = true;
    auto fused = sim::measureLatencyBoundedQps(server, m, cfg, 50.0, mo);
    cfg.fuse_elementwise = false;
    auto raw = sim::measureLatencyBoundedQps(server, m, cfg, 50.0, mo);
    ASSERT_TRUE(fused && raw);
    EXPECT_GE(fused->qps, raw->qps * 0.98);
}

TEST(Pipeline, EvolutionIncreasesCpuOnlyDemand)
{
    // Successor models need more CPU-only servers per QPS than the
    // DLRMs they replace — the Fig 16 driver.
    core::ProfilerOptions popt;
    popt.search = fastSearch();
    popt.servers = {ServerType::T2};
    popt.models = {ModelId::DlrmRmc1, ModelId::Din};
    core::EfficiencyTable t = core::offlineProfile(popt);
    const auto* legacy = t.get(ServerType::T2, ModelId::DlrmRmc1);
    const auto* successor = t.get(ServerType::T2, ModelId::Din);
    ASSERT_TRUE(legacy && successor);
    EXPECT_GT(legacy->qps, 1.5 * successor->qps);
}

TEST(Pipeline, OnlinePowerBudgetPropagates)
{
    // Online setup under the offline-provisioned budget never exceeds
    // it — the online-serving constraint of Fig 9(a).
    model::Model m = model::buildModel(ModelId::DlrmRmc1);
    const hw::ServerSpec& server = hw::serverSpec(ServerType::T2);
    core::EfficiencyEntry offline =
        core::profilePair(server, m, 20.0, fastSearch());
    ASSERT_TRUE(offline.feasible);
    core::EfficiencyEntry online = core::onlineSetup(
        server, m, 20.0, offline.power_w, fastSearch());
    ASSERT_TRUE(online.feasible);
    EXPECT_LE(online.power_w, offline.power_w + 1e-9);
}

}  // namespace
}  // namespace hercules
