/**
 * @file
 * Tests of the HW-aware partitioner: S-D subgraphs, locality-aware hot
 * embedding split (capacity compliance, hit-rate monotonicity) and
 * elementwise operator fusion.
 */
#include <gtest/gtest.h>

#include "model/footprint.h"
#include "model/partition.h"

namespace hercules::model {
namespace {

TEST(Subgraph, SparseContainsOnlyEmbeddings)
{
    Model m = buildModel(ModelId::DlrmRmc1);
    Graph s = sparseSubgraph(m.graph);
    EXPECT_EQ(s.size(), m.num_tables);
    for (const auto& n : s.nodes())
        EXPECT_EQ(n.kind(), OpKind::EmbeddingLookup);
}

TEST(Subgraph, DenseContainsNoEmbeddings)
{
    Model m = buildModel(ModelId::DlrmRmc1);
    Graph d = denseSubgraph(m.graph);
    EXPECT_EQ(d.size(), m.graph.size() - m.num_tables);
    for (const auto& n : d.nodes())
        EXPECT_NE(n.kind(), OpKind::EmbeddingLookup);
}

TEST(Subgraph, CrossStageDepsDropped)
{
    Model m = buildModel(ModelId::DlrmRmc1);
    Graph d = denseSubgraph(m.graph);
    // The interaction node depended on all embedding nodes; those edges
    // must be cut, intra-dense edges preserved.
    int inter = d.findNode("interaction");
    ASSERT_GE(inter, 0);
    EXPECT_EQ(d.node(inter).deps.size(), 1u);  // only the bottom MLP
    EXPECT_EQ(d.topoOrder().size(), static_cast<size_t>(d.size()));
}

TEST(Subgraph, PreservesInsertionOrderSemantics)
{
    Model m = buildModel(ModelId::Dien);
    Graph d = denseSubgraph(m.graph);
    int gru = d.findNode("gru");
    int attn = d.findNode("attention");
    ASSERT_GE(gru, 0);
    ASSERT_GE(attn, 0);
    // Attention still depends on the GRU inside the dense subgraph.
    bool has_gru_dep = false;
    for (int dep : d.node(attn).deps)
        has_gru_dep |= dep == gru;
    EXPECT_TRUE(has_gru_dep);
}

TEST(HotSplit, ZeroCapacityNothingResident)
{
    Model m = buildModel(ModelId::DlrmRmc1);
    HotSplit hs = computeHotSplit(m, 0);
    EXPECT_EQ(hs.hot_bytes, 0);
    EXPECT_DOUBLE_EQ(hs.hit_rate, 0.0);
    EXPECT_FALSE(hs.full());
}

TEST(HotSplit, FullCapacityFullyResident)
{
    Model m = buildModel(ModelId::DlrmRmc1);
    HotSplit hs = computeHotSplit(m, m.embeddingBytes() * 2);
    EXPECT_DOUBLE_EQ(hs.hit_rate, 1.0);
    EXPECT_TRUE(hs.full());
    EXPECT_EQ(hs.hot_bytes, m.embeddingBytes());
}

TEST(HotSplit, RespectsCapacityBudget)
{
    Model m = buildModel(ModelId::DlrmRmc2);
    for (int64_t cap : {1ll << 28, 1ll << 30, 4ll << 30}) {
        HotSplit hs = computeHotSplit(m, cap);
        EXPECT_LE(hs.hot_bytes, cap) << "cap=" << cap;
    }
}

TEST(HotSplit, HitRateMonotoneInCapacity)
{
    Model m = buildModel(ModelId::DlrmRmc3);
    double prev = -1.0;
    for (int64_t cap = 1ll << 26; cap <= 32ll << 30; cap *= 4) {
        HotSplit hs = computeHotSplit(m, cap);
        EXPECT_GE(hs.hit_rate, prev) << "cap=" << cap;
        EXPECT_LE(hs.hit_rate, 1.0);
        prev = hs.hit_rate;
    }
}

TEST(HotSplit, LocalityBeatsProportionalRows)
{
    // With Zipf locality, a small fraction of rows captures a much
    // larger fraction of accesses — the premise of Fig 10(a).
    Model m = buildModel(ModelId::DlrmRmc1);
    int64_t cap = m.embeddingBytes() / 10;
    HotSplit hs = computeHotSplit(m, cap);
    double rows_frac = 0.0;
    {
        int64_t total_rows = 0;
        for (const auto& n : m.graph.nodes())
            if (n.kind() == OpKind::EmbeddingLookup)
                total_rows += std::get<EmbeddingParams>(n.params).rows;
        rows_frac = static_cast<double>(hs.hot_rows) /
                    static_cast<double>(total_rows);
    }
    EXPECT_GT(hs.hit_rate, 2.0 * rows_frac);
}

TEST(HotSplit, SmallTablesMostlyResidentUnderAmpleBudget)
{
    // DIN: 0.1M / ~5.5M / 300M rows. With a 2 GB budget the greedy
    // marginal-gain allocation keeps most of the small tables' head
    // resident (the extreme Zipf tail may lose to the big behaviour
    // table, which is correct: it captures more traffic per byte).
    Model m = buildModel(ModelId::Din);
    HotSplit hs = computeHotSplit(m, 2ll << 30);
    std::vector<int64_t> rows;
    for (const auto& n : m.graph.nodes())
        if (n.kind() == OpKind::EmbeddingLookup)
            rows.push_back(std::get<EmbeddingParams>(n.params).rows);
    ASSERT_EQ(hs.hot_rows_per_table.size(), rows.size());
    EXPECT_GT(static_cast<double>(hs.hot_rows_per_table[0]),
              0.5 * static_cast<double>(rows[0]));
    EXPECT_GT(hs.hit_rate, 0.5);
}

TEST(HotSplit, PerTableRowsNeverExceedTable)
{
    Model m = buildModel(ModelId::MtWnd);
    HotSplit hs = computeHotSplit(m, 8ll << 30);
    std::vector<int64_t> rows;
    for (const auto& n : m.graph.nodes())
        if (n.kind() == OpKind::EmbeddingLookup)
            rows.push_back(std::get<EmbeddingParams>(n.params).rows);
    for (size_t t = 0; t < rows.size(); ++t)
        EXPECT_LE(hs.hot_rows_per_table[t], rows[t]) << "table " << t;
}

TEST(HotSplit, ModelWithoutEmbeddingsIsTriviallyFull)
{
    Model m;
    m.graph.addNode("fc", FcParams{16, 8}, Stage::Dense);
    HotSplit hs = computeHotSplit(m, 1 << 20);
    EXPECT_TRUE(hs.full());
}

TEST(Fusion, RemovesActivationsAfterFc)
{
    Model m = buildModel(ModelId::DlrmRmc1);
    int before = m.graph.size();
    Graph fused = fuseElementwise(m.graph);
    int activations = 0;
    for (const auto& n : m.graph.nodes())
        if (n.kind() == OpKind::Activation)
            ++activations;
    EXPECT_GT(activations, 0);
    EXPECT_EQ(fused.size(), before - activations);
    for (const auto& n : fused.nodes())
        EXPECT_NE(n.kind(), OpKind::Activation);
}

TEST(Fusion, ReroutesConsumers)
{
    Graph g;
    int fc0 = g.addNode("fc0", FcParams{8, 8}, Stage::Dense);
    int act = g.addNode("act", ActivationParams{8}, Stage::Dense, {fc0});
    g.addNode("fc1", FcParams{8, 4}, Stage::Dense, {act});
    Graph fused = fuseElementwise(g);
    ASSERT_EQ(fused.size(), 2);
    int nfc1 = fused.findNode("fc1");
    int nfc0 = fused.findNode("fc0");
    ASSERT_GE(nfc1, 0);
    EXPECT_EQ(fused.node(nfc1).deps, std::vector<int>{nfc0});
}

TEST(Fusion, KeepsUnfuseableActivations)
{
    Graph g;
    // Activation with no producer (graph input) cannot fuse.
    g.addNode("act", ActivationParams{8}, Stage::Dense);
    Graph fused = fuseElementwise(g);
    EXPECT_EQ(fused.size(), 1);
}

TEST(Fusion, PreservesTotalFlops)
{
    // Fusion removes dispatch overhead, not arithmetic: total FLOPs of
    // FC/attention/GRU nodes must be identical.
    Model m = buildModel(ModelId::Dien);
    auto flopsOf = [](const Graph& g) {
        double f = 0.0;
        for (const auto& n : g.nodes())
            if (n.kind() != OpKind::Activation)
                f += opCostPerItem(n).flops;
        return f;
    };
    EXPECT_NEAR(flopsOf(m.graph), flopsOf(fuseElementwise(m.graph)),
                1e-6);
}

TEST(Fusion, AcyclicAfterFusion)
{
    for (ModelId id : allModels()) {
        Model m = buildModel(id);
        Graph fused = fuseElementwise(m.graph);
        EXPECT_EQ(fused.topoOrder().size(),
                  static_cast<size_t>(fused.size()))
            << m.name;
    }
}

TEST(PartitionKindNames, Distinct)
{
    EXPECT_STRNE(partitionKindName(PartitionKind::ModelBased),
                 partitionKindName(PartitionKind::SdPipeline));
    EXPECT_STRNE(partitionKindName(PartitionKind::SdPipeline),
                 partitionKindName(PartitionKind::HotSplit));
}

/** Hit-rate monotonicity as a property over all models. */
class HotSplitEveryModel : public ::testing::TestWithParam<ModelId>
{
};

TEST_P(HotSplitEveryModel, MonotoneAndBounded)
{
    Model m = buildModel(GetParam());
    double prev = -1.0;
    for (int64_t cap = 1ll << 24; cap <= 64ll << 30; cap *= 8) {
        HotSplit hs = computeHotSplit(m, cap);
        EXPECT_GE(hs.hit_rate, prev);
        EXPECT_GE(hs.hit_rate, 0.0);
        EXPECT_LE(hs.hit_rate, 1.0);
        EXPECT_LE(hs.hot_bytes, cap);
        prev = hs.hit_rate;
    }
}

INSTANTIATE_TEST_SUITE_P(AllModels, HotSplitEveryModel,
                         ::testing::ValuesIn(allModels()));

}  // namespace
}  // namespace hercules::model
