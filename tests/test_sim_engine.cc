/**
 * @file
 * Tests of the discrete-event server simulator: event ordering, work
 * conservation, queueing behaviour, mapping-specific paths (model-based
 * / S-D pipeline / accelerator fusion), utilization bounds and power
 * integration.
 */
#include <gtest/gtest.h>

#include "sim/event_queue.h"
#include "hw/power.h"
#include "sim/server_sim.h"

namespace hercules::sim {
namespace {

using hw::ServerType;
using model::ModelId;
using model::Variant;
using sched::Mapping;
using sched::SchedulingConfig;

SchedulingConfig
cpuConfig(int threads, int cores, int batch)
{
    SchedulingConfig cfg;
    cfg.mapping = Mapping::CpuModelBased;
    cfg.cpu_threads = threads;
    cfg.cores_per_thread = cores;
    cfg.batch = batch;
    return cfg;
}

SimOptions
fastOptions(double qps)
{
    SimOptions opt;
    opt.offered_qps = qps;
    opt.num_queries = 300;
    opt.warmup_queries = 60;
    opt.seed = 42;
    return opt;
}

TEST(EventQueue, FifoWithinEqualTimestamps)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(1.0, [&] { order.push_back(1); });
    eq.schedule(1.0, [&] { order.push_back(2); });
    eq.schedule(0.5, [&] { order.push_back(0); });
    eq.runAll();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(EventQueue, NowAdvances)
{
    EventQueue eq;
    eq.schedule(2.5, [] {});
    eq.runNext();
    EXPECT_DOUBLE_EQ(eq.now(), 2.5);
}

TEST(EventQueue, NestedScheduling)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(1.0, [&] {
        eq.schedule(2.0, [&] { ++fired; });
    });
    eq.runAll();
    EXPECT_EQ(fired, 1);
}

TEST(EventQueueDeath, PastSchedulingPanics)
{
    EventQueue eq;
    eq.schedule(5.0, [] {});
    eq.runNext();
    EXPECT_DEATH(eq.schedule(1.0, [] {}), "past");
}

TEST(Validate, CoreOversubscriptionRejected)
{
    model::Model m = model::buildModel(ModelId::DlrmRmc1);
    auto err = validateConfig(hw::serverSpec(ServerType::T2), m,
                              cpuConfig(21, 1, 64));
    ASSERT_TRUE(err.has_value());
    EXPECT_NE(err->find("cores"), std::string::npos);
}

TEST(Validate, HostMemoryRejected)
{
    // The 38 GB DLRM-RMC2 cannot be placed twice... but a single copy
    // always fits; instead check a small host with an artificially huge
    // model by validating DIN on T1 (39 GB of 64 GB: fits), so craft an
    // oversized model directly.
    model::Model m = model::buildModel(ModelId::DlrmRmc2);
    model::EmbeddingParams huge;
    huge.rows = 3'000'000'000ll;
    huge.emb_dim = 32;
    huge.pooled = true;
    huge.pooling_min = huge.pooling_max = 10;
    m.graph.addNode("huge", huge, model::Stage::Sparse);
    auto err = validateConfig(hw::serverSpec(ServerType::T1), m,
                              cpuConfig(4, 1, 64));
    ASSERT_TRUE(err.has_value());
    EXPECT_NE(err->find("memory"), std::string::npos);
}

TEST(Validate, GpuMappingNeedsGpu)
{
    model::Model m = model::buildModel(ModelId::DlrmRmc1);
    SchedulingConfig cfg;
    cfg.mapping = Mapping::GpuModelBased;
    cfg.gpu_threads = 1;
    cfg.cpu_threads = 1;
    auto err =
        validateConfig(hw::serverSpec(ServerType::T2), m, cfg);
    ASSERT_TRUE(err.has_value());
}

TEST(Validate, AcceptsReasonableConfigs)
{
    model::Model m = model::buildModel(ModelId::DlrmRmc1);
    EXPECT_FALSE(validateConfig(hw::serverSpec(ServerType::T2), m,
                                cpuConfig(10, 2, 128))
                     .has_value());
}

TEST(Prepare, HotSplitComputedForGpuModelBased)
{
    model::Model m = model::buildModel(ModelId::DlrmRmc1);  // 3 GB prod
    SchedulingConfig cfg;
    cfg.mapping = Mapping::GpuModelBased;
    cfg.gpu_threads = 1;
    cfg.fusion_limit = 2000;
    cfg.cpu_threads = 2;
    PreparedWorkload w =
        prepare(hw::serverSpec(ServerType::T7), m, cfg);
    // 3 GB of embeddings fit a 16 GB V100 minus reserve: fully hot.
    EXPECT_DOUBLE_EQ(w.gpu_cx.hot_hit_rate, 1.0);

    cfg.gpu_threads = 6;  // per-thread budget ~2.2 GB: partial split
    PreparedWorkload w6 =
        prepare(hw::serverSpec(ServerType::T7), m, cfg);
    EXPECT_LT(w6.gpu_cx.hot_hit_rate, 1.0);
    EXPECT_GT(w6.gpu_cx.hot_hit_rate, 0.0);
    EXPECT_NEAR(w6.cold_cx.pooling_scale, 1.0 - w6.gpu_cx.hot_hit_rate,
                1e-12);
}

TEST(Prepare, ElementwiseFusionToggle)
{
    model::Model m = model::buildModel(ModelId::DlrmRmc1);
    SchedulingConfig cfg = cpuConfig(4, 1, 64);
    cfg.fuse_elementwise = true;
    PreparedWorkload fused =
        prepare(hw::serverSpec(ServerType::T2), m, cfg);
    cfg.fuse_elementwise = false;
    PreparedWorkload raw =
        prepare(hw::serverSpec(ServerType::T2), m, cfg);
    EXPECT_LT(fused.full.size(), raw.full.size());
}

TEST(Engine, AllQueriesComplete)
{
    model::Model m = model::buildModel(ModelId::DlrmRmc1);
    ServerSimResult r =
        simulateServer(hw::serverSpec(ServerType::T2), m,
                       cpuConfig(10, 2, 128), fastOptions(500));
    // Work conservation: every post-warmup query completes.
    EXPECT_EQ(r.completed, 300u - 60u);
    EXPECT_GT(r.achieved_qps, 0.0);
    EXPECT_GT(r.duration_s, 0.0);
}

TEST(Engine, Deterministic)
{
    model::Model m = model::buildModel(ModelId::DlrmRmc1);
    ServerSimResult a =
        simulateServer(hw::serverSpec(ServerType::T2), m,
                       cpuConfig(10, 2, 128), fastOptions(500));
    ServerSimResult b =
        simulateServer(hw::serverSpec(ServerType::T2), m,
                       cpuConfig(10, 2, 128), fastOptions(500));
    EXPECT_DOUBLE_EQ(a.p95_ms, b.p95_ms);
    EXPECT_DOUBLE_EQ(a.achieved_qps, b.achieved_qps);
    EXPECT_DOUBLE_EQ(a.avg_power_w, b.avg_power_w);
}

TEST(Engine, LatencyGrowsWithLoad)
{
    model::Model m = model::buildModel(ModelId::DlrmRmc1);
    SchedulingConfig cfg = cpuConfig(10, 2, 128);
    double light =
        simulateServer(hw::serverSpec(ServerType::T2), m, cfg,
                       fastOptions(200))
            .p95_ms;
    double heavy =
        simulateServer(hw::serverSpec(ServerType::T2), m, cfg,
                       fastOptions(2500))
            .p95_ms;
    EXPECT_GT(heavy, light);
}

TEST(Engine, SaturationModeMeasuresCapacity)
{
    model::Model m = model::buildModel(ModelId::DlrmRmc1);
    SimOptions opt = fastOptions(1.0);
    opt.saturate = true;
    ServerSimResult r = simulateServer(
        hw::serverSpec(ServerType::T2), m, cpuConfig(10, 2, 128), opt);
    EXPECT_GT(r.achieved_qps, 100.0);
    // Under saturation the dispatcher queue dominates latency.
    EXPECT_GT(r.mean_queue_ms, 0.0);
}

TEST(Engine, UtilizationsBounded)
{
    model::Model m = model::buildModel(ModelId::DlrmRmc1);
    ServerSimResult r =
        simulateServer(hw::serverSpec(ServerType::T2), m,
                       cpuConfig(20, 1, 64), fastOptions(1500));
    EXPECT_GE(r.cpu_util, 0.0);
    EXPECT_LE(r.cpu_util, 1.0);
    EXPECT_GE(r.mem_bw_util, 0.0);
    EXPECT_LE(r.mem_bw_util, 1.0);
    EXPECT_DOUBLE_EQ(r.gpu_util, 0.0);
    EXPECT_GT(r.cpu_util, 0.05);
}

TEST(Engine, PowerWithinPhysicalBounds)
{
    model::Model m = model::buildModel(ModelId::DlrmRmc1);
    const hw::ServerSpec& server = hw::serverSpec(ServerType::T2);
    ServerSimResult r = simulateServer(server, m, cpuConfig(10, 2, 128),
                                       fastOptions(1000));
    hw::PowerModel pm(server);
    EXPECT_GE(r.avg_power_w, pm.idlePowerW() - 1e-9);
    EXPECT_LE(r.peak_power_w, pm.peakPowerW() + 1e-9);
    EXPECT_GE(r.peak_power_w, r.avg_power_w);
}

TEST(Engine, SdPipelineCompletesAndUsesDenseThreads)
{
    model::Model m = model::buildModel(ModelId::DlrmRmc1);
    SchedulingConfig cfg;
    cfg.mapping = Mapping::CpuSdPipeline;
    cfg.cpu_threads = 6;
    cfg.cores_per_thread = 2;
    cfg.dense_threads = 4;
    cfg.batch = 128;
    ServerSimResult r = simulateServer(hw::serverSpec(ServerType::T2), m,
                                       cfg, fastOptions(800));
    EXPECT_EQ(r.completed, 240u);
    EXPECT_GT(r.mean_exec_ms, 0.0);
}

TEST(Engine, GpuFusionCompletes)
{
    model::Model m = model::buildModel(ModelId::DlrmRmc3, Variant::Small);
    SchedulingConfig cfg;
    cfg.mapping = Mapping::GpuModelBased;
    cfg.gpu_threads = 2;
    cfg.fusion_limit = 2000;
    cfg.cpu_threads = 2;
    ServerSimResult r = simulateServer(hw::serverSpec(ServerType::T7), m,
                                       cfg, fastOptions(2000));
    EXPECT_EQ(r.completed, 240u);
    EXPECT_GT(r.gpu_util, 0.0);
    EXPECT_GT(r.pcie_util, 0.0);
    EXPECT_GT(r.mean_load_ms, 0.0);
}

TEST(Engine, GpuSdPipelineCompletes)
{
    model::Model m = model::buildModel(ModelId::DlrmRmc1);
    SchedulingConfig cfg;
    cfg.mapping = Mapping::GpuSdPipeline;
    cfg.cpu_threads = 8;
    cfg.cores_per_thread = 2;
    cfg.batch = 128;
    cfg.gpu_threads = 2;
    cfg.fusion_limit = 2000;
    ServerSimResult r = simulateServer(hw::serverSpec(ServerType::T7), m,
                                       cfg, fastOptions(1000));
    EXPECT_EQ(r.completed, 240u);
    EXPECT_GT(r.gpu_util, 0.0);
    EXPECT_GT(r.cpu_util, 0.0);
}

TEST(Engine, FusionReducesDispatches)
{
    // With fusion, the same load is served in fewer, larger batches:
    // per-query exec time rises but throughput capacity grows.
    model::Model m = model::buildModel(ModelId::MtWnd, Variant::Small);
    SchedulingConfig no_fusion;
    no_fusion.mapping = Mapping::GpuModelBased;
    no_fusion.gpu_threads = 1;
    no_fusion.fusion_limit = 0;
    no_fusion.cpu_threads = 1;
    SchedulingConfig fused = no_fusion;
    fused.fusion_limit = 6000;

    SimOptions sat = fastOptions(1.0);
    sat.saturate = true;
    double cap_plain = simulateServer(hw::serverSpec(ServerType::T7), m,
                                      no_fusion, sat)
                           .achieved_qps;
    double cap_fused = simulateServer(hw::serverSpec(ServerType::T7), m,
                                      fused, sat)
                           .achieved_qps;
    EXPECT_GT(cap_fused, 2.0 * cap_plain);
}

TEST(Engine, NmpUtilizationReported)
{
    model::Model m = model::buildModel(ModelId::DlrmRmc1);
    ServerSimResult r =
        simulateServer(hw::serverSpec(ServerType::T3), m,
                       cpuConfig(10, 2, 128), fastOptions(2000));
    EXPECT_GT(r.nmp_util, 0.0);
}

TEST(EngineDeath, WarmupMustBeBelowTotal)
{
    model::Model m = model::buildModel(ModelId::DlrmRmc1);
    SimOptions opt;
    opt.num_queries = 10;
    opt.warmup_queries = 10;
    EXPECT_DEATH(simulateServer(hw::serverSpec(ServerType::T2), m,
                                cpuConfig(4, 1, 64), opt),
                 "exceed");
}

/** Conservation across mappings and models (property sweep). */
class EngineConservation
    : public ::testing::TestWithParam<std::tuple<ModelId, int>>
{
};

TEST_P(EngineConservation, EveryQueryCompletesOnce)
{
    auto [mid, threads] = GetParam();
    model::Model m = model::buildModel(mid);
    SimOptions opt = fastOptions(300);
    opt.num_queries = 200;
    opt.warmup_queries = 40;
    ServerSimResult r = simulateServer(hw::serverSpec(ServerType::T2), m,
                                       cpuConfig(threads, 2, 128), opt);
    EXPECT_EQ(r.completed, 160u);
}

INSTANTIATE_TEST_SUITE_P(
    ModelsAndThreads, EngineConservation,
    ::testing::Combine(::testing::ValuesIn(model::allModels()),
                       ::testing::Values(2, 6, 10)));

}  // namespace
}  // namespace hercules::sim
