/**
 * @file
 * Tests of the workload generators: Poisson arrivals, heavy-tailed
 * query sizes (Fig 2(b)), pooling variability (Fig 2(c)), diurnal load
 * curves (Fig 2(d)) and embedding-access traces.
 */
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>

#include "util/stats.h"
#include "workload/diurnal.h"
#include "workload/querygen.h"
#include "model/partition.h"
#include "workload/trace.h"
#include "workload/trace_gen.h"

namespace hercules::workload {
namespace {

TEST(QueryGen, DeterministicStreams)
{
    QueryGenerator a(1000, 42), b(1000, 42);
    for (int i = 0; i < 50; ++i) {
        Query qa = a.next();
        Query qb = b.next();
        EXPECT_DOUBLE_EQ(qa.arrival_s, qb.arrival_s);
        EXPECT_EQ(qa.size, qb.size);
        EXPECT_DOUBLE_EQ(qa.pooling_scale, qb.pooling_scale);
    }
}

TEST(QueryGen, PoissonInterarrivalMean)
{
    QueryGenerator gen(500.0, 7);
    OnlineStats gaps;
    double prev = 0.0;
    for (int i = 0; i < 20000; ++i) {
        Query q = gen.next();
        gaps.add(q.arrival_s - prev);
        prev = q.arrival_s;
    }
    EXPECT_NEAR(gaps.mean(), 1.0 / 500.0, 1e-4);
    // Exponential: stddev == mean.
    EXPECT_NEAR(gaps.stddev(), gaps.mean(), 2e-4);
}

TEST(QueryGen, ArrivalsMonotone)
{
    QueryGenerator gen(100.0, 9);
    double prev = -1.0;
    for (int i = 0; i < 1000; ++i) {
        Query q = gen.next();
        EXPECT_GT(q.arrival_s, prev);
        prev = q.arrival_s;
    }
}

TEST(QueryGen, SizesWithinClipRange)
{
    QuerySizeDist dist;
    QueryGenerator gen(100.0, 11, dist);
    for (const Query& q : gen.generate(5000)) {
        EXPECT_GE(q.size, dist.min_size);
        EXPECT_LE(q.size, dist.max_size);
    }
}

TEST(QueryGen, HeavyTailPercentileOrdering)
{
    // Fig 2(b): a pronounced p75 < p95 < p99 spread within [10, 1000].
    QueryGenerator gen(100.0, 13);
    PercentileTracker t;
    for (const Query& q : gen.generate(30000))
        t.add(q.size);
    EXPECT_LT(t.p50(), t.p75());
    EXPECT_LT(t.p75(), t.p95());
    EXPECT_LT(t.p95(), t.p99());
    // Tail heaviness: p99 is several times the median.
    EXPECT_GT(t.p99() / t.p50(), 4.0);
}

TEST(QueryGen, AnalyticPercentilesMatchEmpirical)
{
    QuerySizeDist dist;
    QueryGenerator gen(100.0, 17, dist);
    PercentileTracker t;
    for (const Query& q : gen.generate(40000))
        t.add(q.size);
    EXPECT_NEAR(t.p75(), dist.percentile(75), dist.percentile(75) * 0.1);
    EXPECT_NEAR(t.p95(), dist.percentile(95), dist.percentile(95) * 0.1);
}

TEST(QueryGen, PoolingScaleCentredOnOne)
{
    QueryGenerator gen(100.0, 19);
    OnlineStats s;
    for (const Query& q : gen.generate(20000))
        s.add(q.pooling_scale);
    EXPECT_NEAR(s.mean(), 1.03, 0.05);  // exp(sigma^2/2), sigma=0.25
    EXPECT_GT(s.stddev(), 0.1);
}

TEST(QueryGen, RateChangeTakesEffect)
{
    QueryGenerator gen(100.0, 23);
    gen.generate(100);
    double t0 = gen.next().arrival_s;
    gen.setQps(10000.0);
    OnlineStats gaps;
    double prev = t0;
    for (int i = 0; i < 5000; ++i) {
        Query q = gen.next();
        gaps.add(q.arrival_s - prev);
        prev = q.arrival_s;
    }
    EXPECT_NEAR(gaps.mean(), 1e-4, 2e-5);
}

TEST(QueryGenDeath, NonPositiveRate)
{
    EXPECT_DEATH(QueryGenerator(0.0, 1), "non-positive");
}

TEST(Diurnal, PeakAtConfiguredHour)
{
    DiurnalConfig cfg;
    cfg.peak_qps = 50'000;
    cfg.peak_hour = 20.0;
    cfg.noise_frac = 0.0;
    DiurnalLoad load(cfg);
    double at_peak = load.loadAt(20.0);
    for (double h : {0.0, 6.0, 12.0, 16.0})
        EXPECT_GT(at_peak, load.loadAt(h)) << "hour " << h;
    EXPECT_NEAR(at_peak, 50'000, 50'000 * 0.13);
}

TEST(Diurnal, FluctuationExceedsFiftyPercent)
{
    // Paper: >50% swing between peak and off-peak.
    DiurnalLoad load(DiurnalConfig{});
    double lo = 1e18, hi = 0.0;
    for (double t = 0.0; t < 24.0; t += 0.1) {
        lo = std::min(lo, load.loadAt(t));
        hi = std::max(hi, load.loadAt(t));
    }
    EXPECT_GT((hi - lo) / hi, 0.5);
}

TEST(Diurnal, TwentyFourHourPeriodicity)
{
    DiurnalLoad load(DiurnalConfig{});
    for (double t : {1.0, 7.5, 13.0, 21.25})
        EXPECT_NEAR(load.loadAt(t), load.loadAt(t + 24.0),
                    load.loadAt(t) * 0.05);
}

TEST(Diurnal, SynchronizedServicesPeakTogether)
{
    // Two services with nearby peak hours must peak within ~2h of each
    // other (the synchronous pattern of Fig 2(d)).
    DiurnalConfig c1, c2;
    c1.peak_hour = 20.0;
    c2.peak_hour = 19.5;
    c2.seed = 99;
    DiurnalLoad l1(c1), l2(c2);
    auto argmax = [](const DiurnalLoad& l) {
        double best_t = 0.0, best = 0.0;
        for (double t = 0.0; t < 24.0; t += 0.05) {
            if (l.loadAt(t) > best) {
                best = l.loadAt(t);
                best_t = t;
            }
        }
        return best_t;
    };
    EXPECT_NEAR(argmax(l1), argmax(l2), 2.0);
}

TEST(Diurnal, SampleGridLength)
{
    DiurnalLoad load(DiurnalConfig{});
    auto s = load.sample(24.0, 0.5);
    EXPECT_EQ(s.size(), 48u);
    for (double v : s)
        EXPECT_GE(v, 0.0);
}

TEST(Diurnal, NoiseIsDeterministicPerSeed)
{
    DiurnalConfig cfg;
    cfg.seed = 5;
    DiurnalLoad a(cfg), b(cfg);
    EXPECT_DOUBLE_EQ(a.loadAt(3.21), b.loadAt(3.21));
}

TEST(Diurnal, SampleHorizonNotDivisibleByInterval)
{
    // 24h at 0.7h intervals: 34 full steps plus the 0.2h remainder's
    // start point -> 35 samples, the last at t = 23.8h.
    DiurnalLoad load(DiurnalConfig{});
    auto s = load.sample(24.0, 0.7);
    EXPECT_EQ(s.size(), 35u);
    EXPECT_NEAR(s.back(), load.loadAt(23.8), load.loadAt(23.8) * 1e-9);
}

TEST(Diurnal, SampleZeroNoiseIsSeedIndependent)
{
    DiurnalConfig a, b;
    a.noise_frac = b.noise_frac = 0.0;
    a.seed = 1;
    b.seed = 999;  // ripple phases differ but are multiplied by zero
    auto sa = DiurnalLoad(a).sample(24.0, 0.25);
    auto sb = DiurnalLoad(b).sample(24.0, 0.25);
    ASSERT_EQ(sa.size(), sb.size());
    for (size_t i = 0; i < sa.size(); ++i)
        EXPECT_DOUBLE_EQ(sa[i], sb[i]) << "sample " << i;
}

TEST(Diurnal, SampleBeyondOneDayWrapsTheCycle)
{
    DiurnalLoad load(DiurnalConfig{});
    auto s = load.sample(48.0, 0.5);
    ASSERT_EQ(s.size(), 96u);
    for (size_t i = 0; i < 48; ++i)
        EXPECT_NEAR(s[i], s[i + 48], s[i] * 1e-9) << "sample " << i;
}

TEST(DiurnalDeath, BadConfig)
{
    DiurnalConfig cfg;
    cfg.peak_qps = -1.0;
    EXPECT_DEATH(DiurnalLoad{cfg}, "non-positive");
}

/*
 * The unforecast surge window: loadAt() (actual demand, what the
 * trace generator draws from) is multiplied inside the window while
 * forecastAt() (what the provisioner plans on) never sees it. Without
 * a surge configured the two are identical — behaviour-preserving.
 */
TEST(Diurnal, SurgeMultipliesActualButNotForecast)
{
    DiurnalConfig cfg;
    cfg.peak_qps = 1000.0;
    cfg.noise_frac = 0.0;
    cfg.surge_hour = 10.0;
    cfg.surge_hours = 2.0;
    cfg.surge_factor = 1.5;
    DiurnalLoad load(cfg);

    DiurnalConfig plain = cfg;
    plain.surge_hours = 0.0;
    plain.surge_factor = 1.0;
    DiurnalLoad base(plain);

    for (double t = 0.0; t < 24.0; t += 0.25) {
        EXPECT_DOUBLE_EQ(load.forecastAt(t), base.loadAt(t)) << t;
        bool inside = t >= 10.0 && t < 12.0;
        EXPECT_DOUBLE_EQ(load.loadAt(t),
                         inside ? 1.5 * base.loadAt(t)
                                : base.loadAt(t))
            << t;
    }
}

TEST(Diurnal, NoSurgeKeepsLoadEqualToForecast)
{
    DiurnalLoad load(DiurnalConfig{});
    for (double t = 0.0; t < 24.0; t += 0.5)
        EXPECT_DOUBLE_EQ(load.loadAt(t), load.forecastAt(t)) << t;
}

TEST(Diurnal, SurgedTraceCarriesMoreArrivalsInTheWindow)
{
    DiurnalConfig cfg;
    cfg.peak_qps = 3000.0;
    cfg.trough_frac = 1.0;  // flat curve isolates the surge effect
    cfg.noise_frac = 0.0;
    cfg.surge_hour = 0.02;
    cfg.surge_hours = 0.02;
    cfg.surge_factor = 2.0;
    TraceOptions opt;
    opt.horizon_hours = 0.06;
    opt.bucket_seconds = 10.0;
    opt.seed = 17;
    auto surged = TraceGenerator(DiurnalLoad(cfg), opt).generate();
    double t0 = 0.02 * 3600.0, t1 = 0.04 * 3600.0;
    size_t inside = 0, before = 0;
    for (const Query& q : surged) {
        if (q.arrival_s >= t0 && q.arrival_s < t1)
            ++inside;
        else if (q.arrival_s < t0)
            ++before;
    }
    // Equal-length windows of a flat curve: the surged one must carry
    // roughly 2x the arrivals (Poisson noise stays far below 25%).
    ASSERT_GT(before, 100u);
    EXPECT_GT(static_cast<double>(inside),
              1.5 * static_cast<double>(before));
    EXPECT_LT(static_cast<double>(inside),
              2.5 * static_cast<double>(before));
}

TEST(DiurnalDeath, NegativeSurge)
{
    DiurnalConfig cfg;
    cfg.surge_hours = -1.0;
    EXPECT_DEATH(DiurnalLoad{cfg}, "surge");
}

TEST(TraceGen, FixedSeedGivesIdenticalTrace)
{
    DiurnalConfig dc;
    dc.peak_qps = 2000.0;
    DiurnalLoad load(dc);
    TraceOptions opt;
    opt.horizon_hours = 0.05;
    opt.bucket_seconds = 10.0;
    opt.seed = 13;
    auto a = TraceGenerator(load, opt).generate();
    auto b = TraceGenerator(load, opt).generate();
    ASSERT_GT(a.size(), 100u);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_DOUBLE_EQ(a[i].arrival_s, b[i].arrival_s);
        EXPECT_EQ(a[i].size, b[i].size);
        EXPECT_DOUBLE_EQ(a[i].pooling_scale, b[i].pooling_scale);
    }
    opt.seed = 14;
    auto c = TraceGenerator(load, opt).generate();
    ASSERT_GT(c.size(), 0u);
    // Different seed, different stream (counts may coincide; the
    // continuous arrival times cannot).
    EXPECT_NE(a[0].arrival_s, c[0].arrival_s);
}

TEST(TraceGen, ArrivalsMonotoneAndWithinHorizon)
{
    DiurnalConfig dc;
    dc.peak_qps = 1500.0;
    DiurnalLoad load(dc);
    TraceOptions opt;
    opt.horizon_hours = 0.1;
    opt.seed = 17;
    TraceGenerator gen(load, opt);
    auto trace = gen.generate();
    double prev = 0.0;
    for (const Query& q : trace) {
        EXPECT_GT(q.arrival_s, prev);
        EXPECT_LT(q.arrival_s, gen.simSeconds());
        EXPECT_GE(q.size, opt.sizes.min_size);
        EXPECT_LE(q.size, opt.sizes.max_size);
        prev = q.arrival_s;
    }
}

TEST(TraceGen, ArrivalCountsTrackTheLoadCurve)
{
    // Per-window arrival counts must match loadAt within Poisson
    // tolerance across a window where the curve swings substantially.
    DiurnalConfig dc;
    dc.peak_qps = 60.0;
    dc.trough_frac = 0.3;
    dc.peak_hour = 1.0;  // swing inside the sampled 2h
    dc.noise_frac = 0.0;
    DiurnalLoad load(dc);
    TraceOptions opt;
    opt.horizon_hours = 2.0;
    opt.bucket_seconds = 60.0;
    opt.seed = 29;
    auto trace = TraceGenerator(load, opt).generate();

    const double window_s = 720.0;  // 0.2h
    std::vector<size_t> counts(10, 0);
    for (const Query& q : trace)
        ++counts[std::min<size_t>(
            static_cast<size_t>(q.arrival_s / window_s), 9)];
    for (size_t wdx = 0; wdx < counts.size(); ++wdx) {
        double mid_hours = (wdx + 0.5) * window_s / 3600.0;
        double expected = load.loadAt(mid_hours) * window_s;
        EXPECT_NEAR(static_cast<double>(counts[wdx]), expected,
                    5.0 * std::sqrt(expected) + 10.0)
            << "window " << wdx;
    }
}

TEST(TraceGen, TimeCompressionPreservesInstantaneousRate)
{
    DiurnalConfig dc;
    dc.peak_qps = 1000.0;
    dc.noise_frac = 0.0;
    DiurnalLoad load(dc);
    TraceOptions opt;
    opt.horizon_hours = 1.0;
    opt.seed = 31;
    TraceGenerator plain(load, opt);
    auto full = plain.generate();
    opt.time_compression = 4.0;
    TraceGenerator compressed(load, opt);
    auto quarter = compressed.generate();
    // A quarter of the simulated span and query count...
    EXPECT_DOUBLE_EQ(compressed.simSeconds(), plain.simSeconds() / 4.0);
    EXPECT_NEAR(static_cast<double>(quarter.size()),
                static_cast<double>(full.size()) / 4.0,
                static_cast<double>(full.size()) * 0.05);
    // ...at an unchanged arrival rate.
    double rate_full =
        static_cast<double>(full.size()) / plain.simSeconds();
    double rate_quarter =
        static_cast<double>(quarter.size()) / compressed.simSeconds();
    EXPECT_NEAR(rate_quarter, rate_full, rate_full * 0.05);
}

TEST(MultiTrace, FixedSeedGivesIdenticalMergedTrace)
{
    std::vector<ServiceTraceSpec> specs(2);
    specs[0].load.peak_qps = 1500.0;
    specs[0].load.peak_hour = 20.0;
    specs[1].load.peak_qps = 900.0;
    specs[1].load.peak_hour = 8.0;  // phase-shifted
    specs[1].load.seed = 2;
    TraceOptions opt;
    opt.horizon_hours = 0.05;
    opt.bucket_seconds = 10.0;
    opt.seed = 13;

    auto a = generateMultiServiceTrace(specs, opt);
    auto b = generateMultiServiceTrace(specs, opt);
    ASSERT_GT(a.size(), 100u);
    ASSERT_EQ(a.size(), b.size());
    size_t per_service[2] = {0, 0};
    double prev = -1.0;
    for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_DOUBLE_EQ(a[i].arrival_s, b[i].arrival_s);
        EXPECT_EQ(a[i].service_id, b[i].service_id);
        EXPECT_EQ(a[i].size, b[i].size);
        EXPECT_DOUBLE_EQ(a[i].pooling_scale, b[i].pooling_scale);
        EXPECT_EQ(a[i].id, i);           // globally renumbered
        EXPECT_GE(a[i].arrival_s, prev);  // merged in time order
        prev = a[i].arrival_s;
        ASSERT_GE(a[i].service_id, 0);
        ASSERT_LT(a[i].service_id, 2);
        ++per_service[a[i].service_id];
    }
    EXPECT_GT(per_service[0], 0u);
    EXPECT_GT(per_service[1], 0u);
    // The heavier curve contributes more arrivals.
    EXPECT_GT(per_service[0], per_service[1]);
}

TEST(MultiTrace, ServiceStreamsMatchSoloGenerators)
{
    // The per-service sub-streams of a merged trace are exactly what a
    // solo TraceGenerator produces with the derived seed — service 0
    // with the base seed itself. Single-service callers (and the
    // partition baselines of bench_multiservice) rely on this.
    std::vector<ServiceTraceSpec> specs(2);
    specs[0].load.peak_qps = 1200.0;
    specs[1].load.peak_qps = 700.0;
    specs[1].load.peak_hour = 5.0;
    specs[1].load.seed = 3;
    specs[1].sizes.median = 30.0;  // per-service size distribution
    TraceOptions opt;
    opt.horizon_hours = 0.04;
    opt.seed = 29;

    auto merged = generateMultiServiceTrace(specs, opt);
    EXPECT_EQ(serviceTraceSeed(opt.seed, 0), opt.seed);

    for (int s = 0; s < 2; ++s) {
        TraceOptions solo_opt = opt;
        solo_opt.seed = serviceTraceSeed(opt.seed, static_cast<size_t>(s));
        solo_opt.sizes = specs[static_cast<size_t>(s)].sizes;
        DiurnalLoad load(specs[static_cast<size_t>(s)].load);
        auto solo = TraceGenerator(load, solo_opt).generate();

        std::vector<Query> sub;
        for (const Query& q : merged)
            if (q.service_id == s)
                sub.push_back(q);
        ASSERT_EQ(sub.size(), solo.size()) << "service " << s;
        for (size_t i = 0; i < sub.size(); ++i) {
            EXPECT_DOUBLE_EQ(sub[i].arrival_s, solo[i].arrival_s);
            EXPECT_EQ(sub[i].size, solo[i].size);
            EXPECT_DOUBLE_EQ(sub[i].pooling_scale,
                             solo[i].pooling_scale);
        }
    }
}

TEST(MultiTraceDeath, NoServices)
{
    TraceOptions opt;
    EXPECT_DEATH(generateMultiServiceTrace({}, opt), "no services");
}

TEST(TraceGenDeath, BadOptions)
{
    DiurnalLoad load(DiurnalConfig{});
    TraceOptions opt;
    opt.horizon_hours = 0.0;
    EXPECT_DEATH(TraceGenerator(load, opt), "horizon");
    opt.horizon_hours = 1.0;
    opt.time_compression = 0.5;
    EXPECT_DEATH(TraceGenerator(load, opt), "compression");
}

TEST(Trace, GeneratesPerTableCounts)
{
    model::Model m = model::buildModel(model::ModelId::DlrmRmc1,
                                       model::Variant::Small);
    EmbAccessTrace trace = generateTrace(m, 200, 100, 3);
    EXPECT_EQ(trace.accesses.size(), 10u);
    EXPECT_GT(trace.total(), 0u);
}

TEST(Trace, HeadConcentration)
{
    // Zipf locality: the first 1% of ranks capture a large share.
    model::Model m = model::buildModel(model::ModelId::DlrmRmc1,
                                       model::Variant::Small);
    EmbAccessTrace trace = generateTrace(m, 500, 150, 7);
    const auto& t0 = trace.accesses[0];
    uint64_t head = 0, total = 0;
    for (size_t r = 0; r < t0.size(); ++r) {
        total += t0[r];
        if (r < t0.size() / 100)
            head += t0[r];
    }
    ASSERT_GT(total, 0u);
    EXPECT_GT(static_cast<double>(head) / total, 0.10);
}

TEST(Trace, EmpiricalHitRateMatchesAnalytic)
{
    model::Model m = model::buildModel(model::ModelId::DlrmRmc1,
                                       model::Variant::Small);
    EmbAccessTrace trace = generateTrace(m, 500, 150, 11);
    model::HotSplit hs =
        model::computeHotSplit(m, m.embeddingBytes() / 8);
    double empirical = empiricalHitRate(trace, hs.hot_rows_per_table);
    EXPECT_NEAR(empirical, hs.hit_rate, 0.15);
}

TEST(Trace, FullPlacementHitsEverything)
{
    model::Model m = model::buildModel(model::ModelId::Din,
                                       model::Variant::Small);
    EmbAccessTrace trace = generateTrace(m, 100, 50, 13);
    std::vector<int64_t> all_rows;
    for (const auto& n : m.graph.nodes())
        if (n.kind() == model::OpKind::EmbeddingLookup)
            all_rows.push_back(
                std::get<model::EmbeddingParams>(n.params).rows);
    EXPECT_DOUBLE_EQ(empiricalHitRate(trace, all_rows), 1.0);
}

TEST(Trace, CsvRoundtrip)
{
    model::Model m = model::buildModel(model::ModelId::Din,
                                       model::Variant::Small);
    EmbAccessTrace trace = generateTrace(m, 50, 50, 17);
    std::string path = ::testing::TempDir() + "/hercules_trace.csv";
    writeTraceCsv(trace, path);
    EmbAccessTrace back = readTraceCsv(path);
    EXPECT_EQ(back.total(), trace.total());
    std::remove(path.c_str());
}

}  // namespace
}  // namespace hercules::workload
