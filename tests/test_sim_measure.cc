/**
 * @file
 * Tests of the latency-bounded throughput measurement: monotonicity in
 * the SLA target, power-budget enforcement, infeasibility detection and
 * consistency with the saturation capacity.
 */
#include <gtest/gtest.h>

#include "sim/measure.h"

namespace hercules::sim {
namespace {

using hw::ServerType;
using model::ModelId;
using sched::Mapping;
using sched::SchedulingConfig;

SchedulingConfig
cpuConfig(int threads, int cores, int batch)
{
    SchedulingConfig cfg;
    cfg.mapping = Mapping::CpuModelBased;
    cfg.cpu_threads = threads;
    cfg.cores_per_thread = cores;
    cfg.batch = batch;
    return cfg;
}

MeasureOptions
fastMeasure()
{
    MeasureOptions mo;
    mo.sim.num_queries = 300;
    mo.sim.warmup_queries = 60;
    mo.sim.seed = 42;
    mo.bisect_iters = 5;
    return mo;
}

TEST(Measure, SaturationPositive)
{
    model::Model m = model::buildModel(ModelId::DlrmRmc1);
    PreparedWorkload w = prepare(hw::serverSpec(ServerType::T2), m,
                                 cpuConfig(10, 2, 128));
    double cap = saturationQps(w, fastMeasure().sim);
    EXPECT_GT(cap, 100.0);
}

TEST(Measure, OperatingPointMeetsSla)
{
    model::Model m = model::buildModel(ModelId::DlrmRmc1);
    PreparedWorkload w = prepare(hw::serverSpec(ServerType::T2), m,
                                 cpuConfig(10, 2, 128));
    auto point = measureLatencyBoundedQps(w, 20.0, fastMeasure());
    ASSERT_TRUE(point.has_value());
    EXPECT_LE(point->result.tail_ms, 20.0);
    EXPECT_GT(point->qps, 0.0);
}

TEST(Measure, QpsBelowSaturation)
{
    model::Model m = model::buildModel(ModelId::DlrmRmc1);
    PreparedWorkload w = prepare(hw::serverSpec(ServerType::T2), m,
                                 cpuConfig(10, 2, 128));
    double cap = saturationQps(w, fastMeasure().sim);
    auto point = measureLatencyBoundedQps(w, 20.0, fastMeasure());
    ASSERT_TRUE(point.has_value());
    EXPECT_LE(point->qps, cap * 1.10);
}

TEST(Measure, MonotoneInSla)
{
    // A looser SLA can never lower the latency-bounded throughput
    // (within bisection noise).
    model::Model m = model::buildModel(ModelId::DlrmRmc1);
    PreparedWorkload w = prepare(hw::serverSpec(ServerType::T2), m,
                                 cpuConfig(10, 2, 64));
    double prev = 0.0;
    for (double sla : {8.0, 20.0, 100.0}) {
        auto point = measureLatencyBoundedQps(w, sla, fastMeasure());
        ASSERT_TRUE(point.has_value()) << "SLA " << sla;
        EXPECT_GE(point->qps, prev * 0.93) << "SLA " << sla;
        prev = point->qps;
    }
}

TEST(Measure, ImpossibleSlaIsInfeasible)
{
    // Sub-service-time SLA: even one query misses the target.
    model::Model m = model::buildModel(ModelId::DlrmRmc1);
    PreparedWorkload w = prepare(hw::serverSpec(ServerType::T2), m,
                                 cpuConfig(1, 1, 1024));
    auto point = measureLatencyBoundedQps(w, 0.05, fastMeasure());
    EXPECT_FALSE(point.has_value());
}

TEST(Measure, PowerBudgetConstrains)
{
    model::Model m = model::buildModel(ModelId::DlrmRmc1);
    PreparedWorkload w = prepare(hw::serverSpec(ServerType::T2), m,
                                 cpuConfig(10, 2, 128));
    MeasureOptions unconstrained = fastMeasure();
    auto free_point = measureLatencyBoundedQps(w, 20.0, unconstrained);
    ASSERT_TRUE(free_point.has_value());

    MeasureOptions tight = fastMeasure();
    // A budget below the free operating point's peak forces a lower
    // (cooler) operating point.
    tight.power_budget_w = free_point->result.peak_power_w - 3.0;
    auto tight_point = measureLatencyBoundedQps(w, 20.0, tight);
    if (tight_point) {
        EXPECT_LE(tight_point->result.peak_power_w,
                  tight.power_budget_w + 1e-9);
        EXPECT_LE(tight_point->qps, free_point->qps);
    }
    // An absurd budget (below idle) must be infeasible.
    MeasureOptions absurd = fastMeasure();
    absurd.power_budget_w = 1.0;
    EXPECT_FALSE(measureLatencyBoundedQps(w, 20.0, absurd).has_value());
}

TEST(Measure, DeterministicAcrossCalls)
{
    model::Model m = model::buildModel(ModelId::DlrmRmc1);
    PreparedWorkload w = prepare(hw::serverSpec(ServerType::T2), m,
                                 cpuConfig(8, 2, 128));
    auto a = measureLatencyBoundedQps(w, 20.0, fastMeasure());
    auto b = measureLatencyBoundedQps(w, 20.0, fastMeasure());
    ASSERT_TRUE(a && b);
    EXPECT_DOUBLE_EQ(a->qps, b->qps);
}

TEST(MeasureDeath, NonPositiveSla)
{
    model::Model m = model::buildModel(ModelId::DlrmRmc1);
    PreparedWorkload w = prepare(hw::serverSpec(ServerType::T2), m,
                                 cpuConfig(4, 1, 64));
    EXPECT_DEATH(measureLatencyBoundedQps(w, 0.0, fastMeasure()),
                 "non-positive");
}

/**
 * Fig 4 headline: 10 threads x 2 cores beats DeepRecSys's 20 x 1 on
 * DLRM-RMC1 at tight SLAs.
 */
TEST(Fig4Shape, TenByTwoBeatsTwentyByOne)
{
    model::Model m = model::buildModel(ModelId::DlrmRmc1);
    const hw::ServerSpec& t2 = hw::serverSpec(ServerType::T2);
    MeasureOptions mo = fastMeasure();
    mo.sim.num_queries = 500;
    mo.sim.warmup_queries = 100;
    auto drs = measureLatencyBoundedQps(
        prepare(t2, m, cpuConfig(20, 1, 64)), 20.0, mo);
    auto ten_two = measureLatencyBoundedQps(
        prepare(t2, m, cpuConfig(10, 2, 64)), 20.0, mo);
    ASSERT_TRUE(drs && ten_two);
    EXPECT_GT(ten_two->qps, drs->qps);
    // Paper: up to ~1.35x; accept anything in (1.0, 1.8).
    EXPECT_LT(ten_two->qps / drs->qps, 1.8);
}

/** SLA monotonicity as a property over models. */
class MeasureEveryModel : public ::testing::TestWithParam<ModelId>
{
};

TEST_P(MeasureEveryModel, FeasibleAtDefaultSla)
{
    // Small batches keep per-batch service time well under every
    // model's SLA target on the CPU-T2 host.
    model::Model m = model::buildModel(GetParam());
    PreparedWorkload w = prepare(hw::serverSpec(ServerType::T2), m,
                                 cpuConfig(10, 2, 32));
    auto point = measureLatencyBoundedQps(w, m.sla_ms, fastMeasure());
    ASSERT_TRUE(point.has_value()) << m.name;
    EXPECT_LE(point->result.tail_ms, m.sla_ms) << m.name;
}

INSTANTIATE_TEST_SUITE_P(AllModels, MeasureEveryModel,
                         ::testing::ValuesIn(model::allModels()));

}  // namespace
}  // namespace hercules::sim
