/**
 * @file
 * Tests of the fault-injection subsystem: FaultSchedule expansion
 * (scripted ordering, seeded-process determinism, forked-stream
 * independence, fatal validation), the ClusterSim health mechanics
 * (crash kill accounting, routing exclusion, straggler slowdowns, the
 * feedback router shifting load away), the spec-level faults block
 * (bind-time rejection, validateSpec), and the bit-identity pin that a
 * no-op faults block leaves the serving engine untouched.
 */
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "cluster/serving.h"
#include "fault/fault.h"
#include "model/model_zoo.h"
#include "scenario/scenario.h"
#include "scenario/spec_io.h"
#include "sim/cluster_sim.h"
#include "sim/server_instance.h"
#include "workload/trace_gen.h"

namespace hercules {
namespace {

using fault::FaultEvent;
using fault::FaultSchedule;
using fault::FaultSpec;
using fault::HealthState;
using hw::ServerType;
using model::ModelId;

// ---- FaultSchedule expansion ---------------------------------------------

TEST(FaultSchedule, ScriptedEventsSortStablyAndNormalize)
{
    FaultSpec spec;
    spec.events = {
        {2.0, 0, 0, HealthState::Healthy, 1.0},
        {1.0, 1, 0, HealthState::Failed, 7.0},  // slowdown ignored
        {1.0, 0, 1, HealthState::Degraded, 3.0},
    };
    FaultSchedule sched(spec, {2, 1}, 24.0);
    ASSERT_EQ(sched.events().size(), 3u);
    // Sorted by time; the two t=1 events keep insertion order.
    EXPECT_EQ(sched.events()[0].t_hours, 1.0);
    EXPECT_EQ(sched.events()[0].fleet_index, 1);
    EXPECT_EQ(sched.events()[0].state, HealthState::Failed);
    // Non-degrade events carry the neutral multiplier regardless of
    // what the spec said, so ignored fields can't break determinism.
    EXPECT_EQ(sched.events()[0].slowdown, 1.0);
    EXPECT_EQ(sched.events()[1].state, HealthState::Degraded);
    EXPECT_EQ(sched.events()[1].slowdown, 3.0);
    EXPECT_EQ(sched.events()[2].t_hours, 2.0);
}

TEST(FaultSchedule, DisabledSpecExpandsEmpty)
{
    FaultSpec spec;  // no events, both MTBFs zero
    EXPECT_FALSE(spec.enabled());
    EXPECT_TRUE(FaultSchedule(spec, {4, 2}, 24.0).empty());
}

void
expectSameEvents(const std::vector<FaultEvent>& a,
                 const std::vector<FaultEvent>& b)
{
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].t_hours, b[i].t_hours) << "event " << i;
        EXPECT_EQ(a[i].fleet_index, b[i].fleet_index) << "event " << i;
        EXPECT_EQ(a[i].slot, b[i].slot) << "event " << i;
        EXPECT_EQ(a[i].state, b[i].state) << "event " << i;
        EXPECT_EQ(a[i].slowdown, b[i].slowdown) << "event " << i;
    }
}

TEST(FaultSchedule, SeededProcessesAreDeterministic)
{
    FaultSpec spec;
    spec.seed = 42;
    spec.crash_mtbf_hours = 6.0;
    spec.crash_mttr_hours = 1.0;
    FaultSchedule a(spec, {2, 1}, 72.0);
    FaultSchedule b(spec, {2, 1}, 72.0);
    ASSERT_FALSE(a.empty());
    expectSameEvents(a.events(), b.events());

    // All generated events land inside the horizon, sorted in time,
    // and every server's stream alternates failed -> healthy.
    double prev = 0.0;
    std::vector<HealthState> last(3, HealthState::Healthy);
    for (const FaultEvent& e : a.events()) {
        EXPECT_GE(e.t_hours, prev);
        EXPECT_LT(e.t_hours, 72.0);
        prev = e.t_hours;
        size_t srv = static_cast<size_t>(e.fleet_index == 0 ? e.slot : 2);
        EXPECT_NE(e.state, last[srv]) << "no-op transition in stream";
        last[srv] = e.state;
    }

    FaultSpec other = spec;
    other.seed = 43;
    FaultSchedule c(other, {2, 1}, 72.0);
    ASSERT_EQ(c.empty(), false);
    bool any_diff = c.events().size() != a.events().size();
    for (size_t i = 0; !any_diff && i < a.events().size(); ++i)
        any_diff = a.events()[i].t_hours != c.events()[i].t_hours;
    EXPECT_TRUE(any_diff) << "seed does not reach the processes";
}

TEST(FaultSchedule, CrashAndDegradeStreamsAreIndependent)
{
    // Enabling the degradation process must not perturb the crash
    // timeline: each (server, process) pair forks its own Rng stream.
    FaultSpec crash_only;
    crash_only.seed = 9;
    crash_only.crash_mtbf_hours = 8.0;
    crash_only.crash_mttr_hours = 0.5;
    FaultSpec both = crash_only;
    both.degrade_mtbf_hours = 5.0;
    both.degrade_mttr_hours = 1.0;
    both.degrade_slowdown = 4.0;

    auto failures = [](const FaultSchedule& s) {
        std::vector<FaultEvent> out;
        for (const FaultEvent& e : s.events())
            if (e.state == HealthState::Failed)
                out.push_back(e);
        return out;
    };
    FaultSchedule a(crash_only, {2, 1}, 72.0);
    FaultSchedule b(both, {2, 1}, 72.0);
    ASSERT_FALSE(a.empty());
    EXPECT_GT(b.events().size(), a.events().size());
    expectSameEvents(failures(a), failures(b));
}

TEST(FaultScheduleDeath, InvalidSpecsAreFatal)
{
    FaultSpec neg_mtbf;
    neg_mtbf.crash_mtbf_hours = -1.0;
    EXPECT_DEATH(FaultSchedule(neg_mtbf, {1}, 24.0), "crash_mtbf_hours");

    FaultSpec bad_slow;
    bad_slow.degrade_slowdown = 0.5;
    EXPECT_DEATH(FaultSchedule(bad_slow, {1}, 24.0), "degrade_slowdown");

    FaultSpec bad_fleet;
    bad_fleet.events = {{1.0, 3, 0, HealthState::Failed, 1.0}};
    EXPECT_DEATH(FaultSchedule(bad_fleet, {1}, 24.0), "fleet index");

    FaultSpec bad_slot;
    bad_slot.events = {{1.0, 0, 2, HealthState::Failed, 1.0}};
    EXPECT_DEATH(FaultSchedule(bad_slot, {2, 4}, 24.0), "slot 2 out of");

    FaultSpec bad_time;
    bad_time.events = {{-0.5, 0, 0, HealthState::Failed, 1.0}};
    EXPECT_DEATH(FaultSchedule(bad_time, {1}, 24.0), "negative time");
}

// ---- ClusterSim health mechanics -----------------------------------------

sched::SchedulingConfig
cpuConfig(int threads, int cores, int batch)
{
    sched::SchedulingConfig cfg;
    cfg.mapping = sched::Mapping::CpuModelBased;
    cfg.cpu_threads = threads;
    cfg.cores_per_thread = cores;
    cfg.batch = batch;
    return cfg;
}

std::vector<workload::Query>
uniformTrace(size_t n, double gap_s, int size = 40)
{
    std::vector<workload::Query> trace(n);
    for (size_t i = 0; i < n; ++i) {
        trace[i].id = i;
        trace[i].arrival_s = static_cast<double>(i + 1) * gap_s;
        trace[i].size = size;
        trace[i].pooling_scale = 1.0;
    }
    return trace;
}

TEST(ClusterSimFaultsDeath, UnsortedHealthTimelineIsFatal)
{
    model::Model m = model::buildModel(ModelId::DlrmRmc1);
    sim::PreparedWorkload w = sim::prepare(hw::serverSpec(ServerType::T2),
                                           m, cpuConfig(2, 1, 64));
    sim::ClusterSim cluster(sim::ClusterSim::Options{});
    cluster.addShard(w, 1000.0);
    std::vector<sim::HealthEvent> ev = {
        {0.5, 0, HealthState::Failed, 1.0},
        {0.2, 0, HealthState::Healthy, 1.0},
    };
    EXPECT_DEATH(cluster.scheduleHealth(ev), "not sorted");
}

TEST(ClusterSimFaults, CrashKillsInFlightAndAccountsThem)
{
    model::Model m = model::buildModel(ModelId::DlrmRmc1);
    // Single slow shard: big queries pile up a deep in-flight queue.
    sim::PreparedWorkload w = sim::prepare(hw::serverSpec(ServerType::T2),
                                           m, cpuConfig(1, 1, 64));
    sim::ClusterSim cluster(sim::ClusterSim::Options{});
    cluster.addShard(w, 1000.0);
    cluster.scheduleHealth({
        {0.04, 0, HealthState::Failed, 1.0},
        {0.30, 0, HealthState::Healthy, 1.0},
    });

    // 60 arrivals spanning [0.005, 0.3]: some retire before the crash,
    // the deep queue dies with it, arrivals during the outage drop.
    std::vector<workload::Query> trace = uniformTrace(60, 0.005, 400);
    sim::ClusterSimResult r = cluster.run(trace, 0.1, nullptr, 0.5);

    ASSERT_GT(r.failed_inflight, 0u);
    ASSERT_GT(r.dropped, 0u);
    // Conservation: routed queries either completed or died in flight;
    // unrouted ones dropped. Nothing vanishes.
    EXPECT_EQ(r.injected + r.dropped, 60u);
    EXPECT_EQ(r.completed + r.failed_inflight, r.injected);
    // Killed and dropped queries are SLA violations by definition.
    EXPECT_GE(r.sla_violations, r.failed_inflight + r.dropped);

    // Interval and per-service slices agree with the run aggregate.
    size_t iv_failed = 0;
    for (const sim::IntervalStats& iv : r.intervals) {
        iv_failed += iv.failed_inflight;
        ASSERT_EQ(iv.services.size(), 1u);
        EXPECT_EQ(iv.services[0].failed_inflight, iv.failed_inflight);
    }
    EXPECT_EQ(iv_failed, r.failed_inflight);
    ASSERT_EQ(r.services.size(), 1u);
    EXPECT_EQ(r.services[0].failed_inflight, r.failed_inflight);
    EXPECT_GE(r.services[0].sla_violations, r.failed_inflight);

    // The applied timeline is logged: crash (with the kill count),
    // then recovery (killing nothing).
    ASSERT_EQ(r.health_transitions.size(), 2u);
    EXPECT_EQ(r.health_transitions[0].to, HealthState::Failed);
    EXPECT_EQ(r.health_transitions[0].killed_inflight,
              r.failed_inflight);
    EXPECT_EQ(r.health_transitions[1].to, HealthState::Healthy);
    EXPECT_EQ(r.health_transitions[1].killed_inflight, 0u);
    EXPECT_EQ(cluster.shardHealth(0), HealthState::Healthy);
}

TEST(ClusterSimFaults, FailedShardLeavesRoutingUntilRecovery)
{
    model::Model m = model::buildModel(ModelId::DlrmRmc1);
    sim::PreparedWorkload w = sim::prepare(hw::serverSpec(ServerType::T2),
                                           m, cpuConfig(4, 1, 64));
    sim::ClusterSim::Options copt;
    copt.router = sim::RouterPolicy::RoundRobin;
    sim::ClusterSim cluster(copt);
    cluster.addShard(w, 1000.0);
    cluster.addShard(w, 1000.0);
    cluster.scheduleHealth({
        {0.0085, 0, HealthState::Failed, 1.0},
        {0.0185, 0, HealthState::Healthy, 1.0},
    });

    // Phase 1 (before the crash): round-robin alternates 0, 1.
    std::vector<workload::Query> trace = uniformTrace(28, 0.001, 10);
    for (size_t i = 0; i < 8; ++i)
        cluster.route(trace[i]);  // arrivals 0.001 .. 0.008
    EXPECT_EQ(cluster.injectedPerShard(), (std::vector<size_t>{4, 4}));

    // Phase 2 (outage): shard 0 is unroutable, everything lands on 1.
    for (size_t i = 8; i < 18; ++i)
        cluster.route(trace[i]);  // arrivals 0.009 .. 0.018
    EXPECT_EQ(cluster.shardHealth(0), HealthState::Failed);
    // The plan intent (active) survives the crash — only routability
    // is revoked, so recovery can restore the shard in place.
    EXPECT_TRUE(cluster.isActive(0));
    EXPECT_EQ(cluster.injectedPerShard(), (std::vector<size_t>{4, 14}));

    // Phase 3 (recovered): the shard rejoins its router's rotation
    // and the 10 remaining arrivals split between both shards again.
    for (size_t i = 18; i < 28; ++i)
        cluster.route(trace[i]);  // arrivals 0.019 .. 0.028
    EXPECT_EQ(cluster.shardHealth(0), HealthState::Healthy);
    EXPECT_EQ(cluster.injectedPerShard()[0] +
                  cluster.injectedPerShard()[1],
              28u);
    EXPECT_EQ(cluster.injectedPerShard()[0], 9u);
    EXPECT_EQ(cluster.injectedPerShard()[1], 19u);
    cluster.drainAll();
}

TEST(ClusterSimFaults, DegradedShardMultipliesLatency)
{
    model::Model m = model::buildModel(ModelId::DlrmRmc1);
    sim::PreparedWorkload w = sim::prepare(hw::serverSpec(ServerType::T2),
                                           m, cpuConfig(4, 2, 128));
    // Sparse arrivals: no queueing, so the sojourn time is pure
    // service latency and the slowdown factor shows up unblended.
    std::vector<workload::Query> trace = uniformTrace(20, 0.5, 40);

    auto run = [&](double slowdown) {
        sim::ClusterSim cluster(sim::ClusterSim::Options{});
        cluster.addShard(w, 1000.0);
        if (slowdown > 1.0)
            cluster.scheduleHealth(
                {{0.0, 0, HealthState::Degraded, slowdown}});
        return cluster.run(trace, 5.0);
    };
    sim::ClusterSimResult healthy = run(1.0);
    sim::ClusterSimResult slowed = run(4.0);

    EXPECT_EQ(slowed.completed, healthy.completed);
    EXPECT_EQ(slowed.failed_inflight, 0u);  // stragglers keep serving
    ASSERT_GT(healthy.p50_ms, 0.0);
    EXPECT_NEAR(slowed.p50_ms / healthy.p50_ms, 4.0, 0.5);
    EXPECT_NEAR(slowed.p99_ms / healthy.p99_ms, 4.0, 0.5);
    ASSERT_EQ(slowed.health_transitions.size(), 1u);
    EXPECT_EQ(slowed.health_transitions[0].to, HealthState::Degraded);
    EXPECT_EQ(slowed.health_transitions[0].slowdown, 4.0);
}

TEST(ClusterSimFaults, FeedbackRouterShiftsLoadAwayFromStraggler)
{
    model::Model m = model::buildModel(ModelId::DlrmRmc1);
    sim::PreparedWorkload w = sim::prepare(hw::serverSpec(ServerType::T2),
                                           m, cpuConfig(4, 2, 128));
    auto run = [&](sim::RouterPolicy policy) {
        sim::ClusterSim::Options copt;
        copt.router = policy;
        copt.sla_ms = 5.0;
        auto cluster = std::make_unique<sim::ClusterSim>(copt);
        cluster->addShard(w, 1000.0);
        cluster->addShard(w, 1000.0);
        // Shard 0 straggles from the start: its p99 blows through the
        // SLA every harvest window, shard 1 stays comfortably inside.
        cluster->scheduleHealth({{0.0, 0, HealthState::Degraded, 20.0}});
        cluster->run(uniformTrace(800, 0.002, 40), 0.2);
        return cluster;
    };

    // The static heterogeneity-aware router splits equal weights
    // 50/50 no matter what the shards do...
    auto wrr = run(sim::RouterPolicy::HerculesWeighted);
    EXPECT_EQ(wrr->injectedPerShard()[0], wrr->injectedPerShard()[1]);

    // ...latency feedback demotes the straggler window by window.
    auto fb = run(sim::RouterPolicy::LatencyFeedback);
    EXPECT_LT(fb->feedbackWeight(0), fb->feedbackWeight(1));
    EXPECT_LT(fb->feedbackWeight(0), fb->weight(0));
    EXPECT_GT(fb->injectedPerShard()[1],
              fb->injectedPerShard()[0] * 3 / 2);
}

// ---- bit-identity: a no-op faults block is invisible ----------------------

/** Hand-built efficiency table (the test_scenario golden shape). */
core::EfficiencyTable
goldenTable()
{
    core::EfficiencyTable t;
    auto add = [&](ServerType st, ModelId mid, double qps, double w) {
        core::EfficiencyEntry e;
        e.server = st;
        e.model = mid;
        e.feasible = true;
        e.qps = qps;
        e.power_w = w;
        e.config = cpuConfig(4, 1, 64);
        t.set(e);
    };
    add(ServerType::T2, ModelId::DlrmRmc1, 2000.0, 100.0);
    add(ServerType::T2, ModelId::DlrmRmc2, 1000.0, 200.0);
    add(ServerType::T1, ModelId::DlrmRmc1, 1200.0, 90.0);
    add(ServerType::T1, ModelId::DlrmRmc2, 600.0, 150.0);
    return t;
}

scenario::ScenarioSpec
goldenSpec()
{
    scenario::ScenarioSpec spec;
    spec.name = "golden_faults";
    spec.fleet = {{ServerType::T2, 2}, {ServerType::T1, 1}};
    const ModelId ids[2] = {ModelId::DlrmRmc1, ModelId::DlrmRmc2};
    const double peaks[2] = {400.0, 200.0};
    for (int s = 0; s < 2; ++s) {
        scenario::ServiceScenario svc;
        svc.spec.model = ids[s];
        svc.spec.load.peak_qps = peaks[s];
        svc.spec.load.trough_frac = 0.35;
        svc.spec.load.peak_hour = 20.0 - 8.0 * s;
        svc.spec.load.seed = 5 + static_cast<uint64_t>(s);
        spec.services.push_back(svc);
    }
    spec.serve.horizon_hours = 3.0;
    spec.serve.interval_hours = 0.5;
    spec.serve.trace.time_compression = 480.0;
    spec.serve.trace.seed = 42;
    return spec;
}

void
expectSameServe(const cluster::MultiServeResult& a,
                const cluster::MultiServeResult& b)
{
    EXPECT_EQ(a.sim.injected, b.sim.injected);
    EXPECT_EQ(a.sim.completed, b.sim.completed);
    EXPECT_EQ(a.sim.dropped, b.sim.dropped);
    EXPECT_EQ(a.sim.failed_inflight, b.sim.failed_inflight);
    EXPECT_EQ(a.sim.p50_ms, b.sim.p50_ms);
    EXPECT_EQ(a.sim.p99_ms, b.sim.p99_ms);
    EXPECT_EQ(a.sim.max_ms, b.sim.max_ms);
    EXPECT_EQ(a.sim.sla_violations, b.sim.sla_violations);
    EXPECT_EQ(a.sim.avg_provisioned_power_w,
              b.sim.avg_provisioned_power_w);
    EXPECT_EQ(a.sim.avg_consumed_power_w, b.sim.avg_consumed_power_w);
    ASSERT_EQ(a.sim.intervals.size(), b.sim.intervals.size());
    for (size_t k = 0; k < a.sim.intervals.size(); ++k) {
        EXPECT_EQ(a.sim.intervals[k].completions,
                  b.sim.intervals[k].completions)
            << "interval " << k;
        EXPECT_EQ(a.sim.intervals[k].p99_ms, b.sim.intervals[k].p99_ms)
            << "interval " << k;
        EXPECT_EQ(a.sim.intervals[k].consumed_power_w,
                  b.sim.intervals[k].consumed_power_w)
            << "interval " << k;
    }
}

TEST(ScenarioFaults, NoOpFaultsBlockIsBitIdentical)
{
    core::EfficiencyTable table = goldenTable();
    scenario::ScenarioResult base = scenario::run(goldenSpec(), &table);
    EXPECT_TRUE(base.serve.sim.health_transitions.empty());

    // A faults block that schedules nothing (only the seed differs
    // from the default) must not disturb a single double.
    scenario::ScenarioSpec seeded = goldenSpec();
    seeded.serve.faults.seed = 99;
    EXPECT_FALSE(seeded.serve.faults.enabled());
    scenario::ScenarioResult r1 = scenario::run(seeded, &table);
    expectSameServe(r1.serve, base.serve);

    // So must scripted events that never fire inside the horizon.
    scenario::ScenarioSpec late = goldenSpec();
    late.serve.faults.events = {
        {1000.0, 0, 0, HealthState::Failed, 1.0}};
    scenario::ScenarioResult r2 = scenario::run(late, &table);
    EXPECT_TRUE(r2.serve.sim.health_transitions.empty());
    expectSameServe(r2.serve, base.serve);
}

TEST(ScenarioFaults, CrashAndRecoveryFlowThroughServingLoop)
{
    core::EfficiencyTable table = goldenTable();
    scenario::ScenarioSpec spec = goldenSpec();
    // Kill one T2 server mid-interval and repair it an hour later —
    // under a finite power cap, so the replacement capacity the
    // self-healing replan activates must still fit the budget.
    spec.serve.power_cap_w = 450.0;
    spec.serve.faults.events = {
        {0.75, 0, 0, HealthState::Failed, 1.0},
        {1.75, 0, 0, HealthState::Healthy, 1.0},
    };
    scenario::ScenarioResult r = scenario::run(spec, &table);
    const sim::ClusterSimResult& sim = r.serve.sim;

    // Identical spec (including the faults block) => bit-identical
    // result, the determinism contract of the whole stack.
    scenario::ScenarioResult again = scenario::run(spec, &table);
    expectSameServe(again.serve, r.serve);

    // One physical server hosts one personality shard per service it
    // serves, so the crash+repair pair expands to >= 2 transitions,
    // alternating failed -> healthy per shard, at the scripted times
    // (trace seconds: hours * 3600 / compression).
    ASSERT_GE(sim.health_transitions.size(), 2u);
    const double s_per_hour = 3600.0 / spec.serve.trace.time_compression;
    size_t killed_total = 0;
    for (const sim::HealthTransition& ht : sim.health_transitions) {
        EXPECT_TRUE(ht.t_s == 0.75 * s_per_hour ||
                    ht.t_s == 1.75 * s_per_hour)
            << "unexpected transition at " << ht.t_s;
        if (ht.to == HealthState::Failed)
            killed_total += ht.killed_inflight;
        else
            EXPECT_EQ(ht.killed_inflight, 0u);
    }
    EXPECT_EQ(sim.failed_inflight, killed_total);
    EXPECT_GE(sim.sla_violations, sim.failed_inflight);

    // The run completes and still serves the vast majority of the
    // trace: the self-healing replan absorbs the lost server.
    EXPECT_GT(sim.completed, sim.failed_inflight + sim.dropped);

    // Every interval's plan — including the post-crash replans —
    // respects the power cap.
    for (const sim::IntervalStats& iv : sim.intervals)
        EXPECT_LE(iv.provisioned_power_w, 450.0 + 1e-9);
}

// ---- spec-level faults: bind errors and validateSpec ----------------------

TEST(SpecIoFaults, NegativeAndNaNNumbersRejectedAtBindTime)
{
    std::string err;
    EXPECT_FALSE(scenario::parseSpec("{\"sla_ms\": -1}", &err)
                     .has_value());
    EXPECT_EQ(err, "line 1: key 'sla_ms' in scenario must be "
                   "non-negative (got -1)");

    EXPECT_FALSE(
        scenario::parseSpec("{\n  \"horizon_hours\": 0\n}", &err)
            .has_value());
    EXPECT_EQ(err, "line 2: key 'horizon_hours' in scenario must be "
                   "positive (got 0)");

    EXPECT_FALSE(scenario::parseSpec(
                     "{\"services\": [{\"model\": \"DLRM-RMC1\", "
                     "\"peak_qps\": -5}]}",
                     &err)
                     .has_value());
    EXPECT_EQ(err, "line 1: key 'peak_qps' in services[0] must be "
                   "non-negative (got -5)");

    EXPECT_FALSE(scenario::parseSpec(
                     "{\"power_cap_schedule\": "
                     "[{\"from_hour\": -2, \"cap_w\": 300}]}",
                     &err)
                     .has_value());
    EXPECT_EQ(err, "line 1: key 'from_hour' in power_cap_schedule[0] "
                   "must be non-negative (got -2)");

    // The grammar itself already rejects non-finite literals.
    EXPECT_FALSE(scenario::parseSpec("{\"sla_ms\": 1e999}", &err)
                     .has_value());
    EXPECT_EQ(err, "line 1: number out of range");
}

TEST(SpecIoFaults, FaultsBlockBindErrorsArePrecise)
{
    std::string err;
    EXPECT_FALSE(scenario::parseSpec(
                     "{\"faults\": {\"degrade_slowdown\": 0.5}}", &err)
                     .has_value());
    EXPECT_EQ(err, "line 1: key 'degrade_slowdown' in faults must be "
                   ">= 1 (got 0.5)");

    EXPECT_FALSE(scenario::parseSpec(
                     "{\"faults\": {\"crash_mtbf_hours\": -3}}", &err)
                     .has_value());
    EXPECT_EQ(err, "line 1: key 'crash_mtbf_hours' in faults must be "
                   "non-negative (got -3)");

    EXPECT_FALSE(
        scenario::parseSpec("{\n"
                            "  \"faults\": {\"events\": [\n"
                            "    {\"at_hour\": -1, \"state\": "
                            "\"failed\"}\n"
                            "  ]}\n"
                            "}",
                            &err)
            .has_value());
    EXPECT_EQ(err, "line 3: key 'at_hour' in faults.events[0] must be "
                   "non-negative (got -1)");

    EXPECT_FALSE(scenario::parseSpec(
                     "{\"faults\": {\"events\": [{\"at_hour\": 1, "
                     "\"state\": \"zombie\"}]}}",
                     &err)
                     .has_value());
    EXPECT_EQ(err,
              "line 1: unknown health state 'zombie' in "
              "faults.events[0]");

    EXPECT_FALSE(scenario::parseSpec(
                     "{\"faults\": {\"events\": [{\"at_hour\": 1, "
                     "\"state\": \"degraded\", \"slowdown\": 0}]}}",
                     &err)
                     .has_value());
    EXPECT_EQ(err, "line 1: key 'slowdown' in faults.events[0] must be "
                   ">= 1 (got 0)");

    EXPECT_FALSE(scenario::parseSpec(
                     "{\"faults\": {\"events\": [{\"at_hour\": 1, "
                     "\"state\": \"failed\", \"mtbf\": 3}]}}",
                     &err)
                     .has_value());
    EXPECT_EQ(err,
              "line 1: unknown key 'mtbf' in faults.events[0]");
}

TEST(SpecIoFaults, ValidateSpecCatchesSemanticFaultErrors)
{
    std::string err;
    scenario::ScenarioSpec ok = goldenSpec();
    ok.serve.faults.events = {{1.0, 1, 0, HealthState::Failed, 1.0}};
    EXPECT_TRUE(scenario::validateSpec(ok, &err)) << err;

    // Fleet coordinates are only checkable against the spec's fleet,
    // so they are validateSpec's job, not the binder's.
    scenario::ScenarioSpec bad_fleet = goldenSpec();
    bad_fleet.serve.faults.events = {
        {1.0, 5, 0, HealthState::Failed, 1.0}};
    EXPECT_FALSE(scenario::validateSpec(bad_fleet, &err));
    EXPECT_NE(err.find("faults.events[0]"), std::string::npos);

    scenario::ScenarioSpec bad_slot = goldenSpec();
    bad_slot.serve.faults.events = {
        {1.0, 1, 3, HealthState::Failed, 1.0}};
    EXPECT_FALSE(scenario::validateSpec(bad_slot, &err));
    EXPECT_NE(err.find("faults.events[0]"), std::string::npos);

    // NaN knobs can only enter through the C++ API; validateSpec
    // still refuses to run them.
    scenario::ScenarioSpec nan_knob = goldenSpec();
    nan_knob.serve.faults.crash_mtbf_hours =
        std::numeric_limits<double>::quiet_NaN();
    EXPECT_FALSE(scenario::validateSpec(nan_knob, &err));
    EXPECT_NE(err.find("faults"), std::string::npos);

    scenario::ScenarioSpec nan_cap = goldenSpec();
    nan_cap.serve.power_cap_schedule = {
        {0.0, std::numeric_limits<double>::quiet_NaN()}};
    EXPECT_FALSE(scenario::validateSpec(nan_cap, &err));
    EXPECT_NE(err.find("power_cap_schedule"), std::string::npos);
}

TEST(SpecIoFaults, FaultsBlockRoundTripsCanonically)
{
    scenario::ScenarioSpec s;
    s.name = "faulty";
    s.fleet = {{ServerType::T2, 2}, {ServerType::T3, 1}};
    scenario::ServiceScenario svc;
    svc.spec.model = ModelId::DlrmRmc1;
    svc.spec.load.peak_qps = 100.0;
    s.services.push_back(svc);
    s.serve.faults.seed = 11;
    s.serve.faults.crash_mtbf_hours = 8.0;
    s.serve.faults.crash_mttr_hours = 0.75;
    s.serve.faults.degrade_mtbf_hours = 6.0;
    s.serve.faults.degrade_mttr_hours = 2.0;
    s.serve.faults.degrade_slowdown = 3.5;
    s.serve.faults.events = {
        {1.5, 1, 0, HealthState::Failed, 1.0},
        {2.5, 1, 0, HealthState::Healthy, 1.0},
        {3.0, 0, 1, HealthState::Degraded, 2.0},
    };

    std::string text = scenario::toText(s);
    std::string err;
    auto parsed = scenario::parseSpec(text, &err);
    ASSERT_TRUE(parsed.has_value()) << err;
    EXPECT_EQ(scenario::toText(*parsed), text);

    const FaultSpec& f = parsed->serve.faults;
    EXPECT_EQ(f.seed, 11u);
    EXPECT_EQ(f.crash_mtbf_hours, 8.0);
    EXPECT_EQ(f.degrade_slowdown, 3.5);
    ASSERT_EQ(f.events.size(), 3u);
    EXPECT_EQ(f.events[0].state, HealthState::Failed);
    EXPECT_EQ(f.events[2].slowdown, 2.0);
}

}  // namespace
}  // namespace hercules
