/**
 * @file
 * Tests of the gradient-based search (Algorithm 1) and the baseline
 * schedulers: near-optimality against the exhaustive oracle, constraint
 * compliance, trace sanity and the paper's dominance relations
 * (Hercules >= Baymax >= DeepRecSys on accelerators).
 */
#include <gtest/gtest.h>

#include "sched/baselines.h"
#include "sched/gradient_search.h"

namespace hercules::sched {
namespace {

using hw::ServerType;
using model::ModelId;
using model::Variant;

SearchOptions
fastSearch()
{
    SearchOptions opt;
    opt.measure.sim.num_queries = 300;
    opt.measure.sim.warmup_queries = 60;
    opt.measure.bisect_iters = 5;
    opt.space.batches = {32, 128, 512};
    opt.space.fusion_limits = {0, 1000, 4000};
    opt.space.max_gpu_threads = 4;
    opt.space.host_helper_threads = {2};
    return opt;
}

TEST(GradientSearch, FindsFeasibleConfigOnCpu)
{
    model::Model m = model::buildModel(ModelId::DlrmRmc1);
    SearchResult r = gradientSearchMapping(
        hw::serverSpec(ServerType::T2), m, Mapping::CpuModelBased, 20.0,
        fastSearch());
    ASSERT_TRUE(r.best.has_value());
    EXPECT_GT(r.best_qps, 0.0);
    EXPECT_LE(r.best_point.result.tail_ms, 20.0);
    EXPECT_GT(r.evals, 3);
}

TEST(GradientSearch, NearOptimalVsExhaustive)
{
    // The headline property of Algorithm 1: the cheap climb lands
    // within a few percent of the exhaustive optimum of the same space.
    model::Model m = model::buildModel(ModelId::DlrmRmc1);
    const hw::ServerSpec& server = hw::serverSpec(ServerType::T2);
    SearchOptions opt = fastSearch();
    opt.space.max_cores_per_thread = 2;

    SearchResult grad = gradientSearchMapping(
        server, m, Mapping::CpuModelBased, 20.0, opt);
    SearchResult oracle =
        exhaustiveSearch(server, m, Mapping::CpuModelBased, 20.0, opt);
    ASSERT_TRUE(grad.best && oracle.best);
    EXPECT_GE(grad.best_qps, 0.85 * oracle.best_qps);
    // And it must do so with far fewer measurements.
    EXPECT_LT(grad.evals, oracle.evals);
}

TEST(GradientSearch, TraceMarksAcceptedPath)
{
    model::Model m = model::buildModel(ModelId::DlrmRmc1);
    SearchResult r = gradientSearchMapping(
        hw::serverSpec(ServerType::T2), m, Mapping::CpuModelBased, 20.0,
        fastSearch());
    int accepted = 0;
    for (const auto& step : r.trace)
        accepted += step.accepted ? 1 : 0;
    EXPECT_GE(accepted, 1);
    // evals counts engine cache misses (distinct simulator
    // measurements); steps replayed from the memo land in cache_hits.
    EXPECT_EQ(r.trace.size(),
              static_cast<size_t>(r.evals + r.cache_hits));
}

TEST(GradientSearch, RespectsPowerBudget)
{
    model::Model m = model::buildModel(ModelId::DlrmRmc1);
    SearchOptions opt = fastSearch();
    opt.power_budget_w = 150.0;  // below T2 peak (~175 W)
    SearchResult r = gradientSearchMapping(
        hw::serverSpec(ServerType::T2), m, Mapping::CpuModelBased, 20.0,
        opt);
    if (r.best) {
        EXPECT_LE(r.best_point.result.peak_power_w, 150.0 + 1e-9);
    }
}

TEST(GradientSearch, InfeasibleSlaGivesNoBest)
{
    model::Model m = model::buildModel(ModelId::DlrmRmc1);
    SearchResult r = gradientSearchMapping(
        hw::serverSpec(ServerType::T2), m, Mapping::CpuModelBased, 0.01,
        fastSearch());
    EXPECT_FALSE(r.best.has_value());
}

TEST(HerculesSearch, CombinesMappings)
{
    model::Model m = model::buildModel(ModelId::DlrmRmc1);
    SearchResult r = herculesTaskSearch(hw::serverSpec(ServerType::T2),
                                        m, 20.0, fastSearch());
    ASSERT_TRUE(r.best.has_value());
    // RMC1 is sparse-heavy: the S-D pipeline should win on the CPU.
    EXPECT_EQ(r.best->mapping, Mapping::CpuSdPipeline);
}

TEST(HerculesSearch, BeatsOrMatchesBaselineEverywhere)
{
    // Fig 14 dominance: Hercules explores a superset of the baseline
    // space, so its best config can never be worse.
    model::Model m = model::buildModel(ModelId::DlrmRmc1);
    SearchOptions opt = fastSearch();
    for (ServerType st : {ServerType::T2, ServerType::T3}) {
        SearchResult base =
            baselineSearch(hw::serverSpec(st), m, 20.0, opt);
        SearchResult herc =
            herculesTaskSearch(hw::serverSpec(st), m, 20.0, opt);
        ASSERT_TRUE(base.best && herc.best) << hw::serverTypeName(st);
        EXPECT_GE(herc.best_qps, 0.97 * base.best_qps)
            << hw::serverTypeName(st);
    }
}

TEST(Baselines, DeepRecSysUsesAllCoresOneEach)
{
    model::Model m = model::buildModel(ModelId::DlrmRmc1);
    SearchResult r = deepRecSysSearch(hw::serverSpec(ServerType::T2), m,
                                      20.0, fastSearch());
    ASSERT_TRUE(r.best.has_value());
    EXPECT_EQ(r.best->cpu_threads, 20);
    EXPECT_EQ(r.best->cores_per_thread, 1);
    EXPECT_EQ(r.best->mapping, Mapping::CpuModelBased);
}

TEST(Baselines, BaymaxNeverFuses)
{
    model::Model m = model::buildModel(ModelId::DlrmRmc3, Variant::Small);
    SearchResult r = baymaxSearch(hw::serverSpec(ServerType::T7), m,
                                  50.0, fastSearch());
    ASSERT_TRUE(r.best.has_value());
    EXPECT_EQ(r.best->fusion_limit, 0);
    for (const auto& step : r.trace)
        EXPECT_EQ(step.cfg.fusion_limit, 0);
}

TEST(Baselines, Fig6OrderingOnAccelerator)
{
    // DeepRecSys (1 thread, no fusion) <= Baymax (co-location) <=
    // Hercules (co-location + fusion), the Fig 6 ladder.
    model::Model m = model::buildModel(ModelId::DlrmRmc3, Variant::Small);
    const hw::ServerSpec& server = hw::serverSpec(ServerType::T7);
    SearchOptions opt = fastSearch();
    SearchResult drs = deepRecSysGpuSearch(server, m, 50.0, opt);
    SearchResult bay = baymaxSearch(server, m, 50.0, opt);
    SearchResult herc = gradientSearchMapping(
        server, m, Mapping::GpuModelBased, 50.0, opt);
    ASSERT_TRUE(drs.best && bay.best && herc.best);
    EXPECT_GE(bay.best_qps, 0.95 * drs.best_qps);
    EXPECT_GT(herc.best_qps, bay.best_qps);
    // Fusion is the lever: the Hercules winner uses a non-zero limit.
    EXPECT_GT(herc.best->fusion_limit, 0);
}

TEST(Baselines, GpuBaselineRequiresGpu)
{
    model::Model m = model::buildModel(ModelId::DlrmRmc1);
    EXPECT_DEATH(
        baymaxSearch(hw::serverSpec(ServerType::T2), m, 20.0,
                     fastSearch()),
        "no accelerator");
}

TEST(Baselines, CombinedPicksBestSide)
{
    model::Model m = model::buildModel(ModelId::MtWnd);
    SearchResult r = baselineSearch(hw::serverSpec(ServerType::T7), m,
                                    100.0, fastSearch());
    ASSERT_TRUE(r.best.has_value());
    EXPECT_GT(r.best_qps, 0.0);
}

/** Hercules beats the baseline across models on the NMP server. */
class DominanceEveryModel : public ::testing::TestWithParam<ModelId>
{
};

TEST_P(DominanceEveryModel, HerculesAtLeastBaselineOnT3)
{
    model::Model m = model::buildModel(GetParam());
    SearchOptions opt = fastSearch();
    const hw::ServerSpec& server = hw::serverSpec(ServerType::T3);
    SearchResult base = baselineSearch(server, m, m.sla_ms, opt);
    SearchResult herc = herculesTaskSearch(server, m, m.sla_ms, opt);
    ASSERT_TRUE(base.best && herc.best) << m.name;
    EXPECT_GE(herc.best_qps, 0.97 * base.best_qps) << m.name;
}

INSTANTIATE_TEST_SUITE_P(AllModels, DominanceEveryModel,
                         ::testing::ValuesIn(model::allModels()));

}  // namespace
}  // namespace hercules::sched
