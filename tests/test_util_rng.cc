/**
 * @file
 * Tests for the deterministic RNG, its distributions and the Zipf
 * machinery used by the locality-aware partitioner.
 */
#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.h"
#include "util/stats.h"

namespace hercules {
namespace {

TEST(Rng, DeterministicStreams)
{
    Rng a(123), b(123), c(124);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.nextU64(), b.nextU64());
    bool differs = false;
    Rng a2(123);
    for (int i = 0; i < 100; ++i)
        differs |= a2.nextU64() != c.nextU64();
    EXPECT_TRUE(differs);
}

TEST(Rng, ForkIndependence)
{
    Rng a(7);
    Rng child = a.fork();
    // The fork must not replay the parent stream.
    EXPECT_NE(a.nextU64(), child.nextU64());
}

TEST(Rng, UniformRange)
{
    Rng r(42);
    for (int i = 0; i < 10000; ++i) {
        double u = r.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
    }
}

TEST(Rng, UniformMeanVariance)
{
    Rng r(42);
    OnlineStats s;
    for (int i = 0; i < 50000; ++i)
        s.add(r.uniform());
    EXPECT_NEAR(s.mean(), 0.5, 0.01);
    EXPECT_NEAR(s.variance(), 1.0 / 12.0, 0.005);
}

TEST(Rng, UniformIntBoundsInclusive)
{
    Rng r(9);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 1000; ++i) {
        int64_t v = r.uniformInt(3, 7);
        ASSERT_GE(v, 3);
        ASSERT_LE(v, 7);
        saw_lo |= v == 3;
        saw_hi |= v == 7;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, ExponentialMean)
{
    Rng r(5);
    OnlineStats s;
    const double rate = 4.0;
    for (int i = 0; i < 50000; ++i)
        s.add(r.exponential(rate));
    EXPECT_NEAR(s.mean(), 1.0 / rate, 0.01);
}

TEST(Rng, NormalMoments)
{
    Rng r(11);
    OnlineStats s;
    for (int i = 0; i < 50000; ++i)
        s.add(r.normal(10.0, 3.0));
    EXPECT_NEAR(s.mean(), 10.0, 0.1);
    EXPECT_NEAR(s.stddev(), 3.0, 0.1);
}

TEST(Rng, LognormalMedian)
{
    Rng r(13);
    PercentileTracker t;
    for (int i = 0; i < 20000; ++i)
        t.add(r.lognormal(std::log(50.0), 1.0));
    EXPECT_NEAR(t.p50(), 50.0, 3.0);
}

TEST(Rng, PoissonSmallMean)
{
    Rng r(17);
    OnlineStats s;
    for (int i = 0; i < 30000; ++i)
        s.add(static_cast<double>(r.poisson(3.5)));
    EXPECT_NEAR(s.mean(), 3.5, 0.1);
    EXPECT_NEAR(s.variance(), 3.5, 0.2);
}

TEST(Rng, PoissonLargeMeanNormalApprox)
{
    Rng r(19);
    OnlineStats s;
    for (int i = 0; i < 20000; ++i)
        s.add(static_cast<double>(r.poisson(200.0)));
    EXPECT_NEAR(s.mean(), 200.0, 1.0);
    EXPECT_NEAR(s.stddev(), std::sqrt(200.0), 0.5);
}

TEST(Rng, PoissonZeroMean)
{
    Rng r(23);
    EXPECT_EQ(r.poisson(0.0), 0u);
}

TEST(ZipfTopMass, BoundaryValues)
{
    EXPECT_DOUBLE_EQ(zipfTopMass(1000, 0.9, 0), 0.0);
    EXPECT_DOUBLE_EQ(zipfTopMass(1000, 0.9, 1000), 1.0);
    EXPECT_DOUBLE_EQ(zipfTopMass(1000, 0.9, 2000), 1.0);
}

TEST(ZipfTopMass, MonotoneInK)
{
    double prev = 0.0;
    for (uint64_t k : {1u, 10u, 100u, 1000u, 10000u, 100000u}) {
        double m = zipfTopMass(1u << 20, 0.9, k);
        EXPECT_GT(m, prev);
        prev = m;
    }
}

TEST(ZipfTopMass, SkewConcentratesMass)
{
    // A more skewed distribution puts more mass in the head.
    double flat = zipfTopMass(1'000'000, 0.5, 1000);
    double skewed = zipfTopMass(1'000'000, 1.1, 1000);
    EXPECT_GT(skewed, flat);
}

TEST(ZipfTopMass, UniformCase)
{
    // Exponent 0 is the uniform distribution: mass = k/n.
    EXPECT_NEAR(zipfTopMass(1000, 0.0, 250), 0.25, 0.01);
}

TEST(ZipfTopMass, AgreesWithExactSmallDomain)
{
    const uint64_t n = 500;
    const double s = 0.9;
    double exact_total = 0.0;
    for (uint64_t i = 1; i <= n; ++i)
        exact_total += std::pow(static_cast<double>(i), -s);
    for (uint64_t k : {1u, 5u, 50u, 250u}) {
        double exact_head = 0.0;
        for (uint64_t i = 1; i <= k; ++i)
            exact_head += std::pow(static_cast<double>(i), -s);
        EXPECT_NEAR(zipfTopMass(n, s, k), exact_head / exact_total, 0.01)
            << "k=" << k;
    }
}

TEST(ZipfSampler, SamplesInDomain)
{
    Rng r(3);
    ZipfSampler z(1000, 0.9);
    for (int i = 0; i < 5000; ++i)
        ASSERT_LT(z.sample(r), 1000u);
}

TEST(ZipfSampler, HeadHeavierThanTail)
{
    Rng r(31);
    ZipfSampler z(100000, 1.0);
    int head = 0;
    const int draws = 20000;
    for (int i = 0; i < draws; ++i)
        if (z.sample(r) < 100)
            ++head;
    // Top 0.1% of ranks should capture far more than 0.1% of draws.
    EXPECT_GT(head, draws / 50);
}

TEST(ZipfSampler, EmpiricalMatchesTopMass)
{
    Rng r(37);
    ZipfSampler z(50000, 0.9);
    const uint64_t k = 500;
    int head = 0;
    const int draws = 40000;
    for (int i = 0; i < draws; ++i)
        if (z.sample(r) < k)
            ++head;
    double expected = z.topMass(k);
    EXPECT_NEAR(static_cast<double>(head) / draws, expected, 0.02);
}

/** Distribution parameters swept as properties. */
class ZipfParamTest
    : public ::testing::TestWithParam<std::tuple<uint64_t, double>>
{
};

TEST_P(ZipfParamTest, MassIsValidDistribution)
{
    auto [n, s] = GetParam();
    double prev = 0.0;
    for (uint64_t k = 1; k <= n; k *= 4) {
        double m = zipfTopMass(n, s, k);
        EXPECT_GE(m, prev);
        EXPECT_LE(m, 1.0 + 1e-9);
        prev = m;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Domains, ZipfParamTest,
    ::testing::Combine(::testing::Values<uint64_t>(100, 10'000, 1'000'000,
                                                   300'000'000),
                       ::testing::Values(0.5, 0.85, 0.95, 1.0, 1.2)));

}  // namespace
}  // namespace hercules
