/**
 * @file
 * Tests of the scenario semantic linter (src/scenario/lint.h): every
 * diagnostic code fires with its exact code/path/message on a
 * C++-seeded defective spec, every seeded-defect file in
 * tests/lint_specs/ yields exactly the one diagnostic its filename
 * names, every shipped .scn in scenarios/ lints to zero diagnostics, and
 * the opt-in `lint` gate in scenario::run() rejects an erroneous spec
 * before profiling.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <limits>
#include <string>
#include <vector>

#include "cluster/serving.h"
#include "core/efficiency_table.h"
#include "fault/fault.h"
#include "model/model_zoo.h"
#include "scenario/lint.h"
#include "scenario/scenario.h"
#include "scenario/spec_io.h"

namespace hercules::scenario {
namespace {

using hw::ServerType;
using model::ModelId;

std::string
scenarioDir()
{
#ifdef HERCULES_SCENARIO_DIR
    return HERCULES_SCENARIO_DIR;
#else
    return "../scenarios";
#endif
}

std::string
lintSpecDir()
{
#ifdef HERCULES_LINT_SPEC_DIR
    return HERCULES_LINT_SPEC_DIR;
#else
    return "../tests/lint_specs";
#endif
}

/** A minimal spec that lints clean (table-free). */
ScenarioSpec
cleanSpec()
{
    ScenarioSpec s;
    s.name = "clean";
    s.fleet = {{ServerType::T2, 2}};
    ServiceScenario svc;
    svc.spec.model = ModelId::DlrmRmc1;
    svc.spec.load.peak_qps = 100.0;
    s.services = {svc};
    return s;
}

const Diagnostic*
findCode(const std::vector<Diagnostic>& ds, const std::string& code)
{
    for (const Diagnostic& d : ds)
        if (d.code == code)
            return &d;
    return nullptr;
}

/** Lint, then assert diagnostic `code` fired at `path` with `message`. */
void
expectDiagnostic(const ScenarioSpec& s, const std::string& code,
                 Severity sev, const std::string& path,
                 const std::string& message,
                 const core::EfficiencyTable* table = nullptr)
{
    std::vector<Diagnostic> ds = lint(s, table);
    const Diagnostic* d = findCode(ds, code);
    ASSERT_NE(d, nullptr) << "diagnostic " << code << " did not fire";
    EXPECT_EQ(d->severity, sev) << code;
    EXPECT_EQ(d->path, path) << code;
    EXPECT_EQ(d->message, message) << code;
}

// ---- baseline ------------------------------------------------------------

TEST(Lint, CleanSpecHasZeroDiagnostics)
{
    EXPECT_TRUE(lint(cleanSpec()).empty());
}

TEST(Lint, FormatDiagnosticShape)
{
    Diagnostic d{"E106", Severity::Error, "cap too low",
                 "power_cap_w"};
    EXPECT_EQ(formatDiagnostic(d),
              "E106 error at power_cap_w: cap too low");
    Diagnostic w{"W206", Severity::Warning, "over-committed", ""};
    EXPECT_EQ(formatDiagnostic(w), "W206 warning: over-committed");
}

TEST(Lint, HasErrorsDistinguishesSeverity)
{
    std::vector<Diagnostic> warn_only{
        {"W201", Severity::Warning, "m", "p"}};
    EXPECT_FALSE(hasErrors(warn_only));
    warn_only.push_back({"E101", Severity::Error, "m", "p"});
    EXPECT_TRUE(hasErrors(warn_only));
    EXPECT_FALSE(hasErrors({}));
}

// ---- structural errors ---------------------------------------------------

TEST(Lint, E101EmptyFleet)
{
    ScenarioSpec s = cleanSpec();
    s.fleet.clear();
    expectDiagnostic(s, "E101", Severity::Error, "fleet",
                     "empty fleet: the scenario has no servers to "
                     "provision");
}

TEST(Lint, E102NoServices)
{
    ScenarioSpec s = cleanSpec();
    s.services.clear();
    expectDiagnostic(s, "E102", Severity::Error, "services",
                     "no services: the scenario has nothing to serve");
}

TEST(Lint, E103NegativeSlots)
{
    ScenarioSpec s = cleanSpec();
    s.fleet[0].shard_slots = -2;
    expectDiagnostic(s, "E103", Severity::Error, "fleet[0].slots",
                     "negative shard slots (-2) for T2");
}

TEST(Lint, E104NonPositiveHorizonAndInterval)
{
    ScenarioSpec s = cleanSpec();
    s.serve.horizon_hours = 0.0;
    s.serve.interval_hours = -0.25;
    expectDiagnostic(s, "E104", Severity::Error, "horizon_hours",
                     "horizon_hours must be positive (got 0)");
    std::vector<Diagnostic> ds = lint(s);
    bool interval = false;
    for (const Diagnostic& d : ds)
        interval = interval || (d.code == "E104" &&
                                d.path == "interval_hours");
    EXPECT_TRUE(interval);
}

// ---- power-cap checks ----------------------------------------------------

TEST(Lint, E105UnsortedSchedule)
{
    ScenarioSpec s = cleanSpec();
    s.serve.power_cap_schedule = {{12.0, 500.0}, {6.0, 400.0}};
    expectDiagnostic(s, "E105", Severity::Error,
                     "power_cap_schedule[1]",
                     "power_cap_schedule not sorted by from_hour (6 "
                     "after 12)");
    // A malformed schedule suppresses the derived cap checks: E106
    // against bogus segments would be noise.
    EXPECT_EQ(findCode(lint(s), "E106"), nullptr);
}

TEST(Lint, E105NegativeSchedulePoint)
{
    ScenarioSpec s = cleanSpec();
    s.serve.power_cap_schedule = {{-1.0, 500.0}};
    std::vector<Diagnostic> ds = lint(s);
    const Diagnostic* d = findCode(ds, "E105");
    ASSERT_NE(d, nullptr);
    EXPECT_EQ(d->path, "power_cap_schedule[0]");
}

TEST(Lint, E106ScalarCapBelowIdleDraw)
{
    ScenarioSpec s = cleanSpec();
    s.serve.power_cap_w = 1.0;
    std::vector<Diagnostic> ds = lint(s);
    const Diagnostic* d = findCode(ds, "E106");
    ASSERT_NE(d, nullptr);
    EXPECT_EQ(d->severity, Severity::Error);
    EXPECT_EQ(d->path, "power_cap_w");
    EXPECT_NE(d->message.find("below the cheapest single-server idle "
                              "draw"),
              std::string::npos);
    EXPECT_NE(d->message.find("sheds the whole fleet and serves "
                              "nothing"),
              std::string::npos);
}

TEST(Lint, E106ScheduleSegmentBelowIdleDraw)
{
    ScenarioSpec s = cleanSpec();
    // Scalar cap generous; one in-horizon segment dips below idle.
    s.serve.power_cap_w = 100000.0;
    s.serve.power_cap_schedule = {{6.0, 2.0}, {12.0, 100000.0}};
    std::vector<Diagnostic> ds = lint(s);
    const Diagnostic* d = findCode(ds, "E106");
    ASSERT_NE(d, nullptr);
    EXPECT_EQ(d->path, "power_cap_schedule[0].cap_w");
}

TEST(Lint, W208DeadScheduleSegmentSkipsCapCheck)
{
    ScenarioSpec s = cleanSpec();
    // Out-of-horizon segment below idle: dead knob, not a fatal cap.
    s.serve.power_cap_schedule = {{30.0, 1.0}};
    std::vector<Diagnostic> ds = lint(s);
    const Diagnostic* d = findCode(ds, "W208");
    ASSERT_NE(d, nullptr);
    EXPECT_EQ(d->severity, Severity::Warning);
    EXPECT_EQ(d->path, "power_cap_schedule[0]");
    EXPECT_EQ(d->message,
              "schedule point at hour 30 starts at/after the 24h "
              "horizon: dead segment");
    EXPECT_EQ(findCode(ds, "E106"), nullptr);
}

// ---- service checks ------------------------------------------------------

TEST(Lint, W201SurgeWindowOutsideHorizon)
{
    ScenarioSpec s = cleanSpec();
    s.services[0].spec.load.surge_hour = 30.0;
    s.services[0].spec.load.surge_hours = 2.0;
    s.services[0].spec.load.surge_factor = 3.0;
    expectDiagnostic(s, "W201", Severity::Warning,
                     "services[0].surge_hour",
                     "surge window [30h, 32h) lies entirely outside "
                     "the 24h horizon: dead knob");
    // An in-horizon surge is fine.
    s.services[0].spec.load.surge_hour = 19.0;
    EXPECT_EQ(findCode(lint(s), "W201"), nullptr);
}

TEST(Lint, W205FeedbackRouterSingleShard)
{
    ScenarioSpec s = cleanSpec();
    s.fleet = {{ServerType::T2, 1}};
    s.serve.router = sim::RouterPolicy::LatencyFeedback;
    std::vector<Diagnostic> ds = lint(s);
    const Diagnostic* d = findCode(ds, "W205");
    ASSERT_NE(d, nullptr);
    EXPECT_EQ(d->path, "router");
    // Two shards give the feedback loop something to do: no warning.
    s.fleet = {{ServerType::T2, 2}};
    EXPECT_EQ(findCode(lint(s), "W205"), nullptr);
}

TEST(Lint, W206FracSumOverCommitted)
{
    ScenarioSpec s = cleanSpec();
    s.services[0].peak_qps_frac = 0.7;
    ServiceScenario second;
    second.spec.model = ModelId::DlrmRmc2;
    second.peak_qps_frac = 0.6;
    s.services.push_back(second);
    expectDiagnostic(s, "W206", Severity::Warning, "services",
                     "peak_qps_frac values sum to 1.3 > 1: at "
                     "coincident peaks the services demand more than "
                     "the full fleet's capacity, so provisioning can "
                     "never fit");
    s.services[1].peak_qps_frac = 0.3;
    EXPECT_EQ(findCode(lint(s), "W206"), nullptr);
}

TEST(Lint, W210ZeroSlotFleetEntry)
{
    ScenarioSpec s = cleanSpec();
    s.fleet.push_back({ServerType::T3, 0});
    expectDiagnostic(s, "W210", Severity::Warning, "fleet[1].slots",
                     "fleet entry T3 has zero slots: it can never "
                     "host a shard (dead entry)");
}

// ---- admission -----------------------------------------------------------

TEST(Lint, W207DeadlineSlackLooserThanSla)
{
    ScenarioSpec s = cleanSpec();
    s.serve.admission.policy = qos::AdmissionPolicy::Deadline;
    s.serve.admission.deadline_slack = 1.5;
    expectDiagnostic(s, "W207", Severity::Warning,
                     "admission.deadline_slack",
                     "deadline_slack 1.5 > 1 makes the admission "
                     "deadline looser than the SLA: queries admitted "
                     "under it can still violate, so the deadline "
                     "cannot protect the SLA (dead knob)");
}

// ---- observability -------------------------------------------------------

TEST(Lint, W211SampleRateWithoutTraceFile)
{
    ScenarioSpec s = cleanSpec();
    s.observability.metrics_file = "metrics.txt";
    s.observability.sample_rate = 0.5;
    expectDiagnostic(s, "W211", Severity::Warning,
                     "observability.sample_rate",
                     "sample_rate 0.5 is set but no trace_file is "
                     "configured: sampling only thins the per-query "
                     "trace, so the knob does nothing (dead knob)");
    // With a trace output the knob is live: no warning.
    s.observability.trace_file = "trace.jsonl";
    EXPECT_EQ(findCode(lint(s), "W211"), nullptr);
}

TEST(Lint, W211TraceFileWithZeroSampleRate)
{
    ScenarioSpec s = cleanSpec();
    s.observability.trace_file = "trace.jsonl";
    s.observability.sample_rate = 0.0;
    expectDiagnostic(s, "W211", Severity::Warning,
                     "observability.trace_file",
                     "trace_file 'trace.jsonl' is configured with "
                     "sample_rate 0: every query is skipped, so the "
                     "trace will be empty; drop trace_file or raise "
                     "sample_rate");
}

TEST(Lint, W211DefaultObservabilityClean)
{
    ScenarioSpec s = cleanSpec();
    EXPECT_EQ(findCode(lint(s), "W211"), nullptr);
    // A metrics-only block at the default (trace-everything) rate has
    // no dead knob; neither does a rate-0 block with no trace_file,
    // which is just "tracing off" spelled redundantly.
    s.observability.metrics_file = "metrics.csv";
    EXPECT_EQ(findCode(lint(s), "W211"), nullptr);
    s.observability.sample_rate = 0.0;
    EXPECT_EQ(findCode(lint(s), "W211"), nullptr);
    // Slack > 1 without the Deadline policy is inert, not flagged.
    s.serve.admission.policy = qos::AdmissionPolicy::None;
    EXPECT_EQ(findCode(lint(s), "W207"), nullptr);
}

// ---- faults --------------------------------------------------------------

TEST(Lint, E107NegativeFaultKnob)
{
    ScenarioSpec s = cleanSpec();
    s.serve.faults.crash_mtbf_hours = -1.0;
    expectDiagnostic(s, "E107", Severity::Error,
                     "faults.crash_mtbf_hours",
                     "crash_mtbf_hours must be non-negative (got -1)");
}

TEST(Lint, E108DegradeSlowdownBelowOne)
{
    ScenarioSpec s = cleanSpec();
    s.serve.faults.degrade_slowdown = 0.5;
    expectDiagnostic(s, "E108", Severity::Error,
                     "faults.degrade_slowdown",
                     "degrade_slowdown must be >= 1 (got 0.5)");
}

TEST(Lint, E110NegativeEventHour)
{
    ScenarioSpec s = cleanSpec();
    fault::FaultEvent e;
    e.t_hours = -2.0;
    e.fleet_index = 0;
    e.slot = 0;
    s.serve.faults.events = {e};
    expectDiagnostic(s, "E110", Severity::Error,
                     "faults.events[0].at_hour",
                     "negative (or NaN) at_hour -2");
}

TEST(Lint, E111FleetIndexOutOfRange)
{
    ScenarioSpec s = cleanSpec();
    fault::FaultEvent e;
    e.t_hours = 3.0;
    e.fleet_index = 5;
    s.serve.faults.events = {e};
    expectDiagnostic(s, "E111", Severity::Error,
                     "faults.events[0].fleet",
                     "fleet index 5 does not exist (fleet has 1 "
                     "entries)");
}

TEST(Lint, E112SlotOutOfRange)
{
    ScenarioSpec s = cleanSpec();
    fault::FaultEvent e;
    e.t_hours = 3.0;
    e.fleet_index = 0;
    e.slot = 9;
    s.serve.faults.events = {e};
    expectDiagnostic(s, "E112", Severity::Error,
                     "faults.events[0].slot",
                     "slot 9 does not exist (T2 has 2 slots)");
}

TEST(Lint, E113DegradedEventSlowdownBelowOne)
{
    ScenarioSpec s = cleanSpec();
    fault::FaultEvent e;
    e.t_hours = 1.0;
    e.fleet_index = 0;
    e.slot = 0;
    e.state = fault::HealthState::Degraded;
    e.slowdown = 0.5;
    s.serve.faults.events = {e};
    expectDiagnostic(s, "E113", Severity::Error,
                     "faults.events[0].slowdown",
                     "degraded slowdown must be >= 1 (got 0.5)");
}

TEST(Lint, W202EventAtOrAfterHorizon)
{
    ScenarioSpec s = cleanSpec();
    fault::FaultEvent e;
    e.t_hours = 50.0;
    e.fleet_index = 0;
    e.slot = 0;
    s.serve.faults.events = {e};
    expectDiagnostic(s, "W202", Severity::Warning,
                     "faults.events[0].at_hour",
                     "event at hour 50 fires at/after the 24h "
                     "horizon: it can never apply");
}

TEST(Lint, W203CrashMttrAtLeastMtbf)
{
    ScenarioSpec s = cleanSpec();
    s.serve.faults.crash_mtbf_hours = 2.0;
    s.serve.faults.crash_mttr_hours = 3.0;
    expectDiagnostic(s, "W203", Severity::Warning,
                     "faults.crash_mttr_hours",
                     "crash MTTR (3h) >= MTBF (2h): servers spend "
                     "more time crashed than serving");
    // Crashes disabled (mtbf 0): the ratio is meaningless, no warning.
    s.serve.faults.crash_mtbf_hours = 0.0;
    EXPECT_EQ(findCode(lint(s), "W203"), nullptr);
}

TEST(Lint, W204DegradeMttrAtLeastMtbf)
{
    ScenarioSpec s = cleanSpec();
    s.serve.faults.degrade_mtbf_hours = 2.0;
    s.serve.faults.degrade_mttr_hours = 5.0;
    expectDiagnostic(s, "W204", Severity::Warning,
                     "faults.degrade_mttr_hours",
                     "degrade MTTR (5h) >= MTBF (2h): servers spend "
                     "more time degraded than healthy");
}

// ---- table-aware checks --------------------------------------------------

core::EfficiencyTable
tableWith(bool feasible, double qps, double power_w)
{
    core::EfficiencyEntry e;
    e.server = ServerType::T2;
    e.model = ModelId::DlrmRmc1;
    e.feasible = feasible;
    e.qps = qps;
    e.power_w = power_w;
    e.qps_per_watt = power_w > 0.0 ? qps / power_w : 0.0;
    core::EfficiencyTable t;
    t.set(e);
    return t;
}

TEST(Lint, E130ModelInfeasibleEverywhere)
{
    ScenarioSpec s = cleanSpec();
    core::EfficiencyTable t = tableWith(false, 0.0, 0.0);
    expectDiagnostic(
        s, "E130", Severity::Error, "services[0].model",
        "model DLRM-RMC1 is infeasible on every fleet type in the "
        "efficiency table: its SLA is tighter than the hardware's "
        "minimum achievable latency, so no shard can ever serve it",
        &t);
    // Table-free lint cannot judge feasibility: the check is silent.
    EXPECT_EQ(findCode(lint(s), "E130"), nullptr);
}

TEST(Lint, W209CapBelowMustServePeakDemand)
{
    ScenarioSpec s = cleanSpec();
    // 100 QPS peak at 0.5 QPS/W needs 200 W; cap the horizon at 90 W
    // via a schedule dip (above T2 idle, so E106 stays quiet... the
    // warning must fire on forecast demand, not on idle draw).
    core::EfficiencyTable t = tableWith(true, 100.0, 200.0);
    s.serve.power_cap_schedule = {{6.0, 90.0}};
    std::vector<Diagnostic> ds = lint(s, &t);
    const Diagnostic* d = findCode(ds, "W209");
    ASSERT_NE(d, nullptr);
    EXPECT_EQ(d->severity, Severity::Warning);
    EXPECT_EQ(d->path, "power_cap_w");
    EXPECT_EQ(d->message,
              "tightest power cap in the horizon (90 W) is below the "
              "forecast peak demand of the must-serve priority tier "
              "(needs at least 200 W at the fleet's best efficiency): "
              "must-serve services will shed capacity at peak");
    // A cap that covers the peak demand is clean.
    s.serve.power_cap_schedule = {{6.0, 250.0}};
    EXPECT_EQ(findCode(lint(s, &t), "W209"), nullptr);
}

TEST(Lint, W209OnlyCountsTopPriorityTier)
{
    // Low-priority bulk demand alone cannot trigger the must-serve
    // warning: it is shed first by design.
    ScenarioSpec s = cleanSpec();
    s.services[0].spec.qos.priority = 2;
    ServiceScenario bulk;
    bulk.spec.model = ModelId::DlrmRmc1;
    bulk.spec.load.peak_qps = 10000.0;
    bulk.spec.qos.priority = 0;
    s.services.push_back(bulk);
    core::EfficiencyTable t = tableWith(true, 100.0, 200.0);
    // 100 QPS top-tier peak needs 200 W; 300 W covers it even though
    // the bulk tier would need 20 kW.
    s.serve.power_cap_schedule = {{6.0, 300.0}};
    EXPECT_EQ(findCode(lint(s, &t), "W209"), nullptr);
}

// ---- corpus pins ---------------------------------------------------------

/**
 * Every seeded-defect file in tests/lint_specs/ parses and yields
 * exactly one diagnostic — the code its filename starts with.
 */
TEST(Lint, SeededDefectSpecsFireExactlyTheirCode)
{
    size_t n = 0;
    for (const auto& ent :
         std::filesystem::directory_iterator(lintSpecDir())) {
        if (ent.path().extension() != ".scn")
            continue;
        ++n;
        std::string stem = ent.path().stem().string();
        std::string expect = stem.substr(0, stem.find('_'));
        std::transform(expect.begin(), expect.end(), expect.begin(),
                       [](unsigned char c) { return std::toupper(c); });
        std::string err;
        auto spec = loadSpecFile(ent.path().string(), &err);
        ASSERT_TRUE(spec.has_value()) << ent.path() << ": " << err;
        std::vector<Diagnostic> ds = lint(*spec);
        ASSERT_EQ(ds.size(), 1u) << ent.path();
        EXPECT_EQ(ds[0].code, expect) << ent.path();
        EXPECT_EQ(ds[0].severity, expect[0] == 'E' ? Severity::Error
                                                   : Severity::Warning)
            << ent.path();
    }
    EXPECT_GE(n, 16u) << "seeded-defect corpus shrank";
}

/** The shipped scenario library lints clean, table-free. */
TEST(Lint, ShippedScenariosLintClean)
{
    size_t n = 0;
    for (const auto& ent :
         std::filesystem::directory_iterator(scenarioDir())) {
        if (ent.path().extension() != ".scn")
            continue;
        ++n;
        std::string err;
        auto spec = loadSpecFile(ent.path().string(), &err);
        ASSERT_TRUE(spec.has_value()) << ent.path() << ": " << err;
        std::vector<Diagnostic> ds = lint(*spec);
        for (const Diagnostic& d : ds)
            ADD_FAILURE()
                << ent.path() << ": " << formatDiagnostic(d);
    }
    EXPECT_GE(n, 6u) << "shipped scenario library shrank";
}

// ---- the run() gate ------------------------------------------------------

TEST(LintGateDeathTest, RunRejectsErroneousSpecBeforeProfiling)
{
    ScenarioSpec s = cleanSpec();
    s.lint = true;
    s.fleet.clear();
    EXPECT_DEATH(run(s), "rejected by lint gate.*E101");
}

TEST(Lint, SpecKeyRoundTrips)
{
    ScenarioSpec s;
    EXPECT_EQ(toText(s).find("\"lint\""), std::string::npos)
        << "default-off lint key must not serialize";
    s.lint = true;
    std::string text = toText(s);
    EXPECT_NE(text.find("\"lint\": true"), std::string::npos);
    std::string err;
    auto back = parseSpec(text, &err);
    ASSERT_TRUE(back.has_value()) << err;
    EXPECT_TRUE(back->lint);
}

}  // namespace
}  // namespace hercules::scenario
