/**
 * @file
 * Tests of the roofline + list-scheduling cost model: monotonicity,
 * dependency-chain idling (the Fig 5 effect), bandwidth contention
 * (Fig 4), NMP offload, GPU batch efficiency (the fusion lever) and
 * PCIe accounting.
 */
#include <gtest/gtest.h>

#include "hw/calibration.h"
#include "hw/cost_model.h"
#include "model/partition.h"

namespace hercules::hw {
namespace {

using model::Model;
using model::ModelId;

TEST(Bandwidth, InterferenceDegradesTotal)
{
    CostModel cost(serverSpec(ServerType::T2));
    EXPECT_GT(cost.effectiveHostBwGbps(1),
              cost.effectiveHostBwGbps(20));
}

TEST(Bandwidth, PerThreadShareShrinks)
{
    CostModel cost(serverSpec(ServerType::T2));
    EXPECT_GT(cost.perThreadBwGbps(2), cost.perThreadBwGbps(10));
    // More threads still deliver more aggregate bandwidth than one.
    EXPECT_GT(cost.effectiveHostBwGbps(10) / 10.0 * 10.0,
              cost.perThreadBwGbps(1) * 0.5);
}

TEST(Bandwidth, T1RankHandicap)
{
    // CPU-T1 has 4 ranks vs CPU-T2's 8: lower effective gather BW.
    CostModel t1(serverSpec(ServerType::T1));
    CostModel t2(serverSpec(ServerType::T2));
    EXPECT_LT(t1.effectiveHostBwGbps(1), t2.effectiveHostBwGbps(1));
}

TEST(CpuOp, FcLatencyScalesWithBatchAndWidth)
{
    CostModel cost(serverSpec(ServerType::T2));
    model::Graph g;
    int fc = g.addNode("fc", model::FcParams{256, 128},
                       model::Stage::Dense);
    int wide = g.addNode("wide", model::FcParams{2560, 512},
                         model::Stage::Dense);
    CpuExecContext cx;
    cx.mem_bw_gbps = 10.0;
    double small = cost.cpuOpLatencyUs(g.node(fc), 64, cx);
    double bigger_batch = cost.cpuOpLatencyUs(g.node(fc), 256, cx);
    double wider = cost.cpuOpLatencyUs(g.node(wide), 64, cx);
    EXPECT_GT(bigger_batch, small);
    EXPECT_GT(wider, small);
}

TEST(CpuOp, EmbeddingBandwidthBound)
{
    CostModel cost(serverSpec(ServerType::T2));
    model::EmbeddingParams e;
    e.rows = 1'000'000;
    e.emb_dim = 32;
    e.pooling_min = e.pooling_max = 80;
    e.pooled = true;
    model::Graph g;
    g.addNode("e", e, model::Stage::Sparse);
    CpuExecContext lo, hi;
    lo.mem_bw_gbps = 2.0;
    hi.mem_bw_gbps = 8.0;
    double slow = cost.cpuOpLatencyUs(g.node(0), 128, lo);
    double fast = cost.cpuOpLatencyUs(g.node(0), 128, hi);
    EXPECT_GT(slow, fast);
    // Roughly inverse in bandwidth (minus fixed overhead).
    EXPECT_NEAR((slow - calib::kCpuOpOverheadUs) /
                    (fast - calib::kCpuOpOverheadUs),
                4.0, 0.5);
}

TEST(CpuGraph, MoreWorkersNeverSlower)
{
    CostModel cost(serverSpec(ServerType::T2));
    Model m = model::buildModel(ModelId::DlrmRmc1);
    CpuExecContext cx;
    cx.mem_bw_gbps = 5.0;
    double prev = 1e300;
    for (int workers : {1, 2, 3, 4}) {
        cx.workers = workers;
        double lat = cost.cpuGraphTiming(m.graph, 64, cx).latency_us;
        EXPECT_LE(lat, prev + 1e-6) << workers << " workers";
        prev = lat;
    }
}

TEST(CpuGraph, IdleFractionGrowsWithWorkers)
{
    // Fig 5: operator dependencies leave op-workers idle; idle cycles
    // grow with the number of parallel workers.
    CostModel cost(serverSpec(ServerType::T2));
    Model m = model::buildModel(ModelId::DlrmRmc1);
    CpuExecContext cx;
    cx.mem_bw_gbps = 5.0;
    cx.workers = 1;
    double idle1 = cost.cpuGraphTiming(m.graph, 256, cx).idle_frac;
    cx.workers = 4;
    double idle4 = cost.cpuGraphTiming(m.graph, 256, cx).idle_frac;
    EXPECT_LT(idle1, 0.05);
    EXPECT_GT(idle4, idle1);
}

TEST(CpuGraph, Fig5IdleRangeAcrossModels)
{
    // Paper: 25%-74% idle with 2-4 workers across the six models. The
    // dense-chain-dominated models must show substantial idling.
    CostModel cost(serverSpec(ServerType::T2));
    CpuExecContext cx;
    cx.mem_bw_gbps = 5.0;
    cx.workers = 4;
    Model din = model::buildModel(ModelId::Din);
    double idle = cost.cpuGraphTiming(din.graph, 256, cx).idle_frac;
    EXPECT_GT(idle, 0.25);
    EXPECT_LT(idle, 0.95);
}

TEST(CpuGraph, SparseOpsParallelizeDenseChainDoesNot)
{
    CostModel cost(serverSpec(ServerType::T2));
    Model m = model::buildModel(ModelId::DlrmRmc2);  // 100 tables
    model::Graph sparse = model::sparseSubgraph(m.graph);
    model::Graph dense = model::denseSubgraph(m.graph);
    CpuExecContext cx;
    cx.mem_bw_gbps = 1e6;  // compute-only view
    cx.workers = 1;
    double s1 = cost.cpuGraphTiming(sparse, 64, cx).latency_us;
    double d1 = cost.cpuGraphTiming(dense, 64, cx).latency_us;
    cx.workers = 4;
    double s4 = cost.cpuGraphTiming(sparse, 64, cx).latency_us;
    double d4 = cost.cpuGraphTiming(dense, 64, cx).latency_us;
    // Independent lookups speed up nearly linearly...
    EXPECT_GT(s1 / s4, 2.5);
    // ...while the dependency-chained dense part barely improves.
    EXPECT_LT(d1 / d4, 1.7);
}

TEST(CpuGraph, BandwidthLowerBoundEnforced)
{
    // Scheduling 100 gathers on 4 workers cannot beat the bandwidth
    // serialization bound.
    CostModel cost(serverSpec(ServerType::T2));
    Model m = model::buildModel(ModelId::DlrmRmc2);
    model::Graph sparse = model::sparseSubgraph(m.graph);
    CpuExecContext cx;
    cx.mem_bw_gbps = 3.0;
    cx.workers = 4;
    GraphTiming t = cost.cpuGraphTiming(sparse, 128, cx);
    double bound_us = t.dram_bytes / (3.0 * 1e9) * 1e6;
    EXPECT_GE(t.latency_us + 1e-6, bound_us);
}

TEST(CpuGraph, NmpOffloadBeatsHostForPooled)
{
    Model m = model::buildModel(ModelId::DlrmRmc1);
    model::Graph sparse = model::sparseSubgraph(m.graph);
    CostModel ddr(serverSpec(ServerType::T2));
    CostModel nmp(serverSpec(ServerType::T3));
    CpuExecContext host_cx;
    host_cx.mem_bw_gbps = ddr.perThreadBwGbps(10);
    CpuExecContext nmp_cx;
    nmp_cx.mem_bw_gbps = nmp.perThreadBwGbps(10);
    nmp_cx.use_nmp = true;
    nmp_cx.nmp_share = 0.1;
    double host_us = ddr.cpuGraphTiming(sparse, 256, host_cx).latency_us;
    double nmp_us = nmp.cpuGraphTiming(sparse, 256, nmp_cx).latency_us;
    EXPECT_LT(nmp_us, host_us);
}

TEST(CpuGraph, NmpNoBenefitForOneHot)
{
    // Paper: one-hot models see no NMP gain (no Gather-Reduce to
    // offload) — lookups stay on the DDR path.
    Model m = model::buildModel(ModelId::MtWnd);
    model::Graph sparse = model::sparseSubgraph(m.graph);
    CostModel nmp(serverSpec(ServerType::T3));
    CpuExecContext cx;
    cx.mem_bw_gbps = 5.0;
    cx.use_nmp = true;
    GraphTiming with_nmp = nmp.cpuGraphTiming(sparse, 128, cx);
    cx.use_nmp = false;
    GraphTiming without = nmp.cpuGraphTiming(sparse, 128, cx);
    EXPECT_NEAR(with_nmp.latency_us, without.latency_us, 1e-6);
    EXPECT_DOUBLE_EQ(with_nmp.nmp_busy_us, 0.0);
}

TEST(GpuKernel, BatchEfficiencyDrivesFusionGain)
{
    // Per-item kernel cost falls sharply as fused batches grow — the
    // mechanism behind Fig 6's throughput gains.
    CostModel cost(serverSpec(ServerType::T7));
    model::Graph g;
    g.addNode("fc", model::FcParams{1920, 1024}, model::Stage::Dense);
    GpuExecContext cx;
    double per_item_150 =
        cost.gpuKernelLatencyUs(g.node(0), 150, cx) / 150.0;
    double per_item_6000 =
        cost.gpuKernelLatencyUs(g.node(0), 6000, cx) / 6000.0;
    EXPECT_GT(per_item_150 / per_item_6000, 4.0);
}

TEST(GpuKernel, ColocationSlowdown)
{
    CostModel cost(serverSpec(ServerType::T7));
    model::Graph g;
    g.addNode("fc", model::FcParams{512, 256}, model::Stage::Dense);
    GpuExecContext alone, shared;
    alone.colocated = 1;
    shared.colocated = 4;
    EXPECT_GT(cost.gpuKernelLatencyUs(g.node(0), 256, shared),
              cost.gpuKernelLatencyUs(g.node(0), 256, alone));
}

TEST(GpuKernel, P100SlowerThanV100)
{
    CostModel p100(serverSpec(ServerType::T6));
    CostModel v100(serverSpec(ServerType::T7));
    model::Graph g;
    g.addNode("fc", model::FcParams{1024, 1024}, model::Stage::Dense);
    GpuExecContext cx;
    EXPECT_GT(p100.gpuKernelLatencyUs(g.node(0), 2048, cx),
              v100.gpuKernelLatencyUs(g.node(0), 2048, cx));
}

TEST(GpuGraph, HotHitRateReducesWork)
{
    CostModel cost(serverSpec(ServerType::T7));
    Model m = model::buildModel(ModelId::DlrmRmc1, model::Variant::Small);
    GpuExecContext full, half;
    full.hot_hit_rate = 1.0;
    half.hot_hit_rate = 0.4;
    double lat_full = cost.gpuGraphTiming(m.graph, 256, full).latency_us;
    double lat_half = cost.gpuGraphTiming(m.graph, 256, half).latency_us;
    EXPECT_LT(lat_half, lat_full);
}

TEST(GpuInput, MultiHotIndicesDominateTransfers)
{
    // DLRM-RMC3 ships far more bytes per item than MT-WnD — the Fig 7
    // data-loading story.
    CostModel cost(serverSpec(ServerType::T7));
    Model rmc3 = model::buildModel(ModelId::DlrmRmc3);
    Model wnd = model::buildModel(ModelId::MtWnd);
    GpuExecContext cx;
    double rmc3_bytes = cost.gpuInputBytes(rmc3.graph, 100, cx);
    double wnd_bytes = cost.gpuInputBytes(wnd.graph, 100, cx);
    EXPECT_GT(rmc3_bytes, 2.0 * wnd_bytes);
}

TEST(GpuInput, ColdFractionAddsPsums)
{
    CostModel cost(serverSpec(ServerType::T7));
    Model m = model::buildModel(ModelId::DlrmRmc1);
    GpuExecContext resident, split;
    resident.hot_hit_rate = 1.0;
    split.hot_hit_rate = 0.5;
    double b_resident = cost.gpuInputBytes(m.graph, 64, resident);
    double b_split = cost.gpuInputBytes(m.graph, 64, split);
    // Fewer raw indices but extra psum vectors; for pooled models the
    // index reduction dominates.
    EXPECT_NE(b_resident, b_split);
}

TEST(GpuInput, SdPipelineSendsPooledVectors)
{
    CostModel cost(serverSpec(ServerType::T7));
    Model m = model::buildModel(ModelId::DlrmRmc1);
    model::Graph dense = model::denseSubgraph(m.graph);
    GpuExecContext cx;
    double bytes = cost.gpuInputBytes(dense, 64, cx);
    // Severed interaction inputs: 10 pooled vectors x 32 floats.
    EXPECT_GE(bytes, 64.0 * 10 * 32 * 4);
}

TEST(Pcie, TransferLatencyModel)
{
    CostModel cost(serverSpec(ServerType::T7));
    double bw = cost.pcieBwGbps();
    EXPECT_NEAR(bw, 16.0 * calib::kPcieEff, 1e-9);
    double us = cost.pcieTransferUs(16e9 * calib::kPcieEff / 1e3, bw);
    // 1/1000 of a second of data -> 1000 us + setup.
    EXPECT_NEAR(us, 1000.0 + calib::kPcieSetupUs, 1.0);
}

TEST(PcieDeath, NoGpuIsFatal)
{
    CostModel cost(serverSpec(ServerType::T2));
    EXPECT_DEATH(cost.pcieBwGbps(), "no GPU");
}

TEST(NmpLutAccess, RequiresNmpServer)
{
    CostModel cost(serverSpec(ServerType::T2));
    EXPECT_DEATH(cost.nmpLut(32), "no NMP");
}

/** Latency monotone in batch for every model's full graph. */
class CostMonotoneBatch : public ::testing::TestWithParam<ModelId>
{
};

TEST_P(CostMonotoneBatch, CpuLatencyGrowsWithBatch)
{
    CostModel cost(serverSpec(ServerType::T2));
    Model m = model::buildModel(GetParam());
    CpuExecContext cx;
    cx.workers = 2;
    cx.mem_bw_gbps = 5.0;
    double prev = 0.0;
    for (int b : {8, 32, 128, 512}) {
        double lat = cost.cpuGraphTiming(m.graph, b, cx).latency_us;
        EXPECT_GT(lat, prev) << "batch " << b;
        prev = lat;
    }
}

INSTANTIATE_TEST_SUITE_P(AllModels, CostMonotoneBatch,
                         ::testing::ValuesIn(model::allModels()));

}  // namespace
}  // namespace hercules::hw
