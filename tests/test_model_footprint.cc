/**
 * @file
 * Tests that the per-item cost model reproduces the Fig 1
 * characterization: DLRM-RMC1/RMC2 memory-dominated, RMC3 / MT-WnD /
 * DIN / DIEN compute-dominated, with the orderings the paper plots.
 */
#include <gtest/gtest.h>

#include "model/footprint.h"

namespace hercules::model {
namespace {

ModelFootprint
fp(ModelId id)
{
    Model m = buildModel(id);
    return analyzeModel(m);
}

TEST(OpCost, EmbeddingPooledGathersDram)
{
    EmbeddingParams p;
    p.rows = 1'000'000;
    p.emb_dim = 32;
    p.pooling_min = p.pooling_max = 80;
    p.pooled = true;
    Graph g;
    g.addNode("e", p, Stage::Sparse);
    OpCost c = opCostPerItem(g.node(0));
    EXPECT_DOUBLE_EQ(c.dram_bytes, 80.0 * 32 * 4);
    EXPECT_DOUBLE_EQ(c.input_bytes, 80.0 * 8);
    // Pooled output is a single vector.
    EXPECT_DOUBLE_EQ(c.output_bytes, 32.0 * 4);
    EXPECT_GT(c.flops, 0.0);
}

TEST(OpCost, EmbeddingOneHotNoReduce)
{
    EmbeddingParams p;
    p.rows = 1'000'000;
    p.emb_dim = 64;
    p.pooling_min = p.pooling_max = 1;
    p.pooled = false;
    Graph g;
    g.addNode("e", p, Stage::Sparse);
    OpCost c = opCostPerItem(g.node(0));
    EXPECT_DOUBLE_EQ(c.dram_bytes, 64.0 * 4);
    EXPECT_DOUBLE_EQ(c.flops, 0.0);
}

TEST(OpCost, FcFlopsAndRootInput)
{
    FcParams p;
    p.in_dim = 256;
    p.out_dim = 128;
    Graph g;
    int root = g.addNode("fc0", p, Stage::Dense);
    int inner = g.addNode("fc1", p, Stage::Dense, {root});
    OpCost c_root = opCostPerItem(g.node(root));
    OpCost c_inner = opCostPerItem(g.node(inner));
    EXPECT_DOUBLE_EQ(c_root.flops, 2.0 * 256 * 128);
    EXPECT_DOUBLE_EQ(c_root.input_bytes, 256.0 * 4);
    EXPECT_DOUBLE_EQ(c_inner.input_bytes, 0.0);
}

TEST(OpCost, AttentionScalesWithSequence)
{
    AttentionParams p;
    p.behavior_dim = 64;
    p.hidden_dim = 36;
    p.seq_len_min = p.seq_len_max = 100;
    Graph g;
    g.addNode("a", p, Stage::Dense);
    double f100 = opCostPerItem(g.node(0)).flops;
    Graph g2;
    p.seq_len_min = p.seq_len_max = 1000;
    g2.addNode("a", p, Stage::Dense);
    double f1000 = opCostPerItem(g2.node(0)).flops;
    EXPECT_NEAR(f1000 / f100, 10.0, 0.01);
}

TEST(OpCost, GruScalesWithLayersAndSequence)
{
    GruParams p;
    p.input_dim = 32;
    p.hidden_dim = 32;
    p.seq_len_min = p.seq_len_max = 200;
    p.layers = 1;
    Graph g;
    g.addNode("r", p, Stage::Dense);
    double f1 = opCostPerItem(g.node(0)).flops;
    p.layers = 2;
    Graph g2;
    g2.addNode("r", p, Stage::Dense);
    double f2 = opCostPerItem(g2.node(0)).flops;
    EXPECT_NEAR(f2 / f1, 2.0, 1e-9);
}

TEST(OpCost, InteractionQuadraticInFeatures)
{
    InteractionParams p;
    p.num_features = 11;
    p.feature_dim = 32;
    Graph g;
    g.addNode("i", p, Stage::Dense);
    OpCost c = opCostPerItem(g.node(0));
    EXPECT_DOUBLE_EQ(c.flops, 55.0 * 32 * 2 + 11.0 * 32);
}

// ---------------------------------------------------------------------
// Fig 1 shape: who is memory-dominated, who is compute-dominated.
// ---------------------------------------------------------------------

TEST(Fig1Shape, Rmc1Rmc2MemoryDominated)
{
    // Arithmetic intensity below ~10 FLOP/DRAM-byte: bandwidth-bound.
    EXPECT_LT(fp(ModelId::DlrmRmc1).intensity(), 10.0);
    EXPECT_LT(fp(ModelId::DlrmRmc2).intensity(), 10.0);
}

TEST(Fig1Shape, ComputeDominatedModels)
{
    EXPECT_GT(fp(ModelId::DlrmRmc3).intensity(), 20.0);
    EXPECT_GT(fp(ModelId::MtWnd).intensity(), 20.0);
    EXPECT_GT(fp(ModelId::Din).intensity(), 20.0);
    EXPECT_GT(fp(ModelId::Dien).intensity(), 20.0);
}

TEST(Fig1Shape, Rmc2HighestMemoryTraffic)
{
    // RMC2 (100 tables) is the rightmost point of Fig 1.
    double rmc2 = fp(ModelId::DlrmRmc2).dram_bytes_per_item;
    for (ModelId id : {ModelId::DlrmRmc1, ModelId::DlrmRmc3, ModelId::MtWnd,
                       ModelId::Din, ModelId::Dien})
        EXPECT_GT(rmc2, fp(id).dram_bytes_per_item) << modelName(id);
}

TEST(Fig1Shape, MtWndHighestCompute)
{
    // MT-WnD (five 1024-512-256 towers) tops the FLOPs axis.
    double wnd = fp(ModelId::MtWnd).flops_per_item;
    for (ModelId id : {ModelId::DlrmRmc1, ModelId::DlrmRmc2,
                       ModelId::DlrmRmc3, ModelId::Din})
        EXPECT_GT(wnd, fp(id).flops_per_item) << modelName(id);
}

TEST(Fig1Shape, Rmc1LowestCompute)
{
    double rmc1 = fp(ModelId::DlrmRmc1).flops_per_item;
    for (ModelId id : {ModelId::DlrmRmc2, ModelId::DlrmRmc3, ModelId::MtWnd,
                       ModelId::Din, ModelId::Dien})
        EXPECT_LT(rmc1, fp(id).flops_per_item) << modelName(id);
}

TEST(Fig1Shape, DienHeavierThanDin)
{
    // The GRU stack makes DIEN strictly more compute-intensive.
    EXPECT_GT(fp(ModelId::Dien).flops_per_item,
              fp(ModelId::Din).flops_per_item);
}

TEST(Fig1Shape, SpansOrdersOfMagnitude)
{
    // "can vary by one to two orders of magnitude" (paper §I).
    double min_f = 1e300, max_f = 0.0, min_b = 1e300, max_b = 0.0;
    for (ModelId id : allModels()) {
        ModelFootprint f = fp(id);
        min_f = std::min(min_f, f.flops_per_item);
        max_f = std::max(max_f, f.flops_per_item);
        min_b = std::min(min_b, f.dram_bytes_per_item);
        max_b = std::max(max_b, f.dram_bytes_per_item);
    }
    EXPECT_GT(max_f / min_f, 10.0);
    EXPECT_GT(max_b / min_b, 10.0);
}

TEST(Footprint, MultiHotModelsHaveHeavyInputs)
{
    // Multi-hot index traffic is what clogs PCIe for RMC3 (Fig 7).
    EXPECT_GT(fp(ModelId::DlrmRmc3).input_bytes_per_item,
              fp(ModelId::MtWnd).input_bytes_per_item);
}

TEST(Footprint, AggregatesArePositive)
{
    for (ModelId id : allModels()) {
        ModelFootprint f = fp(id);
        EXPECT_GT(f.flops_per_item, 0.0) << modelName(id);
        EXPECT_GT(f.dram_bytes_per_item, 0.0) << modelName(id);
        EXPECT_GT(f.input_bytes_per_item, 0.0) << modelName(id);
        EXPECT_GT(f.emb_bytes, 0) << modelName(id);
        EXPECT_GT(f.param_bytes, 0) << modelName(id);
    }
}

}  // namespace
}  // namespace hercules::model
