/**
 * @file
 * Tests of the parallelism-space machinery: mapping applicability,
 * config enumeration validity, pipeline balancing and the config
 * string representation.
 */
#include <gtest/gtest.h>

#include "sim/prepared.h"
#include "sched/space.h"

namespace hercules::sched {
namespace {

using hw::ServerType;
using model::ModelId;

TEST(Mappings, CpuServerHasNoGpuMappings)
{
    model::Model m = model::buildModel(ModelId::DlrmRmc1);
    auto maps = applicableMappings(hw::serverSpec(ServerType::T2), m);
    for (Mapping mp : maps) {
        EXPECT_NE(mp, Mapping::GpuModelBased);
        EXPECT_NE(mp, Mapping::GpuSdPipeline);
    }
    EXPECT_GE(maps.size(), 2u);
}

TEST(Mappings, GpuServerHasAllFour)
{
    model::Model m = model::buildModel(ModelId::DlrmRmc1);
    auto maps = applicableMappings(hw::serverSpec(ServerType::T7), m);
    EXPECT_EQ(maps.size(), 4u);
}

TEST(ConfigString, EncodesParameters)
{
    SchedulingConfig cfg;
    cfg.mapping = Mapping::CpuSdPipeline;
    cfg.cpu_threads = 4;
    cfg.cores_per_thread = 2;
    cfg.dense_threads = 3;
    cfg.batch = 128;
    std::string s = cfg.str();
    EXPECT_NE(s.find("4x2"), std::string::npos);
    EXPECT_NE(s.find("::3"), std::string::npos);
    EXPECT_NE(s.find("b128"), std::string::npos);
}

TEST(ConfigString, DistinctConfigsDistinctStrings)
{
    SchedulingConfig a, b;
    a.cpu_threads = 4;
    b.cpu_threads = 5;
    EXPECT_NE(a.str(), b.str());
}

TEST(Config, HostCoresAccounting)
{
    SchedulingConfig cfg;
    cfg.mapping = Mapping::CpuSdPipeline;
    cfg.cpu_threads = 4;
    cfg.cores_per_thread = 2;
    cfg.dense_threads = 3;
    EXPECT_EQ(cfg.hostCores(), 11);
    cfg.mapping = Mapping::CpuModelBased;
    EXPECT_EQ(cfg.hostCores(), 8);
}

TEST(Enumerate, AllConfigsValid)
{
    model::Model m = model::buildModel(ModelId::DlrmRmc1);
    const hw::ServerSpec& server = hw::serverSpec(ServerType::T2);
    SpaceOptions opt;
    opt.batches = {64, 256};
    for (Mapping mp : applicableMappings(server, m)) {
        auto configs = enumerateConfigs(server, m, mp, opt);
        EXPECT_GT(configs.size(), 0u) << mappingName(mp);
        for (const auto& cfg : configs) {
            EXPECT_FALSE(sim::validateConfig(server, m, cfg).has_value())
                << cfg.str();
            EXPECT_EQ(cfg.mapping, mp);
        }
    }
}

TEST(Enumerate, CoversOpParallelismAxis)
{
    model::Model m = model::buildModel(ModelId::DlrmRmc1);
    SpaceOptions opt;
    opt.batches = {64};
    auto configs = enumerateConfigs(hw::serverSpec(ServerType::T2), m,
                                    Mapping::CpuModelBased, opt);
    bool seen[5] = {false, false, false, false, false};
    for (const auto& cfg : configs)
        if (cfg.cores_per_thread <= 4)
            seen[cfg.cores_per_thread] = true;
    EXPECT_TRUE(seen[1]);
    EXPECT_TRUE(seen[2]);
    EXPECT_TRUE(seen[3]);
    EXPECT_TRUE(seen[4]);
}

TEST(Enumerate, GpuConfigsRespectThreadCap)
{
    model::Model m = model::buildModel(ModelId::DlrmRmc3,
                                       model::Variant::Small);
    SpaceOptions opt;
    opt.max_gpu_threads = 4;
    auto configs = enumerateConfigs(hw::serverSpec(ServerType::T7), m,
                                    Mapping::GpuModelBased, opt);
    EXPECT_GT(configs.size(), 0u);
    for (const auto& cfg : configs) {
        EXPECT_GE(cfg.gpu_threads, 1);
        EXPECT_LE(cfg.gpu_threads, 4);
    }
}

TEST(Enumerate, SdPipelineLeavesCoresForDense)
{
    model::Model m = model::buildModel(ModelId::DlrmRmc1);
    SpaceOptions opt;
    opt.batches = {128};
    auto configs = enumerateConfigs(hw::serverSpec(ServerType::T2), m,
                                    Mapping::CpuSdPipeline, opt);
    for (const auto& cfg : configs) {
        EXPECT_GE(cfg.dense_threads, 1);
        EXPECT_LE(cfg.hostCores(), 20);
    }
}

TEST(Balance, DenseThreadsWithinCores)
{
    model::Model m = model::buildModel(ModelId::DlrmRmc1);
    const hw::ServerSpec& server = hw::serverSpec(ServerType::T2);
    for (int sparse = 1; sparse <= 9; sparse += 2) {
        int dense = balancedDenseThreads(server, m, sparse, 2, 128);
        EXPECT_GE(dense, 0);
        EXPECT_LE(sparse * 2 + dense, server.cpu.cores)
            << "sparse=" << sparse;
    }
}

TEST(Balance, NoCoresLeftReturnsZero)
{
    model::Model m = model::buildModel(ModelId::DlrmRmc1);
    EXPECT_EQ(balancedDenseThreads(hw::serverSpec(ServerType::T2), m, 10,
                                   2, 128),
              0);
}

TEST(Balance, DenseHeavyModelGetsMoreDenseThreads)
{
    // RMC3's dense part is far heavier than RMC1's: the balancer must
    // allocate at least as many dense threads.
    const hw::ServerSpec& server = hw::serverSpec(ServerType::T2);
    model::Model rmc1 = model::buildModel(ModelId::DlrmRmc1);
    model::Model rmc3 = model::buildModel(ModelId::DlrmRmc3);
    int d1 = balancedDenseThreads(server, rmc1, 4, 2, 128);
    int d3 = balancedDenseThreads(server, rmc3, 4, 2, 128);
    EXPECT_GE(d3, d1);
}

TEST(MappingNames, Distinct)
{
    EXPECT_STRNE(mappingName(Mapping::CpuModelBased),
                 mappingName(Mapping::CpuSdPipeline));
    EXPECT_STRNE(mappingName(Mapping::GpuModelBased),
                 mappingName(Mapping::GpuSdPipeline));
}

/** Enumeration sanity across every (model, server) combination. */
class EnumerateEverywhere
    : public ::testing::TestWithParam<std::tuple<ModelId, ServerType>>
{
};

TEST_P(EnumerateEverywhere, NonEmptyAndValid)
{
    auto [mid, st] = GetParam();
    model::Model m = model::buildModel(mid);
    const hw::ServerSpec& server = hw::serverSpec(st);
    SpaceOptions opt;
    opt.batches = {128};
    opt.fusion_limits = {0, 2000};
    opt.max_gpu_threads = 2;
    for (Mapping mp : applicableMappings(server, m)) {
        auto configs = enumerateConfigs(server, m, mp, opt);
        EXPECT_GT(configs.size(), 0u)
            << m.name << " on " << server.name << " " << mappingName(mp);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, EnumerateEverywhere,
    ::testing::Combine(::testing::Values(ModelId::DlrmRmc1, ModelId::Din),
                       ::testing::Values(ServerType::T1, ServerType::T3,
                                         ServerType::T7,
                                         ServerType::T10)));

}  // namespace
}  // namespace hercules::sched
