/**
 * @file
 * Tests of the two-phase simplex solver: textbook instances, edge
 * cases (infeasible / unbounded / degenerate), and randomized
 * comparison against a brute-force grid oracle.
 */
#include <gtest/gtest.h>

#include <cmath>

#include "cluster/lp.h"
#include "util/rng.h"

namespace hercules::cluster {
namespace {

TEST(Lp, SimpleTwoVariable)
{
    // min -x - y  s.t.  x + y <= 4, x <= 2, y <= 3  -> x=2,y=2? No:
    // optimum fills x+y=4 with x<=2,y<=3: several optima share obj -4.
    LpProblem p;
    p.c = {-1.0, -1.0};
    p.a = {{1.0, 1.0}, {1.0, 0.0}, {0.0, 1.0}};
    p.b = {4.0, 2.0, 3.0};
    LpResult r = solveLp(p);
    ASSERT_EQ(r.status, LpResult::Status::Optimal);
    EXPECT_NEAR(r.objective, -4.0, 1e-9);
    EXPECT_NEAR(r.x[0] + r.x[1], 4.0, 1e-9);
    EXPECT_LE(r.x[0], 2.0 + 1e-9);
    EXPECT_LE(r.x[1], 3.0 + 1e-9);
}

TEST(Lp, GreaterEqualConstraintViaNegation)
{
    // min 2x + 3y  s.t.  x + y >= 10 (as -x - y <= -10), x,y >= 0.
    LpProblem p;
    p.c = {2.0, 3.0};
    p.a = {{-1.0, -1.0}};
    p.b = {-10.0};
    LpResult r = solveLp(p);
    ASSERT_EQ(r.status, LpResult::Status::Optimal);
    EXPECT_NEAR(r.objective, 20.0, 1e-9);  // all on the cheaper x
    EXPECT_NEAR(r.x[0], 10.0, 1e-9);
}

TEST(Lp, Infeasible)
{
    // x <= 1 and x >= 3 simultaneously.
    LpProblem p;
    p.c = {1.0};
    p.a = {{1.0}, {-1.0}};
    p.b = {1.0, -3.0};
    EXPECT_EQ(solveLp(p).status, LpResult::Status::Infeasible);
}

TEST(Lp, Unbounded)
{
    // min -x with only x >= 2.
    LpProblem p;
    p.c = {-1.0};
    p.a = {{-1.0}};
    p.b = {-2.0};
    EXPECT_EQ(solveLp(p).status, LpResult::Status::Unbounded);
}

TEST(Lp, DegenerateVertexTerminates)
{
    // Multiple constraints meet at the optimum; Bland's rule must not
    // cycle.
    LpProblem p;
    p.c = {-1.0, -1.0};
    p.a = {{1.0, 0.0}, {1.0, 0.0}, {0.0, 1.0}, {1.0, 1.0}};
    p.b = {1.0, 1.0, 1.0, 2.0};
    LpResult r = solveLp(p);
    ASSERT_EQ(r.status, LpResult::Status::Optimal);
    EXPECT_NEAR(r.objective, -2.0, 1e-9);
}

TEST(Lp, ZeroObjectiveFeasibility)
{
    LpProblem p;
    p.c = {0.0, 0.0};
    p.a = {{-1.0, -1.0}};
    p.b = {-5.0};
    LpResult r = solveLp(p);
    ASSERT_EQ(r.status, LpResult::Status::Optimal);
    EXPECT_NEAR(r.objective, 0.0, 1e-9);
    EXPECT_GE(r.x[0] + r.x[1], 5.0 - 1e-9);
}

TEST(Lp, EqualityEncodedAsTwoInequalities)
{
    // x + y == 7 via <= and >=; min x -> x=0, y=7.
    LpProblem p;
    p.c = {1.0, 0.0};
    p.a = {{1.0, 1.0}, {-1.0, -1.0}};
    p.b = {7.0, -7.0};
    LpResult r = solveLp(p);
    ASSERT_EQ(r.status, LpResult::Status::Optimal);
    EXPECT_NEAR(r.x[0], 0.0, 1e-9);
    EXPECT_NEAR(r.x[1], 7.0, 1e-9);
}

TEST(Lp, ProvisioningShapedInstance)
{
    // Two server types, two workloads — the paper's Eq.(1)-(3) in
    // miniature. Type A: 100 QPS @ 100 W for both. Type B: 200 QPS @
    // 120 W for w0, 50 QPS @ 120 W for w1. Loads: 400, 100.
    // Optimal: B covers w0 (2 x 120 W), A covers w1 (1 x 100 W).
    LpProblem p;
    // Variables: x_A0, x_A1, x_B0, x_B1.
    p.c = {100.0, 100.0, 120.0, 120.0};
    p.a = {
        {-100.0, 0.0, -200.0, 0.0},  // cover w0
        {0.0, -100.0, 0.0, -50.0},   // cover w1
        {1.0, 1.0, 0.0, 0.0},        // avail A = 10
        {0.0, 0.0, 1.0, 1.0},        // avail B = 10
    };
    p.b = {-400.0, -100.0, 10.0, 10.0};
    LpResult r = solveLp(p);
    ASSERT_EQ(r.status, LpResult::Status::Optimal);
    EXPECT_NEAR(r.objective, 2.0 * 120.0 + 100.0, 1e-6);
}

TEST(LpDeath, MalformedProblems)
{
    LpProblem p;
    EXPECT_DEATH(solveLp(p), "no variables");
    p.c = {1.0};
    p.a = {{1.0, 2.0}};
    p.b = {1.0};
    EXPECT_DEATH(solveLp(p), "width");
}

/**
 * Randomized property test: on small problems with bounded feasible
 * regions, simplex must match a dense grid search within grid error.
 */
class LpRandomOracle : public ::testing::TestWithParam<int>
{
};

TEST_P(LpRandomOracle, MatchesGridSearch)
{
    Rng rng(static_cast<uint64_t>(GetParam()) * 7919 + 1);
    // Two variables, box-bounded, two extra random constraints.
    LpProblem p;
    p.c = {rng.uniform(-5.0, 5.0), rng.uniform(-5.0, 5.0)};
    double bx = rng.uniform(1.0, 8.0);
    double by = rng.uniform(1.0, 8.0);
    p.a = {{1.0, 0.0}, {0.0, 1.0}};
    p.b = {bx, by};
    for (int k = 0; k < 2; ++k) {
        p.a.push_back({rng.uniform(-1.0, 2.0), rng.uniform(-1.0, 2.0)});
        p.b.push_back(rng.uniform(0.5, 10.0));
    }

    LpResult r = solveLp(p);
    ASSERT_EQ(r.status, LpResult::Status::Optimal);

    // Grid oracle.
    double best = 1e300;
    const int steps = 200;
    for (int i = 0; i <= steps; ++i) {
        for (int j = 0; j <= steps; ++j) {
            double x = bx * i / steps;
            double y = by * j / steps;
            bool ok = true;
            for (size_t c = 0; c < p.a.size(); ++c)
                ok &= p.a[c][0] * x + p.a[c][1] * y <= p.b[c] + 1e-9;
            if (ok)
                best = std::min(best, p.c[0] * x + p.c[1] * y);
        }
    }
    double grid_err = (std::fabs(p.c[0]) * bx + std::fabs(p.c[1]) * by) /
                      steps * 2.0;
    EXPECT_LE(r.objective, best + 1e-6);
    EXPECT_GE(r.objective, best - grid_err);
    // Solution must itself be feasible.
    for (size_t c = 0; c < p.a.size(); ++c)
        EXPECT_LE(p.a[c][0] * r.x[0] + p.a[c][1] * r.x[1],
                  p.b[c] + 1e-6);
    EXPECT_GE(r.x[0], -1e-9);
    EXPECT_GE(r.x[1], -1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, LpRandomOracle, ::testing::Range(0, 20));

}  // namespace
}  // namespace hercules::cluster
