/**
 * @file
 * Telemetry layer tests: metrics-registry determinism and exports,
 * trace sampling + JSONL schema, leveled logging, the pinned
 * off-vs-on bit-identity of a telemetry-attached ClusterSim run, the
 * observability spec round-trip, and the writeIntervalArraysJson
 * schema pin.
 */
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/telemetry.h"
#include "obs/trace.h"
#include "scenario/scenario.h"
#include "scenario/spec_io.h"
#include "sim/cluster_sim.h"
#include "util/logging.h"
#include "workload/trace_gen.h"

namespace hercules {
namespace {

std::string
readFile(const std::string& path)
{
    FILE* f = std::fopen(path.c_str(), "r");
    EXPECT_NE(f, nullptr) << path;
    if (f == nullptr)
        return "";
    std::string out;
    int c;
    while ((c = std::fgetc(f)) != EOF)
        out.push_back(static_cast<char>(c));
    std::fclose(f);
    return out;
}

// ---- metrics registry ----------------------------------------------------

TEST(MetricsRegistry, DeclareIsIdempotentAndOrdered)
{
    obs::MetricsRegistry reg;
    int a = reg.counter("cluster.arrivals");
    int b = reg.gauge("shard.0.queue_depth");
    EXPECT_EQ(reg.counter("cluster.arrivals"), a);
    EXPECT_NE(a, b);
    EXPECT_EQ(reg.numMetrics(), 2u);
    EXPECT_EQ(reg.name(a), "cluster.arrivals");
    EXPECT_EQ(reg.kind(a), obs::MetricKind::Counter);
    EXPECT_EQ(reg.kind(b), obs::MetricKind::Gauge);
}

TEST(MetricsRegistry, CounterGaugeHistogramUpdate)
{
    obs::MetricsRegistry reg;
    int c = reg.counter("c");
    int g = reg.gauge("g");
    int h = reg.histogram("h");
    reg.add(c, 3.0);
    reg.add(c, 2.0);
    reg.set(g, 7.5);
    reg.set(g, 4.25);
    reg.observe(h, 0.5);
    reg.observe(h, 100.0);
    EXPECT_DOUBLE_EQ(reg.value(c), 5.0);
    EXPECT_DOUBLE_EQ(reg.value(g), 4.25);
    EXPECT_EQ(reg.histogramCount(h), 2u);
    EXPECT_DOUBLE_EQ(reg.histogramSum(h), 100.5);
}

TEST(MetricsRegistry, SamplingAlignsSeriesAndBackfillsLateMetrics)
{
    obs::MetricsRegistry reg;
    int c = reg.counter("early");
    reg.add(c, 1.0);
    reg.sample(10.0);
    reg.add(c, 1.0);
    reg.sample(20.0);

    // A metric declared after two samples back-fills with zeros so
    // every series stays aligned with sampleTimes().
    int late = reg.gauge("late");
    reg.set(late, 9.0);
    reg.sample(30.0);

    EXPECT_EQ(reg.numSamples(), 3u);
    EXPECT_EQ(reg.sampleTimes(), (std::vector<double>{10.0, 20.0, 30.0}));
    EXPECT_EQ(reg.series(c), (std::vector<double>{1.0, 2.0, 2.0}));
    EXPECT_EQ(reg.series(late), (std::vector<double>{0.0, 0.0, 9.0}));
}

TEST(MetricsRegistry, HistogramBucketsAreFixedAndLogSpaced)
{
    const std::vector<double>& bounds = obs::MetricsRegistry::bucketBounds();
    ASSERT_GE(bounds.size(), 2u);
    EXPECT_DOUBLE_EQ(bounds[0], 0.01);
    for (size_t i = 1; i < bounds.size(); ++i)
        EXPECT_DOUBLE_EQ(bounds[i], bounds[i - 1] * 2.0);

    obs::MetricsRegistry reg;
    int h = reg.histogram("h");
    reg.observe(h, 0.005);  // below the first bound
    reg.observe(h, 0.015);  // second bucket
    reg.observe(h, 1e9);    // beyond every bound: +Inf bucket
    const std::vector<uint64_t>& counts = reg.bucketCounts(h);
    ASSERT_EQ(counts.size(), bounds.size() + 1);  // + implicit +Inf
    EXPECT_EQ(counts[0], 1u);
    EXPECT_EQ(counts[1], 1u);
    EXPECT_EQ(counts.back(), 1u);
}

TEST(MetricsRegistry, PrometheusExportSchema)
{
    obs::MetricsRegistry reg;
    int c = reg.counter("cluster.arrivals");
    reg.add(c, 12.0);
    int h = reg.histogram("svc.0.latency_ms");
    reg.observe(h, 0.5);

    std::string path = "obs_test_metrics.txt";
    ASSERT_TRUE(reg.writeFile(path));
    std::string text = readFile(path);
    EXPECT_NE(text.find("# TYPE cluster.arrivals counter\n"),
              std::string::npos);
    EXPECT_NE(text.find("cluster.arrivals 12\n"), std::string::npos);
    EXPECT_NE(text.find("# TYPE svc.0.latency_ms histogram\n"),
              std::string::npos);
    EXPECT_NE(text.find("svc.0.latency_ms_bucket{le=\"+Inf\"} 1\n"),
              std::string::npos);
    EXPECT_NE(text.find("svc.0.latency_ms_count 1\n"), std::string::npos);
    std::remove(path.c_str());
}

TEST(MetricsRegistry, CsvExportIsLongForm)
{
    obs::MetricsRegistry reg;
    int c = reg.counter("c");
    reg.add(c, 2.0);
    reg.sample(60.0);

    std::string path = "obs_test_metrics.csv";
    ASSERT_TRUE(reg.writeFile(path));
    std::string text = readFile(path);
    EXPECT_EQ(text.rfind("t_s,name,value\n", 0), 0u);
    EXPECT_NE(text.find("60.000000,c,2\n"), std::string::npos);
    std::remove(path.c_str());
}

// ---- trace sampling + JSONL ----------------------------------------------

TEST(Trace, SamplingIsDeterministicWithExactEdges)
{
    for (uint64_t id = 0; id < 64; ++id) {
        EXPECT_TRUE(obs::traceSampled(id, 1.0));
        EXPECT_FALSE(obs::traceSampled(id, 0.0));
        EXPECT_EQ(obs::traceSampled(id, 0.25),
                  obs::traceSampled(id, 0.25));
    }
    // The hash is a uniformizer: the sampled fraction tracks the rate.
    size_t kept = 0;
    const size_t n = 100000;
    for (uint64_t id = 0; id < n; ++id)
        kept += obs::traceSampled(id, 0.1) ? 1 : 0;
    EXPECT_NEAR(static_cast<double>(kept) / n, 0.1, 0.01);
}

TEST(Trace, JsonlSchemaPinsKeyOrderAndNulls)
{
    obs::TraceRecord done;
    done.id = 17;
    done.service = 0;
    done.shard = 2;
    done.retry_hops = 0;
    done.arrival_s = 12.5;
    done.queue_wait_ms = 0.5;
    done.service_start_s = 12.5625;
    done.finish_s = 12.75;
    done.outcome = obs::TraceOutcome::Completed;

    obs::TraceRecord rejected;
    rejected.id = 18;
    rejected.service = 1;
    rejected.retry_hops = 3;
    rejected.arrival_s = 13.0;
    rejected.outcome = obs::TraceOutcome::Rejected;

    std::string path = "obs_test_trace.jsonl";
    FILE* f = std::fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    obs::writeTraceJsonl(f, {done, rejected});
    std::fclose(f);
    std::string text = readFile(path);
    EXPECT_EQ(text,
              "{\"id\": 17, \"service\": 0, \"outcome\": \"completed\", "
              "\"shard\": 2, \"retry_hops\": 0, "
              "\"arrival_s\": 12.500000, "
              "\"queue_wait_ms\": 0.500000, "
              "\"service_start_s\": 12.562500, "
              "\"finish_s\": 12.750000, \"latency_ms\": 250.000000}\n"
              "{\"id\": 18, \"service\": 1, \"outcome\": \"rejected\", "
              "\"shard\": null, \"retry_hops\": 3, "
              "\"arrival_s\": 13.000000, "
              "\"queue_wait_ms\": null, \"service_start_s\": null, "
              "\"finish_s\": null, \"latency_ms\": null}\n");
    std::remove(path.c_str());
}

// ---- leveled logging -----------------------------------------------------

TEST(Logging, ParseAndNameRoundTrip)
{
    using hercules::LogLevel;
    for (LogLevel lv : {LogLevel::Debug, LogLevel::Info, LogLevel::Warn,
                        LogLevel::Quiet})
        EXPECT_EQ(parseLogLevel(logLevelName(lv)), lv);
    EXPECT_FALSE(parseLogLevel("loud").has_value());
}

TEST(Logging, LevelGatesAndVerboseCompat)
{
    LogLevel before = logLevel();

    setLogLevel(LogLevel::Quiet);
    EXPECT_FALSE(logEnabled(LogLevel::Warn));
    EXPECT_FALSE(verboseEnabled());

    setLogLevel(LogLevel::Warn);
    EXPECT_TRUE(logEnabled(LogLevel::Warn));
    EXPECT_FALSE(logEnabled(LogLevel::Info));

    // The legacy switch maps onto the level without fighting it.
    setVerbose(true);
    EXPECT_TRUE(verboseEnabled());
    EXPECT_TRUE(logEnabled(LogLevel::Info));
    EXPECT_FALSE(logEnabled(LogLevel::Debug));
    setVerbose(false);
    EXPECT_FALSE(verboseEnabled());

    // setVerbose(false) never silences warnings below Warn.
    setLogLevel(LogLevel::Debug);
    setVerbose(true);  // already more verbose: no-op
    EXPECT_TRUE(logEnabled(LogLevel::Debug));

    setLogLevel(before);
}

// ---- ClusterSim off-vs-on bit identity -----------------------------------

sim::ClusterSimResult
runSmallCluster(obs::Telemetry* telemetry)
{
    model::Model m = model::buildModel(model::ModelId::DlrmRmc1);
    sched::SchedulingConfig cfg;
    cfg.mapping = sched::Mapping::CpuModelBased;
    cfg.cpu_threads = 4;
    cfg.cores_per_thread = 1;
    cfg.batch = 64;
    sim::PreparedWorkload w =
        sim::prepare(hw::serverSpec(hw::ServerType::T2), m, cfg);

    workload::DiurnalConfig dc;
    dc.peak_qps = 500.0;
    dc.trough_frac = 0.5;
    dc.noise_frac = 0.0;
    workload::DiurnalLoad load(dc);
    workload::TraceOptions topt;
    topt.horizon_hours = 0.003;
    topt.bucket_seconds = 2.0;
    topt.seed = 11;
    std::vector<workload::Query> trace =
        workload::TraceGenerator(load, topt).generate();

    sim::ClusterSim::Options copt;
    copt.router = sim::RouterPolicy::HerculesWeighted;
    copt.telemetry = telemetry;
    sim::ClusterSim cluster(copt);
    cluster.addShard(w, 1000.0);
    cluster.addShard(w, 1000.0);
    return cluster.run(trace, 2.0);
}

TEST(Telemetry, AttachedSinkNeverPerturbsTheSimulation)
{
    sim::ClusterSimResult off = runSmallCluster(nullptr);

    obs::ObsSpec spec;
    spec.trace_file = "obs_test_cluster_trace.jsonl";
    spec.metrics_file = "obs_test_cluster_metrics.txt";
    obs::Telemetry telemetry(spec);
    sim::ClusterSimResult on = runSmallCluster(&telemetry);

    EXPECT_EQ(on.injected, off.injected);
    EXPECT_EQ(on.completed, off.completed);
    EXPECT_EQ(on.dropped, off.dropped);
    EXPECT_EQ(on.rejected, off.rejected);
    EXPECT_EQ(on.sla_violations, off.sla_violations);
    EXPECT_DOUBLE_EQ(on.p50_ms, off.p50_ms);
    EXPECT_DOUBLE_EQ(on.p99_ms, off.p99_ms);
    EXPECT_DOUBLE_EQ(on.mean_ms, off.mean_ms);
    EXPECT_DOUBLE_EQ(on.max_ms, off.max_ms);
    EXPECT_EQ(on.des.events_executed, off.des.events_executed);

    // The sink saw the whole run: cluster counters match the result,
    // and every completion closed its span.
    const obs::MetricsRegistry& reg = telemetry.metrics();
    obs::MetricsRegistry& mreg = telemetry.metrics();
    EXPECT_DOUBLE_EQ(mreg.value(mreg.counter("cluster.arrivals")),
                     static_cast<double>(off.injected));
    EXPECT_DOUBLE_EQ(mreg.value(mreg.counter("cluster.completions")),
                     static_cast<double>(off.completed));
    EXPECT_GT(reg.numSamples(), 0u);

    size_t completed_spans = 0;
    for (const obs::TraceRecord& r : telemetry.traceRecords())
        if (r.outcome == obs::TraceOutcome::Completed) {
            ++completed_spans;
            EXPECT_GE(r.queue_wait_ms, 0.0);
            EXPECT_GE(r.finish_s, r.arrival_s);
        }
    EXPECT_EQ(completed_spans, off.completed);
}

TEST(Telemetry, DisabledSpecAttachesNothing)
{
    obs::ObsSpec spec;
    EXPECT_FALSE(spec.enabled());
    EXPECT_FALSE(spec.tracing());
    spec.metrics_file = "m.txt";
    EXPECT_TRUE(spec.enabled());
    EXPECT_FALSE(spec.tracing());
}

// ---- observability spec round-trip ---------------------------------------

TEST(SpecIo, ObservabilityBlockRoundTripsAndDefaultsOmit)
{
    scenario::ScenarioSpec def;
    EXPECT_EQ(scenario::toText(def).find("observability"),
              std::string::npos);

    scenario::ScenarioSpec s;
    s.observability.trace_file = "t.jsonl";
    s.observability.metrics_file = "m.csv";
    s.observability.sample_rate = 0.25;
    std::string text = scenario::toText(s);
    EXPECT_NE(text.find("\"observability\""), std::string::npos);

    std::string err;
    auto parsed = scenario::parseSpec(text, &err);
    ASSERT_TRUE(parsed.has_value()) << err;
    EXPECT_EQ(parsed->observability.trace_file, "t.jsonl");
    EXPECT_EQ(parsed->observability.metrics_file, "m.csv");
    EXPECT_DOUBLE_EQ(parsed->observability.sample_rate, 0.25);
    EXPECT_EQ(scenario::toText(*parsed), text);
}

TEST(SpecIo, ObservabilitySampleRateValidated)
{
    scenario::ScenarioSpec s;
    s.fleet.push_back({hw::ServerType::T2, 1});
    scenario::ServiceScenario svc;
    svc.spec.model = model::ModelId::DlrmRmc1;
    svc.spec.load.peak_qps = 100.0;
    s.services.push_back(svc);

    std::string err;
    EXPECT_TRUE(scenario::validateSpec(s, &err)) << err;
    s.observability.sample_rate = 1.5;
    EXPECT_FALSE(scenario::validateSpec(s, &err));
    EXPECT_NE(err.find("sample_rate"), std::string::npos);
}

// ---- writeIntervalArraysJson schema pin ----------------------------------

TEST(IntervalArrays, JsonSchemaIsPinned)
{
    std::vector<sim::IntervalStats> ivs(2);
    ivs[0].p99_ms = 1.5;
    ivs[0].sla_violation_rate = 0.125;
    ivs[0].dropped = 3;
    ivs[0].provisioned_power_w = 100.0;
    ivs[0].consumed_power_w = 80.5;
    ivs[1].p99_ms = 2.0;
    ivs[1].sla_violation_rate = 0.0;
    ivs[1].dropped = 0;
    ivs[1].provisioned_power_w = 50.5;
    ivs[1].consumed_power_w = 40.0;

    std::string path = "obs_test_intervals.json";
    FILE* f = std::fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    sim::writeIntervalArraysJson(f, ivs, "  ");
    std::fclose(f);

    // The exact bytes: key set, array lengths, precision, and comma
    // placement (last array unterminated) are all schema.
    EXPECT_EQ(readFile(path),
              "  \"interval_p99_ms\": [1.500, 2.000],\n"
              "  \"interval_sla_violation_rate\": [0.12500, 0.00000],\n"
              "  \"interval_dropped\": [3, 0],\n"
              "  \"interval_provisioned_power_w\": [100.0, 50.5],\n"
              "  \"interval_consumed_power_w\": [80.5, 40.0]\n");
    std::remove(path.c_str());
}

}  // namespace
}  // namespace hercules
