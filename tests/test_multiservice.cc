/**
 * @file
 * Tests of multi-service co-serving on a shared fleet: the
 * cross-service power-cap shedding order (least energy-efficient
 * (type, service) pair first) as a unit, and cluster::serveTraces end
 * to end on a hand-built efficiency table — joint provisioning, the
 * global power cap, per-service SLA resolution and drop accounting.
 */
#include <gtest/gtest.h>

#include <vector>

#include "cluster/serving.h"
#include "model/model_zoo.h"

namespace hercules::cluster {
namespace {

using hw::ServerType;
using model::ModelId;

ProvisionProblem
twoByTwoProblem()
{
    // (type, service) efficiencies, QPS/W:
    //   T2/RMC1: 2000/100 = 20    T2/RMC2: 1000/200 = 5   <- worst
    //   T3/RMC1: 3000/150 = 20    T3/RMC2: 1200/120 = 10
    ProvisionProblem p({ServerType::T2, ServerType::T3}, {2, 2},
                       {ModelId::DlrmRmc1, ModelId::DlrmRmc2});
    p.setPerf(0, 0, {true, 2000.0, 100.0});
    p.setPerf(0, 1, {true, 1000.0, 200.0});
    p.setPerf(1, 0, {true, 3000.0, 150.0});
    p.setPerf(1, 1, {true, 1200.0, 120.0});
    return p;
}

TEST(ShedToPowerCap, DropsLeastEfficientPairFirst)
{
    ProvisionProblem p = twoByTwoProblem();
    // One server on every pair: 100 + 200 + 150 + 120 = 570 W.
    std::vector<std::vector<int>> counts = {{1, 1}, {1, 1}};

    double power = 0.0;
    // No shedding needed: counts untouched.
    EXPECT_FALSE(shedToPowerCap(p, counts, 600.0, &power));
    EXPECT_DOUBLE_EQ(power, 570.0);

    // Cap 400: sheds exactly the worst pair (T2/RMC2, 5 QPS/W).
    EXPECT_TRUE(shedToPowerCap(p, counts, 400.0, &power));
    EXPECT_EQ(counts[0][1], 0);
    EXPECT_DOUBLE_EQ(power, 370.0);
    EXPECT_EQ(counts[0][0] + counts[1][0] + counts[1][1], 3);

    // Cap 300: next to go is T3/RMC2 (10 QPS/W); the two equally
    // efficient RMC1 pairs survive.
    EXPECT_TRUE(shedToPowerCap(p, counts, 300.0, &power));
    EXPECT_EQ(counts[1][1], 0);
    EXPECT_DOUBLE_EQ(power, 250.0);
    EXPECT_EQ(counts[0][0], 1);
    EXPECT_EQ(counts[1][0], 1);

    // An impossible cap sheds everything and reports zero power.
    EXPECT_TRUE(shedToPowerCap(p, counts, -1.0, &power));
    EXPECT_DOUBLE_EQ(power, 0.0);
}

/** A valid CPU config for the hand-built efficiency entries. */
sched::SchedulingConfig
cpuConfig()
{
    sched::SchedulingConfig cfg;
    cfg.mapping = sched::Mapping::CpuModelBased;
    cfg.cpu_threads = 4;
    cfg.cores_per_thread = 1;
    cfg.batch = 64;
    return cfg;
}

core::EfficiencyTable
handBuiltTable()
{
    core::EfficiencyTable t;
    core::EfficiencyEntry e1;
    e1.server = ServerType::T2;
    e1.model = ModelId::DlrmRmc1;
    e1.feasible = true;
    e1.qps = 2000.0;
    e1.power_w = 100.0;  // 20 QPS/W
    e1.config = cpuConfig();
    t.set(e1);
    core::EfficiencyEntry e2 = e1;
    e2.model = ModelId::DlrmRmc2;
    e2.qps = 1000.0;
    e2.power_w = 200.0;  // 5 QPS/W: first to shed
    t.set(e2);
    return t;
}

std::vector<ServiceSpec>
twoServices()
{
    std::vector<ServiceSpec> services(2);
    services[0].model = ModelId::DlrmRmc1;
    services[0].load.peak_qps = 400.0;
    services[0].load.trough_frac = 0.9;  // near-constant load
    services[0].load.noise_frac = 0.0;
    services[1].model = ModelId::DlrmRmc2;
    services[1].load.peak_qps = 150.0;
    services[1].load.trough_frac = 0.9;
    services[1].load.noise_frac = 0.0;
    services[1].load.peak_hour = 8.0;
    return services;
}

TraceServeOptions
shortOptions()
{
    TraceServeOptions opt;
    opt.horizon_hours = 0.01;    // ~36 simulated seconds
    opt.interval_hours = 0.002;  // 5 intervals
    opt.overprovision_rate = 0.1;
    opt.trace.seed = 7;
    opt.trace.bucket_seconds = 5.0;
    return opt;
}

TEST(ServeTraces, CoServesTwoServicesOnSharedFleet)
{
    core::EfficiencyTable table = handBuiltTable();
    HerculesProvisioner policy;
    MultiServeResult r =
        serveTraces(table, {ServerType::T2}, {2}, twoServices(), policy,
                    shortOptions());

    // Two shard personalities per physical slot (one per service).
    EXPECT_EQ(r.shard_slots, 4);
    EXPECT_DOUBLE_EQ(r.service_capacity_qps[0], 4000.0);
    EXPECT_DOUBLE_EQ(r.service_capacity_qps[1], 2000.0);
    // SLA resolution falls back to the model zoo.
    ASSERT_EQ(r.service_sla_ms.size(), 2u);
    EXPECT_DOUBLE_EQ(r.service_sla_ms[0],
                     model::buildModel(ModelId::DlrmRmc1).sla_ms);
    EXPECT_DOUBLE_EQ(r.service_sla_ms[1],
                     model::buildModel(ModelId::DlrmRmc2).sla_ms);

    // Both services served, nothing dropped, per-service slices add up.
    ASSERT_EQ(r.sim.services.size(), 2u);
    EXPECT_GT(r.sim.services[0].completed, 0u);
    EXPECT_GT(r.sim.services[1].completed, 0u);
    EXPECT_EQ(r.sim.dropped, 0u);
    EXPECT_EQ(r.sim.services[0].completed + r.sim.services[1].completed,
              r.sim.completed);
    // One server per service fits the (1 + R)-scaled loads: 300 W.
    for (size_t k = 0; k + 1 < r.sim.intervals.size(); ++k) {
        EXPECT_FALSE(r.sim.intervals[k].power_capped);
        EXPECT_DOUBLE_EQ(r.sim.intervals[k].provisioned_power_w, 300.0);
    }
}

TEST(ServeTraces, GlobalPowerCapShedsWorstServiceAndCountsDrops)
{
    core::EfficiencyTable table = handBuiltTable();
    HerculesProvisioner policy;
    TraceServeOptions opt = shortOptions();
    // 300 W needed; 150 W cap sheds T2/RMC2 (5 QPS/W) and keeps
    // T2/RMC1 (20 QPS/W): service 1 goes dark and drops everything.
    opt.power_cap_w = 150.0;
    MultiServeResult r = serveTraces(table, {ServerType::T2}, {2},
                                     twoServices(), policy, opt);

    ASSERT_EQ(r.sim.services.size(), 2u);
    EXPECT_EQ(r.sim.services[0].dropped, 0u);
    EXPECT_GT(r.sim.services[0].completed, 0u);
    EXPECT_EQ(r.sim.services[1].completed, 0u);
    EXPECT_GT(r.sim.services[1].dropped, 0u);
    // Dropped arrivals are SLA violations, per service and overall.
    EXPECT_DOUBLE_EQ(r.sim.services[1].sla_violation_rate, 1.0);
    EXPECT_EQ(r.sim.sla_violations, r.sim.services[1].dropped +
                                        r.sim.services[0].sla_violations);
    for (size_t k = 0; k + 1 < r.sim.intervals.size(); ++k) {
        const sim::IntervalStats& iv = r.sim.intervals[k];
        EXPECT_TRUE(iv.power_capped);
        EXPECT_LE(iv.provisioned_power_w, opt.power_cap_w + 1e-9);
        EXPECT_DOUBLE_EQ(iv.budget_power_w, opt.power_cap_w);
        EXPECT_EQ(iv.services[1].dropped, iv.services[1].sla_violations);
    }
}

}  // namespace
}  // namespace hercules::cluster
