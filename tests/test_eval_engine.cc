/**
 * @file
 * Tests of the evaluation engine: memoization correctness (cached
 * replays are bit-identical and free), thread-count independence
 * (1-thread vs N-thread searches and efficiency tables agree exactly),
 * cache-key discrimination, and the measurement shortcuts (warm-start
 * bisection, early-abort probes).
 */
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "core/eval_engine.h"
#include "core/profiler.h"
#include "sched/gradient_search.h"

namespace hercules::core {
namespace {

using hw::ServerType;
using model::ModelId;
using sched::Mapping;
using sched::SchedulingConfig;
using sched::SearchOptions;
using sched::SearchResult;

SearchOptions
fastSearch(int threads)
{
    SearchOptions opt;
    opt.measure.sim.num_queries = 250;
    opt.measure.sim.warmup_queries = 50;
    opt.measure.bisect_iters = 4;
    opt.space.batches = {32, 128, 512};
    opt.space.fusion_limits = {0, 1000, 4000};
    opt.space.max_gpu_threads = 4;
    opt.space.max_cores_per_thread = 2;
    opt.space.host_helper_threads = {2};
    opt.eval.threads = threads;
    return opt;
}

EvalRequest
request(const hw::ServerSpec& server, const model::Model& m,
        const SchedulingConfig& cfg, double sla_ms,
        const sim::MeasureOptions& mo)
{
    EvalRequest r;
    r.server = &server;
    r.model = &m;
    r.cfg = cfg;
    r.sla_ms = sla_ms;
    r.measure = mo;
    return r;
}

/** Exact (bitwise) equality of two search outcomes. */
void
expectIdentical(const SearchResult& a, const SearchResult& b)
{
    ASSERT_EQ(a.best.has_value(), b.best.has_value());
    if (a.best) {
        EXPECT_EQ(a.best->key(), b.best->key());
    }
    EXPECT_EQ(a.best_qps, b.best_qps);  // bit-identical, no tolerance
    EXPECT_EQ(a.best_point.result.tail_ms, b.best_point.result.tail_ms);
    EXPECT_EQ(a.best_point.result.peak_power_w,
              b.best_point.result.peak_power_w);
    ASSERT_EQ(a.trace.size(), b.trace.size());
    for (size_t i = 0; i < a.trace.size(); ++i) {
        EXPECT_EQ(a.trace[i].cfg.key(), b.trace[i].cfg.key()) << i;
        EXPECT_EQ(a.trace[i].qps, b.trace[i].qps) << i;
        EXPECT_EQ(a.trace[i].accepted, b.trace[i].accepted) << i;
    }
}

TEST(EvalEngine, MemoizedReplayIsFreeAndIdentical)
{
    model::Model m = model::buildModel(ModelId::DlrmRmc1);
    const hw::ServerSpec& server = hw::serverSpec(ServerType::T2);
    SearchOptions opt = fastSearch(2);
    EvalEngine engine(opt.eval);
    opt.engine = &engine;

    SearchResult first = herculesTaskSearch(server, m, 20.0, opt);
    EvalEngine::Stats after_first = engine.stats();
    SearchResult second = herculesTaskSearch(server, m, 20.0, opt);

    expectIdentical(first, second);
    ASSERT_TRUE(first.best.has_value());
    EXPECT_GT(first.evals, 0);
    // The replay pays for nothing: every step is a memo hit and the
    // engine runs zero additional simulations.
    EXPECT_EQ(second.evals, 0);
    EXPECT_EQ(second.cache_hits,
              static_cast<int>(second.trace.size()));
    EXPECT_EQ(engine.stats().misses, after_first.misses);
    EXPECT_EQ(engine.stats().simulations, after_first.simulations);
}

TEST(EvalEngine, SerialAndPooledSearchesAreBitIdentical)
{
    model::Model m = model::buildModel(ModelId::DlrmRmc1);
    const hw::ServerSpec& server = hw::serverSpec(ServerType::T2);

    SearchResult serial =
        herculesTaskSearch(server, m, 20.0, fastSearch(1));
    SearchResult pooled =
        herculesTaskSearch(server, m, 20.0, fastSearch(4));

    expectIdentical(serial, pooled);
    ASSERT_TRUE(serial.best.has_value());
    EXPECT_EQ(serial.evals, pooled.evals);
    EXPECT_EQ(serial.cache_hits, pooled.cache_hits);
}

TEST(EvalEngine, SerialAndPooledAgreeOnAccelerator)
{
    // The accelerator search exercises the helper fan-out and the
    // nested S-D pipeline arms.
    model::Model m =
        model::buildModel(ModelId::DlrmRmc3, model::Variant::Small);
    const hw::ServerSpec& server = hw::serverSpec(ServerType::T7);

    SearchResult serial =
        herculesTaskSearch(server, m, 50.0, fastSearch(1));
    SearchResult pooled =
        herculesTaskSearch(server, m, 50.0, fastSearch(4));
    expectIdentical(serial, pooled);
    ASSERT_TRUE(serial.best.has_value());
}

TEST(EvalEngine, SerialAndPooledEfficiencyTablesAreIdentical)
{
    ProfilerOptions popt;
    popt.search = fastSearch(1);
    popt.servers = {ServerType::T1, ServerType::T2};
    popt.models = {ModelId::DlrmRmc1, ModelId::MtWnd};

    EfficiencyTable serial = offlineProfile(popt);
    popt.search = fastSearch(4);
    EfficiencyTable pooled = offlineProfile(popt);

    ASSERT_EQ(serial.size(), 4u);
    EXPECT_TRUE(serial == pooled);
}

TEST(EvalEngine, ExhaustiveOracleMatchesAcrossThreadCounts)
{
    model::Model m = model::buildModel(ModelId::DlrmRmc1);
    const hw::ServerSpec& server = hw::serverSpec(ServerType::T2);
    SearchResult serial = exhaustiveSearch(
        server, m, Mapping::CpuModelBased, 20.0, fastSearch(1));
    SearchResult pooled = exhaustiveSearch(
        server, m, Mapping::CpuModelBased, 20.0, fastSearch(4));
    expectIdentical(serial, pooled);
    EXPECT_GT(serial.evals, 0);
}

TEST(EvalEngine, CacheKeyDiscriminates)
{
    model::Model m = model::buildModel(ModelId::DlrmRmc1);
    const hw::ServerSpec& t2 = hw::serverSpec(ServerType::T2);
    const hw::ServerSpec& t3 = hw::serverSpec(ServerType::T3);
    sim::MeasureOptions mo;
    SchedulingConfig cfg;
    cfg.cpu_threads = 10;
    cfg.cores_per_thread = 2;
    cfg.batch = 128;

    EvalOptions eopt;
    std::string base = EvalEngine::cacheKey(request(t2, m, cfg, 20.0, mo),
                                            eopt);
    // Identical request -> identical key.
    EXPECT_EQ(base, EvalEngine::cacheKey(request(t2, m, cfg, 20.0, mo),
                                         eopt));
    // Any result-affecting input must change the key.
    EXPECT_NE(base, EvalEngine::cacheKey(request(t3, m, cfg, 20.0, mo),
                                         eopt));
    EXPECT_NE(base, EvalEngine::cacheKey(request(t2, m, cfg, 50.0, mo),
                                         eopt));
    SchedulingConfig batch_cfg = cfg;
    batch_cfg.batch = 256;
    EXPECT_NE(base, EvalEngine::cacheKey(
                        request(t2, m, batch_cfg, 20.0, mo), eopt));
    SchedulingConfig fuse_cfg = cfg;
    fuse_cfg.fuse_elementwise = false;
    EXPECT_NE(base, EvalEngine::cacheKey(
                        request(t2, m, fuse_cfg, 20.0, mo), eopt));
    sim::MeasureOptions seed_mo = mo;
    seed_mo.sim.seed = 43;
    EXPECT_NE(base, EvalEngine::cacheKey(
                        request(t2, m, cfg, 20.0, seed_mo), eopt));
    sim::MeasureOptions power_mo = mo;
    power_mo.power_budget_w = 150.0;
    EXPECT_NE(base, EvalEngine::cacheKey(
                        request(t2, m, cfg, 20.0, power_mo), eopt));
    model::Model small =
        model::buildModel(ModelId::DlrmRmc1, model::Variant::Small);
    EXPECT_NE(base, EvalEngine::cacheKey(
                        request(t2, small, cfg, 20.0, mo), eopt));

    // Near-collision sanity: configs whose display strings could read
    // alike must still key apart (t=11,o=1 vs t=1,o=11 etc.).
    SchedulingConfig a, b;
    a.cpu_threads = 11;
    a.cores_per_thread = 1;
    b.cpu_threads = 1;
    b.cores_per_thread = 11;
    EXPECT_NE(
        EvalEngine::cacheKey(request(t2, m, a, 20.0, mo), eopt),
        EvalEngine::cacheKey(request(t2, m, b, 20.0, mo), eopt));
}

TEST(EvalEngine, InvalidConfigsAreNeverSimulated)
{
    model::Model m = model::buildModel(ModelId::DlrmRmc1);
    const hw::ServerSpec& t2 = hw::serverSpec(ServerType::T2);
    SchedulingConfig cfg;
    cfg.cpu_threads = 10000;  // far beyond the socket
    EvalEngine engine(EvalOptions{});
    EvalResult r =
        engine.evaluate(request(t2, m, cfg, 20.0, sim::MeasureOptions{}));
    EXPECT_FALSE(r.valid);
    EXPECT_FALSE(r.point.has_value());
    EXPECT_EQ(engine.stats().invalid, 1u);
    EXPECT_EQ(engine.stats().simulations, 0u);
}

TEST(EvalEngine, WarmStartAndAbortCutSimulationsNotFeasibility)
{
    model::Model m = model::buildModel(ModelId::DlrmRmc1);
    const hw::ServerSpec& server = hw::serverSpec(ServerType::T2);

    SearchOptions base = fastSearch(1);
    SearchResult reference =
        gradientSearchMapping(server, m, Mapping::CpuModelBased, 20.0,
                              base);
    ASSERT_TRUE(reference.best.has_value());

    SearchOptions fast = base;
    fast.eval.warm_start = true;
    fast.eval.abort_tail_factor = 8.0;
    fast.eval.bisect_rel_tol = 0.05;
    EvalEngine engine(fast.eval);
    fast.engine = &engine;
    SearchResult shortcut = gradientSearchMapping(
        server, m, Mapping::CpuModelBased, 20.0, fast);

    // The shortcuts steer which loads get probed, so the operating
    // point may move slightly — but feasibility and near-optimality
    // must hold.
    ASSERT_TRUE(shortcut.best.has_value());
    EXPECT_GE(shortcut.best_qps, 0.90 * reference.best_qps);
    EXPECT_LE(shortcut.best_point.result.tail_ms, 20.0);
}

/*
 * Cross-process memo persistence: a saved cache file warm-starts a
 * fresh engine — the replayed request is a pure memo hit (no new
 * simulations) and every measurement round-trips bit-exactly.
 */
TEST(EvalEngine, CacheRoundTripsThroughDisk)
{
    const char* path = "test_eval_engine_cache.tmp";
    model::Model m = model::buildModel(ModelId::DlrmRmc1);
    const hw::ServerSpec& t2 = hw::serverSpec(ServerType::T2);
    SchedulingConfig cfg;
    cfg.mapping = Mapping::CpuModelBased;
    cfg.cpu_threads = 4;
    cfg.cores_per_thread = 2;
    cfg.batch = 128;
    sim::MeasureOptions mo;
    mo.sim.num_queries = 250;
    mo.sim.warmup_queries = 50;
    mo.bisect_iters = 4;
    EvalRequest req = request(t2, m, cfg, 20.0, mo);

    // Also persist an invalid-config verdict: the cache must round-
    // trip pointless entries too, not only operating points.
    SchedulingConfig bad = cfg;
    bad.cpu_threads = 10000;

    EvalEngine first(EvalOptions{});
    EvalResult computed = first.evaluate(req);
    ASSERT_TRUE(computed.valid);
    ASSERT_TRUE(computed.point.has_value());
    EvalResult invalid = first.evaluate(
        request(t2, m, bad, 20.0, mo));
    ASSERT_FALSE(invalid.valid);
    EXPECT_EQ(first.saveCache(path), 2u);

    EvalEngine second(EvalOptions{});
    EXPECT_EQ(second.loadCache(path), 2u);
    EvalResult replayed = second.evaluate(req);
    EXPECT_TRUE(replayed.cache_hit);
    EXPECT_EQ(second.stats().misses, 0u);
    EXPECT_EQ(second.stats().simulations, 0u);
    ASSERT_TRUE(replayed.valid);
    ASSERT_TRUE(replayed.point.has_value());
    // Bit-exact round-trip of the operating point.
    EXPECT_EQ(replayed.point->qps, computed.point->qps);
    EXPECT_EQ(replayed.point->capacity, computed.point->capacity);
    EXPECT_EQ(replayed.point->bracket_lo, computed.point->bracket_lo);
    EXPECT_EQ(replayed.point->bracket_hi, computed.point->bracket_hi);
    EXPECT_EQ(replayed.point->sims, computed.point->sims);
    const sim::ServerSimResult& a = replayed.point->result;
    const sim::ServerSimResult& b = computed.point->result;
    EXPECT_EQ(a.p50_ms, b.p50_ms);
    EXPECT_EQ(a.p99_ms, b.p99_ms);
    EXPECT_EQ(a.tail_ms, b.tail_ms);
    EXPECT_EQ(a.achieved_qps, b.achieved_qps);
    EXPECT_EQ(a.avg_power_w, b.avg_power_w);
    EXPECT_EQ(a.peak_power_w, b.peak_power_w);
    EXPECT_EQ(a.qps_per_watt, b.qps_per_watt);
    EXPECT_EQ(a.cpu_util, b.cpu_util);
    EXPECT_EQ(a.mem_bw_util, b.mem_bw_util);
    EXPECT_EQ(a.completed, b.completed);
    EXPECT_EQ(a.duration_s, b.duration_s);
    EvalResult bad_replayed =
        second.evaluate(request(t2, m, bad, 20.0, mo));
    EXPECT_TRUE(bad_replayed.cache_hit);
    EXPECT_FALSE(bad_replayed.valid);
    std::remove(path);
}

/*
 * Regression: saveCache must not leak unordered_map bucket order into
 * the memo file. Two engines loading the same entries in opposite
 * orders save byte-identical, key-sorted files — memo spills are
 * diffable artifacts and CI-cache keys, so their bytes are part of the
 * determinism contract.
 */
TEST(EvalEngine, SaveCacheIsKeySortedAndInsertionOrderFree)
{
    const char* fwd = "test_eval_cache_fwd.tmp";
    const char* rev = "test_eval_cache_rev.tmp";
    const char* out_a = "test_eval_cache_out_a.tmp";
    const char* out_b = "test_eval_cache_out_b.tmp";
    std::vector<std::string> keys = {"zeta", "alpha", "mid", "beta"};

    auto write_seed = [&](const char* path, bool reversed) {
        FILE* f = std::fopen(path, "w");
        ASSERT_NE(f, nullptr);
        std::fprintf(f, "HERCULES_EVAL_CACHE v1\n");
        for (size_t i = 0; i < keys.size(); ++i) {
            const std::string& k =
                reversed ? keys[keys.size() - 1 - i] : keys[i];
            std::fprintf(f, "%s\t0 0\n", k.c_str());
        }
        std::fclose(f);
    };
    auto read_file = [](const char* path) {
        FILE* f = std::fopen(path, "r");
        EXPECT_NE(f, nullptr);
        std::string s;
        int c;
        while ((c = std::fgetc(f)) != EOF)
            s.push_back(static_cast<char>(c));
        std::fclose(f);
        return s;
    };

    write_seed(fwd, false);
    write_seed(rev, true);
    EvalEngine a(EvalOptions{});
    EvalEngine b(EvalOptions{});
    ASSERT_EQ(a.loadCache(fwd), keys.size());
    ASSERT_EQ(b.loadCache(rev), keys.size());
    EXPECT_EQ(a.saveCache(out_a), keys.size());
    EXPECT_EQ(b.saveCache(out_b), keys.size());

    std::string text_a = read_file(out_a);
    EXPECT_EQ(text_a, read_file(out_b));
    EXPECT_EQ(text_a,
              "HERCULES_EVAL_CACHE v1\n"
              "alpha\t0 0\n"
              "beta\t0 0\n"
              "mid\t0 0\n"
              "zeta\t0 0\n");

    std::remove(fwd);
    std::remove(rev);
    std::remove(out_a);
    std::remove(out_b);
}

TEST(EvalEngine, LoadCacheRejectsMissingOrForeignFiles)
{
    EvalEngine engine(EvalOptions{});
    EXPECT_EQ(engine.loadCache("no_such_eval_cache.tmp"), 0u);

    const char* path = "test_eval_engine_bogus.tmp";
    FILE* f = std::fopen(path, "w");
    ASSERT_NE(f, nullptr);
    std::fprintf(f, "SOME OTHER FORMAT\nkey\t1 0\n");
    std::fclose(f);
    EXPECT_EQ(engine.loadCache(path), 0u);
    std::remove(path);
}

TEST(EvalEngine, AbortedProbeIsInfeasibleVerdict)
{
    // Drive one measurement at an absurd SLA with aborts enabled: the
    // engine must return infeasible, not hang on the backlog drain.
    model::Model m = model::buildModel(ModelId::DlrmRmc1);
    const hw::ServerSpec& t2 = hw::serverSpec(ServerType::T2);
    SchedulingConfig cfg;
    cfg.cpu_threads = 1;
    cfg.cores_per_thread = 1;
    cfg.batch = 32;
    sim::MeasureOptions mo;
    mo.sim.num_queries = 250;
    mo.sim.warmup_queries = 50;
    mo.abort_tail_factor = 4.0;
    EvalEngine engine(EvalOptions{});
    EvalResult r = engine.evaluate(request(t2, m, cfg, 0.05, mo));
    EXPECT_TRUE(r.valid);
    EXPECT_FALSE(r.point.has_value());
}

}  // namespace
}  // namespace hercules::core
