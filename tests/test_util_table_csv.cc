/**
 * @file
 * Tests for the console table printer and the CSV writer/parser.
 */
#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "util/csv.h"
#include "util/table.h"

namespace hercules {
namespace {

TEST(TablePrinter, RendersHeaderAndRows)
{
    TablePrinter t({"A", "Bee"});
    t.addRow({"1", "2"});
    t.addRow({"longer", "x"});
    std::string s = t.str();
    EXPECT_NE(s.find("| A      | Bee |"), std::string::npos);
    EXPECT_NE(s.find("| longer | x   |"), std::string::npos);
    EXPECT_EQ(t.rows(), 2u);
}

TEST(TablePrinter, SeparatorNotCountedAsRow)
{
    TablePrinter t({"A"});
    t.addRow({"1"});
    t.addSeparator();
    t.addRow({"2"});
    EXPECT_EQ(t.rows(), 2u);
}

TEST(TablePrinterDeath, WrongColumnCountIsFatal)
{
    TablePrinter t({"A", "B"});
    EXPECT_DEATH(t.addRow({"only-one"}), "row has");
}

TEST(Format, Double)
{
    EXPECT_EQ(fmtDouble(3.14159, 2), "3.14");
    EXPECT_EQ(fmtDouble(3.0, 0), "3");
}

TEST(Format, Engineering)
{
    EXPECT_EQ(fmtEng(1234.0, 1), "1.2K");
    EXPECT_EQ(fmtEng(2'500'000.0, 1), "2.5M");
    EXPECT_EQ(fmtEng(3.2e9, 1), "3.2G");
    EXPECT_EQ(fmtEng(12.0, 1), "12.0");
}

TEST(Format, SpeedupAndPercent)
{
    EXPECT_EQ(fmtSpeedup(2.954, 2), "2.95x");
    EXPECT_EQ(fmtPercent(0.477, 1), "47.7%");
}

TEST(Csv, WriteParseRoundtrip)
{
    CsvWriter w({"a", "b", "c"});
    w.addRow({"1", "two", "3.5"});
    w.addRow({"x,y", "with \"quotes\"", "multi\nline"});
    auto rows = parseCsv(w.str());
    ASSERT_EQ(rows.size(), 3u);
    EXPECT_EQ(rows[0], (std::vector<std::string>{"a", "b", "c"}));
    EXPECT_EQ(rows[1], (std::vector<std::string>{"1", "two", "3.5"}));
    EXPECT_EQ(rows[2][0], "x,y");
    EXPECT_EQ(rows[2][1], "with \"quotes\"");
    EXPECT_EQ(rows[2][2], "multi\nline");
}

TEST(Csv, EmptyCellsPreserved)
{
    auto rows = parseCsv("a,,c\n,,\n");
    ASSERT_EQ(rows.size(), 2u);
    EXPECT_EQ(rows[0].size(), 3u);
    EXPECT_EQ(rows[0][1], "");
    EXPECT_EQ(rows[1].size(), 3u);
}

TEST(Csv, CrlfTolerated)
{
    auto rows = parseCsv("a,b\r\nc,d\r\n");
    ASSERT_EQ(rows.size(), 2u);
    EXPECT_EQ(rows[1][1], "d");
}

TEST(Csv, MissingTrailingNewline)
{
    auto rows = parseCsv("a,b\nc,d");
    ASSERT_EQ(rows.size(), 2u);
    EXPECT_EQ(rows[1][0], "c");
}

TEST(Csv, FileRoundtrip)
{
    std::string path = ::testing::TempDir() + "/hercules_csv_test.csv";
    CsvWriter w({"k", "v"});
    w.addRow({"qps", "1234.5"});
    w.write(path);
    auto rows = readCsvFile(path);
    ASSERT_EQ(rows.size(), 2u);
    EXPECT_EQ(rows[1][0], "qps");
    std::remove(path.c_str());
}

TEST(CsvDeath, WrongWidthRowIsFatal)
{
    CsvWriter w({"a", "b"});
    EXPECT_DEATH(w.addRow({"1"}), "row has");
}

}  // namespace
}  // namespace hercules
