/**
 * @file
 * Focused tests of the accelerator serving path: query fusion
 * semantics, the PCIe DMA queue, double-buffered load/execute
 * pipelining, the hot-split cold path, and MPS co-location effects —
 * the mechanisms behind Fig 6/7.
 */
#include <gtest/gtest.h>

#include "sim/measure.h"

namespace hercules::sim {
namespace {

using hw::ServerType;
using model::ModelId;
using model::Variant;
using sched::Mapping;
using sched::SchedulingConfig;

SchedulingConfig
gpuConfig(int g, int fusion, int host_threads = 2)
{
    SchedulingConfig cfg;
    cfg.mapping = Mapping::GpuModelBased;
    cfg.gpu_threads = g;
    cfg.fusion_limit = fusion;
    cfg.cpu_threads = host_threads;
    return cfg;
}

SimOptions
fastOptions(double qps)
{
    SimOptions opt;
    opt.offered_qps = qps;
    opt.num_queries = 300;
    opt.warmup_queries = 60;
    opt.seed = 42;
    return opt;
}

double
capacity(const model::Model& m, const SchedulingConfig& cfg)
{
    PreparedWorkload w = prepare(hw::serverSpec(ServerType::T7), m, cfg);
    SimOptions opt = fastOptions(1.0);
    opt.saturate = true;
    return simulateServer(w, opt).achieved_qps;
}

TEST(GpuFusion, CapacityGrowsWithFusionLimit)
{
    model::Model m = model::buildModel(ModelId::MtWnd, Variant::Small);
    double prev = 0.0;
    for (int fusion : {0, 1000, 4000}) {
        double cap = capacity(m, gpuConfig(1, fusion));
        EXPECT_GT(cap, prev) << "fusion " << fusion;
        prev = cap;
    }
}

TEST(GpuFusion, LargeQueriesChunkedAtLimit)
{
    // Queries larger than the fusion limit must still complete (they
    // split into limit-sized chunks).
    model::Model m = model::buildModel(ModelId::DlrmRmc3, Variant::Small);
    SchedulingConfig cfg = gpuConfig(1, 64);  // far below max query size
    SimOptions opt = fastOptions(300);
    ServerSimResult r =
        simulateServer(hw::serverSpec(ServerType::T7), m, cfg, opt);
    EXPECT_EQ(r.completed, 240u);
}

TEST(GpuFusion, NoFusionServesOneQueryPerBatch)
{
    // Without fusion the mean exec time tracks single-query batches:
    // fusing must raise per-batch exec but lower per-item cost.
    model::Model m = model::buildModel(ModelId::MtWnd, Variant::Small);
    SimOptions opt = fastOptions(100);
    ServerSimResult plain = simulateServer(
        hw::serverSpec(ServerType::T7), m, gpuConfig(1, 0), opt);
    SimOptions busy = fastOptions(800);
    ServerSimResult fused = simulateServer(
        hw::serverSpec(ServerType::T7), m, gpuConfig(1, 6000), busy);
    EXPECT_GT(fused.mean_exec_ms, plain.mean_exec_ms);
    EXPECT_GT(fused.achieved_qps, plain.achieved_qps);
}

TEST(GpuPipeline, PcieContentionSlowsLoading)
{
    // More co-located threads share the one DMA engine: per-batch
    // loading time (queue + transfer) grows.
    model::Model m = model::buildModel(ModelId::DlrmRmc3, Variant::Small);
    SimOptions opt = fastOptions(2500);
    ServerSimResult one = simulateServer(
        hw::serverSpec(ServerType::T7), m, gpuConfig(1, 2000), opt);
    ServerSimResult four = simulateServer(
        hw::serverSpec(ServerType::T7), m, gpuConfig(4, 2000), opt);
    EXPECT_GT(four.mean_load_ms, one.mean_load_ms * 0.9);
    EXPECT_GT(four.pcie_util, 0.0);
}

TEST(GpuPipeline, DoubleBufferingOverlapsLoadAndExec)
{
    // With load/execute overlap, capacity approaches
    // items / max(load, exec) rather than items / (load + exec): the
    // measured capacity must exceed the serial bound.
    model::Model m = model::buildModel(ModelId::DlrmRmc3, Variant::Small);
    SchedulingConfig cfg = gpuConfig(1, 2000);
    PreparedWorkload w = prepare(hw::serverSpec(ServerType::T7), m, cfg);
    SimOptions sat = fastOptions(1.0);
    sat.saturate = true;
    ServerSimResult r = simulateServer(w, sat);
    double serial_qps_bound =
        1e3 / (r.mean_load_ms + r.mean_exec_ms) *
        (r.achieved_qps * (r.mean_load_ms + r.mean_exec_ms) / 1e3);
    // Equivalent check expressed robustly: load and exec overlap, so
    // utilizations of PCIe and GPU can sum above 1.
    EXPECT_GT(r.pcie_util + r.gpu_util, 1.0);
    (void)serial_qps_bound;
}

TEST(HotSplitPath, ColdFractionEngagesHostStage)
{
    // Production RMC1 (3 GB) forced into a small per-thread budget by
    // heavy co-location: the cold path must show host-stage time.
    model::Model m = model::buildModel(ModelId::DlrmRmc1);
    SchedulingConfig cfg = gpuConfig(6, 2000, 4);
    PreparedWorkload w = prepare(hw::serverSpec(ServerType::T7), m, cfg);
    ASSERT_LT(w.gpu_cx.hot_hit_rate, 1.0);
    SimOptions opt = fastOptions(2000);
    ServerSimResult r = simulateServer(w, opt);
    EXPECT_EQ(r.completed, 240u);
    EXPECT_GT(r.mean_host_ms, 0.0);
    EXPECT_GT(r.cpu_util, 0.0);
}

TEST(HotSplitPath, FullResidencySkipsHostStage)
{
    model::Model m = model::buildModel(ModelId::DlrmRmc1, Variant::Small);
    SchedulingConfig cfg = gpuConfig(1, 2000, 2);
    PreparedWorkload w = prepare(hw::serverSpec(ServerType::T7), m, cfg);
    ASSERT_DOUBLE_EQ(w.gpu_cx.hot_hit_rate, 1.0);
    SimOptions opt = fastOptions(2000);
    ServerSimResult r = simulateServer(w, opt);
    EXPECT_DOUBLE_EQ(r.mean_host_ms, 0.0);
}

TEST(HotSplitPath, HigherHitRateHigherCapacity)
{
    // Fewer co-located threads -> bigger per-thread embedding budget ->
    // higher hit rate -> less cold-path work. Compare capacities at
    // matched co-location counts via the prepared hit rates.
    model::Model m = model::buildModel(ModelId::DlrmRmc2);  // 30 GB
    SchedulingConfig few = gpuConfig(1, 2000, 4);
    SchedulingConfig many = gpuConfig(4, 2000, 4);
    PreparedWorkload wf = prepare(hw::serverSpec(ServerType::T7), m, few);
    PreparedWorkload wm =
        prepare(hw::serverSpec(ServerType::T7), m, many);
    EXPECT_GT(wf.gpu_cx.hot_hit_rate, wm.gpu_cx.hot_hit_rate);
}

TEST(Colocation, SlowdownVisibleInExecTime)
{
    model::Model m = model::buildModel(ModelId::Din, Variant::Small);
    SimOptions opt = fastOptions(800);
    ServerSimResult g1 = simulateServer(hw::serverSpec(ServerType::T7), m,
                                        gpuConfig(1, 1000), opt);
    ServerSimResult g4 = simulateServer(hw::serverSpec(ServerType::T7), m,
                                        gpuConfig(4, 1000), opt);
    // Per-kernel slowdown under MPS interference.
    EXPECT_GT(g4.mean_exec_ms, g1.mean_exec_ms);
}

TEST(GpuSdPipeline, SparseOutputsFuseDownstream)
{
    model::Model m = model::buildModel(ModelId::DlrmRmc1);
    SchedulingConfig cfg;
    cfg.mapping = Mapping::GpuSdPipeline;
    cfg.cpu_threads = 8;
    cfg.cores_per_thread = 2;
    cfg.batch = 64;
    cfg.gpu_threads = 2;
    cfg.fusion_limit = 4000;
    SimOptions opt = fastOptions(1500);
    ServerSimResult r =
        simulateServer(hw::serverSpec(ServerType::T7), m, cfg, opt);
    EXPECT_EQ(r.completed, 240u);
    EXPECT_GT(r.cpu_util, 0.0);
    EXPECT_GT(r.gpu_util, 0.0);
    EXPECT_GT(r.mean_load_ms, 0.0);
}

TEST(GpuSdPipeline, TransfersPooledVectorsNotIndices)
{
    // The S-D pipeline ships pooled embedding outputs; for a pooled
    // model the dense-graph transfer is smaller than the full-model
    // index transfer at equal batch.
    hw::CostModel cost(hw::serverSpec(ServerType::T7));
    model::Model m = model::buildModel(ModelId::DlrmRmc3);
    model::Graph dense = model::denseSubgraph(m.graph);
    hw::GpuExecContext cx;
    double dense_bytes = cost.gpuInputBytes(dense, 256, cx);
    double full_bytes = cost.gpuInputBytes(m.graph, 256, cx);
    EXPECT_LT(dense_bytes, full_bytes);
}

/** Fusion capacity monotonicity across the three Fig 7 models. */
class FusionEveryModel : public ::testing::TestWithParam<ModelId>
{
};

TEST_P(FusionEveryModel, FusionNeverHurtsCapacity)
{
    model::Model m = model::buildModel(GetParam(), Variant::Small);
    double plain = capacity(m, gpuConfig(1, 0));
    double fused = capacity(m, gpuConfig(1, 4000));
    EXPECT_GE(fused, plain * 0.95) << m.name;
}

INSTANTIATE_TEST_SUITE_P(Fig7Models, FusionEveryModel,
                         ::testing::Values(ModelId::DlrmRmc3,
                                           ModelId::MtWnd, ModelId::Din));

}  // namespace
}  // namespace hercules::sim
