/**
 * @file
 * Tests of the online cluster manager: interval bookkeeping, diurnal
 * tracking, over-provision rate estimation, and the model-evolution
 * scenario generator of Fig 16.
 */
#include <gtest/gtest.h>

#include "cluster/cluster_manager.h"
#include "cluster/evolution.h"

namespace hercules::cluster {
namespace {

using hw::ServerType;
using model::ModelId;

ProvisionProblem
twoModelProblem()
{
    ProvisionProblem p({ServerType::T2, ServerType::T3}, {100, 15},
                       {ModelId::DlrmRmc1, ModelId::DlrmRmc2});
    p.setPerf(0, 0, {true, 2500.0, 160.0});
    p.setPerf(0, 1, {true, 900.0, 160.0});
    p.setPerf(1, 0, {true, 4400.0, 165.0});
    p.setPerf(1, 1, {true, 1850.0, 165.0});
    return p;
}

std::vector<ClusterWorkload>
twoWorkloads(double peak1, double peak2)
{
    ClusterWorkload w1, w2;
    w1.model = ModelId::DlrmRmc1;
    w1.load.peak_qps = peak1;
    w1.load.seed = 1;
    w2.model = ModelId::DlrmRmc2;
    w2.load.peak_qps = peak2;
    w2.load.seed = 2;
    return {w1, w2};
}

TEST(OverprovisionRate, PositiveAndBounded)
{
    workload::DiurnalConfig cfg;
    workload::DiurnalLoad load(cfg);
    double r = estimateOverprovisionRate(load, 0.5);
    EXPECT_GT(r, 0.0);
    EXPECT_LT(r, 0.5);
}

TEST(OverprovisionRate, GrowsWithInterval)
{
    workload::DiurnalLoad load(workload::DiurnalConfig{});
    EXPECT_LE(estimateOverprovisionRate(load, 0.25),
              estimateOverprovisionRate(load, 2.0) + 1e-9);
}

TEST(RunCluster, IntervalCountMatchesHorizon)
{
    ProvisionProblem p = twoModelProblem();
    GreedyProvisioner policy;
    ClusterManagerOptions opt;
    opt.horizon_hours = 24.0;
    opt.interval_hours = 0.5;
    ClusterRunResult r =
        runCluster(p, twoWorkloads(50'000, 20'000), policy, opt);
    EXPECT_EQ(r.intervals.size(), 48u);
}

TEST(RunCluster, AllIntervalsSatisfied)
{
    ProvisionProblem p = twoModelProblem();
    HerculesProvisioner policy;
    ClusterManagerOptions opt;
    ClusterRunResult r =
        runCluster(p, twoWorkloads(50'000, 20'000), policy, opt);
    EXPECT_EQ(r.unsatisfied_intervals, 0);
    for (const auto& iv : r.intervals)
        EXPECT_TRUE(iv.satisfied) << "t=" << iv.t_hours;
}

TEST(RunCluster, CapacityTracksDiurnalLoad)
{
    ProvisionProblem p = twoModelProblem();
    HerculesProvisioner policy;
    ClusterManagerOptions opt;
    ClusterRunResult r =
        runCluster(p, twoWorkloads(50'000, 20'000), policy, opt);
    // Peak provisioning well above the average (diurnal swing > 50%).
    EXPECT_GT(r.peak_servers, r.avg_servers * 1.2);
    EXPECT_GT(r.peak_power_w, r.avg_power_w * 1.2);
    // The busiest interval should be near the configured peak hour.
    double peak_t = 0.0;
    double peak_p = 0.0;
    for (const auto& iv : r.intervals) {
        if (iv.provisioned_power_w > peak_p) {
            peak_p = iv.provisioned_power_w;
            peak_t = iv.t_hours;
        }
    }
    EXPECT_NEAR(peak_t, 20.0, 3.0);
}

TEST(RunCluster, HerculesCheaperThanGreedyOverDay)
{
    ProvisionProblem p = twoModelProblem();
    HerculesProvisioner hercules;
    GreedyProvisioner greedy;
    ClusterManagerOptions opt;
    auto workloads = twoWorkloads(60'000, 25'000);
    ClusterRunResult rh = runCluster(p, workloads, hercules, opt);
    ClusterRunResult rg = runCluster(p, workloads, greedy, opt);
    EXPECT_LE(rh.avg_power_w, rg.avg_power_w + 1e-6);
    EXPECT_LE(rh.peak_power_w, rg.peak_power_w + 1e-6);
}

TEST(RunCluster, ExplicitRateOverridesEstimate)
{
    ProvisionProblem p = twoModelProblem();
    HerculesProvisioner policy;
    ClusterManagerOptions opt;
    opt.overprovision_rate = 0.30;
    ClusterRunResult big =
        runCluster(p, twoWorkloads(50'000, 20'000), policy, opt);
    opt.overprovision_rate = 0.0;
    ClusterRunResult small =
        runCluster(p, twoWorkloads(50'000, 20'000), policy, opt);
    EXPECT_GT(big.avg_power_w, small.avg_power_w);
}

TEST(RunClusterDeath, WorkloadCountMismatch)
{
    ProvisionProblem p = twoModelProblem();
    GreedyProvisioner policy;
    ClusterManagerOptions opt;
    EXPECT_DEATH(
        runCluster(p, {twoWorkloads(1000, 1000)[0]}, policy, opt),
        "workloads");
}

TEST(Evolution, DefaultServicesMatchPaper)
{
    auto services = defaultEvolutionServices();
    ASSERT_EQ(services.size(), 3u);
    EXPECT_EQ(services[0].legacy, ModelId::DlrmRmc1);
    EXPECT_EQ(services[0].successor, ModelId::Din);
    EXPECT_EQ(services[1].legacy, ModelId::DlrmRmc2);
    EXPECT_EQ(services[1].successor, ModelId::Dien);
    EXPECT_EQ(services[2].legacy, ModelId::DlrmRmc3);
    EXPECT_EQ(services[2].successor, ModelId::MtWnd);
    for (const auto& s : services)
        EXPECT_DOUBLE_EQ(s.load.peak_qps, 50'000.0);
}

TEST(Evolution, StageZeroOnlyLegacy)
{
    auto w = evolutionWorkloads(defaultEvolutionServices(), 0.0);
    ASSERT_EQ(w.size(), 3u);
    EXPECT_EQ(w[0].model, ModelId::DlrmRmc1);
    EXPECT_EQ(w[1].model, ModelId::DlrmRmc2);
    EXPECT_EQ(w[2].model, ModelId::DlrmRmc3);
}

TEST(Evolution, StageOneOnlySuccessors)
{
    auto w = evolutionWorkloads(defaultEvolutionServices(), 1.0);
    ASSERT_EQ(w.size(), 3u);
    EXPECT_EQ(w[0].model, ModelId::Din);
    EXPECT_EQ(w[1].model, ModelId::Dien);
    EXPECT_EQ(w[2].model, ModelId::MtWnd);
}

TEST(Evolution, MidStageSplitsTraffic)
{
    auto w = evolutionWorkloads(defaultEvolutionServices(), 0.2);
    ASSERT_EQ(w.size(), 6u);
    // 80/20 split per service, conserving total peak traffic.
    EXPECT_NEAR(w[0].load.peak_qps, 40'000.0, 1e-6);
    EXPECT_NEAR(w[1].load.peak_qps, 10'000.0, 1e-6);
    double total = 0.0;
    for (const auto& x : w)
        total += x.load.peak_qps;
    EXPECT_NEAR(total, 150'000.0, 1e-6);
}

TEST(Evolution, ModelsListMatchesWorkloads)
{
    auto services = defaultEvolutionServices();
    for (double s : {0.0, 0.4, 1.0}) {
        auto w = evolutionWorkloads(services, s);
        auto m = evolutionModels(services, s);
        ASSERT_EQ(w.size(), m.size());
        for (size_t i = 0; i < w.size(); ++i)
            EXPECT_EQ(w[i].model, m[i]);
    }
}

TEST(EvolutionDeath, StageOutOfRange)
{
    EXPECT_DEATH(evolutionWorkloads(defaultEvolutionServices(), 1.5),
                 "stage");
}

}  // namespace
}  // namespace hercules::cluster
