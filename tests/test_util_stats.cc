/**
 * @file
 * Unit tests for the statistics toolkit: running moments, exact
 * percentiles and histograms.
 */
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/stats.h"

namespace hercules {
namespace {

TEST(OnlineStats, EmptyIsZero)
{
    OnlineStats s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
    EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(OnlineStats, SingleValue)
{
    OnlineStats s;
    s.add(5.0);
    EXPECT_EQ(s.count(), 1u);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
    EXPECT_DOUBLE_EQ(s.min(), 5.0);
    EXPECT_DOUBLE_EQ(s.max(), 5.0);
}

TEST(OnlineStats, KnownMoments)
{
    OnlineStats s;
    for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.add(x);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    // Sample variance of the classic example set: 32/7.
    EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
    EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(OnlineStats, NumericalStabilityLargeOffset)
{
    OnlineStats s;
    const double offset = 1e12;
    for (int i = 0; i < 1000; ++i)
        s.add(offset + (i % 2));
    EXPECT_NEAR(s.mean(), offset + 0.5, 1e-3);
    EXPECT_NEAR(s.variance(), 0.25, 1e-2);
}

TEST(OnlineStats, ResetClears)
{
    OnlineStats s;
    s.add(1.0);
    s.add(2.0);
    s.reset();
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
}

TEST(PercentileTracker, EmptyReturnsZero)
{
    PercentileTracker t;
    EXPECT_DOUBLE_EQ(t.percentile(50), 0.0);
    EXPECT_DOUBLE_EQ(t.mean(), 0.0);
    EXPECT_DOUBLE_EQ(t.max(), 0.0);
}

TEST(PercentileTracker, SingleSampleAllPercentiles)
{
    PercentileTracker t;
    t.add(42.0);
    EXPECT_DOUBLE_EQ(t.percentile(0), 42.0);
    EXPECT_DOUBLE_EQ(t.p50(), 42.0);
    EXPECT_DOUBLE_EQ(t.p99(), 42.0);
    EXPECT_DOUBLE_EQ(t.percentile(100), 42.0);
}

TEST(PercentileTracker, NearestRankDefinition)
{
    PercentileTracker t;
    for (int i = 1; i <= 100; ++i)
        t.add(static_cast<double>(i));
    // Nearest rank: p95 of 1..100 is the 95th value.
    EXPECT_DOUBLE_EQ(t.p95(), 95.0);
    EXPECT_DOUBLE_EQ(t.p50(), 50.0);
    EXPECT_DOUBLE_EQ(t.p99(), 99.0);
    EXPECT_DOUBLE_EQ(t.max(), 100.0);
}

TEST(PercentileTracker, UnsortedInsertOrder)
{
    PercentileTracker t;
    t.addAll({9.0, 1.0, 5.0, 3.0, 7.0});
    EXPECT_DOUBLE_EQ(t.p50(), 5.0);
    EXPECT_DOUBLE_EQ(t.max(), 9.0);
    EXPECT_NEAR(t.mean(), 5.0, 1e-12);
}

TEST(PercentileTracker, InterleavedAddAndQuery)
{
    PercentileTracker t;
    t.add(10.0);
    EXPECT_DOUBLE_EQ(t.p50(), 10.0);
    t.add(20.0);
    t.add(0.0);
    EXPECT_DOUBLE_EQ(t.p50(), 10.0);
    EXPECT_DOUBLE_EQ(t.max(), 20.0);
}

TEST(PercentileTracker, ResetClears)
{
    PercentileTracker t;
    t.add(1.0);
    t.reset();
    EXPECT_EQ(t.count(), 0u);
    EXPECT_DOUBLE_EQ(t.p95(), 0.0);
}

TEST(PercentileTrackerDeath, OutOfRangePercentilePanics)
{
    PercentileTracker t;
    t.add(1.0);
    EXPECT_DEATH(t.percentile(101.0), "percentile");
}

TEST(Histogram, BinEdgesAndCounts)
{
    Histogram h(0.0, 10.0, 5);
    EXPECT_EQ(h.bins(), 5u);
    EXPECT_DOUBLE_EQ(h.binLo(0), 0.0);
    EXPECT_DOUBLE_EQ(h.binHi(0), 2.0);
    EXPECT_DOUBLE_EQ(h.binLo(4), 8.0);
    h.add(1.0);
    h.add(1.5);
    h.add(9.0);
    EXPECT_EQ(h.binCount(0), 2u);
    EXPECT_EQ(h.binCount(4), 1u);
    EXPECT_EQ(h.total(), 3u);
}

TEST(Histogram, OutOfRangeClamped)
{
    Histogram h(0.0, 10.0, 5);
    h.add(-100.0);
    h.add(1e9);
    EXPECT_EQ(h.binCount(0), 1u);
    EXPECT_EQ(h.binCount(4), 1u);
}

TEST(Histogram, Fractions)
{
    Histogram h(0.0, 4.0, 4);
    h.add(0.5);
    h.add(1.5);
    h.add(1.7);
    h.add(3.5);
    EXPECT_DOUBLE_EQ(h.fraction(0), 0.25);
    EXPECT_DOUBLE_EQ(h.fraction(1), 0.50);
    EXPECT_DOUBLE_EQ(h.fraction(3), 0.25);
}

TEST(Histogram, FractionOfEmptyIsZero)
{
    Histogram h(0.0, 1.0, 2);
    EXPECT_DOUBLE_EQ(h.fraction(0), 0.0);
}

/** Percentiles must be monotone in p for any sample set. */
class PercentileMonotoneTest : public ::testing::TestWithParam<int>
{
};

TEST_P(PercentileMonotoneTest, MonotoneInP)
{
    PercentileTracker t;
    // Deterministic pseudo-random samples.
    uint64_t x = static_cast<uint64_t>(GetParam()) * 2654435761u + 1;
    for (int i = 0; i < 257; ++i) {
        x = x * 6364136223846793005ull + 1442695040888963407ull;
        t.add(static_cast<double>(x >> 40));
    }
    double prev = -1.0;
    for (double p : {0.0, 10.0, 25.0, 50.0, 75.0, 90.0, 95.0, 99.0,
                     100.0}) {
        double v = t.percentile(p);
        EXPECT_GE(v, prev) << "p=" << p;
        prev = v;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PercentileMonotoneTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

}  // namespace
}  // namespace hercules
