/**
 * @file
 * Tests of the cycle-approximate NMP simulator and its pre-built
 * latency/energy LUT — the substitute for the paper's RecNMP
 * cycle-level simulation methodology.
 */
#include <gtest/gtest.h>

#include "hw/nmp.h"

namespace hercules::hw {
namespace {

TEST(NmpSimulator, RankParallelismSpeedsUpSls)
{
    NmpSimulator x2(nmpX(2));
    NmpSimulator x4(nmpX(4));
    NmpSimulator x8(nmpX(8));
    NmpResult r2 = x2.simulateSls(256, 80, 32);
    NmpResult r4 = x4.simulateSls(256, 80, 32);
    NmpResult r8 = x8.simulateSls(256, 80, 32);
    EXPECT_GT(r2.latency_us, r4.latency_us);
    EXPECT_GT(r4.latency_us, r8.latency_us);
    // Rank scaling should be roughly linear.
    EXPECT_NEAR(r2.latency_us / r4.latency_us, 2.0, 0.3);
}

TEST(NmpSimulator, LatencyScalesWithWork)
{
    NmpSimulator sim(nmpX(2));
    double base = sim.simulateSls(64, 80, 32).latency_us;
    EXPECT_GT(sim.simulateSls(128, 80, 32).latency_us, base);
    EXPECT_GT(sim.simulateSls(64, 160, 32).latency_us, base);
    EXPECT_GT(sim.simulateSls(64, 80, 64).latency_us, base);
}

TEST(NmpSimulator, EnergyIndependentOfRanks)
{
    // The same gathers happen regardless of how they are spread.
    NmpResult r2 = NmpSimulator(nmpX(2)).simulateSls(128, 40, 32);
    NmpResult r8 = NmpSimulator(nmpX(8)).simulateSls(128, 40, 32);
    EXPECT_DOUBLE_EQ(r2.energy_uj, r8.energy_uj);
    EXPECT_GT(r2.energy_uj, 0.0);
}

TEST(NmpSimulator, EnergyLinearInAccesses)
{
    NmpSimulator sim(nmpX(4));
    double e1 = sim.simulateSls(100, 50, 32).energy_uj;
    double e2 = sim.simulateSls(200, 50, 32).energy_uj;
    EXPECT_NEAR(e2 / e1, 2.0, 1e-9);
}

TEST(NmpSimulatorDeath, RequiresNmpMemory)
{
    EXPECT_DEATH(NmpSimulator{ddr4T2()}, "not NMP");
}

TEST(NmpSimulatorDeath, RejectsBadShape)
{
    NmpSimulator sim(nmpX(2));
    EXPECT_DEATH(sim.simulateSls(0, 80, 32), "bad SLS shape");
    EXPECT_DEATH(sim.simulateSls(64, 0, 32), "bad SLS shape");
}

TEST(NmpLut, MatchesSimulatorOnGridPoints)
{
    MemSpec mem = nmpX(2);
    NmpSimulator sim(mem);
    NmpLut lut(mem, 32);
    // (64, 80) is a grid point: exact agreement expected.
    NmpResult direct = sim.simulateSls(64, 80, 32);
    NmpResult tabled = lut.lookup(64, 80);
    EXPECT_NEAR(tabled.latency_us, direct.latency_us, 1e-9);
    EXPECT_NEAR(tabled.energy_uj, direct.energy_uj, 1e-9);
}

TEST(NmpLut, InterpolatesBetweenGridPoints)
{
    MemSpec mem = nmpX(4);
    NmpSimulator sim(mem);
    NmpLut lut(mem, 32);
    // Off-grid: interpolation within a few percent of the cycle model.
    NmpResult direct = sim.simulateSls(100, 60, 32);
    NmpResult tabled = lut.lookup(100, 60);
    EXPECT_NEAR(tabled.latency_us, direct.latency_us,
                direct.latency_us * 0.20);
}

TEST(NmpLut, ClampsBeyondGrid)
{
    NmpLut lut(nmpX(2), 32);
    NmpResult max_grid = lut.lookup(4096, 1000);
    NmpResult beyond = lut.lookup(100000, 5000);
    EXPECT_DOUBLE_EQ(beyond.latency_us, max_grid.latency_us);
}

TEST(NmpLut, MonotoneInBatch)
{
    NmpLut lut(nmpX(2), 32);
    double prev = 0.0;
    for (int b : {1, 8, 64, 256, 1024, 4096}) {
        double lat = lut.lookup(b, 80).latency_us;
        EXPECT_GE(lat, prev) << "batch " << b;
        prev = lat;
    }
}

TEST(NmpLut, MonotoneInPooling)
{
    NmpLut lut(nmpX(8), 64);
    double prev = 0.0;
    for (double p : {1.0, 5.0, 20.0, 80.0, 320.0, 1000.0}) {
        double lat = lut.lookup(128, p).latency_us;
        EXPECT_GE(lat, prev) << "pooling " << p;
        prev = lat;
    }
}

TEST(NmpLut, EmbDimRecorded)
{
    NmpLut lut(nmpX(2), 64);
    EXPECT_EQ(lut.embDim(), 64);
}

/**
 * In-DIMM gather beats the host DDR gather path for realistic SLS
 * shapes — the premise of the RecNMP-style acceleration.
 */
class NmpVsHostTest
    : public ::testing::TestWithParam<std::tuple<int, double>>
{
};

TEST_P(NmpVsHostTest, NmpFasterThanHostShare)
{
    auto [batch, pooling] = GetParam();
    MemSpec mem = nmpX(8);
    NmpSimulator sim(mem);
    double nmp_us = sim.simulateSls(batch, pooling, 32).latency_us;
    // Host path at a generous 30 GB/s effective gather bandwidth.
    double bytes = static_cast<double>(batch) * pooling * 32 * 4;
    double host_us = bytes / (30e9) * 1e6;
    EXPECT_LT(nmp_us, host_us);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, NmpVsHostTest,
    ::testing::Combine(::testing::Values(64, 256, 1024),
                       ::testing::Values(20.0, 80.0, 160.0)));

}  // namespace
}  // namespace hercules::hw
