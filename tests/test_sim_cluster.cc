/**
 * @file
 * Tests of the steppable ServerInstance extraction and the sharded
 * ClusterSim layer: pinned bit-identity of simulateServer() against
 * the pre-extraction engine, steppable == one-shot equivalence, the
 * single-shard == single-server reduction, router policies, shard
 * drain semantics and interval statistics.
 */
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "sim/cluster_sim.h"
#include "sim/server_instance.h"
#include "sim/server_sim.h"
#include "workload/trace_gen.h"

namespace hercules::sim {
namespace {

using hw::ServerType;
using model::ModelId;
using model::Variant;
using sched::Mapping;
using sched::SchedulingConfig;

SchedulingConfig
cpuConfig(int threads, int cores, int batch)
{
    SchedulingConfig cfg;
    cfg.mapping = Mapping::CpuModelBased;
    cfg.cpu_threads = threads;
    cfg.cores_per_thread = cores;
    cfg.batch = batch;
    return cfg;
}

SimOptions
simOptions(double qps, int num = 300, int warmup = 60, uint64_t seed = 42)
{
    SimOptions opt;
    opt.offered_qps = qps;
    opt.num_queries = num;
    opt.warmup_queries = warmup;
    opt.seed = seed;
    return opt;
}

/*
 * Golden pins: the exact doubles the seed (pre-extraction) engine
 * produced for these configurations, captured before the Engine ->
 * ServerInstance refactor. simulateServer() must stay bit-identical.
 */
TEST(GoldenRegression, CpuModelBasedT2)
{
    model::Model m = model::buildModel(ModelId::DlrmRmc1);
    ServerSimResult r =
        simulateServer(hw::serverSpec(ServerType::T2), m,
                       cpuConfig(10, 2, 128), simOptions(900));
    EXPECT_DOUBLE_EQ(r.p50_ms, 1.8006394491996285);
    EXPECT_DOUBLE_EQ(r.p95_ms, 6.1824114217503006);
    EXPECT_DOUBLE_EQ(r.p99_ms, 7.3477392831366171);
    EXPECT_DOUBLE_EQ(r.mean_ms, 2.4701726061586564);
    EXPECT_DOUBLE_EQ(r.max_ms, 9.6526226490849805);
    EXPECT_DOUBLE_EQ(r.achieved_qps, 907.57325543601917);
    EXPECT_DOUBLE_EQ(r.avg_power_w, 88.438990743100845);
    EXPECT_DOUBLE_EQ(r.peak_power_w, 96.075934389152195);
    EXPECT_DOUBLE_EQ(r.cpu_util, 0.22867826390913198);
    EXPECT_DOUBLE_EQ(r.mem_bw_util, 0.23439906088237514);
    EXPECT_DOUBLE_EQ(r.mean_exec_ms, 2.5469211491318027);
    EXPECT_DOUBLE_EQ(r.duration_s, 0.2644414636091259);
    EXPECT_EQ(r.completed, 240u);
}

TEST(GoldenRegression, CpuSdPipelineT3)
{
    model::Model m = model::buildModel(ModelId::DlrmRmc1);
    SchedulingConfig cfg;
    cfg.mapping = Mapping::CpuSdPipeline;
    cfg.cpu_threads = 6;
    cfg.cores_per_thread = 2;
    cfg.dense_threads = 4;
    cfg.batch = 128;
    ServerSimResult r = simulateServer(hw::serverSpec(ServerType::T3), m,
                                       cfg, simOptions(800));
    EXPECT_DOUBLE_EQ(r.p50_ms, 0.89373123135638721);
    EXPECT_DOUBLE_EQ(r.p95_ms, 2.3668329380241993);
    EXPECT_DOUBLE_EQ(r.p99_ms, 2.6818051606940507);
    EXPECT_DOUBLE_EQ(r.achieved_qps, 819.75506953876788);
    EXPECT_DOUBLE_EQ(r.avg_power_w, 97.681948174842432);
    EXPECT_DOUBLE_EQ(r.nmp_util, 0.53207771947859461);
}

TEST(GoldenRegression, GpuModelBasedT7)
{
    model::Model m = model::buildModel(ModelId::DlrmRmc3, Variant::Small);
    SchedulingConfig cfg;
    cfg.mapping = Mapping::GpuModelBased;
    cfg.gpu_threads = 2;
    cfg.fusion_limit = 2000;
    cfg.cpu_threads = 2;
    ServerSimResult r =
        simulateServer(hw::serverSpec(ServerType::T7), m, cfg,
                       simOptions(2000, 300, 60, 7));
    EXPECT_DOUBLE_EQ(r.p50_ms, 1.3190262719445685);
    EXPECT_DOUBLE_EQ(r.p99_ms, 3.2457913951901842);
    EXPECT_DOUBLE_EQ(r.achieved_qps, 1967.4381146015048);
    EXPECT_DOUBLE_EQ(r.avg_power_w, 277.72357912608658);
    EXPECT_DOUBLE_EQ(r.gpu_util, 0.63988257389371817);
    EXPECT_DOUBLE_EQ(r.pcie_util, 0.71755661580941899);
    EXPECT_DOUBLE_EQ(r.mean_load_ms, 0.58350784582252135);
}

TEST(GoldenRegression, GpuSdPipelineT7)
{
    model::Model m = model::buildModel(ModelId::DlrmRmc1);
    SchedulingConfig cfg;
    cfg.mapping = Mapping::GpuSdPipeline;
    cfg.cpu_threads = 8;
    cfg.cores_per_thread = 2;
    cfg.batch = 128;
    cfg.gpu_threads = 2;
    cfg.fusion_limit = 2000;
    ServerSimResult r =
        simulateServer(hw::serverSpec(ServerType::T7), m, cfg,
                       simOptions(1000, 300, 60, 11));
    EXPECT_DOUBLE_EQ(r.p50_ms, 2.0196397176448224);
    EXPECT_DOUBLE_EQ(r.p99_ms, 6.8220966668513512);
    EXPECT_DOUBLE_EQ(r.achieved_qps, 979.77417776359505);
    EXPECT_DOUBLE_EQ(r.avg_power_w, 175.665910699043);
}

TEST(GoldenRegression, SaturationAndAbortPaths)
{
    model::Model m = model::buildModel(ModelId::DlrmRmc1);
    SchedulingConfig cfg = cpuConfig(4, 1, 64);
    SimOptions sat = simOptions(1.0, 250, 50);
    sat.saturate = true;
    ServerSimResult rs =
        simulateServer(hw::serverSpec(ServerType::T2), m, cfg, sat);
    EXPECT_DOUBLE_EQ(rs.p50_ms, 82.66321107067813);
    EXPECT_DOUBLE_EQ(rs.achieved_qps, 1500.6867515350825);
    EXPECT_EQ(rs.completed, 200u);

    SimOptions ab = simOptions(5000.0, 250, 50);
    ab.abort_tail_ms = 60.0;
    ServerSimResult ra =
        simulateServer(hw::serverSpec(ServerType::T2), m, cfg, ab);
    EXPECT_TRUE(ra.aborted);
    EXPECT_DOUBLE_EQ(ra.p50_ms, 30.041697998368313);
    EXPECT_DOUBLE_EQ(ra.achieved_qps, 1506.9661807677887);
    EXPECT_EQ(ra.completed, 130u);
}

/*
 * The steppable contract: interleaving inject/advanceTo (the way a
 * router drives a shard) produces exactly the one-shot results.
 */
TEST(ServerInstance, SteppableMatchesOneShot)
{
    model::Model m = model::buildModel(ModelId::DlrmRmc1);
    SchedulingConfig cfg = cpuConfig(10, 2, 128);
    SimOptions opt = simOptions(900);
    PreparedWorkload w = prepare(hw::serverSpec(ServerType::T2), m, cfg);

    ServerSimResult one_shot = simulateServer(w, opt);

    workload::QueryGenerator gen(opt.offered_qps, opt.seed, opt.sizes,
                                 opt.pooling);
    ServerInstance inst(w, opt);
    for (int i = 0; i < opt.num_queries; ++i) {
        workload::Query q = gen.next();
        inst.advanceTo(q.arrival_s);  // router-style interleaving
        inst.inject(q);
    }
    inst.drain();
    ServerSimResult stepped = inst.finalize();

    EXPECT_DOUBLE_EQ(stepped.p50_ms, one_shot.p50_ms);
    EXPECT_DOUBLE_EQ(stepped.p95_ms, one_shot.p95_ms);
    EXPECT_DOUBLE_EQ(stepped.p99_ms, one_shot.p99_ms);
    EXPECT_DOUBLE_EQ(stepped.mean_ms, one_shot.mean_ms);
    EXPECT_DOUBLE_EQ(stepped.max_ms, one_shot.max_ms);
    EXPECT_DOUBLE_EQ(stepped.achieved_qps, one_shot.achieved_qps);
    EXPECT_DOUBLE_EQ(stepped.avg_power_w, one_shot.avg_power_w);
    EXPECT_DOUBLE_EQ(stepped.peak_power_w, one_shot.peak_power_w);
    EXPECT_DOUBLE_EQ(stepped.cpu_util, one_shot.cpu_util);
    EXPECT_DOUBLE_EQ(stepped.mem_bw_util, one_shot.mem_bw_util);
    EXPECT_EQ(stepped.completed, one_shot.completed);
}

TEST(ServerInstance, BookkeepingAndCompletions)
{
    model::Model m = model::buildModel(ModelId::DlrmRmc1);
    PreparedWorkload w = prepare(hw::serverSpec(ServerType::T2), m,
                                 cpuConfig(4, 2, 128));
    SimOptions opt = simOptions(500, 100, 0);
    opt.record_completions = true;
    ServerInstance inst(w, opt);
    workload::QueryGenerator gen(500, 3);
    for (int i = 0; i < 100; ++i)
        inst.inject(gen.next());
    EXPECT_EQ(inst.injected(), 100u);
    EXPECT_EQ(inst.outstanding(), 100u);
    inst.drain();
    EXPECT_EQ(inst.outstanding(), 0u);
    EXPECT_EQ(inst.completedAll(), 100u);
    ASSERT_EQ(inst.completions().size(), 100u);
    double prev_finish = 0.0;
    for (const auto& c : inst.completions()) {
        EXPECT_GE(c.finish_s, c.arrival_s);
        EXPECT_GE(c.finish_s, prev_finish);  // retired in finish order
        prev_finish = c.finish_s;
    }
}

/*
 * Acceptance: a ClusterSim with one shard behind a round-robin router
 * reproduces the single-server latency distribution for the same
 * arrival trace, bit for bit.
 */
TEST(ClusterSim, OneShardRoundRobinMatchesSingleServer)
{
    model::Model m = model::buildModel(ModelId::DlrmRmc1);
    PreparedWorkload w = prepare(hw::serverSpec(ServerType::T2), m,
                                 cpuConfig(10, 2, 128));

    workload::DiurnalConfig dc;
    dc.peak_qps = 600.0;
    dc.trough_frac = 0.5;
    dc.noise_frac = 0.0;
    workload::DiurnalLoad load(dc);
    workload::TraceOptions topt;
    topt.horizon_hours = 0.004;  // ~14 simulated seconds
    topt.bucket_seconds = 2.0;
    topt.seed = 9;
    std::vector<workload::Query> trace =
        workload::TraceGenerator(load, topt).generate();
    ASSERT_GT(trace.size(), 1000u);

    SimOptions opt;
    opt.warmup_queries = 0;
    opt.record_completions = true;
    ServerInstance solo(w, opt);
    for (const workload::Query& q : trace)
        solo.inject(q);
    solo.drain();
    ServerSimResult alone = solo.finalize();

    ClusterSim::Options copt;
    copt.router = RouterPolicy::RoundRobin;
    ClusterSim cluster(copt);
    cluster.addShard(w, 1000.0);
    ClusterSimResult r = cluster.run(trace, 2.0);

    EXPECT_EQ(r.injected, trace.size());
    EXPECT_EQ(r.completed, static_cast<size_t>(alone.completed));
    EXPECT_DOUBLE_EQ(r.p50_ms, alone.p50_ms);
    EXPECT_DOUBLE_EQ(r.p95_ms, alone.p95_ms);
    EXPECT_DOUBLE_EQ(r.p99_ms, alone.p99_ms);
    EXPECT_DOUBLE_EQ(r.mean_ms, alone.mean_ms);
    EXPECT_DOUBLE_EQ(r.max_ms, alone.max_ms);
}

std::vector<workload::Query>
uniformTrace(size_t n, double gap_s, int size = 40)
{
    std::vector<workload::Query> trace(n);
    for (size_t i = 0; i < n; ++i) {
        trace[i].id = i;
        trace[i].arrival_s = static_cast<double>(i + 1) * gap_s;
        trace[i].size = size;
        trace[i].pooling_scale = 1.0;
    }
    return trace;
}

TEST(Router, RoundRobinCyclesEvenly)
{
    model::Model m = model::buildModel(ModelId::DlrmRmc1);
    PreparedWorkload w = prepare(hw::serverSpec(ServerType::T2), m,
                                 cpuConfig(4, 1, 64));
    ClusterSim::Options copt;
    copt.router = RouterPolicy::RoundRobin;
    ClusterSim cluster(copt);
    for (int i = 0; i < 3; ++i)
        cluster.addShard(w, 1000.0);
    for (const auto& q : uniformTrace(30, 0.01))
        cluster.route(q);
    cluster.drainAll();
    EXPECT_EQ(cluster.injectedPerShard(),
              (std::vector<size_t>{10, 10, 10}));
}

TEST(Router, LeastOutstandingAvoidsBusyShard)
{
    model::Model m = model::buildModel(ModelId::DlrmRmc1);
    PreparedWorkload w = prepare(hw::serverSpec(ServerType::T2), m,
                                 cpuConfig(1, 1, 64));
    ClusterSim::Options copt;
    copt.router = RouterPolicy::LeastOutstanding;
    ClusterSim cluster(copt);
    cluster.addShard(w, 1000.0);
    cluster.addShard(w, 1000.0);

    workload::Query big;
    big.arrival_s = 0.001;
    big.size = 1000;  // long-running on a single thread
    big.pooling_scale = 1.0;
    EXPECT_EQ(cluster.route(big), 0);  // ties break to the lowest id
    workload::Query small;
    small.arrival_s = 0.0011;
    small.size = 10;
    small.pooling_scale = 1.0;
    EXPECT_EQ(cluster.route(small), 1);  // shard 0 still busy
    cluster.drainAll();
}

TEST(Router, HerculesWeightedFollowsTupleQps)
{
    model::Model m = model::buildModel(ModelId::DlrmRmc1);
    PreparedWorkload w = prepare(hw::serverSpec(ServerType::T2), m,
                                 cpuConfig(4, 1, 64));
    ClusterSim::Options copt;
    copt.router = RouterPolicy::HerculesWeighted;
    ClusterSim cluster(copt);
    cluster.addShard(w, 3000.0);
    cluster.addShard(w, 1000.0);
    for (const auto& q : uniformTrace(400, 0.002))
        cluster.route(q);
    cluster.drainAll();
    const auto& per_shard = cluster.injectedPerShard();
    // Smooth WRR: long-run share tracks weight / total (75% / 25%).
    EXPECT_NEAR(static_cast<double>(per_shard[0]), 300.0, 10.0);
    EXPECT_NEAR(static_cast<double>(per_shard[1]), 100.0, 10.0);
}

TEST(Router, PowerOfTwoDeterministicPerSeed)
{
    model::Model m = model::buildModel(ModelId::DlrmRmc1);
    PreparedWorkload w = prepare(hw::serverSpec(ServerType::T2), m,
                                 cpuConfig(4, 1, 64));
    auto run = [&](uint64_t seed) {
        ClusterSim::Options copt;
        copt.router = RouterPolicy::PowerOfTwo;
        copt.router_seed = seed;
        ClusterSim cluster(copt);
        for (int i = 0; i < 4; ++i)
            cluster.addShard(w, 1000.0);
        for (const auto& q : uniformTrace(200, 0.005))
            cluster.route(q);
        cluster.drainAll();
        return cluster.injectedPerShard();
    };
    auto a = run(21);
    auto b = run(21);
    EXPECT_EQ(a, b);
    size_t used = 0;
    for (size_t n : a)
        if (n > 0)
            ++used;
    EXPECT_GE(used, 3u);  // spreads load across the fleet
}

TEST(ClusterSim, ReleasedShardDrainsBeforeGoingDark)
{
    model::Model m = model::buildModel(ModelId::DlrmRmc1);
    PreparedWorkload w = prepare(hw::serverSpec(ServerType::T2), m,
                                 cpuConfig(2, 1, 64));
    ClusterSim::Options copt;
    copt.router = RouterPolicy::RoundRobin;
    ClusterSim cluster(copt);
    cluster.addShard(w, 1000.0);
    cluster.addShard(w, 1000.0);

    for (const auto& q : uniformTrace(20, 0.001, 200))
        cluster.route(q);
    ASSERT_GT(cluster.outstanding(0), 0u);

    cluster.setActive(0, false, 0.03);
    EXPECT_FALSE(cluster.isActive(0));
    EXPECT_FALSE(cluster.drained(0));  // still draining in-flight work

    // New arrivals only reach the surviving shard.
    size_t before = cluster.injectedPerShard()[0];
    workload::Query late;
    late.arrival_s = 0.031;
    late.size = 10;
    late.pooling_scale = 1.0;
    EXPECT_EQ(cluster.route(late), 1);
    EXPECT_EQ(cluster.injectedPerShard()[0], before);

    cluster.drainAll();
    EXPECT_TRUE(cluster.drained(0));  // in-flight queries all retired
    EXPECT_EQ(cluster.outstanding(0), 0u);
}

/*
 * The power side of drain semantics: a released shard keeps burning
 * power while its in-flight queue drains, and only once drained() does
 * it go dark. A harvest window entirely after the drain charges it
 * nothing.
 */
TEST(ClusterSim, DrainingShardConsumesPowerUntilDark)
{
    model::Model m = model::buildModel(ModelId::DlrmRmc1);
    PreparedWorkload w = prepare(hw::serverSpec(ServerType::T2), m,
                                 cpuConfig(1, 1, 64));
    ClusterSim cluster(ClusterSim::Options{});
    cluster.addShard(w, 1000.0);

    // Pile up a deep queue on the single-threaded shard, then release
    // it mid-queue: every in-flight query still retires.
    for (const auto& q : uniformTrace(30, 0.001, 300))
        cluster.route(q);
    cluster.setActive(0, false, 0.05);
    ASSERT_GT(cluster.outstanding(0), 0u);

    cluster.advanceTo(1.0);
    EXPECT_TRUE(cluster.drained(0));
    IntervalStats draining = cluster.harvest(0.0, 1.0);
    EXPECT_EQ(draining.completions, 30u);
    EXPECT_EQ(draining.dropped, 0u);
    // The drain work is charged to the window it happened in.
    EXPECT_GT(draining.consumed_power_w, 0.0);

    // A later window sees a dark shard: no completions, no power.
    cluster.advanceTo(2.0);
    IntervalStats dark = cluster.harvest(1.0, 2.0);
    EXPECT_EQ(dark.completions, 0u);
    EXPECT_DOUBLE_EQ(dark.consumed_power_w, 0.0);

    // And the dark shard still refuses new work.
    workload::Query late;
    late.arrival_s = 2.001;
    late.size = 10;
    late.pooling_scale = 1.0;
    EXPECT_EQ(cluster.route(late), -1);
}

/*
 * Bugfix pins: router state must survive topology changes. A
 * re-provision used to zero the round-robin cursor and all smooth-WRR
 * credits, biasing load toward low-index shards across a long replay.
 */
TEST(Router, RoundRobinCursorSurvivesReprovision)
{
    model::Model m = model::buildModel(ModelId::DlrmRmc1);
    PreparedWorkload w = prepare(hw::serverSpec(ServerType::T2), m,
                                 cpuConfig(4, 1, 64));
    ClusterSim::Options copt;
    copt.router = RouterPolicy::RoundRobin;
    ClusterSim cluster(copt);
    for (int i = 0; i < 3; ++i)
        cluster.addShard(w, 1000.0);

    auto trace = uniformTrace(3, 0.01);
    EXPECT_EQ(cluster.route(trace[0]), 0);
    EXPECT_EQ(cluster.route(trace[1]), 1);
    // A release + re-activation (two topology changes, same active
    // set) must not restart the cycle at shard 0.
    cluster.setActive(2, false, 0.025);
    cluster.setActive(2, true, 0.026);
    EXPECT_EQ(cluster.route(trace[2]), 2);
    cluster.drainAll();
    EXPECT_EQ(cluster.injectedPerShard(),
              (std::vector<size_t>{1, 1, 1}));
}

TEST(Router, HerculesCreditsSurviveReprovision)
{
    model::Model m = model::buildModel(ModelId::DlrmRmc1);
    PreparedWorkload w = prepare(hw::serverSpec(ServerType::T2), m,
                                 cpuConfig(4, 1, 64));
    ClusterSim::Options copt;
    copt.router = RouterPolicy::HerculesWeighted;
    ClusterSim cluster(copt);
    for (int i = 0; i < 3; ++i)
        cluster.addShard(w, 1000.0);

    // Equal weights: smooth WRR cycles 0, 1, 2. After shard 0's pick
    // its credit is deeply negative; zeroing the credits at the
    // topology change would hand the next query to shard 0 again.
    auto trace = uniformTrace(2, 0.01);
    EXPECT_EQ(cluster.route(trace[0]), 0);
    cluster.setActive(2, false, 0.015);
    cluster.setActive(2, true, 0.016);
    EXPECT_EQ(cluster.route(trace[1]), 1);
    cluster.drainAll();
}

/*
 * Bugfix pin: power-of-two-choices must sample two *distinct* shards.
 * With n = 2 that makes every pick a deterministic better-queue
 * choice; sampling with replacement would sometimes "compare" the
 * busy shard with itself and route into the longer queue.
 */
TEST(Router, PowerOfTwoSamplesDistinctShards)
{
    model::Model m = model::buildModel(ModelId::DlrmRmc1);
    PreparedWorkload slow = prepare(hw::serverSpec(ServerType::T2), m,
                                    cpuConfig(1, 1, 64));
    PreparedWorkload fast = prepare(hw::serverSpec(ServerType::T2), m,
                                    cpuConfig(10, 2, 128));
    ClusterSim::Options copt;
    copt.router = RouterPolicy::PowerOfTwo;
    copt.router_seed = 21;
    ClusterSim cluster(copt);
    cluster.addShard(slow, 500.0);
    cluster.addShard(fast, 3000.0);

    // Big queries arriving faster than the single-threaded shard can
    // retire them: whenever it is picked it stays busy across several
    // arrivals, so the distinct-sampling pick must route those to the
    // idle fast shard.
    for (const auto& q : uniformTrace(200, 0.002, 300)) {
        cluster.advanceTo(q.arrival_s);
        size_t q0 = cluster.outstanding(0);
        size_t q1 = cluster.outstanding(1);
        int expected = q0 > q1 ? 1 : 0;  // ties break to shard 0
        EXPECT_EQ(cluster.route(q), expected)
            << "queues were " << q0 << " vs " << q1;
    }
    cluster.drainAll();
    const auto& per_shard = cluster.injectedPerShard();
    EXPECT_GT(per_shard[0], 0u);
    EXPECT_GT(per_shard[1], per_shard[0]);
}

TEST(ClusterSim, DropsWhenNoShardActive)
{
    model::Model m = model::buildModel(ModelId::DlrmRmc1);
    PreparedWorkload w = prepare(hw::serverSpec(ServerType::T2), m,
                                 cpuConfig(2, 1, 64));
    ClusterSim cluster(ClusterSim::Options{});
    cluster.addShard(w, 1000.0);
    cluster.setActive(0, false, 0.0);
    workload::Query q;
    q.arrival_s = 0.001;
    q.size = 10;
    q.pooling_scale = 1.0;
    EXPECT_EQ(cluster.route(q), -1);
    IntervalStats st = cluster.harvest(0.0, 0.01);
    EXPECT_EQ(st.dropped, 1u);
    EXPECT_EQ(st.arrivals, 0u);
    // Bugfix pin: a dropped query missed its SLA by definition — a
    // fully-dark interval reports a 100% violation rate, not 0%.
    EXPECT_EQ(st.sla_violations, 1u);
    EXPECT_DOUBLE_EQ(st.sla_violation_rate, 1.0);
}

TEST(ClusterSim, DroppedArrivalsCountAsSlaViolationsInAggregates)
{
    model::Model m = model::buildModel(ModelId::DlrmRmc1);
    PreparedWorkload w = prepare(hw::serverSpec(ServerType::T2), m,
                                 cpuConfig(4, 2, 128));
    ClusterSim cluster(ClusterSim::Options{});
    cluster.addShard(w, 1000.0);

    // Interval 0 is a full outage (nothing active); interval 1 serves.
    std::vector<workload::Query> trace = uniformTrace(40, 0.01);
    auto plan = [](int k, double) {
        IntervalPlan p;
        if (k > 0)
            p.active = {0};
        return p;
    };
    ClusterSimResult r = cluster.run(trace, 0.2, plan);

    ASSERT_GT(r.dropped, 0u);
    ASSERT_GT(r.completed, 0u);
    EXPECT_EQ(r.injected + r.dropped, 40u);
    // Run-level rate counts the drops in numerator and denominator.
    EXPECT_EQ(r.sla_violations, r.dropped);  // served ones are fast
    EXPECT_DOUBLE_EQ(r.sla_violation_rate,
                     static_cast<double>(r.sla_violations) /
                         static_cast<double>(r.completed + r.dropped));
    EXPECT_DOUBLE_EQ(r.intervals[0].sla_violation_rate, 1.0);
    EXPECT_EQ(r.intervals[0].dropped, r.dropped);
    // Per-service view agrees with the aggregate.
    ASSERT_EQ(r.services.size(), 1u);
    EXPECT_EQ(r.services[0].dropped, r.dropped);
    EXPECT_EQ(r.services[0].sla_violations, r.sla_violations);
}

/*
 * Multi-service co-serving: shards belong to services, queries route
 * via their service's router to that service's shards only, and both
 * interval and run statistics keep per-service slices that add up to
 * the aggregate.
 */
TEST(ClusterSim, PerServiceRoutingAndStatsIsolation)
{
    model::Model m = model::buildModel(ModelId::DlrmRmc1);
    PreparedWorkload w = prepare(hw::serverSpec(ServerType::T2), m,
                                 cpuConfig(4, 2, 128));
    ClusterSim::Options copt;
    copt.router = RouterPolicy::RoundRobin;
    ClusterSim cluster(copt);
    cluster.addShard(w, 1000.0, 0);
    cluster.addShard(w, 1000.0, 1);
    cluster.addShard(w, 1000.0, 1);
    EXPECT_EQ(cluster.numServices(), 2);
    EXPECT_EQ(cluster.activeShards(0), (std::vector<int>{0}));
    EXPECT_EQ(cluster.activeShards(1), (std::vector<int>{1, 2}));

    std::vector<workload::Query> trace = uniformTrace(60, 0.005);
    for (size_t i = 0; i < trace.size(); ++i)
        trace[i].service_id = i % 3 == 0 ? 0 : 1;  // 20 / 40 split
    for (const auto& q : trace)
        cluster.route(q);
    cluster.drainAll();
    // Service 0's queries only reach shard 0; service 1's round-robin
    // cycles its own two shards.
    EXPECT_EQ(cluster.injectedPerShard(),
              (std::vector<size_t>{20, 20, 20}));

    IntervalStats st = cluster.harvest(0.0, 10.0);
    ASSERT_EQ(st.services.size(), 2u);
    EXPECT_EQ(st.services[0].arrivals, 20u);
    EXPECT_EQ(st.services[1].arrivals, 40u);
    EXPECT_EQ(st.services[0].completions +
                  st.services[1].completions,
              st.completions);
    EXPECT_EQ(st.services[0].active_shards, 1);
    EXPECT_EQ(st.services[1].active_shards, 2);
}

TEST(ClusterSim, PerServiceSlaAccounting)
{
    model::Model m = model::buildModel(ModelId::DlrmRmc1);
    PreparedWorkload w = prepare(hw::serverSpec(ServerType::T2), m,
                                 cpuConfig(4, 2, 128));
    ClusterSim::Options copt;
    copt.sla_ms = 15.0;
    // Service 0 can never violate, service 1 always does.
    copt.service_sla_ms = {1e9, 1e-6};
    ClusterSim cluster(copt);
    cluster.addShard(w, 1000.0, 0);
    cluster.addShard(w, 1000.0, 1);
    EXPECT_DOUBLE_EQ(cluster.slaMs(0), 1e9);
    EXPECT_DOUBLE_EQ(cluster.slaMs(1), 1e-6);
    EXPECT_DOUBLE_EQ(cluster.slaMs(7), 15.0);  // fallback

    std::vector<workload::Query> trace = uniformTrace(40, 0.005);
    for (size_t i = 0; i < trace.size(); ++i)
        trace[i].service_id = static_cast<int>(i % 2);
    ClusterSimResult r = cluster.run(trace, 0.05);

    ASSERT_EQ(r.services.size(), 2u);
    EXPECT_EQ(r.services[0].completed, 20u);
    EXPECT_EQ(r.services[1].completed, 20u);
    EXPECT_EQ(r.services[0].sla_violations, 0u);
    EXPECT_EQ(r.services[1].sla_violations, 20u);
    EXPECT_DOUBLE_EQ(r.services[0].sla_violation_rate, 0.0);
    EXPECT_DOUBLE_EQ(r.services[1].sla_violation_rate, 1.0);
    EXPECT_DOUBLE_EQ(r.services[0].sla_ms, 1e9);
    // The aggregate is the union of the per-service verdicts.
    EXPECT_EQ(r.sla_violations, 20u);
}

TEST(ClusterSim, ServiceDropIsolation)
{
    model::Model m = model::buildModel(ModelId::DlrmRmc1);
    PreparedWorkload w = prepare(hw::serverSpec(ServerType::T2), m,
                                 cpuConfig(4, 2, 128));
    ClusterSim cluster(ClusterSim::Options{});
    cluster.addShard(w, 1000.0, 0);
    cluster.addShard(w, 1000.0, 1);
    cluster.setActive(1, false, 0.0);  // service 1 goes dark

    std::vector<workload::Query> trace = uniformTrace(20, 0.005);
    for (size_t i = 0; i < trace.size(); ++i)
        trace[i].service_id = static_cast<int>(i % 2);
    for (const auto& q : trace)
        cluster.route(q);
    cluster.drainAll();

    IntervalStats st = cluster.harvest(0.0, 10.0);
    EXPECT_EQ(st.services[0].dropped, 0u);
    EXPECT_EQ(st.services[1].dropped, 10u);
    EXPECT_EQ(st.services[1].arrivals, 0u);
    EXPECT_DOUBLE_EQ(st.services[1].sla_violation_rate, 1.0);
    EXPECT_EQ(st.services[0].sla_violations, 0u);
    EXPECT_EQ(st.dropped, 10u);
}

/*
 * Hardening pin: an interval (or service slice) with zero completions
 * — a dark outage window, a trailing idle interval past the last
 * arrival — must report well-defined statistics. Every percentile of
 * an empty set is 0.0 by contract (util/stats.h), never NaN, and the
 * violation rate stays finite in [0, 1].
 */
TEST(ClusterSim, DarkIntervalStatsAreWellDefined)
{
    model::Model m = model::buildModel(ModelId::DlrmRmc1);
    PreparedWorkload w = prepare(hw::serverSpec(ServerType::T2), m,
                                 cpuConfig(4, 2, 128));
    ClusterSim cluster(ClusterSim::Options{});
    cluster.addShard(w, 1000.0, 0);
    cluster.addShard(w, 1000.0, 1);

    // 20 early queries for service 0 only; the horizon then runs far
    // past the last arrival, so the trailing intervals are completely
    // dark and service 1 never sees a single query.
    std::vector<workload::Query> trace = uniformTrace(20, 0.001);
    ClusterSimResult r = cluster.run(trace, 0.5, nullptr, 5.0);

    ASSERT_GE(r.intervals.size(), 10u);
    for (const IntervalStats& iv : r.intervals) {
        EXPECT_TRUE(std::isfinite(iv.p50_ms));
        EXPECT_TRUE(std::isfinite(iv.p99_ms));
        EXPECT_TRUE(std::isfinite(iv.max_ms));
        EXPECT_TRUE(std::isfinite(iv.sla_violation_rate));
        EXPECT_GE(iv.sla_violation_rate, 0.0);
        EXPECT_LE(iv.sla_violation_rate, 1.0);
        for (const ServiceIntervalStats& svc : iv.services) {
            EXPECT_TRUE(std::isfinite(svc.p50_ms));
            EXPECT_TRUE(std::isfinite(svc.p99_ms));
            EXPECT_TRUE(std::isfinite(svc.sla_violation_rate));
        }
    }
    // A dark interval reports the empty-percentile contract exactly.
    const IntervalStats& dark = r.intervals.back();
    EXPECT_EQ(dark.completions, 0u);
    EXPECT_DOUBLE_EQ(dark.p50_ms, 0.0);
    EXPECT_DOUBLE_EQ(dark.p99_ms, 0.0);
    EXPECT_DOUBLE_EQ(dark.sla_violation_rate, 0.0);
    // The never-used service slice is equally well-defined at run
    // level (0/0 rates are 0, not NaN).
    ASSERT_EQ(r.services.size(), 2u);
    EXPECT_EQ(r.services[1].completed, 0u);
    EXPECT_DOUBLE_EQ(r.services[1].p50_ms, 0.0);
    EXPECT_DOUBLE_EQ(r.services[1].p99_ms, 0.0);
    EXPECT_TRUE(std::isfinite(r.services[1].sla_violation_rate));
    EXPECT_DOUBLE_EQ(r.services[1].sla_violation_rate, 0.0);
}

TEST(ClusterSim, IntervalStatsAreConsistent)
{
    model::Model m = model::buildModel(ModelId::DlrmRmc1);
    PreparedWorkload w = prepare(hw::serverSpec(ServerType::T2), m,
                                 cpuConfig(4, 2, 128));
    ClusterSim::Options copt;
    copt.router = RouterPolicy::LeastOutstanding;
    copt.sla_ms = 15.0;
    ClusterSim cluster(copt);
    cluster.addShard(w, 1000.0);
    cluster.addShard(w, 1000.0);

    std::vector<workload::Query> trace = uniformTrace(800, 0.002);
    // Second half of the run keeps only shard 0 (exercises the plan
    // path: release at an interval boundary, drain, stats continuity).
    auto plan = [](int k, double) {
        IntervalPlan p;
        p.active = k < 2 ? std::vector<int>{0, 1} : std::vector<int>{0};
        p.provisioned_power_w = k < 2 ? 300.0 : 150.0;
        return p;
    };
    ClusterSimResult r = cluster.run(trace, 0.4, plan);

    EXPECT_EQ(r.injected, 800u);
    EXPECT_EQ(r.completed, 800u);
    EXPECT_EQ(r.dropped, 0u);
    size_t interval_completions = 0;
    for (const IntervalStats& iv : r.intervals) {
        interval_completions += iv.completions;
        EXPECT_GE(iv.sla_violation_rate, 0.0);
        EXPECT_LE(iv.sla_violation_rate, 1.0);
        EXPECT_GE(iv.consumed_power_w, 0.0);
        EXPECT_GE(iv.p99_ms, iv.p50_ms);
    }
    EXPECT_EQ(interval_completions, 800u);
    ASSERT_GE(r.intervals.size(), 4u);
    EXPECT_EQ(r.intervals[0].active_shards, 2);
    EXPECT_EQ(r.intervals[2].active_shards, 1);
    EXPECT_DOUBLE_EQ(r.intervals[0].provisioned_power_w, 300.0);
    EXPECT_DOUBLE_EQ(r.intervals[2].provisioned_power_w, 150.0);
    // Two active shards burn more power than one plus a drain tail.
    EXPECT_GT(r.intervals[0].consumed_power_w, 0.0);
    EXPECT_GT(r.peak_consumed_power_w,
              r.intervals.back().consumed_power_w);
}

}  // namespace
}  // namespace hercules::sim
