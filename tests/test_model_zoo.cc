/**
 * @file
 * Conformance tests of the six-model zoo against Table I of the paper:
 * table counts, pooling regimes, attention structure, SLA targets and
 * size relationships between production and small variants.
 */
#include <gtest/gtest.h>

#include "model/model_zoo.h"

namespace hercules::model {
namespace {

int
countKind(const Graph& g, OpKind k)
{
    int n = 0;
    for (const auto& node : g.nodes())
        if (node.kind() == k)
            ++n;
    return n;
}

TEST(Zoo, AllModelsListed)
{
    EXPECT_EQ(allModels().size(), 6u);
}

TEST(Zoo, NamesMatchTable1)
{
    EXPECT_STREQ(modelName(ModelId::DlrmRmc1), "DLRM-RMC1");
    EXPECT_STREQ(modelName(ModelId::DlrmRmc2), "DLRM-RMC2");
    EXPECT_STREQ(modelName(ModelId::DlrmRmc3), "DLRM-RMC3");
    EXPECT_STREQ(modelName(ModelId::MtWnd), "MT-WnD");
    EXPECT_STREQ(modelName(ModelId::Din), "DIN");
    EXPECT_STREQ(modelName(ModelId::Dien), "DIEN");
}

TEST(Zoo, ServicesMatchTable1)
{
    EXPECT_STREQ(modelService(ModelId::DlrmRmc1), "Social Media");
    EXPECT_STREQ(modelService(ModelId::MtWnd), "Video");
    EXPECT_STREQ(modelService(ModelId::Din), "E-commerce");
}

TEST(Zoo, SlaTargetsMatchFig15)
{
    EXPECT_DOUBLE_EQ(defaultSlaMs(ModelId::DlrmRmc1), 20.0);
    EXPECT_DOUBLE_EQ(defaultSlaMs(ModelId::DlrmRmc2), 50.0);
    EXPECT_DOUBLE_EQ(defaultSlaMs(ModelId::DlrmRmc3), 50.0);
    EXPECT_DOUBLE_EQ(defaultSlaMs(ModelId::Din), 50.0);
    EXPECT_DOUBLE_EQ(defaultSlaMs(ModelId::Dien), 100.0);
    EXPECT_DOUBLE_EQ(defaultSlaMs(ModelId::MtWnd), 100.0);
}

TEST(Zoo, TableCountsMatchTable1)
{
    EXPECT_EQ(buildModel(ModelId::DlrmRmc1).num_tables, 10);
    EXPECT_EQ(buildModel(ModelId::DlrmRmc2).num_tables, 100);
    EXPECT_EQ(buildModel(ModelId::DlrmRmc3).num_tables, 10);
    EXPECT_EQ(buildModel(ModelId::MtWnd).num_tables, 26);
    EXPECT_EQ(buildModel(ModelId::Din).num_tables, 3);
    EXPECT_EQ(buildModel(ModelId::Dien).num_tables, 3);
}

TEST(Zoo, EmbeddingNodeCountMatchesTables)
{
    for (ModelId id : allModels()) {
        Model m = buildModel(id);
        EXPECT_EQ(countKind(m.graph, OpKind::EmbeddingLookup),
                  m.num_tables)
            << m.name;
    }
}

TEST(Zoo, DlrmModelsArePooled)
{
    for (ModelId id :
         {ModelId::DlrmRmc1, ModelId::DlrmRmc2, ModelId::DlrmRmc3}) {
        Model m = buildModel(id);
        EXPECT_TRUE(m.pooled) << m.name;
        EXPECT_GE(m.pooling_min, 20) << m.name;
    }
}

TEST(Zoo, MtWndIsOneHot)
{
    Model m = buildModel(ModelId::MtWnd);
    EXPECT_FALSE(m.pooled);
    EXPECT_DOUBLE_EQ(m.pooling_min, 1.0);
    EXPECT_DOUBLE_EQ(m.pooling_max, 1.0);
}

TEST(Zoo, DinHasAttentionNoGru)
{
    Model m = buildModel(ModelId::Din);
    EXPECT_EQ(countKind(m.graph, OpKind::Attention), 1);
    EXPECT_EQ(countKind(m.graph, OpKind::Gru), 0);
}

TEST(Zoo, DienHasAttentionAndGru)
{
    Model m = buildModel(ModelId::Dien);
    EXPECT_EQ(countKind(m.graph, OpKind::Attention), 1);
    EXPECT_EQ(countKind(m.graph, OpKind::Gru), 1);
}

TEST(Zoo, DinBehaviorSequenceOnLargestTable)
{
    Model m = buildModel(ModelId::Din);
    // The behaviour-sequence lookup (100-1000 gathers) must target the
    // largest table (user-history over the item corpus).
    const EmbeddingParams* seq_table = nullptr;
    int64_t max_rows = 0;
    for (const auto& n : m.graph.nodes()) {
        if (n.kind() != OpKind::EmbeddingLookup)
            continue;
        const auto& p = std::get<EmbeddingParams>(n.params);
        if (p.rows > max_rows) {
            max_rows = p.rows;
            seq_table = &p;
        }
    }
    ASSERT_NE(seq_table, nullptr);
    EXPECT_GE(seq_table->pooling_max, 1000);
}

TEST(Zoo, MtWndHasMultipleTaskTowers)
{
    Model m = buildModel(ModelId::MtWnd);
    // 5 towers x 4 FC layers + 1 wide FC = 21 FC nodes.
    EXPECT_EQ(countKind(m.graph, OpKind::Fc), 21);
}

TEST(Zoo, DlrmHasInteraction)
{
    for (ModelId id :
         {ModelId::DlrmRmc1, ModelId::DlrmRmc2, ModelId::DlrmRmc3}) {
        Model m = buildModel(id);
        EXPECT_EQ(countKind(m.graph, OpKind::Interaction), 1) << m.name;
    }
}

TEST(Zoo, GraphsAreAcyclic)
{
    for (ModelId id : allModels()) {
        Model m = buildModel(id);
        EXPECT_EQ(m.graph.topoOrder().size(),
                  static_cast<size_t>(m.graph.size()))
            << m.name;
    }
}

TEST(Zoo, EmbeddingDominatesFootprint)
{
    // Paper: >95% of the model footprint is embeddings.
    for (ModelId id : allModels()) {
        Model m = buildModel(id);
        double frac = static_cast<double>(m.embeddingBytes()) /
                      static_cast<double>(m.totalBytes());
        EXPECT_GT(frac, 0.95) << m.name;
    }
}

TEST(Zoo, SmallVariantFitsGpuMemory)
{
    // The paper's accelerator characterization uses small variants that
    // fit one V100 (16 GB).
    for (ModelId id : allModels()) {
        Model m = buildModel(id, Variant::Small);
        EXPECT_LT(m.totalBytes(), 15ll << 30) << m.name;
    }
}

TEST(Zoo, ProdLargerThanSmall)
{
    for (ModelId id : allModels()) {
        EXPECT_GT(buildModel(id, Variant::Prod).totalBytes(),
                  buildModel(id, Variant::Small).totalBytes())
            << modelName(id);
    }
}

TEST(Zoo, ProdFitsSmallestHost)
{
    // Every production model must fit the 64 GB T1 host (DESIGN.md
    // documents the Table I row-count caps that guarantee this).
    for (ModelId id : allModels()) {
        Model m = buildModel(id);
        EXPECT_LT(m.totalBytes(), static_cast<int64_t>(0.95 * 64 *
                                                       (1ll << 30)))
            << m.name;
    }
}

TEST(Zoo, TableSizesSpreadGeometrically)
{
    Model m = buildModel(ModelId::Din);
    std::vector<int64_t> rows;
    for (const auto& n : m.graph.nodes())
        if (n.kind() == OpKind::EmbeddingLookup)
            rows.push_back(std::get<EmbeddingParams>(n.params).rows);
    ASSERT_EQ(rows.size(), 3u);
    EXPECT_EQ(rows.front(), m.rows_min);
    EXPECT_NEAR(static_cast<double>(rows.back()),
                static_cast<double>(m.rows_max),
                static_cast<double>(m.rows_max) * 0.01);
    EXPECT_LT(rows[0], rows[1]);
    EXPECT_LT(rows[1], rows[2]);
}

TEST(Zoo, NameIncludesVariantSuffix)
{
    EXPECT_EQ(buildModel(ModelId::Din, Variant::Small).name,
              "DIN (small)");
    EXPECT_EQ(buildModel(ModelId::Din, Variant::Prod).name, "DIN");
}

/** Parameterized sanity across the whole zoo. */
class ZooEveryModel
    : public ::testing::TestWithParam<std::tuple<ModelId, Variant>>
{
};

TEST_P(ZooEveryModel, BuildsConsistently)
{
    auto [id, variant] = GetParam();
    Model m = buildModel(id, variant);
    EXPECT_GT(m.graph.size(), 0);
    EXPECT_GT(m.embeddingBytes(), 0);
    EXPECT_GT(m.denseParamBytes(), 0);
    EXPECT_GT(m.sla_ms, 0.0);
    EXPECT_TRUE(m.graph.hasStage(Stage::Sparse));
    EXPECT_TRUE(m.graph.hasStage(Stage::Dense));
    // Rebuilding produces the identical structure (pure function).
    Model m2 = buildModel(id, variant);
    EXPECT_EQ(m.graph.size(), m2.graph.size());
    EXPECT_EQ(m.embeddingBytes(), m2.embeddingBytes());
}

INSTANTIATE_TEST_SUITE_P(
    AllModelsAndVariants, ZooEveryModel,
    ::testing::Combine(::testing::ValuesIn(allModels()),
                       ::testing::Values(Variant::Prod, Variant::Small)));

}  // namespace
}  // namespace hercules::model
