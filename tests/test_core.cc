/**
 * @file
 * Tests of the Hercules core: efficiency-table bookkeeping, server
 * ranking (workload classification), CSV persistence and the offline
 * profiler / online-setup flows.
 */
#include <gtest/gtest.h>

#include <cstdio>

#include "core/profiler.h"

namespace hercules::core {
namespace {

using hw::ServerType;
using model::ModelId;

EfficiencyEntry
entry(ServerType s, ModelId m, double qps, double power)
{
    EfficiencyEntry e;
    e.server = s;
    e.model = m;
    e.feasible = qps > 0.0;
    e.qps = qps;
    e.power_w = power;
    e.avg_power_w = power * 0.8;
    e.qps_per_watt = power > 0.0 ? qps / (power * 0.8) : 0.0;
    return e;
}

TEST(EfficiencyTable, SetAndGet)
{
    EfficiencyTable t;
    t.set(entry(ServerType::T2, ModelId::DlrmRmc1, 1000, 150));
    const EfficiencyEntry* e =
        t.get(ServerType::T2, ModelId::DlrmRmc1);
    ASSERT_NE(e, nullptr);
    EXPECT_DOUBLE_EQ(e->qps, 1000.0);
    EXPECT_EQ(t.get(ServerType::T3, ModelId::DlrmRmc1), nullptr);
}

TEST(EfficiencyTable, SetReplacesExisting)
{
    EfficiencyTable t;
    t.set(entry(ServerType::T2, ModelId::DlrmRmc1, 1000, 150));
    t.set(entry(ServerType::T2, ModelId::DlrmRmc1, 2000, 150));
    EXPECT_EQ(t.entries().size(), 1u);
    EXPECT_DOUBLE_EQ(t.get(ServerType::T2, ModelId::DlrmRmc1)->qps,
                     2000.0);
}

TEST(EfficiencyTable, RankByEnergyEfficiency)
{
    EfficiencyTable t;
    t.set(entry(ServerType::T2, ModelId::DlrmRmc1, 2500, 160));  // 19.5
    t.set(entry(ServerType::T3, ModelId::DlrmRmc1, 4400, 165));  // 33.3
    t.set(entry(ServerType::T7, ModelId::DlrmRmc1, 3200, 250));  // 16.0
    auto ranked = t.rank(ModelId::DlrmRmc1, true);
    ASSERT_EQ(ranked.size(), 3u);
    EXPECT_EQ(ranked[0], ServerType::T3);
    EXPECT_EQ(ranked[1], ServerType::T2);
    EXPECT_EQ(ranked[2], ServerType::T7);
}

TEST(EfficiencyTable, RankByQps)
{
    EfficiencyTable t;
    t.set(entry(ServerType::T2, ModelId::DlrmRmc1, 2500, 160));
    t.set(entry(ServerType::T3, ModelId::DlrmRmc1, 4400, 165));
    auto ranked = t.rank(ModelId::DlrmRmc1, false);
    EXPECT_EQ(ranked[0], ServerType::T3);
}

TEST(EfficiencyTable, RankExcludesInfeasible)
{
    EfficiencyTable t;
    t.set(entry(ServerType::T2, ModelId::Din, 1000, 150));
    t.set(entry(ServerType::T6, ModelId::Din, 0, 0));  // infeasible
    auto ranked = t.rank(ModelId::Din);
    EXPECT_EQ(ranked.size(), 1u);
}

TEST(EfficiencyTable, RankPerModelIndependent)
{
    EfficiencyTable t;
    t.set(entry(ServerType::T2, ModelId::DlrmRmc1, 1000, 100));
    t.set(entry(ServerType::T3, ModelId::DlrmRmc2, 1000, 100));
    EXPECT_EQ(t.rank(ModelId::DlrmRmc1).size(), 1u);
    EXPECT_EQ(t.rank(ModelId::DlrmRmc2).size(), 1u);
    EXPECT_EQ(t.rank(ModelId::Din).size(), 0u);
}

TEST(EfficiencyTable, CsvRoundtrip)
{
    EfficiencyTable t;
    EfficiencyEntry a = entry(ServerType::T2, ModelId::DlrmRmc1, 2500,
                              160);
    a.config.mapping = sched::Mapping::CpuSdPipeline;
    a.config.cpu_threads = 7;
    a.config.cores_per_thread = 2;
    a.config.dense_threads = 6;
    a.config.batch = 64;
    t.set(a);
    EfficiencyEntry b = entry(ServerType::T10, ModelId::Dien, 900, 380);
    b.config.mapping = sched::Mapping::GpuModelBased;
    b.config.gpu_threads = 2;
    b.config.fusion_limit = 4000;
    b.config.cpu_threads = 1;
    b.config.fuse_elementwise = false;
    t.set(b);
    std::string path = ::testing::TempDir() + "/hercules_eff.csv";
    t.writeCsv(path);
    EfficiencyTable back = EfficiencyTable::readCsv(path);
    ASSERT_EQ(back.entries().size(), 2u);
    const EfficiencyEntry* e =
        back.get(ServerType::T10, ModelId::Dien);
    ASSERT_NE(e, nullptr);
    EXPECT_NEAR(e->qps, 900.0, 1e-6);
    EXPECT_NEAR(e->power_w, 380.0, 1e-6);
    // The task-scheduling config must survive persistence: cached
    // tuples are re-prepared and simulated by the serving layer.
    EXPECT_EQ(e->config.key(), b.config.key());
    EXPECT_EQ(back.get(ServerType::T2, ModelId::DlrmRmc1)->config.key(),
              a.config.key());
    std::remove(path.c_str());
}

TEST(EfficiencyTable, StaleCacheIsRejectedNotMisread)
{
    // Caches from older builds stored config.str() ("cpu-model 10x2
    // b128") instead of the canonical key; silently defaulting the
    // config would under-provision every simulated shard.
    std::string path = ::testing::TempDir() + "/hercules_stale.csv";
    FILE* f = fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    fprintf(f, "server,model,feasible,qps,power_w,avg_power_w,"
               "qps_per_watt,config\n");
    fprintf(f, "T2,DLRM-RMC1,1,2500,160,128,19.5,cpu-model 10x2 b128\n");
    fclose(f);
    EXPECT_FALSE(EfficiencyTable::tryReadCsv(path).has_value());
    EXPECT_DEATH(EfficiencyTable::readCsv(path), "older build");
    std::remove(path.c_str());
}

TEST(EfficiencyTable, ConfigKeyRoundtrip)
{
    sched::SchedulingConfig cfg;
    cfg.mapping = sched::Mapping::GpuSdPipeline;
    cfg.cpu_threads = 9;
    cfg.cores_per_thread = 3;
    cfg.dense_threads = 0;
    cfg.batch = 128;
    cfg.gpu_threads = 4;
    cfg.fusion_limit = 6000;
    cfg.fuse_elementwise = false;
    auto parsed = sched::SchedulingConfig::fromKey(cfg.key());
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->key(), cfg.key());
    EXPECT_FALSE(sched::SchedulingConfig::fromKey("").has_value());
    EXPECT_FALSE(
        sched::SchedulingConfig::fromKey("cpu-sd 7x2::6 b64").has_value());
    EXPECT_FALSE(sched::SchedulingConfig::fromKey("m=1;t=4").has_value());
    // Duplicate fields and negative counts are corruption, not configs.
    EXPECT_FALSE(sched::SchedulingConfig::fromKey(
                     "m=0;t=4;t=4;t=4;t=4;t=4;t=4;t=4")
                     .has_value());
    EXPECT_FALSE(sched::SchedulingConfig::fromKey(
                     "m=0;t=-3;o=1;dt=0;b=64;g=0;f=0;fe=1")
                     .has_value());
}

sched::SearchOptions
fastSearch()
{
    sched::SearchOptions opt;
    opt.measure.sim.num_queries = 250;
    opt.measure.sim.warmup_queries = 50;
    opt.measure.bisect_iters = 5;
    opt.space.batches = {64, 256};
    opt.space.fusion_limits = {0, 2000};
    opt.space.max_gpu_threads = 2;
    opt.space.host_helper_threads = {2};
    return opt;
}

TEST(Profiler, ProfilePairProducesTuple)
{
    model::Model m = model::buildModel(ModelId::DlrmRmc1);
    EfficiencyEntry e = profilePair(hw::serverSpec(ServerType::T2), m,
                                    20.0, fastSearch());
    EXPECT_TRUE(e.feasible);
    EXPECT_GT(e.qps, 0.0);
    EXPECT_GT(e.power_w, 0.0);
    EXPECT_GT(e.qps_per_watt, 0.0);
    EXPECT_EQ(e.server, ServerType::T2);
    EXPECT_EQ(e.model, ModelId::DlrmRmc1);
}

TEST(Profiler, OfflineProfileSubset)
{
    ProfilerOptions opt;
    opt.search = fastSearch();
    opt.servers = {ServerType::T2, ServerType::T3};
    opt.models = {ModelId::DlrmRmc1};
    EfficiencyTable t = offlineProfile(opt);
    EXPECT_EQ(t.entries().size(), 2u);
    const EfficiencyEntry* t2 = t.get(ServerType::T2, ModelId::DlrmRmc1);
    const EfficiencyEntry* t3 = t.get(ServerType::T3, ModelId::DlrmRmc1);
    ASSERT_TRUE(t2 && t3);
    // Fig 8(a): the NMP server is the better RMC1 machine.
    EXPECT_GT(t3->qps, t2->qps);
    EXPECT_GT(t3->qps_per_watt, t2->qps_per_watt);
}

TEST(Profiler, OnlineSetupHonoursPowerBudget)
{
    model::Model m = model::buildModel(ModelId::DlrmRmc1);
    EfficiencyEntry unconstrained = profilePair(
        hw::serverSpec(ServerType::T2), m, 20.0, fastSearch());
    ASSERT_TRUE(unconstrained.feasible);
    double budget = unconstrained.power_w - 4.0;
    EfficiencyEntry constrained =
        onlineSetup(hw::serverSpec(ServerType::T2), m, 20.0, budget,
                    fastSearch());
    if (constrained.feasible) {
        EXPECT_LE(constrained.power_w, budget + 1e-9);
        EXPECT_LE(constrained.qps, unconstrained.qps + 1e-6);
    }
}

TEST(Profiler, SlaOverrideApplies)
{
    ProfilerOptions opt;
    opt.search = fastSearch();
    opt.servers = {ServerType::T2};
    opt.models = {ModelId::DlrmRmc1};
    opt.sla_ms_override = 100.0;
    EfficiencyTable loose = offlineProfile(opt);
    opt.sla_ms_override = 5.0;
    EfficiencyTable tight = offlineProfile(opt);
    const auto* l = loose.get(ServerType::T2, ModelId::DlrmRmc1);
    const auto* t = tight.get(ServerType::T2, ModelId::DlrmRmc1);
    ASSERT_TRUE(l && t);
    if (l->feasible && t->feasible) {
        EXPECT_GE(l->qps, t->qps * 0.9);
    }
}

}  // namespace
}  // namespace hercules::core
