/**
 * @file
 * Tests of the declarative scenario API (src/scenario/): exact text
 * round-trip on every shipped .scn in scenarios/, duplicate/unknown-key
 * rejection with 1-based line numbers, default-spec == legacy-defaults
 * equivalence, the time-varying power-cap schedule, and the golden
 * pin that scenario::run() on a spec mirroring bench_multiservice's
 * joint-arm wiring reproduces a hand-wired cluster::serveTraces()
 * call bit-identically.
 */
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "cluster/serving.h"
#include "fault/fault.h"
#include "model/model_zoo.h"
#include "scenario/scenario.h"
#include "scenario/spec_io.h"

namespace hercules::scenario {
namespace {

using hw::ServerType;
using model::ModelId;

std::string
scenarioDir()
{
#ifdef HERCULES_SCENARIO_DIR
    return HERCULES_SCENARIO_DIR;
#else
    return "../scenarios";
#endif
}

std::string
readFile(const std::filesystem::path& p)
{
    std::ifstream in(p);
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

// ---- shipped-library round trip ------------------------------------------

TEST(SpecIo, ShippedScenariosRoundTripExactly)
{
    size_t n = 0;
    for (const auto& ent :
         std::filesystem::directory_iterator(scenarioDir())) {
        if (ent.path().extension() != ".scn")
            continue;
        ++n;
        std::string text = readFile(ent.path());
        std::string err;
        auto spec = parseSpec(text, &err);
        ASSERT_TRUE(spec.has_value())
            << ent.path() << ": " << err;
        // The shipped files are in canonical form: serializing the
        // parsed spec reproduces the file byte for byte...
        EXPECT_EQ(toText(*spec), text) << ent.path();
        // ...and the round trip is a fixed point.
        auto again = parseSpec(toText(*spec), &err);
        ASSERT_TRUE(again.has_value()) << ent.path() << ": " << err;
        EXPECT_EQ(toText(*again), toText(*spec)) << ent.path();
    }
    EXPECT_GE(n, 6u) << "shipped scenario library shrank";
}

TEST(SpecIo, EveryNonDefaultFieldRoundTrips)
{
    ScenarioSpec s;
    s.name = "all_knobs";
    s.description = "escapes: \"quote\" \\ tab\t newline\n done";
    s.fleet = {{ServerType::T2, 2}, {ServerType::T10, 3}};
    ServiceScenario svc;
    svc.name = "ranker";
    svc.spec.model = ModelId::Dien;
    svc.peak_qps_frac = 0.25;
    svc.spec.load.peak_qps = 123.5;
    svc.spec.load.trough_frac = 0.5;
    svc.spec.load.peak_hour = 7.25;
    svc.spec.load.noise_frac = 0.01;
    svc.spec.load.seed = 99;
    svc.spec.load.surge_hour = 6.0;
    svc.spec.load.surge_hours = 1.5;
    svc.spec.load.surge_factor = 2.0;
    svc.spec.sla_ms = 31.0;
    svc.spec.qos.priority = 3;
    svc.spec.qos.tier = qos::Tier::Throughput;
    svc.spec.qos.sla_ms = 40.0;
    svc.spec.sizes.median = 70.0;
    svc.spec.sizes.sigma = 0.9;
    svc.spec.sizes.min_size = 5;
    svc.spec.sizes.max_size = 500;
    svc.spec.pooling.sigma = 0.5;
    s.services.push_back(svc);
    s.provisioner = ProvisionerKind::PriorityAware;
    s.nh_seed = 23;
    s.serve.router = sim::RouterPolicy::PowerOfTwo;
    s.serve.router_seed = 9;
    s.serve.feedback.gain = 0.2;
    s.serve.feedback.floor_frac = 0.1;
    s.serve.admission.policy = qos::AdmissionPolicy::QueueCap;
    s.serve.admission.queue_cap = 17;
    s.serve.admission.deadline_slack = 1.25;
    s.serve.admission.cross_shard_retry = false;
    s.serve.horizon_hours = 6.0;
    s.serve.interval_hours = 0.25;
    s.serve.sla_ms = 33.0;
    s.serve.overprovision_rate = 0.07;
    s.serve.power_cap_w = 512.125;
    s.serve.power_cap_schedule = {{3.0, 400.0}, {5.0, 1e9}};
    s.serve.faults.seed = 11;
    s.serve.faults.crash_mtbf_hours = 8.0;
    s.serve.faults.crash_mttr_hours = 0.75;
    s.serve.faults.degrade_mtbf_hours = 6.0;
    s.serve.faults.degrade_mttr_hours = 2.0;
    s.serve.faults.degrade_slowdown = 3.5;
    s.serve.faults.events = {
        {1.5, 1, 2, fault::HealthState::Failed, 1.0},
        {2.25, 1, 2, fault::HealthState::Healthy, 1.0},
        {4.0, 0, 1, fault::HealthState::Degraded, 2.5},
    };
    s.serve.trace.bucket_seconds = 30.0;
    s.serve.trace.time_compression = 480.0;
    s.serve.trace.seed = 1234;
    s.profile.table_cache = "t.csv";
    s.profile.eval_memo = "m.tsv";
    s.profile.num_queries = 111;
    s.profile.warmup_queries = 22;
    s.profile.bisect_iters = 3;
    s.profile.seed = 77;

    std::string text = toText(s);
    std::string err;
    auto parsed = parseSpec(text, &err);
    ASSERT_TRUE(parsed.has_value()) << err;
    EXPECT_EQ(toText(*parsed), text);
}

// ---- line/key-precise rejection ------------------------------------------

TEST(SpecIo, DuplicateKeyRejectedWithLine)
{
    std::string err;
    auto s = parseSpec("{\n  \"name\": \"x\",\n  \"name\": \"y\"\n}",
                       &err);
    EXPECT_FALSE(s.has_value());
    EXPECT_EQ(err, "line 3: duplicate key 'name'");
}

TEST(SpecIo, UnknownKeyRejectedWithLineAndContext)
{
    std::string err;
    auto s = parseSpec("{\n"
                       "  \"services\": [\n"
                       "    {\"model\": \"DLRM-RMC1\",\n"
                       "     \"peek_qps\": 3}\n"
                       "  ]\n"
                       "}",
                       &err);
    EXPECT_FALSE(s.has_value());
    EXPECT_EQ(err, "line 4: unknown key 'peek_qps' in services[0]");

    auto t = parseSpec("{\n  \"admission\": {\"polcy\": \"none\"}\n}",
                       &err);
    EXPECT_FALSE(t.has_value());
    EXPECT_EQ(err, "line 2: unknown key 'polcy' in admission");

    auto u = parseSpec("{\n  \"horizont\": 3\n}", &err);
    EXPECT_FALSE(u.has_value());
    EXPECT_EQ(err, "line 2: unknown key 'horizont' in scenario");
}

TEST(SpecIo, UnknownEnumNamesRejected)
{
    std::string err;
    EXPECT_FALSE(parseSpec("{\"fleet\": [{\"type\": \"T99\"}]}", &err)
                     .has_value());
    EXPECT_EQ(err, "line 1: unknown server type 'T99' in fleet[0]");

    EXPECT_FALSE(
        parseSpec("{\"services\": [{\"model\": \"GPT\"}]}", &err)
            .has_value());
    EXPECT_EQ(err, "line 1: unknown model 'GPT' in services[0]");

    EXPECT_FALSE(parseSpec("{\"router\": \"random\"}", &err)
                     .has_value());
    EXPECT_EQ(err, "line 1: unknown router policy 'random' in scenario");

    EXPECT_FALSE(parseSpec("{\"provisioner\": \"magic\"}", &err)
                     .has_value());
    EXPECT_EQ(err, "line 1: unknown provisioner 'magic' in scenario");
}

TEST(SpecIo, TypeMismatchNamesKeyAndLine)
{
    std::string err;
    EXPECT_FALSE(
        parseSpec("{\n  \"horizon_hours\": \"six\"\n}", &err)
            .has_value());
    EXPECT_EQ(err, "line 2: key 'horizon_hours' in scenario expects a "
                   "number (got a string)");

    // Integer keys reject fractional values.
    EXPECT_FALSE(
        parseSpec("{\"fleet\": [{\"type\": \"T2\", \"slots\": 1.5}]}",
                  &err)
            .has_value());
    EXPECT_EQ(err, "line 1: key 'slots' in fleet[0] expects an "
                   "integer (got a number)");
}

TEST(SpecIo, RequiredServiceAndFleetKeys)
{
    std::string err;
    EXPECT_FALSE(parseSpec("{\"services\": [{\"sla_ms\": 5}]}", &err)
                     .has_value());
    EXPECT_EQ(err, "line 1: missing key 'model' in services[0]");

    EXPECT_FALSE(
        parseSpec("{\"fleet\": [{\"slots\": 2}]}", &err).has_value());
    EXPECT_EQ(err, "line 1: missing key 'type' in fleet[0]");
}

TEST(SpecIo, SyntaxErrorsCarryLines)
{
    std::string err;
    EXPECT_FALSE(parseSpec("[1, 2]", &err).has_value());
    EXPECT_EQ(err, "line 1: top-level value must be an object");

    EXPECT_FALSE(parseSpec("{\n  \"name\": \"unterminated\n}", &err)
                     .has_value());
    EXPECT_EQ(err, "line 2: unterminated string");

    EXPECT_FALSE(parseSpec("{\"name\": \"x\"} trailing", &err)
                     .has_value());
    EXPECT_EQ(err,
              "line 1: trailing content after the top-level object");

    EXPECT_FALSE(parseSpec("{\"sla_ms\": 3.}", &err).has_value());
    EXPECT_EQ(err, "line 1: malformed number");

    EXPECT_FALSE(parseSpec("{\"sla_ms\": 1e999}", &err).has_value());
    EXPECT_EQ(err, "line 1: number out of range");
}

// ---- defaults mirror the legacy entry points -----------------------------

TEST(SpecDefaults, DefaultSpecMatchesLegacyServeDefaults)
{
    // A default ScenarioSpec must drive serveTraces exactly like a
    // default-constructed TraceServeOptions — the legacy entry
    // points' behaviour. Pin every field so drift in either struct
    // breaks this test, not an experiment.
    ScenarioSpec s;
    cluster::TraceServeOptions legacy;
    EXPECT_EQ(s.serve.horizon_hours, legacy.horizon_hours);
    EXPECT_EQ(s.serve.interval_hours, legacy.interval_hours);
    EXPECT_EQ(s.serve.sla_ms, legacy.sla_ms);
    EXPECT_EQ(s.serve.overprovision_rate, legacy.overprovision_rate);
    EXPECT_EQ(s.serve.power_cap_w, legacy.power_cap_w);
    EXPECT_TRUE(s.serve.power_cap_schedule.empty());
    EXPECT_EQ(s.serve.router, legacy.router);
    EXPECT_EQ(s.serve.router_seed, legacy.router_seed);
    EXPECT_EQ(s.serve.admission.policy, legacy.admission.policy);
    EXPECT_EQ(s.serve.admission.queue_cap, legacy.admission.queue_cap);
    EXPECT_EQ(s.serve.admission.deadline_slack,
              legacy.admission.deadline_slack);
    EXPECT_EQ(s.serve.admission.cross_shard_retry,
              legacy.admission.cross_shard_retry);
    EXPECT_EQ(s.serve.feedback.gain, legacy.feedback.gain);
    EXPECT_EQ(s.serve.feedback.floor_frac, legacy.feedback.floor_frac);
    EXPECT_EQ(s.serve.trace.horizon_hours, legacy.trace.horizon_hours);
    EXPECT_EQ(s.serve.trace.bucket_seconds,
              legacy.trace.bucket_seconds);
    EXPECT_EQ(s.serve.trace.time_compression,
              legacy.trace.time_compression);
    EXPECT_EQ(s.serve.trace.seed, legacy.trace.seed);
    EXPECT_EQ(s.provisioner, ProvisionerKind::Hercules);
    EXPECT_EQ(s.nh_seed, 17u);

    // Profiling defaults mirror the library measurement defaults.
    sim::MeasureOptions mo;
    EXPECT_EQ(s.profile.num_queries, mo.sim.num_queries);
    EXPECT_EQ(s.profile.warmup_queries, mo.sim.warmup_queries);
    EXPECT_EQ(s.profile.bisect_iters, mo.bisect_iters);
    EXPECT_EQ(s.profile.seed, mo.sim.seed);
    EXPECT_TRUE(s.profile.table_cache.empty());
    EXPECT_TRUE(s.profile.eval_memo.empty());

    // A default service spec is the legacy ServiceSpec.
    ServiceScenario svc;
    cluster::ServiceSpec legacy_svc;
    EXPECT_EQ(svc.spec.model, legacy_svc.model);
    EXPECT_EQ(svc.spec.load.peak_qps, legacy_svc.load.peak_qps);
    EXPECT_EQ(svc.spec.sla_ms, legacy_svc.sla_ms);
    EXPECT_EQ(svc.spec.qos.priority, legacy_svc.qos.priority);
    EXPECT_EQ(svc.peak_qps_frac, 0.0);

    // And the default spec's canonical text is the trivial one.
    EXPECT_EQ(toText(ScenarioSpec{}),
              "{\n  \"name\": \"scenario\"\n}\n");
}

// ---- time-varying power cap ----------------------------------------------

TEST(PowerCapSchedule, PowerCapAtSteps)
{
    const double inf = std::numeric_limits<double>::infinity();
    std::vector<cluster::PowerCapPoint> sched;
    // Empty schedule: the scalar cap alone.
    EXPECT_EQ(cluster::powerCapAt(sched, inf, 5.0), inf);
    EXPECT_EQ(cluster::powerCapAt(sched, 700.0, 5.0), 700.0);

    sched = {{18.0, 330.0}, {23.0, 1e9}};
    // Before the first point only the scalar applies.
    EXPECT_EQ(cluster::powerCapAt(sched, inf, 0.0), inf);
    EXPECT_EQ(cluster::powerCapAt(sched, 500.0, 17.99), 500.0);
    // Inside the brownout the step wins (min with the scalar).
    EXPECT_EQ(cluster::powerCapAt(sched, inf, 18.0), 330.0);
    EXPECT_EQ(cluster::powerCapAt(sched, inf, 22.5), 330.0);
    EXPECT_EQ(cluster::powerCapAt(sched, 200.0, 20.0), 200.0);
    // After the lift, the huge step leaves the scalar in charge.
    EXPECT_EQ(cluster::powerCapAt(sched, inf, 23.0), 1e9);
    EXPECT_EQ(cluster::powerCapAt(sched, 500.0, 23.5), 500.0);
}

// ---- golden: scenario::run == hand-wired serveTraces ---------------------

/** A valid CPU config for the hand-built efficiency entries. */
sched::SchedulingConfig
cpuConfig()
{
    sched::SchedulingConfig cfg;
    cfg.mapping = sched::Mapping::CpuModelBased;
    cfg.cpu_threads = 4;
    cfg.cores_per_thread = 1;
    cfg.batch = 64;
    return cfg;
}

/**
 * Hand-built (T1, T2) x (RMC1, RMC2, RMC3) efficiency table — the
 * bench_multiservice shape (heterogeneous types, three models)
 * without the profiling cost.
 */
core::EfficiencyTable
goldenTable()
{
    core::EfficiencyTable t;
    auto add = [&](ServerType st, ModelId m, double qps, double w) {
        core::EfficiencyEntry e;
        e.server = st;
        e.model = m;
        e.feasible = true;
        e.qps = qps;
        e.power_w = w;
        e.config = cpuConfig();
        t.set(e);
    };
    add(ServerType::T2, ModelId::DlrmRmc1, 2000.0, 100.0);
    add(ServerType::T2, ModelId::DlrmRmc2, 1000.0, 200.0);
    add(ServerType::T2, ModelId::DlrmRmc3, 1500.0, 120.0);
    add(ServerType::T1, ModelId::DlrmRmc1, 1200.0, 90.0);
    add(ServerType::T1, ModelId::DlrmRmc2, 600.0, 150.0);
    add(ServerType::T1, ModelId::DlrmRmc3, 900.0, 100.0);
    return t;
}

/**
 * The spec mirrors bench_multiservice's joint arm: three services
 * with phase-shifted peaks (20h / 12h / 4h, seeds 5/6/7, the small
 * RMC2 size-shaped) co-served on a shared heterogeneous fleet under
 * the Hercules provisioner, 0.5h intervals, compressed replay.
 */
ScenarioSpec
goldenSpec()
{
    ScenarioSpec spec;
    spec.name = "golden_multiservice";
    spec.fleet = {{ServerType::T2, 2}, {ServerType::T1, 1}};
    const ModelId ids[3] = {ModelId::DlrmRmc1, ModelId::DlrmRmc2,
                            ModelId::DlrmRmc3};
    const double peaks[3] = {400.0, 200.0, 300.0};
    for (int s = 0; s < 3; ++s) {
        ServiceScenario svc;
        svc.spec.model = ids[s];
        svc.spec.load.peak_qps = peaks[s];
        svc.spec.load.trough_frac = 0.35;
        svc.spec.load.peak_hour = 20.0 - 8.0 * s;
        svc.spec.load.seed = 5 + static_cast<uint64_t>(s);
        if (s == 1) {
            svc.spec.sizes.sigma = 0.7;
            svc.spec.sizes.max_size = 300;
        }
        spec.services.push_back(svc);
    }
    spec.serve.horizon_hours = 3.0;
    spec.serve.interval_hours = 0.5;
    spec.serve.trace.time_compression = 480.0;
    spec.serve.trace.seed = 42;
    return spec;
}

void
expectBitIdentical(const cluster::MultiServeResult& a,
                   const cluster::MultiServeResult& b)
{
    EXPECT_EQ(a.trace_queries, b.trace_queries);
    EXPECT_EQ(a.reprovisions, b.reprovisions);
    EXPECT_EQ(a.shard_slots, b.shard_slots);
    EXPECT_EQ(a.estimated_r, b.estimated_r);
    ASSERT_EQ(a.service_r.size(), b.service_r.size());
    for (size_t s = 0; s < a.service_r.size(); ++s) {
        EXPECT_EQ(a.service_r[s], b.service_r[s]);
        EXPECT_EQ(a.service_capacity_qps[s], b.service_capacity_qps[s]);
        EXPECT_EQ(a.service_sla_ms[s], b.service_sla_ms[s]);
    }
    EXPECT_EQ(a.sim.injected, b.sim.injected);
    EXPECT_EQ(a.sim.completed, b.sim.completed);
    EXPECT_EQ(a.sim.dropped, b.sim.dropped);
    EXPECT_EQ(a.sim.rejected, b.sim.rejected);
    EXPECT_EQ(a.sim.mean_ms, b.sim.mean_ms);
    EXPECT_EQ(a.sim.p50_ms, b.sim.p50_ms);
    EXPECT_EQ(a.sim.p99_ms, b.sim.p99_ms);
    EXPECT_EQ(a.sim.max_ms, b.sim.max_ms);
    EXPECT_EQ(a.sim.sla_violations, b.sim.sla_violations);
    EXPECT_EQ(a.sim.sla_violation_rate, b.sim.sla_violation_rate);
    EXPECT_EQ(a.sim.avg_provisioned_power_w,
              b.sim.avg_provisioned_power_w);
    EXPECT_EQ(a.sim.avg_consumed_power_w, b.sim.avg_consumed_power_w);
    ASSERT_EQ(a.sim.intervals.size(), b.sim.intervals.size());
    for (size_t k = 0; k < a.sim.intervals.size(); ++k) {
        const sim::IntervalStats& ia = a.sim.intervals[k];
        const sim::IntervalStats& ib = b.sim.intervals[k];
        EXPECT_EQ(ia.arrivals, ib.arrivals) << "interval " << k;
        EXPECT_EQ(ia.completions, ib.completions) << "interval " << k;
        EXPECT_EQ(ia.dropped, ib.dropped) << "interval " << k;
        EXPECT_EQ(ia.rejected, ib.rejected) << "interval " << k;
        EXPECT_EQ(ia.p50_ms, ib.p50_ms) << "interval " << k;
        EXPECT_EQ(ia.p99_ms, ib.p99_ms) << "interval " << k;
        EXPECT_EQ(ia.sla_violation_rate, ib.sla_violation_rate)
            << "interval " << k;
        EXPECT_EQ(ia.provisioned_power_w, ib.provisioned_power_w)
            << "interval " << k;
        EXPECT_EQ(ia.consumed_power_w, ib.consumed_power_w)
            << "interval " << k;
        EXPECT_EQ(ia.power_capped, ib.power_capped)
            << "interval " << k;
    }
    ASSERT_EQ(a.sim.services.size(), b.sim.services.size());
    for (size_t s = 0; s < a.sim.services.size(); ++s) {
        const sim::ServiceRunStats& sa = a.sim.services[s];
        const sim::ServiceRunStats& sb = b.sim.services[s];
        EXPECT_EQ(sa.injected, sb.injected);
        EXPECT_EQ(sa.completed, sb.completed);
        EXPECT_EQ(sa.dropped, sb.dropped);
        EXPECT_EQ(sa.rejected, sb.rejected);
        EXPECT_EQ(sa.p50_ms, sb.p50_ms);
        EXPECT_EQ(sa.p99_ms, sb.p99_ms);
        EXPECT_EQ(sa.sla_violations, sb.sla_violations);
        EXPECT_EQ(sa.sla_violation_rate, sb.sla_violation_rate);
    }
}

TEST(ScenarioRun, GoldenBitIdenticalToServeTraces)
{
    core::EfficiencyTable table = goldenTable();
    ScenarioSpec spec = goldenSpec();

    // The hand-wired legacy call the spec claims to subsume.
    std::vector<cluster::ServiceSpec> services;
    for (const ServiceScenario& s : spec.services)
        services.push_back(s.spec);
    cluster::HerculesProvisioner provisioner;
    cluster::MultiServeResult direct = cluster::serveTraces(
        table, {ServerType::T2, ServerType::T1}, {2, 1}, services,
        provisioner, spec.serve);

    ScenarioResult via_spec = run(spec, &table);
    expectBitIdentical(via_spec.serve, direct);

    // The spec survives a text round trip with the run untouched.
    std::string err;
    auto reparsed = parseSpec(toText(spec), &err);
    ASSERT_TRUE(reparsed.has_value()) << err;
    ScenarioResult via_text = run(*reparsed, &table);
    expectBitIdentical(via_text.serve, direct);
}

TEST(ScenarioRun, SingletonScheduleEqualsScalarCap)
{
    core::EfficiencyTable table = goldenTable();
    ScenarioSpec scalar = goldenSpec();
    scalar.serve.power_cap_w = 450.0;

    ScenarioSpec sched = goldenSpec();
    sched.serve.power_cap_schedule = {{0.0, 450.0}};

    ScenarioResult a = run(scalar, &table);
    ScenarioResult b = run(sched, &table);
    expectBitIdentical(a.serve, b.serve);
}

TEST(ScenarioRun, ScheduleCapsOnlyInsideWindow)
{
    core::EfficiencyTable table = goldenTable();
    ScenarioSpec spec = goldenSpec();
    // A one-interval brownout in [1h, 1.5h) far below the plan.
    spec.serve.power_cap_schedule = {{1.0, 150.0}, {1.5, 1e9}};

    ScenarioResult r = run(spec, &table);
    ScenarioSpec uncapped = goldenSpec();
    ScenarioResult base = run(uncapped, &table);

    const auto& ivs = r.serve.sim.intervals;
    ASSERT_GE(ivs.size(), 4u);
    EXPECT_FALSE(ivs[0].power_capped);
    EXPECT_FALSE(ivs[1].power_capped);
    EXPECT_TRUE(ivs[2].power_capped);  // [1h, 1.5h)
    EXPECT_LE(ivs[2].provisioned_power_w, 150.0);
    EXPECT_FALSE(ivs[3].power_capped);
    // Outside the window the plan matches the uncapped run.
    EXPECT_EQ(ivs[0].provisioned_power_w,
              base.serve.sim.intervals[0].provisioned_power_w);
    EXPECT_EQ(ivs[3].provisioned_power_w,
              base.serve.sim.intervals[3].provisioned_power_w);
}

TEST(ScenarioRun, UnsortedScheduleIsFatal)
{
    core::EfficiencyTable table = goldenTable();
    ScenarioSpec spec = goldenSpec();
    spec.serve.power_cap_schedule = {{2.0, 100.0}, {1.0, 200.0}};
    EXPECT_DEATH(run(spec, &table), "power_cap_schedule");
}

TEST(ScenarioRun, PeakFracResolvesAgainstTable)
{
    core::EfficiencyTable table = goldenTable();
    ScenarioSpec spec = goldenSpec();
    // RMC1 full-fleet capacity on T2 x2 + T1 x1: 2*2000 + 1200.
    spec.services[0].peak_qps_frac = 0.5;
    resolvePeaks(spec, table);
    EXPECT_DOUBLE_EQ(spec.services[0].spec.load.peak_qps,
                     0.5 * (2 * 2000.0 + 1200.0));
    EXPECT_EQ(spec.services[0].peak_qps_frac, 0.0);
    EXPECT_EQ(spec.services[0].name, "DLRM-RMC1");
    // Services without a frac keep their absolute peak.
    EXPECT_DOUBLE_EQ(spec.services[1].spec.load.peak_qps, 200.0);
}

TEST(ScenarioRun, ValidateSpecCatchesUnrunnableSpecs)
{
    // The non-fatal twin of run()'s validation: what --parse-only
    // (and the CI scenario lint) rejects.
    std::string err;
    EXPECT_TRUE(validateSpec(goldenSpec(), &err));

    ScenarioSpec unsorted = goldenSpec();
    unsorted.serve.power_cap_schedule = {{2.0, 100.0}, {1.0, 200.0}};
    EXPECT_FALSE(validateSpec(unsorted, &err));
    EXPECT_NE(err.find("power_cap_schedule"), std::string::npos);

    EXPECT_FALSE(validateSpec(ScenarioSpec{}, &err));
    EXPECT_NE(err.find("empty fleet"), std::string::npos);

    ScenarioSpec no_services = goldenSpec();
    no_services.services.clear();
    EXPECT_FALSE(validateSpec(no_services, &err));
    EXPECT_NE(err.find("no services"), std::string::npos);

    ScenarioSpec bad_interval = goldenSpec();
    bad_interval.serve.interval_hours = 0.0;
    EXPECT_FALSE(validateSpec(bad_interval, &err));
}

TEST(ScenarioRun, ProvisionerNamesRoundTrip)
{
    for (ProvisionerKind k :
         {ProvisionerKind::Hercules, ProvisionerKind::Greedy,
          ProvisionerKind::PriorityAware, ProvisionerKind::Nh})
        EXPECT_EQ(parseProvisionerKind(provisionerKindName(k)), k);
    EXPECT_FALSE(parseProvisionerKind("bogus").has_value());
}

}  // namespace
}  // namespace hercules::scenario
