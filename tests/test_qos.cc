/**
 * @file
 * Tests of the QoS subsystem: admission-control policies (deadline
 * estimator math, queue caps, reject accounting through ClusterSim),
 * priority-ordered power-cap shedding (priority before QPS/W,
 * deterministic tie-breaks, shed-to-empty termination), and the
 * latency-feedback router's multiplicative weight updates.
 */
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "cluster/serving.h"
#include "qos/admission.h"
#include "qos/feedback.h"
#include "qos/qos.h"
#include "sim/cluster_sim.h"
#include "sim/prepared.h"

namespace hercules {
namespace {

using cluster::PairPerf;
using cluster::ProvisionProblem;
using cluster::shedToPowerCap;
using hw::ServerType;
using model::ModelId;
using sched::Mapping;
using sched::SchedulingConfig;

// ---- vocabulary ----------------------------------------------------------

TEST(Qos, NamesRoundTrip)
{
    for (auto p : {qos::AdmissionPolicy::None,
                   qos::AdmissionPolicy::QueueCap,
                   qos::AdmissionPolicy::Deadline})
        EXPECT_EQ(qos::parseAdmissionPolicy(qos::admissionPolicyName(p)),
                  p);
    EXPECT_FALSE(qos::parseAdmissionPolicy("bogus").has_value());
    for (auto t : {qos::Tier::Latency, qos::Tier::Throughput})
        EXPECT_EQ(qos::parseTier(qos::tierName(t)), t);
    EXPECT_FALSE(qos::parseTier("bogus").has_value());
    // The feedback policy parses by name but stays out of the static
    // sweep the cluster benches iterate.
    EXPECT_EQ(sim::parseRouterPolicy("latency-feedback"),
              sim::RouterPolicy::LatencyFeedback);
    for (sim::RouterPolicy p : sim::allRouterPolicies())
        EXPECT_NE(p, sim::RouterPolicy::LatencyFeedback);
}

// ---- admission controller ------------------------------------------------

TEST(Admission, DeadlineEstimatorMath)
{
    using qos::AdmissionController;
    // A shard retiring 1000 QPS clears its backlog at 1 ms per query:
    // the (outstanding + 1)-th query completes that many ms out.
    EXPECT_DOUBLE_EQ(AdmissionController::estimatedCompletionMs(0, 1000.0),
                     1.0);
    EXPECT_DOUBLE_EQ(AdmissionController::estimatedCompletionMs(9, 1000.0),
                     10.0);
    EXPECT_DOUBLE_EQ(AdmissionController::estimatedCompletionMs(49, 500.0),
                     100.0);
    // No usable weight: never admissible under a deadline.
    EXPECT_TRUE(std::isinf(
        AdmissionController::estimatedCompletionMs(0, 0.0)));
}

TEST(Admission, PolicyDecisions)
{
    qos::AdmissionConfig none;
    EXPECT_TRUE(qos::AdmissionController(none).admit({1000000, 1.0},
                                                     0.001));

    qos::AdmissionConfig cap;
    cap.policy = qos::AdmissionPolicy::QueueCap;
    cap.queue_cap = 4;
    qos::AdmissionController cap_ctl(cap);
    EXPECT_TRUE(cap_ctl.admit({3, 1000.0}, 25.0));
    EXPECT_FALSE(cap_ctl.admit({4, 1000.0}, 25.0));
    EXPECT_FALSE(cap_ctl.admit({5, 1000.0}, 25.0));

    qos::AdmissionConfig dl;
    dl.policy = qos::AdmissionPolicy::Deadline;
    dl.deadline_slack = 1.0;
    qos::AdmissionController dl_ctl(dl);
    // 1000 QPS, 25 ms SLA: backlog 24 completes at exactly 25 ms
    // (admitted), backlog 25 at 26 ms (rejected).
    EXPECT_TRUE(dl_ctl.admit({24, 1000.0}, 25.0));
    EXPECT_FALSE(dl_ctl.admit({25, 1000.0}, 25.0));
    // Slack widens the bar multiplicatively.
    dl.deadline_slack = 2.0;
    EXPECT_TRUE(qos::AdmissionController(dl).admit({25, 1000.0}, 25.0));
}

// ---- admission through ClusterSim ---------------------------------------

sim::PreparedWorkload
preparedT2()
{
    static model::Model m = model::buildModel(ModelId::DlrmRmc1);
    SchedulingConfig cfg;
    cfg.mapping = Mapping::CpuModelBased;
    cfg.cpu_threads = 4;
    cfg.cores_per_thread = 2;
    cfg.batch = 128;
    return sim::prepare(hw::serverSpec(ServerType::T2), m, cfg);
}

std::vector<workload::Query>
uniformTrace(size_t n, double gap_s, int size = 40)
{
    std::vector<workload::Query> trace(n);
    for (size_t i = 0; i < n; ++i) {
        trace[i].id = i;
        trace[i].arrival_s = static_cast<double>(i + 1) * gap_s;
        trace[i].size = size;
        trace[i].pooling_scale = 1.0;
    }
    return trace;
}

TEST(Admission, QueueCapRejectsAndAccounts)
{
    sim::PreparedWorkload w = preparedT2();
    sim::ClusterSim::Options copt;
    copt.admission.policy = qos::AdmissionPolicy::QueueCap;
    copt.admission.queue_cap = 5;
    sim::ClusterSim cluster(copt);
    cluster.addShard(w, 1000.0);

    // A burst far faster than the shard drains: exactly queue_cap
    // queries enter, the rest are rejected (route() returns -2).
    std::vector<workload::Query> burst = uniformTrace(20, 1e-6, 200);
    size_t admitted = 0, rejected = 0;
    for (const auto& q : burst) {
        int s = cluster.route(q);
        if (s >= 0)
            ++admitted;
        else if (s == -2)
            ++rejected;
    }
    EXPECT_EQ(admitted, 5u);
    EXPECT_EQ(rejected, 15u);
    cluster.drainAll();

    sim::IntervalStats st = cluster.harvest(0.0, 10.0);
    EXPECT_EQ(st.rejected, 15u);
    EXPECT_EQ(st.arrivals, 5u);
    EXPECT_EQ(st.dropped, 0u);
    ASSERT_EQ(st.services.size(), 1u);
    EXPECT_EQ(st.services[0].rejected, 15u);
    // Every rejected query is an SLA violation; the denominator holds
    // completions + dropped + rejected.
    EXPECT_GE(st.sla_violations, 15u);
    EXPECT_EQ(st.completions, 5u);
    EXPECT_DOUBLE_EQ(
        st.sla_violation_rate,
        static_cast<double>(st.sla_violations) /
            static_cast<double>(st.completions + st.rejected));
}

TEST(Admission, DeadlineRejectsOnlyUnmeetableQueries)
{
    sim::PreparedWorkload w = preparedT2();
    sim::ClusterSim::Options copt;
    copt.sla_ms = 25.0;
    copt.admission.policy = qos::AdmissionPolicy::Deadline;
    copt.admission.deadline_slack = 1.0;
    sim::ClusterSim cluster(copt);
    // Weight 400 QPS: estimated completion (out + 1) * 2.5 ms, so the
    // 10th outstanding query is the first unmeetable one.
    cluster.addShard(w, 400.0);

    std::vector<workload::Query> burst = uniformTrace(30, 1e-6, 200);
    size_t admitted = 0;
    for (const auto& q : burst)
        if (cluster.route(q) >= 0)
            ++admitted;
    // Admit while (outstanding + 1) * 1000/400 <= 25, i.e. the first
    // 10 queries; the 11th sees a 10-deep backlog (27.5 ms estimate).
    EXPECT_EQ(admitted, 10u);
    cluster.drainAll();

    sim::ClusterSimResult r = cluster.run({}, 1.0);
    EXPECT_EQ(r.rejected, 20u);
    ASSERT_EQ(r.services.size(), 1u);
    EXPECT_EQ(r.services[0].rejected, 20u);
    EXPECT_GE(r.services[0].sla_violations, 20u);
}

TEST(Admission, NonePolicyKeepsLegacyBehaviour)
{
    sim::PreparedWorkload w = preparedT2();
    sim::ClusterSim cluster(sim::ClusterSim::Options{});
    cluster.addShard(w, 1000.0);
    for (const auto& q : uniformTrace(50, 1e-6, 200))
        EXPECT_GE(cluster.route(q), 0);  // unbounded queue admits all
    cluster.drainAll();
    sim::IntervalStats st = cluster.harvest(0.0, 10.0);
    EXPECT_EQ(st.rejected, 0u);
    EXPECT_EQ(st.arrivals, 50u);
}

// ---- priority shedding ---------------------------------------------------

ProvisionProblem
twoByTwoProblem()
{
    ProvisionProblem p({ServerType::T2, ServerType::T3}, {2, 2},
                       {ModelId::DlrmRmc1, ModelId::DlrmRmc2});
    p.setPerf(0, 0, {true, 2000.0, 100.0});  // 20 QPS/W
    p.setPerf(0, 1, {true, 1000.0, 200.0});  // 5  QPS/W
    p.setPerf(1, 0, {true, 3000.0, 150.0});  // 20 QPS/W
    p.setPerf(1, 1, {true, 1200.0, 120.0});  // 10 QPS/W
    return p;
}

TEST(PriorityShed, HigherPriorityKeepsCapacityLonger)
{
    ProvisionProblem p = twoByTwoProblem();
    // Model 1 is the QPS/W-worst (5 QPS/W on T2) but carries the
    // higher priority: shedding must eat every model-0 server first.
    std::vector<std::vector<int>> counts = {{1, 1}, {1, 1}};
    double power = 0.0;
    EXPECT_TRUE(
        shedToPowerCap(p, counts, 330.0, &power, {0, 1}));
    // Model-0 pairs (100 + 150 W) go first even though they are the
    // most efficient; the cap is met with model 1 untouched.
    EXPECT_EQ(counts[0][0], 0);
    EXPECT_EQ(counts[1][0], 0);
    EXPECT_EQ(counts[0][1], 1);
    EXPECT_EQ(counts[1][1], 1);
    EXPECT_DOUBLE_EQ(power, 320.0);

    // Priority-blind control: the same cap sheds by pure QPS/W, which
    // eats the high-priority model's capacity instead.
    std::vector<std::vector<int>> blind = {{1, 1}, {1, 1}};
    EXPECT_TRUE(shedToPowerCap(p, blind, 330.0, &power));
    EXPECT_EQ(blind[0][1], 0);  // 5 QPS/W shed first
    EXPECT_EQ(blind[1][1], 0);  // 10 QPS/W next
    EXPECT_EQ(blind[0][0] + blind[1][0], 2);
}

TEST(PriorityShed, EqualPrioritiesReduceToPureQpsPerWatt)
{
    ProvisionProblem p = twoByTwoProblem();
    std::vector<std::vector<int>> a = {{2, 2}, {2, 2}};
    std::vector<std::vector<int>> b = a;
    double pa = 0.0, pb = 0.0;
    shedToPowerCap(p, a, 500.0, &pa);
    shedToPowerCap(p, b, 500.0, &pb, {3, 3});  // equal priorities
    EXPECT_EQ(a, b);
    EXPECT_DOUBLE_EQ(pa, pb);
}

TEST(PriorityShed, ExactQpsPerWattTiesBreakByTypeServiceOrder)
{
    // All four pairs at exactly 10 QPS/W: the victim must always be
    // the lowest (type, service) pair still active — scan order, fully
    // deterministic.
    ProvisionProblem p({ServerType::T2, ServerType::T3}, {1, 1},
                       {ModelId::DlrmRmc1, ModelId::DlrmRmc2});
    p.setPerf(0, 0, {true, 1000.0, 100.0});
    p.setPerf(0, 1, {true, 1000.0, 100.0});
    p.setPerf(1, 0, {true, 1000.0, 100.0});
    p.setPerf(1, 1, {true, 1000.0, 100.0});
    std::vector<std::vector<int>> counts = {{1, 1}, {1, 1}};
    double power = 0.0;
    EXPECT_TRUE(shedToPowerCap(p, counts, 250.0, &power));
    // 400 W -> shed (0,0), then (0,1): 200 W fits.
    EXPECT_EQ(counts, (std::vector<std::vector<int>>{{0, 0}, {1, 1}}));
    EXPECT_DOUBLE_EQ(power, 200.0);
}

TEST(PriorityShed, CapBelowCheapestServerShedsToEmptyAndTerminates)
{
    ProvisionProblem p = twoByTwoProblem();
    std::vector<std::vector<int>> counts = {{2, 1}, {1, 2}};
    double power = 0.0;
    // 100 W cap below the cheapest single server (100 W pair exists
    // but two of them exceed the cap anyway once others shed): with a
    // 50 W cap nothing can stay. Must terminate with an empty matrix
    // and *exactly* zero power, not loop or report -0.000 residue.
    EXPECT_TRUE(shedToPowerCap(p, counts, 50.0, &power));
    for (const auto& row : counts)
        for (int c : row)
            EXPECT_EQ(c, 0);
    EXPECT_EQ(power, 0.0);
    EXPECT_FALSE(std::signbit(power));
}

TEST(PriorityShed, ZeroPowerPairIsNeverTheVictimEvenAtLowPriority)
{
    // A zero-power pair reclaims nothing when shed: it must rank after
    // every power-consuming pair no matter how low its priority, or
    // the shed loop wipes out a service for free without getting any
    // closer to the cap.
    ProvisionProblem p({ServerType::T2, ServerType::T3}, {2, 2},
                       {ModelId::DlrmRmc1, ModelId::DlrmRmc2});
    p.setPerf(0, 0, {true, 2000.0, 0.0});    // model 0: free pair
    p.setPerf(0, 1, {true, 1000.0, 200.0});
    p.setPerf(1, 0, {true, 3000.0, 150.0});
    p.setPerf(1, 1, {true, 1200.0, 120.0});
    // Model 0 carries the *lowest* priority, but its T2 pair is free:
    // shedding starts from model 0's power-consuming T3 pair, and the
    // free pair survives untouched.
    std::vector<std::vector<int>> counts = {{1, 1}, {1, 1}};
    double power = 0.0;
    EXPECT_TRUE(shedToPowerCap(p, counts, 350.0, &power, {0, 1}));
    EXPECT_EQ(counts[0][0], 1);  // free pair kept
    EXPECT_EQ(counts[1][0], 0);  // model 0's real power shed first
    EXPECT_DOUBLE_EQ(power, 320.0);
}

// ---- feedback weights ----------------------------------------------------

TEST(Feedback, MultiplicativeUpdateRules)
{
    qos::FeedbackConfig cfg;  // gain 0.3, floor 0.05
    const double base = 1000.0;

    // Hot shard (p99 over SLA) loses weight, clamped to the max step.
    double w = qos::updateFeedbackWeight(base, base, 50.0, 25.0, cfg);
    EXPECT_DOUBLE_EQ(w, base * 0.7);  // 25/50 = 0.5 clamps to 1 - gain
    // Mildly hot: exact multiplicative factor sla / p99.
    w = qos::updateFeedbackWeight(base, base, 30.0, 25.0, cfg);
    EXPECT_DOUBLE_EQ(w, base * 25.0 / 30.0);
    // Healthy shard recovers toward — but never beyond — the base.
    w = qos::updateFeedbackWeight(700.0, base, 10.0, 25.0, cfg);
    EXPECT_DOUBLE_EQ(w, 700.0 * 1.3);
    w = qos::updateFeedbackWeight(900.0, base, 10.0, 25.0, cfg);
    EXPECT_DOUBLE_EQ(w, base);  // 900 * 1.3 clamps at base
    // Dark window (no completions) also recovers at the bounded rate.
    w = qos::updateFeedbackWeight(500.0, base, 0.0, 25.0, cfg);
    EXPECT_DOUBLE_EQ(w, 650.0);
    // The floor keeps a condemned shard probe-able.
    w = base;
    for (int i = 0; i < 100; ++i)
        w = qos::updateFeedbackWeight(w, base, 1000.0, 25.0, cfg);
    EXPECT_DOUBLE_EQ(w, cfg.floor_frac * base);
}

TEST(Feedback, RouterShiftsShareAwayFromSlowShard)
{
    model::Model m = model::buildModel(ModelId::DlrmRmc1);
    SchedulingConfig slow_cfg;
    slow_cfg.mapping = Mapping::CpuModelBased;
    slow_cfg.cpu_threads = 1;
    slow_cfg.cores_per_thread = 1;
    slow_cfg.batch = 64;
    SchedulingConfig fast_cfg;
    fast_cfg.mapping = Mapping::CpuModelBased;
    fast_cfg.cpu_threads = 10;
    fast_cfg.cores_per_thread = 2;
    fast_cfg.batch = 128;
    sim::PreparedWorkload slow =
        sim::prepare(hw::serverSpec(ServerType::T2), m, slow_cfg);
    sim::PreparedWorkload fast =
        sim::prepare(hw::serverSpec(ServerType::T2), m, fast_cfg);

    // Both shards claim the same tuple weight, but shard 0 is actually
    // far slower: its window p99 blows the SLA, feedback cuts its
    // weight each interval, and the second half of the run routes
    // measurably less traffic to it. The static hercules router, blind
    // to observed latency, keeps the 50/50 split forever.
    auto runShare = [&](sim::RouterPolicy policy) {
        sim::ClusterSim::Options copt;
        copt.router = policy;
        copt.sla_ms = 10.0;
        sim::ClusterSim cluster(copt);
        cluster.addShard(slow, 1000.0);
        cluster.addShard(fast, 1000.0);
        cluster.run(uniformTrace(1200, 0.00125, 400), 0.25);
        const auto& per_shard = cluster.injectedPerShard();
        return static_cast<double>(per_shard[0]) /
               static_cast<double>(per_shard[0] + per_shard[1]);
    };
    double fb_share = runShare(sim::RouterPolicy::LatencyFeedback);
    double static_share = runShare(sim::RouterPolicy::HerculesWeighted);
    EXPECT_NEAR(static_share, 0.5, 0.01);  // blind to the slowness
    EXPECT_LT(fb_share, 0.4);              // feedback sheds the slow shard
    EXPECT_GT(fb_share, 0.0);              // floor keeps probing it
}

TEST(Feedback, StalledShardIsPenalizedNotRecovered)
{
    sim::PreparedWorkload w = preparedT2();
    sim::ClusterSim::Options copt;
    copt.router = sim::RouterPolicy::LatencyFeedback;
    copt.sla_ms = 25.0;
    sim::ClusterSim cluster(copt);
    cluster.addShard(w, 1000.0);

    // A backlog so deep that nothing completes inside the first
    // window: the shard is *stalled*, the very opposite of dark. Its
    // weight must take the full penalty step — rewarding it with the
    // dark-window recovery would route the stalled shard its full
    // share exactly when it is drowning.
    for (const auto& q : uniformTrace(2000, 1e-7, 500))
        cluster.route(q);
    cluster.advanceTo(0.001);  // far before the backlog drains
    sim::IntervalStats st = cluster.harvest(0.0, 0.001);
    ASSERT_EQ(st.completions, 0u);
    ASSERT_GT(cluster.outstanding(0), 0u);
    EXPECT_DOUBLE_EQ(cluster.feedbackWeight(0), 700.0);  // 1 - gain
    cluster.drainAll();
}

TEST(ClusterSim, ServiceClassSlaFallback)
{
    sim::PreparedWorkload w = preparedT2();
    sim::ClusterSim::Options copt;
    copt.sla_ms = 25.0;
    copt.service_sla_ms = {40.0};  // covers service 0 only
    qos::ServiceClass hi;
    hi.priority = 3;
    hi.sla_ms = 10.0;
    copt.service_class = {hi, hi};  // services 0 and 1
    sim::ClusterSim cluster(copt);
    cluster.addShard(w, 1000.0, 0);
    cluster.addShard(w, 1000.0, 1);

    // Resolution order: explicit service_sla_ms, then the QoS class's
    // sla_ms, then the cluster-wide default.
    EXPECT_DOUBLE_EQ(cluster.slaMs(0), 40.0);
    EXPECT_DOUBLE_EQ(cluster.slaMs(1), 10.0);
    EXPECT_DOUBLE_EQ(cluster.slaMs(7), 25.0);
    EXPECT_EQ(cluster.serviceClass(1).priority, 3);
    EXPECT_EQ(cluster.serviceClass(7).priority, 0);  // default class
}

TEST(Feedback, WeightsRecoverAfterLoadSubsides)
{
    sim::PreparedWorkload w = preparedT2();
    sim::ClusterSim::Options copt;
    copt.router = sim::RouterPolicy::LatencyFeedback;
    copt.sla_ms = 5.0;
    sim::ClusterSim cluster(copt);
    cluster.addShard(w, 1000.0);

    // Overload one interval to crush the weight...
    for (const auto& q : uniformTrace(400, 0.0002, 200))
        cluster.route(q);
    cluster.advanceTo(1.0);
    cluster.harvest(0.0, 1.0);
    double crushed = cluster.feedbackWeight(0);
    EXPECT_LT(crushed, 1000.0);

    // ...then harvest idle windows: bounded recovery back to base.
    cluster.drainAll();
    double t = 2.0;
    for (int i = 0; i < 20; ++i, t += 1.0) {
        cluster.advanceTo(t);
        cluster.harvest(t - 1.0, t);
    }
    EXPECT_DOUBLE_EQ(cluster.feedbackWeight(0), 1000.0);
}

// ---- cross-shard admission retry -----------------------------------------

TEST(AdmissionRetry, SingleShardBehaviourUnchanged)
{
    // With one shard the retry has nowhere to go: a run with the
    // retry enabled (the default) is identical to one without it —
    // the pre-retry pin.
    sim::PreparedWorkload w = preparedT2();
    auto runOne = [&](bool retry) {
        sim::ClusterSim::Options copt;
        copt.admission.policy = qos::AdmissionPolicy::QueueCap;
        copt.admission.queue_cap = 5;
        copt.admission.cross_shard_retry = retry;
        sim::ClusterSim cluster(copt);
        cluster.addShard(w, 1000.0);
        std::vector<workload::Query> burst =
            uniformTrace(20, 1e-6, 200);
        return cluster.run(burst, 10.0);
    };
    sim::ClusterSimResult with = runOne(true);
    sim::ClusterSimResult without = runOne(false);
    EXPECT_EQ(with.injected, without.injected);
    EXPECT_EQ(with.rejected, without.rejected);
    EXPECT_EQ(with.completed, without.completed);
    EXPECT_EQ(with.p99_ms, without.p99_ms);
    EXPECT_EQ(with.sla_violations, without.sla_violations);
    EXPECT_EQ(with.admission_retries, 0u);
    EXPECT_EQ(without.admission_retries, 0u);
    EXPECT_EQ(with.rejected, 15u);
}

TEST(AdmissionRetry, RejectReOffersToNextBestShard)
{
    // Two shards with very unequal routing weights: the weighted
    // router sends the burst to shard 0 until its queue cap bites;
    // the retry then re-offers to shard 1 instead of rejecting.
    sim::PreparedWorkload w = preparedT2();
    sim::ClusterSim::Options copt;
    copt.admission.policy = qos::AdmissionPolicy::QueueCap;
    copt.admission.queue_cap = 4;
    sim::ClusterSim cluster(copt);
    cluster.addShard(w, 1000.0);
    cluster.addShard(w, 1.0);  // near-zero routing share

    size_t admitted = 0, rejected = 0;
    for (const auto& q : uniformTrace(8, 1e-6, 200)) {
        int s = cluster.route(q);
        if (s >= 0)
            ++admitted;
        else if (s == -2)
            ++rejected;
    }
    // Both queues fill before anything rejects: 4 + 4 admitted.
    EXPECT_EQ(admitted, 8u);
    EXPECT_EQ(rejected, 0u);
    EXPECT_EQ(cluster.injectedPerShard()[0], 4u);
    EXPECT_EQ(cluster.injectedPerShard()[1], 4u);
    EXPECT_EQ(cluster.admissionRetries(), 4u);

    // Once every shard is at its cap the query is rejected for real.
    workload::Query q;
    q.id = 99;
    q.arrival_s = 1e-5;
    q.size = 200;
    q.pooling_scale = 1.0;
    EXPECT_EQ(cluster.route(q), -2);
}

TEST(AdmissionRetry, DisabledRetryRejectsAtThePickedShard)
{
    // Same setup with the retry off: the weighted router keeps
    // picking the heavy shard, so its cap rejects even though the
    // light shard has room — the legacy single-pick behaviour.
    sim::PreparedWorkload w = preparedT2();
    sim::ClusterSim::Options copt;
    copt.admission.policy = qos::AdmissionPolicy::QueueCap;
    copt.admission.queue_cap = 4;
    copt.admission.cross_shard_retry = false;
    sim::ClusterSim cluster(copt);
    cluster.addShard(w, 1000.0);
    cluster.addShard(w, 1.0);

    size_t admitted = 0, rejected = 0;
    for (const auto& q : uniformTrace(8, 1e-6, 200)) {
        int s = cluster.route(q);
        if (s >= 0)
            ++admitted;
        else if (s == -2)
            ++rejected;
    }
    EXPECT_LT(admitted, 8u);
    EXPECT_GT(rejected, 0u);
    EXPECT_EQ(cluster.injectedPerShard()[1], 0u);
}

}  // namespace
}  // namespace hercules
