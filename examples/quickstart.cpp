/**
 * @file
 * Quickstart: profile one recommendation model on one server type.
 *
 * Demonstrates the core Hercules offline-profiling flow:
 *   1. build a production-scale model from the zoo (Table I);
 *   2. pick a server architecture from the catalog (Table II);
 *   3. run the baseline (DeepRecSys-style) scheduler search;
 *   4. run the Hercules gradient-based search over the full
 *      parallelism space Psp(M + D + O);
 *   5. print the efficiency tuple (QPS, power) of both.
 *
 * Usage: quickstart [model] [server] [sla_ms]
 *   model:  DLRM-RMC1 | DLRM-RMC2 | DLRM-RMC3 | MT-WnD | DIN | DIEN
 *   server: T1..T10
 */
#include <cstdio>
#include <cstring>
#include <string>

#include "core/profiler.h"
#include "sched/baselines.h"
#include "util/table.h"

using namespace hercules;

int
main(int argc, char** argv)
{
    const char* model_name = argc > 1 ? argv[1] : "DLRM-RMC1";
    const char* server_name = argc > 2 ? argv[2] : "T2";

    model::ModelId mid = model::ModelId::DlrmRmc1;
    bool found = false;
    for (model::ModelId id : model::allModels()) {
        if (std::strcmp(model::modelName(id), model_name) == 0) {
            mid = id;
            found = true;
        }
    }
    if (!found) {
        std::fprintf(stderr, "unknown model '%s'\n", model_name);
        return 1;
    }
    hw::ServerType st = hw::ServerType::T2;
    found = false;
    for (hw::ServerType t : hw::allServerTypes()) {
        if (std::strcmp(hw::serverTypeName(t), server_name) == 0) {
            st = t;
            found = true;
        }
    }
    if (!found) {
        std::fprintf(stderr, "unknown server '%s'\n", server_name);
        return 1;
    }

    model::Model m = model::buildModel(mid);
    const hw::ServerSpec& server = hw::serverSpec(st);
    double sla_ms = argc > 3 ? std::atof(argv[3]) : m.sla_ms;

    std::printf("== Hercules quickstart ==\n");
    std::printf("model : %s (%.1f GB embeddings, SLA %.0f ms)\n",
                m.name.c_str(),
                static_cast<double>(m.embeddingBytes()) / (1ll << 30),
                sla_ms);
    std::printf("server: %s (%s)\n\n", hw::serverTypeName(st),
                server.name.c_str());

    sched::SearchOptions opt;

    sched::SearchResult base =
        sched::baselineSearch(server, m, sla_ms, opt);
    sched::SearchResult herc =
        sched::herculesTaskSearch(server, m, sla_ms, opt);

    TablePrinter t({"Scheduler", "Best config", "QPS", "Tail (ms)",
                    "Peak power (W)", "QPS/W", "Evals"});
    auto addRow = [&](const char* name, const sched::SearchResult& r) {
        if (r.best) {
            t.addRow({name, r.best->str(), fmtDouble(r.best_qps, 0),
                      fmtDouble(r.best_point.result.tail_ms, 1),
                      fmtDouble(r.best_point.result.peak_power_w, 0),
                      fmtDouble(r.best_point.result.qps_per_watt, 2),
                      std::to_string(r.evals)});
        } else {
            t.addRow({name, "(infeasible)", "-", "-", "-", "-",
                      std::to_string(r.evals)});
        }
    };
    addRow("Baseline (DeepRecSys/Baymax)", base);
    addRow("Hercules", herc);
    t.print();

    if (base.best && herc.best && base.best_qps > 0.0) {
        std::printf("\nHercules speedup over baseline: %.2fx "
                    "(QPS), %.2fx (QPS/W)\n",
                    herc.best_qps / base.best_qps,
                    herc.best_point.result.qps_per_watt /
                        base.best_point.result.qps_per_watt);
    }
    return 0;
}
