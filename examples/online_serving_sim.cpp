/**
 * @file
 * Online serving simulation: a heterogeneous cluster (CPU + NMP + GPU
 * servers) rides a full day of synchronized diurnal load for two
 * recommendation services, re-provisioned every 30 minutes by a choice
 * of cluster scheduler.
 *
 * Demonstrates the Hercules online-serving stage: efficiency-tuple
 * lookup, over-provision-rate estimation from the load history, and
 * interval-by-interval activation/release of servers.
 *
 * Usage: online_serving_sim [hercules|greedy|nh]
 */
#include <cstdio>
#include <cstring>
#include <memory>

#include "cluster/cluster_manager.h"
#include "core/profiler.h"
#include "util/table.h"

using namespace hercules;

int
main(int argc, char** argv)
{
    const char* policy_name = argc > 1 ? argv[1] : "hercules";
    std::unique_ptr<cluster::Provisioner> policy;
    if (std::strcmp(policy_name, "greedy") == 0)
        policy = std::make_unique<cluster::GreedyProvisioner>();
    else if (std::strcmp(policy_name, "nh") == 0)
        policy = std::make_unique<cluster::NhProvisioner>(17);
    else
        policy = std::make_unique<cluster::HerculesProvisioner>();

    std::printf("== 24h online serving (%s scheduler) ==\n\n",
                policy->name());

    const std::vector<hw::ServerType> fleet = {
        hw::ServerType::T2, hw::ServerType::T3, hw::ServerType::T7};
    const std::vector<model::ModelId> services = {
        model::ModelId::DlrmRmc1, model::ModelId::DlrmRmc2};

    std::printf("profiling the fleet...\n");
    core::ProfilerOptions popt;
    popt.servers = fleet;
    popt.models = services;
    core::EfficiencyTable table = core::offlineProfile(popt);
    cluster::ProvisionProblem problem =
        cluster::ProvisionProblem::fromTable(table, fleet, services);

    std::vector<cluster::ClusterWorkload> workloads(2);
    workloads[0].model = services[0];
    workloads[0].load.peak_qps = 60'000;
    workloads[0].load.seed = 5;
    workloads[1].model = services[1];
    workloads[1].load.peak_qps = 12'000;
    workloads[1].load.seed = 6;

    // The over-provision rate R comes from the load history (paper
    // §IV-C): the largest inter-interval increase.
    workload::DiurnalLoad probe(workloads[0].load);
    double r = cluster::estimateOverprovisionRate(probe, 0.5);
    std::printf("estimated over-provision rate R = %.1f%%\n\n", r * 100.0);

    cluster::ClusterManagerOptions opt;
    opt.interval_hours = 0.5;
    opt.overprovision_rate = r;
    cluster::ClusterRunResult run =
        cluster::runCluster(problem, workloads, *policy, opt);

    TablePrinter t({"Hour", "RMC1 load", "RMC2 load", "T2 on", "T3 on",
                    "T7 on", "Power (kW)", "OK"});
    for (size_t i = 0; i < run.intervals.size(); i += 3) {
        const auto& iv = run.intervals[i];
        t.addRow({fmtDouble(iv.t_hours, 1), fmtEng(iv.loads[0], 1),
                  fmtEng(iv.loads[1], 1),
                  std::to_string(iv.alloc.activatedOfType(0)),
                  std::to_string(iv.alloc.activatedOfType(1)),
                  std::to_string(iv.alloc.activatedOfType(2)),
                  fmtDouble(iv.provisioned_power_w / 1e3, 2),
                  iv.satisfied ? "y" : "N"});
    }
    t.print();

    std::printf("\npeak: %d servers / %.1f kW;  average: %.1f servers / "
                "%.1f kW;  unsatisfied intervals: %d\n",
                run.peak_servers, run.peak_power_w / 1e3,
                run.avg_servers, run.avg_power_w / 1e3,
                run.unsatisfied_intervals);
    std::printf("tip: run with 'greedy' or 'nh' to compare policies.\n");
    return 0;
}
