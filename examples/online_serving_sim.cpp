/**
 * @file
 * Online serving simulation: a heterogeneous cluster (CPU + NMP + GPU
 * servers) rides a day of synchronized diurnal load, re-provisioned
 * every interval by a choice of cluster scheduler.
 *
 * Two modes:
 *  - analytic (default): the Fig 13 capacity view — efficiency-tuple
 *    lookup, over-provision-rate estimation, interval-by-interval
 *    activation/release, provisioned power;
 *  - --trace: end-to-end serving — a timestamped diurnal arrival trace
 *    flows through simulated server shards behind a query router, and
 *    the run reports real tail latency and SLA violations instead of
 *    only analytic capacity.
 *
 * Usage: online_serving_sim [hercules|greedy|nh] [--trace]
 *          [--horizon H] [--interval I]
 *          [--router rr|jsq|p2c|hercules|latency-feedback]
 *          [--services N] [--admission none|queue_cap|deadline]
 *          [--priorities p0,p1,...] [--power-cap W]
 *
 * With --services N >= 2, trace mode co-serves N services (RMC1,
 * RMC2, RMC3 prefix) with phase-shifted diurnal peaks on the shared
 * fleet via cluster::serveTraces, reporting per-service tail latency
 * and SLA violations next to the cluster aggregate.
 *
 * QoS: --admission picks the per-shard admission policy (src/qos/),
 * --priorities assigns per-service shedding priorities (higher keeps
 * capacity longer when --power-cap forces shedding), and --router
 * latency-feedback routes on p99-feedback-adjusted weights.
 * Per-service admit / reject / drop / violation lines are printed for
 * every trace run.
 */
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <memory>
#include <string>

#include <vector>

#include "cluster/cluster_manager.h"
#include "cluster/serving.h"
#include "core/profiler.h"
#include "qos/qos.h"
#include "util/table.h"

using namespace hercules;

namespace {

struct Args
{
    std::string policy = "hercules";
    bool trace_mode = false;
    double horizon_hours = 24.0;
    double interval_hours = 0.5;
    int num_services = 1;
    sim::RouterPolicy router = sim::RouterPolicy::HerculesWeighted;
    qos::AdmissionPolicy admission = qos::AdmissionPolicy::None;
    std::vector<int> priorities;  ///< per service; empty = all equal
    /** Global power cap (W); infinity = uncapped. */
    double power_cap_w = std::numeric_limits<double>::infinity();
};

void
usage(const char* argv0)
{
    std::fprintf(
        stderr,
        "usage: %s [hercules|greedy|nh] [options]\n"
        "  --trace         serve a diurnal arrival trace through\n"
        "                  simulated server shards (reports tail\n"
        "                  latency); default is the analytic view\n"
        "  --horizon H     horizon in hours (default 24)\n"
        "  --interval I    re-provisioning interval in hours (0.5)\n"
        "  --router R      trace-mode query router: rr, jsq, p2c,\n"
        "                  hercules, latency-feedback (default\n"
        "                  hercules)\n"
        "  --services N    co-serve N services (1-3) in trace mode:\n"
        "                  phase-shifted diurnal peaks on one shared\n"
        "                  fleet, per-service SLA accounting\n"
        "  --admission A   per-shard admission policy: none,\n"
        "                  queue_cap, deadline (default none)\n"
        "  --priorities P  comma-separated per-service shedding\n"
        "                  priorities, e.g. 2,1,0 (higher keeps\n"
        "                  capacity longer; only bites under\n"
        "                  --power-cap)\n"
        "  --power-cap W   global power cap in watts: the interval\n"
        "                  allocation is shed (lowest priority, then\n"
        "                  worst QPS/W first) until it fits\n"
        "tip: --trace --horizon 6 finishes in seconds.\n",
        argv0);
}

bool
parseArgs(int argc, char** argv, Args& out)
{
    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        auto value = [&]() -> const char* {
            return i + 1 < argc ? argv[++i] : nullptr;
        };
        if (a == "hercules" || a == "greedy" || a == "nh") {
            out.policy = a;
        } else if (a == "--trace") {
            out.trace_mode = true;
        } else if (a == "--horizon") {
            const char* v = value();
            if (v == nullptr || std::atof(v) <= 0.0)
                return false;
            out.horizon_hours = std::atof(v);
        } else if (a == "--interval") {
            const char* v = value();
            if (v == nullptr || std::atof(v) <= 0.0)
                return false;
            out.interval_hours = std::atof(v);
        } else if (a == "--router") {
            const char* v = value();
            if (v == nullptr)
                return false;
            auto p = sim::parseRouterPolicy(v);
            if (!p.has_value())
                return false;
            out.router = *p;
        } else if (a == "--services") {
            const char* v = value();
            if (v == nullptr || std::atoi(v) < 1 || std::atoi(v) > 3)
                return false;
            out.num_services = std::atoi(v);
        } else if (a == "--admission") {
            const char* v = value();
            if (v == nullptr)
                return false;
            auto p = qos::parseAdmissionPolicy(v);
            if (!p.has_value())
                return false;
            out.admission = *p;
        } else if (a == "--power-cap") {
            const char* v = value();
            if (v == nullptr || std::atof(v) <= 0.0)
                return false;
            out.power_cap_w = std::atof(v);
        } else if (a == "--priorities") {
            const char* v = value();
            if (v == nullptr)
                return false;
            out.priorities.clear();
            std::string list = v;
            size_t pos = 0;
            while (pos <= list.size()) {
                size_t comma = list.find(',', pos);
                if (comma == std::string::npos)
                    comma = list.size();
                if (comma == pos)
                    return false;
                out.priorities.push_back(
                    std::atoi(list.substr(pos, comma - pos).c_str()));
                pos = comma + 1;
            }
        } else {
            return false;
        }
    }
    return true;
}

/**
 * The per-service QoS accounting lines every trace run prints:
 * admitted vs rejected (admission control) vs dropped (no capacity),
 * and the violation count behind the rate.
 */
void
printQosLines(const std::vector<sim::ServiceRunStats>& services,
              const std::vector<model::ModelId>& models)
{
    for (size_t s = 0; s < services.size(); ++s) {
        const sim::ServiceRunStats& svc = services[s];
        size_t offered = svc.injected + svc.dropped + svc.rejected;
        std::printf("  qos %-12s admitted %zu/%zu, rejected %zu, "
                    "dropped %zu, violations %zu (%.2f%%)\n",
                    model::modelName(models[s]), svc.injected, offered,
                    svc.rejected, svc.dropped, svc.sla_violations,
                    svc.sla_violation_rate * 100.0);
    }
}

std::unique_ptr<cluster::Provisioner>
makePolicy(const std::string& name)
{
    if (name == "greedy")
        return std::make_unique<cluster::GreedyProvisioner>();
    if (name == "nh")
        return std::make_unique<cluster::NhProvisioner>(17);
    return std::make_unique<cluster::HerculesProvisioner>();
}

int
runAnalytic(const Args& args, cluster::Provisioner& policy,
            const core::EfficiencyTable& table,
            const std::vector<hw::ServerType>& fleet,
            const std::vector<model::ModelId>& services)
{
    cluster::ProvisionProblem problem =
        cluster::ProvisionProblem::fromTable(table, fleet, services);

    std::vector<cluster::ClusterWorkload> workloads(2);
    workloads[0].model = services[0];
    workloads[0].load.peak_qps = 60'000;
    workloads[0].load.seed = 5;
    workloads[1].model = services[1];
    workloads[1].load.peak_qps = 12'000;
    workloads[1].load.seed = 6;

    // The over-provision rate R comes from the load history (paper
    // §IV-C): the largest inter-interval increase.
    workload::DiurnalLoad probe(workloads[0].load);
    double r = cluster::estimateOverprovisionRate(probe,
                                                  args.interval_hours);
    std::printf("estimated over-provision rate R = %.1f%%\n\n", r * 100.0);

    cluster::ClusterManagerOptions opt;
    opt.horizon_hours = args.horizon_hours;
    opt.interval_hours = args.interval_hours;
    opt.overprovision_rate = r;
    cluster::ClusterRunResult run =
        cluster::runCluster(problem, workloads, policy, opt);

    TablePrinter t({"Hour", "RMC1 load", "RMC2 load", "T2 on", "T3 on",
                    "T7 on", "Power (kW)", "OK"});
    for (size_t i = 0; i < run.intervals.size(); i += 3) {
        const auto& iv = run.intervals[i];
        t.addRow({fmtDouble(iv.t_hours, 1), fmtEng(iv.loads[0], 1),
                  fmtEng(iv.loads[1], 1),
                  std::to_string(iv.alloc.activatedOfType(0)),
                  std::to_string(iv.alloc.activatedOfType(1)),
                  std::to_string(iv.alloc.activatedOfType(2)),
                  fmtDouble(iv.provisioned_power_w / 1e3, 2),
                  iv.satisfied ? "y" : "N"});
    }
    t.print();

    std::printf("\npeak: %d servers / %.1f kW;  average: %.1f servers / "
                "%.1f kW;  unsatisfied intervals: %d\n",
                run.peak_servers, run.peak_power_w / 1e3,
                run.avg_servers, run.avg_power_w / 1e3,
                run.unsatisfied_intervals);
    std::printf("tip: run with 'greedy' or 'nh' to compare policies, or "
                "--trace for end-to-end latency.\n");
    return 0;
}

int
runMultiTrace(const Args& args, cluster::Provisioner& policy,
              const core::EfficiencyTable& table,
              const std::vector<hw::ServerType>& fleet,
              const std::vector<model::ModelId>& services)
{
    const std::vector<int> slots = {2, 2, 1};
    const size_t S = services.size();

    std::vector<cluster::ServiceSpec> specs(S);
    for (size_t s = 0; s < S; ++s) {
        double capacity = 0.0;
        for (size_t h = 0; h < fleet.size(); ++h) {
            const core::EfficiencyEntry* e =
                table.get(fleet[h], services[s]);
            if (e != nullptr && e->feasible)
                capacity += slots[h] * e->qps;
        }
        specs[s].model = services[s];
        specs[s].load.peak_qps = 0.5 / static_cast<double>(S) * capacity;
        specs[s].load.trough_frac = 0.35;
        // Spread the daily peaks: co-serving rides the phase offsets.
        specs[s].load.peak_hour =
            20.0 - 8.0 * static_cast<double>(s);
        specs[s].load.seed = 5 + s;
        if (s < args.priorities.size())
            specs[s].qos.priority = args.priorities[s];
    }

    cluster::TraceServeOptions opt;
    opt.horizon_hours = args.horizon_hours;
    opt.interval_hours = args.interval_hours;
    opt.router = args.router;
    opt.admission.policy = args.admission;
    opt.power_cap_w = args.power_cap_w;
    opt.trace.time_compression = 480.0;
    opt.trace.seed = 42;

    std::printf("co-serving %zu services on T2 x%d + T3 x%d + T7 x%d, "
                "router %s, admission %s\n\n",
                S, slots[0], slots[1], slots[2],
                sim::routerPolicyName(opt.router),
                qos::admissionPolicyName(args.admission));

    cluster::MultiServeResult r = cluster::serveTraces(
        table, fleet, slots, specs, policy, opt);

    TablePrinter t({"Service", "Peak QPS", "SLA (ms)", "Completed",
                    "Dropped", "p50 (ms)", "p99 (ms)", "SLA viol"});
    for (size_t s = 0; s < S; ++s) {
        const sim::ServiceRunStats& svc = r.sim.services[s];
        t.addRow({model::modelName(services[s]),
                  fmtEng(specs[s].load.peak_qps, 1),
                  fmtDouble(r.service_sla_ms[s], 0),
                  std::to_string(svc.completed),
                  std::to_string(svc.dropped),
                  fmtDouble(svc.p50_ms, 2), fmtDouble(svc.p99_ms, 2),
                  fmtPercent(svc.sla_violation_rate, 2)});
    }
    t.print();
    std::printf("\n");
    printQosLines(r.sim.services, services);

    std::printf("\n%zu queries served end to end: p50 %.2f ms, p99 "
                "%.2f ms;  violations %.2f%%;  re-provisions: %d;  avg "
                "power %.2f kW provisioned / %.2f kW consumed\n",
                r.sim.completed, r.sim.p50_ms, r.sim.p99_ms,
                r.sim.sla_violation_rate * 100.0, r.reprovisions,
                r.sim.avg_provisioned_power_w / 1e3,
                r.sim.avg_consumed_power_w / 1e3);
    std::printf("tip: compare '--services 1' to see what co-serving "
                "changes.\n");
    return 0;
}

int
runTrace(const Args& args, cluster::Provisioner& policy,
         const core::EfficiencyTable& table,
         const std::vector<hw::ServerType>& fleet)
{
    const model::ModelId model = model::ModelId::DlrmRmc1;
    const std::vector<int> slots = {2, 2, 1};

    double capacity = 0.0;
    for (size_t h = 0; h < fleet.size(); ++h) {
        const core::EfficiencyEntry* e = table.get(fleet[h], model);
        if (e != nullptr && e->feasible)
            capacity += slots[h] * e->qps;
    }

    workload::DiurnalConfig load;
    load.peak_qps = 0.6 * capacity;
    load.trough_frac = 0.35;
    load.seed = 5;

    cluster::TraceServeOptions opt;
    opt.horizon_hours = args.horizon_hours;
    opt.interval_hours = args.interval_hours;
    opt.sla_ms = model::buildModel(model).sla_ms;
    opt.router = args.router;
    opt.admission.policy = args.admission;
    opt.power_cap_w = args.power_cap_w;
    // One simulated second stands for 480 wall-clock seconds:
    // instantaneous QPS (and so all queueing dynamics) is unchanged,
    // only the simulated span and query count shrink.
    opt.trace.time_compression = 480.0;
    opt.trace.seed = 42;

    std::printf("shard fleet: T2 x%d + T3 x%d + T7 x%d (%.0f QPS), "
                "peak %.0f QPS, SLA %.0f ms, router %s, admission %s\n\n",
                slots[0], slots[1], slots[2], capacity, load.peak_qps,
                opt.sla_ms, sim::routerPolicyName(opt.router),
                qos::admissionPolicyName(args.admission));

    cluster::TraceServeResult r = cluster::serveTrace(
        table, fleet, slots, model, load, policy, opt);

    TablePrinter t({"Hour", "Offered QPS", "Shards", "p50 (ms)",
                    "p99 (ms)", "SLA viol", "Prov kW", "Cons kW"});
    size_t stride =
        std::max<size_t>(1, r.sim.intervals.size() / 16);
    for (size_t i = 0; i < r.sim.intervals.size(); i += stride) {
        const sim::IntervalStats& iv = r.sim.intervals[i];
        double hour = static_cast<double>(i) * args.interval_hours;
        t.addRow({fmtDouble(hour, 1), fmtEng(iv.offered_qps, 1),
                  std::to_string(iv.active_shards),
                  fmtDouble(iv.p50_ms, 2), fmtDouble(iv.p99_ms, 2),
                  fmtPercent(iv.sla_violation_rate, 1),
                  fmtDouble(iv.provisioned_power_w / 1e3, 3),
                  fmtDouble(iv.consumed_power_w / 1e3, 3)});
    }
    t.print();

    std::printf("\n");
    printQosLines(r.sim.services, {model});

    std::printf("\n%zu queries served end to end: p50 %.2f ms, p99 %.2f "
                "ms, max %.1f ms\n",
                r.sim.completed, r.sim.p50_ms, r.sim.p99_ms,
                r.sim.max_ms);
    std::printf("SLA violations: %.2f%%;  rejected: %zu;  dropped: %zu;"
                "  re-provisions: %d;  avg power: %.2f kW provisioned / "
                "%.2f kW consumed\n",
                r.sim.sla_violation_rate * 100.0, r.sim.rejected,
                r.sim.dropped, r.reprovisions,
                r.sim.avg_provisioned_power_w / 1e3,
                r.sim.avg_consumed_power_w / 1e3);
    std::printf("tip: compare '--router rr' with '--router hercules' to "
                "see the heterogeneity effect.\n");
    return 0;
}

}  // namespace

int
main(int argc, char** argv)
{
    Args args;
    if (!parseArgs(argc, argv, args)) {
        usage(argv[0]);
        return 2;
    }
    std::unique_ptr<cluster::Provisioner> policy =
        makePolicy(args.policy);

    std::printf("== %.0fh online serving (%s scheduler, %s mode) ==\n\n",
                args.horizon_hours, policy->name(),
                args.trace_mode ? "trace" : "analytic");

    const std::vector<hw::ServerType> fleet = {
        hw::ServerType::T2, hw::ServerType::T3, hw::ServerType::T7};
    const std::vector<model::ModelId> services = {
        model::ModelId::DlrmRmc1, model::ModelId::DlrmRmc2};
    const std::vector<model::ModelId> all_services = {
        model::ModelId::DlrmRmc1, model::ModelId::DlrmRmc2,
        model::ModelId::DlrmRmc3};
    std::vector<model::ModelId> co_served(
        all_services.begin(),
        all_services.begin() + args.num_services);

    std::printf("profiling the fleet...\n");
    core::ProfilerOptions popt;
    popt.servers = fleet;
    popt.models = args.trace_mode
                      ? (args.num_services > 1
                             ? co_served
                             : std::vector<model::ModelId>{services[0]})
                      : services;
    core::EfficiencyTable table = core::offlineProfile(popt);

    if (args.trace_mode && args.num_services > 1)
        return runMultiTrace(args, *policy, table, fleet, co_served);
    return args.trace_mode
               ? runTrace(args, *policy, table, fleet)
               : runAnalytic(args, *policy, table, fleet, services);
}
