/**
 * @file
 * Online serving simulation: a heterogeneous cluster (CPU + NMP + GPU
 * servers) rides a day of synchronized diurnal load, re-provisioned
 * every interval by a choice of cluster scheduler.
 *
 * Three modes:
 *  - analytic (default): the Fig 13 capacity view — efficiency-tuple
 *    lookup, over-provision-rate estimation, interval-by-interval
 *    activation/release, provisioned power;
 *  - --trace: end-to-end serving — a timestamped diurnal arrival trace
 *    flows through simulated server shards behind a query router, and
 *    the run reports real tail latency and SLA violations instead of
 *    only analytic capacity. The legacy flags below are a spec
 *    builder: they assemble a scenario::ScenarioSpec and hand it to
 *    scenario::run(), the same entry point every serving experiment
 *    uses;
 *  - --scenario FILE: run a declarative scenario file (scenarios/
 *    *.scn, grammar in src/scenario/README.md) end to end and write
 *    its result to BENCH_scenario.json. All other experiment flags are
 *    ignored — the file is the whole experiment. With --parse-only the
 *    file is only parsed and validated (CI lints the shipped library
 *    this way).
 *
 * Usage: online_serving_sim [hercules|greedy|nh] [--trace]
 *          [--horizon H] [--interval I]
 *          [--router rr|jsq|p2c|hercules|latency-feedback]
 *          [--services N] [--admission none|queue_cap|deadline]
 *          [--priorities p0,p1,...] [--power-cap W]
 *          [--faults SPEC] [--scenario FILE] [--parse-only]
 *
 * Fault injection: --faults takes comma-separated tokens — scripted
 * events crash@T:h:s, degrade@T:h:s:F, recover@T:h:s (trace hour T,
 * fleet index h, slot s, slowdown F) and seeded-process knobs seed=N,
 * crash_mtbf=H, crash_mttr=H, degrade_mtbf=H, degrade_mttr=H,
 * slowdown=F (src/fault/). Trace runs with faults print the shard
 * health-transition timeline next to the serving report.
 *
 * With --services N >= 2, trace mode co-serves N services (RMC1,
 * RMC2, RMC3 prefix) with phase-shifted diurnal peaks on the shared
 * fleet, reporting per-service tail latency and SLA violations next
 * to the cluster aggregate.
 *
 * QoS: --admission picks the per-shard admission policy (src/qos/),
 * --priorities assigns per-service shedding priorities (higher keeps
 * capacity longer when --power-cap forces shedding), and --router
 * latency-feedback routes on p99-feedback-adjusted weights.
 * Per-service admit / reject / drop / violation lines are printed for
 * every trace run.
 *
 * Unknown or malformed flags are named on stderr and exit non-zero.
 */
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "cluster/cluster_manager.h"
#include "core/profiler.h"
#include "fault/fault.h"
#include "qos/qos.h"
#include "scenario/lint.h"
#include "scenario/scenario.h"
#include "scenario/spec_io.h"
#include "util/table.h"

using namespace hercules;

namespace {

struct Args
{
    std::string policy = "hercules";
    bool trace_mode = false;
    double horizon_hours = 24.0;
    double interval_hours = 0.5;
    int num_services = 1;
    sim::RouterPolicy router = sim::RouterPolicy::HerculesWeighted;
    qos::AdmissionPolicy admission = qos::AdmissionPolicy::None;
    std::vector<int> priorities;  ///< per service; empty = all equal
    /** Global power cap (W); infinity = uncapped. */
    double power_cap_w = std::numeric_limits<double>::infinity();
    /** --faults: scripted events + seeded-process knobs (trace mode). */
    fault::FaultSpec faults;
    std::string scenario_file;  ///< --scenario: run this spec file
    bool parse_only = false;    ///< with --scenario: parse, don't run
    std::string lint_file;      ///< --lint: statically analyze a spec
    std::string trace_out;      ///< --trace-out: per-query JSONL spans
    std::string metrics_out;    ///< --metrics-out: metrics export
};

/**
 * Parse one --faults token list (see the file header) into `out`.
 * @return false with `bad` set to the offending token on error.
 */
bool
parseFaultTokens(const std::string& list, fault::FaultSpec& out,
                 std::string& bad)
{
    auto num = [](const std::string& s, double* v) {
        char* end = nullptr;
        *v = std::strtod(s.c_str(), &end);
        return !s.empty() && end == s.c_str() + s.size() &&
               std::isfinite(*v);
    };
    size_t pos = 0;
    while (pos <= list.size()) {
        size_t comma = list.find(',', pos);
        if (comma == std::string::npos)
            comma = list.size();
        std::string tok = list.substr(pos, comma - pos);
        pos = comma + 1;
        bad = tok;
        size_t at = tok.find('@');
        size_t eq = tok.find('=');
        if (at != std::string::npos) {
            // crash@T:h:s | degrade@T:h:s:F | recover@T:h:s
            std::string verb = tok.substr(0, at);
            std::vector<std::string> parts;
            std::string rest = tok.substr(at + 1);
            size_t p = 0;
            while (p <= rest.size()) {
                size_t colon = rest.find(':', p);
                if (colon == std::string::npos)
                    colon = rest.size();
                parts.push_back(rest.substr(p, colon - p));
                p = colon + 1;
            }
            size_t want = verb == "degrade" ? 4 : 3;
            if ((verb != "crash" && verb != "degrade" &&
                 verb != "recover") ||
                parts.size() != want)
                return false;
            fault::FaultEvent e;
            double fi = 0.0, sl = 0.0;
            if (!num(parts[0], &e.t_hours) || e.t_hours < 0.0)
                return false;
            if (!num(parts[1], &fi) || fi != std::floor(fi) ||
                fi < 0.0)
                return false;
            if (!num(parts[2], &sl) || sl != std::floor(sl) ||
                sl < 0.0)
                return false;
            e.fleet_index = static_cast<int>(fi);
            e.slot = static_cast<int>(sl);
            if (verb == "crash") {
                e.state = fault::HealthState::Failed;
            } else if (verb == "recover") {
                e.state = fault::HealthState::Healthy;
            } else {
                e.state = fault::HealthState::Degraded;
                if (!num(parts[3], &e.slowdown) || e.slowdown < 1.0)
                    return false;
            }
            out.events.push_back(e);
        } else if (eq != std::string::npos) {
            std::string key = tok.substr(0, eq);
            double v = 0.0;
            if (!num(tok.substr(eq + 1), &v) || v < 0.0)
                return false;
            if (key == "seed") {
                if (v != std::floor(v))
                    return false;
                out.seed = static_cast<uint64_t>(v);
            } else if (key == "crash_mtbf") {
                out.crash_mtbf_hours = v;
            } else if (key == "crash_mttr") {
                out.crash_mttr_hours = v;
            } else if (key == "degrade_mtbf") {
                out.degrade_mtbf_hours = v;
            } else if (key == "degrade_mttr") {
                out.degrade_mttr_hours = v;
            } else if (key == "slowdown") {
                if (v < 1.0)
                    return false;
                out.degrade_slowdown = v;
            } else {
                return false;
            }
        } else {
            return false;
        }
    }
    bad.clear();
    return true;
}

void
usage(const char* argv0)
{
    std::fprintf(
        stderr,
        "usage: %s [hercules|greedy|nh] [options]\n"
        "  --trace         serve a diurnal arrival trace through\n"
        "                  simulated server shards (reports tail\n"
        "                  latency); default is the analytic view\n"
        "  --horizon H     horizon in hours (default 24)\n"
        "  --interval I    re-provisioning interval in hours (0.5)\n"
        "  --router R      trace-mode query router: rr, jsq, p2c,\n"
        "                  hercules, latency-feedback (default\n"
        "                  hercules)\n"
        "  --services N    co-serve N services (1-3) in trace mode:\n"
        "                  phase-shifted diurnal peaks on one shared\n"
        "                  fleet, per-service SLA accounting\n"
        "  --admission A   per-shard admission policy: none,\n"
        "                  queue_cap, deadline (default none)\n"
        "  --priorities P  comma-separated per-service shedding\n"
        "                  priorities, e.g. 2,1,0 (higher keeps\n"
        "                  capacity longer; only bites under\n"
        "                  --power-cap)\n"
        "  --power-cap W   global power cap in watts: the interval\n"
        "                  allocation is shed (lowest priority, then\n"
        "                  worst QPS/W first) until it fits\n"
        "  --faults SPEC   trace-mode fault injection, comma-separated\n"
        "                  tokens: crash@T:h:s, degrade@T:h:s:F,\n"
        "                  recover@T:h:s (trace hour T, fleet index h,\n"
        "                  slot s, slowdown F) and seeded-process\n"
        "                  knobs seed=N, crash_mtbf=H, crash_mttr=H,\n"
        "                  degrade_mtbf=H, degrade_mttr=H, slowdown=F\n"
        "  --scenario F    run scenario file F end to end (writes\n"
        "                  BENCH_scenario.json); every other\n"
        "                  experiment flag is ignored\n"
        "  --trace-out F   with --scenario: write sampled per-query\n"
        "                  spans as JSONL to F (overrides the spec's\n"
        "                  observability.trace_file)\n"
        "  --metrics-out F with --scenario: write the metrics registry\n"
        "                  to F — .csv / .json by extension, else\n"
        "                  Prometheus-style text (overrides the\n"
        "                  spec's observability.metrics_file)\n"
        "  --parse-only    with --scenario: parse + validate the\n"
        "                  file, print its summary, don't run\n"
        "  --lint F        statically analyze scenario file F without\n"
        "                  running it: print every diagnostic (stable\n"
        "                  E1xx/W2xx codes, src/scenario/README.md)\n"
        "                  and exit 1 when any error is found; the\n"
        "                  spec's table_cache, when present on disk,\n"
        "                  enables the hardware-feasibility checks\n"
        "tip: --trace --horizon 6 finishes in seconds.\n",
        argv0);
}

bool
parseArgs(int argc, char** argv, Args& out)
{
    auto reject = [&](const char* what, const std::string& a) {
        std::fprintf(stderr, "error: %s '%s'\n", what, a.c_str());
        return false;
    };
    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        auto value = [&]() -> const char* {
            return i + 1 < argc ? argv[++i] : nullptr;
        };
        if (a == "hercules" || a == "greedy" || a == "nh") {
            out.policy = a;
        } else if (a == "--trace") {
            out.trace_mode = true;
        } else if (a == "--parse-only") {
            out.parse_only = true;
        } else if (a == "--scenario") {
            const char* v = value();
            if (v == nullptr)
                return reject("missing file after", a);
            out.scenario_file = v;
        } else if (a == "--lint") {
            const char* v = value();
            if (v == nullptr)
                return reject("missing file after", a);
            out.lint_file = v;
        } else if (a == "--trace-out") {
            const char* v = value();
            if (v == nullptr)
                return reject("missing file after", a);
            out.trace_out = v;
        } else if (a == "--metrics-out") {
            const char* v = value();
            if (v == nullptr)
                return reject("missing file after", a);
            out.metrics_out = v;
        } else if (a == "--horizon") {
            const char* v = value();
            if (v == nullptr || std::atof(v) <= 0.0)
                return reject("missing or non-positive value for", a);
            out.horizon_hours = std::atof(v);
        } else if (a == "--interval") {
            const char* v = value();
            if (v == nullptr || std::atof(v) <= 0.0)
                return reject("missing or non-positive value for", a);
            out.interval_hours = std::atof(v);
        } else if (a == "--router") {
            const char* v = value();
            auto p = v ? sim::parseRouterPolicy(v) : std::nullopt;
            if (!p.has_value())
                return reject("unknown router for", a);
            out.router = *p;
        } else if (a == "--services") {
            const char* v = value();
            if (v == nullptr || std::atoi(v) < 1 || std::atoi(v) > 3)
                return reject("--services expects 1-3, got",
                              v ? v : "(none)");
            out.num_services = std::atoi(v);
        } else if (a == "--admission") {
            const char* v = value();
            auto p = v ? qos::parseAdmissionPolicy(v) : std::nullopt;
            if (!p.has_value())
                return reject("unknown admission policy for", a);
            out.admission = *p;
        } else if (a == "--power-cap") {
            const char* v = value();
            if (v == nullptr || std::atof(v) <= 0.0)
                return reject("missing or non-positive value for", a);
            out.power_cap_w = std::atof(v);
        } else if (a == "--faults") {
            const char* v = value();
            if (v == nullptr)
                return reject("missing value for", a);
            std::string bad;
            if (!parseFaultTokens(v, out.faults, bad))
                return reject("malformed --faults token", bad);
        } else if (a == "--priorities") {
            const char* v = value();
            if (v == nullptr)
                return reject("missing value for", a);
            out.priorities.clear();
            std::string list = v;
            size_t pos = 0;
            while (pos <= list.size()) {
                size_t comma = list.find(',', pos);
                if (comma == std::string::npos)
                    comma = list.size();
                std::string tok = list.substr(pos, comma - pos);
                // Digits only (optional sign): atoi would silently
                // read "high" as 0 and flatten the shedding order.
                size_t d = tok.empty() ? 0
                           : (tok[0] == '-' || tok[0] == '+') ? 1
                                                              : 0;
                if (d >= tok.size() ||
                    tok.find_first_not_of("0123456789", d) !=
                        std::string::npos)
                    return reject("malformed priority list", list);
                out.priorities.push_back(std::atoi(tok.c_str()));
                pos = comma + 1;
            }
        } else {
            return reject("unknown flag", a);
        }
    }
    if (out.parse_only && out.scenario_file.empty())
        return reject("--parse-only requires", "--scenario");
    return true;
}

/**
 * The per-service QoS accounting lines every trace run prints:
 * admitted vs rejected (admission control) vs dropped (no capacity),
 * and the violation count behind the rate.
 */
void
printQosLines(const std::vector<sim::ServiceRunStats>& services,
              const scenario::ScenarioSpec& spec)
{
    for (size_t s = 0; s < services.size(); ++s) {
        const sim::ServiceRunStats& svc = services[s];
        size_t offered = svc.injected + svc.dropped + svc.rejected;
        std::printf("  qos %-12s admitted %zu/%zu, rejected %zu, "
                    "dropped %zu, violations %zu (%.2f%%)\n",
                    spec.services[s].name.c_str(), svc.injected,
                    offered, svc.rejected, svc.dropped,
                    svc.sla_violations,
                    svc.sla_violation_rate * 100.0);
    }
}

/** The legacy --trace flags, assembled into a scenario spec. */
scenario::ScenarioSpec
buildTraceSpec(const Args& args)
{
    scenario::ScenarioSpec spec;
    spec.name = args.num_services > 1 ? "online_serving_multi"
                                      : "online_serving";
    spec.fleet = {{hw::ServerType::T2, 2},
                  {hw::ServerType::T3, 2},
                  {hw::ServerType::T7, 1}};
    const std::vector<model::ModelId> all_models = {
        model::ModelId::DlrmRmc1, model::ModelId::DlrmRmc2,
        model::ModelId::DlrmRmc3};
    const size_t S = static_cast<size_t>(args.num_services);
    for (size_t s = 0; s < S; ++s) {
        scenario::ServiceScenario svc;
        svc.spec.model = all_models[s];
        svc.spec.load.trough_frac = 0.35;
        svc.spec.load.seed = 5 + s;
        if (S == 1) {
            svc.peak_qps_frac = 0.6;
        } else {
            svc.peak_qps_frac = 0.5 / static_cast<double>(S);
            // Spread the daily peaks: co-serving rides the offsets.
            svc.spec.load.peak_hour =
                20.0 - 8.0 * static_cast<double>(s);
            if (s < args.priorities.size())
                svc.spec.qos.priority = args.priorities[s];
        }
        spec.services.push_back(std::move(svc));
    }
    auto kind = scenario::parseProvisionerKind(args.policy);
    spec.provisioner = kind.value_or(scenario::ProvisionerKind::Hercules);
    spec.serve.horizon_hours = args.horizon_hours;
    spec.serve.interval_hours = args.interval_hours;
    spec.serve.router = args.router;
    spec.serve.admission.policy = args.admission;
    spec.serve.power_cap_w = args.power_cap_w;
    // One simulated second stands for 480 wall-clock seconds:
    // instantaneous QPS (and so all queueing dynamics) is unchanged,
    // only the simulated span and query count shrink.
    spec.serve.trace.time_compression = 480.0;
    spec.serve.trace.seed = 42;
    spec.serve.faults = args.faults;
    return spec;
}

/** Run one spec end to end and print the trace-mode report. */
int
runSpec(scenario::ScenarioSpec spec, bool write_json)
{
    std::printf("profiling the fleet...\n");
    core::EfficiencyTable table = scenario::profileTable(spec);

    const size_t S = spec.services.size();
    std::printf("scenario '%s': fleet", spec.name.c_str());
    for (const scenario::FleetEntry& e : spec.fleet)
        std::printf(" %s x%d", hw::serverTypeName(e.type),
                    e.shard_slots);
    std::printf(", %zu service%s, router %s, admission %s, "
                "provisioner %s\n\n",
                S, S == 1 ? "" : "s",
                sim::routerPolicyName(spec.serve.router),
                qos::admissionPolicyName(spec.serve.admission.policy),
                scenario::provisionerKindName(spec.provisioner));

    scenario::ScenarioResult r = scenario::run(spec, &table);
    const sim::ClusterSimResult& sim = r.serve.sim;
    const scenario::ScenarioSpec& rs = r.resolved;

    TablePrinter t({"Service", "Peak QPS", "SLA (ms)", "Completed",
                    "Dropped", "p50 (ms)", "p99 (ms)", "SLA viol"});
    for (size_t s = 0; s < S; ++s) {
        const sim::ServiceRunStats& svc = sim.services[s];
        t.addRow({rs.services[s].name,
                  fmtEng(rs.services[s].spec.load.peak_qps, 1),
                  fmtDouble(r.serve.service_sla_ms[s], 0),
                  std::to_string(svc.completed),
                  std::to_string(svc.dropped),
                  fmtDouble(svc.p50_ms, 2), fmtDouble(svc.p99_ms, 2),
                  fmtPercent(svc.sla_violation_rate, 2)});
    }
    t.print();
    std::printf("\n");

    if (S == 1) {
        // Single-service runs keep the per-interval trajectory view.
        TablePrinter iv_t({"Hour", "Offered QPS", "Shards", "p50 (ms)",
                           "p99 (ms)", "SLA viol", "Prov kW",
                           "Cons kW"});
        size_t stride =
            std::max<size_t>(1, sim.intervals.size() / 16);
        for (size_t i = 0; i < sim.intervals.size(); i += stride) {
            const sim::IntervalStats& iv = sim.intervals[i];
            double hour =
                static_cast<double>(i) * spec.serve.interval_hours;
            iv_t.addRow({fmtDouble(hour, 1), fmtEng(iv.offered_qps, 1),
                         std::to_string(iv.active_shards),
                         fmtDouble(iv.p50_ms, 2),
                         fmtDouble(iv.p99_ms, 2),
                         fmtPercent(iv.sla_violation_rate, 1),
                         fmtDouble(iv.provisioned_power_w / 1e3, 3),
                         fmtDouble(iv.consumed_power_w / 1e3, 3)});
        }
        iv_t.print();
        std::printf("\n");
    }
    printQosLines(sim.services, rs);

    if (!sim.health_transitions.empty()) {
        std::printf("\nfault timeline (%zu shard transitions, trace "
                    "hours):\n",
                    sim.health_transitions.size());
        for (const sim::HealthTransition& ht :
             sim.health_transitions) {
            double hour =
                ht.t_s * rs.serve.trace.time_compression / 3600.0;
            std::printf("  h %6.2f  shard %-3d (%s)  %s -> %s", hour,
                        ht.shard,
                        rs.services[static_cast<size_t>(ht.service)]
                            .name.c_str(),
                        fault::healthStateName(ht.from),
                        fault::healthStateName(ht.to));
            if (ht.to == fault::HealthState::Degraded)
                std::printf(" x%g", ht.slowdown);
            if (ht.killed_inflight > 0)
                std::printf("  (killed %zu in-flight)",
                            ht.killed_inflight);
            std::printf("\n");
        }
    }

    std::printf("\n%zu queries served end to end: p50 %.2f ms, p99 "
                "%.2f ms, max %.1f ms\n",
                sim.completed, sim.p50_ms, sim.p99_ms, sim.max_ms);
    std::printf("SLA violations: %.2f%%;  rejected: %zu (retries "
                "%zu);  dropped: %zu;  re-provisions: %d;  avg power: "
                "%.2f kW provisioned / %.2f kW consumed\n",
                sim.sla_violation_rate * 100.0, sim.rejected,
                sim.admission_retries, sim.dropped,
                r.serve.reprovisions,
                sim.avg_provisioned_power_w / 1e3,
                sim.avg_consumed_power_w / 1e3);
    if (rs.observability.tracing())
        std::printf("wrote %s (per-query trace, sample rate %g)\n",
                    rs.observability.trace_file.c_str(),
                    rs.observability.sample_rate);
    if (!rs.observability.metrics_file.empty())
        std::printf("wrote %s (metrics registry)\n",
                    rs.observability.metrics_file.c_str());
    if (write_json) {
        if (scenario::writeResultJson("BENCH_scenario.json", r,
                                      bench::gitSha()))
            std::printf("wrote BENCH_scenario.json\n");
    } else {
        std::printf("tip: put this experiment in a file — see "
                    "scenarios/*.scn and --scenario.\n");
    }
    return 0;
}

/**
 * --lint: static semantic analysis of one spec file. Never simulates;
 * the spec's table_cache (when it exists and parses) additionally
 * enables the efficiency-table checks. Exit 1 on any E1xx error (or a
 * file that does not parse), 0 otherwise — warnings are printed but
 * never block.
 */
int
lintScenarioFile(const std::string& path)
{
    std::string err;
    auto spec = scenario::loadSpecFile(path, &err);
    if (!spec.has_value()) {
        std::fprintf(stderr, "%s: parse error: %s\n", path.c_str(),
                     err.c_str());
        return 1;
    }
    std::optional<core::EfficiencyTable> table;
    if (!spec->profile.table_cache.empty() &&
        std::filesystem::exists(spec->profile.table_cache))
        table =
            core::EfficiencyTable::tryReadCsv(spec->profile.table_cache);

    std::vector<scenario::Diagnostic> ds =
        scenario::lint(*spec, table.has_value() ? &*table : nullptr);
    size_t errors = 0, warnings = 0;
    for (const scenario::Diagnostic& d : ds) {
        (d.severity == scenario::Severity::Error ? errors : warnings)++;
        std::fprintf(d.severity == scenario::Severity::Error ? stderr
                                                             : stdout,
                     "%s: %s\n", path.c_str(),
                     scenario::formatDiagnostic(d).c_str());
    }
    if (ds.empty())
        std::printf("%s: clean — 0 diagnostics (scenario '%s'%s)\n",
                    path.c_str(), spec->name.c_str(),
                    table.has_value() ? ", table-aware checks on"
                                      : "");
    else
        std::printf("%s: %zu error%s, %zu warning%s\n", path.c_str(),
                    errors, errors == 1 ? "" : "s", warnings,
                    warnings == 1 ? "" : "s");
    return errors > 0 ? 1 : 0;
}

int
runScenarioFile(const Args& args)
{
    std::string err;
    auto spec = scenario::loadSpecFile(args.scenario_file, &err);
    if (!spec.has_value()) {
        std::fprintf(stderr, "error: %s\n", err.c_str());
        return 1;
    }
    // Parsing alone accepts specs that cannot run (empty fleet,
    // unsorted cap schedule, ...): lint with the same semantic checks
    // run() enforces, so --parse-only catches them at exit 1 instead
    // of CI discovering a fatal() later.
    if (!scenario::validateSpec(*spec, &err)) {
        std::fprintf(stderr, "error: %s: %s\n",
                     args.scenario_file.c_str(), err.c_str());
        return 1;
    }
    if (args.parse_only) {
        std::printf("%s: ok — scenario '%s' (%zu fleet type%s, %zu "
                    "service%s, %.0fh horizon)\n",
                    args.scenario_file.c_str(), spec->name.c_str(),
                    spec->fleet.size(),
                    spec->fleet.size() == 1 ? "" : "s",
                    spec->services.size(),
                    spec->services.size() == 1 ? "" : "s",
                    spec->serve.horizon_hours);
        return 0;
    }
    // CLI telemetry overrides beat the spec's observability block, so
    // any scenario can be traced without editing its file.
    if (!args.trace_out.empty())
        spec->observability.trace_file = args.trace_out;
    if (!args.metrics_out.empty())
        spec->observability.metrics_file = args.metrics_out;
    return runSpec(std::move(*spec), /*write_json=*/true);
}

int
runAnalytic(const Args& args, cluster::Provisioner& policy,
            const core::EfficiencyTable& table,
            const std::vector<hw::ServerType>& fleet,
            const std::vector<model::ModelId>& services)
{
    cluster::ProvisionProblem problem =
        cluster::ProvisionProblem::fromTable(table, fleet, services);

    std::vector<cluster::ClusterWorkload> workloads(2);
    workloads[0].model = services[0];
    workloads[0].load.peak_qps = 60'000;
    workloads[0].load.seed = 5;
    workloads[1].model = services[1];
    workloads[1].load.peak_qps = 12'000;
    workloads[1].load.seed = 6;

    // The over-provision rate R comes from the load history (paper
    // §IV-C): the largest inter-interval increase.
    workload::DiurnalLoad probe(workloads[0].load);
    double r = cluster::estimateOverprovisionRate(probe,
                                                  args.interval_hours);
    std::printf("estimated over-provision rate R = %.1f%%\n\n", r * 100.0);

    cluster::ClusterManagerOptions opt;
    opt.horizon_hours = args.horizon_hours;
    opt.interval_hours = args.interval_hours;
    opt.overprovision_rate = r;
    cluster::ClusterRunResult run =
        cluster::runCluster(problem, workloads, policy, opt);

    TablePrinter t({"Hour", "RMC1 load", "RMC2 load", "T2 on", "T3 on",
                    "T7 on", "Power (kW)", "OK"});
    for (size_t i = 0; i < run.intervals.size(); i += 3) {
        const auto& iv = run.intervals[i];
        t.addRow({fmtDouble(iv.t_hours, 1), fmtEng(iv.loads[0], 1),
                  fmtEng(iv.loads[1], 1),
                  std::to_string(iv.alloc.activatedOfType(0)),
                  std::to_string(iv.alloc.activatedOfType(1)),
                  std::to_string(iv.alloc.activatedOfType(2)),
                  fmtDouble(iv.provisioned_power_w / 1e3, 2),
                  iv.satisfied ? "y" : "N"});
    }
    t.print();

    std::printf("\npeak: %d servers / %.1f kW;  average: %.1f servers / "
                "%.1f kW;  unsatisfied intervals: %d\n",
                run.peak_servers, run.peak_power_w / 1e3,
                run.avg_servers, run.avg_power_w / 1e3,
                run.unsatisfied_intervals);
    std::printf("tip: run with 'greedy' or 'nh' to compare policies, or "
                "--trace for end-to-end latency.\n");
    return 0;
}

std::unique_ptr<cluster::Provisioner>
makePolicy(const std::string& name)
{
    if (name == "greedy")
        return std::make_unique<cluster::GreedyProvisioner>();
    if (name == "nh")
        return std::make_unique<cluster::NhProvisioner>(17);
    return std::make_unique<cluster::HerculesProvisioner>();
}

}  // namespace

int
main(int argc, char** argv)
{
    Args args;
    if (!parseArgs(argc, argv, args)) {
        usage(argv[0]);
        return 2;
    }

    if (!args.lint_file.empty())
        return lintScenarioFile(args.lint_file);

    if (!args.scenario_file.empty())
        return runScenarioFile(args);

    if (args.trace_mode) {
        scenario::ScenarioSpec spec = buildTraceSpec(args);
        // Catch --faults events aimed outside the built-in fleet at
        // the flag layer (exit 2 + usage) instead of a fatal() later.
        std::string err;
        if (!scenario::validateSpec(spec, &err)) {
            std::fprintf(stderr, "error: %s\n", err.c_str());
            usage(argv[0]);
            return 2;
        }
        std::printf("== %.0fh online serving (%s scheduler, trace "
                    "mode) ==\n\n",
                    args.horizon_hours, args.policy.c_str());
        return runSpec(std::move(spec), /*write_json=*/false);
    }

    std::unique_ptr<cluster::Provisioner> policy =
        makePolicy(args.policy);
    std::printf("== %.0fh online serving (%s scheduler, analytic mode) "
                "==\n\n",
                args.horizon_hours, policy->name());

    const std::vector<hw::ServerType> fleet = {
        hw::ServerType::T2, hw::ServerType::T3, hw::ServerType::T7};
    const std::vector<model::ModelId> services = {
        model::ModelId::DlrmRmc1, model::ModelId::DlrmRmc2};

    std::printf("profiling the fleet...\n");
    core::ProfilerOptions popt;
    popt.servers = fleet;
    popt.models = services;
    core::EfficiencyTable table = core::offlineProfile(popt);
    return runAnalytic(args, *policy, table, fleet, services);
}
