/**
 * @file
 * Capacity planner: given a set of recommendation services with peak
 * loads and SLA targets, decide how many servers of each type a
 * datacenter must provision.
 *
 * Demonstrates the full Hercules pipeline end-to-end:
 *   1. offline profiling of every (model, server-type) pair on the
 *      requested hardware menu (gradient search per pair);
 *   2. the constrained-optimization provisioner (Eq. 1-3) sizing the
 *      fleet for the peak load;
 *   3. a comparison against the greedy scheduler, showing the
 *      provisioned-power saving the LP formulation buys.
 *
 * Usage: capacity_planner [peak_qps_rmc1] [peak_qps_din]
 */
#include <cstdio>
#include <cstdlib>

#include "cluster/provision.h"
#include "core/profiler.h"
#include "util/table.h"

using namespace hercules;

int
main(int argc, char** argv)
{
    double peak_rmc1 = argc > 1 ? std::atof(argv[1]) : 30'000.0;
    double peak_din = argc > 2 ? std::atof(argv[2]) : 4'000.0;

    std::printf("== Hercules capacity planner ==\n");
    std::printf("services: DLRM-RMC1 @ %.0f QPS peak (20 ms SLA), "
                "DIN @ %.0f QPS peak (50 ms SLA)\n\n",
                peak_rmc1, peak_din);

    // Hardware menu: a CPU generation, an NMP box and a GPU box.
    const std::vector<hw::ServerType> menu = {
        hw::ServerType::T2, hw::ServerType::T4, hw::ServerType::T7};
    const std::vector<model::ModelId> services = {
        model::ModelId::DlrmRmc1, model::ModelId::Din};

    std::printf("[1/2] offline profiling (%zu pairs)...\n",
                menu.size() * services.size());
    core::ProfilerOptions popt;
    popt.servers = menu;
    popt.models = services;
    core::EfficiencyTable table = core::offlineProfile(popt);

    TablePrinter prof({"Model", "Server", "QPS/server", "Power (W)",
                       "Best schedule"});
    for (model::ModelId mid : services) {
        for (hw::ServerType st : menu) {
            const core::EfficiencyEntry* e = table.get(st, mid);
            if (!e || !e->feasible)
                continue;
            prof.addRow({model::modelName(mid), hw::serverSpec(st).name,
                         fmtDouble(e->qps, 0), fmtDouble(e->power_w, 0),
                         e->config.str()});
        }
    }
    prof.print();

    std::printf("\n[2/2] provisioning for the peak...\n");
    cluster::ProvisionProblem problem =
        cluster::ProvisionProblem::fromTable(table, menu, services);
    std::vector<double> loads = {peak_rmc1, peak_din};

    cluster::HerculesProvisioner hercules;
    cluster::GreedyProvisioner greedy;
    TablePrinter plan({"Policy", "Plan", "Servers", "Power (kW)",
                       "Loads met"});
    for (cluster::Provisioner* policy :
         std::initializer_list<cluster::Provisioner*>{&hercules,
                                                      &greedy}) {
        cluster::Allocation a = policy->provision(problem, loads, 0.05);
        std::string desc;
        for (int h = 0; h < problem.numServers(); ++h) {
            for (int m = 0; m < problem.numModels(); ++m) {
                int n = a.n[static_cast<size_t>(h)][static_cast<size_t>(m)];
                if (n == 0)
                    continue;
                if (!desc.empty())
                    desc += ", ";
                desc += std::to_string(n) + "x" +
                        hw::serverTypeName(problem.serverType(h)) + "->" +
                        model::modelName(problem.modelId(m));
            }
        }
        plan.addRow({policy->name(), desc,
                     std::to_string(a.activatedServers()),
                     fmtDouble(a.provisionedPowerW(problem) / 1e3, 2),
                     a.satisfies(problem, loads, 0.05) ? "yes" : "NO"});
    }
    plan.print();
    return 0;
}
