/**
 * @file
 * Server-architecture explorer: which of the T1-T10 architectures
 * should serve a given model? Runs the Hercules offline profiler across
 * the catalog and ranks the candidates by latency-bounded throughput
 * and energy efficiency — the paper's Fig 15 exploration for one
 * workload, exposed as a tool.
 *
 * Usage: server_arch_explorer [model] [sla_ms]
 */
#include <cstdio>
#include <cstring>

#include "core/profiler.h"
#include "util/table.h"

using namespace hercules;

int
main(int argc, char** argv)
{
    const char* model_name = argc > 1 ? argv[1] : "DLRM-RMC2";
    model::ModelId mid = model::ModelId::DlrmRmc2;
    bool found = false;
    for (model::ModelId id : model::allModels()) {
        if (std::strcmp(model::modelName(id), model_name) == 0) {
            mid = id;
            found = true;
        }
    }
    if (!found) {
        std::fprintf(stderr, "unknown model '%s'\n", model_name);
        return 1;
    }
    model::Model m = model::buildModel(mid);
    double sla_ms = argc > 2 ? std::atof(argv[2]) : m.sla_ms;

    std::printf("== server architecture exploration: %s, SLA %.0f ms ==\n\n",
                m.name.c_str(), sla_ms);

    core::ProfilerOptions popt;
    popt.models = {mid};
    popt.sla_ms_override = sla_ms;
    core::EfficiencyTable table = core::offlineProfile(popt);

    TablePrinter t({"Rank (QPS/W)", "Server", "QPS", "QPS/W",
                    "Peak W", "Best schedule"});
    int rank = 1;
    for (hw::ServerType st : table.rank(mid, true)) {
        const core::EfficiencyEntry* e = table.get(st, mid);
        t.addRow({std::to_string(rank++), hw::serverSpec(st).name,
                  fmtDouble(e->qps, 0), fmtDouble(e->qps_per_watt, 2),
                  fmtDouble(e->power_w, 0), e->config.str()});
    }
    t.print();

    auto by_qps = table.rank(mid, false);
    if (!by_qps.empty()) {
        std::printf("\nhighest raw throughput: %s",
                    hw::serverSpec(by_qps[0]).name.c_str());
        const core::EfficiencyEntry* e = table.get(by_qps[0], mid);
        std::printf(" (%.0f QPS with %s)\n", e->qps,
                    e->config.str().c_str());
    }
    return 0;
}
