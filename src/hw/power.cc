#include "hw/power.h"

#include <algorithm>
#include <cmath>

#include "hw/calibration.h"

namespace hercules::hw {

PowerModel::PowerModel(const ServerSpec& server) : server_(server) {}

double
PowerModel::cpuPowerW(double util) const
{
    using namespace calib;
    util = std::clamp(util, 0.0, 1.0);
    double idle = kCpuIdleFrac * server_.cpu.tdp_w;
    double span = server_.cpu.tdp_w - idle;
    return idle + span * std::pow(util, kCpuPowerAlpha);
}

double
PowerModel::memPowerW(double bw_util) const
{
    using namespace calib;
    bw_util = std::clamp(bw_util, 0.0, 1.0);
    double idle = kMemIdleFrac * server_.mem.tdp_w;
    if (server_.hasNmp())
        idle += kNmpPuIdleW * server_.mem.totalRanks();
    double span = server_.mem.tdp_w - kMemIdleFrac * server_.mem.tdp_w;
    return std::min(idle + span * bw_util,
                    server_.mem.tdp_w +
                        (server_.hasNmp()
                             ? kNmpPuIdleW * server_.mem.totalRanks()
                             : 0.0));
}

double
PowerModel::gpuPowerW(double util) const
{
    using namespace calib;
    if (!server_.hasGpu())
        return 0.0;
    util = std::clamp(util, 0.0, 1.0);
    double idle = kGpuIdleFrac * server_.gpu->tdp_w;
    double span = server_.gpu->tdp_w - idle;
    return idle + span * util;
}

double
PowerModel::serverPowerW(const Utilization& u) const
{
    return cpuPowerW(u.cpu) + memPowerW(u.mem_bw) + gpuPowerW(u.gpu);
}

double
PowerModel::idlePowerW() const
{
    return serverPowerW(Utilization{});
}

double
PowerModel::peakPowerW() const
{
    return serverPowerW(Utilization{1.0, 1.0, 1.0});
}

}  // namespace hercules::hw
