#include "hw/server.h"

#include "util/logging.h"

namespace hercules::hw {

const char*
serverTypeName(ServerType t)
{
    switch (t) {
      case ServerType::T1:  return "T1";
      case ServerType::T2:  return "T2";
      case ServerType::T3:  return "T3";
      case ServerType::T4:  return "T4";
      case ServerType::T5:  return "T5";
      case ServerType::T6:  return "T6";
      case ServerType::T7:  return "T7";
      case ServerType::T8:  return "T8";
      case ServerType::T9:  return "T9";
      case ServerType::T10: return "T10";
    }
    panic("unknown ServerType %d", static_cast<int>(t));
}

const std::vector<ServerType>&
allServerTypes()
{
    static const std::vector<ServerType> types = {
        ServerType::T1, ServerType::T2, ServerType::T3, ServerType::T4,
        ServerType::T5, ServerType::T6, ServerType::T7, ServerType::T8,
        ServerType::T9, ServerType::T10,
    };
    return types;
}

namespace {

ServerSpec
makeServer(ServerType type, CpuSpec cpu, MemSpec mem,
           std::optional<GpuSpec> gpu, int availability)
{
    ServerSpec s;
    s.type = type;
    s.cpu = std::move(cpu);
    s.mem = std::move(mem);
    s.gpu = std::move(gpu);
    s.availability = availability;
    s.name = (s.cpu.freq_ghz > 1.9 ? "CPU-T2" : "CPU-T1");
    if (s.mem.kind == MemKind::Nmp)
        s.name += "+" + s.mem.name;
    if (s.gpu)
        s.name += "+" + std::string(
            s.gpu->name == "NVIDIA P100" ? "P100" : "V100");
    return s;
}

std::vector<ServerSpec>
buildCatalog()
{
    std::vector<ServerSpec> cat;
    cat.push_back(makeServer(ServerType::T1, cpuT1(), ddr4T1(),
                             std::nullopt, 100));
    cat.push_back(makeServer(ServerType::T2, cpuT2(), ddr4T2(),
                             std::nullopt, 100));
    cat.push_back(makeServer(ServerType::T3, cpuT2(), nmpX(2),
                             std::nullopt, 15));
    cat.push_back(makeServer(ServerType::T4, cpuT2(), nmpX(4),
                             std::nullopt, 10));
    cat.push_back(makeServer(ServerType::T5, cpuT2(), nmpX(8),
                             std::nullopt, 5));
    cat.push_back(makeServer(ServerType::T6, cpuT1(), ddr4T1(),
                             gpuP100(), 10));
    cat.push_back(makeServer(ServerType::T7, cpuT2(), ddr4T2(),
                             gpuV100(), 5));
    cat.push_back(makeServer(ServerType::T8, cpuT2(), nmpX(2),
                             gpuV100(), 6));
    cat.push_back(makeServer(ServerType::T9, cpuT2(), nmpX(4),
                             gpuV100(), 4));
    cat.push_back(makeServer(ServerType::T10, cpuT2(), nmpX(8),
                             gpuV100(), 2));
    return cat;
}

}  // namespace

const std::vector<ServerSpec>&
serverCatalog()
{
    static const std::vector<ServerSpec> cat = buildCatalog();
    return cat;
}

const ServerSpec&
serverSpec(ServerType t)
{
    for (const auto& s : serverCatalog())
        if (s.type == t)
            return s;
    panic("serverSpec: type %s missing from catalog", serverTypeName(t));
}

}  // namespace hercules::hw
