/**
 * @file
 * The heterogeneous server catalog T1–T10 of Table II, with per-type
 * availability counts N1–N10 used by the cluster experiments.
 */
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "hw/device_specs.h"

namespace hercules::hw {

/** Server architecture types of Table II. */
enum class ServerType {
    T1,   ///< CPU-T1 + DDR4
    T2,   ///< CPU-T2 + DDR4
    T3,   ///< CPU-T2 + NMPx2
    T4,   ///< CPU-T2 + NMPx4
    T5,   ///< CPU-T2 + NMPx8
    T6,   ///< CPU-T1 + DDR4 + P100
    T7,   ///< CPU-T2 + DDR4 + V100
    T8,   ///< CPU-T2 + NMPx2 + V100
    T9,   ///< CPU-T2 + NMPx4 + V100
    T10,  ///< CPU-T2 + NMPx8 + V100
};

/** @return "T1".."T10". */
const char* serverTypeName(ServerType t);

/** @return all ten server types in catalog order. */
const std::vector<ServerType>& allServerTypes();

/** One server architecture: CPU socket + memory + optional GPU. */
struct ServerSpec
{
    ServerType type = ServerType::T1;
    std::string name;          ///< descriptive, e.g. "CPU-T2+NMPx2+V100"
    CpuSpec cpu;
    MemSpec mem;
    std::optional<GpuSpec> gpu;
    int availability = 0;      ///< Nh servers of this type in the fleet

    /** @return true when a discrete accelerator is present. */
    bool hasGpu() const { return gpu.has_value(); }

    /** @return true when the memory subsystem is NMP-capable. */
    bool hasNmp() const { return mem.kind == MemKind::Nmp; }

    /** @return sum of component TDPs (absolute power ceiling). */
    double maxPowerW() const
    {
        return cpu.tdp_w + mem.tdp_w + (gpu ? gpu->tdp_w : 0.0);
    }
};

/** @return the full T1–T10 catalog with Table II availabilities. */
const std::vector<ServerSpec>& serverCatalog();

/** @return the spec of a given type (from the catalog). */
const ServerSpec& serverSpec(ServerType t);

}  // namespace hercules::hw
