/**
 * @file
 * Every tunable constant of the performance/power model in one place.
 *
 * The paper evaluates on real hardware; we substitute a calibrated
 * analytical model (see DESIGN.md §2). These constants are chosen so the
 * simulator reproduces the *shapes* the paper reports — who wins, by
 * roughly what factor, and where crossovers fall — not absolute numbers.
 * Each constant documents which paper observation pins it down.
 */
#pragma once

namespace hercules::hw::calib {

// ---------------------------------------------------------------- CPU --
/**
 * Effective SIMD FLOPs/cycle/core for inference GEMM/GEMV kernels.
 * Production CPU inference runs far below the AVX-512 peak (64
 * flops/cycle) because of small batches and memory stalls; 10 puts
 * CPU-T2 at ~20 GFLOP/s/core, consistent with DeepRecSys-era serving.
 */
inline constexpr double kCpuFlopsPerCycle = 10.0;

/**
 * GEMM efficiency ramp with batch size: eff = b / (b + kCpuBatchHalf).
 * Small batches pay kernel shape overhead (Fig 11: tiny batches are
 * latency-cheap but throughput-poor).
 */
inline constexpr double kCpuBatchHalf = 3.0;

/** Per-operator dispatch overhead on the host DL framework (us). */
inline constexpr double kCpuOpOverheadUs = 18.0;

/** Per-(sub)query dispatch/setup overhead on a CPU thread (us). */
inline constexpr double kCpuQueryOverheadUs = 35.0;

/** Random-gather efficiency of DDR4 (SLS access pattern). */
inline constexpr double kDdrGatherEff = 0.40;

/**
 * Per-extra-thread memory-interference factor: total effective
 * bandwidth is divided by (1 + f*(threads-1)) beyond pure sharing.
 * Reproduces the co-location interference that makes 10x2 beat 20x1 on
 * DLRM-RMC1 (Fig 4, up to 1.35x).
 */
inline constexpr double kCpuInterferencePerThread = 0.012;

// ---------------------------------------------------------------- GPU --
/** Peak-FLOP fraction a perfectly large GEMM reaches on the GPU. */
inline constexpr double kGpuEffMax = 0.55;

/**
 * Items at which a kernel's achievable device occupancy reaches one
 * half: occ(b) = b / (b + kGpuBatchHalf). A single ~150-item query
 * occupies ~10% of a V100 — the reason query fusion delivers the
 * 2.9–7.9x gains of Fig 6.
 */
inline constexpr double kGpuBatchHalf = 1200.0;

/** Per-kernel launch overhead (us). */
inline constexpr double kGpuKernelLaunchUs = 6.0;

/** HBM efficiency for random embedding gathers. */
inline constexpr double kGpuHbmGatherEff = 0.55;

/**
 * Achievable fraction of the PCIe pin bandwidth. Embedding-index
 * payloads are many small scattered buffers; production loaders reach
 * roughly half the pin rate. Keeps DLRM-RMC3 data-loading-dominated
 * (Fig 7(a): 65-83% of latency).
 */
inline constexpr double kPcieEff = 0.45;

/**
 * Per-DMA-transfer setup latency (us): driver + pinned-buffer staging.
 * Un-fused serving pays this per query; fusion amortizes it — the
 * second lever behind Fig 6/7.
 */
inline constexpr double kPcieSetupUs = 180.0;

/**
 * MPS co-location slowdown: each of g co-located threads sees kernels
 * slowed by (1 + penalty * (g-1)) from scheduler/L2/HBM interference.
 * Keeps Baymax-style co-location gains in the 1.0–1.7x band the paper
 * measures rather than scaling linearly.
 */
inline constexpr double kGpuColocPenalty = 0.45;

/** Fixed host-side pre/post-processing per dispatched GPU batch (us). */
inline constexpr double kGpuHostPrepUs = 50.0;

/** Device memory reserved for runtime/workspace (bytes). */
inline constexpr double kGpuReservedBytes = 1.5e9;

// ---------------------------------------------------------------- NMP --
/** DRAM core clock of DDR4-2666 (MHz) used by the cycle model. */
inline constexpr double kNmpDramMhz = 1333.0;

/** tRCD + tCAS cycles charged per row gather in the NMP rank. */
inline constexpr double kNmpAccessCycles = 38.0;

/** Cycles per 64 B burst of embedding-row data. */
inline constexpr double kNmpBurstCycles = 4.0;

/** Bank-level parallelism overlap inside one rank (16 banks, ~4 open). */
inline constexpr double kNmpBankOverlap = 4.0;

/** NMP processing-unit adder overhead cycles per pooled vector. */
inline constexpr double kNmpReduceCycles = 8.0;

/** Host-visible per-SLS-op dispatch cost of the dummy NMP operator (us). */
inline constexpr double kNmpHostDispatchUs = 10.0;

/** Energy per DRAM row access inside the NMP rank (nJ). */
inline constexpr double kNmpAccessEnergyNj = 18.0;

// -------------------------------------------------------------- Power --
/** CPU idle power as a fraction of TDP. */
inline constexpr double kCpuIdleFrac = 0.35;

/** Dynamic CPU power exponent: P = idle + span*util^alpha. */
inline constexpr double kCpuPowerAlpha = 0.9;

/** Memory idle power as a fraction of its TDP. */
inline constexpr double kMemIdleFrac = 0.30;

/**
 * GPU idle/leakage power fraction. Serving deployments pin memory and
 * SM clocks high, so a V100 draws ~75 W with no kernels resident; the
 * paper names this leakage as what caps GPU energy efficiency and
 * keeps CPU+NMP ahead of CPU+GPU in QPS/W for the DLRMs (Fig 8(a)).
 */
inline constexpr double kGpuIdleFrac = 0.25;

/** Extra idle watts per NMP processing unit (one per rank). */
inline constexpr double kNmpPuIdleW = 1.5;

// ------------------------------------------------------- Measurement --
/** Default tail percentile for "latency-bounded" throughput. */
inline constexpr double kTailPercentile = 95.0;

}  // namespace hercules::hw::calib
