/**
 * @file
 * Hardware component specifications mirroring Table II of the paper:
 * two Xeon generations (CPU-T1/CPU-T2), DDR4 and NMP-DIMM memory
 * configurations, and two NVIDIA GPU generations (P100/V100).
 */
#pragma once

#include <cstdint>
#include <string>

namespace hercules::hw {

/** A server-grade CPU socket. */
struct CpuSpec
{
    std::string name;          ///< e.g. "Intel Xeon Gold 6138"
    double freq_ghz = 0.0;     ///< nominal core clock
    int cores = 0;             ///< physical cores (no hyperthreading)
    double llc_mb = 0.0;       ///< last-level cache size
    double tdp_w = 0.0;        ///< thermal design power

    /**
     * Effective per-core GFLOP/s for inference GEMM kernels: clock times
     * the calibrated effective SIMD FLOPs/cycle (well below the AVX-512
     * peak — production inference kernels on small batches run at a
     * fraction of peak).
     */
    double effGflopsPerCore() const;
};

/** Memory subsystem kind. */
enum class MemKind {
    Ddr4,  ///< plain DDR4 DIMMs
    Nmp,   ///< DIMM-based near-memory-processing (RecNMP-style)
};

/** A memory configuration (channels x DIMMs x ranks). */
struct MemSpec
{
    std::string name;            ///< e.g. "NMPx4"
    MemKind kind = MemKind::Ddr4;
    int channels = 0;            ///< memory channels
    int dimms_per_channel = 0;
    int ranks_per_dimm = 0;
    int64_t capacity_gb = 0;
    double tdp_w = 0.0;

    /** @return total ranks (the NMP rank-level parallelism factor). */
    int totalRanks() const
    { return channels * dimms_per_channel * ranks_per_dimm; }

    /** @return peak pin bandwidth in GB/s (DDR4-2666, 21.3 GB/s/ch). */
    double peakBwGbps() const;

    /** @return capacity in bytes. */
    int64_t capacityBytes() const
    { return capacity_gb * (1ll << 30); }
};

/** A discrete GPU accelerator. */
struct GpuSpec
{
    std::string name;          ///< "NVIDIA V100"
    double boost_mhz = 0.0;
    int sms = 0;               ///< streaming multiprocessors
    int tpcs = 0;
    double hbm_gbps = 0.0;     ///< HBM2 bandwidth
    int64_t mem_gb = 0;        ///< device memory capacity
    double pcie_gbps = 0.0;    ///< host link bandwidth
    double tdp_w = 0.0;

    /** @return peak fp32 TFLOP/s (SMs x 64 lanes x 2 FMA x clock). */
    double peakTflops() const;

    /** @return device memory in bytes. */
    int64_t memBytes() const { return mem_gb * (1ll << 30); }
};

/** @return the Xeon D-2191 socket (CPU-T1 in Table II). */
CpuSpec cpuT1();

/** @return the Xeon Gold 6138 socket (CPU-T2 in Table II). */
CpuSpec cpuT2();

/** @return CPU-T1's DDR4 config: 4ch x 1 DIMM x 1 rank, 64 GB, 28 W. */
MemSpec ddr4T1();

/** @return CPU-T2's DDR4 config: 4ch x 1 DIMM x 2 ranks, 128 GB, 50 W. */
MemSpec ddr4T2();

/**
 * @return an NMP-DIMM config with `n` ranks per channel (n in {2,4,8}),
 * matching Table II's NMPx2/x4/x8 rows.
 */
MemSpec nmpX(int n);

/** @return the NVIDIA P100 spec. */
GpuSpec gpuP100();

/** @return the NVIDIA V100 spec. */
GpuSpec gpuV100();

}  // namespace hercules::hw
