/**
 * @file
 * Analytical server power model standing in for the paper's RAPL /
 * nvidia-smi measurements. Each component contributes idle (leakage)
 * power plus activity-proportional dynamic power capped at its TDP.
 */
#pragma once

#include "hw/server.h"

namespace hercules::hw {

/** Component utilizations in [0, 1] describing one operating point. */
struct Utilization
{
    double cpu = 0.0;     ///< fraction of core-cycles busy
    double mem_bw = 0.0;  ///< fraction of effective bandwidth consumed
    double gpu = 0.0;     ///< fraction of SM-time busy
};

/**
 * Power model for one server.
 *
 * NMP memory dissipates extra idle power for the per-rank processing
 * units and the additional DIMMs — the effect that makes NMPx8 a poor
 * QPS/W choice for one-hot models (Fig 15).
 */
class PowerModel
{
  public:
    /** @param server the server architecture to model. */
    explicit PowerModel(const ServerSpec& server);

    /** @return CPU socket power at the given utilization (W). */
    double cpuPowerW(double util) const;

    /** @return memory subsystem power at the given BW utilization (W). */
    double memPowerW(double bw_util) const;

    /** @return GPU power at the given utilization (0 without GPU). */
    double gpuPowerW(double util) const;

    /** @return whole-server power at an operating point (W). */
    double serverPowerW(const Utilization& u) const;

    /** @return power with everything idle (W). */
    double idlePowerW() const;

    /** @return power with everything saturated (W). */
    double peakPowerW() const;

  private:
    ServerSpec server_;
};

}  // namespace hercules::hw
