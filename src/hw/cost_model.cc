#include "hw/cost_model.h"

#include <algorithm>
#include <cmath>

#include "hw/calibration.h"
#include "util/logging.h"

namespace hercules::hw {

using model::EmbeddingParams;
using model::Graph;
using model::Node;
using model::OpKind;

CostModel::CostModel(const ServerSpec& server) : server_(server) {}

double
CostModel::effectiveHostBwGbps(int threads) const
{
    using namespace calib;
    threads = std::max(threads, 1);
    // Rank-level parallelism limits random-gather efficiency: a 4-rank
    // config (CPU-T1) exposes fewer open banks than an 8-rank one.
    double rank_factor =
        std::min(1.0, static_cast<double>(server_.mem.totalRanks()) / 8.0);
    double base = server_.mem.peakBwGbps() * kDdrGatherEff * rank_factor;
    double interference =
        1.0 + kCpuInterferencePerThread * static_cast<double>(threads - 1);
    return base / interference;
}

double
CostModel::perThreadBwGbps(int threads) const
{
    threads = std::max(threads, 1);
    return effectiveHostBwGbps(threads) / static_cast<double>(threads);
}

const NmpLut&
CostModel::nmpLut(int emb_dim) const
{
    if (!server_.hasNmp())
        panic("nmpLut: server %s has no NMP memory", server_.name.c_str());
    auto it = nmp_luts_.find(emb_dim);
    if (it == nmp_luts_.end()) {
        it = nmp_luts_
                 .emplace(emb_dim,
                          std::make_unique<NmpLut>(server_.mem, emb_dim))
                 .first;
    }
    return *it->second;
}

namespace {

/** Batch-dependent GEMM efficiency on the CPU. */
double
cpuBatchEff(int batch)
{
    double b = static_cast<double>(batch);
    return b / (b + calib::kCpuBatchHalf);
}

/**
 * Batch-dependent fraction of peak FLOPs reached on the GPU: maximum
 * GEMM efficiency times the occupancy a b-row kernel can achieve.
 */
double
gpuBatchEff(int batch)
{
    double b = static_cast<double>(batch);
    return calib::kGpuEffMax * b / (b + calib::kGpuBatchHalf);
}

/** MPS interference slowdown with g co-located clients. */
double
colocSlowdown(int colocated)
{
    int g = std::max(colocated, 1);
    return 1.0 + calib::kGpuColocPenalty * static_cast<double>(g - 1);
}

}  // namespace

double
CostModel::cpuOpLatencyUs(const Node& n, int batch,
                          const CpuExecContext& cx) const
{
    using namespace calib;
    model::OpCost cost = model::opCostPerItem(n);
    double b = static_cast<double>(batch);

    if (n.kind() == OpKind::EmbeddingLookup) {
        const auto& p = std::get<EmbeddingParams>(n.params);
        double pooling =
            std::max(1.0, p.avgPooling() * cx.pooling_scale);
        if (cx.use_nmp && p.pooled) {
            // In-DIMM gather-and-reduce: host just dispatches the dummy
            // SLS-NMP operator and waits for the LUT latency, scaled by
            // this thread's share of the NMP device.
            NmpResult r = nmpLut(p.emb_dim).lookup(batch, pooling);
            double share = std::clamp(cx.nmp_share, 1e-3, 1.0);
            return kNmpHostDispatchUs + r.latency_us / share;
        }
        double bytes = b * pooling * p.emb_dim * 4.0;
        double bw = std::max(cx.mem_bw_gbps, 1e-3) * 1e9;
        return kCpuOpOverheadUs + bytes / bw * 1e6;
    }

    // Compute-bound operator on a single op-worker core.
    double gflops = server_.cpu.effGflopsPerCore() * cpuBatchEff(batch);
    double us = cost.flops * b / (gflops * 1e9) * 1e6;
    return kCpuOpOverheadUs + us;
}

GraphTiming
CostModel::cpuGraphTiming(const Graph& g, int batch,
                          const CpuExecContext& cx) const
{
    using namespace calib;
    int workers = std::max(cx.workers, 1);

    GraphTiming t;
    t.ops.reserve(g.nodes().size());

    // Greedy list scheduling: walk nodes in topological order, placing
    // each op on the earliest-available worker no earlier than its
    // dependencies complete. Independent SparseNet lookups spread across
    // workers; the DenseNet chain serializes (Fig 5).
    std::vector<double> worker_free(static_cast<size_t>(workers), 0.0);
    std::vector<double> node_end(g.nodes().size(), 0.0);
    double dram_lb_bytes = 0.0;  // bandwidth serialization lower bound
    double nmp_total_us = 0.0;

    for (int id : g.topoOrder()) {
        const Node& n = g.node(id);
        double ready = 0.0;
        for (int d : n.deps)
            ready = std::max(ready, node_end[static_cast<size_t>(d)]);

        double lat = cpuOpLatencyUs(n, batch, cx);
        model::OpCost cost = model::opCostPerItem(n);
        double b = static_cast<double>(batch);
        t.flops += cost.flops * b;

        bool on_nmp = false;
        if (n.kind() == OpKind::EmbeddingLookup) {
            const auto& p = std::get<EmbeddingParams>(n.params);
            on_nmp = cx.use_nmp && p.pooled;
            double pooling =
                std::max(1.0, p.avgPooling() * cx.pooling_scale);
            double bytes = b * pooling * p.emb_dim * 4.0;
            if (on_nmp) {
                NmpResult r = nmpLut(p.emb_dim).lookup(batch, pooling);
                double share = std::clamp(cx.nmp_share, 1e-3, 1.0);
                nmp_total_us += r.latency_us / share;
                t.nmp_energy_uj += r.energy_uj;
            } else {
                dram_lb_bytes += bytes;
                t.dram_bytes += bytes;
            }
        }

        // Earliest-available worker.
        size_t w = 0;
        for (size_t i = 1; i < worker_free.size(); ++i)
            if (worker_free[i] < worker_free[w])
                w = i;
        double start = std::max(ready, worker_free[w]);
        double end = start + lat;
        worker_free[w] = end;
        node_end[static_cast<size_t>(id)] = end;
        t.busy_us += lat;
        t.ops.push_back({id, static_cast<int>(w), start, end});
    }

    double makespan = 0.0;
    for (double f : worker_free)
        makespan = std::max(makespan, f);

    // Bandwidth lower bound: gathers scheduled on parallel workers still
    // share this thread's DRAM bandwidth; NMP ops serialize on the NMP
    // device share.
    double bw = std::max(cx.mem_bw_gbps, 1e-3) * 1e9;
    double mem_lb_us = dram_lb_bytes / bw * 1e6;
    double latency = std::max({makespan, mem_lb_us, nmp_total_us});

    t.latency_us = kCpuQueryOverheadUs + latency;
    t.nmp_busy_us = nmp_total_us;
    double span = makespan * static_cast<double>(workers);
    t.idle_frac = span > 0.0 ? 1.0 - t.busy_us / span : 0.0;
    return t;
}

double
CostModel::gpuKernelLatencyUs(const Node& n, int batch,
                              const GpuExecContext& cx) const
{
    using namespace calib;
    if (!server_.hasGpu())
        panic("gpuKernelLatencyUs: server %s has no GPU",
              server_.name.c_str());

    const GpuSpec& gpu = *server_.gpu;
    double slow = colocSlowdown(cx.colocated);
    double b = static_cast<double>(batch);
    model::OpCost cost = model::opCostPerItem(n);

    if (n.kind() == OpKind::EmbeddingLookup) {
        const auto& p = std::get<EmbeddingParams>(n.params);
        double pooling = std::max(
            1.0, p.avgPooling() * cx.pooling_scale * cx.hot_hit_rate);
        double bytes = b * pooling * p.emb_dim * 4.0;
        double bw = gpu.hbm_gbps * kGpuHbmGatherEff * 1e9;
        return kGpuKernelLaunchUs + bytes / bw * 1e6 * slow;
    }

    double eff = gpuBatchEff(batch);
    if (n.kind() == OpKind::Gru) {
        // Sequence-serial recurrence keeps the device poorly utilized
        // regardless of batch.
        eff *= 0.30;
    }
    double flops = cost.flops * b;
    double rate = gpu.peakTflops() * 1e12 * eff;
    return kGpuKernelLaunchUs + flops / rate * 1e6 * slow;
}

GraphTiming
CostModel::gpuGraphTiming(const Graph& g, int batch,
                          const GpuExecContext& cx) const
{
    GraphTiming t;
    t.ops.reserve(g.nodes().size());
    // Kernels issue in-order on the thread's stream.
    double now = 0.0;
    for (int id : g.topoOrder()) {
        const Node& n = g.node(id);
        double lat = gpuKernelLatencyUs(n, batch, cx);
        model::OpCost cost = model::opCostPerItem(n);
        t.flops += cost.flops * static_cast<double>(batch);
        t.ops.push_back({id, 0, now, now + lat});
        now += lat;
    }
    t.latency_us = now;
    t.busy_us = now;
    t.idle_frac = 0.0;
    return t;
}

double
CostModel::gpuInputBytes(const Graph& g, int batch,
                         const GpuExecContext& cx) const
{
    double per_item = 0.0;
    for (const auto& n : g.nodes()) {
        model::OpCost cost = model::opCostPerItem(n);
        switch (n.kind()) {
          case OpKind::EmbeddingLookup: {
            const auto& p = std::get<EmbeddingParams>(n.params);
            double pooling =
                std::max(1.0, p.avgPooling() * cx.pooling_scale);
            // Resident fraction receives raw indices. The cold fraction
            // of a pooled lookup was pre-reduced on the host and arrives
            // as one partial-sum vector per table; a non-pooled cold
            // fraction must ship the gathered rows themselves.
            per_item += pooling * cx.hot_hit_rate * 8.0;
            if (cx.hot_hit_rate < 1.0) {
                if (p.pooled)
                    per_item += p.emb_dim * 4.0;
                else
                    per_item += (1.0 - cx.hot_hit_rate) * pooling *
                                p.emb_dim * 4.0;
            }
            break;
          }
          case OpKind::Fc:
            if (n.deps.empty())
                per_item += cost.input_bytes;  // root dense features
            break;
          case OpKind::Interaction: {
            // Dependencies severed by partitioning arrive over PCIe.
            const auto& p = std::get<model::InteractionParams>(n.params);
            int missing = p.num_features - static_cast<int>(n.deps.size());
            if (missing > 0)
                per_item += static_cast<double>(missing) *
                            p.feature_dim * 4.0;
            break;
          }
          case OpKind::Attention: {
            const auto& p = std::get<model::AttentionParams>(n.params);
            bool has_seq_producer = false;
            for (int d : n.deps) {
                OpKind k = g.node(d).kind();
                if (k == OpKind::EmbeddingLookup || k == OpKind::Gru)
                    has_seq_producer = true;
            }
            if (!has_seq_producer) {
                per_item += p.avgSeqLen() * cx.pooling_scale *
                            p.behavior_dim * 4.0;
            }
            break;
          }
          case OpKind::Gru: {
            const auto& p = std::get<model::GruParams>(n.params);
            if (n.deps.empty()) {
                per_item += p.avgSeqLen() * cx.pooling_scale *
                            p.input_dim * 4.0;
            }
            break;
          }
          case OpKind::Concat: {
            const auto& p = std::get<model::ConcatParams>(n.params);
            double present = 0.0;
            for (int d : n.deps)
                present += model::opCostPerItem(g.node(d)).output_bytes;
            double missing = static_cast<double>(p.total_dim) * 4.0 -
                             present;
            if (missing > 0.0 && n.deps.empty())
                per_item += missing;
            break;
          }
          default:
            break;
        }
    }
    return per_item * static_cast<double>(batch);
}

double
CostModel::pcieBwGbps() const
{
    if (!server_.hasGpu())
        panic("pcieBwGbps: server %s has no GPU", server_.name.c_str());
    return server_.gpu->pcie_gbps * calib::kPcieEff;
}

double
CostModel::pcieTransferUs(double bytes, double bw_share_gbps) const
{
    double bw = std::max(bw_share_gbps, 1e-3) * 1e9;
    return calib::kPcieSetupUs + bytes / bw * 1e6;
}

}  // namespace hercules::hw
