#include "hw/nmp.h"

#include <algorithm>
#include <cmath>

#include "hw/calibration.h"
#include "util/logging.h"

namespace hercules::hw {

NmpSimulator::NmpSimulator(const MemSpec& mem) : ranks_(mem.totalRanks())
{
    if (mem.kind != MemKind::Nmp)
        fatal("NmpSimulator: memory spec '%s' is not NMP", mem.name.c_str());
    if (ranks_ <= 0)
        fatal("NmpSimulator: no ranks");
}

NmpResult
NmpSimulator::simulateSls(int batch, double pooling, int emb_dim) const
{
    using namespace calib;
    if (batch <= 0 || pooling <= 0.0 || emb_dim <= 0)
        fatal("NmpSimulator: bad SLS shape b=%d p=%f d=%d", batch, pooling,
              emb_dim);

    double accesses = static_cast<double>(batch) * pooling;
    double row_bytes = static_cast<double>(emb_dim) * 4.0;
    double bursts = std::ceil(row_bytes / 64.0);

    // Cycles charged per row gather within one rank: activate+CAS
    // amortized over the open banks, plus the data bursts.
    double per_access =
        kNmpAccessCycles / kNmpBankOverlap + bursts * kNmpBurstCycles;

    // Work is spread over all ranks; the PU reduces one pooled vector
    // per item assigned to it.
    double accesses_per_rank = accesses / ranks_;
    double items_per_rank =
        static_cast<double>(batch) / ranks_;
    double cycles = accesses_per_rank * per_access +
                    std::ceil(items_per_rank) * kNmpReduceCycles;

    NmpResult r;
    r.latency_us = cycles / kNmpDramMhz;  // MHz -> cycles/us
    r.energy_uj = accesses * kNmpAccessEnergyNj * 1e-3;
    return r;
}

NmpLut::NmpLut(const MemSpec& mem, int emb_dim) : emb_dim_(emb_dim)
{
    NmpSimulator sim(mem);
    // Grid covers the batch/pooling ranges the six models exercise.
    batches_ = {1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096};
    poolings_ = {1, 2, 5, 10, 20, 40, 80, 160, 320, 640, 1000};
    grid_.reserve(batches_.size() * poolings_.size());
    for (int b : batches_)
        for (double p : poolings_)
            grid_.push_back(sim.simulateSls(b, p, emb_dim));
}

const NmpResult&
NmpLut::at(size_t bi, size_t pi) const
{
    return grid_[bi * poolings_.size() + pi];
}

NmpResult
NmpLut::lookup(int batch, double pooling) const
{
    auto clampIndex = [](double v, const auto& axis, size_t& lo,
                         double& frac) {
        if (v <= static_cast<double>(axis.front())) {
            lo = 0;
            frac = 0.0;
            return;
        }
        if (v >= static_cast<double>(axis.back())) {
            lo = axis.size() - 2;
            frac = 1.0;
            return;
        }
        for (size_t i = 0; i + 1 < axis.size(); ++i) {
            double a = static_cast<double>(axis[i]);
            double b = static_cast<double>(axis[i + 1]);
            if (v >= a && v <= b) {
                lo = i;
                frac = (v - a) / (b - a);
                return;
            }
        }
        lo = axis.size() - 2;
        frac = 1.0;
    };

    size_t bi = 0, pi = 0;
    double bf = 0.0, pf = 0.0;
    clampIndex(static_cast<double>(batch), batches_, bi, bf);
    clampIndex(pooling, poolings_, pi, pf);

    auto lerp = [](double a, double b, double t) { return a + (b - a) * t; };
    auto blend = [&](auto get) {
        double lo = lerp(get(at(bi, pi)), get(at(bi, pi + 1)), pf);
        double hi = lerp(get(at(bi + 1, pi)), get(at(bi + 1, pi + 1)), pf);
        return lerp(lo, hi, bf);
    };

    NmpResult r;
    r.latency_us = blend([](const NmpResult& x) { return x.latency_us; });
    r.energy_uj = blend([](const NmpResult& x) { return x.energy_uj; });
    return r;
}

}  // namespace hercules::hw
