#include "hw/device_specs.h"

#include "hw/calibration.h"
#include "util/logging.h"

namespace hercules::hw {

double
CpuSpec::effGflopsPerCore() const
{
    return freq_ghz * calib::kCpuFlopsPerCycle;
}

double
MemSpec::peakBwGbps() const
{
    // DDR4-2666: 21.3 GB/s per channel regardless of DIMM/rank count
    // (ranks add capacity and parallelism, not pin bandwidth).
    return 21.3 * channels;
}

double
GpuSpec::peakTflops() const
{
    // fp32: 64 CUDA lanes per SM, 2 flops per FMA.
    return sms * 64.0 * 2.0 * boost_mhz * 1e6 / 1e12;
}

CpuSpec
cpuT1()
{
    CpuSpec c;
    c.name = "Intel Xeon D-2191";
    c.freq_ghz = 1.6;
    c.cores = 18;
    c.llc_mb = 24.75;
    c.tdp_w = 86.0;
    return c;
}

CpuSpec
cpuT2()
{
    CpuSpec c;
    c.name = "Intel Xeon Gold 6138";
    c.freq_ghz = 2.0;
    c.cores = 20;
    c.llc_mb = 27.5;
    c.tdp_w = 125.0;
    return c;
}

MemSpec
ddr4T1()
{
    MemSpec m;
    m.name = "DDR4";
    m.kind = MemKind::Ddr4;
    m.channels = 4;
    m.dimms_per_channel = 1;
    m.ranks_per_dimm = 1;
    m.capacity_gb = 64;
    m.tdp_w = 28.0;
    return m;
}

MemSpec
ddr4T2()
{
    MemSpec m;
    m.name = "DDR4";
    m.kind = MemKind::Ddr4;
    m.channels = 4;
    m.dimms_per_channel = 1;
    m.ranks_per_dimm = 2;
    m.capacity_gb = 128;
    m.tdp_w = 50.0;
    return m;
}

MemSpec
nmpX(int n)
{
    MemSpec m;
    m.kind = MemKind::Nmp;
    m.channels = 4;
    m.ranks_per_dimm = 2;
    switch (n) {
      case 2:
        m.dimms_per_channel = 1;
        m.capacity_gb = 128;
        m.tdp_w = 50.0;
        break;
      case 4:
        m.dimms_per_channel = 2;
        m.capacity_gb = 256;
        m.tdp_w = 100.0;
        break;
      case 8:
        m.dimms_per_channel = 4;
        m.capacity_gb = 512;
        m.tdp_w = 200.0;
        break;
      default:
        fatal("nmpX: unsupported rank parallelism %d (use 2, 4 or 8)", n);
    }
    m.name = "NMPx" + std::to_string(n);
    return m;
}

GpuSpec
gpuP100()
{
    GpuSpec g;
    g.name = "NVIDIA P100";
    g.boost_mhz = 1480.0;
    g.sms = 56;
    g.tpcs = 28;
    g.hbm_gbps = 732.0;
    g.mem_gb = 16;
    g.pcie_gbps = 16.0;
    g.tdp_w = 300.0;
    return g;
}

GpuSpec
gpuV100()
{
    GpuSpec g;
    g.name = "NVIDIA V100";
    g.boost_mhz = 1530.0;
    g.sms = 80;
    g.tpcs = 40;
    g.hbm_gbps = 900.0;
    g.mem_gb = 16;
    g.pcie_gbps = 16.0;
    g.tdp_w = 300.0;
    return g;
}

}  // namespace hercules::hw
