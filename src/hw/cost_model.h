/**
 * @file
 * Per-operator and per-graph latency/energy primitives for CPU hosts,
 * NMP DIMMs and GPU accelerators.
 *
 * The model is a calibrated roofline plus dependency-aware list
 * scheduling:
 *  - compute ops (FC / attention / GRU / interaction) cost FLOPs against
 *    effective device FLOP rates with batch-dependent efficiency;
 *  - embedding gathers cost DRAM bytes against a bandwidth share (or a
 *    cycle-approximate NMP LUT when offloaded);
 *  - a thread's op-workers execute independent ops in parallel; the
 *    dependency chain of the DenseNet bounds that parallelism and
 *    produces the worker idling of Fig 5;
 *  - the thread-level batch latency is the maximum of the scheduled
 *    makespan and the bandwidth-serialization lower bound.
 */
#pragma once

#include <memory>
#include <unordered_map>
#include <vector>

#include "hw/nmp.h"
#include "hw/server.h"
#include "model/footprint.h"
#include "model/graph.h"

namespace hercules::hw {

/** Resources visible to one CPU inference thread. */
struct CpuExecContext
{
    int workers = 1;             ///< op-parallel workers (physical cores)
    double mem_bw_gbps = 10.0;   ///< this thread's DRAM bandwidth share
    bool use_nmp = false;        ///< offload pooled SLS to the NMP DIMMs
    double nmp_share = 1.0;      ///< fraction of NMP throughput available
    double pooling_scale = 1.0;  ///< scales every embedding's pooling
};

/** Resources visible to one GPU inference thread. */
struct GpuExecContext
{
    int colocated = 1;           ///< co-located threads (MPS clients)
    double pooling_scale = 1.0;  ///< scales every embedding's pooling
    double hot_hit_rate = 1.0;   ///< resident fraction of lookups
};

/** Result of timing one batch through a graph on one thread. */
struct GraphTiming
{
    double latency_us = 0.0;   ///< batch service latency (makespan)
    double busy_us = 0.0;      ///< total worker-busy time
    double idle_frac = 0.0;    ///< worker idle fraction of the schedule
    double flops = 0.0;        ///< arithmetic performed
    double dram_bytes = 0.0;   ///< host DRAM traffic of the batch
    double nmp_busy_us = 0.0;  ///< time the NMP device was occupied
    double nmp_energy_uj = 0.0;

    /** One scheduled operator, for breakdown figures (Fig 5). */
    struct OpRecord
    {
        int node = -1;
        int worker = 0;
        double start_us = 0.0;
        double end_us = 0.0;
    };
    std::vector<OpRecord> ops;
};

/**
 * Cost model bound to one server architecture.
 *
 * NMP lookup tables are built lazily per embedding width, mirroring the
 * paper's pre-simulated LUT methodology.
 */
class CostModel
{
  public:
    /** @param server the architecture to model. */
    explicit CostModel(const ServerSpec& server);

    /** @return the bound server spec. */
    const ServerSpec& server() const { return server_; }

    /**
     * Total effective host gather bandwidth (GB/s) when `threads`
     * memory-hungry inference threads are co-located; includes the
     * interference degradation beyond pure sharing.
     */
    double effectiveHostBwGbps(int threads) const;

    /** Per-thread bandwidth share for `threads` co-located threads. */
    double perThreadBwGbps(int threads) const;

    /** Latency of one operator on a CPU worker (us). */
    double cpuOpLatencyUs(const model::Node& n, int batch,
                          const CpuExecContext& cx) const;

    /** Time one batch through a graph on one CPU inference thread. */
    GraphTiming cpuGraphTiming(const model::Graph& g, int batch,
                               const CpuExecContext& cx) const;

    /** Kernel latency of one operator on the GPU (us). */
    double gpuKernelLatencyUs(const model::Node& n, int batch,
                              const GpuExecContext& cx) const;

    /** Time one batch through a graph on one GPU inference thread. */
    GraphTiming gpuGraphTiming(const model::Graph& g, int batch,
                               const GpuExecContext& cx) const;

    /**
     * Host->device bytes for one batch of the given graph: embedding
     * indices, root dense features, partial sums for non-resident
     * (cold) table fractions, and inputs severed by graph partitioning.
     */
    double gpuInputBytes(const model::Graph& g, int batch,
                         const GpuExecContext& cx) const;

    /** Effective PCIe bandwidth (GB/s). */
    double pcieBwGbps() const;

    /** PCIe DMA latency for `bytes` at the given bandwidth share. */
    double pcieTransferUs(double bytes, double bw_share_gbps) const;

    /** @return the NMP LUT for an embedding width (server must be NMP). */
    const NmpLut& nmpLut(int emb_dim) const;

  private:
    ServerSpec server_;
    mutable std::unordered_map<int, std::unique_ptr<NmpLut>> nmp_luts_;
};

}  // namespace hercules::hw
