/**
 * @file
 * Cycle-approximate simulator of a DIMM-based near-memory-processing
 * (NMP) device executing SparseLengthsSum (gather-and-reduce), in the
 * style of RecNMP [25].
 *
 * The paper's methodology (Fig 13) runs a cycle-level NMP simulation of
 * sampled queries ahead of time and records latency/energy in a lookup
 * table (LUT); online, a dummy SLS-NMP operator taxes the LUT latency.
 * We reproduce exactly that: NmpSimulator is the cycle model, NmpLut the
 * pre-built table with interpolation.
 */
#pragma once

#include <vector>

#include "hw/device_specs.h"

namespace hercules::hw {

/** Latency and energy of one SLS operation executed in-DIMM. */
struct NmpResult
{
    double latency_us = 0.0;
    double energy_uj = 0.0;
};

/**
 * Cycle-approximate model of rank-parallel gather-and-reduce.
 *
 * Row accesses are spread round-robin across all NMP ranks; each access
 * pays DRAM activate+CAS cycles (amortized by bank-level parallelism)
 * plus data burst cycles; the per-rank processing unit adds reduce
 * cycles per pooled vector. Latency scales ~1/ranks, which is the
 * rank-level parallelism NMPxN advertises in Table II.
 */
class NmpSimulator
{
  public:
    /** @param mem an NMP memory spec (fatal if kind != Nmp). */
    explicit NmpSimulator(const MemSpec& mem);

    /**
     * Simulate one SLS operator.
     *
     * @param batch    items in the batch.
     * @param pooling  rows gathered and reduced per item.
     * @param emb_dim  embedding width (fp32 elements).
     */
    NmpResult simulateSls(int batch, double pooling, int emb_dim) const;

    /** @return the number of NMP ranks (parallelism factor). */
    int ranks() const { return ranks_; }

  private:
    int ranks_;
};

/**
 * Pre-built latency/energy lookup table over a (batch x pooling) grid
 * for a fixed embedding width, with bilinear interpolation — the "LUT"
 * of the paper's evaluation framework. Using the LUT during serving
 * keeps the expensive cycle simulation off the critical path.
 */
class NmpLut
{
  public:
    /**
     * Pre-simulate the grid.
     * @param mem      NMP memory spec.
     * @param emb_dim  embedding width this LUT is built for.
     */
    NmpLut(const MemSpec& mem, int emb_dim);

    /** Interpolated lookup (clamped to the grid boundary). */
    NmpResult lookup(int batch, double pooling) const;

    /** @return embedding width the table was built for. */
    int embDim() const { return emb_dim_; }

  private:
    int emb_dim_;
    std::vector<int> batches_;
    std::vector<double> poolings_;
    std::vector<NmpResult> grid_;  ///< batches_ x poolings_, row-major

    const NmpResult& at(size_t bi, size_t pi) const;
};

}  // namespace hercules::hw
