/**
 * @file
 * Synthetic diurnal load curves with the properties the paper measures
 * on production services (Fig 2(d)): one dominant daily cycle, peaks
 * synchronized across services/datacenters, >50% peak-to-trough swing,
 * and mild stochastic ripple.
 */
#pragma once

#include <cstdint>
#include <vector>

namespace hercules::workload {

/** Configuration of one service's diurnal curve. */
struct DiurnalConfig
{
    double peak_qps = 50'000.0;  ///< load at the daily peak
    double trough_frac = 0.40;   ///< trough load as a fraction of peak
    double peak_hour = 20.0;     ///< local hour of the daily peak
    double noise_frac = 0.03;    ///< ripple amplitude (fraction of peak)
    uint64_t seed = 1;           ///< ripple phase seed

    /**
     * Unforecast overload window (flash crowd): inside
     * [surge_hour, surge_hour + surge_hours) the *actual* demand —
     * loadAt(), and therefore the generated arrival trace — is
     * multiplied by surge_factor, while forecastAt() (what the
     * provisioner plans against) stays on the base curve. The defaults
     * (factor 1, zero span) are behaviour-preserving: loadAt ==
     * forecastAt. A surge timed at peak_hour with factor 1.5 produces
     * the "1.5x over-peak" overload interval the QoS bench stresses.
     */
    double surge_hour = 0.0;    ///< window start (hours, not cyclic)
    double surge_hours = 0.0;   ///< window length (0 disables)
    double surge_factor = 1.0;  ///< demand multiplier inside the window
};

/**
 * Deterministic, smooth diurnal load function.
 *
 * load(t) = trough + (peak - trough) * s(t) with s(t) a raised cosine
 * plus a second harmonic (morning shoulder), modulated by a small
 * seeded ripple so distinct services do not coincide exactly.
 */
class DiurnalLoad
{
  public:
    /** @param cfg curve parameters. */
    explicit DiurnalLoad(DiurnalConfig cfg);

    /**
     * @return actual demand in QPS at time `t_hours` (any horizon; 24h
     * cycle), including any configured surge window.
     */
    double loadAt(double t_hours) const;

    /**
     * @return forecast demand at `t_hours`: the base diurnal curve
     * *without* the surge multiplier — what a provisioner planning
     * from load history would predict. Equal to loadAt() when no surge
     * is configured.
     */
    double forecastAt(double t_hours) const;

    /** Sample the curve every `interval_hours` over `horizon_hours`. */
    std::vector<double> sample(double horizon_hours,
                               double interval_hours) const;

    /** @return configured peak QPS. */
    double peakQps() const { return cfg_.peak_qps; }

    /** @return the configuration. */
    const DiurnalConfig& config() const { return cfg_; }

  private:
    DiurnalConfig cfg_;
    double ripple_phase1_;
    double ripple_phase2_;
};

}  // namespace hercules::workload
