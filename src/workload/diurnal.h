/**
 * @file
 * Synthetic diurnal load curves with the properties the paper measures
 * on production services (Fig 2(d)): one dominant daily cycle, peaks
 * synchronized across services/datacenters, >50% peak-to-trough swing,
 * and mild stochastic ripple.
 */
#pragma once

#include <cstdint>
#include <vector>

namespace hercules::workload {

/** Configuration of one service's diurnal curve. */
struct DiurnalConfig
{
    double peak_qps = 50'000.0;  ///< load at the daily peak
    double trough_frac = 0.40;   ///< trough load as a fraction of peak
    double peak_hour = 20.0;     ///< local hour of the daily peak
    double noise_frac = 0.03;    ///< ripple amplitude (fraction of peak)
    uint64_t seed = 1;           ///< ripple phase seed
};

/**
 * Deterministic, smooth diurnal load function.
 *
 * load(t) = trough + (peak - trough) * s(t) with s(t) a raised cosine
 * plus a second harmonic (morning shoulder), modulated by a small
 * seeded ripple so distinct services do not coincide exactly.
 */
class DiurnalLoad
{
  public:
    /** @param cfg curve parameters. */
    explicit DiurnalLoad(DiurnalConfig cfg);

    /** @return load in QPS at time `t_hours` (any horizon; 24h cycle). */
    double loadAt(double t_hours) const;

    /** Sample the curve every `interval_hours` over `horizon_hours`. */
    std::vector<double> sample(double horizon_hours,
                               double interval_hours) const;

    /** @return configured peak QPS. */
    double peakQps() const { return cfg_.peak_qps; }

    /** @return the configuration. */
    const DiurnalConfig& config() const { return cfg_; }

  private:
    DiurnalConfig cfg_;
    double ripple_phase1_;
    double ripple_phase2_;
};

}  // namespace hercules::workload
