/**
 * @file
 * Timestamped arrival traces driven by a diurnal load curve: a
 * non-homogeneous Poisson process whose instantaneous rate follows
 * DiurnalLoad::loadAt, realized as piecewise-constant buckets (the
 * Poisson process is memoryless, so re-drawing the rate at bucket
 * boundaries is exact for a piecewise-constant intensity).
 *
 * Because a full day at production rates is billions of queries, the
 * generator supports *time compression*: with compression factor c,
 * one simulated second stands for c wall-clock seconds of the diurnal
 * cycle. Instantaneous QPS — and therefore all queueing/latency
 * dynamics — is unchanged; only the span of simulated time (and the
 * query count) shrinks by c. Downstream interval lengths must be
 * divided by the same factor (ClusterSim and cluster::serveTrace do
 * this internally).
 */
#pragma once

#include <cstdint>
#include <vector>

#include "workload/diurnal.h"
#include "workload/query.h"
#include "workload/querygen.h"

namespace hercules::workload {

/** Options of one trace generation. */
struct TraceOptions
{
    double horizon_hours = 24.0;   ///< wall-clock span of the trace
    /** Rate-update granularity in wall-clock seconds. */
    double bucket_seconds = 60.0;
    /** Wall-clock seconds represented by one simulated second (>= 1). */
    double time_compression = 1.0;
    uint64_t seed = 42;            ///< equal seeds give identical traces
    QuerySizeDist sizes{};
    PoolingDist pooling{};
};

/**
 * Generates one reproducible arrival trace over the configured horizon.
 *
 * Arrival timestamps are in *simulated* seconds: wall-clock time t maps
 * to t / time_compression. Query sizes and pooling multipliers follow
 * the same distributions as QueryGenerator.
 */
class TraceGenerator
{
  public:
    /**
     * @param load the diurnal curve to follow (copied; the argument
     *             need not outlive the generator).
     * @param opt  trace options.
     */
    TraceGenerator(const DiurnalLoad& load, TraceOptions opt);

    /** @return the full trace, sorted by arrival time. */
    std::vector<Query> generate();

    /** @return simulated span of the trace in seconds. */
    double simSeconds() const;

    /** @return the options. */
    const TraceOptions& options() const { return opt_; }

  private:
    DiurnalLoad load_;
    TraceOptions opt_;
};

}  // namespace hercules::workload
