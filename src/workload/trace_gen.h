/**
 * @file
 * Timestamped arrival traces driven by a diurnal load curve: a
 * non-homogeneous Poisson process whose instantaneous rate follows
 * DiurnalLoad::loadAt, realized as piecewise-constant buckets (the
 * Poisson process is memoryless, so re-drawing the rate at bucket
 * boundaries is exact for a piecewise-constant intensity).
 *
 * Because a full day at production rates is billions of queries, the
 * generator supports *time compression*: with compression factor c,
 * one simulated second stands for c wall-clock seconds of the diurnal
 * cycle. Instantaneous QPS — and therefore all queueing/latency
 * dynamics — is unchanged; only the span of simulated time (and the
 * query count) shrinks by c. Downstream interval lengths must be
 * divided by the same factor (ClusterSim and cluster::serveTrace do
 * this internally).
 */
#pragma once

#include <cstdint>
#include <vector>

#include "workload/diurnal.h"
#include "workload/query.h"
#include "workload/querygen.h"

namespace hercules::workload {

/** Options of one trace generation. */
struct TraceOptions
{
    double horizon_hours = 24.0;   ///< wall-clock span of the trace
    /** Rate-update granularity in wall-clock seconds. */
    double bucket_seconds = 60.0;
    /** Wall-clock seconds represented by one simulated second (>= 1). */
    double time_compression = 1.0;
    uint64_t seed = 42;            ///< equal seeds give identical traces
    QuerySizeDist sizes{};
    PoolingDist pooling{};
};

/**
 * Generates one reproducible arrival trace over the configured horizon.
 *
 * Arrival timestamps are in *simulated* seconds: wall-clock time t maps
 * to t / time_compression. Query sizes and pooling multipliers follow
 * the same distributions as QueryGenerator.
 */
class TraceGenerator
{
  public:
    /**
     * @param load the diurnal curve to follow (copied; the argument
     *             need not outlive the generator).
     * @param opt  trace options.
     */
    TraceGenerator(const DiurnalLoad& load, TraceOptions opt);

    /** @return the full trace, sorted by arrival time. */
    std::vector<Query> generate();

    /** @return simulated span of the trace in seconds. */
    double simSeconds() const;

    /** @return the options. */
    const TraceOptions& options() const { return opt_; }

  private:
    DiurnalLoad load_;
    TraceOptions opt_;
};

// ---- multi-service mode --------------------------------------------------

/**
 * One co-served service's arrival stream in a merged trace: its own
 * diurnal curve (typically phase-shifted against the other services)
 * and its own query-size / pooling distributions.
 */
struct ServiceTraceSpec
{
    DiurnalConfig load{};
    QuerySizeDist sizes{};
    PoolingDist pooling{};
};

/**
 * The seed service `service`'s sub-stream is drawn with in a merged
 * trace. Service 0 uses `base_seed` unchanged, so a one-service merged
 * trace is arrival-for-arrival identical to the single-service
 * TraceGenerator with the same options; later services get
 * deterministic, well-separated derived seeds.
 */
uint64_t serviceTraceSeed(uint64_t base_seed, size_t service);

/**
 * Generate one merged multi-service arrival trace: each service's
 * stream is an independent NHPP over its own diurnal curve (seeded
 * with serviceTraceSeed(opt.seed, s), sizes/pooling from its spec,
 * all other options — horizon, buckets, compression — shared), tagged
 * with `service_id = s`, then merged by arrival time (ties break by
 * service index) with globally renumbered query ids.
 *
 * Fixed options + specs give a bitwise-identical merged trace.
 */
std::vector<Query> generateMultiServiceTrace(
    const std::vector<ServiceTraceSpec>& services,
    const TraceOptions& opt);

}  // namespace hercules::workload
