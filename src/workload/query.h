/**
 * @file
 * The unit of work: one inference query ranking `size` candidate items
 * for one user (paper §II-A). Query sizes follow a heavy-tailed
 * distribution (Fig 2(b)); per-query pooling variance models the
 * pooling-factor spread of Fig 2(c).
 */
#pragma once

#include <cstdint>

namespace hercules::workload {

/** One inference request. */
struct Query
{
    uint64_t id = 0;
    double arrival_s = 0.0;      ///< arrival time (seconds)
    int size = 0;                ///< number of candidate items to rank
    double pooling_scale = 1.0;  ///< per-query pooling multiplier
    /**
     * The service (co-served model) this query belongs to. Single-
     * service traces leave it 0; multi-service traces tag each query
     * with the index of its service so the cluster layer can route it
     * to that service's shards and account its SLA separately.
     */
    int service_id = 0;
};

}  // namespace hercules::workload
