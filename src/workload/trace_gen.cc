#include "workload/trace_gen.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"
#include "util/rng.h"

namespace hercules::workload {

TraceGenerator::TraceGenerator(const DiurnalLoad& load, TraceOptions opt)
    : load_(load), opt_(opt)
{
    if (opt_.horizon_hours <= 0.0)
        fatal("TraceGenerator: non-positive horizon %f",
              opt_.horizon_hours);
    if (opt_.bucket_seconds <= 0.0)
        fatal("TraceGenerator: non-positive bucket %f",
              opt_.bucket_seconds);
    if (opt_.time_compression < 1.0)
        fatal("TraceGenerator: compression %f below 1",
              opt_.time_compression);
}

double
TraceGenerator::simSeconds() const
{
    return opt_.horizon_hours * 3600.0 / opt_.time_compression;
}

std::vector<Query>
TraceGenerator::generate()
{
    Rng rng(opt_.seed);
    std::vector<Query> trace;
    const double horizon_s = simSeconds();
    const double bucket_s = opt_.bucket_seconds / opt_.time_compression;
    const double mu = std::log(opt_.sizes.median);

    uint64_t id = 0;
    double t = 0.0;                   // simulated seconds
    double bucket_end = bucket_s;
    // Rate of the current bucket, sampled at the bucket midpoint of the
    // wall-clock curve.
    auto bucketRate = [&](double bucket_start) {
        double mid_s = std::min(bucket_start + 0.5 * bucket_s, horizon_s);
        double wall_hours =
            mid_s * opt_.time_compression / 3600.0;
        return load_.loadAt(wall_hours);
    };
    double rate = bucketRate(0.0);
    // Expected query count, for the reserve only (capped: growth is
    // cheap relative to a mis-sized up-front allocation).
    trace.reserve(static_cast<size_t>(
        std::min(load_.peakQps() * horizon_s * 0.75, 4e6)));

    while (t < horizon_s) {
        if (rate <= 1e-9) {
            // Dead bucket: skip straight to the next one.
            t = bucket_end;
            bucket_end += bucket_s;
            rate = bucketRate(t);
            continue;
        }
        double gap = rng.exponential(rate);
        if (t + gap >= bucket_end) {
            // The draw crosses the boundary: restart at the boundary
            // with the next bucket's rate (exact for piecewise-constant
            // intensity, by memorylessness).
            t = bucket_end;
            bucket_end += bucket_s;
            rate = bucketRate(t);
            continue;
        }
        t += gap;
        if (t >= horizon_s)
            break;
        Query q;
        q.id = id++;
        q.arrival_s = t;
        double raw = rng.lognormal(mu, opt_.sizes.sigma);
        q.size = std::clamp(static_cast<int>(std::lround(raw)),
                            opt_.sizes.min_size, opt_.sizes.max_size);
        q.pooling_scale = rng.lognormal(0.0, opt_.pooling.sigma);
        trace.push_back(q);
    }
    return trace;
}

}  // namespace hercules::workload
