#include "workload/trace_gen.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"
#include "util/rng.h"

namespace hercules::workload {

TraceGenerator::TraceGenerator(const DiurnalLoad& load, TraceOptions opt)
    : load_(load), opt_(opt)
{
    if (opt_.horizon_hours <= 0.0)
        fatal("TraceGenerator: non-positive horizon %f",
              opt_.horizon_hours);
    if (opt_.bucket_seconds <= 0.0)
        fatal("TraceGenerator: non-positive bucket %f",
              opt_.bucket_seconds);
    if (opt_.time_compression < 1.0)
        fatal("TraceGenerator: compression %f below 1",
              opt_.time_compression);
}

double
TraceGenerator::simSeconds() const
{
    return opt_.horizon_hours * 3600.0 / opt_.time_compression;
}

std::vector<Query>
TraceGenerator::generate()
{
    Rng rng(opt_.seed);
    std::vector<Query> trace;
    const double horizon_s = simSeconds();
    const double bucket_s = opt_.bucket_seconds / opt_.time_compression;
    const double mu = std::log(opt_.sizes.median);

    uint64_t id = 0;
    double t = 0.0;                   // simulated seconds
    double bucket_end = bucket_s;
    // Rate of the current bucket, sampled at the bucket midpoint of the
    // wall-clock curve.
    auto bucketRate = [&](double bucket_start) {
        double mid_s = std::min(bucket_start + 0.5 * bucket_s, horizon_s);
        double wall_hours =
            mid_s * opt_.time_compression / 3600.0;
        return load_.loadAt(wall_hours);
    };
    double rate = bucketRate(0.0);
    // Expected query count, for the reserve only (capped: growth is
    // cheap relative to a mis-sized up-front allocation).
    trace.reserve(static_cast<size_t>(
        std::min(load_.peakQps() * horizon_s * 0.75, 4e6)));

    while (t < horizon_s) {
        if (rate <= 1e-9) {
            // Dead bucket: skip straight to the next one.
            t = bucket_end;
            bucket_end += bucket_s;
            rate = bucketRate(t);
            continue;
        }
        double gap = rng.exponential(rate);
        if (t + gap >= bucket_end) {
            // The draw crosses the boundary: restart at the boundary
            // with the next bucket's rate (exact for piecewise-constant
            // intensity, by memorylessness).
            t = bucket_end;
            bucket_end += bucket_s;
            rate = bucketRate(t);
            continue;
        }
        t += gap;
        if (t >= horizon_s)
            break;
        Query q;
        q.id = id++;
        q.arrival_s = t;
        double raw = rng.lognormal(mu, opt_.sizes.sigma);
        q.size = std::clamp(static_cast<int>(std::lround(raw)),
                            opt_.sizes.min_size, opt_.sizes.max_size);
        q.pooling_scale = rng.lognormal(0.0, opt_.pooling.sigma);
        trace.push_back(q);
    }
    return trace;
}

uint64_t
serviceTraceSeed(uint64_t base_seed, size_t service)
{
    // Golden-ratio stride keeps the per-service streams well separated;
    // service 0 keeps the base seed so single-service merged traces
    // reproduce the plain TraceGenerator stream exactly.
    return base_seed +
           0x9E3779B97F4A7C15ull * static_cast<uint64_t>(service);
}

std::vector<Query>
generateMultiServiceTrace(const std::vector<ServiceTraceSpec>& services,
                          const TraceOptions& opt)
{
    if (services.empty())
        fatal("generateMultiServiceTrace: no services");

    std::vector<Query> merged;
    for (size_t s = 0; s < services.size(); ++s) {
        TraceOptions o = opt;
        o.seed = serviceTraceSeed(opt.seed, s);
        o.sizes = services[s].sizes;
        o.pooling = services[s].pooling;
        DiurnalLoad load(services[s].load);
        std::vector<Query> stream = TraceGenerator(load, o).generate();
        merged.reserve(merged.size() + stream.size());
        for (Query& q : stream) {
            q.service_id = static_cast<int>(s);
            merged.push_back(q);
        }
    }
    // Merge by arrival; the stable sort breaks (measure-zero) timestamp
    // ties by service index, keeping the merge deterministic.
    std::stable_sort(merged.begin(), merged.end(),
                     [](const Query& a, const Query& b) {
                         return a.arrival_s < b.arrival_s;
                     });
    for (size_t i = 0; i < merged.size(); ++i)
        merged[i].id = i;
    return merged;
}

}  // namespace hercules::workload
