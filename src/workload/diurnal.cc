#include "workload/diurnal.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"
#include "util/rng.h"

namespace hercules::workload {

DiurnalLoad::DiurnalLoad(DiurnalConfig cfg) : cfg_(cfg)
{
    if (cfg_.peak_qps <= 0.0)
        fatal("DiurnalLoad: non-positive peak %f", cfg_.peak_qps);
    if (cfg_.trough_frac < 0.0 || cfg_.trough_frac > 1.0)
        fatal("DiurnalLoad: trough fraction %f outside [0,1]",
              cfg_.trough_frac);
    if (cfg_.surge_hours < 0.0 || cfg_.surge_factor < 0.0)
        fatal("DiurnalLoad: negative surge window/factor (%f h, x%f)",
              cfg_.surge_hours, cfg_.surge_factor);
    Rng rng(cfg_.seed);
    ripple_phase1_ = rng.uniform(0.0, 2.0 * M_PI);
    ripple_phase2_ = rng.uniform(0.0, 2.0 * M_PI);
}

double
DiurnalLoad::loadAt(double t_hours) const
{
    double load = forecastAt(t_hours);
    if (cfg_.surge_hours > 0.0 && t_hours >= cfg_.surge_hour &&
        t_hours < cfg_.surge_hour + cfg_.surge_hours)
        load *= cfg_.surge_factor;
    return load;
}

double
DiurnalLoad::forecastAt(double t_hours) const
{
    const double w = 2.0 * M_PI / 24.0;
    double x = w * (t_hours - cfg_.peak_hour);
    // Raised cosine (peak at peak_hour) with a second harmonic giving
    // the characteristic asymmetric morning shoulder.
    double s = 0.5 * (1.0 + std::cos(x));
    s += 0.12 * std::cos(2.0 * x + 0.9);
    s = std::clamp(s, 0.0, 1.0);

    double base = cfg_.trough_frac + (1.0 - cfg_.trough_frac) * s;
    // Smooth deterministic ripple (two incommensurate harmonics).
    double ripple =
        std::sin(5.0 * w * t_hours + ripple_phase1_) * 0.6 +
        std::sin(11.0 * w * t_hours + ripple_phase2_) * 0.4;
    double load =
        cfg_.peak_qps * (base + cfg_.noise_frac * ripple);
    return std::max(load, 0.0);
}

std::vector<double>
DiurnalLoad::sample(double horizon_hours, double interval_hours) const
{
    if (interval_hours <= 0.0)
        fatal("DiurnalLoad::sample: non-positive interval");
    std::vector<double> out;
    for (double t = 0.0; t < horizon_hours; t += interval_hours)
        out.push_back(loadAt(t));
    return out;
}

}  // namespace hercules::workload
