#include "workload/querygen.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace hercules::workload {

namespace {

/** Inverse standard normal CDF (Acklam's rational approximation). */
double
invNormalCdf(double p)
{
    if (p <= 0.0 || p >= 1.0)
        panic("invNormalCdf: p out of (0,1): %f", p);
    static const double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                               -2.759285104469687e+02, 1.383577518672690e+02,
                               -3.066479806614716e+01, 2.506628277459239e+00};
    static const double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                               -1.556989798598866e+02, 6.680131188771972e+01,
                               -1.328068155288572e+01};
    static const double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                               -2.400758277161838e+00, -2.549732539343734e+00,
                               4.374664141464968e+00,  2.938163982698783e+00};
    static const double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                               2.445134137142996e+00, 3.754408661907416e+00};
    const double plow = 0.02425;
    const double phigh = 1 - plow;
    double q, r;
    if (p < plow) {
        q = std::sqrt(-2 * std::log(p));
        return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
                c[5]) /
               ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1);
    }
    if (p <= phigh) {
        q = p - 0.5;
        r = q * q;
        return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r +
                a[5]) *
               q /
               (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r +
                1);
    }
    q = std::sqrt(-2 * std::log(1 - p));
    return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
             c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1);
}

}  // namespace

double
QuerySizeDist::percentile(double p) const
{
    double z = invNormalCdf(p / 100.0);
    return median * std::exp(sigma * z);
}

QueryGenerator::QueryGenerator(double qps, uint64_t seed,
                               QuerySizeDist sizes, PoolingDist pool)
    : qps_(qps), sizes_(sizes), pool_(pool), rng_(seed)
{
    if (qps <= 0.0)
        fatal("QueryGenerator: non-positive rate %f", qps);
}

void
QueryGenerator::setQps(double qps)
{
    if (qps <= 0.0)
        fatal("QueryGenerator::setQps: non-positive rate %f", qps);
    qps_ = qps;
}

Query
QueryGenerator::next()
{
    Query q;
    clock_s_ += rng_.exponential(qps_);
    q.id = next_id_++;
    q.arrival_s = clock_s_;
    double raw = rng_.lognormal(std::log(sizes_.median), sizes_.sigma);
    q.size = std::clamp(static_cast<int>(std::lround(raw)),
                        sizes_.min_size, sizes_.max_size);
    q.pooling_scale = rng_.lognormal(0.0, pool_.sigma);
    return q;
}

std::vector<Query>
QueryGenerator::generate(size_t n)
{
    std::vector<Query> qs;
    qs.reserve(n);
    for (size_t i = 0; i < n; ++i)
        qs.push_back(next());
    return qs;
}

}  // namespace hercules::workload
