/**
 * @file
 * Synthetic embedding-access traces with Zipf temporal locality,
 * standing in for the production traces the paper's locality-aware
 * partitioner profiles (Fig 10(a): "Hot Embedding Profiling").
 */
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "model/model_zoo.h"

namespace hercules::workload {

/**
 * Access counts per embedding row, per table. Row ids are bucketed
 * (popularity rank order) to keep traces of 600M-row tables tractable.
 */
struct EmbAccessTrace
{
    /** accesses[t][r] = times row r of table t was touched. */
    std::vector<std::vector<uint64_t>> accesses;

    /** @return total accesses to one table. */
    uint64_t tableTotal(size_t table) const;

    /** @return total accesses across tables. */
    uint64_t total() const;
};

/**
 * Generate an access trace by sampling `num_queries` queries of
 * `avg_query_size` items against the model's embedding tables with
 * their configured Zipf skews.
 *
 * Row domains larger than `max_tracked_rows` are tracked only for the
 * first `max_tracked_rows` popularity ranks (the tail is aggregated in
 * the last bucket), which is exactly what a production hot-row profiler
 * does with a count-min-style sketch.
 */
EmbAccessTrace generateTrace(const model::Model& m, int num_queries,
                             int avg_query_size, uint64_t seed,
                             uint64_t max_tracked_rows = 1u << 20);

/**
 * Empirical hit rate of a hot-row placement against a trace: the
 * fraction of accesses that land on the `hot_rows[t]` most popular rows
 * of each table, weighted by traffic.
 */
double empiricalHitRate(const EmbAccessTrace& trace,
                        const std::vector<int64_t>& hot_rows);

/** Persist a trace as CSV (table,row,count). */
void writeTraceCsv(const EmbAccessTrace& trace, const std::string& path);

/** Load a trace written by writeTraceCsv. */
EmbAccessTrace readTraceCsv(const std::string& path);

}  // namespace hercules::workload
