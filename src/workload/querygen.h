/**
 * @file
 * Trace-driven load generator: Poisson query arrivals with heavy-tailed
 * (lognormal) query sizes, matching the arrival characteristics the
 * paper observes in production (Fig 2(b), §II-A).
 */
#pragma once

#include <cstddef>
#include <vector>

#include "util/rng.h"
#include "workload/query.h"

namespace hercules::workload {

/** Parameters of the query-size distribution. */
struct QuerySizeDist
{
    double median = 50.0;   ///< median candidates per query
    double sigma = 1.0;     ///< lognormal shape (tail heaviness)
    int min_size = 10;      ///< clip below
    int max_size = 1000;    ///< clip above

    /** @return the analytic (unclipped) p-th percentile. */
    double percentile(double p) const;
};

/** Parameters of the per-query pooling-factor variability. */
struct PoolingDist
{
    double sigma = 0.25;  ///< lognormal sigma of the per-query multiplier
};

/**
 * Generates a reproducible query stream.
 *
 * Arrivals are Poisson at the configured rate; sizes are clipped
 * lognormal; each query carries a pooling multiplier applied to the
 * model's per-table mean pooling factors.
 */
class QueryGenerator
{
  public:
    /**
     * @param qps   mean arrival rate (queries per second).
     * @param seed  RNG seed; equal seeds give identical streams.
     * @param sizes query-size distribution.
     * @param pool  pooling variability.
     */
    QueryGenerator(double qps, uint64_t seed,
                   QuerySizeDist sizes = QuerySizeDist{},
                   PoolingDist pool = PoolingDist{});

    /** @return the next query in arrival order. */
    Query next();

    /** Generate the next `n` queries. */
    std::vector<Query> generate(size_t n);

    /** @return configured mean arrival rate. */
    double qps() const { return qps_; }

    /** Change the arrival rate going forward (diurnal modulation). */
    void setQps(double qps);

  private:
    double qps_;
    QuerySizeDist sizes_;
    PoolingDist pool_;
    Rng rng_;
    double clock_s_ = 0.0;
    uint64_t next_id_ = 0;
};

}  // namespace hercules::workload
