#include "workload/trace.h"

#include <algorithm>

#include "util/csv.h"
#include "util/logging.h"
#include "util/rng.h"

namespace hercules::workload {

uint64_t
EmbAccessTrace::tableTotal(size_t table) const
{
    if (table >= accesses.size())
        panic("EmbAccessTrace: table %zu out of range", table);
    uint64_t sum = 0;
    for (uint64_t c : accesses[table])
        sum += c;
    return sum;
}

uint64_t
EmbAccessTrace::total() const
{
    uint64_t sum = 0;
    for (size_t t = 0; t < accesses.size(); ++t)
        sum += tableTotal(t);
    return sum;
}

EmbAccessTrace
generateTrace(const model::Model& m, int num_queries, int avg_query_size,
              uint64_t seed, uint64_t max_tracked_rows)
{
    EmbAccessTrace trace;
    Rng rng(seed);

    for (const auto& n : m.graph.nodes()) {
        if (n.kind() != model::OpKind::EmbeddingLookup)
            continue;
        const auto& p = std::get<model::EmbeddingParams>(n.params);
        uint64_t rows = static_cast<uint64_t>(p.rows);
        uint64_t tracked =
            std::min<uint64_t>(rows, max_tracked_rows) + 1;  // +1 tail
        std::vector<uint64_t> counts(tracked, 0);

        ZipfSampler zipf(rows, p.zipf_exponent);
        double lookups_per_query = p.avgPooling() * avg_query_size;
        uint64_t total = static_cast<uint64_t>(
            lookups_per_query * static_cast<double>(num_queries));
        // Cap the sampling work per table; scale counts afterwards.
        uint64_t draws = std::min<uint64_t>(total, 200'000);
        for (uint64_t i = 0; i < draws; ++i) {
            uint64_t row = zipf.sample(rng);
            if (row < tracked - 1)
                ++counts[row];
            else
                ++counts[tracked - 1];
        }
        if (draws < total && draws > 0) {
            double scale = static_cast<double>(total) /
                           static_cast<double>(draws);
            for (auto& c : counts)
                c = static_cast<uint64_t>(static_cast<double>(c) * scale);
        }
        trace.accesses.push_back(std::move(counts));
    }
    return trace;
}

double
empiricalHitRate(const EmbAccessTrace& trace,
                 const std::vector<int64_t>& hot_rows)
{
    if (hot_rows.size() != trace.accesses.size())
        fatal("empiricalHitRate: %zu hot-row entries for %zu tables",
              hot_rows.size(), trace.accesses.size());
    uint64_t hits = 0;
    uint64_t total = 0;
    for (size_t t = 0; t < trace.accesses.size(); ++t) {
        const auto& counts = trace.accesses[t];
        // Rows are stored in popularity-rank order; the hot set is the
        // prefix.
        uint64_t limit = std::min<uint64_t>(
            static_cast<uint64_t>(std::max<int64_t>(hot_rows[t], 0)),
            counts.size());
        for (size_t r = 0; r < counts.size(); ++r) {
            total += counts[r];
            if (r < limit)
                hits += counts[r];
        }
    }
    return total == 0 ? 0.0
                      : static_cast<double>(hits) /
                            static_cast<double>(total);
}

void
writeTraceCsv(const EmbAccessTrace& trace, const std::string& path)
{
    CsvWriter w({"table", "row", "count"});
    for (size_t t = 0; t < trace.accesses.size(); ++t) {
        for (size_t r = 0; r < trace.accesses[t].size(); ++r) {
            if (trace.accesses[t][r] == 0)
                continue;
            w.addRow({std::to_string(t), std::to_string(r),
                      std::to_string(trace.accesses[t][r])});
        }
    }
    w.write(path);
}

EmbAccessTrace
readTraceCsv(const std::string& path)
{
    auto rows = readCsvFile(path);
    EmbAccessTrace trace;
    for (size_t i = 1; i < rows.size(); ++i) {  // skip header
        const auto& r = rows[i];
        if (r.size() != 3)
            fatal("readTraceCsv: malformed row %zu in %s", i, path.c_str());
        size_t table = std::stoull(r[0]);
        size_t row = std::stoull(r[1]);
        uint64_t count = std::stoull(r[2]);
        if (trace.accesses.size() <= table)
            trace.accesses.resize(table + 1);
        if (trace.accesses[table].size() <= row)
            trace.accesses[table].resize(row + 1, 0);
        trace.accesses[table][row] = count;
    }
    return trace;
}

}  // namespace hercules::workload
