#include "sim/cluster_sim.h"

#include <algorithm>
#include <limits>

#include "obs/telemetry.h"
#include "qos/feedback.h"
#include "util/logging.h"

namespace hercules::sim {

// ---- router policies -----------------------------------------------------

const char*
routerPolicyName(RouterPolicy p)
{
    switch (p) {
      case RouterPolicy::RoundRobin: return "rr";
      case RouterPolicy::LeastOutstanding: return "jsq";
      case RouterPolicy::PowerOfTwo: return "p2c";
      case RouterPolicy::HerculesWeighted: return "hercules";
      case RouterPolicy::LatencyFeedback: return "latency-feedback";
    }
    panic("routerPolicyName: bad policy %d", static_cast<int>(p));
}

std::optional<RouterPolicy>
parseRouterPolicy(const std::string& name)
{
    for (RouterPolicy p : allRouterPolicies())
        if (name == routerPolicyName(p))
            return p;
    // Not part of the static-policy sweep, but parseable by name.
    if (name == routerPolicyName(RouterPolicy::LatencyFeedback))
        return RouterPolicy::LatencyFeedback;
    return std::nullopt;
}

const std::vector<RouterPolicy>&
allRouterPolicies()
{
    static const std::vector<RouterPolicy> all = {
        RouterPolicy::RoundRobin,
        RouterPolicy::LeastOutstanding,
        RouterPolicy::PowerOfTwo,
        RouterPolicy::HerculesWeighted,
    };
    return all;
}

Router::Router(RouterPolicy policy, uint64_t seed)
    : policy_(policy), rng_(seed)
{
}

void
Router::onTopologyChange(size_t num_shards)
{
    // Cursor and credits deliberately survive: re-provisioning must
    // not restart round-robin at the lowest-index shard or forget the
    // smooth-WRR fairness debt accumulated before the boundary. Only
    // newly added shards get a fresh zero credit.
    if (credit_.size() < num_shards)
        credit_.resize(num_shards, 0.0);
}

int
Router::pick(const ClusterSim& cluster, const std::vector<int>& active)
{
    if (active.empty())
        return -1;
    const size_t n = active.size();
    switch (policy_) {
      case RouterPolicy::RoundRobin:
        return active[rr_cursor_++ % n];

      case RouterPolicy::LeastOutstanding: {
        int best = active[0];
        size_t best_q = cluster.outstanding(best);
        for (size_t i = 1; i < n; ++i) {
            size_t q = cluster.outstanding(active[i]);
            if (q < best_q) {
                best = active[i];
                best_q = q;
            }
        }
        return best;
      }

      case RouterPolicy::PowerOfTwo: {
        // Two *distinct* candidates whenever possible: sampling with
        // replacement would compare a shard against itself with
        // probability 1/n and degenerate toward random routing on
        // small fleets.
        size_t ia = static_cast<size_t>(
            rng_.uniformInt(0, static_cast<int64_t>(n) - 1));
        size_t ib = ia;
        if (n >= 2) {
            ib = static_cast<size_t>(
                rng_.uniformInt(0, static_cast<int64_t>(n) - 2));
            if (ib >= ia)
                ++ib;
        }
        int a = active[ia];
        int b = active[ib];
        size_t qa = cluster.outstanding(a);
        size_t qb = cluster.outstanding(b);
        if (qa != qb)
            return qa < qb ? a : b;
        return std::min(a, b);
      }

      case RouterPolicy::HerculesWeighted:
      case RouterPolicy::LatencyFeedback: {
        // Smooth weighted round-robin: deterministic, and the long-run
        // share of shard i is weight_i / sum(weights). The weights are
        // the static efficiency-tuple QPS (HerculesWeighted) or the
        // per-interval feedback-adjusted weights (LatencyFeedback).
        const bool fb = policy_ == RouterPolicy::LatencyFeedback;
        if (credit_.size() < cluster.numShards())
            credit_.resize(cluster.numShards(), 0.0);
        double total = 0.0;
        int best = active[0];
        for (int id : active) {
            double w = fb ? cluster.feedbackWeight(id)
                          : cluster.weight(id);
            credit_[static_cast<size_t>(id)] += w;
            total += w;
            if (credit_[static_cast<size_t>(id)] >
                credit_[static_cast<size_t>(best)])
                best = id;
        }
        credit_[static_cast<size_t>(best)] -= total;
        return best;
      }
    }
    panic("Router::pick: bad policy %d", static_cast<int>(policy_));
}

// ---- JSON reporting ------------------------------------------------------

void
writeIntervalArraysJson(std::FILE* f,
                        const std::vector<IntervalStats>& ivs,
                        const char* indent)
{
    auto arr = [&](const char* key, auto get, int prec, bool last) {
        std::fprintf(f, "%s\"%s\": [", indent, key);
        for (size_t k = 0; k < ivs.size(); ++k)
            std::fprintf(f, "%s%.*f", k ? ", " : "", prec,
                         get(ivs[k]));
        std::fprintf(f, "]%s\n", last ? "" : ",");
    };
    arr("interval_p99_ms",
        [](const IntervalStats& iv) { return iv.p99_ms; }, 3, false);
    arr("interval_sla_violation_rate",
        [](const IntervalStats& iv) { return iv.sla_violation_rate; },
        5, false);
    arr("interval_dropped",
        [](const IntervalStats& iv) {
            return static_cast<double>(iv.dropped);
        },
        0, false);
    arr("interval_provisioned_power_w",
        [](const IntervalStats& iv) { return iv.provisioned_power_w; },
        1, false);
    arr("interval_consumed_power_w",
        [](const IntervalStats& iv) { return iv.consumed_power_w; },
        1, true);
}

// ---- cluster -------------------------------------------------------------

ClusterSim::ClusterSim(Options opt)
    : opt_(std::move(opt)), shard_opt_(opt_.shard_sim)
{
    // The cluster layer owns warmup/measurement windows and needs the
    // per-query completion log.
    shard_opt_.warmup_queries = 0;
    shard_opt_.record_completions = true;
    shard_opt_.abort_tail_ms = 0.0;
    shard_opt_.saturate = false;
}

void
ClusterSim::ensureService(int service)
{
    if (service < 0)
        panic("ClusterSim: negative service %d", service);
    while (static_cast<int>(active_by_service_.size()) <= service) {
        uint64_t seed = opt_.router_seed +
                        static_cast<uint64_t>(active_by_service_.size());
        if (opt_.telemetry)
            opt_.telemetry->declareService(
                static_cast<int>(active_by_service_.size()));
        routers_.emplace_back(opt_.router, seed);
        active_by_service_.emplace_back();
        service_state_.emplace_back();
    }
}

void
ClusterSim::declareServices(int count)
{
    if (count > 0)
        ensureService(count - 1);
}

int
ClusterSim::addShard(const PreparedWorkload& w, double weight_qps,
                     int service)
{
    ensureService(service);
    int id = static_cast<int>(shards_.size());
    Shard s;
    s.inst = std::make_unique<ServerInstance>(w, shard_opt_);
    s.inst->setIdentity(id, service);
    if (opt_.telemetry)
        opt_.telemetry->declareShard(id, service);
    s.workload = &w;
    s.weight = weight_qps;
    s.fb_weight = weight_qps;  // feedback starts from the tuple weight
    s.service = service;
    s.admit = qos::AdmissionController(opt_.admission);
    shards_.push_back(std::move(s));
    injected_per_shard_.push_back(0);
    rebuildActive();
    for (Router& r : routers_)
        r.onTopologyChange(shards_.size());
    return id;
}

void
ClusterSim::rebuildActive()
{
    active_.clear();
    for (auto& per_service : active_by_service_)
        per_service.clear();
    for (size_t i = 0; i < shards_.size(); ++i) {
        // A failed shard stays out of every router's candidate set even
        // while the plan still wants it active; the plan intent is kept
        // in Shard::active so recovery restores routability in place.
        if (!shards_[i].active ||
            shards_[i].health == fault::HealthState::Failed)
            continue;
        active_.push_back(static_cast<int>(i));
        active_by_service_[static_cast<size_t>(shards_[i].service)]
            .push_back(static_cast<int>(i));
    }
}

void
ClusterSim::setActive(int shard, bool active, double t_s)
{
    if (shard < 0 || static_cast<size_t>(shard) >= shards_.size())
        panic("ClusterSim::setActive: bad shard %d", shard);
    Shard& s = shards_[static_cast<size_t>(shard)];
    if (s.active == active)
        return;
    s.active = active;
    if (!active)
        s.released_at = t_s;
    rebuildActive();
    for (Router& r : routers_)
        r.onTopologyChange(shards_.size());
}

bool
ClusterSim::isActive(int shard) const
{
    return shards_[static_cast<size_t>(shard)].active;
}

fault::HealthState
ClusterSim::shardHealth(int shard) const
{
    if (shard < 0 || static_cast<size_t>(shard) >= shards_.size())
        panic("ClusterSim::shardHealth: bad shard %d", shard);
    return shards_[static_cast<size_t>(shard)].health;
}

void
ClusterSim::scheduleHealth(std::vector<HealthEvent> events)
{
    for (size_t i = 0; i < events.size(); ++i) {
        const HealthEvent& e = events[i];
        if (e.shard < 0 || static_cast<size_t>(e.shard) >= shards_.size())
            panic("ClusterSim::scheduleHealth: event %zu names bad shard "
                  "%d",
                  i, e.shard);
        if (i > 0 && e.t_s < events[i - 1].t_s)
            panic("ClusterSim::scheduleHealth: events not sorted by time "
                  "(event %zu at %f after %f)",
                  i, e.t_s, events[i - 1].t_s);
    }
    health_events_ = std::move(events);
    health_cursor_ = 0;
}

void
ClusterSim::applyHealthEventsUpTo(double t_s)
{
    while (health_cursor_ < health_events_.size() &&
           health_events_[health_cursor_].t_s <= t_s) {
        const HealthEvent ev = health_events_[health_cursor_++];
        Shard& s = shards_[static_cast<size_t>(ev.shard)];
        const fault::HealthState from = s.health;
        const double slow =
            ev.state == fault::HealthState::Degraded ? ev.slowdown : 1.0;
        if (from == ev.state && slow == s.slowdown)
            continue;  // no-op transition
        // The transition takes effect at its own timestamp: everything
        // that finishes strictly before it retires normally first.
        advanceTo(ev.t_s);
        size_t killed = 0;
        if (ev.state == fault::HealthState::Failed &&
            from != fault::HealthState::Failed) {
            killed = s.inst->killInFlight();
            failed_inflight_ += killed;
            service_state_[static_cast<size_t>(s.service)]
                .failed_inflight += killed;
            s.failed_at = ev.t_s;
            if (opt_.telemetry)
                opt_.telemetry->onCrash(ev.shard, s.inst->completions(),
                                        ev.t_s, killed);
        }
        s.inst->setSlowdown(slow);
        s.slowdown = slow;
        const bool routable_changed =
            (from == fault::HealthState::Failed) !=
            (ev.state == fault::HealthState::Failed);
        s.health = ev.state;
        if (routable_changed) {
            rebuildActive();
            for (Router& r : routers_)
                r.onTopologyChange(shards_.size());
        }
        health_log_.push_back(HealthTransition{
            ev.t_s, ev.shard, s.service, from, ev.state, slow, killed});
    }
}

bool
ClusterSim::drained(int shard) const
{
    const Shard& s = shards_[static_cast<size_t>(shard)];
    return !s.active && s.inst->outstanding() == 0;
}

size_t
ClusterSim::outstanding(int shard) const
{
    return shards_[static_cast<size_t>(shard)].inst->outstanding();
}

double
ClusterSim::weight(int shard) const
{
    return shards_[static_cast<size_t>(shard)].weight;
}

double
ClusterSim::feedbackWeight(int shard) const
{
    return shards_[static_cast<size_t>(shard)].fb_weight;
}

qos::ServiceClass
ClusterSim::serviceClass(int service) const
{
    if (service >= 0 &&
        static_cast<size_t>(service) < opt_.service_class.size())
        return opt_.service_class[static_cast<size_t>(service)];
    return qos::ServiceClass{};
}

int
ClusterSim::shardService(int shard) const
{
    return shards_[static_cast<size_t>(shard)].service;
}

double
ClusterSim::slaMs(int service) const
{
    if (service >= 0 &&
        static_cast<size_t>(service) < opt_.service_sla_ms.size() &&
        opt_.service_sla_ms[static_cast<size_t>(service)] > 0.0)
        return opt_.service_sla_ms[static_cast<size_t>(service)];
    // QoS-class fallback for direct ClusterSim users; serveTraces has
    // already folded its class SLAs into service_sla_ms.
    qos::ServiceClass sc = serviceClass(service);
    if (sc.sla_ms > 0.0)
        return sc.sla_ms;
    return opt_.sla_ms;
}

const std::vector<int>&
ClusterSim::activeShards(int service) const
{
    if (service < 0 || service >= numServices())
        panic("ClusterSim::activeShards: bad service %d", service);
    return active_by_service_[static_cast<size_t>(service)];
}

void
ClusterSim::advanceTo(double t_s)
{
    for (Shard& s : shards_)
        s.inst->advanceTo(t_s);
}

int
ClusterSim::route(const workload::Query& q)
{
    applyHealthEventsUpTo(q.arrival_s);
    advanceTo(q.arrival_s);
    const int svc = q.service_id;
    if (svc < 0 || svc >= numServices())
        panic("ClusterSim::route: query for service %d but shards exist "
              "for %d services",
              svc, numServices());
    int s = routers_[static_cast<size_t>(svc)].pick(
        *this, active_by_service_[static_cast<size_t>(svc)]);
    if (s < 0) {
        ++dropped_;
        ++service_state_[static_cast<size_t>(svc)].dropped;
        if (opt_.telemetry)
            opt_.telemetry->onDropped(svc, q.arrival_s);
        return -1;
    }
    // Admission control on the picked shard: a refused query is
    // *rejected* (distinct from dropped) and, like a drop, counts as
    // an SLA violation in every rate. Policy `none` admits everything.
    const double sla = slaMs(svc);
    int retry_hops = 0;
    auto admits = [&](int id) {
        Shard& sh = shards_[static_cast<size_t>(id)];
        return sh.admit.admit({sh.inst->outstanding(), sh.weight}, sla);
    };
    if (!admits(s)) {
        // Cross-shard retry: before giving up, re-offer the query to
        // the service's other active shards in ascending order of
        // estimated completion time (ties by shard id) — the reject
        // may be local congestion, not service-wide overload.
        int retry = -1;
        if (opt_.admission.cross_shard_retry) {
            double best_est = 0.0;
            for (int id :
                 active_by_service_[static_cast<size_t>(svc)]) {
                if (id == s || !admits(id))
                    continue;
                const Shard& sh = shards_[static_cast<size_t>(id)];
                double est = qos::AdmissionController::
                    estimatedCompletionMs(sh.inst->outstanding(),
                                          sh.weight);
                if (retry < 0 || est < best_est) {
                    retry = id;
                    best_est = est;
                }
            }
        }
        if (retry < 0) {
            ++rejected_;
            ++service_state_[static_cast<size_t>(svc)].rejected;
            if (opt_.telemetry)
                opt_.telemetry->onRejected(svc, q.arrival_s);
            return -2;
        }
        s = retry;
        ++admission_retries_;
        ++retry_hops;
    }
    Shard& sh = shards_[static_cast<size_t>(s)];
    int inject_idx = sh.inst->inject(q);
    ++injected_;
    ++service_state_[static_cast<size_t>(svc)].injected;
    ++injected_per_shard_[static_cast<size_t>(s)];
    if (opt_.telemetry)
        opt_.telemetry->onAdmitted(svc, s, retry_hops, inject_idx,
                                   q.arrival_s);
    return s;
}

void
ClusterSim::drainAll()
{
    for (Shard& s : shards_)
        s.inst->drain();
}

IntervalStats
ClusterSim::harvest(double t0_s, double t1_s)
{
    IntervalStats st;
    st.t0_s = t0_s;
    st.t1_s = t1_s;
    const size_t num_services = active_by_service_.size();
    st.services.resize(num_services);
    for (size_t v = 0; v < num_services; ++v) {
        ServiceState& ss = service_state_[v];
        ServiceIntervalStats& svc = st.services[v];
        svc.arrivals = ss.injected - ss.injected_harvested;
        ss.injected_harvested = ss.injected;
        svc.dropped = ss.dropped - ss.dropped_harvested;
        ss.dropped_harvested = ss.dropped;
        svc.rejected = ss.rejected - ss.rejected_harvested;
        ss.rejected_harvested = ss.rejected;
        svc.failed_inflight =
            ss.failed_inflight - ss.failed_inflight_harvested;
        ss.failed_inflight_harvested = ss.failed_inflight;
        svc.active_shards = static_cast<int>(active_by_service_[v].size());
        st.arrivals += svc.arrivals;
        st.dropped += svc.dropped;
        st.rejected += svc.rejected;
        st.failed_inflight += svc.failed_inflight;
    }
    // Offered load includes dropped and rejected arrivals: an outage
    // (or admission-throttled) interval must still show the traffic it
    // shed.
    st.offered_qps =
        t1_s > t0_s
            ? static_cast<double>(st.arrivals + st.dropped +
                                  st.rejected) /
                  (t1_s - t0_s)
            : 0.0;
    st.active_shards = static_cast<int>(active_.size());

    PercentileTracker lat;
    std::vector<PercentileTracker> svc_lat(num_services);
    double consumed = 0.0;
    for (Shard& s : shards_) {
        const int sid = static_cast<int>(&s - shards_.data());
        const size_t v = static_cast<size_t>(s.service);
        const double sla = slaMs(s.service);
        const auto& done = s.inst->completions();
        double last_finish_in_window = t0_s;
        PercentileTracker shard_lat;  ///< this shard, this window
        while (s.harvest_cursor < done.size() &&
               done[s.harvest_cursor].finish_s <= t1_s) {
            const auto& c = done[s.harvest_cursor++];
            double ms = c.latencyMs();
            lat.add(ms);
            svc_lat[v].add(ms);
            shard_lat.add(ms);
            all_latency_ms_.add(ms);
            service_state_[v].latency_ms.add(ms);
            if (ms > sla) {
                ++st.services[v].sla_violations;
                ++service_state_[v].violations;
                ++all_violations_;
            }
            last_finish_in_window = std::max(last_finish_in_window,
                                             c.finish_s);
            if (opt_.telemetry) {
                const double wait_ms = c.queue_wait_s * 1e3;
                opt_.telemetry->observeCompletion(s.service, wait_ms,
                                                  ms - wait_ms, ms);
            }
        }
        if (opt_.telemetry)
            opt_.telemetry->drainShardCompletions(sid, done, t1_s);
        // Latency feedback: fold this window's observed p99 into the
        // shard's routing weight (multiplicative, bounded by the tuple
        // weight above and the configured floor below). A window with
        // no completions is ambiguous: a *drained* shard is genuinely
        // dark (p99 <= 0, bounded recovery toward base), but a shard
        // with work still in flight is stalled — the most overloaded
        // shard of all — and must be penalized at the full step, not
        // rewarded with recovery.
        // A failed shard's weight is frozen: it is unroutable anyway,
        // and its post-kill empty window must not read as "drained and
        // recovering" — recovery restores routing at the frozen weight
        // and the first real window speaks for itself.
        if (opt_.router == RouterPolicy::LatencyFeedback &&
            s.health != fault::HealthState::Failed) {
            double p99;
            if (shard_lat.count() > 0)
                p99 = shard_lat.p99();
            else if (s.inst->outstanding() > 0)
                p99 = std::numeric_limits<double>::infinity();
            else
                p99 = 0.0;
            s.fb_weight = qos::updateFeedbackWeight(
                s.fb_weight, s.weight, p99, sla, opt_.feedback);
        }
        // Power: an active shard burns (at least idle) power for the
        // whole window; a released shard only while it still drains; a
        // failed shard only up to the crash instant (an interval where
        // it recovers mid-window is charged in full — re-boot churn).
        double span_end;
        if (s.health == fault::HealthState::Failed)
            span_end = std::clamp(
                std::max(s.failed_at, last_finish_in_window), t0_s,
                t1_s);
        else if (s.active)
            span_end = t1_s;
        else if (s.inst->outstanding() > 0)
            span_end = t1_s;
        else
            span_end = std::clamp(
                std::max(s.released_at, last_finish_in_window), t0_s,
                t1_s);
        if (span_end > t0_s && t1_s > t0_s)
            consumed += s.inst->avgPowerBetween(t0_s, span_end) *
                        (span_end - t0_s) / (t1_s - t0_s);
    }
    st.completions = lat.count();
    st.p50_ms = lat.p50();
    st.p99_ms = lat.p99();
    st.max_ms = lat.max();
    for (size_t v = 0; v < num_services; ++v) {
        ServiceIntervalStats& svc = st.services[v];
        svc.completions = svc_lat[v].count();
        svc.p50_ms = svc_lat[v].p50();
        svc.p99_ms = svc_lat[v].p99();
        // A dropped or rejected arrival — or an in-flight query killed
        // by a crash — missed its SLA by definition.
        svc.sla_violations +=
            svc.dropped + svc.rejected + svc.failed_inflight;
        size_t denom = svc.completions + svc.dropped + svc.rejected +
                       svc.failed_inflight;
        svc.sla_violation_rate =
            denom > 0 ? static_cast<double>(svc.sla_violations) /
                            static_cast<double>(denom)
                      : 0.0;
        st.sla_violations += svc.sla_violations;
    }
    size_t denom =
        st.completions + st.dropped + st.rejected + st.failed_inflight;
    st.sla_violation_rate =
        denom > 0 ? static_cast<double>(st.sla_violations) /
                        static_cast<double>(denom)
                  : 0.0;
    st.consumed_power_w = consumed;
    return st;
}

ClusterSimResult
ClusterSim::run(const std::vector<workload::Query>& trace,
                double interval_s, const IntervalPlanFn& plan,
                double horizon_s)
{
    if (interval_s <= 0.0)
        fatal("ClusterSim::run: non-positive interval %f", interval_s);

    // Self-profiling wall timers: provenance only (ClusterSimResult::
    // des), never fed back into simulated state.
    obs::WallTimer run_timer;
    double route_wall = 0.0, advance_wall = 0.0, harvest_wall = 0.0;

    // Interval-boundary gauge snapshot (after the plan's provisioned
    // power is known); null telemetry makes this a no-op.
    auto sampleTelemetry = [&](const IntervalStats& st) {
        obs::Telemetry* tel = opt_.telemetry;
        if (!tel)
            return;
        for (size_t i = 0; i < shards_.size(); ++i)
            tel->setShardWindow(static_cast<int>(i),
                                shards_[i].inst->outstanding(),
                                static_cast<int>(shards_[i].health));
        for (size_t v = 0; v < st.services.size(); ++v)
            tel->setServiceWindow(static_cast<int>(v), st.services[v].p50_ms,
                                  st.services[v].p99_ms,
                                  st.services[v].sla_violation_rate);
        tel->setClusterWindow(st.active_shards, st.consumed_power_w,
                              st.provisioned_power_w);
        tel->commitSample(st.t1_s);
    };

    ClusterSimResult r;
    size_t cursor = 0;
    int k = 0;
    while (cursor < trace.size() ||
           static_cast<double>(k) * interval_s < horizon_s - 1e-9) {
        double t0 = static_cast<double>(k) * interval_s;
        double t1 = t0 + interval_s;
        obs::WallTimer phase_timer;
        // Boundary health transitions apply before the plan: the
        // planner that produced it already saw the surviving capacity.
        applyHealthEventsUpTo(t0);
        IntervalPlan p;
        if (plan) {
            p = plan(k, t0);
            std::vector<char> want(shards_.size(), 0);
            for (int id : p.active) {
                if (id < 0 || static_cast<size_t>(id) >= shards_.size())
                    panic("ClusterSim::run: plan names bad shard %d", id);
                want[static_cast<size_t>(id)] = 1;
            }
            for (size_t i = 0; i < shards_.size(); ++i)
                setActive(static_cast<int>(i), want[i] != 0, t0);
        }
        while (cursor < trace.size() && trace[cursor].arrival_s < t1)
            route(trace[cursor++]);
        // Transitions after the window's last arrival but strictly
        // inside it (a crash at an exact boundary belongs to the next
        // interval's plan step).
        while (health_cursor_ < health_events_.size() &&
               health_events_[health_cursor_].t_s < t1)
            applyHealthEventsUpTo(health_events_[health_cursor_].t_s);
        route_wall += phase_timer.elapsedMs();
        phase_timer.restart();
        advanceTo(t1);
        advance_wall += phase_timer.elapsedMs();
        phase_timer.restart();
        IntervalStats st = harvest(t0, t1);
        harvest_wall += phase_timer.elapsedMs();
        if (plan) {
            st.provisioned_power_w = p.provisioned_power_w;
            st.budget_power_w = p.budget_power_w;
            st.power_capped = p.power_capped;
        }
        sampleTelemetry(st);
        r.intervals.push_back(st);
        ++k;
    }

    // Tail: retire whatever is still in flight past the last interval.
    const size_t planned_intervals = r.intervals.size();
    obs::WallTimer tail_timer;
    drainAll();
    advance_wall += tail_timer.elapsedMs();
    double tail_start = static_cast<double>(k) * interval_s;
    double tail_end = tail_start;
    for (const Shard& s : shards_)
        tail_end = std::max(tail_end, s.inst->now());
    if (tail_end > tail_start) {
        tail_timer.restart();
        IntervalStats tail = harvest(tail_start, tail_end);
        harvest_wall += tail_timer.elapsedMs();
        if (tail.completions > 0 || tail.arrivals > 0) {
            sampleTelemetry(tail);
            r.intervals.push_back(tail);
        }
    }

    r.injected = injected_;
    r.dropped = dropped_;
    r.rejected = rejected_;
    r.failed_inflight = failed_inflight_;
    r.admission_retries = admission_retries_;
    r.completed = all_latency_ms_.count();
    r.mean_ms = all_latency_ms_.mean();
    r.p50_ms = all_latency_ms_.p50();
    r.p95_ms = all_latency_ms_.p95();
    r.p99_ms = all_latency_ms_.p99();
    r.max_ms = all_latency_ms_.max();
    // Dropped and rejected arrivals — and in-flight queries killed by
    // crashes — are SLA violations: an outage (or admission throttling,
    // or a crash) shows up in the run-level rate instead of silently
    // vanishing from the denominator.
    r.sla_violations =
        all_violations_ + dropped_ + rejected_ + failed_inflight_;
    size_t denom =
        r.completed + r.dropped + r.rejected + r.failed_inflight;
    r.sla_violation_rate =
        denom > 0 ? static_cast<double>(r.sla_violations) /
                        static_cast<double>(denom)
                  : 0.0;
    r.services.resize(service_state_.size());
    for (size_t v = 0; v < service_state_.size(); ++v) {
        ServiceState& ss = service_state_[v];
        ServiceRunStats& out = r.services[v];
        out.injected = ss.injected;
        out.completed = ss.latency_ms.count();
        out.dropped = ss.dropped;
        out.rejected = ss.rejected;
        out.failed_inflight = ss.failed_inflight;
        out.p50_ms = ss.latency_ms.p50();
        out.p99_ms = ss.latency_ms.p99();
        out.max_ms = ss.latency_ms.max();
        out.sla_ms = slaMs(static_cast<int>(v));
        out.sla_violations = ss.violations + ss.dropped + ss.rejected +
                             ss.failed_inflight;
        size_t sdenom = out.completed + out.dropped + out.rejected +
                        out.failed_inflight;
        out.sla_violation_rate =
            sdenom > 0 ? static_cast<double>(out.sla_violations) /
                             static_cast<double>(sdenom)
                       : 0.0;
    }
    // Power aggregates skip the drain-tail pseudo-interval: it never
    // went through the plan (provisioned power 0) and its span differs
    // from interval_s, so averaging it in would bias the trajectory.
    OnlineStats consumed, provisioned;
    for (size_t i = 0; i < planned_intervals; ++i) {
        consumed.add(r.intervals[i].consumed_power_w);
        provisioned.add(r.intervals[i].provisioned_power_w);
    }
    r.avg_consumed_power_w = consumed.mean();
    r.peak_consumed_power_w = consumed.count() ? consumed.max() : 0.0;
    r.avg_provisioned_power_w = provisioned.mean();
    r.peak_provisioned_power_w =
        provisioned.count() ? provisioned.max() : 0.0;
    r.health_transitions = health_log_;

    // DES self-profile: event counts are deterministic; wall timings
    // and events/sec are provenance.
    for (const Shard& s : shards_) {
        r.des.events_executed += s.inst->eventsExecuted();
        r.des.peak_event_queue_depth = std::max(
            r.des.peak_event_queue_depth, s.inst->peakEventQueueDepth());
    }
    r.des.route_wall_ms = route_wall;
    r.des.advance_wall_ms = advance_wall;
    r.des.harvest_wall_ms = harvest_wall;
    r.des.run_wall_ms = run_timer.elapsedMs();
    r.des.events_per_sec =
        r.des.run_wall_ms > 0.0
            ? static_cast<double>(r.des.events_executed) /
                  (r.des.run_wall_ms * 1e-3)
            : 0.0;
    return r;
}

}  // namespace hercules::sim
