/**
 * @file
 * The steppable single-server discrete-event simulator.
 *
 * ServerInstance is the engine behind simulateServer(), exposed as a
 * construct → inject → advance → drain object so that higher layers
 * (the sharded ClusterSim, trace-driven serving) can interleave many
 * servers on one global clock. The contract:
 *
 *  - inject(query) schedules an arrival at query.arrival_s; arrivals
 *    must be injected in non-decreasing time order, never earlier than
 *    the instance's current clock (now());
 *  - advanceTo(t) runs every pending event with timestamp <= t;
 *  - drain() runs the event queue dry (all in-flight work retires);
 *  - finalize() computes the ServerSimResult over the post-warmup
 *    window exactly as the one-shot simulateServer() does.
 *
 * Determinism: given the same construction arguments and the same
 * injection sequence, every event fires in the same order (the event
 * queue breaks timestamp ties by scheduling order) and every statistic
 * is bit-identical across runs. simulateServer() is a thin wrapper
 * over this class and is pinned bit-identical to the pre-extraction
 * engine by tests/test_sim_cluster.cc.
 */
#pragma once

#include <deque>
#include <unordered_map>
#include <vector>

#include "hw/cost_model.h"
#include "hw/power.h"
#include "sim/event_queue.h"
#include "sim/server_sim.h"
#include "util/stats.h"
#include "workload/query.h"

namespace hercules::sim {

/** One steppable simulated server. */
class ServerInstance
{
  public:
    /**
     * @param w   prepared workload placement; must outlive the instance.
     * @param opt simulation options; must outlive the instance.
     */
    ServerInstance(const PreparedWorkload& w, const SimOptions& opt);

    // Scheduled callbacks capture `this`: the instance must not move.
    ServerInstance(const ServerInstance&) = delete;
    ServerInstance& operator=(const ServerInstance&) = delete;

    /** One retired query (recorded when opt.record_completions). */
    struct Completion
    {
        int query = -1;        ///< injection index
        int shard = -1;        ///< owning shard id (see setIdentity)
        int service = 0;       ///< owning service class (see setIdentity)
        double arrival_s = 0.0;
        double finish_s = 0.0;
        /** Dispatcher/fusion queue wait before first service start. */
        double queue_wait_s = 0.0;

        /** @return end-to-end latency in milliseconds. */
        double latencyMs() const { return (finish_s - arrival_s) * 1e3; }

        /** @return latency minus queue wait, in milliseconds. */
        double serviceMs() const { return latencyMs() - queue_wait_s * 1e3; }
    };

    /**
     * Tag this instance with its cluster position; stamped onto every
     * Completion so latency decomposes per shard/service downstream.
     * Purely observational — never read by the simulation itself.
     */
    void setIdentity(int shard, int service)
    {
        shard_id_ = shard;
        service_id_ = service;
    }

    /**
     * Inject one query; its arrival event fires at q.arrival_s.
     * @return the query's index (injection order).
     */
    int inject(const workload::Query& q);

    /** Run every pending event with timestamp <= t_s. */
    void advanceTo(double t_s);

    /** Run the event queue dry (retire all in-flight work). */
    void drain();

    /** Run the single next pending event (no-op when idle). */
    void step();

    /** @return true while events are pending. */
    bool hasPending() const { return !eq_.empty(); }

    /** @return simulation time of the last executed event. */
    double now() const { return eq_.now(); }

    /** @return total queries injected so far. */
    size_t injected() const { return queries_.size(); }

    /** @return queries fully retired (warmup included). */
    size_t completedAll() const { return done_count_; }

    /** @return queries injected but not yet retired. */
    size_t outstanding() const { return queries_.size() - done_count_; }

    /** @return the completion log (empty unless record_completions). */
    const std::vector<Completion>& completions() const
    { return completions_; }

    /** @return events executed by this instance's queue (lifetime). */
    uint64_t eventsExecuted() const { return eq_.eventsExecuted(); }

    /** @return peak pending-event depth seen by this instance. */
    size_t peakEventQueueDepth() const { return eq_.peakDepth(); }

    /**
     * The early-abort predicate of SimOptions::abort_tail_ms: true once
     * the oldest in-flight post-warmup query has been in the system
     * longer than the grace window. Amortized O(1).
     */
    bool abortTriggered();

    /** Mark the run aborted (reflected in finalize()). */
    void markAborted() { aborted_ = true; }

    /**
     * Straggler knob: multiply every *subsequent* service and transfer
     * duration by `factor` (>= 1). Applied at the usage sites, never to
     * the service memos, so setSlowdown(1.0) is bit-identical to a
     * server that never degraded. Work already scheduled keeps its
     * original finish time.
     */
    void setSlowdown(double factor);

    /** @return the current latency multiplier (1.0 when healthy). */
    double slowdown() const { return slowdown_; }

    /**
     * Crash semantics: every in-flight query dies right now. Killed
     * queries are marked done (they count in completedAll() so
     * outstanding() drops to zero) but are never appended to the
     * completion log and never enter the latency statistics — the
     * caller accounts for them (ClusterSim's `failed_inflight`). All
     * pending events, queued chunks and pipeline stages are discarded;
     * pools and GPU threads reset to idle so the instance can serve
     * again after recovery. Resource bins already charged beyond the
     * crash instant are deliberately kept (the power model's stand-in
     * for crash-loop churn).
     *
     * @return the number of queries killed.
     */
    size_t killInFlight();

    /**
     * Mean server power (W) over [t0_s, t1_s), integrating the binned
     * resource-utilization profile through the power model. Windows the
     * server spent idle contribute idle power.
     */
    double avgPowerBetween(double t0_s, double t1_s) const;

    /** Compute the post-warmup measurements (call after the run). */
    ServerSimResult finalize() const;

  private:
    // ---- work units -----------------------------------------------------
    /** One unit of schedulable work: a (sub-)query chunk. */
    struct Chunk
    {
        int query = -1;
        int items = 0;
        double ps = 1.0;  ///< pooling scale of the owning query
    };

    /** A fused accelerator batch. */
    struct Batch
    {
        std::vector<Chunk> chunks;
        int items = 0;
        double ps = 1.0;  ///< item-weighted pooling scale
    };

    /**
     * Linear-in-pooling-scale service memo: CPU graph timings are
     * computed at pooling scales 1 and 2 per batch size and
     * interpolated, keeping cost-model calls out of the event loop.
     */
    struct ServiceMemoEntry
    {
        double lat1 = 0.0, lat2 = 0.0;
        double bytes1 = 0.0, bytes2 = 0.0;
        double nmp1 = 0.0, nmp2 = 0.0;
        double idle_frac = 0.0;
    };

    struct ServiceSample
    {
        double latency_us = 0.0;
        double dram_bytes = 0.0;
        double nmp_busy_us = 0.0;
        double idle_frac = 0.0;  ///< op-worker idle fraction (Fig 5)
    };

    // ---- configuration shortcuts ----------------------------------------
    sched::Mapping mapping() const { return w_.config.mapping; }

    // ---- query bookkeeping ----------------------------------------------
    struct QueryState
    {
        double arrival = 0.0;
        double enqueue_done = 0.0;  ///< first service start (queue wait)
        int pending = 0;
        int size = 0;
        double ps = 1.0;
        bool started = false;
        bool done = false;  ///< all chunks completed
    };

    // ---- pools ----------------------------------------------------------
    struct Pool
    {
        std::deque<Chunk> queue;
        int idle = 0;
        int total = 0;
        int cores_each = 1;
    };

    // ---- GPU pipeline ----------------------------------------------------
    struct GpuThread
    {
        bool loading = false;    ///< a batch is being staged/transferred
        bool has_loaded = false; ///< a loaded batch waits for the executor
        bool executing = false;
        Batch loaded;
    };

    void arrival(int qidx);
    void splitToPool(int qidx, Pool& pool, int batch);
    void enqueue(Pool& pool, Chunk c);
    void poolServe(Pool& pool, Chunk c);
    void poolDone(Pool& pool, Chunk c);
    void queryPartDone(int qidx);

    void tryFormGpuBatch(size_t tid);
    void gpuHostStageDone(size_t tid, Batch b);
    void startTransfer(size_t tid, Batch b);
    void onLoaded(size_t tid, Batch b);
    void startExec(size_t tid, Batch b);
    void onExecDone(size_t tid, Batch b);

    ServiceSample cpuService(int pool_id, int items, double query_ps);
    const model::Graph& poolGraph(int pool_id) const;
    const hw::CpuExecContext& poolContext(int pool_id) const;

    void chargeBins(std::vector<double>& bins, double start_s,
                    double end_s, double weight);
    size_t binIndex(double t) const
    { return static_cast<size_t>(t / kBinSeconds); }

    /** Per-bin resource utilizations (the finalize/power integrand). */
    struct BinUtil
    {
        double cpu = 0.0;
        double mem = 0.0;  ///< DRAM + NMP, clamped to 1
        double gpu = 0.0;
        double pcie = 0.0;
        double nmp = 0.0;
    };
    BinUtil binUtil(size_t b, double mem_denom) const;

    // ---- members --------------------------------------------------------
    const PreparedWorkload& w_;
    const SimOptions& opt_;
    hw::CostModel cost_;
    hw::PowerModel power_;
    EventQueue eq_;

    std::vector<QueryState> queries_;
    std::vector<double> completion_times_;  ///< post-warmup, by finish
    std::vector<Completion> completions_;   ///< all, when recording
    size_t done_count_ = 0;                 ///< all retired queries

    Pool cpu_pool_;    ///< model-based threads or SparseNet threads
    Pool dense_pool_;  ///< CpuSdPipeline DenseNet threads
    Pool host_pool_;   ///< hot-split cold-sparse helpers (batch level)

    std::vector<GpuThread> gpu_threads_;
    std::deque<Chunk> fusion_queue_;
    std::deque<std::pair<size_t, Batch>> host_stage_queue_;
    int host_stage_idle_ = 0;
    double pcie_free_ = 0.0;
    double slowdown_ = 1.0;  ///< latency multiplier (fault injection)
    int shard_id_ = -1;      ///< observational tag (setIdentity)
    int service_id_ = 0;     ///< observational tag (setIdentity)

    // pool_id: 0 = full graph, 1 = sparse, 2 = dense, 3 = cold sparse
    std::unordered_map<int, ServiceMemoEntry> memo_[4];

    // resource usage bins
    static constexpr double kBinSeconds = 0.05;
    std::vector<double> cpu_busy_s_;
    std::vector<double> gpu_busy_s_;
    std::vector<double> pcie_busy_s_;
    std::vector<double> nmp_busy_s_;
    std::vector<double> mem_bytes_;

    PercentileTracker latency_ms_;
    OnlineStats queue_ms_, host_ms_, load_ms_, exec_ms_;
    double steady_start_ = 0.0;
    double last_finish_ = 0.0;
    size_t measured_completed_ = 0;

    /** Oldest possibly-incomplete post-warmup query (abort check). */
    size_t abort_scan_ = 0;
    bool aborted_ = false;
};

}  // namespace hercules::sim
