/**
 * @file
 * Discrete-event simulation of one server executing one recommendation
 * workload under a task-scheduling configuration.
 *
 * The simulator models the full serving path of Fig 3: Poisson query
 * arrivals with heavy-tailed sizes, the query dispatcher (sub-query
 * splitting on CPUs, query fusion on accelerators), co-located
 * inference threads with op-parallel workers, S-D pipeline queues, the
 * shared PCIe link (FIFO DMA engine), the shared NMP device, and an
 * integrated power model. It reports latency tails, achieved
 * throughput, per-resource utilization and average/peak power.
 */
#pragma once

#include <cstdint>

#include "hw/calibration.h"
#include "sim/prepared.h"
#include "workload/querygen.h"

namespace hercules::sim {

/** Options of one simulation run. */
struct SimOptions
{
    double offered_qps = 1000.0;  ///< Poisson arrival rate
    int num_queries = 600;        ///< total queries to simulate
    int warmup_queries = 120;     ///< excluded from all statistics
    uint64_t seed = 42;           ///< stream seed (deterministic runs)
    double tail_percentile = hw::calib::kTailPercentile;
    workload::QuerySizeDist sizes{};
    workload::PoolingDist pooling{};
    /** true: all queries arrive at t=0 (capacity / saturation probe). */
    bool saturate = false;
    /**
     * > 0: abort the run once the oldest in-flight post-warmup query
     * has been in the system longer than this many milliseconds — the
     * load level is hopelessly saturated and the measurement layer only
     * needs the infeasibility verdict, not the full backlog drain. The
     * result is returned with `aborted` set. 0 disables.
     */
    double abort_tail_ms = 0.0;
    /**
     * true: keep a per-query (arrival, finish) completion log on the
     * ServerInstance. The cluster layer consumes it for per-interval
     * tail statistics; the one-shot simulateServer() leaves it off.
     */
    bool record_completions = false;
};

/** Measurements of one simulation run (post-warmup steady window). */
struct ServerSimResult
{
    double offered_qps = 0.0;
    double achieved_qps = 0.0;

    double mean_ms = 0.0;
    double p50_ms = 0.0;
    double p95_ms = 0.0;
    double p99_ms = 0.0;
    double tail_ms = 0.0;  ///< at the requested percentile
    double max_ms = 0.0;

    double cpu_util = 0.0;
    double mem_bw_util = 0.0;
    double gpu_util = 0.0;
    double pcie_util = 0.0;
    double nmp_util = 0.0;

    double avg_power_w = 0.0;
    double peak_power_w = 0.0;
    double qps_per_watt = 0.0;

    /** Mean per-query component times (breakdown figures). */
    double mean_queue_ms = 0.0;  ///< dispatcher/fusion queue wait
    double mean_host_ms = 0.0;   ///< host cold-sparse stage (hot-split)
    double mean_load_ms = 0.0;   ///< PCIe data loading
    double mean_exec_ms = 0.0;   ///< device/thread execution

    size_t completed = 0;
    double duration_s = 0.0;
    /** true when the run stopped early via SimOptions::abort_tail_ms. */
    bool aborted = false;

    /** DES self-profile: events this run executed (deterministic). */
    uint64_t events_executed = 0;
    /** DES self-profile: peak pending-event depth (deterministic). */
    size_t peak_event_queue_depth = 0;
};

/** Run the simulation for a prepared workload. */
ServerSimResult simulateServer(const PreparedWorkload& w,
                               const SimOptions& opt);

/** Convenience: prepare + simulate (fatal on invalid config). */
ServerSimResult simulateServer(const hw::ServerSpec& server,
                               const model::Model& m,
                               const sched::SchedulingConfig& cfg,
                               const SimOptions& opt);

}  // namespace hercules::sim
