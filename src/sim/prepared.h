/**
 * @file
 * Binding of (server architecture, model, scheduling configuration)
 * into the concrete execution plan the simulator runs: validated
 * resource allocation, partitioned graphs, hot-embedding split, and the
 * per-thread execution contexts of the cost model.
 */
#pragma once

#include <optional>
#include <string>

#include "hw/cost_model.h"
#include "hw/server.h"
#include "model/model_zoo.h"
#include "model/partition.h"
// sim sits below sched in layers.json; PreparedServer is built *from*
// a sched::SchedulingConfig (the one plain-data type sched exports
// downward). Moving SchedulingConfig into model/ would fix the edge
// but orphan it from the search code that owns its semantics.
// layer-lint: allow(sched)
#include "sched/config.h"

namespace hercules::sim {

/**
 * A validated, ready-to-simulate workload placement.
 *
 * Which graphs are populated depends on the mapping:
 *  - CpuModelBased: `full` only;
 *  - CpuSdPipeline: `sparse` + `dense`;
 *  - GpuModelBased: `full` on the device (embeddings scaled by the hot
 *    hit rate) and `sparse` on the host for the cold fraction;
 *  - GpuSdPipeline: `sparse` on the host, `dense` on the device.
 */
struct PreparedWorkload
{
    const hw::ServerSpec* server = nullptr;
    const model::Model* model = nullptr;
    sched::SchedulingConfig config;

    model::Graph full;    ///< whole graph (elementwise-fused if enabled)
    model::Graph sparse;  ///< SparseNet Gs
    model::Graph dense;   ///< DenseNet Gd
    model::HotSplit hot;  ///< accelerator-resident embedding split

    hw::CpuExecContext cpu_cx;   ///< model-based / SparseNet threads
    hw::CpuExecContext cold_cx;  ///< host cold-sparse path (hot-split)
    hw::GpuExecContext gpu_cx;   ///< accelerator threads
};

/**
 * Check a configuration against the server's physical constraints
 * (cores, host memory, device memory, thread counts).
 *
 * @return std::nullopt when valid, else a human-readable reason.
 */
std::optional<std::string> validateConfig(
    const hw::ServerSpec& server, const model::Model& m,
    const sched::SchedulingConfig& cfg);

/**
 * Build the execution plan; fatal() if the configuration is invalid
 * (call validateConfig() first when probing a search space).
 */
PreparedWorkload prepare(const hw::ServerSpec& server,
                         const model::Model& m,
                         const sched::SchedulingConfig& cfg);

}  // namespace hercules::sim
