#include "sim/server_sim.h"

#include "sim/server_instance.h"
#include "util/logging.h"

namespace hercules::sim {

/*
 * The one-shot entry point is a thin wrapper over the steppable
 * ServerInstance: generate the arrival stream, inject every query up
 * front (bit-identical event ordering to the pre-extraction engine,
 * which scheduled all arrivals before running), then run to completion
 * — or until the early-abort predicate fires.
 */
ServerSimResult
simulateServer(const PreparedWorkload& w, const SimOptions& opt)
{
    if (opt.num_queries <= opt.warmup_queries)
        fatal("simulateServer: num_queries (%d) must exceed warmup (%d)",
              opt.num_queries, opt.warmup_queries);
    ServerInstance inst(w, opt);
    double rate = opt.saturate ? 1e9 : opt.offered_qps;
    workload::QueryGenerator gen(rate, opt.seed, opt.sizes, opt.pooling);
    for (int i = 0; i < opt.num_queries; ++i) {
        workload::Query q = gen.next();
        if (opt.saturate)
            q.arrival_s = 0.0;  // capacity probe: everything at t=0
        inst.inject(q);
    }

    if (opt.abort_tail_ms > 0.0 && !opt.saturate) {
        while (inst.hasPending()) {
            inst.step();
            if (inst.abortTriggered()) {
                inst.markAborted();
                break;
            }
        }
    } else {
        inst.drain();
    }
    return inst.finalize();
}

ServerSimResult
simulateServer(const hw::ServerSpec& server, const model::Model& m,
               const sched::SchedulingConfig& cfg, const SimOptions& opt)
{
    PreparedWorkload w = prepare(server, m, cfg);
    return simulateServer(w, opt);
}

}  // namespace hercules::sim
