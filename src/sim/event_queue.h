/**
 * @file
 * Minimal discrete-event scheduler: a time-ordered queue of callbacks
 * with deterministic FIFO tie-breaking (equal timestamps run in
 * scheduling order, so floating-point ties can never reorder runs).
 */
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "util/logging.h"

namespace hercules::sim {

/** Priority queue of (time, callback) events. */
class EventQueue
{
  public:
    using Callback = std::function<void()>;

    /** Schedule `fn` at absolute time `t` seconds (>= now). */
    void
    schedule(double t, Callback fn)
    {
        if (t < now_)
            panic("EventQueue: scheduling into the past (%f < %f)", t,
                  now_);
        heap_.push(Event{t, seq_++, std::move(fn)});
        if (heap_.size() > peak_)
            peak_ = heap_.size();
    }

    /** @return true when no events remain. */
    bool empty() const { return heap_.empty(); }

    /** @return current simulation time (of the last executed event). */
    double now() const { return now_; }

    /** @return timestamp of the next pending event (panics when empty). */
    double
    nextTime() const
    {
        if (heap_.empty())
            panic("EventQueue: nextTime on empty queue");
        return heap_.top().t;
    }

    /** Pop and run the next event; advances now(). */
    void
    runNext()
    {
        if (heap_.empty())
            panic("EventQueue: runNext on empty queue");
        // std::priority_queue::top returns const&; the callback must be
        // moved out before pop, hence the const_cast on our own storage.
        Event& ev = const_cast<Event&>(heap_.top());
        now_ = ev.t;
        Callback fn = std::move(ev.fn);
        heap_.pop();
        ++executed_;
        fn();
    }

    /** Run events until the queue drains. */
    void
    runAll()
    {
        while (!heap_.empty())
            runNext();
    }

    /**
     * Discard every pending event without running it (crash semantics:
     * work in flight simply never finishes). now() and the tie-break
     * counter are preserved so post-clear scheduling stays ordered
     * after everything that already ran.
     */
    void clear() { heap_ = {}; }

    /**
     * Self-profiling counters (survive clear()): total events executed
     * and the peak number of pending events. Deterministic — pure
     * functions of the simulated schedule, no wall clock involved.
     */
    uint64_t eventsExecuted() const { return executed_; }
    size_t peakDepth() const { return peak_; }

  private:
    struct Event
    {
        double t;
        uint64_t seq;
        Callback fn;

        bool
        operator>(const Event& o) const
        {
            if (t != o.t)
                return t > o.t;
            return seq > o.seq;
        }
    };

    std::priority_queue<Event, std::vector<Event>, std::greater<>> heap_;
    uint64_t seq_ = 0;
    double now_ = 0.0;
    uint64_t executed_ = 0;
    size_t peak_ = 0;
};

}  // namespace hercules::sim
