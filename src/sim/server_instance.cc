#include "sim/server_instance.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace hercules::sim {

using sched::Mapping;

ServerInstance::ServerInstance(const PreparedWorkload& w,
                               const SimOptions& opt)
    : w_(w), opt_(opt), cost_(*w.server), power_(*w.server)
{
    // ---- set up pools -------------------------------------------------
    const sched::SchedulingConfig& cfg = w_.config;
    switch (mapping()) {
      case Mapping::CpuModelBased:
        cpu_pool_.total = cpu_pool_.idle = cfg.cpu_threads;
        cpu_pool_.cores_each = cfg.cores_per_thread;
        break;
      case Mapping::CpuSdPipeline:
        cpu_pool_.total = cpu_pool_.idle = cfg.cpu_threads;
        cpu_pool_.cores_each = cfg.cores_per_thread;
        dense_pool_.total = dense_pool_.idle = cfg.dense_threads;
        dense_pool_.cores_each = 1;
        break;
      case Mapping::GpuSdPipeline:
        cpu_pool_.total = cpu_pool_.idle = cfg.cpu_threads;
        cpu_pool_.cores_each = cfg.cores_per_thread;
        gpu_threads_.resize(static_cast<size_t>(cfg.gpu_threads));
        break;
      case Mapping::GpuModelBased:
        gpu_threads_.resize(static_cast<size_t>(cfg.gpu_threads));
        host_pool_.total = cfg.cpu_threads;
        host_pool_.cores_each = cfg.cores_per_thread;
        host_stage_idle_ = cfg.cpu_threads;
        break;
    }
    // Tail statistics come from post-warmup queries only, so the abort
    // predicate watches those.
    abort_scan_ = static_cast<size_t>(std::max(opt_.warmup_queries, 0));
}

int
ServerInstance::inject(const workload::Query& q)
{
    int idx = static_cast<int>(queries_.size());
    QueryState st;
    st.arrival = q.arrival_s;
    st.size = q.size;
    st.ps = q.pooling_scale;
    if (idx == opt_.warmup_queries)
        steady_start_ = st.arrival;
    queries_.push_back(st);
    eq_.schedule(st.arrival, [this, idx] { arrival(idx); });
    return idx;
}

void
ServerInstance::advanceTo(double t_s)
{
    while (!eq_.empty() && eq_.nextTime() <= t_s)
        eq_.runNext();
}

void
ServerInstance::drain()
{
    eq_.runAll();
}

void
ServerInstance::step()
{
    if (!eq_.empty())
        eq_.runNext();
}

void
ServerInstance::setSlowdown(double factor)
{
    if (std::isnan(factor) || factor < 1.0)
        panic("ServerInstance::setSlowdown: factor must be >= 1 (got %f)",
              factor);
    slowdown_ = factor;
}

size_t
ServerInstance::killInFlight()
{
    size_t killed = 0;
    for (QueryState& q : queries_) {
        if (q.done)
            continue;
        q.pending = 0;
        q.done = true;
        ++killed;
    }
    done_count_ += killed;
    // Discard everything scheduled or queued: arrivals not yet fired,
    // chunks waiting in pools, batches staged in the GPU pipeline.
    eq_.clear();
    auto reset = [](Pool& p) {
        p.queue.clear();
        p.idle = p.total;
    };
    reset(cpu_pool_);
    reset(dense_pool_);
    reset(host_pool_);
    for (GpuThread& th : gpu_threads_) {
        th.loading = false;
        th.has_loaded = false;
        th.executing = false;
        th.loaded = Batch{};
    }
    fusion_queue_.clear();
    host_stage_queue_.clear();
    host_stage_idle_ = host_pool_.total;
    pcie_free_ = eq_.now();
    return killed;
}

/**
 * The early-abort predicate: true once the oldest in-flight post-warmup
 * query has been in the system longer than abort_tail_ms. Amortized
 * O(1): the scan pointer only moves forward over completed queries.
 */
bool
ServerInstance::abortTriggered()
{
    while (abort_scan_ < queries_.size() && queries_[abort_scan_].done)
        ++abort_scan_;
    if (abort_scan_ >= queries_.size())
        return false;
    const QueryState& q = queries_[abort_scan_];
    return eq_.now() - q.arrival > opt_.abort_tail_ms * 1e-3;
}

const model::Graph&
ServerInstance::poolGraph(int pool_id) const
{
    switch (pool_id) {
      case 0: return w_.full;
      case 1: return w_.sparse;
      case 2: return w_.dense;
      case 3: return w_.sparse;
    }
    panic("poolGraph: bad pool id %d", pool_id);
}

const hw::CpuExecContext&
ServerInstance::poolContext(int pool_id) const
{
    return pool_id == 3 ? w_.cold_cx : w_.cpu_cx;
}

ServerInstance::ServiceSample
ServerInstance::cpuService(int pool_id, int items, double query_ps)
{
    auto& memo = memo_[pool_id];
    auto it = memo.find(items);
    if (it == memo.end()) {
        hw::CpuExecContext cx = poolContext(pool_id);
        // DenseNet threads run with a single op worker (Fig 10(b)).
        if (pool_id == 2)
            cx.workers = 1;
        double base_scale = cx.pooling_scale;
        cx.pooling_scale = base_scale * 1.0;
        hw::GraphTiming t1 =
            cost_.cpuGraphTiming(poolGraph(pool_id), items, cx);
        cx.pooling_scale = base_scale * 2.0;
        hw::GraphTiming t2 =
            cost_.cpuGraphTiming(poolGraph(pool_id), items, cx);
        ServiceMemoEntry e;
        e.lat1 = t1.latency_us;
        e.lat2 = t2.latency_us;
        e.bytes1 = t1.dram_bytes;
        e.bytes2 = t2.dram_bytes;
        e.nmp1 = t1.nmp_busy_us;
        e.nmp2 = t2.nmp_busy_us;
        e.idle_frac = t1.idle_frac;
        it = memo.emplace(items, e).first;
    }
    const ServiceMemoEntry& e = it->second;
    double f = query_ps - 1.0;
    ServiceSample s;
    s.latency_us = std::max(1e-3, e.lat1 + (e.lat2 - e.lat1) * f);
    s.dram_bytes = std::max(0.0, e.bytes1 + (e.bytes2 - e.bytes1) * f);
    s.nmp_busy_us = std::max(0.0, e.nmp1 + (e.nmp2 - e.nmp1) * f);
    s.idle_frac = e.idle_frac;
    return s;
}

void
ServerInstance::chargeBins(std::vector<double>& bins, double start_s,
                           double end_s, double weight)
{
    if (end_s <= start_s || weight <= 0.0)
        return;
    size_t first = binIndex(start_s);
    size_t last = binIndex(end_s);
    if (bins.size() <= last)
        bins.resize(last + 1, 0.0);
    for (size_t b = first; b <= last; ++b) {
        double lo = std::max(start_s, static_cast<double>(b) * kBinSeconds);
        double hi = std::min(end_s,
                             static_cast<double>(b + 1) * kBinSeconds);
        if (hi > lo)
            bins[b] += (hi - lo) * weight;
    }
}

void
ServerInstance::splitToPool(int qidx, Pool& pool, int batch)
{
    QueryState& q = queries_[static_cast<size_t>(qidx)];
    int remaining = q.size;
    while (remaining > 0) {
        int take = std::min(remaining, batch);
        remaining -= take;
        ++q.pending;
        enqueue(pool, Chunk{qidx, take, q.ps});
    }
}

void
ServerInstance::enqueue(Pool& pool, Chunk c)
{
    if (pool.idle > 0) {
        --pool.idle;
        poolServe(pool, c);
    } else {
        pool.queue.push_back(c);
    }
}

void
ServerInstance::poolServe(Pool& pool, Chunk c)
{
    int pool_id = (&pool == &cpu_pool_)
                      ? (mapping() == Mapping::CpuModelBased ? 0 : 1)
                      : 2;
    QueryState& q = queries_[static_cast<size_t>(c.query)];
    if (!q.started) {
        q.started = true;
        q.enqueue_done = eq_.now();
        if (c.query >= opt_.warmup_queries)
            queue_ms_.add((eq_.now() - q.arrival) * 1e3);
    }

    ServiceSample s = cpuService(pool_id, c.items, c.ps);
    double start = eq_.now();
    double end = start + s.latency_us * 1e-6 * slowdown_;
    // Op-workers blocked on the dependency chain do not burn busy
    // cycles (the Fig 4(c)/Fig 5 utilization effect).
    chargeBins(cpu_busy_s_, start, end,
               static_cast<double>(pool.cores_each) *
                   (1.0 - s.idle_frac));
    chargeBins(mem_bytes_, start, end,
               s.dram_bytes / (s.latency_us * 1e-6));
    if (s.nmp_busy_us > 0.0)
        chargeBins(nmp_busy_s_, start, start + s.nmp_busy_us * 1e-6, 1.0);
    if (c.query >= opt_.warmup_queries)
        exec_ms_.add(s.latency_us * 1e-3);

    eq_.schedule(end, [this, &pool, c] { poolDone(pool, c); });
}

void
ServerInstance::poolDone(Pool& pool, Chunk c)
{
    // Hand the chunk to the next stage.
    if (&pool == &cpu_pool_ && mapping() == Mapping::CpuSdPipeline) {
        enqueue(dense_pool_, c);
    } else if (&pool == &cpu_pool_ &&
               mapping() == Mapping::GpuSdPipeline) {
        fusion_queue_.push_back(c);
        for (size_t t = 0; t < gpu_threads_.size(); ++t)
            tryFormGpuBatch(t);
    } else {
        queryPartDone(c.query);
    }
    // Pull the next chunk.
    if (!pool.queue.empty()) {
        Chunk next = pool.queue.front();
        pool.queue.pop_front();
        poolServe(pool, next);
    } else {
        ++pool.idle;
    }
}

void
ServerInstance::queryPartDone(int qidx)
{
    QueryState& q = queries_[static_cast<size_t>(qidx)];
    if (--q.pending > 0)
        return;
    q.done = true;
    ++done_count_;
    double now = eq_.now();
    last_finish_ = now;
    if (opt_.record_completions) {
        Completion c;
        c.query = qidx;
        c.shard = shard_id_;
        c.service = service_id_;
        c.arrival_s = q.arrival;
        c.finish_s = now;
        c.queue_wait_s = q.started ? q.enqueue_done - q.arrival : 0.0;
        completions_.push_back(c);
    }
    if (qidx >= opt_.warmup_queries) {
        latency_ms_.add((now - q.arrival) * 1e3);
        completion_times_.push_back(now);
        ++measured_completed_;
    }
}

void
ServerInstance::arrival(int qidx)
{
    QueryState& q = queries_[static_cast<size_t>(qidx)];
    switch (mapping()) {
      case Mapping::CpuModelBased:
      case Mapping::CpuSdPipeline:
      case Mapping::GpuSdPipeline:
        splitToPool(qidx, cpu_pool_, w_.config.batch);
        break;
      case Mapping::GpuModelBased: {
        // Queries enter the fusion queue whole; oversized queries are
        // chunked at the fusion limit.
        int limit = w_.config.fusion_limit > 0 ? w_.config.fusion_limit
                                               : q.size;
        int remaining = q.size;
        while (remaining > 0) {
            int take = std::min(remaining, limit);
            remaining -= take;
            ++q.pending;
            fusion_queue_.push_back(Chunk{qidx, take, q.ps});
        }
        for (size_t t = 0; t < gpu_threads_.size(); ++t)
            tryFormGpuBatch(t);
        break;
      }
    }
}

void
ServerInstance::tryFormGpuBatch(size_t tid)
{
    GpuThread& th = gpu_threads_[tid];
    if (th.loading || th.has_loaded || fusion_queue_.empty())
        return;

    Batch b;
    int limit = w_.config.fusion_limit;
    while (!fusion_queue_.empty()) {
        const Chunk& c = fusion_queue_.front();
        if (!b.chunks.empty() &&
            (limit <= 0 || b.items + c.items > limit))
            break;
        b.chunks.push_back(c);
        b.items += c.items;
        fusion_queue_.pop_front();
        if (limit <= 0)
            break;  // no fusion: one query chunk per batch
    }
    double ps_weighted = 0.0;
    for (const Chunk& c : b.chunks) {
        ps_weighted += c.ps * c.items;
        QueryState& q = queries_[static_cast<size_t>(c.query)];
        if (!q.started) {
            q.started = true;
            q.enqueue_done = eq_.now();
            if (c.query >= opt_.warmup_queries)
                queue_ms_.add((eq_.now() - q.arrival) * 1e3);
        }
    }
    b.ps = b.items > 0 ? ps_weighted / b.items : 1.0;

    th.loading = true;
    bool needs_cold = mapping() == Mapping::GpuModelBased &&
                      w_.gpu_cx.hot_hit_rate < 1.0;
    if (needs_cold) {
        // Host threads pre-reduce the cold embedding fraction.
        if (host_stage_idle_ > 0) {
            --host_stage_idle_;
            Batch copy = b;
            size_t t = tid;
            ServiceSample s = cpuService(3, b.items, b.ps);
            double end = eq_.now() + s.latency_us * 1e-6 * slowdown_;
            chargeBins(cpu_busy_s_, eq_.now(), end,
                       static_cast<double>(host_pool_.cores_each) *
                           (1.0 - s.idle_frac));
            chargeBins(mem_bytes_, eq_.now(), end,
                       s.dram_bytes / (s.latency_us * 1e-6));
            if (s.nmp_busy_us > 0.0)
                chargeBins(nmp_busy_s_, eq_.now(),
                           eq_.now() + s.nmp_busy_us * 1e-6, 1.0);
            for (const Chunk& c : b.chunks)
                if (c.query >= opt_.warmup_queries) {
                    host_ms_.add(s.latency_us * 1e-3);
                    break;
                }
            eq_.schedule(end,
                         [this, t, copy] { gpuHostStageDone(t, copy); });
        } else {
            host_stage_queue_.emplace_back(tid, std::move(b));
        }
    } else {
        startTransfer(tid, std::move(b));
    }
}

void
ServerInstance::gpuHostStageDone(size_t tid, Batch b)
{
    startTransfer(tid, std::move(b));
    // Free host helper; pull queued host-stage work.
    if (!host_stage_queue_.empty()) {
        auto [next_tid, next_b] = std::move(host_stage_queue_.front());
        host_stage_queue_.pop_front();
        size_t t = next_tid;
        ServiceSample s = cpuService(3, next_b.items, next_b.ps);
        double end = eq_.now() + s.latency_us * 1e-6 * slowdown_;
        chargeBins(cpu_busy_s_, eq_.now(), end,
                   static_cast<double>(host_pool_.cores_each) *
                       (1.0 - s.idle_frac));
        chargeBins(mem_bytes_, eq_.now(), end,
                   s.dram_bytes / (s.latency_us * 1e-6));
        if (s.nmp_busy_us > 0.0)
            chargeBins(nmp_busy_s_, eq_.now(),
                       eq_.now() + s.nmp_busy_us * 1e-6, 1.0);
        for (const Chunk& c : next_b.chunks)
            if (c.query >= opt_.warmup_queries) {
                host_ms_.add(s.latency_us * 1e-3);
                break;
            }
        Batch copy = std::move(next_b);
        eq_.schedule(end, [this, t, copy] { gpuHostStageDone(t, copy); });
    } else {
        ++host_stage_idle_;
    }
}

void
ServerInstance::startTransfer(size_t tid, Batch b)
{
    const model::Graph& g =
        mapping() == Mapping::GpuModelBased ? w_.full : w_.dense;
    hw::GpuExecContext cx = w_.gpu_cx;
    cx.pooling_scale = b.ps;
    double bytes = cost_.gpuInputBytes(g, b.items, cx);
    // The PCIe link is a FIFO DMA engine shared by all loaders.
    double dur_s = (hw::calib::kGpuHostPrepUs +
                    cost_.pcieTransferUs(bytes, cost_.pcieBwGbps())) *
                   1e-6 * slowdown_;
    double start = std::max(eq_.now(), pcie_free_);
    double end = start + dur_s;
    pcie_free_ = end;
    chargeBins(pcie_busy_s_, start, end, 1.0);
    for (const Chunk& c : b.chunks)
        if (c.query >= opt_.warmup_queries) {
            load_ms_.add((end - eq_.now()) * 1e3);
            break;
        }
    Batch copy = std::move(b);
    eq_.schedule(end, [this, tid, copy] { onLoaded(tid, copy); });
}

void
ServerInstance::onLoaded(size_t tid, Batch b)
{
    GpuThread& th = gpu_threads_[tid];
    th.loading = false;
    if (th.executing) {
        th.loaded = std::move(b);
        th.has_loaded = true;
    } else {
        startExec(tid, std::move(b));
        // Prefetch the next batch while this one executes.
        tryFormGpuBatch(tid);
    }
}

void
ServerInstance::startExec(size_t tid, Batch b)
{
    GpuThread& th = gpu_threads_[tid];
    th.executing = true;
    const model::Graph& g =
        mapping() == Mapping::GpuModelBased ? w_.full : w_.dense;
    hw::GpuExecContext cx = w_.gpu_cx;
    cx.pooling_scale = b.ps;
    hw::GraphTiming t = cost_.gpuGraphTiming(g, b.items, cx);
    double end = eq_.now() + t.latency_us * 1e-6 * slowdown_;
    chargeBins(gpu_busy_s_, eq_.now(), end, 1.0);
    for (const Chunk& c : b.chunks)
        if (c.query >= opt_.warmup_queries) {
            exec_ms_.add(t.latency_us * 1e-3);
            break;
        }
    Batch copy = std::move(b);
    eq_.schedule(end, [this, tid, copy] { onExecDone(tid, copy); });
}

void
ServerInstance::onExecDone(size_t tid, Batch b)
{
    GpuThread& th = gpu_threads_[tid];
    th.executing = false;
    for (const Chunk& c : b.chunks)
        queryPartDone(c.query);
    if (th.has_loaded) {
        th.has_loaded = false;
        Batch next = std::move(th.loaded);
        startExec(tid, std::move(next));
    }
    tryFormGpuBatch(tid);
}

ServerInstance::BinUtil
ServerInstance::binUtil(size_t b, double mem_denom) const
{
    auto binVal = [&](const std::vector<double>& bins, size_t i) {
        return i < bins.size() ? bins[i] : 0.0;
    };
    int cores = w_.server->cpu.cores;
    BinUtil u;
    u.cpu = std::min(1.0, binVal(cpu_busy_s_, b) / (kBinSeconds * cores));
    double mu = std::min(
        1.0, binVal(mem_bytes_, b) / (kBinSeconds * mem_denom));
    u.nmp = std::min(1.0, binVal(nmp_busy_s_, b) / kBinSeconds);
    u.gpu = std::min(
        1.0, binVal(gpu_busy_s_, b) /
                 (kBinSeconds * std::max<size_t>(gpu_threads_.size(), 1)));
    u.pcie = std::min(1.0, binVal(pcie_busy_s_, b) / kBinSeconds);
    if (!w_.config.usesGpu())
        u.gpu = 0.0;
    u.mem = std::min(1.0, mu + u.nmp);
    return u;
}

double
ServerInstance::avgPowerBetween(double t0_s, double t1_s) const
{
    if (t1_s <= t0_s)
        return 0.0;
    double mem_denom = cost_.effectiveHostBwGbps(1) * 1e9;
    size_t bin_lo = binIndex(t0_s);
    size_t bin_hi = binIndex(std::nextafter(t1_s, t0_s));  // exclusive end
    OnlineStats power;
    for (size_t b = bin_lo; b <= bin_hi; ++b) {
        BinUtil u = binUtil(b, mem_denom);
        power.add(power_.serverPowerW(hw::Utilization{u.cpu, u.mem, u.gpu}));
    }
    return power.mean();
}

ServerSimResult
ServerInstance::finalize() const
{
    ServerSimResult r;
    r.aborted = aborted_;
    r.events_executed = eq_.eventsExecuted();
    r.peak_event_queue_depth = eq_.peakDepth();
    r.offered_qps = opt_.saturate ? 0.0 : opt_.offered_qps;
    r.completed = measured_completed_;
    double t_begin = steady_start_;
    double t_end = last_finish_;
    r.duration_s = std::max(t_end - t_begin, 1e-9);
    r.achieved_qps =
        static_cast<double>(measured_completed_) / r.duration_s;

    r.mean_ms = latency_ms_.mean();
    r.p50_ms = latency_ms_.p50();
    r.p95_ms = latency_ms_.p95();
    r.p99_ms = latency_ms_.p99();
    r.tail_ms = latency_ms_.percentile(opt_.tail_percentile);
    r.max_ms = latency_ms_.max();
    r.mean_queue_ms = queue_ms_.mean();
    r.mean_host_ms = host_ms_.mean();
    r.mean_load_ms = load_ms_.mean();
    r.mean_exec_ms = exec_ms_.mean();

    // ---- utilization + power over the steady window ---------------------
    size_t bin_lo = binIndex(t_begin);
    size_t bin_hi = binIndex(t_end);  // inclusive
    double mem_denom = cost_.effectiveHostBwGbps(1) * 1e9;

    OnlineStats power_stats;
    OnlineStats cpu_u, mem_u, gpu_u, pcie_u, nmp_u;
    for (size_t b = bin_lo; b <= bin_hi; ++b) {
        BinUtil u = binUtil(b, mem_denom);
        cpu_u.add(u.cpu);
        mem_u.add(u.mem);
        gpu_u.add(u.gpu);
        pcie_u.add(u.pcie);
        nmp_u.add(u.nmp);
        power_stats.add(
            power_.serverPowerW(hw::Utilization{u.cpu, u.mem, u.gpu}));
    }
    r.cpu_util = cpu_u.mean();
    r.mem_bw_util = mem_u.mean();
    r.gpu_util = gpu_u.mean();
    r.pcie_util = pcie_u.mean();
    r.nmp_util = nmp_u.mean();
    r.avg_power_w = power_stats.mean();
    r.peak_power_w = power_stats.max();
    r.qps_per_watt =
        r.avg_power_w > 0.0 ? r.achieved_qps / r.avg_power_w : 0.0;
    return r;
}

}  // namespace hercules::sim
