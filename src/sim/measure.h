/**
 * @file
 * Latency-bounded throughput measurement (DeepRecSys methodology): the
 * maximum Poisson arrival rate whose tail latency meets the SLA target
 * — and, during online serving, whose peak power stays within the
 * provisioned budget. Found by a saturation probe followed by bisection
 * over the offered load.
 */
#pragma once

#include <limits>
#include <optional>

#include "sim/server_sim.h"

namespace hercules::sim {

/** Options controlling a latency-bounded measurement. */
struct MeasureOptions
{
    SimOptions sim{};  ///< per-probe simulation options (rate overridden)
    /** Peak-power feasibility bound (W); infinity = unconstrained. */
    double power_budget_w = std::numeric_limits<double>::infinity();
    int bisect_iters = 6;     ///< bisection refinement steps
    double hi_factor = 1.05;  ///< upper bracket as a fraction of capacity
};

/** The chosen operating point of a feasible configuration. */
struct OperatingPoint
{
    double qps = 0.0;          ///< latency-bounded throughput
    ServerSimResult result{};  ///< full measurements at that load
};

/**
 * Saturation capacity (QPS) of a configuration: throughput with every
 * query available at time zero.
 */
double saturationQps(const PreparedWorkload& w, const SimOptions& opt);

/**
 * Measure the latency-bounded (and power-bounded) throughput.
 *
 * @return the operating point, or std::nullopt when no load level
 * meets the SLA/power constraints (the configuration is infeasible).
 */
std::optional<OperatingPoint> measureLatencyBoundedQps(
    const PreparedWorkload& w, double sla_ms, const MeasureOptions& opt);

/** Convenience overload: prepare + measure. */
std::optional<OperatingPoint> measureLatencyBoundedQps(
    const hw::ServerSpec& server, const model::Model& m,
    const sched::SchedulingConfig& cfg, double sla_ms,
    const MeasureOptions& opt);

}  // namespace hercules::sim
