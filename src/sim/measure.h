/**
 * @file
 * Latency-bounded throughput measurement (DeepRecSys methodology): the
 * maximum Poisson arrival rate whose tail latency meets the SLA target
 * — and, during online serving, whose peak power stays within the
 * provisioned budget. Found by a saturation probe followed by bisection
 * over the offered load.
 */
#pragma once

#include <limits>
#include <optional>

#include "sim/server_sim.h"

namespace hercules::sim {

/** Options controlling a latency-bounded measurement. */
struct MeasureOptions
{
    SimOptions sim{};  ///< per-probe simulation options (rate overridden)
    /** Peak-power feasibility bound (W); infinity = unconstrained. */
    double power_budget_w = std::numeric_limits<double>::infinity();
    int bisect_iters = 6;     ///< bisection refinement steps
    double hi_factor = 1.05;  ///< upper bracket as a fraction of capacity
    /**
     * > 0: load probes abort once the oldest in-flight post-warmup
     * query has waited `sla_ms * abort_tail_factor` — the probe is
     * declared infeasible without simulating the rest of the backlog.
     * 0 disables (the seed behaviour).
     */
    double abort_tail_factor = 0.0;
    /**
     * > 0: stop bisecting once the bracket narrows below
     * `bisect_rel_tol * capacity`. Combined with a warm-start hint this
     * cuts the per-measurement simulation count. 0 disables (always run
     * all bisect_iters refinement steps, the seed behaviour).
     */
    double bisect_rel_tol = 0.0;
};

/**
 * Warm-start hint for the bisection: the operating point of a cached
 * neighbouring configuration. The first probe lands on the neighbour's
 * QPS instead of mid-bracket, so when the surface is smooth the bracket
 * collapses onto the answer in fewer refinement steps.
 *
 * A hint changes which loads get probed and therefore (slightly) the
 * measured operating point; callers that need results comparable across
 * runs must pass the same hint for the same configuration every time
 * (the evaluation engine's searches derive hints deterministically from
 * the climb position).
 */
struct MeasureHint
{
    bool valid = false;
    double qps = 0.0;       ///< neighbour's latency-bounded QPS
    double capacity = 0.0;  ///< neighbour's saturation capacity
};

/** The chosen operating point of a feasible configuration. */
struct OperatingPoint
{
    double qps = 0.0;          ///< latency-bounded throughput
    ServerSimResult result{};  ///< full measurements at that load
    double capacity = 0.0;     ///< saturation capacity of the config
    double bracket_lo = 0.0;   ///< final bisection bracket, low side
    double bracket_hi = 0.0;   ///< final bisection bracket, high side
    int sims = 0;              ///< simulator runs consumed (incl. probe)
};

/**
 * Saturation capacity (QPS) of a configuration: throughput with every
 * query available at time zero.
 */
double saturationQps(const PreparedWorkload& w, const SimOptions& opt);

/**
 * Measure the latency-bounded (and power-bounded) throughput.
 *
 * @param hint optional warm-start from a neighbouring configuration.
 * @return the operating point, or std::nullopt when no load level
 * meets the SLA/power constraints (the configuration is infeasible).
 */
std::optional<OperatingPoint> measureLatencyBoundedQps(
    const PreparedWorkload& w, double sla_ms, const MeasureOptions& opt,
    const MeasureHint* hint = nullptr);

/** Convenience overload: prepare + measure. */
std::optional<OperatingPoint> measureLatencyBoundedQps(
    const hw::ServerSpec& server, const model::Model& m,
    const sched::SchedulingConfig& cfg, double sla_ms,
    const MeasureOptions& opt);

}  // namespace hercules::sim
