#include "sim/prepared.h"

#include <algorithm>
#include <cmath>
#include <string>
#include <unordered_map>

#include "hw/calibration.h"
#include "util/logging.h"

namespace hercules::sim {

using sched::Mapping;
using sched::SchedulingConfig;

namespace {

/** Host memory available for model storage (small OS/runtime margin). */
int64_t
hostModelCapacity(const hw::ServerSpec& server)
{
    return static_cast<int64_t>(
        0.95 * static_cast<double>(server.mem.capacityBytes()));
}

/** Device memory budget for one co-located accelerator thread. */
int64_t
gpuPerThreadCapacity(const hw::ServerSpec& server, int gpu_threads)
{
    double usable = static_cast<double>(server.gpu->memBytes()) -
                    hw::calib::kGpuReservedBytes;
    return static_cast<int64_t>(usable /
                                std::max(gpu_threads, 1));
}

/**
 * Hot splits are pure functions of (model, capacity) and the search
 * evaluates them for every candidate configuration — memoize.
 * (Single-threaded by design, like the rest of the simulator.)
 */
const model::HotSplit&
cachedHotSplit(const model::Model& m, int64_t capacity)
{
    static std::unordered_map<std::string, model::HotSplit> cache;
    std::string key = m.name + "/" + std::to_string(capacity);
    auto it = cache.find(key);
    if (it == cache.end())
        it = cache.emplace(key, model::computeHotSplit(m, capacity)).first;
    return it->second;
}

}  // namespace

std::optional<std::string>
validateConfig(const hw::ServerSpec& server, const model::Model& m,
               const SchedulingConfig& cfg)
{
    if (cfg.batch < 1)
        return "batch must be >= 1";
    if (cfg.cores_per_thread < 1)
        return "cores_per_thread must be >= 1";

    // Every mapping keeps the full embedding tables host-resident (the
    // accelerator holds at most the hot split).
    if (m.totalBytes() > hostModelCapacity(server))
        return "model does not fit host memory";

    switch (cfg.mapping) {
      case Mapping::CpuModelBased:
        if (cfg.cpu_threads < 1)
            return "need at least one inference thread";
        if (cfg.hostCores() > server.cpu.cores)
            return "host cores exceeded";
        break;
      case Mapping::CpuSdPipeline:
        if (cfg.cpu_threads < 1 || cfg.dense_threads < 1)
            return "S-D pipeline needs sparse and dense threads";
        if (cfg.hostCores() > server.cpu.cores)
            return "host cores exceeded";
        break;
      case Mapping::GpuModelBased: {
        if (!server.hasGpu())
            return "server has no accelerator";
        if (cfg.gpu_threads < 1)
            return "need at least one accelerator thread";
        int64_t budget = gpuPerThreadCapacity(server, cfg.gpu_threads) -
                         m.denseParamBytes();
        if (budget <= 0)
            return "dense parameters do not fit device memory";
        const model::HotSplit& hot = cachedHotSplit(m, budget);
        bool needs_cold = !hot.full();
        if (needs_cold && cfg.cpu_threads < 1)
            return "cold embedding path needs host threads";
        if (cfg.hostCores() > server.cpu.cores)
            return "host cores exceeded";
        break;
      }
      case Mapping::GpuSdPipeline: {
        if (!server.hasGpu())
            return "server has no accelerator";
        if (cfg.gpu_threads < 1)
            return "need at least one accelerator thread";
        if (cfg.cpu_threads < 1)
            return "S-D pipeline needs host SparseNet threads";
        if (cfg.hostCores() > server.cpu.cores)
            return "host cores exceeded";
        int64_t budget = gpuPerThreadCapacity(server, cfg.gpu_threads);
        if (m.denseParamBytes() > budget)
            return "dense parameters do not fit device memory";
        break;
      }
    }
    return std::nullopt;
}

PreparedWorkload
prepare(const hw::ServerSpec& server, const model::Model& m,
        const SchedulingConfig& cfg)
{
    if (auto err = validateConfig(server, m, cfg))
        fatal("prepare: invalid config '%s' for %s on %s: %s",
              cfg.str().c_str(), m.name.c_str(), server.name.c_str(),
              err->c_str());

    PreparedWorkload w;
    w.server = &server;
    w.model = &m;
    w.config = cfg;

    const model::Graph& base =
        m.graph;  // zoo graphs are already minimal; fusion applied below
    w.full = cfg.fuse_elementwise ? model::fuseElementwise(base) : base;
    w.sparse = model::sparseSubgraph(w.full);
    w.dense = model::denseSubgraph(w.full);

    // ---- CPU execution contexts --------------------------------------
    // Memory-bandwidth sharing counts the threads that actually touch
    // DRAM for gathers.
    int mem_threads = 1;
    switch (cfg.mapping) {
      case Mapping::CpuModelBased:
        mem_threads = cfg.cpu_threads;
        break;
      case Mapping::CpuSdPipeline:
      case Mapping::GpuSdPipeline:
      case Mapping::GpuModelBased:
        mem_threads = std::max(cfg.cpu_threads, 1);
        break;
    }
    hw::CostModel cost(server);
    w.cpu_cx.workers = cfg.cores_per_thread;
    w.cpu_cx.mem_bw_gbps = cost.perThreadBwGbps(mem_threads);
    w.cpu_cx.use_nmp = server.hasNmp();
    w.cpu_cx.nmp_share = 1.0 / std::max(mem_threads, 1);

    // ---- Accelerator context -----------------------------------------
    if (cfg.usesGpu()) {
        w.gpu_cx.colocated = cfg.gpu_threads;
        if (cfg.mapping == Mapping::GpuModelBased) {
            int64_t budget =
                gpuPerThreadCapacity(server, cfg.gpu_threads) -
                m.denseParamBytes();
            w.hot = cachedHotSplit(m, budget);
            w.gpu_cx.hot_hit_rate = w.hot.hit_rate;
            // Host-side cold path computes the (1 - hit) fraction.
            w.cold_cx = w.cpu_cx;
            w.cold_cx.pooling_scale = 1.0 - w.hot.hit_rate;
        } else {
            w.gpu_cx.hot_hit_rate = 1.0;
        }
    }
    return w;
}

}  // namespace hercules::sim
