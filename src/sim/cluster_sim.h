/**
 * @file
 * Sharded multi-server serving: N steppable ServerInstance shards
 * behind a query router, driven by a timestamped arrival trace on one
 * global clock. This is the cluster-level discrete-event layer the
 * online-serving experiments (Fig 13) run on — queries genuinely flow
 * through heterogeneous simulated servers instead of being scaled
 * analytically from per-server efficiency tuples.
 *
 * Router policies:
 *  - RoundRobin:        arrivals cycle over the active shards;
 *  - LeastOutstanding:  join-the-shortest-queue over in-flight queries;
 *  - PowerOfTwo:        two random active shards, pick the shorter
 *                       queue (seeded, deterministic);
 *  - HerculesWeighted:  smooth weighted round-robin, each shard
 *                       weighted by its efficiency-tuple QPS for the
 *                       served model — the heterogeneity-aware policy.
 *
 * Shard lifecycle: addShard() creates an active shard; setActive(id,
 * false, t) releases it — the router stops picking it immediately, but
 * its in-flight queries keep draining as the clock advances, and only
 * once drained() does the shard stop consuming power ("go dark").
 * Re-activation resumes routing to the same instance.
 */
#pragma once

#include <functional>
#include <limits>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "sim/server_instance.h"
#include "util/rng.h"

namespace hercules::sim {

/** The query-routing policies. */
enum class RouterPolicy {
    RoundRobin,
    LeastOutstanding,
    PowerOfTwo,
    HerculesWeighted,
};

/** @return display name ("rr", "jsq", "p2c", "hercules"). */
const char* routerPolicyName(RouterPolicy p);

/** Parse a policy name as printed by routerPolicyName(). */
std::optional<RouterPolicy> parseRouterPolicy(const std::string& name);

/** @return all four policies in declaration order. */
const std::vector<RouterPolicy>& allRouterPolicies();

class ClusterSim;

/** Stateful shard picker (cursor / credits / RNG live here). */
class Router
{
  public:
    Router(RouterPolicy policy, uint64_t seed);

    /** @return the picked active shard id, or -1 when none is active. */
    int pick(const ClusterSim& cluster);

    /** Reset per-topology state (called when the active set changes). */
    void onTopologyChange(size_t num_shards);

    RouterPolicy policy() const { return policy_; }

  private:
    RouterPolicy policy_;
    Rng rng_;
    uint64_t rr_cursor_ = 0;
    std::vector<double> credit_;  ///< smooth-WRR credit, by shard id
};

/** Per-interval serving statistics of one cluster run. */
struct IntervalStats
{
    double t0_s = 0.0, t1_s = 0.0;  ///< window (simulated seconds)
    size_t arrivals = 0;            ///< queries routed in the window
    size_t completions = 0;         ///< queries retired in the window
    size_t dropped = 0;             ///< arrivals with no active shard
    double offered_qps = 0.0;       ///< arrivals / window
    double p50_ms = 0.0;
    double p99_ms = 0.0;
    double max_ms = 0.0;
    size_t sla_violations = 0;      ///< completions above the SLA
    double sla_violation_rate = 0.0;
    int active_shards = 0;          ///< at window start (post-plan)
    double consumed_power_w = 0.0;  ///< mean over active+draining shards
    double provisioned_power_w = 0.0;  ///< from the interval plan
    double budget_power_w = 0.0;       ///< enforced cap (plan)
    bool power_capped = false;  ///< plan was trimmed to fit the budget
};

/** Whole-run aggregates. */
struct ClusterSimResult
{
    std::vector<IntervalStats> intervals;
    size_t injected = 0;
    size_t completed = 0;
    size_t dropped = 0;
    double mean_ms = 0.0;
    double p50_ms = 0.0;
    double p95_ms = 0.0;
    double p99_ms = 0.0;
    double max_ms = 0.0;
    size_t sla_violations = 0;
    double sla_violation_rate = 0.0;  ///< violations / completed
    double avg_consumed_power_w = 0.0;   ///< mean over intervals
    double peak_consumed_power_w = 0.0;
    double avg_provisioned_power_w = 0.0;
    double peak_provisioned_power_w = 0.0;
};

/** What one provisioning interval activates. */
struct IntervalPlan
{
    std::vector<int> active;  ///< shard ids routable this interval
    double provisioned_power_w = 0.0;
    double budget_power_w = std::numeric_limits<double>::infinity();
    bool power_capped = false;
};

/**
 * @param interval index (0-based) and window start in simulated
 * seconds; returns the plan applied at the window start.
 */
using IntervalPlanFn = std::function<IntervalPlan(int, double)>;

/** The sharded cluster simulator. */
class ClusterSim
{
  public:
    struct Options
    {
        RouterPolicy router = RouterPolicy::HerculesWeighted;
        uint64_t router_seed = 1;
        double sla_ms = 25.0;
        /**
         * Template for per-shard simulation options. Warmup is forced
         * to zero and completion recording on: the cluster layer owns
         * measurement windows.
         */
        SimOptions shard_sim{};
    };

    explicit ClusterSim(Options opt);

    // Shard instances reference shard_opt_: the cluster must not move.
    ClusterSim(const ClusterSim&) = delete;
    ClusterSim& operator=(const ClusterSim&) = delete;

    /**
     * Add one (initially active) shard.
     *
     * @param w          prepared placement; must outlive the ClusterSim.
     * @param weight_qps routing weight — the shard's efficiency-tuple
     *                   QPS for the served model.
     * @return the shard id.
     */
    int addShard(const PreparedWorkload& w, double weight_qps);

    /** Activate / release a shard at simulated time t_s. */
    void setActive(int shard, bool active, double t_s);

    bool isActive(int shard) const;

    /** @return true when inactive with no in-flight queries. */
    bool drained(int shard) const;

    size_t numShards() const { return shards_.size(); }
    size_t outstanding(int shard) const;
    double weight(int shard) const;
    const std::vector<int>& activeShards() const { return active_; }

    /** Advance every shard's event queue to t_s. */
    void advanceTo(double t_s);

    /**
     * Route one arrival (shards are first advanced to its timestamp).
     * @return the shard id, or -1 when no shard is active (dropped).
     */
    int route(const workload::Query& q);

    /** Retire all in-flight work on every shard. */
    void drainAll();

    /**
     * Collect the statistics of window [t0_s, t1_s): completions that
     * retired inside it, power consumed by active/draining shards.
     * Windows must be harvested in order, after advanceTo(t1_s).
     */
    IntervalStats harvest(double t0_s, double t1_s);

    /**
     * Replay a full trace: at each interval boundary apply `plan`
     * (nullptr keeps every shard active), feed the interval's
     * arrivals, advance, harvest. After the last interval all shards
     * drain and a final tail window is harvested.
     *
     * @param horizon_s with a positive value, intervals (and the plan)
     * keep running to this time even after the trace is exhausted —
     * trailing low-traffic intervals still get provisioned and
     * reported. 0 stops at the last arrival's interval.
     */
    ClusterSimResult run(const std::vector<workload::Query>& trace,
                         double interval_s,
                         const IntervalPlanFn& plan = nullptr,
                         double horizon_s = 0.0);

    /** Per-shard queries routed (diagnostics / tests). */
    const std::vector<size_t>& injectedPerShard() const
    { return injected_per_shard_; }

  private:
    struct Shard
    {
        std::unique_ptr<ServerInstance> inst;
        const PreparedWorkload* workload = nullptr;
        double weight = 0.0;
        bool active = true;
        double released_at = 0.0;   ///< last release time
        size_t harvest_cursor = 0;  ///< completions consumed so far
    };

    void rebuildActive();

    Options opt_;
    SimOptions shard_opt_;  ///< shared by all shard instances
    Router router_;
    std::vector<Shard> shards_;
    std::vector<int> active_;
    std::vector<size_t> injected_per_shard_;

    size_t injected_ = 0;
    size_t dropped_ = 0;
    size_t dropped_harvested_ = 0;
    size_t arrivals_harvested_ = 0;

    // run() aggregates
    PercentileTracker all_latency_ms_;
    size_t all_violations_ = 0;
};

}  // namespace hercules::sim
