/**
 * @file
 * Sharded multi-server serving: N steppable ServerInstance shards
 * behind query routers, driven by a timestamped arrival trace on one
 * global clock. This is the cluster-level discrete-event layer the
 * online-serving experiments (Fig 13) run on — queries genuinely flow
 * through heterogeneous simulated servers instead of being scaled
 * analytically from per-server efficiency tuples.
 *
 * Router policies:
 *  - RoundRobin:        arrivals cycle over the active shards;
 *  - LeastOutstanding:  join-the-shortest-queue over in-flight queries;
 *  - PowerOfTwo:        two distinct random active shards, pick the
 *                       shorter queue (seeded, deterministic);
 *  - HerculesWeighted:  smooth weighted round-robin, each shard
 *                       weighted by its efficiency-tuple QPS for the
 *                       served model — the heterogeneity-aware policy;
 *  - LatencyFeedback:   smooth weighted round-robin over *dynamic*
 *                       weights, re-derived each harvest interval from
 *                       the shard's observed window p99 against its
 *                       service's SLA (qos/feedback.h), starting from
 *                       the tuple weights.
 *
 * QoS (src/qos/): every dispatch consults the picked shard's
 * AdmissionController (Options::admission); a refused query is
 * *rejected* — counted separately from *dropped* (no active shard) but,
 * like a drop, it is an SLA violation in every interval / run / service
 * rate. With the default policy (none) every query is admitted and all
 * statistics are bit-identical to the pre-QoS engine.
 *
 * Multi-service co-serving: each shard belongs to one service (the
 * index a query carries in Query::service_id). Every service gets its
 * own Router instance routing over that service's active shards, its
 * own SLA, and its own per-interval / run-level statistics — the
 * shared fleet serves several models at once, as the Hercules cluster
 * provisioner assumes. Single-service callers leave service ids at 0
 * and see the original behaviour.
 *
 * Shard lifecycle: addShard() creates an active shard; setActive(id,
 * false, t) releases it — the router stops picking it immediately, but
 * its in-flight queries keep draining as the clock advances, and only
 * once drained() does the shard stop consuming power ("go dark").
 * Re-activation resumes routing to the same instance. Router state
 * (round-robin cursor, smooth-WRR credits) survives these topology
 * changes, so fairness debt accumulated before a re-provision carries
 * across interval boundaries.
 */
#pragma once

#include <cstdio>
#include <functional>
#include <limits>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "fault/fault.h"
#include "obs/self_profile.h"
#include "qos/admission.h"
#include "qos/qos.h"
#include "sim/server_instance.h"
#include "util/rng.h"

namespace hercules::obs {
class Telemetry;
}  // namespace hercules::obs

namespace hercules::sim {

/** The query-routing policies. */
enum class RouterPolicy {
    RoundRobin,
    LeastOutstanding,
    PowerOfTwo,
    HerculesWeighted,
    LatencyFeedback,
};

/** @return display name ("rr", "jsq", "p2c", "hercules",
 *  "latency-feedback"). */
const char* routerPolicyName(RouterPolicy p);

/** Parse a policy name as printed by routerPolicyName(). */
std::optional<RouterPolicy> parseRouterPolicy(const std::string& name);

/**
 * The four *static* policies in declaration order — the router sweep
 * the cluster benches iterate. LatencyFeedback is deliberately not
 * included: its weights depend on harvest feedback, so it is compared
 * explicitly (bench_qos) rather than silently added to every sweep.
 */
const std::vector<RouterPolicy>& allRouterPolicies();

class ClusterSim;

/** Stateful shard picker (cursor / credits / RNG live here). */
class Router
{
  public:
    Router(RouterPolicy policy, uint64_t seed);

    /**
     * @param active the shard ids this router may pick from (one
     *               service's active set).
     * @return the picked shard id, or -1 when `active` is empty.
     */
    int pick(const ClusterSim& cluster, const std::vector<int>& active);

    /**
     * Called when the shard set changes. Cursor and credits are
     * preserved — a re-provision must not restart round-robin at shard
     * 0 or erase accumulated smooth-WRR fairness debt — only the
     * credit vector is grown for newly added shards.
     */
    void onTopologyChange(size_t num_shards);

    RouterPolicy policy() const { return policy_; }

  private:
    RouterPolicy policy_;
    Rng rng_;
    uint64_t rr_cursor_ = 0;
    std::vector<double> credit_;  ///< smooth-WRR credit, by shard id
};

/** Per-interval serving statistics of one service. */
struct ServiceIntervalStats
{
    size_t arrivals = 0;     ///< queries routed in the window
    size_t completions = 0;  ///< queries retired in the window
    size_t dropped = 0;      ///< arrivals with no active shard
    size_t rejected = 0;     ///< arrivals refused by admission control
    double p50_ms = 0.0;
    double p99_ms = 0.0;
    /** In-flight queries killed by a shard crash in the window. */
    size_t failed_inflight = 0;
    /**
     * SLA-breaching completions plus dropped + rejected arrivals plus
     * crash-killed in-flight queries.
     */
    size_t sla_violations = 0;
    /**
     * sla_violations /
     * (completions + dropped + rejected + failed_inflight).
     */
    double sla_violation_rate = 0.0;
    int active_shards = 0;  ///< serving this service, at window start
};

/** Per-interval serving statistics of one cluster run. */
struct IntervalStats
{
    double t0_s = 0.0, t1_s = 0.0;  ///< window (simulated seconds)
    size_t arrivals = 0;            ///< queries routed in the window
    size_t completions = 0;         ///< queries retired in the window
    size_t dropped = 0;             ///< arrivals with no active shard
    size_t rejected = 0;  ///< arrivals refused by admission control
    /** In-flight queries killed by shard crashes in the window. */
    size_t failed_inflight = 0;
    /** (arrivals + dropped + rejected) / window. */
    double offered_qps = 0.0;
    double p50_ms = 0.0;
    double p99_ms = 0.0;
    double max_ms = 0.0;
    /**
     * SLA-breaching completions plus dropped and rejected arrivals
     * plus crash-killed in-flight queries: a query shed because no
     * shard was active — or refused by admission control, or killed by
     * a crash — missed its SLA by definition, so a fully-dark outage
     * interval reports a 100% violation rate instead of a vacuous 0%.
     */
    size_t sla_violations = 0;
    /**
     * sla_violations /
     * (completions + dropped + rejected + failed_inflight).
     */
    double sla_violation_rate = 0.0;
    int active_shards = 0;          ///< at window start (post-plan)
    double consumed_power_w = 0.0;  ///< mean over active+draining shards
    double provisioned_power_w = 0.0;  ///< from the interval plan
    double budget_power_w = 0.0;       ///< enforced cap (plan)
    bool power_capped = false;  ///< plan was trimmed to fit the budget
    /** Per-service slice of this window (index = service id). */
    std::vector<ServiceIntervalStats> services;
};

/** Whole-run aggregates of one service. */
struct ServiceRunStats
{
    size_t injected = 0;
    size_t completed = 0;
    size_t dropped = 0;
    size_t rejected = 0;  ///< refused by admission control
    size_t failed_inflight = 0;  ///< killed in flight by shard crashes
    double p50_ms = 0.0;
    double p99_ms = 0.0;
    double max_ms = 0.0;
    double sla_ms = 0.0;       ///< the SLA the service was held to
    /** Late completions + drops + rejects + crash-killed in flight. */
    size_t sla_violations = 0;
    /** violations / (completed + dropped + rejected + failed_inflight). */
    double sla_violation_rate = 0.0;
};

/**
 * One health transition of one shard (fault injection), scheduled via
 * ClusterSim::scheduleHealth(). Times are simulated seconds on the
 * cluster clock.
 */
struct HealthEvent
{
    double t_s = 0.0;
    int shard = 0;
    fault::HealthState state = fault::HealthState::Healthy;
    /** Latency multiplier while Degraded (>= 1); ignored otherwise. */
    double slowdown = 1.0;
};

/** One *applied* health transition, for reporting (CLI crash lines). */
struct HealthTransition
{
    double t_s = 0.0;
    int shard = 0;
    int service = 0;
    fault::HealthState from = fault::HealthState::Healthy;
    fault::HealthState to = fault::HealthState::Healthy;
    double slowdown = 1.0;       ///< multiplier in force after `to`
    size_t killed_inflight = 0;  ///< queries a crash killed
};

/** Whole-run aggregates. */
struct ClusterSimResult
{
    std::vector<IntervalStats> intervals;
    size_t injected = 0;
    size_t completed = 0;
    size_t dropped = 0;
    size_t rejected = 0;  ///< refused by admission control
    size_t failed_inflight = 0;  ///< killed in flight by shard crashes
    /** Queries saved from rejection by cross-shard admission retry. */
    size_t admission_retries = 0;
    double mean_ms = 0.0;
    double p50_ms = 0.0;
    double p95_ms = 0.0;
    double p99_ms = 0.0;
    double max_ms = 0.0;
    /** Late completions + drops + rejects + crash-killed in flight. */
    size_t sla_violations = 0;
    /** violations / (completed + dropped + rejected + failed_inflight). */
    double sla_violation_rate = 0.0;
    double avg_consumed_power_w = 0.0;   ///< mean over intervals
    double peak_consumed_power_w = 0.0;
    double avg_provisioned_power_w = 0.0;
    double peak_provisioned_power_w = 0.0;
    /** Per-service aggregates (index = service id). */
    std::vector<ServiceRunStats> services;
    /** Every applied health transition, in time order (fault runs). */
    std::vector<HealthTransition> health_transitions;
    /** DES self-profile of the run (events + wall-time provenance). */
    obs::DesProfile des;
};

/**
 * Emit the per-interval trajectory arrays every serving report's JSON
 * carries (p99, SLA-violation rate, dropped arrivals, provisioned and
 * consumed power), each line prefixed with `indent`, comma-terminated
 * except the last. One emitter keeps the BENCH_*.json schemas (bench
 * harnesses, scenario::writeResultJson) in lockstep.
 */
void writeIntervalArraysJson(std::FILE* f,
                             const std::vector<IntervalStats>& ivs,
                             const char* indent);

/** What one provisioning interval activates. */
struct IntervalPlan
{
    std::vector<int> active;  ///< shard ids routable this interval
    double provisioned_power_w = 0.0;
    double budget_power_w = std::numeric_limits<double>::infinity();
    bool power_capped = false;
};

/**
 * @param interval index (0-based) and window start in simulated
 * seconds; returns the plan applied at the window start.
 */
using IntervalPlanFn = std::function<IntervalPlan(int, double)>;

/** The sharded cluster simulator. */
class ClusterSim
{
  public:
    struct Options
    {
        RouterPolicy router = RouterPolicy::HerculesWeighted;
        /** Service s's router draws from seed router_seed + s. */
        uint64_t router_seed = 1;
        /** Default latency SLA (ms), used when a service has no own. */
        double sla_ms = 25.0;
        /**
         * Per-service SLA overrides, indexed by service id. Services
         * beyond the vector (and non-positive entries) fall back to
         * sla_ms.
         */
        std::vector<double> service_sla_ms;
        /**
         * Per-shard admission control (every shard gets a controller
         * with this config). Default policy `none` admits everything —
         * the pre-QoS unbounded-queue behaviour, bit-identical.
         */
        qos::AdmissionConfig admission{};
        /**
         * QoS classes per service id; services beyond the vector get
         * a default class. At this layer a class's positive sla_ms is
         * the fallback SLA when service_sla_ms doesn't cover the
         * service; priority/tier steer shedding and provisioning one
         * layer up in cluster::serveTraces.
         */
        std::vector<qos::ServiceClass> service_class;
        /** Weight-update knobs of the LatencyFeedback router. */
        qos::FeedbackConfig feedback{};
        /**
         * Template for per-shard simulation options. Warmup is forced
         * to zero and completion recording on: the cluster layer owns
         * measurement windows.
         */
        SimOptions shard_sim{};
        /**
         * Optional telemetry sink (src/obs/). Not owned; may be null
         * (the default = telemetry off). Every call into it only
         * *observes* — with or without a sink, all simulated statistics
         * are bit-identical.
         */
        obs::Telemetry* telemetry = nullptr;
    };

    explicit ClusterSim(Options opt);

    // Shard instances reference shard_opt_: the cluster must not move.
    ClusterSim(const ClusterSim&) = delete;
    ClusterSim& operator=(const ClusterSim&) = delete;

    /**
     * Add one (initially active) shard serving `service`.
     *
     * @param w          prepared placement; must outlive the ClusterSim.
     * @param weight_qps routing weight — the shard's efficiency-tuple
     *                   QPS for the served model.
     * @param service    the service this shard serves (Query::service_id
     *                   values it accepts).
     * @return the shard id.
     */
    int addShard(const PreparedWorkload& w, double weight_qps,
                 int service = 0);

    /**
     * Pre-declare services 0..count-1 (routers + accounting state).
     * addShard() declares its service implicitly; declaring up front
     * lets a service with no shards at all (no feasible capacity)
     * *drop* its queries — counted as SLA violations — instead of
     * being treated as an unknown-service routing error.
     */
    void declareServices(int count);

    /** Activate / release a shard at simulated time t_s. */
    void setActive(int shard, bool active, double t_s);

    bool isActive(int shard) const;

    /**
     * Install the run's fault timeline: health transitions sorted
     * ascending by t_s (panics otherwise). run() — and route(), for
     * direct drivers — apply each event at its timestamp, interleaved
     * deterministically with arrivals: a *failed* shard kills its
     * in-flight queries (counted in the failed_inflight statistics as
     * SLA violations) and leaves every router's candidate set until it
     * recovers; a *degraded* shard keeps serving with its latencies
     * multiplied by the event's slowdown. Replaces any previously
     * scheduled timeline.
     */
    void scheduleHealth(std::vector<HealthEvent> events);

    /**
     * Apply every scheduled health event with t_s <= the given time
     * (idempotent; route() and run() call this as the clock advances).
     */
    void applyHealthEventsUpTo(double t_s);

    /** @return the shard's current health state. */
    fault::HealthState shardHealth(int shard) const;

    /** @return true when inactive with no in-flight queries. */
    bool drained(int shard) const;

    size_t numShards() const { return shards_.size(); }
    /** @return number of services (max service id + 1). */
    int numServices() const
    { return static_cast<int>(active_by_service_.size()); }
    size_t outstanding(int shard) const;
    double weight(int shard) const;
    /**
     * The shard's current routing weight under latency feedback:
     * starts at weight(shard), multiplicatively adjusted every
     * harvest from the observed window p99 (qos/feedback.h). Only the
     * LatencyFeedback policy consults it.
     */
    double feedbackWeight(int shard) const;
    /** @return the service a shard serves. */
    int shardService(int shard) const;
    /** @return the SLA (ms) service `service` is held to. */
    double slaMs(int service) const;
    /** @return the QoS class of service `service` (default if unset). */
    qos::ServiceClass serviceClass(int service) const;
    /** All active shards, across services. */
    const std::vector<int>& activeShards() const { return active_; }
    /** Active shards of one service. */
    const std::vector<int>& activeShards(int service) const;

    /** Advance every shard's event queue to t_s. */
    void advanceTo(double t_s);

    /**
     * Route one arrival (shards are first advanced to its timestamp)
     * via its service's router to that service's active shards, then
     * through the picked shard's admission controller. When the picked
     * shard refuses and admission.cross_shard_retry is set, the query
     * is re-offered to the service's other active shards (ascending
     * estimated completion) before it counts as rejected.
     * @return the shard id the query was injected into; -1 when the
     * service has no active shard (dropped); -2 when admission control
     * refused the query on every eligible shard (rejected). Panics
     * when no shard was ever added for the service.
     */
    int route(const workload::Query& q);

    /** Retire all in-flight work on every shard. */
    void drainAll();

    /**
     * Collect the statistics of window [t0_s, t1_s): completions that
     * retired inside it, power consumed by active/draining shards.
     * Windows must be harvested in order, after advanceTo(t1_s).
     */
    IntervalStats harvest(double t0_s, double t1_s);

    /**
     * Replay a full trace: at each interval boundary apply `plan`
     * (nullptr keeps every shard active), feed the interval's
     * arrivals, advance, harvest. After the last interval all shards
     * drain and a final tail window is harvested.
     *
     * @param horizon_s with a positive value, intervals (and the plan)
     * keep running to this time even after the trace is exhausted —
     * trailing low-traffic intervals still get provisioned and
     * reported. 0 stops at the last arrival's interval.
     */
    ClusterSimResult run(const std::vector<workload::Query>& trace,
                         double interval_s,
                         const IntervalPlanFn& plan = nullptr,
                         double horizon_s = 0.0);

    /** Per-shard queries routed (diagnostics / tests). */
    const std::vector<size_t>& injectedPerShard() const
    { return injected_per_shard_; }

    /** Rejects saved so far by cross-shard re-offering. */
    size_t admissionRetries() const { return admission_retries_; }

  private:
    struct Shard
    {
        std::unique_ptr<ServerInstance> inst;
        const PreparedWorkload* workload = nullptr;
        double weight = 0.0;
        double fb_weight = 0.0;  ///< latency-feedback routing weight
        int service = 0;
        bool active = true;
        double released_at = 0.0;   ///< last release time
        size_t harvest_cursor = 0;  ///< completions consumed so far
        /** Dispatch-time admission decision (Options::admission). */
        qos::AdmissionController admit;
        /** Fault-injection health; Failed shards are never routable. */
        fault::HealthState health = fault::HealthState::Healthy;
        double slowdown = 1.0;   ///< latency multiplier in force
        double failed_at = 0.0;  ///< time of the last crash
    };

    /** Per-service routing + accounting state. */
    struct ServiceState
    {
        size_t injected = 0;
        size_t dropped = 0;
        size_t rejected = 0;
        size_t failed_inflight = 0;  ///< crash-killed in-flight queries
        size_t injected_harvested = 0;
        size_t dropped_harvested = 0;
        size_t rejected_harvested = 0;
        size_t failed_inflight_harvested = 0;
        PercentileTracker latency_ms;  ///< whole-run latencies
        size_t violations = 0;         ///< whole-run late completions
    };

    void ensureService(int service);
    void rebuildActive();

    Options opt_;
    SimOptions shard_opt_;  ///< shared by all shard instances
    std::vector<Router> routers_;  ///< one per service
    std::vector<Shard> shards_;
    std::vector<int> active_;  ///< all active shards
    std::vector<std::vector<int>> active_by_service_;
    std::vector<ServiceState> service_state_;
    std::vector<size_t> injected_per_shard_;

    size_t injected_ = 0;
    size_t dropped_ = 0;
    size_t rejected_ = 0;
    size_t failed_inflight_ = 0;  ///< crash-killed in-flight queries
    size_t admission_retries_ = 0;  ///< rejects saved by re-offering

    // fault injection
    std::vector<HealthEvent> health_events_;  ///< sorted by t_s
    size_t health_cursor_ = 0;                ///< next event to apply
    std::vector<HealthTransition> health_log_;

    // run() aggregates
    PercentileTracker all_latency_ms_;
    size_t all_violations_ = 0;  ///< late completions (drops added later)
};

}  // namespace hercules::sim
