#include "sim/measure.h"

#include <algorithm>

#include "util/logging.h"

namespace hercules::sim {

double
saturationQps(const PreparedWorkload& w, const SimOptions& opt)
{
    SimOptions sat = opt;
    sat.saturate = true;
    ServerSimResult r = simulateServer(w, sat);
    return r.achieved_qps;
}

namespace {

bool
feasible(const ServerSimResult& r, double offered, double sla_ms,
         double power_budget_w)
{
    if (r.aborted)
        return false;
    if (r.tail_ms > sla_ms)
        return false;
    if (r.peak_power_w > power_budget_w)
        return false;
    // The system must actually keep up with the offered load (a backlog
    // that drains only because the run is finite is not a valid
    // operating point).
    return r.achieved_qps >= 0.90 * offered;
}

}  // namespace

std::optional<OperatingPoint>
measureLatencyBoundedQps(const PreparedWorkload& w, double sla_ms,
                         const MeasureOptions& opt,
                         const MeasureHint* hint)
{
    if (sla_ms <= 0.0)
        fatal("measureLatencyBoundedQps: non-positive SLA %f", sla_ms);

    double capacity = saturationQps(w, opt.sim);
    int sims = 1;
    if (capacity <= 0.0)
        return std::nullopt;

    double lo = 0.0;
    double hi = capacity * opt.hi_factor;
    std::optional<OperatingPoint> best;

    auto probeAt = [&](double load) {
        SimOptions probe = opt.sim;
        probe.offered_qps = load;
        probe.saturate = false;
        if (opt.abort_tail_factor > 0.0)
            probe.abort_tail_ms = sla_ms * opt.abort_tail_factor;
        ++sims;
        return simulateServer(w, probe);
    };

    for (int it = 0; it < opt.bisect_iters; ++it) {
        if (opt.bisect_rel_tol > 0.0 &&
            hi - lo <= opt.bisect_rel_tol * capacity)
            break;
        double mid = 0.5 * (lo + hi);
        // Warm start: land the first probe on the neighbour's operating
        // point when it falls inside the bracket, instead of mid-way.
        if (it == 0 && hint && hint->valid && hint->qps > lo &&
            hint->qps < hi)
            mid = hint->qps;
        if (mid <= 0.0)
            break;
        ServerSimResult r = probeAt(mid);
        if (feasible(r, mid, sla_ms, opt.power_budget_w)) {
            best = OperatingPoint{r.achieved_qps, r, capacity, lo, hi, 0};
            lo = mid;
        } else {
            hi = mid;
        }
    }

    if (!best) {
        // The bracket may have skipped a small feasible region near the
        // origin; probe a light load before declaring infeasibility.
        double light = capacity * 0.02;
        if (light > 0.0) {
            ServerSimResult r = probeAt(light);
            if (feasible(r, light, sla_ms, opt.power_budget_w))
                best =
                    OperatingPoint{r.achieved_qps, r, capacity, lo, hi, 0};
        }
    }
    if (best) {
        best->capacity = capacity;
        best->bracket_lo = lo;
        best->bracket_hi = hi;
        best->sims = sims;
    }
    return best;
}

std::optional<OperatingPoint>
measureLatencyBoundedQps(const hw::ServerSpec& server,
                         const model::Model& m,
                         const sched::SchedulingConfig& cfg, double sla_ms,
                         const MeasureOptions& opt)
{
    PreparedWorkload w = prepare(server, m, cfg);
    return measureLatencyBoundedQps(w, sla_ms, opt);
}

}  // namespace hercules::sim
