#include "obs/trace.h"

namespace hercules::obs {

const char*
traceOutcomeName(TraceOutcome outcome)
{
    switch (outcome) {
      case TraceOutcome::InFlight:
        return "in_flight";
      case TraceOutcome::Completed:
        return "completed";
      case TraceOutcome::Dropped:
        return "dropped";
      case TraceOutcome::Rejected:
        return "rejected";
      case TraceOutcome::Killed:
        return "killed";
    }
    return "?";
}

bool
traceSampled(uint64_t id, double sample_rate)
{
    if (sample_rate >= 1.0)
        return true;
    if (sample_rate <= 0.0)
        return false;
    // SplitMix64 finalizer: maps the arrival sequence to a uniform
    // 64-bit hash, compared against the rate as a fixed threshold.
    uint64_t z = id + 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    z = z ^ (z >> 31);
    // 53-bit mantissa fraction in [0, 1).
    double u = static_cast<double>(z >> 11) * 0x1.0p-53;
    return u < sample_rate;
}

void
writeTraceJsonl(std::FILE* f, const std::vector<TraceRecord>& records)
{
    for (const TraceRecord& r : records) {
        std::fprintf(f, "{\"id\": %llu, \"service\": %d, \"outcome\": \"%s\"",
                     static_cast<unsigned long long>(r.id), r.service,
                     traceOutcomeName(r.outcome));
        if (r.shard >= 0)
            std::fprintf(f, ", \"shard\": %d", r.shard);
        else
            std::fprintf(f, ", \"shard\": null");
        std::fprintf(f, ", \"retry_hops\": %d, \"arrival_s\": %.6f",
                     r.retry_hops, r.arrival_s);
        if (r.queue_wait_ms >= 0.0)
            std::fprintf(f, ", \"queue_wait_ms\": %.6f", r.queue_wait_ms);
        else
            std::fprintf(f, ", \"queue_wait_ms\": null");
        if (r.service_start_s >= 0.0)
            std::fprintf(f, ", \"service_start_s\": %.6f", r.service_start_s);
        else
            std::fprintf(f, ", \"service_start_s\": null");
        if (r.finish_s >= 0.0)
            std::fprintf(f, ", \"finish_s\": %.6f, \"latency_ms\": %.6f}\n",
                         r.finish_s, r.latencyMs());
        else
            std::fprintf(f, ", \"finish_s\": null, \"latency_ms\": null}\n");
    }
}

}  // namespace hercules::obs
