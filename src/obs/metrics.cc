#include "obs/metrics.h"

#include <cmath>
#include <cstring>

#include "util/logging.h"

namespace hercules::obs {

namespace {

/**
 * Deterministic human-friendly number formatting: integral values print
 * without a fraction, everything else with six decimals.
 */
std::string
fmtNum(double v)
{
    char buf[64];
    if (std::isfinite(v) && v == std::floor(v) && std::fabs(v) < 1e15)
        std::snprintf(buf, sizeof buf, "%.0f", v);
    else
        std::snprintf(buf, sizeof buf, "%.6f", v);
    return buf;
}

}  // namespace

const char*
metricKindName(MetricKind kind)
{
    switch (kind) {
      case MetricKind::Counter:
        return "counter";
      case MetricKind::Gauge:
        return "gauge";
      case MetricKind::Histogram:
        return "histogram";
    }
    return "?";
}

const std::vector<double>&
MetricsRegistry::bucketBounds()
{
    // 0.01 ms doubling 24 times tops out at ~1.4e5 ms (2.3 simulated
    // minutes) — generous for any latency this stack produces; the
    // implicit +Inf bucket catches the rest.
    static const std::vector<double> kBounds = [] {
        std::vector<double> b;
        double v = 0.01;
        for (int i = 0; i < 24; ++i, v *= 2.0)
            b.push_back(v);
        return b;
    }();
    return kBounds;
}

int
MetricsRegistry::declareMetric(MetricKind kind, const std::string& name)
{
    util::MutexLock lock(mu_);
    auto it = index_.find(name);
    if (it != index_.end()) {
        if (metrics_[it->second].kind != kind)
            panic("MetricsRegistry: '%s' re-declared as %s (was %s)",
                  name.c_str(), metricKindName(kind),
                  metricKindName(metrics_[it->second].kind));
        return it->second;
    }
    Metric m;
    m.name = name;
    m.kind = kind;
    if (kind == MetricKind::Histogram)
        m.buckets.assign(bucketBounds().size() + 1, 0);  // +Inf at end
    // Late declarations (e.g. a shard added mid-run) back-fill their
    // series with zeros so every series stays sample-aligned.
    m.series.assign(kind == MetricKind::Histogram ? 0 : sample_times_.size(),
                    0.0);
    int id = static_cast<int>(metrics_.size());
    metrics_.push_back(std::move(m));
    index_.emplace(name, id);
    return id;
}

int
MetricsRegistry::counter(const std::string& name)
{
    return declareMetric(MetricKind::Counter, name);
}

int
MetricsRegistry::gauge(const std::string& name)
{
    return declareMetric(MetricKind::Gauge, name);
}

int
MetricsRegistry::histogram(const std::string& name)
{
    return declareMetric(MetricKind::Histogram, name);
}

const MetricsRegistry::Metric&
MetricsRegistry::at(int id) const
{
    if (id < 0 || static_cast<size_t>(id) >= metrics_.size())
        panic("MetricsRegistry: bad metric id %d", id);
    return metrics_[id];
}

MetricsRegistry::Metric&
MetricsRegistry::at(int id)
{
    return const_cast<Metric&>(
        static_cast<const MetricsRegistry*>(this)->at(id));
}

void
MetricsRegistry::add(int id, double delta)
{
    util::MutexLock lock(mu_);
    Metric& m = at(id);
    if (m.kind != MetricKind::Counter)
        panic("MetricsRegistry: add() on non-counter '%s'", m.name.c_str());
    m.value += delta;
}

void
MetricsRegistry::set(int id, double value)
{
    util::MutexLock lock(mu_);
    Metric& m = at(id);
    if (m.kind != MetricKind::Gauge)
        panic("MetricsRegistry: set() on non-gauge '%s'", m.name.c_str());
    m.value = value;
}

void
MetricsRegistry::observe(int id, double value)
{
    util::MutexLock lock(mu_);
    Metric& m = at(id);
    if (m.kind != MetricKind::Histogram)
        panic("MetricsRegistry: observe() on non-histogram '%s'",
              m.name.c_str());
    const std::vector<double>& bounds = bucketBounds();
    size_t b = 0;
    while (b < bounds.size() && value > bounds[b])
        ++b;
    ++m.buckets[b];
    if (m.count == 0) {
        m.min = value;
        m.max = value;
    } else {
        if (value < m.min)
            m.min = value;
        if (value > m.max)
            m.max = value;
    }
    ++m.count;
    m.sum += value;
}

double
MetricsRegistry::value(int id) const
{
    util::MutexLock lock(mu_);
    return at(id).value;
}

void
MetricsRegistry::sample(double t_s)
{
    util::MutexLock lock(mu_);
    sample_times_.push_back(t_s);
    for (Metric& m : metrics_)
        if (m.kind != MetricKind::Histogram)
            m.series.push_back(m.value);
}

const std::string&
MetricsRegistry::name(int id) const
{
    util::MutexLock lock(mu_);
    return at(id).name;
}

MetricKind
MetricsRegistry::kind(int id) const
{
    util::MutexLock lock(mu_);
    return at(id).kind;
}

const std::vector<double>&
MetricsRegistry::series(int id) const
{
    util::MutexLock lock(mu_);
    return at(id).series;
}

const std::vector<uint64_t>&
MetricsRegistry::bucketCounts(int id) const
{
    util::MutexLock lock(mu_);
    return at(id).buckets;
}

uint64_t
MetricsRegistry::histogramCount(int id) const
{
    util::MutexLock lock(mu_);
    return at(id).count;
}

double
MetricsRegistry::histogramSum(int id) const
{
    util::MutexLock lock(mu_);
    return at(id).sum;
}

void
MetricsRegistry::writePrometheus(std::FILE* f) const
{
    util::MutexLock lock(mu_);
    writePrometheusLocked(f);
}

void
MetricsRegistry::writePrometheusLocked(std::FILE* f) const
{
    const std::vector<double>& bounds = bucketBounds();
    for (const Metric& m : metrics_) {
        std::fprintf(f, "# TYPE %s %s\n", m.name.c_str(),
                     metricKindName(m.kind));
        if (m.kind != MetricKind::Histogram) {
            std::fprintf(f, "%s %s\n", m.name.c_str(),
                         fmtNum(m.value).c_str());
            continue;
        }
        uint64_t cum = 0;
        for (size_t b = 0; b < m.buckets.size(); ++b) {
            cum += m.buckets[b];
            if (b < bounds.size())
                std::fprintf(f, "%s_bucket{le=\"%g\"} %llu\n",
                             m.name.c_str(), bounds[b],
                             static_cast<unsigned long long>(cum));
            else
                std::fprintf(f, "%s_bucket{le=\"+Inf\"} %llu\n",
                             m.name.c_str(),
                             static_cast<unsigned long long>(cum));
        }
        std::fprintf(f, "%s_sum %s\n", m.name.c_str(),
                     fmtNum(m.sum).c_str());
        std::fprintf(f, "%s_count %llu\n", m.name.c_str(),
                     static_cast<unsigned long long>(m.count));
    }
}

void
MetricsRegistry::writeCsv(std::FILE* f) const
{
    util::MutexLock lock(mu_);
    writeCsvLocked(f);
}

void
MetricsRegistry::writeCsvLocked(std::FILE* f) const
{
    // Long-form time series: histograms have no series and are omitted
    // (use the Prometheus or JSON export for distribution data).
    std::fprintf(f, "t_s,name,value\n");
    for (size_t s = 0; s < sample_times_.size(); ++s)
        for (const Metric& m : metrics_)
            if (m.kind != MetricKind::Histogram)
                std::fprintf(f, "%.6f,%s,%s\n", sample_times_[s],
                             m.name.c_str(), fmtNum(m.series[s]).c_str());
}

void
MetricsRegistry::writeJson(std::FILE* f) const
{
    util::MutexLock lock(mu_);
    writeJsonLocked(f);
}

void
MetricsRegistry::writeJsonLocked(std::FILE* f) const
{
    const std::vector<double>& bounds = bucketBounds();
    std::fprintf(f, "{\n  \"sample_times_s\": [");
    for (size_t i = 0; i < sample_times_.size(); ++i)
        std::fprintf(f, "%s%.6f", i ? ", " : "", sample_times_[i]);
    std::fprintf(f, "],\n  \"metrics\": [\n");
    for (size_t i = 0; i < metrics_.size(); ++i) {
        const Metric& m = metrics_[i];
        std::fprintf(f, "    {\"name\": \"%s\", \"kind\": \"%s\"",
                     m.name.c_str(), metricKindName(m.kind));
        if (m.kind != MetricKind::Histogram) {
            std::fprintf(f, ", \"value\": %s, \"series\": [",
                         fmtNum(m.value).c_str());
            for (size_t s = 0; s < m.series.size(); ++s)
                std::fprintf(f, "%s%s", s ? ", " : "",
                             fmtNum(m.series[s]).c_str());
            std::fprintf(f, "]}");
        } else {
            std::fprintf(
                f, ", \"count\": %llu, \"sum\": %s, \"min\": %s, \"max\": %s",
                static_cast<unsigned long long>(m.count),
                fmtNum(m.sum).c_str(), fmtNum(m.count ? m.min : 0.0).c_str(),
                fmtNum(m.count ? m.max : 0.0).c_str());
            std::fprintf(f, ", \"bounds\": [");
            for (size_t b = 0; b < bounds.size(); ++b)
                std::fprintf(f, "%s%g", b ? ", " : "", bounds[b]);
            std::fprintf(f, "], \"buckets\": [");
            for (size_t b = 0; b < m.buckets.size(); ++b)
                std::fprintf(f, "%s%llu", b ? ", " : "",
                             static_cast<unsigned long long>(m.buckets[b]));
            std::fprintf(f, "]}");
        }
        std::fprintf(f, "%s\n", i + 1 < metrics_.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
}

bool
MetricsRegistry::writeFile(const std::string& path) const
{
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (!f) {
        warn("metrics: cannot open '%s' for writing", path.c_str());
        return false;
    }
    size_t dot = path.rfind('.');
    std::string ext = dot == std::string::npos ? "" : path.substr(dot);
    util::MutexLock lock(mu_);
    if (ext == ".csv")
        writeCsvLocked(f);
    else if (ext == ".json")
        writeJsonLocked(f);
    else
        writePrometheusLocked(f);
    std::fclose(f);
    return true;
}

}  // namespace hercules::obs
