/**
 * @file
 * Deterministic metrics registry: counters, gauges, and fixed
 * log-bucket histograms keyed by stable dotted names
 * ("shard.3.queue_depth", "svc.0.queue_wait_ms", ...).
 *
 * Counters and gauges are sampled at interval boundaries into aligned
 * time series (one value per sample() call); histograms accumulate over
 * the whole run. Everything is stored and exported in registration
 * order — no unordered containers anywhere — so two identical runs emit
 * byte-identical files.
 *
 * Exporters: Prometheus-style text ("# TYPE name kind" + samples, with
 * histograms expanded into _bucket{le=...}/_sum/_count), a long-form
 * CSV of the time series, and a JSON dump. writeFile() picks the format
 * from the extension (.csv / .json / anything else = Prometheus text).
 */
#pragma once

#include <cstdint>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

namespace hercules::obs {

enum class MetricKind { Counter, Gauge, Histogram };

/** @return "counter" / "gauge" / "histogram". */
const char* metricKindName(MetricKind kind);

class MetricsRegistry
{
  public:
    /**
     * Register a metric (idempotent: an existing name returns its id;
     * re-declaring under a different kind panics). Returns a dense id
     * for the O(1) update calls below.
     */
    int declareMetric(MetricKind kind, const std::string& name);

    /** Convenience wrappers. */
    int counter(const std::string& name);
    int gauge(const std::string& name);
    int histogram(const std::string& name);

    /** Counter: add `delta` (>= 0). */
    void add(int id, double delta);

    /** Gauge: overwrite the current value. */
    void set(int id, double value);

    /** Histogram: record one observation. */
    void observe(int id, double value);

    /** Current value of a counter or gauge. */
    double value(int id) const;

    /**
     * Snapshot every counter and gauge into its time series, stamped
     * `t_s` (simulated seconds). Call once per interval boundary.
     */
    void sample(double t_s);

    size_t numMetrics() const { return metrics_.size(); }
    size_t numSamples() const { return sample_times_.size(); }
    const std::vector<double>& sampleTimes() const { return sample_times_; }

    const std::string& name(int id) const;
    MetricKind kind(int id) const;
    /** Sampled series of a counter/gauge (aligned with sampleTimes()). */
    const std::vector<double>& series(int id) const;
    /** Histogram per-bucket counts (aligned with bucketBounds()). */
    const std::vector<uint64_t>& bucketCounts(int id) const;
    uint64_t histogramCount(int id) const;
    double histogramSum(int id) const;

    /**
     * The shared upper bucket bounds: 0.01 doubling up to ~1.3e5, with
     * an implicit +Inf bucket at the end of every histogram.
     */
    static const std::vector<double>& bucketBounds();

    void writePrometheus(std::FILE* f) const;
    void writeCsv(std::FILE* f) const;
    void writeJson(std::FILE* f) const;

    /**
     * Write to `path`, format chosen by extension (.csv, .json, else
     * Prometheus text). @return false when the file cannot be opened.
     */
    bool writeFile(const std::string& path) const;

  private:
    struct Metric
    {
        std::string name;
        MetricKind kind = MetricKind::Counter;
        double value = 0.0;             ///< counter/gauge current value
        std::vector<double> series;     ///< one entry per sample()
        std::vector<uint64_t> buckets;  ///< histogram only
        uint64_t count = 0;             ///< histogram observations
        double sum = 0.0;               ///< histogram sum
        double min = 0.0;               ///< histogram min (count > 0)
        double max = 0.0;               ///< histogram max (count > 0)
    };

    const Metric& at(int id) const;
    Metric& at(int id);

    std::vector<Metric> metrics_;       ///< registration order
    std::map<std::string, int> index_;  ///< name -> id (ordered map)
    std::vector<double> sample_times_;
};

}  // namespace hercules::obs
