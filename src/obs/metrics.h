/**
 * @file
 * Deterministic metrics registry: counters, gauges, and fixed
 * log-bucket histograms keyed by stable dotted names
 * ("shard.3.queue_depth", "svc.0.queue_wait_ms", ...).
 *
 * Counters and gauges are sampled at interval boundaries into aligned
 * time series (one value per sample() call); histograms accumulate over
 * the whole run. Everything is stored and exported in registration
 * order — no unordered containers anywhere — so two identical runs emit
 * byte-identical files.
 *
 * Exporters: Prometheus-style text ("# TYPE name kind" + samples, with
 * histograms expanded into _bucket{le=...}/_sum/_count), a long-form
 * CSV of the time series, and a JSON dump. writeFile() picks the format
 * from the extension (.csv / .json / anything else = Prometheus text).
 *
 * Thread-safety: every method is internally synchronized on one
 * registry mutex (annotated, so Clang's -Werror=thread-safety checks
 * the discipline) — per-shard DES threads can update disjoint metrics
 * without external locking. The reference-returning read accessors
 * (series(), bucketCounts(), sampleTimes(), name()) hand out views
 * into guarded storage: they are for the post-run, single-threaded
 * export/analysis phase, not for use while writers are live.
 */
#pragma once

#include <cstdint>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "util/thread_annotations.h"

namespace hercules::obs {

enum class MetricKind { Counter, Gauge, Histogram };

/** @return "counter" / "gauge" / "histogram". */
const char* metricKindName(MetricKind kind);

class MetricsRegistry
{
  public:
    /**
     * Register a metric (idempotent: an existing name returns its id;
     * re-declaring under a different kind panics). Returns a dense id
     * for the O(1) update calls below.
     */
    int declareMetric(MetricKind kind, const std::string& name)
        EXCLUDES(mu_);

    /** Convenience wrappers. */
    int counter(const std::string& name) EXCLUDES(mu_);
    int gauge(const std::string& name) EXCLUDES(mu_);
    int histogram(const std::string& name) EXCLUDES(mu_);

    /** Counter: add `delta` (>= 0). */
    void add(int id, double delta) EXCLUDES(mu_);

    /** Gauge: overwrite the current value. */
    void set(int id, double value) EXCLUDES(mu_);

    /** Histogram: record one observation. */
    void observe(int id, double value) EXCLUDES(mu_);

    /** Current value of a counter or gauge. */
    double value(int id) const EXCLUDES(mu_);

    /**
     * Snapshot every counter and gauge into its time series, stamped
     * `t_s` (simulated seconds). Call once per interval boundary.
     */
    void sample(double t_s) EXCLUDES(mu_);

    size_t
    numMetrics() const EXCLUDES(mu_)
    {
        util::MutexLock lock(mu_);
        return metrics_.size();
    }

    size_t
    numSamples() const EXCLUDES(mu_)
    {
        util::MutexLock lock(mu_);
        return sample_times_.size();
    }

    /** Sample timestamps (post-run read phase; see file comment). */
    const std::vector<double>&
    sampleTimes() const EXCLUDES(mu_)
    {
        util::MutexLock lock(mu_);
        return sample_times_;
    }

    const std::string& name(int id) const EXCLUDES(mu_);
    MetricKind kind(int id) const EXCLUDES(mu_);
    /** Sampled series of a counter/gauge (aligned with sampleTimes()). */
    const std::vector<double>& series(int id) const EXCLUDES(mu_);
    /** Histogram per-bucket counts (aligned with bucketBounds()). */
    const std::vector<uint64_t>& bucketCounts(int id) const
        EXCLUDES(mu_);
    uint64_t histogramCount(int id) const EXCLUDES(mu_);
    double histogramSum(int id) const EXCLUDES(mu_);

    /**
     * The shared upper bucket bounds: 0.01 doubling up to ~1.3e5, with
     * an implicit +Inf bucket at the end of every histogram.
     */
    static const std::vector<double>& bucketBounds();

    void writePrometheus(std::FILE* f) const EXCLUDES(mu_);
    void writeCsv(std::FILE* f) const EXCLUDES(mu_);
    void writeJson(std::FILE* f) const EXCLUDES(mu_);

    /**
     * Write to `path`, format chosen by extension (.csv, .json, else
     * Prometheus text). @return false when the file cannot be opened.
     */
    bool writeFile(const std::string& path) const EXCLUDES(mu_);

  private:
    struct Metric
    {
        std::string name;
        MetricKind kind = MetricKind::Counter;
        double value = 0.0;             ///< counter/gauge current value
        std::vector<double> series;     ///< one entry per sample()
        std::vector<uint64_t> buckets;  ///< histogram only
        uint64_t count = 0;             ///< histogram observations
        double sum = 0.0;               ///< histogram sum
        double min = 0.0;               ///< histogram min (count > 0)
        double max = 0.0;               ///< histogram max (count > 0)
    };

    const Metric& at(int id) const REQUIRES(mu_);
    Metric& at(int id) REQUIRES(mu_);

    /** Unlocked bodies of the exporters (writeFile holds mu_ once). */
    void writePrometheusLocked(std::FILE* f) const REQUIRES(mu_);
    void writeCsvLocked(std::FILE* f) const REQUIRES(mu_);
    void writeJsonLocked(std::FILE* f) const REQUIRES(mu_);

    mutable util::Mutex mu_;
    std::vector<Metric> metrics_ GUARDED_BY(mu_);  ///< registration order
    std::map<std::string, int> index_ GUARDED_BY(mu_);  ///< name -> id
    std::vector<double> sample_times_ GUARDED_BY(mu_);
};

}  // namespace hercules::obs
