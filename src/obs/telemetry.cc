#include "obs/telemetry.h"

#include <cstdio>

#include "util/logging.h"
#include "util/thread_annotations.h"

namespace hercules::obs {

namespace {

std::string
shardName(int shard, const char* leaf)
{
    return "shard." + std::to_string(shard) + "." + leaf;
}

std::string
svcName(int svc, const char* leaf)
{
    return "svc." + std::to_string(svc) + "." + leaf;
}

}  // namespace

Telemetry::Telemetry(const ObsSpec& spec) : spec_(spec)
{
    c_arrivals_ = metrics_.counter("cluster.arrivals");
    c_completions_ = metrics_.counter("cluster.completions");
    c_dropped_ = metrics_.counter("cluster.dropped");
    c_rejected_ = metrics_.counter("cluster.rejected");
    c_failed_inflight_ = metrics_.counter("cluster.failed_inflight");
    c_retries_ = metrics_.counter("cluster.admission_retries");
    g_active_shards_ = metrics_.gauge("cluster.active_shards");
    g_consumed_w_ = metrics_.gauge("cluster.consumed_power_w");
    g_provisioned_w_ = metrics_.gauge("cluster.provisioned_power_w");
}

Telemetry::ShardIds&
Telemetry::shardIds(int shard)
{
    if (shard < 0)
        panic("Telemetry: negative shard id %d", shard);
    if (static_cast<size_t>(shard) >= shards_.size())
        shards_.resize(shard + 1);
    ShardIds& s = shards_[shard];
    if (s.injected < 0) {
        s.injected = metrics_.counter(shardName(shard, "injected"));
        s.queue_depth = metrics_.gauge(shardName(shard, "queue_depth"));
        s.health = metrics_.gauge(shardName(shard, "health"));
    }
    return s;
}

Telemetry::ServiceIds&
Telemetry::serviceIds(int svc)
{
    if (svc < 0)
        panic("Telemetry: negative service id %d", svc);
    if (static_cast<size_t>(svc) >= services_.size())
        services_.resize(svc + 1);
    ServiceIds& s = services_[svc];
    if (s.arrivals < 0) {
        s.arrivals = metrics_.counter(svcName(svc, "arrivals"));
        s.completions = metrics_.counter(svcName(svc, "completions"));
        s.dropped = metrics_.counter(svcName(svc, "dropped"));
        s.rejected = metrics_.counter(svcName(svc, "rejected"));
        s.p50 = metrics_.gauge(svcName(svc, "p50_ms"));
        s.p99 = metrics_.gauge(svcName(svc, "p99_ms"));
        s.viol = metrics_.gauge(svcName(svc, "sla_violation_rate"));
        s.h_wait = metrics_.histogram(svcName(svc, "queue_wait_ms"));
        s.h_service = metrics_.histogram(svcName(svc, "service_ms"));
        s.h_latency = metrics_.histogram(svcName(svc, "latency_ms"));
    }
    return s;
}

void
Telemetry::declareService(int svc)
{
    util::MutexLock lock(mu_);
    serviceIds(svc);
}

void
Telemetry::declareShard(int shard, int svc)
{
    util::MutexLock lock(mu_);
    shardIds(shard).svc = svc;
    serviceIds(svc);
}

size_t
Telemetry::newRecord(int svc, double t_s, TraceOutcome outcome)
{
    uint64_t id = arrival_seq_++;
    if (!spec_.tracing() || !traceSampled(id, spec_.sample_rate))
        return SIZE_MAX;
    TraceRecord r;
    r.id = id;
    r.service = svc;
    r.arrival_s = t_s;
    r.outcome = outcome;
    records_.push_back(r);
    return records_.size() - 1;
}

void
Telemetry::onDropped(int svc, double t_s)
{
    util::MutexLock lock(mu_);
    metrics_.add(c_arrivals_, 1);
    metrics_.add(c_dropped_, 1);
    ServiceIds& s = serviceIds(svc);
    metrics_.add(s.arrivals, 1);
    metrics_.add(s.dropped, 1);
    size_t ri = newRecord(svc, t_s, TraceOutcome::Dropped);
    if (ri != SIZE_MAX)
        records_[ri].finish_s = t_s;
}

void
Telemetry::onRejected(int svc, double t_s)
{
    util::MutexLock lock(mu_);
    metrics_.add(c_arrivals_, 1);
    metrics_.add(c_rejected_, 1);
    ServiceIds& s = serviceIds(svc);
    metrics_.add(s.arrivals, 1);
    metrics_.add(s.rejected, 1);
    size_t ri = newRecord(svc, t_s, TraceOutcome::Rejected);
    if (ri != SIZE_MAX)
        records_[ri].finish_s = t_s;
}

void
Telemetry::onAdmitted(int svc, int shard, int retry_hops, int inject_idx,
                      double t_s)
{
    util::MutexLock lock(mu_);
    metrics_.add(c_arrivals_, 1);
    if (retry_hops > 0)
        metrics_.add(c_retries_, retry_hops);
    ServiceIds& s = serviceIds(svc);
    metrics_.add(s.arrivals, 1);
    ShardIds& sh = shardIds(shard);
    metrics_.add(sh.injected, 1);
    size_t ri = newRecord(svc, t_s, TraceOutcome::InFlight);
    if (inject_idx < 0)
        panic("Telemetry: negative inject index %d", inject_idx);
    if (static_cast<size_t>(inject_idx) >= sh.open.size())
        sh.open.resize(inject_idx + 1, SIZE_MAX);
    sh.open[inject_idx] = ri;
    if (ri != SIZE_MAX) {
        records_[ri].shard = shard;
        records_[ri].retry_hops = retry_hops;
    }
}

void
Telemetry::drainShardCompletions(
    int shard, const std::vector<sim::ServerInstance::Completion>& log,
    double up_to_s)
{
    util::MutexLock lock(mu_);
    drainShardCompletionsLocked(shard, log, up_to_s);
}

void
Telemetry::drainShardCompletionsLocked(
    int shard, const std::vector<sim::ServerInstance::Completion>& log,
    double up_to_s)
{
    ShardIds& sh = shardIds(shard);
    while (sh.cursor < log.size() && log[sh.cursor].finish_s <= up_to_s) {
        const sim::ServerInstance::Completion& c = log[sh.cursor++];
        size_t qi = static_cast<size_t>(c.query);
        size_t ri = qi < sh.open.size() ? sh.open[qi] : SIZE_MAX;
        if (ri == SIZE_MAX)
            continue;
        TraceRecord& r = records_[ri];
        r.outcome = TraceOutcome::Completed;
        r.queue_wait_ms = c.queue_wait_s * 1e3;
        r.service_start_s = c.arrival_s + c.queue_wait_s;
        r.finish_s = c.finish_s;
    }
}

void
Telemetry::onCrash(int shard,
                   const std::vector<sim::ServerInstance::Completion>& log,
                   double t_s, size_t killed)
{
    addFailedInflight(killed);
    util::MutexLock lock(mu_);
    // Completions the harvest loop had not consumed yet still finished
    // *before* the crash — close them normally first, then everything
    // left open on this shard died with it.
    drainShardCompletionsLocked(shard, log, t_s);
    ShardIds& sh = shardIds(shard);
    for (size_t ri : sh.open) {
        if (ri == SIZE_MAX)
            continue;
        TraceRecord& r = records_[ri];
        if (r.outcome != TraceOutcome::InFlight)
            continue;
        r.outcome = TraceOutcome::Killed;
        r.finish_s = t_s;
    }
}

void
Telemetry::observeCompletion(int svc, double queue_wait_ms, double service_ms,
                             double latency_ms)
{
    util::MutexLock lock(mu_);
    metrics_.add(c_completions_, 1);
    ServiceIds& s = serviceIds(svc);
    metrics_.add(s.completions, 1);
    metrics_.observe(s.h_wait, queue_wait_ms);
    metrics_.observe(s.h_service, service_ms);
    metrics_.observe(s.h_latency, latency_ms);
}

void
Telemetry::setShardWindow(int shard, size_t queue_depth, int health)
{
    util::MutexLock lock(mu_);
    ShardIds& sh = shardIds(shard);
    metrics_.set(sh.queue_depth, static_cast<double>(queue_depth));
    metrics_.set(sh.health, health);
}

void
Telemetry::setServiceWindow(int svc, double p50_ms, double p99_ms,
                            double sla_violation_rate)
{
    util::MutexLock lock(mu_);
    ServiceIds& s = serviceIds(svc);
    metrics_.set(s.p50, p50_ms);
    metrics_.set(s.p99, p99_ms);
    metrics_.set(s.viol, sla_violation_rate);
}

void
Telemetry::setClusterWindow(int active_shards, double consumed_power_w,
                            double provisioned_power_w)
{
    metrics_.set(g_active_shards_, active_shards);
    metrics_.set(g_consumed_w_, consumed_power_w);
    metrics_.set(g_provisioned_w_, provisioned_power_w);
}

void
Telemetry::commitSample(double t_s)
{
    metrics_.sample(t_s);
}

void
Telemetry::addFailedInflight(size_t killed)
{
    if (killed)
        metrics_.add(c_failed_inflight_, static_cast<double>(killed));
}

bool
Telemetry::writeTraceFile() const
{
    if (spec_.trace_file.empty())
        return true;
    std::FILE* f = std::fopen(spec_.trace_file.c_str(), "w");
    if (!f) {
        warn("telemetry: cannot open '%s' for writing",
             spec_.trace_file.c_str());
        return false;
    }
    {
        util::MutexLock lock(mu_);
        writeTraceJsonl(f, records_);
    }
    std::fclose(f);
    return true;
}

bool
Telemetry::writeMetricsFile() const
{
    if (spec_.metrics_file.empty())
        return true;
    return metrics_.writeFile(spec_.metrics_file);
}

}  // namespace hercules::obs
