/**
 * @file
 * Per-query trace records: one span per sampled query covering arrival,
 * admission verdict, route target (including retry hops), queue wait,
 * service start, and the terminal outcome (completion / drop / reject /
 * crash-kill), exported as JSONL.
 *
 * Sampling is a deterministic hash of the query's cluster-wide arrival
 * sequence number — no RNG state is consumed, so tracing can never
 * perturb a simulation, and the same queries are sampled on every run.
 */
#pragma once

#include <cstdint>
#include <cstdio>
#include <vector>

namespace hercules::obs {

enum class TraceOutcome {
    InFlight,   ///< never closed (should not appear in a finished run)
    Completed,  ///< served to completion
    Dropped,    ///< shed at routing time (capacity / power)
    Rejected,   ///< refused by admission control
    Killed,     ///< in flight on a shard when it crashed
};

/** @return "in_flight" / "completed" / "dropped" / "rejected" / "killed". */
const char* traceOutcomeName(TraceOutcome outcome);

/** One sampled query's span through the serving stack. */
struct TraceRecord
{
    uint64_t id = 0;      ///< cluster-wide arrival sequence number
    int service = 0;      ///< service class index
    int shard = -1;       ///< shard served on; -1 = never admitted
    int retry_hops = 0;   ///< cross-shard admission retries before landing
    double arrival_s = 0.0;
    /** Queue wait (arrival -> service start); < 0 = never started. */
    double queue_wait_ms = -1.0;
    /** Absolute service start time; < 0 = never started. */
    double service_start_s = -1.0;
    /** Completion / drop / reject / kill time; < 0 = still open. */
    double finish_s = -1.0;
    TraceOutcome outcome = TraceOutcome::InFlight;

    /** End-to-end latency (finish - arrival) in ms; 0 when still open. */
    double latencyMs() const
    {
        return finish_s < 0.0 ? 0.0 : (finish_s - arrival_s) * 1e3;
    }
};

/**
 * Deterministic sampling verdict for arrival-sequence `id` at
 * `sample_rate` in [0, 1]: a SplitMix64 finalizer hash of the id
 * against the rate. Rate 1 samples everything, 0 nothing.
 */
bool traceSampled(uint64_t id, double sample_rate);

/**
 * Write records as JSONL, one object per line, fixed key order
 * (null for fields a query never reached). Parse with one
 * json.loads() per line.
 */
void writeTraceJsonl(std::FILE* f, const std::vector<TraceRecord>& records);

}  // namespace hercules::obs
