/**
 * @file
 * Telemetry facade: the single object the serving stack talks to. Owns
 * a MetricsRegistry and the per-query TraceRecord log, and exposes the
 * hooks ClusterSim calls at routing, harvest, and crash time.
 *
 * Contract: every hook only *observes*. No RNG draws, no event
 * scheduling, no mutation of simulated state — so a run with telemetry
 * attached produces bit-identical simulated statistics to one without.
 * ClusterSim guards each call site with a null check; a null Telemetry
 * pointer is the (default) off switch.
 *
 * Thread-safety: the trace log, shard/service id tables and arrival
 * sequence are guarded by one facade mutex (annotated for Clang's
 * -Werror=thread-safety); the owned MetricsRegistry synchronizes
 * itself. Lock order is Telemetry::mu_ -> MetricsRegistry::mu_ and
 * the registry never calls back, so the pair cannot deadlock. The
 * reference-returning traceRecords()/metrics() views are for the
 * post-run, single-threaded export phase.
 */
#pragma once

#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"
// obs sits below sim in layers.json; this one up-edge exists because
// drainShardCompletions() consumes sim's Completion log type directly
// instead of copying it into an obs-owned mirror struct per harvest.
// layer-lint: allow(sim)
#include "sim/server_instance.h"
#include "util/thread_annotations.h"

namespace hercules::obs {

/**
 * The spec-level `observability` block (see src/scenario/README.md):
 * which files to emit and what fraction of queries to trace.
 */
struct ObsSpec
{
    std::string trace_file;    ///< JSONL per-query spans; "" = off
    std::string metrics_file;  ///< .txt/.prom | .csv | .json; "" = off
    double sample_rate = 1.0;  ///< fraction of queries traced, in [0, 1]

    bool enabled() const
    {
        return !trace_file.empty() || !metrics_file.empty();
    }
    bool tracing() const { return !trace_file.empty(); }
};

class Telemetry
{
  public:
    explicit Telemetry(const ObsSpec& spec);

    const ObsSpec& spec() const { return spec_; }
    MetricsRegistry& metrics() { return metrics_; }
    const MetricsRegistry& metrics() const { return metrics_; }
    /** Trace log view (post-run read phase; see file comment). */
    const std::vector<TraceRecord>&
    traceRecords() const EXCLUDES(mu_)
    {
        util::MutexLock lock(mu_);
        return records_;
    }

    /** Topology declarations (called from ClusterSim setup). */
    void declareService(int svc) EXCLUDES(mu_);
    void declareShard(int shard, int svc) EXCLUDES(mu_);

    /** Routing-time verdicts. One of these fires per arrival. */
    void onDropped(int svc, double t_s) EXCLUDES(mu_);
    void onRejected(int svc, double t_s) EXCLUDES(mu_);
    /**
     * Query admitted onto `shard` after `retry_hops` cross-shard
     * retries; `inject_idx` is ServerInstance::inject()'s per-shard
     * injection index, the key completions are matched back with.
     */
    void onAdmitted(int svc, int shard, int retry_hops, int inject_idx,
                    double t_s) EXCLUDES(mu_);

    /**
     * Close trace spans for `shard` completions with finish <= up_to_s.
     * Uses its own cursor into the shard's completion log, independent
     * of the harvest cursor, so crash-time draining and harvest-time
     * draining compose.
     */
    void drainShardCompletions(
        int shard, const std::vector<sim::ServerInstance::Completion>& log,
        double up_to_s) EXCLUDES(mu_);

    /**
     * Shard crashed at `t_s` with `killed` queries in flight: close
     * spans that completed before the crash, then mark every span still
     * open on the shard as Killed.
     */
    void onCrash(int shard,
                 const std::vector<sim::ServerInstance::Completion>& log,
                 double t_s, size_t killed) EXCLUDES(mu_);

    /** One harvested completion's latency decomposition (histograms). */
    void observeCompletion(int svc, double queue_wait_ms, double service_ms,
                           double latency_ms) EXCLUDES(mu_);

    /** Interval-boundary gauge updates, then commitSample() stamps them. */
    void setShardWindow(int shard, size_t queue_depth, int health)
        EXCLUDES(mu_);
    void setServiceWindow(int svc, double p50_ms, double p99_ms,
                          double sla_violation_rate) EXCLUDES(mu_);
    void setClusterWindow(int active_shards, double consumed_power_w,
                          double provisioned_power_w);
    void commitSample(double t_s);

    /** Record crash-killed in-flight count (cluster.failed_inflight). */
    void addFailedInflight(size_t killed);

    /** Emit the configured files; no-ops when the path is empty. */
    bool writeTraceFile() const EXCLUDES(mu_);
    bool writeMetricsFile() const;

  private:
    struct ShardIds
    {
        int svc = 0;
        int injected = -1;     ///< counter
        int queue_depth = -1;  ///< gauge
        int health = -1;       ///< gauge
        /** injection index -> trace record index (SIZE_MAX = unsampled). */
        std::vector<size_t> open;
        /** completion-log entries already drained into trace records. */
        size_t cursor = 0;
    };
    struct ServiceIds
    {
        int arrivals = -1;
        int completions = -1;
        int dropped = -1;
        int rejected = -1;
        int p50 = -1;
        int p99 = -1;
        int viol = -1;
        int h_wait = -1;
        int h_service = -1;
        int h_latency = -1;
    };

    ShardIds& shardIds(int shard) REQUIRES(mu_);
    ServiceIds& serviceIds(int svc) REQUIRES(mu_);
    /** Next arrival sequence number + its sampling verdict. */
    size_t newRecord(int svc, double t_s, TraceOutcome outcome)
        REQUIRES(mu_);
    /** Body of drainShardCompletions (onCrash calls it under mu_). */
    void drainShardCompletionsLocked(
        int shard, const std::vector<sim::ServerInstance::Completion>& log,
        double up_to_s) REQUIRES(mu_);

    ObsSpec spec_;  ///< immutable after construction
    MetricsRegistry metrics_;  ///< internally synchronized (own mutex)
    mutable util::Mutex mu_;
    std::vector<TraceRecord> records_ GUARDED_BY(mu_);
    std::vector<ShardIds> shards_ GUARDED_BY(mu_);
    std::vector<ServiceIds> services_ GUARDED_BY(mu_);
    uint64_t arrival_seq_ GUARDED_BY(mu_) = 0;

    // Cluster-wide metric ids: set once in the constructor, immutable
    // after, so reads need no lock.
    int c_arrivals_;
    int c_completions_;
    int c_dropped_;
    int c_rejected_;
    int c_failed_inflight_;
    int c_retries_;
    int g_active_shards_;
    int g_consumed_w_;
    int g_provisioned_w_;
};

}  // namespace hercules::obs
