/**
 * @file
 * DES self-profiling primitives: the one sanctioned wall-clock site in
 * the tree, plus the per-run profile the simulator fills in.
 *
 * Wall timings are *provenance*, never result-affecting: they describe
 * how fast the simulator ran, not what it computed. Every simulated
 * statistic must be bit-identical whether or not anyone reads a clock.
 * All wall-clock reads funnel through wallNowMs() so the determinism
 * lint has exactly one annotated site to audit.
 */
#pragma once

// determinism-lint: allow-file(wall-clock)

#include <chrono>
#include <cstddef>
#include <cstdint>

namespace hercules::obs {

/**
 * Monotonic wall time in milliseconds (arbitrary epoch). Provenance
 * only — never feed this back into simulated state.
 */
inline double
wallNowMs()
{
    using Clock = std::chrono::steady_clock;
    return std::chrono::duration<double, std::milli>(
               Clock::now().time_since_epoch())
        .count();
}

/** Scoped stopwatch accumulating into a caller-owned total. */
class WallTimer
{
  public:
    WallTimer() : start_ms_(wallNowMs()) {}

    /** Milliseconds since construction (or the last restart()). */
    double elapsedMs() const { return wallNowMs() - start_ms_; }

    /** Reset the reference point to now. */
    void restart() { start_ms_ = wallNowMs(); }

  private:
    double start_ms_;
};

/**
 * How hard the discrete-event core worked during one ClusterSim::run:
 * the baseline the parallel-DES roadmap item is gated on.
 *
 * events_executed and peak_event_queue_depth are deterministic
 * (functions of the simulated schedule); the *_wall_ms fields and
 * events_per_sec are wall-clock provenance and vary run to run.
 */
struct DesProfile
{
    uint64_t events_executed = 0;       ///< callbacks popped off EventQueues
    size_t peak_event_queue_depth = 0;  ///< max pending events, any shard
    double route_wall_ms = 0.0;    ///< arrival feed + routing + admission
    double advance_wall_ms = 0.0;  ///< interval-boundary advanceTo/drain
    double harvest_wall_ms = 0.0;  ///< completion harvest + stats
    double run_wall_ms = 0.0;      ///< whole run() call
    double events_per_sec = 0.0;   ///< events_executed / run wall seconds
};

}  // namespace hercules::obs
