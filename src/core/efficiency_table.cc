#include "core/efficiency_table.h"

#include <algorithm>

#include "util/csv.h"
#include "util/logging.h"

namespace hercules::core {

bool
operator==(const EfficiencyEntry& a, const EfficiencyEntry& b)
{
    return a.server == b.server && a.model == b.model &&
           a.feasible == b.feasible && a.qps == b.qps &&
           a.power_w == b.power_w && a.avg_power_w == b.avg_power_w &&
           a.qps_per_watt == b.qps_per_watt &&
           a.config.key() == b.config.key();
}

bool
EfficiencyTable::operator==(const EfficiencyTable& o) const
{
    if (entries_.size() != o.entries_.size())
        return false;
    for (size_t i = 0; i < entries_.size(); ++i)
        if (entries_[i] != o.entries_[i])
            return false;
    return true;
}

void
EfficiencyTable::set(const EfficiencyEntry& e)
{
    for (auto& existing : entries_) {
        if (existing.server == e.server && existing.model == e.model) {
            existing = e;
            return;
        }
    }
    entries_.push_back(e);
}

const EfficiencyEntry*
EfficiencyTable::get(hw::ServerType server, model::ModelId m) const
{
    for (const auto& e : entries_)
        if (e.server == server && e.model == m)
            return &e;
    return nullptr;
}

std::vector<hw::ServerType>
EfficiencyTable::rank(model::ModelId m, bool by_energy) const
{
    std::vector<const EfficiencyEntry*> feasible;
    for (const auto& e : entries_)
        if (e.model == m && e.feasible && e.qps > 0.0)
            feasible.push_back(&e);
    std::stable_sort(feasible.begin(), feasible.end(),
                     [&](const EfficiencyEntry* a,
                         const EfficiencyEntry* b) {
                         double ka = by_energy ? a->qps_per_watt : a->qps;
                         double kb = by_energy ? b->qps_per_watt : b->qps;
                         return ka > kb;
                     });
    std::vector<hw::ServerType> out;
    out.reserve(feasible.size());
    for (const auto* e : feasible)
        out.push_back(e->server);
    return out;
}

void
EfficiencyTable::writeCsv(const std::string& path) const
{
    CsvWriter w({"server", "model", "feasible", "qps", "power_w",
                 "avg_power_w", "qps_per_watt", "config"});
    for (const auto& e : entries_) {
        // The config is persisted as its canonical key() so cached
        // tuples can be re-prepared and actually simulated (the
        // trace-driven serving path builds shards from it).
        w.addRow({hw::serverTypeName(e.server), model::modelName(e.model),
                  e.feasible ? "1" : "0", std::to_string(e.qps),
                  std::to_string(e.power_w),
                  std::to_string(e.avg_power_w),
                  std::to_string(e.qps_per_watt), e.config.key()});
    }
    w.write(path);
}

std::optional<EfficiencyTable>
EfficiencyTable::tryReadCsv(const std::string& path)
{
    auto rows = readCsvFile(path);
    EfficiencyTable table;
    for (size_t i = 1; i < rows.size(); ++i) {
        const auto& r = rows[i];
        if (r.size() < 7)
            return std::nullopt;
        EfficiencyEntry e;
        bool found_server = false;
        for (hw::ServerType t : hw::allServerTypes()) {
            if (r[0] == hw::serverTypeName(t)) {
                e.server = t;
                found_server = true;
            }
        }
        bool found_model = false;
        for (model::ModelId m : model::allModels()) {
            if (r[1] == model::modelName(m)) {
                e.model = m;
                found_model = true;
            }
        }
        if (!found_server || !found_model)
            return std::nullopt;
        e.feasible = r[2] == "1";
        try {
            e.qps = std::stod(r[3]);
            e.power_w = std::stod(r[4]);
            e.avg_power_w = std::stod(r[5]);
            e.qps_per_watt = std::stod(r[6]);
        } catch (...) {
            return std::nullopt;
        }
        if (r.size() >= 8) {
            auto cfg = sched::SchedulingConfig::fromKey(r[7]);
            // A feasible row whose config cannot be parsed is a cache
            // from an older build: the tuple could not be re-prepared
            // and simulated, so the whole file is rejected.
            if (!cfg.has_value() && e.feasible)
                return std::nullopt;
            if (cfg.has_value())
                e.config = *cfg;
        }
        table.set(e);
    }
    return table;
}

EfficiencyTable
EfficiencyTable::readCsv(const std::string& path)
{
    auto table = tryReadCsv(path);
    if (!table.has_value())
        fatal("EfficiencyTable::readCsv: %s is malformed or written by "
              "an older build (delete the file and re-profile)",
              path.c_str());
    return *table;
}

}  // namespace hercules::core
