/**
 * @file
 * The evaluation engine: the single gateway between every measurement
 * consumer (task-scheduling search, baselines, offline profiler,
 * cluster provisioning, benches) and the latency-bounded throughput
 * measurement of sim/measure.h.
 *
 * The engine adds three things on top of a raw measureLatencyBoundedQps
 * call:
 *
 *  1. **Memoization** — results are cached under a canonical key of
 *     (server spec, model, scheduling config, SLA, measure options), so
 *     configurations revisited across gradient arms, partition
 *     strategies, baselines and efficiency-table cells cost nothing.
 *  2. **Parallel fan-out** — independent candidates are evaluated on a
 *     work-sharing thread pool (util/thread_pool.h). Each simulation
 *     owns its seeded RNG stream and results are reduced in request
 *     order, so a 1-thread engine and an N-thread engine produce
 *     bit-identical outcomes.
 *  3. **Measurement shortcuts** — optional warm-start bisection from a
 *     caller-provided neighbour hint and early-abort of hopelessly
 *     saturated probes (MeasureOptions::abort_tail_factor /
 *     bisect_rel_tol). Both default off so the engine reproduces the
 *     seed measurement bit-for-bit unless explicitly enabled.
 *
 * Thread-safety: evaluate()/evaluateMany()/prefetch() may be called
 * concurrently; a configuration requested by several threads at once is
 * simulated exactly once and the losers wait on the winner's future.
 */
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/measure.h"
#include "util/thread_annotations.h"
#include "util/thread_pool.h"

namespace hercules::core {

/** Engine tuning knobs. */
struct EvalOptions
{
    /** Pool width including the caller; <= 0 uses all hardware threads. */
    int threads = 0;
    /** Cache results across evaluations (and searches sharing the engine). */
    bool memoize = true;
    /** Forward caller-supplied neighbour hints into the bisection. */
    bool warm_start = false;
    /** > 0: probes abort at sla * factor in-flight sojourn (see
     *  MeasureOptions::abort_tail_factor). */
    double abort_tail_factor = 0.0;
    /** > 0: adaptive bisection stop (see MeasureOptions::bisect_rel_tol). */
    double bisect_rel_tol = 0.0;
    /**
     * Allow searches to evaluate speculative candidates (e.g. all
     * op-parallelism arms at once) when the pool has more than one
     * thread. Speculation never changes results — discarded candidates
     * are excluded from every reduction — it only trades extra
     * simulations for wall-clock time on idle cores.
     */
    bool speculate = true;
};

/** One evaluation request: a fully-specified measurement. */
struct EvalRequest
{
    const hw::ServerSpec* server = nullptr;
    const model::Model* model = nullptr;
    sched::SchedulingConfig cfg;
    double sla_ms = 0.0;
    sim::MeasureOptions measure{};
    /** Deterministic warm-start hint (ignored unless warm_start set). */
    sim::MeasureHint hint{};
};

/** Outcome of one evaluation. */
struct EvalResult
{
    /** false: the configuration failed validateConfig (never simulated). */
    bool valid = false;
    /** Operating point; nullopt when valid but SLA/power-infeasible. */
    std::optional<sim::OperatingPoint> point;
    /** true when served from the memo (no new simulations ran). */
    bool cache_hit = false;
};

class EvalEngine
{
  public:
    explicit EvalEngine(const EvalOptions& opt = EvalOptions{});

    const EvalOptions& options() const { return opt_; }

    /** The shared pool (searches fan their own task sets onto it). */
    util::ThreadPool& pool() { return pool_; }

    /** @return true when searches should run speculative candidates. */
    bool
    speculative() const
    {
        return opt_.speculate && pool_.threads() > 1;
    }

    /** Evaluate one request (memoized). */
    EvalResult evaluate(const EvalRequest& r) EXCLUDES(mu_);

    /**
     * Evaluate a batch of independent requests on the pool. Results are
     * returned in request order regardless of completion order.
     */
    std::vector<EvalResult> evaluateMany(
        const std::vector<EvalRequest>& rs);

    /** Cumulative counters (monotone; approximate under concurrency). */
    struct Stats
    {
        uint64_t hits = 0;        ///< requests served from the memo
        uint64_t misses = 0;      ///< requests that ran the measurement
        uint64_t invalid = 0;     ///< requests rejected by validateConfig
        uint64_t simulations = 0; ///< discrete-event simulator runs
        /** Wall time spent inside measurements, summed over all pool
         *  threads (self-profiling only — never fed back into results). */
        double measure_wall_ms = 0.0;
    };
    Stats stats() const;

    /** Drop every memoized result (counters are kept). */
    void clearCache() EXCLUDES(mu_);

    /**
     * Spill the memo to disk: every *computed* entry (in-flight cells
     * are skipped) is written as one line of a versioned text file,
     * keyed by the canonical cache key. Repeated bench/CI runs load
     * the file to warm-start instead of re-simulating.
     * @return entries written; 0 when the file cannot be opened.
     */
    size_t saveCache(const std::string& path) const EXCLUDES(mu_);

    /**
     * Merge a saveCache() file into the memo. Entries whose key is
     * already cached are skipped (the in-memory result wins);
     * malformed or version-mismatched files load nothing. Results
     * served from loaded entries report cache_hit like any memo hit.
     * @return entries inserted.
     */
    size_t loadCache(const std::string& path) EXCLUDES(mu_);

    /**
     * The canonical cache key: every result-affecting input — server
     * signature, model signature, full scheduling config, SLA, and the
     * measurement options (seed, query counts, bisection knobs, power
     * budget, abort/tolerance settings). Hints are deliberately
     * excluded: the first evaluation of a configuration fixes its
     * result (callers derive hints deterministically, so replays agree).
     */
    static std::string cacheKey(const EvalRequest& r,
                                const EvalOptions& opt);

  private:
    struct Cell;

    EvalResult compute(const EvalRequest& r);

    EvalOptions opt_;
    util::ThreadPool pool_;

    /** Guards the memo map only; each Cell carries its own lock. */
    mutable util::Mutex mu_;
    std::unordered_map<std::string, std::shared_ptr<Cell>> cache_
        GUARDED_BY(mu_);

    // Counters are deliberately lock-free: they are monotone
    // self-profiling aggregates, never part of a result.
    std::atomic<uint64_t> hits_{0};
    std::atomic<uint64_t> misses_{0};
    std::atomic<uint64_t> invalid_{0};
    std::atomic<uint64_t> simulations_{0};
    /** Microseconds, so the accumulator stays a lock-free integer. */
    std::atomic<uint64_t> measure_wall_us_{0};
};

}  // namespace hercules::core
