/**
 * @file
 * The workload-classification table of Fig 9(b): for every
 * (server type Th, model Gm) pair, the efficiency tuple
 * (QPS_{h,m}, Power_{h,m}) measured by offline profiling, plus the
 * optimal task-scheduling configuration that achieves it. The cluster
 * manager consumes this table during online serving.
 */
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "hw/server.h"
#include "model/model_zoo.h"
#include "sched/config.h"

namespace hercules::core {

/** One profiled (server, model) pair. */
struct EfficiencyEntry
{
    hw::ServerType server = hw::ServerType::T1;
    model::ModelId model = model::ModelId::DlrmRmc1;
    bool feasible = false;   ///< some configuration met the SLA
    double qps = 0.0;        ///< latency-bounded throughput QPS_{h,m}
    double power_w = 0.0;    ///< provisioned (peak) power Power_{h,m}
    double avg_power_w = 0.0;
    double qps_per_watt = 0.0;  ///< energy efficiency at the QPS point
    sched::SchedulingConfig config;  ///< the optimal task schedule
};

/**
 * Exact equality (bitwise on the measured doubles): used by the
 * determinism tests to assert that serial and pooled profiling passes
 * produce the same table.
 */
bool operator==(const EfficiencyEntry& a, const EfficiencyEntry& b);
inline bool
operator!=(const EfficiencyEntry& a, const EfficiencyEntry& b)
{
    return !(a == b);
}

/** The efficiency-tuple table, indexed by (server type, model). */
class EfficiencyTable
{
  public:
    /** Insert or replace an entry. */
    void set(const EfficiencyEntry& e);

    /** @return the entry, or nullptr when the pair was never profiled. */
    const EfficiencyEntry* get(hw::ServerType server,
                               model::ModelId m) const;

    /** @return all entries in insertion order. */
    const std::vector<EfficiencyEntry>& entries() const
    { return entries_; }

    /**
     * Server types ranked for a model, best first. Infeasible pairs are
     * excluded.
     *
     * @param by_energy true: rank by QPS/W (the paper's cluster
     *                  classification metric); false: rank by QPS.
     */
    std::vector<hw::ServerType> rank(model::ModelId m,
                                     bool by_energy = true) const;

    /** @return number of profiled pairs. */
    size_t size() const { return entries_.size(); }

    /** Exact equality: same entries in the same insertion order. */
    bool operator==(const EfficiencyTable& o) const;
    bool operator!=(const EfficiencyTable& o) const
    { return !(*this == o); }

    /** Persist as CSV. */
    void writeCsv(const std::string& path) const;

    /** Load a table written by writeCsv(); fatal() on malformed data. */
    static EfficiencyTable readCsv(const std::string& path);

    /**
     * Load a table, returning std::nullopt instead of dying when the
     * file is malformed or written by an older build (stale config
     * encoding). Cache consumers use this to fall back to re-profiling.
     */
    static std::optional<EfficiencyTable> tryReadCsv(
        const std::string& path);

  private:
    std::vector<EfficiencyEntry> entries_;
};

}  // namespace hercules::core
