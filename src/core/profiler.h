/**
 * @file
 * Hercules stage 1: offline profiling (Fig 9(a)).
 *
 * For every candidate server type and workload, run the HW-aware model
 * partition plus the SLA-aware gradient search, and record the
 * efficiency tuple (latency-bounded QPS, provisioned peak power) in the
 * workload-classification table. Stage 2 (online serving) re-runs the
 * same exploration under the provisioned power budget with real-time
 * query streams (onlineSetup).
 */
#pragma once

#include "core/efficiency_table.h"
#include "sched/gradient_search.h"

namespace hercules::core {

/** Options of an offline profiling pass. */
struct ProfilerOptions
{
    sched::SearchOptions search{};
    /** Server types to profile; empty = the full T1–T10 catalog. */
    std::vector<hw::ServerType> servers;
    /** Models to profile; empty = all six Table I models. */
    std::vector<model::ModelId> models;
    model::Variant variant = model::Variant::Prod;
    /** Override SLA per model; <=0 uses the model's default target. */
    double sla_ms_override = 0.0;
};

/**
 * Profile one (server, model) pair: Hercules task-scheduling search,
 * efficiency tuple extraction.
 */
EfficiencyEntry profilePair(const hw::ServerSpec& server,
                            const model::Model& m, double sla_ms,
                            const sched::SearchOptions& opt);

/** Run the full offline profiling pass. */
EfficiencyTable offlineProfile(const ProfilerOptions& opt);

/**
 * Online-serving initial setup for a placed workload: the SLA- and
 * power-aware exploration re-run under the provisioned power budget
 * (updates the tuple to real-time conditions).
 */
EfficiencyEntry onlineSetup(const hw::ServerSpec& server,
                            const model::Model& m, double sla_ms,
                            double power_budget_w,
                            const sched::SearchOptions& opt);

}  // namespace hercules::core
