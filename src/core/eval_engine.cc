#include "core/eval_engine.h"

#include <algorithm>
#include <cstdio>

#include "obs/self_profile.h"
#include "sim/prepared.h"
#include "util/logging.h"

namespace hercules::core {

namespace {

/** Append `label=value;` with enough digits to be collision-free. */
void
appendNum(std::string& s, const char* label, double v)
{
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%s=%.17g;", label, v);
    s += buf;
}

void
appendInt(std::string& s, const char* label, int64_t v)
{
    s += label;
    s += '=';
    s += std::to_string(v);
    s += ';';
}

}  // namespace

/**
 * A cache cell: computed exactly once; concurrent requesters for the
 * same key block on the cell's condition variable until the winner
 * publishes the result.
 */
struct EvalEngine::Cell
{
    util::Mutex m;
    util::CondVar cv;
    bool ready GUARDED_BY(m) = false;
    EvalResult result GUARDED_BY(m);

    EvalResult
    wait() EXCLUDES(m)
    {
        util::MutexLock lock(m);
        while (!ready)
            cv.wait(m);
        return result;
    }

    void
    publish(EvalResult r) EXCLUDES(m)
    {
        {
            util::MutexLock lock(m);
            result = std::move(r);
            ready = true;
        }
        cv.notifyAll();
    }
};

EvalEngine::EvalEngine(const EvalOptions& opt)
    : opt_(opt), pool_(opt.threads)
{
}

std::string
EvalEngine::cacheKey(const EvalRequest& r, const EvalOptions& opt)
{
    std::string s;
    s.reserve(256);

    // Server signature: type name plus the numbers the cost model
    // consumes, so hand-modified catalog specs (the server-arch
    // explorer) never alias a stock type.
    const hw::ServerSpec& sv = *r.server;
    s += "sv=";
    s += sv.name;
    s += ';';
    appendInt(s, "cores", sv.cpu.cores);
    appendNum(s, "ghz", sv.cpu.freq_ghz);
    appendNum(s, "llc", sv.cpu.llc_mb);
    appendInt(s, "mk", static_cast<int>(sv.mem.kind));
    appendInt(s, "ranks", sv.mem.totalRanks());
    appendInt(s, "memgb", sv.mem.capacity_gb);
    if (sv.gpu) {
        s += "gpu=";
        s += sv.gpu->name;
        s += ';';
        appendInt(s, "sms", sv.gpu->sms);
        appendNum(s, "hbm", sv.gpu->hbm_gbps);
        appendInt(s, "ggb", sv.gpu->mem_gb);
        appendNum(s, "pcie", sv.gpu->pcie_gbps);
    }

    // Model signature: display name already encodes id + variant; the
    // footprint numbers guard against hand-tweaked Model structs.
    const model::Model& m = *r.model;
    s += "md=";
    s += m.name;
    s += ';';
    appendInt(s, "tbl", m.num_tables);
    appendInt(s, "dim", m.emb_dim);
    appendInt(s, "bytes", m.totalBytes());
    appendNum(s, "pool", m.pooling_max);

    // The scheduling configuration, every field.
    s += r.cfg.key();
    s += ';';

    // SLA + measurement options (anything that steers the probes).
    appendNum(s, "sla", r.sla_ms);
    const sim::MeasureOptions& mo = r.measure;
    appendNum(s, "pb", mo.power_budget_w);
    appendInt(s, "bi", mo.bisect_iters);
    appendNum(s, "hf", mo.hi_factor);
    appendNum(s, "atf", mo.abort_tail_factor > 0.0
                            ? mo.abort_tail_factor
                            : opt.abort_tail_factor);
    appendNum(s, "tol", mo.bisect_rel_tol > 0.0 ? mo.bisect_rel_tol
                                                : opt.bisect_rel_tol);
    appendInt(s, "nq", mo.sim.num_queries);
    appendInt(s, "wq", mo.sim.warmup_queries);
    appendInt(s, "seed", static_cast<int64_t>(mo.sim.seed));
    appendNum(s, "pct", mo.sim.tail_percentile);
    // Workload distributions: the generator consumes both, so two
    // requests differing only in size/pooling shape must not alias.
    appendNum(s, "qmed", mo.sim.sizes.median);
    appendNum(s, "qsig", mo.sim.sizes.sigma);
    appendInt(s, "qmin", mo.sim.sizes.min_size);
    appendInt(s, "qmax", mo.sim.sizes.max_size);
    appendNum(s, "psig", mo.sim.pooling.sigma);
    return s;
}

EvalResult
EvalEngine::compute(const EvalRequest& r)
{
    EvalResult out;
    if (sim::validateConfig(*r.server, *r.model, r.cfg)) {
        invalid_.fetch_add(1, std::memory_order_relaxed);
        return out;  // invalid: never simulated
    }
    out.valid = true;

    sim::MeasureOptions mo = r.measure;
    if (mo.abort_tail_factor <= 0.0)
        mo.abort_tail_factor = opt_.abort_tail_factor;
    if (mo.bisect_rel_tol <= 0.0)
        mo.bisect_rel_tol = opt_.bisect_rel_tol;

    sim::PreparedWorkload w = sim::prepare(*r.server, *r.model, r.cfg);
    const sim::MeasureHint* hint =
        opt_.warm_start && r.hint.valid ? &r.hint : nullptr;
    obs::WallTimer measure_timer;
    out.point = sim::measureLatencyBoundedQps(w, r.sla_ms, mo, hint);
    measure_wall_us_.fetch_add(
        static_cast<uint64_t>(measure_timer.elapsedMs() * 1e3),
        std::memory_order_relaxed);

    misses_.fetch_add(1, std::memory_order_relaxed);
    // One saturation probe + the bisection probes (a conservative
    // estimate when infeasible: probes before the light-load retry).
    simulations_.fetch_add(
        out.point ? static_cast<uint64_t>(out.point->sims)
                  : static_cast<uint64_t>(mo.bisect_iters + 2),
        std::memory_order_relaxed);
    return out;
}

EvalResult
EvalEngine::evaluate(const EvalRequest& r)
{
    if (!r.server || !r.model)
        fatal("EvalEngine::evaluate: null server or model");
    if (!opt_.memoize)
        return compute(r);

    std::string key = cacheKey(r, opt_);
    std::shared_ptr<Cell> cell;
    bool owner = false;
    {
        util::MutexLock lock(mu_);
        auto it = cache_.find(key);
        if (it == cache_.end()) {
            cell = std::make_shared<Cell>();
            cache_.emplace(std::move(key), cell);
            owner = true;
        } else {
            cell = it->second;
        }
    }

    if (owner) {
        EvalResult out = compute(r);
        cell->publish(out);
        return out;
    }
    hits_.fetch_add(1, std::memory_order_relaxed);
    EvalResult out = cell->wait();
    out.cache_hit = true;
    return out;
}

std::vector<EvalResult>
EvalEngine::evaluateMany(const std::vector<EvalRequest>& rs)
{
    std::vector<EvalResult> out(rs.size());
    pool_.parallelFor(rs.size(),
                      [&](size_t i) { out[i] = evaluate(rs[i]); });
    return out;
}

EvalEngine::Stats
EvalEngine::stats() const
{
    Stats s;
    s.hits = hits_.load(std::memory_order_relaxed);
    s.misses = misses_.load(std::memory_order_relaxed);
    s.invalid = invalid_.load(std::memory_order_relaxed);
    s.simulations = simulations_.load(std::memory_order_relaxed);
    s.measure_wall_ms =
        static_cast<double>(
            measure_wall_us_.load(std::memory_order_relaxed)) *
        1e-3;
    return s;
}

void
EvalEngine::clearCache()
{
    util::MutexLock lock(mu_);
    cache_.clear();
}

// ---- cross-process memo persistence --------------------------------------
//
// One line per entry:  <key>\t<valid> <has_point> [<point numbers...>]
// The key is the canonical cacheKey() string (never contains tabs or
// newlines); numbers are %.17g so doubles round-trip bit-exactly. The
// header pins a format version — a mismatched file loads nothing
// rather than poisoning the memo with misparsed results.

namespace {

constexpr const char* kCacheMagic = "HERCULES_EVAL_CACHE v1";

void
writePoint(FILE* f, const sim::OperatingPoint& p)
{
    const sim::ServerSimResult& r = p.result;
    std::fprintf(
        f,
        " %.17g %.17g %.17g %.17g %d"
        " %.17g %.17g %.17g %.17g %.17g %.17g %.17g %.17g"
        " %.17g %.17g %.17g %.17g %.17g"
        " %.17g %.17g %.17g"
        " %.17g %.17g %.17g %.17g"
        " %zu %.17g %d",
        p.qps, p.capacity, p.bracket_lo, p.bracket_hi, p.sims,
        r.offered_qps, r.achieved_qps, r.mean_ms, r.p50_ms, r.p95_ms,
        r.p99_ms, r.tail_ms, r.max_ms,
        r.cpu_util, r.mem_bw_util, r.gpu_util, r.pcie_util, r.nmp_util,
        r.avg_power_w, r.peak_power_w, r.qps_per_watt,
        r.mean_queue_ms, r.mean_host_ms, r.mean_load_ms, r.mean_exec_ms,
        r.completed, r.duration_s, r.aborted ? 1 : 0);
}

bool
readPoint(const char* s, sim::OperatingPoint* p)
{
    sim::ServerSimResult& r = p->result;
    int aborted = 0;
    int n = std::sscanf(
        s,
        " %lg %lg %lg %lg %d"
        " %lg %lg %lg %lg %lg %lg %lg %lg"
        " %lg %lg %lg %lg %lg"
        " %lg %lg %lg"
        " %lg %lg %lg %lg"
        " %zu %lg %d",
        &p->qps, &p->capacity, &p->bracket_lo, &p->bracket_hi, &p->sims,
        &r.offered_qps, &r.achieved_qps, &r.mean_ms, &r.p50_ms,
        &r.p95_ms, &r.p99_ms, &r.tail_ms, &r.max_ms,
        &r.cpu_util, &r.mem_bw_util, &r.gpu_util, &r.pcie_util,
        &r.nmp_util,
        &r.avg_power_w, &r.peak_power_w, &r.qps_per_watt,
        &r.mean_queue_ms, &r.mean_host_ms, &r.mean_load_ms,
        &r.mean_exec_ms,
        &r.completed, &r.duration_s, &aborted);
    if (n != 28)
        return false;
    r.aborted = aborted != 0;
    return true;
}

}  // namespace

size_t
EvalEngine::saveCache(const std::string& path) const
{
    // Snapshot the ready cells under the lock, write outside it.
    std::vector<std::pair<std::string, EvalResult>> entries;
    {
        util::MutexLock lock(mu_);
        entries.reserve(cache_.size());
        // determinism-lint: allow(unordered-iteration)
        for (const auto& [key, cell] : cache_) {
            util::MutexLock cell_lock(cell->m);
            if (cell->ready)
                entries.emplace_back(key, cell->result);
        }
    }
    // The memo file is an artifact (diffed across runs, restored from
    // CI caches): bucket order must not leak into it.
    std::sort(entries.begin(), entries.end(),
              [](const auto& a, const auto& b) {
                  return a.first < b.first;
              });

    FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
        warn("EvalEngine::saveCache: cannot open %s", path.c_str());
        return 0;
    }
    std::fprintf(f, "%s\n", kCacheMagic);
    for (const auto& [key, result] : entries) {
        std::fprintf(f, "%s\t%d %d", key.c_str(),
                     result.valid ? 1 : 0,
                     result.point.has_value() ? 1 : 0);
        if (result.point.has_value())
            writePoint(f, *result.point);
        std::fputc('\n', f);
    }
    std::fclose(f);
    return entries.size();
}

size_t
EvalEngine::loadCache(const std::string& path)
{
    FILE* f = std::fopen(path.c_str(), "r");
    if (f == nullptr)
        return 0;

    std::string line;
    auto readLine = [&]() -> bool {
        line.clear();
        int c;
        while ((c = std::fgetc(f)) != EOF && c != '\n')
            line.push_back(static_cast<char>(c));
        return !(line.empty() && c == EOF);
    };

    if (!readLine() || line != kCacheMagic) {
        warn("EvalEngine::loadCache: %s is not a v1 cache file",
             path.c_str());
        std::fclose(f);
        return 0;
    }

    size_t loaded = 0;
    while (readLine()) {
        size_t tab = line.find('\t');
        if (tab == std::string::npos || tab == 0)
            continue;  // malformed line: skip, keep loading the rest
        std::string key = line.substr(0, tab);
        const char* payload = line.c_str() + tab + 1;
        int valid = 0, has_point = 0, consumed = 0;
        if (std::sscanf(payload, "%d %d%n", &valid, &has_point,
                        &consumed) != 2)
            continue;
        EvalResult result;
        result.valid = valid != 0;
        if (has_point != 0) {
            sim::OperatingPoint p;
            if (!readPoint(payload + consumed, &p))
                continue;
            result.point = p;
        }
        auto cell = std::make_shared<Cell>();
        {
            // The cell is still private to this thread; the lock is
            // for the analysis, free in practice (uncontended).
            util::MutexLock cell_lock(cell->m);
            cell->result = std::move(result);
            cell->ready = true;
        }
        util::MutexLock lock(mu_);
        if (cache_.emplace(std::move(key), std::move(cell)).second)
            ++loaded;
    }
    std::fclose(f);
    return loaded;
}

}  // namespace hercules::core
