#include "core/profiler.h"

#include <memory>

#include "util/logging.h"

namespace hercules::core {

EfficiencyEntry
profilePair(const hw::ServerSpec& server, const model::Model& m,
            double sla_ms, const sched::SearchOptions& opt)
{
    EfficiencyEntry e;
    e.server = server.type;
    e.model = m.id;

    sched::SearchResult r =
        sched::herculesTaskSearch(server, m, sla_ms, opt);
    if (r.best) {
        e.feasible = true;
        e.qps = r.best_qps;
        e.power_w = r.best_point.result.peak_power_w;
        e.avg_power_w = r.best_point.result.avg_power_w;
        e.qps_per_watt = r.best_point.result.qps_per_watt;
        e.config = *r.best;
    }
    return e;
}

EfficiencyTable
offlineProfile(const ProfilerOptions& opt)
{
    std::vector<hw::ServerType> servers = opt.servers;
    if (servers.empty())
        servers = hw::allServerTypes();
    std::vector<model::ModelId> models = opt.models;
    if (models.empty())
        models = model::allModels();

    // One engine across every (server, model) cell: pairs share the
    // thread pool, and any cell revisiting a profiled configuration
    // (identical server/model signatures) hits the memo.
    std::unique_ptr<EvalEngine> owned;
    EvalEngine* engine = opt.search.engine;
    if (!engine) {
        owned = std::make_unique<EvalEngine>(opt.search.eval);
        engine = owned.get();
    }
    sched::SearchOptions sub = opt.search;
    sub.engine = engine;

    // Models are built once up front (cells borrow const references
    // into this vector from pool threads).
    std::vector<model::Model> built;
    built.reserve(models.size());
    for (model::ModelId mid : models)
        built.push_back(model::buildModel(mid, opt.variant));

    struct Cell
    {
        size_t model_idx;
        hw::ServerType server;
    };
    std::vector<Cell> cells;
    cells.reserve(models.size() * servers.size());
    for (size_t mi = 0; mi < models.size(); ++mi)
        for (hw::ServerType st : servers)
            cells.push_back({mi, st});

    // Every cell is an independent search: fan the whole table onto the
    // pool, then insert in cell order so the table layout never depends
    // on completion order.
    std::vector<EfficiencyEntry> entries(cells.size());
    engine->pool().parallelFor(cells.size(), [&](size_t i) {
        const model::Model& m = built[cells[i].model_idx];
        const hw::ServerSpec& server = hw::serverSpec(cells[i].server);
        double sla =
            opt.sla_ms_override > 0.0 ? opt.sla_ms_override : m.sla_ms;
        logInfo("profiler", "profiling %s on %s (SLA %.0f ms)",
                m.name.c_str(), server.name.c_str(), sla);
        entries[i] = profilePair(server, m, sla, sub);
    });

    EfficiencyTable table;
    for (const EfficiencyEntry& e : entries)
        table.set(e);
    return table;
}

EfficiencyEntry
onlineSetup(const hw::ServerSpec& server, const model::Model& m,
            double sla_ms, double power_budget_w,
            const sched::SearchOptions& opt)
{
    sched::SearchOptions constrained = opt;
    constrained.power_budget_w = power_budget_w;
    return profilePair(server, m, sla_ms, constrained);
}

}  // namespace hercules::core
