#include "core/profiler.h"

#include "util/logging.h"

namespace hercules::core {

EfficiencyEntry
profilePair(const hw::ServerSpec& server, const model::Model& m,
            double sla_ms, const sched::SearchOptions& opt)
{
    EfficiencyEntry e;
    e.server = server.type;
    e.model = m.id;

    sched::SearchResult r =
        sched::herculesTaskSearch(server, m, sla_ms, opt);
    if (r.best) {
        e.feasible = true;
        e.qps = r.best_qps;
        e.power_w = r.best_point.result.peak_power_w;
        e.avg_power_w = r.best_point.result.avg_power_w;
        e.qps_per_watt = r.best_point.result.qps_per_watt;
        e.config = *r.best;
    }
    return e;
}

EfficiencyTable
offlineProfile(const ProfilerOptions& opt)
{
    std::vector<hw::ServerType> servers = opt.servers;
    if (servers.empty())
        servers = hw::allServerTypes();
    std::vector<model::ModelId> models = opt.models;
    if (models.empty())
        models = model::allModels();

    EfficiencyTable table;
    for (model::ModelId mid : models) {
        model::Model m = model::buildModel(mid, opt.variant);
        double sla =
            opt.sla_ms_override > 0.0 ? opt.sla_ms_override : m.sla_ms;
        for (hw::ServerType st : servers) {
            const hw::ServerSpec& server = hw::serverSpec(st);
            inform("profiling %s on %s (SLA %.0f ms)", m.name.c_str(),
                   server.name.c_str(), sla);
            table.set(profilePair(server, m, sla, opt.search));
        }
    }
    return table;
}

EfficiencyEntry
onlineSetup(const hw::ServerSpec& server, const model::Model& m,
            double sla_ms, double power_budget_w,
            const sched::SearchOptions& opt)
{
    sched::SearchOptions constrained = opt;
    constrained.power_budget_w = power_budget_w;
    return profilePair(server, m, sla_ms, constrained);
}

}  // namespace hercules::core
