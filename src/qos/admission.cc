#include "qos/admission.h"

#include <limits>

namespace hercules::qos {

double
AdmissionController::estimatedCompletionMs(size_t outstanding,
                                           double weight_qps)
{
    if (weight_qps <= 0.0)
        return std::numeric_limits<double>::infinity();
    return 1000.0 * static_cast<double>(outstanding + 1) / weight_qps;
}

bool
AdmissionController::admit(const ShardLoad& shard, double sla_ms) const
{
    switch (cfg_.policy) {
      case AdmissionPolicy::None:
        return true;
      case AdmissionPolicy::QueueCap:
        return shard.outstanding < cfg_.queue_cap;
      case AdmissionPolicy::Deadline:
        return estimatedCompletionMs(shard.outstanding,
                                     shard.weight_qps) <=
               sla_ms * cfg_.deadline_slack;
    }
    return true;
}

}  // namespace hercules::qos
