#include "qos/feedback.h"

#include <algorithm>

namespace hercules::qos {

double
updateFeedbackWeight(double weight, double base, double p99_ms,
                     double sla_ms, const FeedbackConfig& cfg)
{
    if (base <= 0.0)
        return weight;
    double factor;
    if (p99_ms <= 0.0 || sla_ms <= 0.0) {
        // Dark window: bounded recovery toward the tuple weight.
        factor = 1.0 + cfg.gain;
    } else {
        factor = std::clamp(sla_ms / p99_ms, 1.0 - cfg.gain,
                            1.0 + cfg.gain);
    }
    double floor = cfg.floor_frac * base;
    return std::clamp(weight * factor, floor, base);
}

}  // namespace hercules::qos
