/**
 * @file
 * Quality-of-service policy for online serving: the vocabulary the
 * whole QoS subsystem shares.
 *
 * Hercules provisions the cluster for the diurnal valley-to-peak swing,
 * but *between* those operating points the serving stack needs policy:
 * what to do with a query that cannot meet its deadline (admission
 * control, qos/admission.h), which service loses capacity first when
 * the power cap bites (ServiceClass::priority, threaded into
 * cluster::shedToPowerCap), and how routing weights react to observed
 * tail latency (qos/feedback.h, the latency-feedback router policy).
 *
 * Accounting contract (see src/qos/README.md):
 *  - *dropped*   — no active shard existed for the query's service;
 *  - *rejected*  — a shard existed but its admission controller refused
 *                  the query (queue full / deadline unmeetable);
 *  - *violated*  — the query completed later than its service's SLA.
 * All three count as SLA violations in every rate: a query turned away
 * missed its deadline by definition, so enabling admission control can
 * never hide load in the accounting — it can only convert late
 * completions (which also poison the queue behind them) into early,
 * cheap rejections.
 */
#pragma once

#include <cstddef>
#include <optional>
#include <string>

namespace hercules::qos {

/** How a service trades latency against throughput. */
enum class Tier {
    /**
     * User-facing ranking: provisioned with peak/ramp headroom, held
     * to its latency SLA every interval.
     */
    Latency,
    /**
     * Deadline-relaxed batch-ish serving (feature logging, candidate
     * pre-scoring): provisioned to *mean* demand over the horizon —
     * its peak backlog rides through the adjacent troughs instead of
     * claiming peak capacity.
     */
    Throughput,
};

/** @return display name ("latency", "throughput"). */
const char* tierName(Tier t);

/** Parse a tier name as printed by tierName(). */
std::optional<Tier> parseTier(const std::string& name);

/**
 * The QoS class of one co-served service. Default-constructed classes
 * (priority 0, latency tier, no SLA override) reproduce the pre-QoS
 * behaviour exactly.
 */
struct ServiceClass
{
    /**
     * Shedding priority: *higher keeps capacity longer*. When the
     * power cap forces shedding, all servers of strictly lower-priority
     * services are shed before any higher-priority pair loses one
     * (cluster::shedToPowerCap).
     */
    int priority = 0;
    Tier tier = Tier::Latency;
    /**
     * Latency SLA override (ms); <= 0 defers to the service's own
     * SLA resolution (spec / model-zoo default).
     */
    double sla_ms = 0.0;
};

/** The per-shard admission policies (qos/admission.h). */
enum class AdmissionPolicy {
    /** Admit everything — today's unbounded queue (the default). */
    None,
    /** Bounded queue: reject once the shard's backlog hits the cap. */
    QueueCap,
    /**
     * Deadline-aware: estimate the query's completion time from the
     * shard's in-flight work and reject when it cannot meet the SLA.
     */
    Deadline,
};

/** @return display name ("none", "queue_cap", "deadline"). */
const char* admissionPolicyName(AdmissionPolicy p);

/** Parse a policy name as printed by admissionPolicyName(). */
std::optional<AdmissionPolicy> parseAdmissionPolicy(
    const std::string& name);

/** Configuration of the admission controller. */
struct AdmissionConfig
{
    AdmissionPolicy policy = AdmissionPolicy::None;
    /** QueueCap: max queries outstanding on one shard. */
    size_t queue_cap = 64;
    /**
     * Deadline: admit while the estimated completion time stays within
     * `deadline_slack * sla_ms`. 1.0 drops exactly the queries the
     * estimator predicts late; > 1 tolerates estimator optimism.
     */
    double deadline_slack = 1.0;
    /**
     * Cross-shard retry: when the routed shard's controller refuses a
     * query, re-offer it to the service's other active shards (best
     * estimated completion first) and only count it rejected once every
     * shard refuses. With a single shard — or policy `none`, which
     * never refuses — behaviour is identical to no retry.
     */
    bool cross_shard_retry = true;
};

/**
 * Configuration of the latency-feedback router's weight update
 * (qos/feedback.h).
 */
struct FeedbackConfig
{
    /**
     * Max fractional weight step per interval: the multiplicative
     * factor applied each update is clamped to [1 - gain, 1 + gain].
     */
    double gain = 0.3;
    /** Weight floor as a fraction of the shard's base (tuple) weight. */
    double floor_frac = 0.05;
};

}  // namespace hercules::qos
