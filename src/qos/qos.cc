#include "qos/qos.h"

#include "util/logging.h"

namespace hercules::qos {

const char*
tierName(Tier t)
{
    switch (t) {
      case Tier::Latency: return "latency";
      case Tier::Throughput: return "throughput";
    }
    panic("tierName: bad tier %d", static_cast<int>(t));
}

std::optional<Tier>
parseTier(const std::string& name)
{
    if (name == "latency")
        return Tier::Latency;
    if (name == "throughput")
        return Tier::Throughput;
    return std::nullopt;
}

const char*
admissionPolicyName(AdmissionPolicy p)
{
    switch (p) {
      case AdmissionPolicy::None: return "none";
      case AdmissionPolicy::QueueCap: return "queue_cap";
      case AdmissionPolicy::Deadline: return "deadline";
    }
    panic("admissionPolicyName: bad policy %d", static_cast<int>(p));
}

std::optional<AdmissionPolicy>
parseAdmissionPolicy(const std::string& name)
{
    if (name == "none")
        return AdmissionPolicy::None;
    if (name == "queue_cap")
        return AdmissionPolicy::QueueCap;
    if (name == "deadline")
        return AdmissionPolicy::Deadline;
    return std::nullopt;
}

}  // namespace hercules::qos
