/**
 * @file
 * Feedback-driven routing weights: the update rule behind the
 * `latency-feedback` router policy (sim::RouterPolicy::LatencyFeedback).
 *
 * The static hercules-weighted router splits traffic by offline
 * efficiency-tuple QPS — right on average, blind to what actually
 * happens. The feedback router starts from the same tuple weights and,
 * once per harvest interval, multiplicatively adjusts each shard's
 * weight from its *observed* window p99 against the served service's
 * SLA:
 *
 *   factor = clamp(sla / p99, 1 - gain, 1 + gain)
 *   w'     = clamp(w * factor, floor_frac * base, base)
 *
 * A shard running hot (p99 > sla) loses weight — its share shrinks
 * until its tail recovers; a shard with headroom regains weight toward
 * (never beyond) its tuple base, so the long-run split converges back
 * to the heterogeneity-aware weights when everything is healthy. A
 * window with no completions is ambiguous, and the caller (ClusterSim)
 * disambiguates by the shard's backlog: *drained* and dark passes
 * p99 <= 0 — bounded recovery toward base, so a shard is not condemned
 * forever by one bad interval — while *stalled* (work in flight,
 * nothing finishing) passes an infinite p99 and takes the full penalty
 * step, since a shard too backlogged to complete anything is the most
 * overloaded of all. The floor keeps every shard probed — a zero
 * weight would blind the controller to a recovered shard forever.
 */
#pragma once

#include "qos/qos.h"

namespace hercules::qos {

/**
 * One interval's multiplicative weight update for one shard.
 *
 * @param weight  the shard's current feedback weight.
 * @param base    its tuple (efficiency) weight — the upper bound.
 * @param p99_ms  observed window p99; <= 0 means no completions.
 * @param sla_ms  SLA of the shard's service.
 * @param cfg     gain / floor knobs.
 * @return the updated weight.
 */
double updateFeedbackWeight(double weight, double base, double p99_ms,
                            double sla_ms, const FeedbackConfig& cfg);

}  // namespace hercules::qos
