/**
 * @file
 * Per-shard admission control: the dispatch-time decision whether a
 * routed query may join its shard's queue, consulted by
 * sim::ClusterSim on every dispatch.
 *
 * The controller sees the shard exactly as the router does — its
 * outstanding query count and its efficiency-tuple QPS weight — so the
 * deadline estimator needs no extra per-shard instrumentation:
 *
 *   estimated completion (ms) = 1000 * (outstanding + 1) / weight_qps
 *
 * i.e. the new query retires after the shard works through the backlog
 * ahead of it, at the shard's latency-bounded throughput. The tuple
 * QPS is what the provisioner sized the shard by, so the estimate is
 * consistent with the capacity the plan promised; an overloaded shard
 * (backlog beyond SLA * slack worth of work) rejects instead of
 * growing an unbounded queue that would make *every* queued query
 * late.
 *
 * A rejected query counts as an SLA violation everywhere a dropped or
 * late query does (see qos/qos.h) — admission control re-shapes *who*
 * violates under overload, it never hides violations.
 */
#pragma once

#include "qos/qos.h"

namespace hercules::qos {

/** The router's view of one shard, as the controller needs it. */
struct ShardLoad
{
    size_t outstanding = 0;   ///< queries injected but not retired
    double weight_qps = 0.0;  ///< efficiency-tuple QPS of the shard
};

/**
 * One shard's admission controller. Stateless beyond its config:
 * every decision is a pure function of the shard's current load, so
 * replays are deterministic.
 */
class AdmissionController
{
  public:
    explicit AdmissionController(const AdmissionConfig& cfg = {})
        : cfg_(cfg)
    {
    }

    /**
     * @param shard  the candidate shard's current load.
     * @param sla_ms the SLA of the query's service.
     * @return true when the query may be injected.
     */
    bool admit(const ShardLoad& shard, double sla_ms) const;

    const AdmissionConfig& config() const { return cfg_; }

    /**
     * The deadline estimator: predicted end-to-end completion time of
     * a query joining a shard with `outstanding` queries ahead of it.
     * @return +infinity when the shard has no usable weight.
     */
    static double estimatedCompletionMs(size_t outstanding,
                                        double weight_qps);

  private:
    AdmissionConfig cfg_;
};

}  // namespace hercules::qos
