#include "sched/baselines.h"

#include <algorithm>
#include <memory>

// sched sits below core in layers.json; baselines evaluate through
// the shared EvalEngine so baseline and Hercules searches hit one memo
// and one pool. Same justified up-edge as sched/gradient_search.h.
// layer-lint: allow(core)
#include "core/eval_engine.h"
#include "sim/prepared.h"
#include "util/logging.h"

namespace hercules::sched {

namespace {

/** Merge `r` into `acc`, keeping the higher-QPS best. */
void
merge(SearchResult& acc, SearchResult r)
{
    acc.evals += r.evals;
    acc.cache_hits += r.cache_hits;
    acc.trace.insert(acc.trace.end(), r.trace.begin(), r.trace.end());
    if (r.best && r.best_qps > acc.best_qps) {
        acc.best = r.best;
        acc.best_point = r.best_point;
        acc.best_qps = r.best_qps;
    }
}

/**
 * 1D hill climb along a prebuilt config sequence: evaluate in order
 * while the latency-bounded QPS keeps improving (the hill-climbing
 * search of DeepRecSys).
 *
 * Accelerator baselines use model-based scheduling without Hercules's
 * locality-aware hot split: every co-located client must hold a full
 * model copy, so configurations whose per-thread budget cannot fit the
 * embeddings are rejected (`require_full_residency`). This is what
 * caps Baymax co-location for large models (Fig 6, MT-WnD 1.03x).
 */
SearchResult
hillClimb(const hw::ServerSpec& server, const model::Model& m,
          double sla_ms, const SearchOptions& opt,
          const std::vector<SchedulingConfig>& seq,
          bool require_full_residency = false)
{
    SearchResult result;
    // The hill climb is sequential by definition (each step's verdict
    // gates the next), so the engine is used for its memo — baseline
    // configs overlapping a Hercules search sharing the engine are
    // free — rather than for fan-out.
    std::unique_ptr<core::EvalEngine> owned;
    core::EvalEngine* engine = opt.engine;
    if (!engine) {
        owned = std::make_unique<core::EvalEngine>(opt.eval);
        engine = owned.get();
    }
    double prev = -1.0;
    for (const SchedulingConfig& cfg : seq) {
        if (sim::validateConfig(server, m, cfg))
            continue;
        if (require_full_residency && cfg.usesGpu()) {
            // Residency needs the prepared placement; the engine will
            // prepare again on a cache miss, but a redundant prepare is
            // far cheaper than the alternative (measuring the config
            // and discarding it — the seed skipped such configs without
            // tracing them, and that contract is kept).
            sim::PreparedWorkload w = sim::prepare(server, m, cfg);
            if (w.gpu_cx.hot_hit_rate < 1.0)
                continue;  // the baseline cannot partition the model
        }
        core::EvalRequest req;
        req.server = &server;
        req.model = &m;
        req.cfg = cfg;
        req.sla_ms = sla_ms;
        req.measure = opt.measure;
        req.measure.power_budget_w = opt.power_budget_w;
        core::EvalResult res = engine->evaluate(req);
        if (res.cache_hit)
            ++result.cache_hits;
        else
            ++result.evals;
        const auto& point = res.point;
        SearchStep step;
        step.cfg = cfg;
        if (point) {
            step.qps = point->qps;
            step.tail_ms = point->result.tail_ms;
            step.peak_power_w = point->result.peak_power_w;
            step.qps_per_watt = point->result.qps_per_watt;
        }
        result.trace.push_back(step);
        if (point && point->qps > result.best_qps) {
            result.best = cfg;
            result.best_point = *point;
            result.best_qps = point->qps;
            result.trace.back().accepted = true;
        }
        if (point && prev >= 0.0 && point->qps < prev)
            break;  // hill climb: stop once throughput decreases
        if (point)
            prev = point->qps;
    }
    return result;
}

}  // namespace

SearchResult
deepRecSysSearch(const hw::ServerSpec& server, const model::Model& m,
                 double sla_ms, const SearchOptions& opt)
{
    std::vector<SchedulingConfig> seq;
    for (int b : opt.space.batches) {
        SchedulingConfig cfg;
        cfg.mapping = Mapping::CpuModelBased;
        cfg.cpu_threads = server.cpu.cores;  // one thread per core
        cfg.cores_per_thread = 1;
        cfg.batch = b;
        seq.push_back(cfg);
    }
    return hillClimb(server, m, sla_ms, opt, seq);
}

SearchResult
deepRecSysGpuSearch(const hw::ServerSpec& server, const model::Model& m,
                    double sla_ms, const SearchOptions& opt,
                    bool allow_partition)
{
    if (!server.hasGpu())
        fatal("deepRecSysGpuSearch: %s has no accelerator",
              server.name.c_str());
    std::vector<SchedulingConfig> seq;
    SchedulingConfig cfg;
    cfg.mapping = Mapping::GpuModelBased;
    cfg.gpu_threads = 1;
    cfg.fusion_limit = 0;  // one query per launch
    cfg.cpu_threads = std::min(4, server.cpu.cores);
    cfg.cores_per_thread = 1;
    seq.push_back(cfg);
    return hillClimb(server, m, sla_ms, opt, seq,
                     /*require_full_residency=*/!allow_partition);
}

SearchResult
baymaxSearch(const hw::ServerSpec& server, const model::Model& m,
             double sla_ms, const SearchOptions& opt,
             bool allow_partition)
{
    if (!server.hasGpu())
        fatal("baymaxSearch: %s has no accelerator", server.name.c_str());
    std::vector<SchedulingConfig> seq;
    for (int g = 1; g <= opt.space.max_gpu_threads; ++g) {
        SchedulingConfig cfg;
        cfg.mapping = Mapping::GpuModelBased;
        cfg.gpu_threads = g;
        cfg.fusion_limit = 0;  // co-location only, no fusion
        cfg.cpu_threads = std::min(4, server.cpu.cores);
        cfg.cores_per_thread = 1;
        seq.push_back(cfg);
    }
    return hillClimb(server, m, sla_ms, opt, seq,
                     /*require_full_residency=*/!allow_partition);
}

SearchResult
baselineSearch(const hw::ServerSpec& server, const model::Model& m,
               double sla_ms, const SearchOptions& opt)
{
    SearchResult result = deepRecSysSearch(server, m, sla_ms, opt);
    if (server.hasGpu())
        merge(result, baymaxSearch(server, m, sla_ms, opt,
                                   /*allow_partition=*/true));
    return result;
}

}  // namespace hercules::sched
