#include "sched/gradient_search.h"

#include <algorithm>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>

#include "util/logging.h"

namespace hercules::sched {

namespace {

/**
 * Ordered reduction of a partial result into the combined one. Strict
 * `>` on QPS keeps the earliest-merged winner on ties, so the reduction
 * order — always program order, never completion order — fully
 * determines the outcome regardless of the engine's thread count.
 */
void
mergeResult(SearchResult& acc, SearchResult&& r)
{
    acc.evals += r.evals;
    acc.cache_hits += r.cache_hits;
    acc.trace.insert(acc.trace.end(),
                     std::make_move_iterator(r.trace.begin()),
                     std::make_move_iterator(r.trace.end()));
    if (r.best && r.best_qps > acc.best_qps) {
        acc.best = r.best;
        acc.best_point = r.best_point;
        acc.best_qps = r.best_qps;
    }
}

/**
 * Trace recorder on top of the evaluation engine, owned by one
 * (sub-)search. The engine memoizes across evaluators; this class keeps
 * the per-search bookkeeping the seed's Evaluator kept: first-request
 * dedup, the trace, the eval/cache-hit counters and the running best.
 */
class Evaluator
{
  public:
    Evaluator(core::EvalEngine& engine, const hw::ServerSpec& server,
              const model::Model& m, double sla_ms,
              const SearchOptions& opt, SearchResult& result)
        : engine_(engine), server_(server), model_(m), sla_ms_(sla_ms),
          opt_(opt), result_(result)
    {
    }

    /** Latency-bounded QPS of a config; -1 when invalid/infeasible. */
    double
    qps(const SchedulingConfig& cfg, const sim::MeasureHint& hint = {})
    {
        const auto& point = eval(cfg, hint);
        return point ? point->qps : -1.0;
    }

    const std::optional<sim::OperatingPoint>&
    eval(const SchedulingConfig& cfg, const sim::MeasureHint& hint = {})
    {
        auto [it, inserted] = seen_.try_emplace(cfg.key());
        if (inserted)
            record(cfg, engine_.evaluate(request(cfg, hint)), it->second);
        return it->second;
    }

    /**
     * Fan a candidate batch onto the engine pool, then record results
     * in request order — the trace and counters come out exactly as if
     * the batch had been evaluated serially.
     */
    void
    prefetch(const std::vector<SchedulingConfig>& cfgs,
             const sim::MeasureHint& hint = {})
    {
        std::vector<const SchedulingConfig*> fresh;
        std::vector<core::EvalRequest> reqs;
        fresh.reserve(cfgs.size());
        reqs.reserve(cfgs.size());
        for (const SchedulingConfig& cfg : cfgs) {
            if (seen_.count(cfg.key()))
                continue;
            fresh.push_back(&cfg);
            reqs.push_back(request(cfg, hint));
        }
        std::vector<core::EvalResult> results =
            engine_.evaluateMany(reqs);
        for (size_t i = 0; i < fresh.size(); ++i) {
            auto [it, inserted] = seen_.try_emplace(fresh[i]->key());
            if (inserted)
                record(*fresh[i], std::move(results[i]), it->second);
        }
    }

    /** Warm-start hint derived from an operating point. */
    static sim::MeasureHint
    hintFrom(const std::optional<sim::OperatingPoint>& point)
    {
        sim::MeasureHint h;
        if (point) {
            h.valid = true;
            h.qps = point->qps;
            h.capacity = point->capacity;
        }
        return h;
    }

    /** Mark the latest trace entry for `cfg` as an accepted move. */
    void
    markAccepted(const SchedulingConfig& cfg)
    {
        std::string key = cfg.key();
        for (auto rit = result_.trace.rbegin();
             rit != result_.trace.rend(); ++rit) {
            if (rit->cfg.key() == key) {
                rit->accepted = true;
                return;
            }
        }
    }

  private:
    core::EvalRequest
    request(const SchedulingConfig& cfg, const sim::MeasureHint& hint)
    {
        core::EvalRequest r;
        r.server = &server_;
        r.model = &model_;
        r.cfg = cfg;
        r.sla_ms = sla_ms_;
        r.measure = opt_.measure;
        r.measure.power_budget_w = opt_.power_budget_w;
        r.hint = hint;
        return r;
    }

    void
    record(const SchedulingConfig& cfg, core::EvalResult&& res,
           std::optional<sim::OperatingPoint>& slot)
    {
        if (!res.valid) {
            slot = std::nullopt;  // invalid: never measured, not traced
            return;
        }
        if (res.cache_hit)
            ++result_.cache_hits;
        else
            ++result_.evals;

        SearchStep step;
        step.cfg = cfg;
        if (res.point) {
            step.qps = res.point->qps;
            step.tail_ms = res.point->result.tail_ms;
            step.peak_power_w = res.point->result.peak_power_w;
            step.qps_per_watt = res.point->result.qps_per_watt;
        }
        result_.trace.push_back(step);

        if (res.point && res.point->qps > result_.best_qps) {
            result_.best = cfg;
            result_.best_point = *res.point;
            result_.best_qps = res.point->qps;
        }
        slot = std::move(res.point);
    }

    core::EvalEngine& engine_;
    const hw::ServerSpec& server_;
    const model::Model& model_;
    double sla_ms_;
    const SearchOptions& opt_;
    SearchResult& result_;
    std::unordered_map<std::string, std::optional<sim::OperatingPoint>>
        seen_;
};

/** Everything a mapping search needs to spawn sub-evaluators. */
struct SearchCtx
{
    core::EvalEngine& engine;
    const hw::ServerSpec& server;
    const model::Model& model;
    double sla_ms;
    const SearchOptions& opt;

    Evaluator
    make(SearchResult& result) const
    {
        return Evaluator(engine, server, model, sla_ms, opt, result);
    }
};

/**
 * The Psp(M + D) climber of Algorithm 1: a 2D gradient ascent over
 * index axes, moving to the best of the three forward neighbours while
 * throughput improves. The neighbours of each step are prefetched onto
 * the engine pool (warm-started from the current position) and then
 * reduced in candidate order.
 *
 * @param nx, ny    axis lengths.
 * @param cfg_at    builds the configuration at position (xi, yi).
 * @param ev        evaluator of the owning (sub-)search.
 * @param start_xi, start_yi  origin (minimal parallelism).
 * @return best feasible QPS found along the climb (-1 when none).
 */
double
climb2d(int nx, int ny,
        const std::function<SchedulingConfig(int, int)>& cfg_at,
        Evaluator& ev, int start_xi = 0, int start_yi = 0,
        int* final_xi = nullptr, int* final_yi = nullptr)
{
    int xi = start_xi;
    int yi = start_yi;
    double cur = ev.qps(cfg_at(xi, yi));
    double best = cur;
    if (cur >= 0.0)
        ev.markAccepted(cfg_at(xi, yi));

    // If even the origin is infeasible, scan the batch axis once — the
    // origin may violate SLA while larger batches cannot help, but a
    // tiny query-fused batch sometimes only becomes feasible later.
    // (Kept serial: the scan short-circuits at the first feasible
    // batch, and prefetching past it would perturb hint-order.)
    if (cur < 0.0) {
        for (int y = start_yi + 1; y < ny; ++y) {
            double q = ev.qps(cfg_at(xi, y));
            if (q >= 0.0) {
                yi = y;
                cur = best = q;
                ev.markAccepted(cfg_at(xi, yi));
                break;
            }
        }
        if (cur < 0.0)
            return -1.0;
    }
    sim::MeasureHint hint = Evaluator::hintFrom(ev.eval(cfg_at(xi, yi)));

    while (true) {
        struct Cand
        {
            int xi, yi;
        };
        std::vector<Cand> cands;
        if (xi + 1 < nx)
            cands.push_back({xi + 1, yi});
        if (yi + 1 < ny)
            cands.push_back({xi, yi + 1});
        if (xi + 1 < nx && yi + 1 < ny)
            cands.push_back({xi + 1, yi + 1});
        if (cands.empty())
            break;

        std::vector<SchedulingConfig> cfgs;
        cfgs.reserve(cands.size());
        for (const Cand& c : cands)
            cfgs.push_back(cfg_at(c.xi, c.yi));
        ev.prefetch(cfgs, hint);

        double best_q = -1.0;
        Cand best_c{xi, yi};
        for (const Cand& c : cands) {
            double q = ev.qps(cfg_at(c.xi, c.yi), hint);
            if (q > best_q) {
                best_q = q;
                best_c = c;
            }
        }
        if (best_q <= cur)
            break;  // convex surface: no improving direction left
        xi = best_c.xi;
        yi = best_c.yi;
        cur = best_q;
        best = std::max(best, cur);
        ev.markAccepted(cfg_at(xi, yi));
        hint = Evaluator::hintFrom(ev.eval(cfg_at(xi, yi), hint));
    }
    if (final_xi)
        *final_xi = xi;
    if (final_yi)
        *final_yi = yi;
    return best;
}

/**
 * Outer Psp(O) loop: returns when per-o peaks start decreasing.
 *
 * When the engine pool has parallelism, every arm runs speculatively at
 * once (disjoint configuration spaces — each arm owns one
 * cores-per-thread value). The reduction then replays the serial
 * early-termination rule in arm order: arms past the termination point
 * are discarded wholesale — their trace, counters and best never merge
 * — so the result is bit-identical to the serial walk, speculation only
 * spends idle cores.
 */
double
opParallelismLoop(const SearchCtx& ctx, int max_o,
                  const std::function<double(int, SearchResult&)>& arm,
                  SearchResult& result)
{
    if (max_o < 1)
        return -1.0;
    size_t n = static_cast<size_t>(max_o);
    std::vector<SearchResult> partial(n);
    std::vector<double> peak(n, -1.0);
    std::vector<char> computed(n, 0);
    if (ctx.engine.speculative()) {
        // Cap speculation at pool width + 1: on a narrow pool a deep
        // arm list would make discarded climbs compete with the kept
        // arms' neighbour prefetches for slots. Arms past the cap are
        // computed lazily below (identical values either way).
        size_t spec = std::min(
            n, static_cast<size_t>(ctx.engine.pool().threads()) + 1);
        ctx.engine.pool().parallelFor(spec, [&](size_t i) {
            peak[i] = arm(static_cast<int>(i) + 1, partial[i]);
            computed[i] = 1;
        });
    }

    double best = -1.0;
    double prev = -1.0;
    for (int o = 1; o <= max_o; ++o) {
        size_t i = static_cast<size_t>(o - 1);
        if (!computed[i])
            peak[i] = arm(o, partial[i]);
        mergeResult(result, std::move(partial[i]));
        best = std::max(best, peak[i]);
        if (o > 1 && peak[i] < prev)
            break;  // Algorithm 1: terminate on decreasing op-parallelism
        if (peak[i] >= 0.0)
            prev = peak[i];
    }
    return best;
}

double
searchCpuModelBased(const SearchCtx& ctx, SearchResult& result)
{
    const auto& batches = ctx.opt.space.batches;
    int cores = ctx.server.cpu.cores;
    int max_o = std::min(ctx.opt.space.max_cores_per_thread, cores);
    double best = opParallelismLoop(
        ctx, max_o,
        [&](int o, SearchResult& out) {
            int max_threads = cores / o;
            if (max_threads < 1)
                return -1.0;
            Evaluator ev = ctx.make(out);
            auto cfg_at = [&](int xi, int yi) {
                SchedulingConfig cfg;
                cfg.mapping = Mapping::CpuModelBased;
                cfg.cpu_threads = xi + 1;
                cfg.cores_per_thread = o;
                cfg.batch = batches[static_cast<size_t>(yi)];
                return cfg;
            };
            return climb2d(max_threads, static_cast<int>(batches.size()),
                           cfg_at, ev);
        },
        result);
    // Anchor sweep along the fully-threaded edge (one thread per core,
    // the DeepRecSys corner): cheap insurance that measurement noise in
    // an early climb step can never leave Hercules below a baseline
    // whose space it supersedes. The engine memo dedupes repeats.
    Evaluator ev = ctx.make(result);
    std::vector<SchedulingConfig> anchors;
    anchors.reserve(batches.size());
    for (int b : batches) {
        SchedulingConfig cfg;
        cfg.mapping = Mapping::CpuModelBased;
        cfg.cpu_threads = cores;
        cfg.cores_per_thread = 1;
        cfg.batch = b;
        anchors.push_back(cfg);
    }
    ev.prefetch(anchors);
    for (const SchedulingConfig& cfg : anchors)
        best = std::max(best, ev.qps(cfg));
    return best;
}

double
searchCpuSdPipeline(const SearchCtx& ctx, SearchResult& result)
{
    const auto& batches = ctx.opt.space.batches;
    int cores = ctx.server.cpu.cores;
    int max_o = std::min(ctx.opt.space.max_cores_per_thread, cores);
    return opParallelismLoop(
        ctx, max_o,
        [&](int o, SearchResult& out) {
            int max_sparse = std::max(cores / o - 1, 0);
            if (max_sparse < 1)
                return -1.0;
            Evaluator ev = ctx.make(out);
            auto cfg_at = [&](int xi, int yi) {
                SchedulingConfig cfg;
                cfg.mapping = Mapping::CpuSdPipeline;
                cfg.cpu_threads = xi + 1;
                cfg.cores_per_thread = o;
                cfg.batch = batches[static_cast<size_t>(yi)];
                cfg.dense_threads = balancedDenseThreads(
                    ctx.server, ctx.model, cfg.cpu_threads, o, cfg.batch);
                return cfg;
            };
            return climb2d(max_sparse, static_cast<int>(batches.size()),
                           cfg_at, ev);
        },
        result);
}

double
searchGpuModelBased(const SearchCtx& ctx, SearchResult& result)
{
    const auto& fusions = ctx.opt.space.fusion_limits;
    // Host helper-thread options matter only when a cold path exists;
    // the engine memo dedupes identical configs either way.
    std::vector<int> helpers = {1};
    for (int h : ctx.opt.space.host_helper_threads)
        if (h <= ctx.server.cpu.cores)
            helpers.push_back(h);

    // Helper arms are independent (disjoint cpu_threads values) and the
    // seed walked all of them — no early termination — so they always
    // fan out; the reduction stays in helper order.
    std::vector<SearchResult> partial(helpers.size());
    std::vector<double> peak(helpers.size(), -1.0);
    ctx.engine.pool().parallelFor(helpers.size(), [&](size_t i) {
        int h = helpers[i];
        Evaluator ev = ctx.make(partial[i]);
        auto cfg_at = [&](int xi, int yi) {
            SchedulingConfig cfg;
            cfg.mapping = Mapping::GpuModelBased;
            cfg.gpu_threads = xi + 1;
            cfg.fusion_limit = fusions[static_cast<size_t>(yi)];
            cfg.cpu_threads = h;
            cfg.cores_per_thread = 1;
            return cfg;
        };
        peak[i] = climb2d(ctx.opt.space.max_gpu_threads,
                          static_cast<int>(fusions.size()), cfg_at, ev);
    });

    double best = -1.0;
    for (size_t i = 0; i < helpers.size(); ++i) {
        mergeResult(result, std::move(partial[i]));
        best = std::max(best, peak[i]);
    }
    return best;
}

double
searchGpuSdPipeline(const SearchCtx& ctx, SearchResult& result)
{
    const auto& batches = ctx.opt.space.batches;
    const auto& fusions = ctx.opt.space.fusion_limits;
    int cores = ctx.server.cpu.cores;
    // Host-side SparseNet lookups are bandwidth-bound, so m x o and
    // (m*o) x 1 allocations are nearly equivalent; probing o in {1, 2}
    // keeps the nested host/accelerator search tractable.
    int max_o = std::min({2, ctx.opt.space.max_cores_per_thread, cores});

    return opParallelismLoop(
        ctx, max_o,
        [&](int o, SearchResult& out) {
            int max_threads = cores / o;
            if (max_threads < 1)
                return -1.0;
            Evaluator ev = ctx.make(out);
            // Accelerator-side warm start: each host-side move re-runs
            // the small (co-location x fusion) climb from the last
            // optimum (paper: "following each move-step of host-side
            // search, the accelerator-side search is performed"). The
            // warm state makes the host-candidate loop order-dependent,
            // so it stays serial; parallelism comes from the inner
            // climbs' neighbour prefetch and the o-arms.
            int warm_g = 0;
            int warm_f = 0;
            auto inner = [&](int hxi, int hyi) {
                auto inner_cfg = [&](int gxi, int gyi) {
                    SchedulingConfig cfg;
                    cfg.mapping = Mapping::GpuSdPipeline;
                    cfg.cpu_threads = hxi + 1;
                    cfg.cores_per_thread = o;
                    cfg.batch = batches[static_cast<size_t>(hyi)];
                    cfg.gpu_threads = gxi + 1;
                    cfg.fusion_limit = fusions[static_cast<size_t>(gyi)];
                    return cfg;
                };
                return climb2d(ctx.opt.space.max_gpu_threads,
                               static_cast<int>(fusions.size()),
                               inner_cfg, ev, warm_g, warm_f, &warm_g,
                               &warm_f);
            };
            int xi = 0, yi = 0;
            double cur = inner(xi, yi);
            double best = cur;
            if (cur < 0.0)
                return -1.0;
            while (true) {
                struct Cand
                {
                    int xi, yi;
                };
                std::vector<Cand> cands;
                if (xi + 1 < max_threads)
                    cands.push_back({xi + 1, yi});
                if (yi + 1 < static_cast<int>(batches.size()))
                    cands.push_back({xi, yi + 1});
                if (xi + 1 < max_threads &&
                    yi + 1 < static_cast<int>(batches.size()))
                    cands.push_back({xi + 1, yi + 1});
                if (cands.empty())
                    break;
                double best_q = -1.0;
                Cand best_c{xi, yi};
                for (const Cand& c : cands) {
                    double q = inner(c.xi, c.yi);
                    if (q > best_q) {
                        best_q = q;
                        best_c = c;
                    }
                }
                if (best_q <= cur)
                    break;
                xi = best_c.xi;
                yi = best_c.yi;
                cur = best_q;
                best = std::max(best, cur);
            }
            return best;
        },
        result);
}

/** Resolve the engine to use: the caller's shared one or a private one. */
core::EvalEngine*
resolveEngine(const SearchOptions& opt,
              std::unique_ptr<core::EvalEngine>& owned)
{
    if (opt.engine)
        return opt.engine;
    owned = std::make_unique<core::EvalEngine>(opt.eval);
    return owned.get();
}

}  // namespace

SearchResult
gradientSearchMapping(const hw::ServerSpec& server, const model::Model& m,
                      Mapping mapping, double sla_ms,
                      const SearchOptions& opt)
{
    SearchResult result;
    std::unique_ptr<core::EvalEngine> owned;
    core::EvalEngine* engine = resolveEngine(opt, owned);
    SearchCtx ctx{*engine, server, m, sla_ms, opt};
    switch (mapping) {
      case Mapping::CpuModelBased:
        searchCpuModelBased(ctx, result);
        break;
      case Mapping::CpuSdPipeline:
        searchCpuSdPipeline(ctx, result);
        break;
      case Mapping::GpuModelBased:
        searchGpuModelBased(ctx, result);
        break;
      case Mapping::GpuSdPipeline:
        searchGpuSdPipeline(ctx, result);
        break;
    }
    return result;
}

SearchResult
herculesTaskSearch(const hw::ServerSpec& server, const model::Model& m,
                   double sla_ms, const SearchOptions& opt)
{
    std::unique_ptr<core::EvalEngine> owned;
    core::EvalEngine* engine = resolveEngine(opt, owned);
    SearchOptions sub = opt;
    sub.engine = engine;

    // Partition strategies explore disjoint configuration spaces, so
    // they fan out as independent pool tasks; the merge below runs in
    // catalog order for a thread-count-independent result.
    std::vector<Mapping> mappings = applicableMappings(server, m);
    std::vector<SearchResult> results(mappings.size());
    engine->pool().parallelFor(mappings.size(), [&](size_t i) {
        results[i] =
            gradientSearchMapping(server, m, mappings[i], sla_ms, sub);
    });

    SearchResult combined;
    for (SearchResult& r : results)
        mergeResult(combined, std::move(r));
    return combined;
}

SearchResult
exhaustiveSearch(const hw::ServerSpec& server, const model::Model& m,
                 Mapping mapping, double sla_ms, const SearchOptions& opt)
{
    SearchResult result;
    std::unique_ptr<core::EvalEngine> owned;
    core::EvalEngine* engine = resolveEngine(opt, owned);
    SearchCtx ctx{*engine, server, m, sla_ms, opt};
    Evaluator ev = ctx.make(result);
    // The oracle grid is embarrassingly parallel: prefetch evaluates
    // every enumerated config on the pool and records them in
    // enumeration order.
    ev.prefetch(enumerateConfigs(server, m, mapping, opt.space));
    return result;
}

}  // namespace hercules::sched
