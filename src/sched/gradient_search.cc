#include "sched/gradient_search.h"

#include <algorithm>
#include <functional>
#include <string>
#include <unordered_map>

#include "sim/prepared.h"
#include "util/logging.h"

namespace hercules::sched {

namespace {

/**
 * Measurement cache + trace recorder shared by one search invocation.
 * Configurations are keyed by their string form; infeasible and invalid
 * configurations cache as nullopt.
 */
class Evaluator
{
  public:
    Evaluator(const hw::ServerSpec& server, const model::Model& m,
              double sla_ms, const SearchOptions& opt,
              SearchResult& result)
        : server_(server), model_(m), sla_ms_(sla_ms), opt_(opt),
          result_(result)
    {
    }

    /** Latency-bounded QPS of a config; -1 when invalid/infeasible. */
    double
    qps(const SchedulingConfig& cfg)
    {
        const auto& point = eval(cfg);
        return point ? point->qps : -1.0;
    }

    const std::optional<sim::OperatingPoint>&
    eval(const SchedulingConfig& cfg)
    {
        std::string key = cfg.str();
        auto it = cache_.find(key);
        if (it != cache_.end())
            return it->second;

        std::optional<sim::OperatingPoint> point;
        if (!sim::validateConfig(server_, model_, cfg)) {
            sim::MeasureOptions mo = opt_.measure;
            mo.power_budget_w = opt_.power_budget_w;
            sim::PreparedWorkload w = sim::prepare(server_, model_, cfg);
            point = sim::measureLatencyBoundedQps(w, sla_ms_, mo);
            ++result_.evals;

            SearchStep step;
            step.cfg = cfg;
            if (point) {
                step.qps = point->qps;
                step.tail_ms = point->result.tail_ms;
                step.peak_power_w = point->result.peak_power_w;
                step.qps_per_watt = point->result.qps_per_watt;
            }
            result_.trace.push_back(step);

            if (point && point->qps > result_.best_qps) {
                result_.best = cfg;
                result_.best_point = *point;
                result_.best_qps = point->qps;
            }
        }
        it = cache_.emplace(std::move(key), std::move(point)).first;
        return it->second;
    }

    /** Mark the latest trace entry for `cfg` as an accepted move. */
    void
    markAccepted(const SchedulingConfig& cfg)
    {
        std::string key = cfg.str();
        for (auto rit = result_.trace.rbegin(); rit != result_.trace.rend();
             ++rit) {
            if (rit->cfg.str() == key) {
                rit->accepted = true;
                return;
            }
        }
    }

  private:
    const hw::ServerSpec& server_;
    const model::Model& model_;
    double sla_ms_;
    const SearchOptions& opt_;
    SearchResult& result_;
    std::unordered_map<std::string, std::optional<sim::OperatingPoint>>
        cache_;
};

/**
 * The Psp(M + D) climber of Algorithm 1: a 2D gradient ascent over
 * index axes, moving to the best of the three forward neighbours while
 * throughput improves.
 *
 * @param nx, ny    axis lengths.
 * @param cfg_at    builds the configuration at position (xi, yi).
 * @param ev        shared evaluator.
 * @param start_xi, start_yi  origin (minimal parallelism).
 * @return best feasible QPS found along the climb (-1 when none).
 */
double
climb2d(int nx, int ny,
        const std::function<SchedulingConfig(int, int)>& cfg_at,
        Evaluator& ev, int start_xi = 0, int start_yi = 0,
        int* final_xi = nullptr, int* final_yi = nullptr)
{
    int xi = start_xi;
    int yi = start_yi;
    double cur = ev.qps(cfg_at(xi, yi));
    double best = cur;
    if (cur >= 0.0)
        ev.markAccepted(cfg_at(xi, yi));

    // If even the origin is infeasible, scan the batch axis once — the
    // origin may violate SLA while larger batches cannot help, but a
    // tiny query-fused batch sometimes only becomes feasible later.
    if (cur < 0.0) {
        for (int y = start_yi + 1; y < ny; ++y) {
            double q = ev.qps(cfg_at(xi, y));
            if (q >= 0.0) {
                yi = y;
                cur = best = q;
                ev.markAccepted(cfg_at(xi, yi));
                break;
            }
        }
        if (cur < 0.0)
            return -1.0;
    }

    while (true) {
        struct Cand
        {
            int xi, yi;
        };
        std::vector<Cand> cands;
        if (xi + 1 < nx)
            cands.push_back({xi + 1, yi});
        if (yi + 1 < ny)
            cands.push_back({xi, yi + 1});
        if (xi + 1 < nx && yi + 1 < ny)
            cands.push_back({xi + 1, yi + 1});
        if (cands.empty())
            break;

        double best_q = -1.0;
        Cand best_c{xi, yi};
        for (const Cand& c : cands) {
            double q = ev.qps(cfg_at(c.xi, c.yi));
            if (q > best_q) {
                best_q = q;
                best_c = c;
            }
        }
        if (best_q <= cur)
            break;  // convex surface: no improving direction left
        xi = best_c.xi;
        yi = best_c.yi;
        cur = best_q;
        best = std::max(best, cur);
        ev.markAccepted(cfg_at(xi, yi));
    }
    if (final_xi)
        *final_xi = xi;
    if (final_yi)
        *final_yi = yi;
    return best;
}

/** Outer Psp(O) loop: returns when per-o peaks start decreasing. */
double
opParallelismLoop(int max_o, const std::function<double(int)>& climb_for_o)
{
    double best = -1.0;
    double prev = -1.0;
    for (int o = 1; o <= max_o; ++o) {
        double peak = climb_for_o(o);
        best = std::max(best, peak);
        if (o > 1 && peak < prev)
            break;  // Algorithm 1: terminate on decreasing op-parallelism
        if (peak >= 0.0)
            prev = peak;
    }
    return best;
}

double
searchCpuModelBased(const hw::ServerSpec& server,
                    [[maybe_unused]] const model::Model& m,
                    const SearchOptions& opt, Evaluator& ev)
{
    const auto& batches = opt.space.batches;
    int cores = server.cpu.cores;
    int max_o = std::min(opt.space.max_cores_per_thread, cores);
    double best = opParallelismLoop(max_o, [&](int o) {
        int max_threads = cores / o;
        if (max_threads < 1)
            return -1.0;
        auto cfg_at = [&](int xi, int yi) {
            SchedulingConfig cfg;
            cfg.mapping = Mapping::CpuModelBased;
            cfg.cpu_threads = xi + 1;
            cfg.cores_per_thread = o;
            cfg.batch = batches[static_cast<size_t>(yi)];
            return cfg;
        };
        return climb2d(max_threads, static_cast<int>(batches.size()),
                       cfg_at, ev);
    });
    // Anchor sweep along the fully-threaded edge (one thread per core,
    // the DeepRecSys corner): cheap insurance that measurement noise in
    // an early climb step can never leave Hercules below a baseline
    // whose space it supersedes. The evaluator dedupes repeats.
    for (int b : batches) {
        SchedulingConfig cfg;
        cfg.mapping = Mapping::CpuModelBased;
        cfg.cpu_threads = cores;
        cfg.cores_per_thread = 1;
        cfg.batch = b;
        best = std::max(best, ev.qps(cfg));
    }
    return best;
}

double
searchCpuSdPipeline(const hw::ServerSpec& server, const model::Model& m,
                    const SearchOptions& opt, Evaluator& ev)
{
    const auto& batches = opt.space.batches;
    int cores = server.cpu.cores;
    int max_o = std::min(opt.space.max_cores_per_thread, cores);
    return opParallelismLoop(max_o, [&](int o) {
        int max_sparse = std::max(cores / o - 1, 0);
        if (max_sparse < 1)
            return -1.0;
        auto cfg_at = [&](int xi, int yi) {
            SchedulingConfig cfg;
            cfg.mapping = Mapping::CpuSdPipeline;
            cfg.cpu_threads = xi + 1;
            cfg.cores_per_thread = o;
            cfg.batch = batches[static_cast<size_t>(yi)];
            cfg.dense_threads = balancedDenseThreads(
                server, m, cfg.cpu_threads, o, cfg.batch);
            return cfg;
        };
        return climb2d(max_sparse, static_cast<int>(batches.size()),
                       cfg_at, ev);
    });
}

double
searchGpuModelBased(const hw::ServerSpec& server,
                    [[maybe_unused]] const model::Model& m,
                    const SearchOptions& opt, Evaluator& ev)
{
    const auto& fusions = opt.space.fusion_limits;
    // Host helper-thread options matter only when a cold path exists;
    // the evaluator dedupes identical configs either way.
    std::vector<int> helpers = {1};
    for (int h : opt.space.host_helper_threads)
        if (h <= server.cpu.cores)
            helpers.push_back(h);

    double best = -1.0;
    for (int h : helpers) {
        auto cfg_at = [&](int xi, int yi) {
            SchedulingConfig cfg;
            cfg.mapping = Mapping::GpuModelBased;
            cfg.gpu_threads = xi + 1;
            cfg.fusion_limit = fusions[static_cast<size_t>(yi)];
            cfg.cpu_threads = h;
            cfg.cores_per_thread = 1;
            return cfg;
        };
        best = std::max(best,
                        climb2d(opt.space.max_gpu_threads,
                                static_cast<int>(fusions.size()), cfg_at,
                                ev));
    }
    return best;
}

double
searchGpuSdPipeline(const hw::ServerSpec& server,
                    [[maybe_unused]] const model::Model& m,
                    const SearchOptions& opt, Evaluator& ev)
{
    const auto& batches = opt.space.batches;
    const auto& fusions = opt.space.fusion_limits;
    int cores = server.cpu.cores;
    // Host-side SparseNet lookups are bandwidth-bound, so m x o and
    // (m*o) x 1 allocations are nearly equivalent; probing o in {1, 2}
    // keeps the nested host/accelerator search tractable.
    int max_o = std::min({2, opt.space.max_cores_per_thread, cores});

    return opParallelismLoop(max_o, [&](int o) {
        int max_threads = cores / o;
        if (max_threads < 1)
            return -1.0;
        // Accelerator-side warm start: each host-side move re-runs the
        // small (co-location x fusion) climb from the last optimum
        // (paper: "following each move-step of host-side search, the
        // accelerator-side search is performed").
        int warm_g = 0;
        int warm_f = 0;
        auto cfg_at = [&](int xi, int yi) {
            SchedulingConfig cfg;
            cfg.mapping = Mapping::GpuSdPipeline;
            cfg.cpu_threads = xi + 1;
            cfg.cores_per_thread = o;
            cfg.batch = batches[static_cast<size_t>(yi)];
            cfg.gpu_threads = warm_g + 1;
            cfg.fusion_limit = fusions[static_cast<size_t>(warm_f)];
            return cfg;
        };
        // Host-side outer climb where each accepted move refines the
        // accelerator side.
        int xi = 0, yi = 0;
        auto inner = [&](int hxi, int hyi) {
            auto inner_cfg = [&](int gxi, int gyi) {
                SchedulingConfig cfg;
                cfg.mapping = Mapping::GpuSdPipeline;
                cfg.cpu_threads = hxi + 1;
                cfg.cores_per_thread = o;
                cfg.batch = batches[static_cast<size_t>(hyi)];
                cfg.gpu_threads = gxi + 1;
                cfg.fusion_limit = fusions[static_cast<size_t>(gyi)];
                return cfg;
            };
            return climb2d(opt.space.max_gpu_threads,
                           static_cast<int>(fusions.size()), inner_cfg,
                           ev, warm_g, warm_f, &warm_g, &warm_f);
        };
        double cur = inner(xi, yi);
        double best = cur;
        if (cur < 0.0)
            return -1.0;
        while (true) {
            struct Cand
            {
                int xi, yi;
            };
            std::vector<Cand> cands;
            if (xi + 1 < max_threads)
                cands.push_back({xi + 1, yi});
            if (yi + 1 < static_cast<int>(batches.size()))
                cands.push_back({xi, yi + 1});
            if (xi + 1 < max_threads &&
                yi + 1 < static_cast<int>(batches.size()))
                cands.push_back({xi + 1, yi + 1});
            if (cands.empty())
                break;
            double best_q = -1.0;
            Cand best_c{xi, yi};
            for (const Cand& c : cands) {
                double q = inner(c.xi, c.yi);
                if (q > best_q) {
                    best_q = q;
                    best_c = c;
                }
            }
            if (best_q <= cur)
                break;
            xi = best_c.xi;
            yi = best_c.yi;
            cur = best_q;
            best = std::max(best, cur);
        }
        (void)cfg_at;
        return best;
    });
}

}  // namespace

SearchResult
gradientSearchMapping(const hw::ServerSpec& server, const model::Model& m,
                      Mapping mapping, double sla_ms,
                      const SearchOptions& opt)
{
    SearchResult result;
    Evaluator ev(server, m, sla_ms, opt, result);
    switch (mapping) {
      case Mapping::CpuModelBased:
        searchCpuModelBased(server, m, opt, ev);
        break;
      case Mapping::CpuSdPipeline:
        searchCpuSdPipeline(server, m, opt, ev);
        break;
      case Mapping::GpuModelBased:
        searchGpuModelBased(server, m, opt, ev);
        break;
      case Mapping::GpuSdPipeline:
        searchGpuSdPipeline(server, m, opt, ev);
        break;
    }
    return result;
}

SearchResult
herculesTaskSearch(const hw::ServerSpec& server, const model::Model& m,
                   double sla_ms, const SearchOptions& opt)
{
    SearchResult combined;
    for (Mapping mapping : applicableMappings(server, m)) {
        SearchResult r =
            gradientSearchMapping(server, m, mapping, sla_ms, opt);
        combined.evals += r.evals;
        combined.trace.insert(combined.trace.end(), r.trace.begin(),
                              r.trace.end());
        if (r.best && r.best_qps > combined.best_qps) {
            combined.best = r.best;
            combined.best_point = r.best_point;
            combined.best_qps = r.best_qps;
        }
    }
    return combined;
}

SearchResult
exhaustiveSearch(const hw::ServerSpec& server, const model::Model& m,
                 Mapping mapping, double sla_ms, const SearchOptions& opt)
{
    SearchResult result;
    Evaluator ev(server, m, sla_ms, opt, result);
    for (const SchedulingConfig& cfg :
         enumerateConfigs(server, m, mapping, opt.space))
        ev.eval(cfg);
    return result;
}

}  // namespace hercules::sched
