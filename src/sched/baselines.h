/**
 * @file
 * The state-of-the-art baseline task schedulers the paper compares
 * against (§III, Fig 6, Fig 14):
 *
 *  - DeepRecSys [37]: model-based scheduling on the CPU with one
 *    inference thread per physical core; hill-climbs only the batch
 *    size (Psp(D)). On accelerators it runs one model, no fusion.
 *  - Baymax [32]: accelerator model co-location only — hill-climbs the
 *    number of co-located inference threads with no query fusion.
 *  - baselineSearch(): the combined baseline used in Fig 14 —
 *    DeepRecSys on CPU-only servers, the better of DeepRecSys-CPU and
 *    Baymax-GPU on accelerated servers.
 */
#pragma once

#include "sched/gradient_search.h"

namespace hercules::sched {

/** DeepRecSys: threads = cores, 1 core each, batch-size hill climb. */
SearchResult deepRecSysSearch(const hw::ServerSpec& server,
                              const model::Model& m, double sla_ms,
                              const SearchOptions& opt);

/**
 * DeepRecSys on the accelerator: a single inference thread, no query
 * fusion (the (1, 1) points of Fig 6).
 *
 * @param allow_partition false (default): the scheduler cannot split a
 *        model, so it only runs fully device-resident models (the §III-B
 *        characterization setting); true: the Hercules locality-aware
 *        partition is applied for it (the Fig 14 evaluation setting,
 *        where production models cannot run on the device otherwise).
 */
SearchResult deepRecSysGpuSearch(const hw::ServerSpec& server,
                                 const model::Model& m, double sla_ms,
                                 const SearchOptions& opt,
                                 bool allow_partition = false);

/** Baymax: co-location hill climb on the accelerator, no fusion. */
SearchResult baymaxSearch(const hw::ServerSpec& server,
                          const model::Model& m, double sla_ms,
                          const SearchOptions& opt,
                          bool allow_partition = false);

/**
 * The Fig 14 baseline for a given server type: DeepRecSys on the CPU
 * plus (on accelerated servers) Baymax with the locality-aware
 * partition applied, since the production models exceed device memory.
 */
SearchResult baselineSearch(const hw::ServerSpec& server,
                            const model::Model& m, double sla_ms,
                            const SearchOptions& opt);

}  // namespace hercules::sched
