#include "sched/config.h"

#include "util/logging.h"

namespace hercules::sched {

const char*
mappingName(Mapping m)
{
    switch (m) {
      case Mapping::CpuModelBased: return "cpu-model";
      case Mapping::CpuSdPipeline: return "cpu-sd";
      case Mapping::GpuModelBased: return "gpu-model";
      case Mapping::GpuSdPipeline: return "gpu-sd";
    }
    panic("unknown Mapping %d", static_cast<int>(m));
}

std::string
SchedulingConfig::str() const
{
    std::string s = mappingName(mapping);
    switch (mapping) {
      case Mapping::CpuModelBased:
        s += " " + std::to_string(cpu_threads) + "x" +
             std::to_string(cores_per_thread) + " b" +
             std::to_string(batch);
        break;
      case Mapping::CpuSdPipeline:
        s += " " + std::to_string(cpu_threads) + "x" +
             std::to_string(cores_per_thread) + "::" +
             std::to_string(dense_threads) + " b" + std::to_string(batch);
        break;
      case Mapping::GpuModelBased:
        s += " g" + std::to_string(gpu_threads) + " f" +
             std::to_string(fusion_limit) + " host" +
             std::to_string(cpu_threads) + "x" +
             std::to_string(cores_per_thread);
        break;
      case Mapping::GpuSdPipeline:
        s += " " + std::to_string(cpu_threads) + "x" +
             std::to_string(cores_per_thread) + " b" +
             std::to_string(batch) + " -> g" +
             std::to_string(gpu_threads) + " f" +
             std::to_string(fusion_limit);
        break;
    }
    return s;
}

std::string
SchedulingConfig::key() const
{
    std::string s;
    s.reserve(48);
    s += "m=";
    s += std::to_string(static_cast<int>(mapping));
    s += ";t=";
    s += std::to_string(cpu_threads);
    s += ";o=";
    s += std::to_string(cores_per_thread);
    s += ";dt=";
    s += std::to_string(dense_threads);
    s += ";b=";
    s += std::to_string(batch);
    s += ";g=";
    s += std::to_string(gpu_threads);
    s += ";f=";
    s += std::to_string(fusion_limit);
    s += ";fe=";
    s += fuse_elementwise ? '1' : '0';
    return s;
}

std::optional<SchedulingConfig>
SchedulingConfig::fromKey(const std::string& k)
{
    SchedulingConfig cfg;
    size_t pos = 0;
    unsigned seen = 0;  // bitmask: each field exactly once
    while (pos < k.size()) {
        size_t eq = k.find('=', pos);
        if (eq == std::string::npos)
            return std::nullopt;
        size_t end = k.find(';', eq);
        if (end == std::string::npos)
            end = k.size();
        std::string name = k.substr(pos, eq - pos);
        int value;
        try {
            value = std::stoi(k.substr(eq + 1, end - eq - 1));
        } catch (...) {
            return std::nullopt;
        }
        unsigned bit;
        if (name == "m") {
            if (value < 0 ||
                value > static_cast<int>(Mapping::GpuSdPipeline))
                return std::nullopt;
            cfg.mapping = static_cast<Mapping>(value);
            bit = 1u << 0;
        } else if (name == "t") {
            cfg.cpu_threads = value;
            bit = 1u << 1;
        } else if (name == "o") {
            cfg.cores_per_thread = value;
            bit = 1u << 2;
        } else if (name == "dt") {
            cfg.dense_threads = value;
            bit = 1u << 3;
        } else if (name == "b") {
            cfg.batch = value;
            bit = 1u << 4;
        } else if (name == "g") {
            cfg.gpu_threads = value;
            bit = 1u << 5;
        } else if (name == "f") {
            cfg.fusion_limit = value;
            bit = 1u << 6;
        } else if (name == "fe") {
            cfg.fuse_elementwise = value != 0;
            bit = 1u << 7;
        } else {
            return std::nullopt;
        }
        if (name != "m" && name != "fe" && value < 0)
            return std::nullopt;  // counts/limits are non-negative
        if (seen & bit)
            return std::nullopt;  // duplicate field
        seen |= bit;
        pos = end + 1;
    }
    if (seen != 0xffu)
        return std::nullopt;
    return cfg;
}

}  // namespace hercules::sched
