#include "sched/config.h"

#include "util/logging.h"

namespace hercules::sched {

const char*
mappingName(Mapping m)
{
    switch (m) {
      case Mapping::CpuModelBased: return "cpu-model";
      case Mapping::CpuSdPipeline: return "cpu-sd";
      case Mapping::GpuModelBased: return "gpu-model";
      case Mapping::GpuSdPipeline: return "gpu-sd";
    }
    panic("unknown Mapping %d", static_cast<int>(m));
}

std::string
SchedulingConfig::str() const
{
    std::string s = mappingName(mapping);
    switch (mapping) {
      case Mapping::CpuModelBased:
        s += " " + std::to_string(cpu_threads) + "x" +
             std::to_string(cores_per_thread) + " b" +
             std::to_string(batch);
        break;
      case Mapping::CpuSdPipeline:
        s += " " + std::to_string(cpu_threads) + "x" +
             std::to_string(cores_per_thread) + "::" +
             std::to_string(dense_threads) + " b" + std::to_string(batch);
        break;
      case Mapping::GpuModelBased:
        s += " g" + std::to_string(gpu_threads) + " f" +
             std::to_string(fusion_limit) + " host" +
             std::to_string(cpu_threads) + "x" +
             std::to_string(cores_per_thread);
        break;
      case Mapping::GpuSdPipeline:
        s += " " + std::to_string(cpu_threads) + "x" +
             std::to_string(cores_per_thread) + " b" +
             std::to_string(batch) + " -> g" +
             std::to_string(gpu_threads) + " f" +
             std::to_string(fusion_limit);
        break;
    }
    return s;
}

std::string
SchedulingConfig::key() const
{
    std::string s;
    s.reserve(48);
    s += "m=";
    s += std::to_string(static_cast<int>(mapping));
    s += ";t=";
    s += std::to_string(cpu_threads);
    s += ";o=";
    s += std::to_string(cores_per_thread);
    s += ";dt=";
    s += std::to_string(dense_threads);
    s += ";b=";
    s += std::to_string(batch);
    s += ";g=";
    s += std::to_string(gpu_threads);
    s += ";f=";
    s += std::to_string(fusion_limit);
    s += ";fe=";
    s += fuse_elementwise ? '1' : '0';
    return s;
}

}  // namespace hercules::sched
