#include "sched/config.h"

#include "util/logging.h"

namespace hercules::sched {

const char*
mappingName(Mapping m)
{
    switch (m) {
      case Mapping::CpuModelBased: return "cpu-model";
      case Mapping::CpuSdPipeline: return "cpu-sd";
      case Mapping::GpuModelBased: return "gpu-model";
      case Mapping::GpuSdPipeline: return "gpu-sd";
    }
    panic("unknown Mapping %d", static_cast<int>(m));
}

std::string
SchedulingConfig::str() const
{
    std::string s = mappingName(mapping);
    switch (mapping) {
      case Mapping::CpuModelBased:
        s += " " + std::to_string(cpu_threads) + "x" +
             std::to_string(cores_per_thread) + " b" +
             std::to_string(batch);
        break;
      case Mapping::CpuSdPipeline:
        s += " " + std::to_string(cpu_threads) + "x" +
             std::to_string(cores_per_thread) + "::" +
             std::to_string(dense_threads) + " b" + std::to_string(batch);
        break;
      case Mapping::GpuModelBased:
        s += " g" + std::to_string(gpu_threads) + " f" +
             std::to_string(fusion_limit) + " host" +
             std::to_string(cpu_threads) + "x" +
             std::to_string(cores_per_thread);
        break;
      case Mapping::GpuSdPipeline:
        s += " " + std::to_string(cpu_threads) + "x" +
             std::to_string(cores_per_thread) + " b" +
             std::to_string(batch) + " -> g" +
             std::to_string(gpu_threads) + " f" +
             std::to_string(fusion_limit);
        break;
    }
    return s;
}

}  // namespace hercules::sched
