/**
 * @file
 * The task-scheduling parallelism space Psp(M + D + O): axis
 * definitions, validity filtering, exhaustive enumeration (the oracle
 * the gradient search is tested against), and the pipeline-balance
 * heuristic that sizes DenseNet thread pools.
 */
#pragma once

#include <vector>

#include "hw/server.h"
#include "model/model_zoo.h"
#include "sched/config.h"

namespace hercules::sched {

/** Axis values defining the searchable space. */
struct SpaceOptions
{
    /** CPU sub-query batch sizes (data-parallelism axis). */
    std::vector<int> batches = {8, 16, 32, 64, 128, 256, 512, 1024};
    /** Accelerator query-fusion limits; 0 = no fusion. */
    std::vector<int> fusion_limits = {0,    500,  1000, 2000,
                                      4000, 6000};
    /** Upper bound on co-located accelerator threads. */
    int max_gpu_threads = 6;
    /** Upper bound on op-parallel workers per thread (paper: 1–4). */
    int max_cores_per_thread = 4;
    /** Host helper-thread counts for the accelerator cold path. */
    std::vector<int> host_helper_threads = {2, 8};
};

/** @return mappings the server/model pair can execute. */
std::vector<Mapping> applicableMappings(const hw::ServerSpec& server,
                                        const model::Model& m);

/**
 * Size the DenseNet pool to balance an S-D pipeline: the number of
 * 1-core dense threads whose aggregate service rate matches
 * `sparse_threads` sparse threads of `cores_per_thread` workers each
 * (computed from cost-model single-batch timings).
 *
 * @return dense thread count, or 0 when no cores remain.
 */
int balancedDenseThreads(const hw::ServerSpec& server,
                         const model::Model& m, int sparse_threads,
                         int cores_per_thread, int batch);

/**
 * Enumerate every valid configuration of one mapping (used by the
 * exhaustive-oracle search, the space-characterization benches and the
 * tests). The S-D pipeline enumerates explicit dense-thread counts;
 * the gradient search instead uses balancedDenseThreads().
 */
std::vector<SchedulingConfig> enumerateConfigs(
    const hw::ServerSpec& server, const model::Model& m, Mapping mapping,
    const SpaceOptions& opt = SpaceOptions{});

/**
 * Total valid configurations across every applicable mapping — the
 * denominator when reporting how little of Psp(M + D + O) the gradient
 * search (or the memoized engine) actually measures.
 */
size_t spaceSize(const hw::ServerSpec& server, const model::Model& m,
                 const SpaceOptions& opt = SpaceOptions{});

}  // namespace hercules::sched
