/**
 * @file
 * The task-scheduling configuration: one point in the parallelism space
 * Psp(M + D + O) of paper §IV-B.
 *
 *  - model-parallelism  (m): co-located inference threads (CPU) or
 *    co-located models (accelerator);
 *  - op-parallelism     (o): operator workers (cores) per CPU thread;
 *  - data-parallelism   (d): CPU sub-query batch size, or the
 *    accelerator query-fusion limit.
 *
 * Combined with the model-partition choice (model-based vs S-D
 * pipeline vs hot-split), a SchedulingConfig fully determines how a
 * server executes a workload.
 */
#pragma once

#include <optional>
#include <string>

#include "model/partition.h"

namespace hercules::sched {

/** How the (partitioned) model maps onto the server's devices. */
enum class Mapping {
    /** Whole graph per CPU thread (DeepRecSys-style host serving). */
    CpuModelBased,
    /** SparseNet threads feeding DenseNet threads on the CPU. */
    CpuSdPipeline,
    /** Hot-SparseNet + DenseNet on the accelerator; cold SparseNet on
     *  the host (Fig 10(d)). */
    GpuModelBased,
    /** SparseNet on the host, DenseNet on the accelerator (Fig 10(c)). */
    GpuSdPipeline,
};

/** @return printable mapping name. */
const char* mappingName(Mapping m);

/** One task-scheduling configuration. */
struct SchedulingConfig
{
    Mapping mapping = Mapping::CpuModelBased;

    // -- CPU side ------------------------------------------------------
    /** Inference threads (model-based) or SparseNet threads (pipeline
     *  and hot-split cold path). */
    int cpu_threads = 1;
    /** Op-parallel workers (physical cores) per CPU thread. */
    int cores_per_thread = 1;
    /** DenseNet threads (CpuSdPipeline only; 1 core each). */
    int dense_threads = 0;
    /** Sub-query batch size (data-parallelism on the host). */
    int batch = 32;

    // -- Accelerator side ----------------------------------------------
    /** Co-located inference threads on the accelerator. */
    int gpu_threads = 0;
    /** Query-fusion limit in items (0 = no fusion: one query/batch). */
    int fusion_limit = 0;

    /** Apply elementwise-operator fusion before execution. */
    bool fuse_elementwise = true;

    /** @return physical cores consumed on the host. */
    int hostCores() const
    {
        int sparse = cpu_threads * cores_per_thread;
        return mapping == Mapping::CpuSdPipeline ? sparse + dense_threads
                                                 : sparse;
    }

    /** @return true when the config uses the accelerator. */
    bool usesGpu() const
    {
        return mapping == Mapping::GpuModelBased ||
               mapping == Mapping::GpuSdPipeline;
    }

    /** @return compact human-readable description. */
    std::string str() const;

    /**
     * @return a canonical encoding of every field, suitable as a cache
     * key: two configurations compare equal iff their keys are equal
     * (unlike str(), which omits fields irrelevant to display).
     */
    std::string key() const;

    /**
     * Parse a key() encoding back into a configuration (the efficiency
     * table persists configs this way, so cached tuples can be
     * re-prepared and simulated).
     *
     * @return std::nullopt when the string is not a valid key.
     */
    static std::optional<SchedulingConfig> fromKey(const std::string& k);
};

}  // namespace hercules::sched
