#include "sched/space.h"

#include <algorithm>
#include <cmath>

#include "hw/cost_model.h"
#include "model/partition.h"
#include "sim/prepared.h"
#include "util/logging.h"

namespace hercules::sched {

std::vector<Mapping>
applicableMappings(const hw::ServerSpec& server, const model::Model& m)
{
    std::vector<Mapping> maps = {Mapping::CpuModelBased};
    if (m.graph.hasStage(model::Stage::Sparse) &&
        m.graph.hasStage(model::Stage::Dense))
        maps.push_back(Mapping::CpuSdPipeline);
    if (server.hasGpu()) {
        maps.push_back(Mapping::GpuModelBased);
        if (m.graph.hasStage(model::Stage::Sparse))
            maps.push_back(Mapping::GpuSdPipeline);
    }
    return maps;
}

int
balancedDenseThreads(const hw::ServerSpec& server, const model::Model& m,
                     int sparse_threads, int cores_per_thread, int batch)
{
    int used = sparse_threads * cores_per_thread;
    int left = server.cpu.cores - used;
    if (left <= 0)
        return 0;

    hw::CostModel cost(server);
    model::Graph sparse = model::sparseSubgraph(m.graph);
    model::Graph dense = model::denseSubgraph(m.graph);
    if (sparse.size() == 0 || dense.size() == 0)
        return std::min(1, left);

    hw::CpuExecContext scx;
    scx.workers = cores_per_thread;
    scx.mem_bw_gbps = cost.perThreadBwGbps(sparse_threads);
    scx.use_nmp = server.hasNmp();
    scx.nmp_share = 1.0 / std::max(sparse_threads, 1);
    double sparse_us = cost.cpuGraphTiming(sparse, batch, scx).latency_us;

    hw::CpuExecContext dcx;
    dcx.workers = 1;
    dcx.mem_bw_gbps = scx.mem_bw_gbps;
    double dense_us = cost.cpuGraphTiming(dense, batch, dcx).latency_us;

    // Dense threads needed so the dense stage keeps up with the sparse
    // stage's aggregate output rate.
    double needed = std::ceil(static_cast<double>(sparse_threads) *
                              dense_us / std::max(sparse_us, 1e-9));
    return std::clamp(static_cast<int>(needed), 1, left);
}

std::vector<SchedulingConfig>
enumerateConfigs(const hw::ServerSpec& server, const model::Model& m,
                 Mapping mapping, const SpaceOptions& opt)
{
    std::vector<SchedulingConfig> out;
    int cores = server.cpu.cores;
    auto push = [&](SchedulingConfig cfg) {
        if (!sim::validateConfig(server, m, cfg))
            out.push_back(std::move(cfg));
    };

    switch (mapping) {
      case Mapping::CpuModelBased:
        for (int o = 1; o <= std::min(opt.max_cores_per_thread, cores);
             ++o) {
            for (int t = 1; t * o <= cores; ++t) {
                for (int b : opt.batches) {
                    SchedulingConfig cfg;
                    cfg.mapping = mapping;
                    cfg.cpu_threads = t;
                    cfg.cores_per_thread = o;
                    cfg.batch = b;
                    push(cfg);
                }
            }
        }
        break;

      case Mapping::CpuSdPipeline:
        for (int o = 1; o <= std::min(opt.max_cores_per_thread, cores);
             ++o) {
            for (int t = 1; t * o < cores; ++t) {
                for (int d = 1; t * o + d <= cores; ++d) {
                    for (int b : opt.batches) {
                        SchedulingConfig cfg;
                        cfg.mapping = mapping;
                        cfg.cpu_threads = t;
                        cfg.cores_per_thread = o;
                        cfg.dense_threads = d;
                        cfg.batch = b;
                        push(cfg);
                    }
                }
            }
        }
        break;

      case Mapping::GpuModelBased:
        for (int g = 1; g <= opt.max_gpu_threads; ++g) {
            for (int f : opt.fusion_limits) {
                // Host helpers only matter when the hot split leaves a
                // cold fraction; try the configured options plus the
                // trivial single dispatcher thread.
                std::vector<int> helpers = {1};
                for (int h : opt.host_helper_threads)
                    if (h <= cores)
                        helpers.push_back(h);
                for (int h : helpers) {
                    SchedulingConfig cfg;
                    cfg.mapping = mapping;
                    cfg.gpu_threads = g;
                    cfg.fusion_limit = f;
                    cfg.cpu_threads = h;
                    cfg.cores_per_thread = 1;
                    push(cfg);
                }
            }
        }
        break;

      case Mapping::GpuSdPipeline:
        for (int o = 1; o <= std::min(opt.max_cores_per_thread, cores);
             ++o) {
            for (int t = 1; t * o <= cores; ++t) {
                for (int b : opt.batches) {
                    for (int g = 1; g <= opt.max_gpu_threads; ++g) {
                        for (int f : opt.fusion_limits) {
                            SchedulingConfig cfg;
                            cfg.mapping = mapping;
                            cfg.cpu_threads = t;
                            cfg.cores_per_thread = o;
                            cfg.batch = b;
                            cfg.gpu_threads = g;
                            cfg.fusion_limit = f;
                            push(cfg);
                        }
                    }
                }
            }
        }
        break;
    }
    return out;
}

size_t
spaceSize(const hw::ServerSpec& server, const model::Model& m,
          const SpaceOptions& opt)
{
    size_t total = 0;
    for (Mapping mapping : applicableMappings(server, m))
        total += enumerateConfigs(server, m, mapping, opt).size();
    return total;
}

}  // namespace hercules::sched
