/**
 * @file
 * Gradient-based task-scheduling search (paper Algorithm 1).
 *
 * For each op-parallelism choice, the search climbs the convex
 * Psp(M + D) surface from the minimal configuration (one thread,
 * smallest batch), each step evaluating the three neighbours — more
 * data-parallelism, more model-parallelism, or both — and moving to the
 * feasible neighbour with the highest latency-bounded throughput. The
 * outer op-parallelism loop stops when its per-o peak starts
 * decreasing; the overall exploration repeats per model-partition
 * strategy (model-based, S-D pipeline, hot-split).
 */
#pragma once

#include <limits>
#include <optional>
#include <vector>

// sched sits below core in layers.json; the search is parameterized on
// core::EvalEngine (memoization + parallel fan-out) rather than raw
// sim::measure calls. Inverting this edge would mean core re-exporting
// an evaluation interface sched defines — tracked as accepted debt.
// layer-lint: allow(core)
#include "core/eval_engine.h"
#include "sched/space.h"
#include "sim/measure.h"

namespace hercules::sched {

/** One evaluated configuration in a search trace. */
struct SearchStep
{
    SchedulingConfig cfg;
    double qps = -1.0;  ///< latency-bounded QPS; -1 when infeasible
    double tail_ms = 0.0;
    double peak_power_w = 0.0;
    double qps_per_watt = 0.0;
    bool accepted = false;  ///< became the current search position
};

/** Outcome of a search. */
struct SearchResult
{
    std::optional<SchedulingConfig> best;  ///< empty: nothing feasible
    sim::OperatingPoint best_point{};
    double best_qps = 0.0;
    std::vector<SearchStep> trace;  ///< every recorded step, in order
    /**
     * Distinct simulator measurements this search paid for: evaluation-
     * engine cache misses. Configurations served from the engine memo
     * (revisited across arms, partition strategies, or earlier searches
     * sharing the engine) count in cache_hits instead, so
     * trace.size() == evals + cache_hits.
     */
    int evals = 0;
    int cache_hits = 0;  ///< steps served from the engine memo
};

/** Search tuning knobs. */
struct SearchOptions
{
    SpaceOptions space{};
    sim::MeasureOptions measure{};
    /** Provisioned power budget (online serving); infinity offline. */
    double power_budget_w = std::numeric_limits<double>::infinity();
    /** Evaluation-engine knobs used when no shared engine is given. */
    core::EvalOptions eval{};
    /**
     * Shared evaluation engine (borrowed). nullptr: the search builds a
     * private engine from `eval`. Sharing one engine across searches
     * reuses its memo and thread pool — the offline profiler shares one
     * engine across every (server, model) cell.
     */
    core::EvalEngine* engine = nullptr;
};

/** Run Algorithm 1 for one model-partition strategy. */
SearchResult gradientSearchMapping(const hw::ServerSpec& server,
                                   const model::Model& m, Mapping mapping,
                                   double sla_ms,
                                   const SearchOptions& opt);

/**
 * The full Hercules task-scheduling exploration: Algorithm 1 across all
 * applicable partition strategies; returns the global best.
 */
SearchResult herculesTaskSearch(const hw::ServerSpec& server,
                                const model::Model& m, double sla_ms,
                                const SearchOptions& opt);

/**
 * Exhaustive oracle over one mapping's enumerated space. Exponentially
 * more measurements than the gradient search — used by tests (to check
 * gradient-search optimality) and space-characterization benches.
 */
SearchResult exhaustiveSearch(const hw::ServerSpec& server,
                              const model::Model& m, Mapping mapping,
                              double sla_ms, const SearchOptions& opt);

}  // namespace hercules::sched
