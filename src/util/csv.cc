#include "util/csv.h"

#include <fstream>
#include <sstream>

#include "util/logging.h"

namespace hercules {

CsvWriter::CsvWriter(std::vector<std::string> header)
    : header_(std::move(header))
{
    if (header_.empty())
        fatal("CsvWriter: empty header");
}

void
CsvWriter::addRow(const std::vector<std::string>& cells)
{
    if (cells.size() != header_.size())
        fatal("CsvWriter: row has %zu cells, expected %zu", cells.size(),
              header_.size());
    rows_.push_back(cells);
}

std::string
CsvWriter::escape(const std::string& cell)
{
    bool needs_quote = cell.find_first_of(",\"\n") != std::string::npos;
    if (!needs_quote)
        return cell;
    std::string out = "\"";
    for (char c : cell) {
        if (c == '"')
            out += "\"\"";
        else
            out += c;
    }
    out += "\"";
    return out;
}

std::string
CsvWriter::str() const
{
    std::ostringstream os;
    auto emit = [&](const std::vector<std::string>& row) {
        for (size_t i = 0; i < row.size(); ++i) {
            if (i)
                os << ",";
            os << escape(row[i]);
        }
        os << "\n";
    };
    emit(header_);
    for (const auto& r : rows_)
        emit(r);
    return os.str();
}

void
CsvWriter::write(const std::string& path) const
{
    std::ofstream f(path);
    if (!f)
        fatal("CsvWriter: cannot open %s for writing", path.c_str());
    f << str();
    if (!f)
        fatal("CsvWriter: write to %s failed", path.c_str());
}

std::vector<std::vector<std::string>>
parseCsv(const std::string& text)
{
    std::vector<std::vector<std::string>> rows;
    std::vector<std::string> row;
    std::string cell;
    bool in_quotes = false;
    bool cell_started = false;

    auto endCell = [&] {
        row.push_back(cell);
        cell.clear();
        cell_started = false;
    };
    auto endRow = [&] {
        endCell();
        rows.push_back(row);
        row.clear();
    };

    for (size_t i = 0; i < text.size(); ++i) {
        char c = text[i];
        if (in_quotes) {
            if (c == '"') {
                if (i + 1 < text.size() && text[i + 1] == '"') {
                    cell += '"';
                    ++i;
                } else {
                    in_quotes = false;
                }
            } else {
                cell += c;
            }
            continue;
        }
        switch (c) {
          case '"':
            in_quotes = true;
            cell_started = true;
            break;
          case ',':
            endCell();
            cell_started = true;  // next cell exists even if empty
            break;
          case '\n':
            endRow();
            break;
          case '\r':
            break;  // tolerate CRLF
          default:
            cell += c;
            cell_started = true;
        }
    }
    if (cell_started || !cell.empty() || !row.empty())
        endRow();
    return rows;
}

std::vector<std::vector<std::string>>
readCsvFile(const std::string& path)
{
    std::ifstream f(path);
    if (!f)
        fatal("readCsvFile: cannot open %s", path.c_str());
    std::ostringstream os;
    os << f.rdbuf();
    return parseCsv(os.str());
}

}  // namespace hercules
