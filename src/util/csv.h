/**
 * @file
 * Minimal CSV writer/reader. Used to persist efficiency tables from
 * offline profiling and to dump bench series for external plotting.
 */
#pragma once

#include <string>
#include <vector>

namespace hercules {

/** Accumulates rows and writes an RFC-4180-ish CSV file. */
class CsvWriter
{
  public:
    /** @param header column names, written as the first row. */
    explicit CsvWriter(std::vector<std::string> header);

    /** Append one row; must match the header width. */
    void addRow(const std::vector<std::string>& cells);

    /** Write everything to the given path; fatal() on I/O failure. */
    void write(const std::string& path) const;

    /** Render to a string (used by tests). */
    std::string str() const;

  private:
    static std::string escape(const std::string& cell);

    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

/**
 * Parse CSV text into rows of cells. Handles quoted cells with embedded
 * commas/quotes/newlines. The first row is returned like any other; the
 * caller decides whether it is a header.
 */
std::vector<std::vector<std::string>> parseCsv(const std::string& text);

/** Read and parse a CSV file; fatal() if the file cannot be opened. */
std::vector<std::vector<std::string>> readCsvFile(const std::string& path);

}  // namespace hercules
