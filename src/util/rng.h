/**
 * @file
 * Deterministic pseudo-random number generation and the distributions the
 * workload generators need (uniform, exponential, lognormal, Poisson,
 * Zipf).
 *
 * Everything is seeded explicitly so simulations, tests and benches are
 * reproducible bit-for-bit across runs.
 */
#pragma once

#include <cstdint>
#include <vector>

namespace hercules {

/**
 * SplitMix64 generator — tiny, fast, and statistically solid for
 * simulation purposes. Also used to derive independent child seeds.
 */
class Rng
{
  public:
    /** Construct with an explicit seed; equal seeds give equal streams. */
    explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ull) : state_(seed) {}

    /** @return the next raw 64-bit value. */
    uint64_t nextU64();

    /** @return an independent generator derived from this stream. */
    Rng fork();

    /** @return uniform double in [0, 1). */
    double uniform();

    /** @return uniform double in [lo, hi). */
    double uniform(double lo, double hi);

    /** @return uniform integer in [lo, hi] (inclusive). */
    int64_t uniformInt(int64_t lo, int64_t hi);

    /** @return exponentially distributed value with the given rate. */
    double exponential(double rate);

    /** @return standard normal via Box-Muller. */
    double normal();

    /** @return normal with given mean / standard deviation. */
    double normal(double mean, double stddev);

    /**
     * @return lognormal variate where mu/sigma parameterize the
     * underlying normal in log space.
     */
    double lognormal(double mu, double sigma);

    /**
     * @return Poisson-distributed count with the given mean.
     *
     * Uses Knuth's product method for small means and a normal
     * approximation beyond mean 64 (adequate for load generation).
     */
    uint64_t poisson(double mean);

  private:
    uint64_t state_;
};

/**
 * Analytic probability mass of the top-k ranks of a Zipf(n, s)
 * distribution: H_k(s) / H_n(s) with the generalized harmonic numbers
 * approximated by Euler-Maclaurin. Exact enough for hit-rate modeling
 * and O(1), unlike tabulating millions of ranks.
 */
double zipfTopMass(uint64_t n, double exponent, uint64_t k);

/**
 * Zipf-distributed integer sampler over [0, n) with exponent s.
 *
 * Uses an inverted-CDF table built once at construction; sampling is
 * O(log n). Models the temporal locality of embedding-index accesses in
 * production recommendation traces.
 */
class ZipfSampler
{
  public:
    /**
     * @param n        domain size (number of embedding rows).
     * @param exponent Zipf skew parameter (larger => more skewed).
     */
    ZipfSampler(uint64_t n, double exponent);

    /** Draw one index in [0, n). */
    uint64_t sample(Rng& rng) const;

    /** @return domain size. */
    uint64_t domain() const { return n_; }

    /** @return the probability mass of the top-k most popular indices. */
    double topMass(uint64_t k) const;

  private:
    uint64_t n_;
    std::vector<double> cdf_;  ///< cumulative probabilities, size n (capped)
    double tail_mass_;         ///< mass beyond the tabulated prefix
    uint64_t table_size_;      ///< number of explicitly tabulated ranks
};

}  // namespace hercules
