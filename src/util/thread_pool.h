/**
 * @file
 * A small work-sharing thread pool built around one primitive:
 * parallelFor(n, fn). The calling thread always participates, so a pool
 * sized 1 (or a pool on a single-core host) degenerates to a plain
 * serial loop with zero scheduling overhead in program order — the
 * property the evaluation engine relies on for bit-identical serial vs
 * parallel results.
 *
 * parallelFor may be called from inside a task (nested parallelism:
 * per-mapping searches spawn per-arm climbs which prefetch neighbour
 * evaluations). Nesting cannot deadlock: whoever claims an index runs
 * it to completion, and a nested caller drains its own indices itself
 * when no worker is free.
 */
#pragma once

#include <atomic>
#include <condition_variable>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace hercules::util {

class ThreadPool
{
  public:
    /**
     * @param threads total worker count including the caller; <= 0 uses
     *                the hardware concurrency.
     */
    explicit ThreadPool(int threads = 0)
    {
        if (threads <= 0)
            threads = hardwareThreads();
        for (int i = 1; i < threads; ++i)
            workers_.emplace_back([this] { workerLoop(); });
    }

    ~ThreadPool()
    {
        {
            std::lock_guard<std::mutex> lock(mu_);
            stop_ = true;
        }
        cv_.notify_all();
        for (auto& w : workers_)
            w.join();
    }

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    /** @return worker count including the calling thread. */
    int threads() const { return static_cast<int>(workers_.size()) + 1; }

    /** @return std::thread::hardware_concurrency(), at least 1. */
    static int
    hardwareThreads()
    {
        unsigned hw = std::thread::hardware_concurrency();
        return hw > 0 ? static_cast<int>(hw) : 1;
    }

    /**
     * Run fn(0) .. fn(n-1), possibly concurrently; returns once every
     * index completed. The caller claims indices too, in ascending
     * order, so with no free worker the loop runs serially in index
     * order. fn must not throw.
     */
    void
    parallelFor(size_t n, const std::function<void(size_t)>& fn)
    {
        if (n == 0)
            return;
        if (n == 1 || workers_.empty()) {
            for (size_t i = 0; i < n; ++i)
                fn(i);
            return;
        }

        auto job = std::make_shared<Job>();
        job->n = n;
        job->fn = &fn;
        {
            std::lock_guard<std::mutex> lock(mu_);
            jobs_.push_back(job);
        }
        cv_.notify_all();

        // The caller participates until no index is left to claim...
        while (claimAndRun(*job)) {
        }
        // ...then waits for indices claimed by workers to finish.
        std::unique_lock<std::mutex> lock(job->m);
        job->cv.wait(lock, [&] {
            return job->done.load(std::memory_order_acquire) == job->n;
        });
    }

  private:
    struct Job
    {
        size_t n = 0;
        const std::function<void(size_t)>* fn = nullptr;
        std::atomic<size_t> next{0};
        std::atomic<size_t> done{0};
        std::mutex m;
        std::condition_variable cv;
    };

    /** Claim one index of `job` and run it. @return false if drained. */
    bool
    claimAndRun(Job& job)
    {
        size_t i = job.next.fetch_add(1, std::memory_order_relaxed);
        if (i >= job.n)
            return false;
        (*job.fn)(i);
        if (job.done.fetch_add(1, std::memory_order_acq_rel) + 1 ==
            job.n) {
            std::lock_guard<std::mutex> lock(job.m);
            job.cv.notify_all();
        }
        return true;
    }

    void
    workerLoop()
    {
        for (;;) {
            std::shared_ptr<Job> job;
            {
                std::unique_lock<std::mutex> lock(mu_);
                cv_.wait(lock, [&] { return stop_ || !jobs_.empty(); });
                if (stop_)
                    return;
                job = jobs_.front();
                // Drop jobs whose indices are all claimed; remaining
                // work (if any) finishes on the threads that claimed it.
                if (job->next.load(std::memory_order_relaxed) >= job->n) {
                    jobs_.pop_front();
                    continue;
                }
            }
            while (claimAndRun(*job)) {
            }
        }
    }

    std::vector<std::thread> workers_;
    std::mutex mu_;
    std::condition_variable cv_;
    std::deque<std::shared_ptr<Job>> jobs_;
    bool stop_ = false;
};

}  // namespace hercules::util
