/**
 * @file
 * A small work-sharing thread pool built around one primitive:
 * parallelFor(n, fn). The calling thread always participates, so a pool
 * sized 1 (or a pool on a single-core host) degenerates to a plain
 * serial loop with zero scheduling overhead in program order — the
 * property the evaluation engine relies on for bit-identical serial vs
 * parallel results.
 *
 * parallelFor may be called from inside a task (nested parallelism:
 * per-mapping searches spawn per-arm climbs which prefetch neighbour
 * evaluations). Nesting cannot deadlock: whoever claims an index runs
 * it to completion, and a nested caller drains its own indices itself
 * when no worker is free.
 *
 * Concurrency contract (machine-checked via thread_annotations.h):
 * the job queue and stop flag are guarded by mu_; per-job index/done
 * counters are deliberately lock-free atomics (claiming an index must
 * not serialize the workers), with each job's completion handshake
 * guarded by the job's own mutex.
 */
#pragma once

#include <atomic>
#include <deque>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "util/thread_annotations.h"

namespace hercules::util {

class ThreadPool
{
  public:
    /**
     * @param threads total worker count including the caller; <= 0 uses
     *                the hardware concurrency.
     */
    explicit ThreadPool(int threads = 0)
    {
        if (threads <= 0)
            threads = hardwareThreads();
        for (int i = 1; i < threads; ++i)
            workers_.emplace_back([this] { workerLoop(); });
    }

    ~ThreadPool()
    {
        {
            MutexLock lock(mu_);
            stop_ = true;
        }
        cv_.notifyAll();
        for (auto& w : workers_)
            w.join();
    }

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    /** @return worker count including the calling thread. */
    int threads() const { return static_cast<int>(workers_.size()) + 1; }

    /** @return std::thread::hardware_concurrency(), at least 1. */
    static int
    hardwareThreads()
    {
        unsigned hw = std::thread::hardware_concurrency();
        return hw > 0 ? static_cast<int>(hw) : 1;
    }

    /**
     * Run fn(0) .. fn(n-1), possibly concurrently; returns once every
     * index completed. The caller claims indices too, in ascending
     * order, so with no free worker the loop runs serially in index
     * order. fn must not throw.
     */
    void
    parallelFor(size_t n, const std::function<void(size_t)>& fn)
        EXCLUDES(mu_)
    {
        if (n == 0)
            return;
        if (n == 1 || workers_.empty()) {
            for (size_t i = 0; i < n; ++i)
                fn(i);
            return;
        }

        auto job = std::make_shared<Job>();
        job->n = n;
        job->fn = &fn;
        {
            MutexLock lock(mu_);
            jobs_.push_back(job);
        }
        cv_.notifyAll();

        // The caller participates until no index is left to claim...
        while (claimAndRun(*job)) {
        }
        // ...then waits for indices claimed by workers to finish.
        MutexLock lock(job->m);
        while (job->done.load(std::memory_order_acquire) != job->n)
            job->cv.wait(job->m);
    }

  private:
    struct Job
    {
        size_t n = 0;
        const std::function<void(size_t)>* fn = nullptr;
        /** Lock-free by design: index claims must not serialize. */
        std::atomic<size_t> next{0};
        std::atomic<size_t> done{0};
        /** Guards only the completion handshake around `cv`. */
        Mutex m;
        CondVar cv;
    };

    /** Claim one index of `job` and run it. @return false if drained. */
    bool
    claimAndRun(Job& job)
    {
        size_t i = job.next.fetch_add(1, std::memory_order_relaxed);
        if (i >= job.n)
            return false;
        (*job.fn)(i);
        if (job.done.fetch_add(1, std::memory_order_acq_rel) + 1 ==
            job.n) {
            MutexLock lock(job.m);
            job.cv.notifyAll();
        }
        return true;
    }

    void
    workerLoop() EXCLUDES(mu_)
    {
        for (;;) {
            std::shared_ptr<Job> job;
            {
                MutexLock lock(mu_);
                while (!stop_ && jobs_.empty())
                    cv_.wait(mu_);
                if (stop_)
                    return;
                job = jobs_.front();
                // Drop jobs whose indices are all claimed; remaining
                // work (if any) finishes on the threads that claimed it.
                if (job->next.load(std::memory_order_relaxed) >= job->n) {
                    jobs_.pop_front();
                    continue;
                }
            }
            while (claimAndRun(*job)) {
            }
        }
    }

    std::vector<std::thread> workers_;
    Mutex mu_;
    CondVar cv_;
    std::deque<std::shared_ptr<Job>> jobs_ GUARDED_BY(mu_);
    bool stop_ GUARDED_BY(mu_) = false;
};

}  // namespace hercules::util
