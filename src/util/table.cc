#include "util/table.h"

#include <cmath>
#include <cstdio>
#include <iostream>
#include <sstream>

#include "util/logging.h"

namespace hercules {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
    if (headers_.empty())
        fatal("TablePrinter: no columns");
}

void
TablePrinter::addRow(std::vector<std::string> cells)
{
    if (cells.size() != headers_.size())
        fatal("TablePrinter: row has %zu cells, expected %zu", cells.size(),
              headers_.size());
    rows_.push_back(std::move(cells));
}

void
TablePrinter::addSeparator()
{
    rows_.emplace_back();
}

size_t
TablePrinter::rows() const
{
    size_t n = 0;
    for (const auto& r : rows_)
        if (!r.empty())
            ++n;
    return n;
}

std::string
TablePrinter::str() const
{
    std::vector<size_t> widths(headers_.size());
    for (size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto& row : rows_)
        for (size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    auto hline = [&] {
        std::string s = "+";
        for (size_t w : widths)
            s += std::string(w + 2, '-') + "+";
        return s + "\n";
    };
    auto renderRow = [&](const std::vector<std::string>& row) {
        std::string s = "|";
        for (size_t c = 0; c < row.size(); ++c) {
            s += " " + row[c] + std::string(widths[c] - row[c].size(), ' ') +
                 " |";
        }
        return s + "\n";
    };

    std::string out;
    out += hline();
    out += renderRow(headers_);
    out += hline();
    for (const auto& row : rows_) {
        if (row.empty())
            out += hline();
        else
            out += renderRow(row);
    }
    out += hline();
    return out;
}

void
TablePrinter::print() const
{
    std::cout << str();
}

std::string
fmtDouble(double v, int decimals)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
    return buf;
}

std::string
fmtEng(double v, int decimals)
{
    const char* suffix = "";
    double scaled = v;
    double a = std::fabs(v);
    if (a >= 1e9) {
        scaled = v / 1e9;
        suffix = "G";
    } else if (a >= 1e6) {
        scaled = v / 1e6;
        suffix = "M";
    } else if (a >= 1e3) {
        scaled = v / 1e3;
        suffix = "K";
    }
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f%s", decimals, scaled, suffix);
    return buf;
}

std::string
fmtSpeedup(double v, int decimals)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*fx", decimals, v);
    return buf;
}

std::string
fmtPercent(double fraction, int decimals)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f%%", decimals, fraction * 100.0);
    return buf;
}

}  // namespace hercules
