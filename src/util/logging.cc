#include "util/logging.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <ctime>

#include "util/thread_annotations.h"

namespace hercules {

namespace {

/**
 * Level as an int, or -1 while uninitialized (consult HERCULES_LOG).
 * Deliberately lock-free: logEnabled() sits on hot paths and a torn
 * first read only risks resolving HERCULES_LOG twice, to the same
 * value.
 */
std::atomic<int> g_level{-1};

/**
 * Serializes whole report lines onto stderr, so messages emitted
 * concurrently from pool threads (EvalEngine measurements warn; the
 * parallel DES will log per-shard) never interleave mid-line. Leaf
 * lock: nothing is acquired while holding it.
 */
util::Mutex g_io_mu;

LogLevel
effectiveLevel()
{
    int lv = g_level.load(std::memory_order_relaxed);
    if (lv >= 0)
        return static_cast<LogLevel>(lv);
    LogLevel resolved = LogLevel::Warn;
    if (const char* env = std::getenv("HERCULES_LOG")) {
        auto parsed = parseLogLevel(env);
        if (parsed.has_value())
            resolved = *parsed;
        else
            std::fprintf(stderr,
                         "warn: HERCULES_LOG='%s' is not a log level "
                         "(debug|info|warn|quiet); using warn\n",
                         env);
    }
    g_level.store(static_cast<int>(resolved), std::memory_order_relaxed);
    return resolved;
}

void
vreport(const char* level, const char* tag, const char* fmt, va_list ap)
    EXCLUDES(g_io_mu)
{
    util::MutexLock lock(g_io_mu);
    if (tag != nullptr)
        std::fprintf(stderr, "%s: [%s] ", level, tag);
    else
        std::fprintf(stderr, "%s: ", level);
    std::vfprintf(stderr, fmt, ap);
    std::fprintf(stderr, "\n");
}

}  // namespace

const char*
logLevelName(LogLevel level)
{
    switch (level) {
      case LogLevel::Debug:
        return "debug";
      case LogLevel::Info:
        return "info";
      case LogLevel::Warn:
        return "warn";
      case LogLevel::Quiet:
        return "quiet";
    }
    return "?";
}

std::optional<LogLevel>
parseLogLevel(const std::string& name)
{
    for (LogLevel lv : {LogLevel::Debug, LogLevel::Info, LogLevel::Warn,
                        LogLevel::Quiet})
        if (name == logLevelName(lv))
            return lv;
    return std::nullopt;
}

LogLevel
logLevel()
{
    return effectiveLevel();
}

void
setLogLevel(LogLevel level)
{
    g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

bool
logEnabled(LogLevel level)
{
    return static_cast<int>(level) >= static_cast<int>(effectiveLevel());
}

void
logDebug(const char* tag, const char* fmt, ...)
{
    if (!logEnabled(LogLevel::Debug))
        return;
    va_list ap;
    va_start(ap, fmt);
    vreport("debug", tag, fmt, ap);
    va_end(ap);
}

void
logInfo(const char* tag, const char* fmt, ...)
{
    if (!logEnabled(LogLevel::Info))
        return;
    va_list ap;
    va_start(ap, fmt);
    vreport("info", tag, fmt, ap);
    va_end(ap);
}

void
logWarn(const char* tag, const char* fmt, ...)
{
    if (!logEnabled(LogLevel::Warn))
        return;
    va_list ap;
    va_start(ap, fmt);
    vreport("warn", tag, fmt, ap);
    va_end(ap);
}

void
setVerbose(bool verbose)
{
    LogLevel cur = effectiveLevel();
    if (verbose && static_cast<int>(cur) > static_cast<int>(LogLevel::Info))
        setLogLevel(LogLevel::Info);
    else if (!verbose &&
             static_cast<int>(cur) < static_cast<int>(LogLevel::Warn))
        setLogLevel(LogLevel::Warn);
}

bool
verboseEnabled()
{
    return logEnabled(LogLevel::Info);
}

void
inform(const char* fmt, ...)
{
    if (!logEnabled(LogLevel::Info))
        return;
    va_list ap;
    va_start(ap, fmt);
    vreport("info", nullptr, fmt, ap);
    va_end(ap);
}

void
warn(const char* fmt, ...)
{
    if (!logEnabled(LogLevel::Warn))
        return;
    va_list ap;
    va_start(ap, fmt);
    vreport("warn", nullptr, fmt, ap);
    va_end(ap);
}

void
fatal(const char* fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    vreport("fatal", nullptr, fmt, ap);
    va_end(ap);
    std::exit(1);
}

void
panic(const char* fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    vreport("panic", nullptr, fmt, ap);
    va_end(ap);
    std::abort();
}

std::string
isoUtcTimestamp()
{
    // Provenance only (BENCH_*.json headers), never result-affecting.
    // determinism-lint: allow(wall-clock)
    std::time_t t = std::time(nullptr);
    std::tm tm{};
    gmtime_r(&t, &tm);
    char buf[32];
    std::strftime(buf, sizeof buf, "%Y-%m-%dT%H:%M:%SZ", &tm);
    return buf;
}

}  // namespace hercules
