#include "util/logging.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <ctime>

namespace hercules {

namespace {
std::atomic<bool> g_verbose{false};

void
vreport(const char* tag, const char* fmt, va_list ap)
{
    std::fprintf(stderr, "%s: ", tag);
    std::vfprintf(stderr, fmt, ap);
    std::fprintf(stderr, "\n");
}
}  // namespace

void
setVerbose(bool verbose)
{
    g_verbose.store(verbose, std::memory_order_relaxed);
}

bool
verboseEnabled()
{
    return g_verbose.load(std::memory_order_relaxed);
}

void
inform(const char* fmt, ...)
{
    if (!verboseEnabled())
        return;
    va_list ap;
    va_start(ap, fmt);
    vreport("info", fmt, ap);
    va_end(ap);
}

void
warn(const char* fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    vreport("warn", fmt, ap);
    va_end(ap);
}

void
fatal(const char* fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    vreport("fatal", fmt, ap);
    va_end(ap);
    std::exit(1);
}

void
panic(const char* fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    vreport("panic", fmt, ap);
    va_end(ap);
    std::abort();
}

std::string
isoUtcTimestamp()
{
    // Provenance only (BENCH_*.json headers), never result-affecting.
    // determinism-lint: allow(wall-clock)
    std::time_t t = std::time(nullptr);
    std::tm tm{};
    gmtime_r(&t, &tm);
    char buf[32];
    std::strftime(buf, sizeof buf, "%Y-%m-%dT%H:%M:%SZ", &tm);
    return buf;
}

}  // namespace hercules
