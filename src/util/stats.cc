#include "util/stats.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace hercules {

void
OnlineStats::add(double x)
{
    ++count_;
    double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
}

double
OnlineStats::variance() const
{
    if (count_ < 2)
        return 0.0;
    return m2_ / static_cast<double>(count_ - 1);
}

double
OnlineStats::stddev() const
{
    return std::sqrt(variance());
}

void
OnlineStats::reset()
{
    *this = OnlineStats();
}

void
PercentileTracker::add(double x)
{
    samples_.push_back(x);
    sorted_ = false;
}

void
PercentileTracker::addAll(const std::vector<double>& xs)
{
    samples_.insert(samples_.end(), xs.begin(), xs.end());
    sorted_ = false;
}

void
PercentileTracker::sortIfNeeded() const
{
    if (!sorted_) {
        std::sort(samples_.begin(), samples_.end());
        sorted_ = true;
    }
}

double
PercentileTracker::percentile(double p) const
{
    if (samples_.empty())
        return 0.0;
    if (p < 0.0 || p > 100.0)
        panic("percentile out of range: %f", p);
    sortIfNeeded();
    // Nearest-rank definition: ceil(p/100 * N), 1-indexed.
    double rank = std::ceil(p / 100.0 * static_cast<double>(samples_.size()));
    size_t idx = rank < 1.0 ? 0 : static_cast<size_t>(rank) - 1;
    idx = std::min(idx, samples_.size() - 1);
    return samples_[idx];
}

double
PercentileTracker::mean() const
{
    if (samples_.empty())
        return 0.0;
    double s = 0.0;
    for (double x : samples_)
        s += x;
    return s / static_cast<double>(samples_.size());
}

double
PercentileTracker::max() const
{
    if (samples_.empty())
        return 0.0;
    sortIfNeeded();
    return samples_.back();
}

void
PercentileTracker::reset()
{
    samples_.clear();
    sorted_ = true;
}

Histogram::Histogram(double lo, double hi, size_t bins)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(bins)),
      counts_(bins, 0)
{
    if (bins == 0)
        fatal("Histogram: zero bins");
    if (hi <= lo)
        fatal("Histogram: hi %f <= lo %f", hi, lo);
}

void
Histogram::add(double x)
{
    double rel = (x - lo_) / width_;
    long bin = static_cast<long>(std::floor(rel));
    bin = std::clamp<long>(bin, 0, static_cast<long>(counts_.size()) - 1);
    ++counts_[static_cast<size_t>(bin)];
    ++total_;
}

uint64_t
Histogram::binCount(size_t bin) const
{
    if (bin >= counts_.size())
        panic("Histogram: bin %zu out of range", bin);
    return counts_[bin];
}

double
Histogram::binLo(size_t bin) const
{
    return lo_ + width_ * static_cast<double>(bin);
}

double
Histogram::binHi(size_t bin) const
{
    return lo_ + width_ * static_cast<double>(bin + 1);
}

double
Histogram::fraction(size_t bin) const
{
    if (total_ == 0)
        return 0.0;
    return static_cast<double>(binCount(bin)) / static_cast<double>(total_);
}

}  // namespace hercules
