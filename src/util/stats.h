/**
 * @file
 * Small statistics toolkit used throughout the simulator: running
 * mean/variance, percentile tracking for tail-latency measurement, and a
 * logarithmic histogram for workload characterization.
 */
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace hercules {

/** Numerically stable running mean / variance (Welford). */
class OnlineStats
{
  public:
    /** Add one observation. */
    void add(double x);

    /** @return number of observations. */
    size_t count() const { return count_; }

    /** @return sample mean (0 when empty). */
    double mean() const { return count_ ? mean_ : 0.0; }

    /** @return sample variance (0 with fewer than two observations). */
    double variance() const;

    /** @return sample standard deviation. */
    double stddev() const;

    /** @return smallest observation (+inf when empty). */
    double min() const { return min_; }

    /** @return largest observation (-inf when empty). */
    double max() const { return max_; }

    /** @return sum of all observations. */
    double sum() const { return mean_ * static_cast<double>(count_); }

    /** Reset to the empty state. */
    void reset();

  private:
    size_t count_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 1e300;
    double max_ = -1e300;
};

/**
 * Exact percentile tracker: stores all samples and sorts on demand.
 *
 * Simulation runs collect a few thousand latency samples, so exact
 * storage is cheap and avoids quantile-sketch approximation error in
 * tests that assert tail behaviour.
 */
class PercentileTracker
{
  public:
    /** Add one sample. */
    void add(double x);

    /** Add many samples. */
    void addAll(const std::vector<double>& xs);

    /** @return number of samples. */
    size_t count() const { return samples_.size(); }

    /**
     * @param p percentile in [0, 100].
     * @return the p-th percentile via nearest-rank; 0 when empty.
     */
    double percentile(double p) const;

    /** Convenience accessors for the tails the paper reports. */
    double p50() const { return percentile(50.0); }
    double p75() const { return percentile(75.0); }
    double p95() const { return percentile(95.0); }
    double p99() const { return percentile(99.0); }

    /** @return sample mean (0 when empty). */
    double mean() const;

    /** @return largest sample (0 when empty). */
    double max() const;

    /** Remove all samples. */
    void reset();

  private:
    void sortIfNeeded() const;

    mutable std::vector<double> samples_;
    mutable bool sorted_ = true;
};

/**
 * Histogram with fixed-width bins over [lo, hi); out-of-range samples are
 * clamped into the first/last bin.
 */
class Histogram
{
  public:
    /**
     * @param lo    inclusive lower bound of the tracked range.
     * @param hi    exclusive upper bound of the tracked range.
     * @param bins  number of equal-width bins (must be > 0).
     */
    Histogram(double lo, double hi, size_t bins);

    /** Add one sample. */
    void add(double x);

    /** @return count in the given bin. */
    uint64_t binCount(size_t bin) const;

    /** @return total number of samples. */
    uint64_t total() const { return total_; }

    /** @return number of bins. */
    size_t bins() const { return counts_.size(); }

    /** @return inclusive lower edge of the given bin. */
    double binLo(size_t bin) const;

    /** @return exclusive upper edge of the given bin. */
    double binHi(size_t bin) const;

    /** @return fraction of samples in the given bin (0 when empty). */
    double fraction(size_t bin) const;

  private:
    double lo_;
    double hi_;
    double width_;
    std::vector<uint64_t> counts_;
    uint64_t total_ = 0;
};

}  // namespace hercules
