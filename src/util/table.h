/**
 * @file
 * Aligned console table printer used by the bench harnesses so every
 * reproduced paper table/figure prints in a uniform, readable format.
 */
#pragma once

#include <string>
#include <vector>

namespace hercules {

/**
 * Collects rows of string cells and prints them with column alignment.
 *
 * Typical use:
 * @code
 *   TablePrinter t({"Model", "QPS", "QPS/W"});
 *   t.addRow({"DLRM-RMC1", fmt(qps), fmt(eff)});
 *   t.print(std::cout);
 * @endcode
 */
class TablePrinter
{
  public:
    /** @param headers column titles; fixes the column count. */
    explicit TablePrinter(std::vector<std::string> headers);

    /** Append one row; must match the header column count. */
    void addRow(std::vector<std::string> cells);

    /** Insert a horizontal separator row. */
    void addSeparator();

    /** Render the table to a string. */
    std::string str() const;

    /** Print to stdout. */
    void print() const;

    /** @return number of data rows (separators excluded). */
    size_t rows() const;

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;  ///< empty vec == separator
};

/** Format a double with the given number of decimals. */
std::string fmtDouble(double v, int decimals = 2);

/** Format a double in engineering style: 12.3K, 4.56M, ... */
std::string fmtEng(double v, int decimals = 1);

/** Format a ratio as a speedup, e.g. "3.58x". */
std::string fmtSpeedup(double v, int decimals = 2);

/** Format a fraction as a percentage, e.g. "47.7%". */
std::string fmtPercent(double fraction, int decimals = 1);

}  // namespace hercules
