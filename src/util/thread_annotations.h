/**
 * @file
 * Clang thread-safety (capability) annotations, plus the annotated
 * locking primitives the concurrent core is written against.
 *
 * The macros expand to Clang's `__attribute__((capability(...)))`
 * family under Clang and to nothing everywhere else, so GCC builds are
 * untouched while the `clang-analysis` CI job compiles the whole tree
 * with `-Werror=thread-safety` and rejects any lock-discipline
 * violation at compile time — which mutex guards which member, which
 * functions require or exclude it — before TSan would need a test to
 * race on it.
 *
 * Discipline for new code:
 *  - every mutex-protected member is declared `GUARDED_BY(mu_)`;
 *  - functions called with the lock held are `REQUIRES(mu_)` (the
 *    conventional `Locked` suffix marks them);
 *  - public entry points that take the lock themselves are
 *    `EXCLUDES(mu_)` so accidental re-entry is a compile error;
 *  - deliberately lock-free state (atomics, immutable-after-ctor
 *    members) carries a comment instead of an annotation — the
 *    analysis has nothing to check, the reader still needs the why.
 *
 * std::mutex carries no capability attributes under libstdc++, so the
 * analysis cannot see through it; util::Mutex / util::MutexLock /
 * util::CondVar below are the thin annotated equivalents. They add no
 * state and no behavior — Mutex is exactly a std::mutex the analysis
 * can track.
 */
#pragma once

#include <condition_variable>
#include <mutex>

#if defined(__clang__)
#define HERCULES_TS_ATTRIBUTE(x) __attribute__((x))
#else
#define HERCULES_TS_ATTRIBUTE(x)  // no-op off Clang
#endif

/** Marks a class as a lockable capability (mutexes, roles). */
#define CAPABILITY(x) HERCULES_TS_ATTRIBUTE(capability(x))

/** Marks an RAII class that acquires in its ctor, releases in its dtor. */
#define SCOPED_CAPABILITY HERCULES_TS_ATTRIBUTE(scoped_lockable)

/** Data member readable/writable only while holding `x`. */
#define GUARDED_BY(x) HERCULES_TS_ATTRIBUTE(guarded_by(x))

/** Pointer member whose *pointee* is protected by `x`. */
#define PT_GUARDED_BY(x) HERCULES_TS_ATTRIBUTE(pt_guarded_by(x))

/** Function callable only with the listed capabilities held. */
#define REQUIRES(...) \
    HERCULES_TS_ATTRIBUTE(requires_capability(__VA_ARGS__))

/** Function callable only with at least shared access to the list. */
#define REQUIRES_SHARED(...) \
    HERCULES_TS_ATTRIBUTE(requires_shared_capability(__VA_ARGS__))

/** Function that acquires the listed capabilities (held on return). */
#define ACQUIRE(...) \
    HERCULES_TS_ATTRIBUTE(acquire_capability(__VA_ARGS__))

/** Function that releases the listed capabilities. */
#define RELEASE(...) \
    HERCULES_TS_ATTRIBUTE(release_capability(__VA_ARGS__))

/** Function that acquires the capability iff it returns `cond`. */
#define TRY_ACQUIRE(...) \
    HERCULES_TS_ATTRIBUTE(try_acquire_capability(__VA_ARGS__))

/** Function that must NOT be entered with the listed locks held. */
#define EXCLUDES(...) HERCULES_TS_ATTRIBUTE(locks_excluded(__VA_ARGS__))

/** Runtime assertion that the capability is already held. */
#define ASSERT_CAPABILITY(x) HERCULES_TS_ATTRIBUTE(assert_capability(x))

/** Function returning a reference to the capability guarding its result. */
#define RETURN_CAPABILITY(x) HERCULES_TS_ATTRIBUTE(lock_returned(x))

/** Opt a function out of the analysis (justify in a comment). */
#define NO_THREAD_SAFETY_ANALYSIS \
    HERCULES_TS_ATTRIBUTE(no_thread_safety_analysis)

namespace hercules::util {

/**
 * A std::mutex the thread-safety analysis can track. Same cost, same
 * semantics; only the type is annotated.
 */
class CAPABILITY("mutex") Mutex
{
  public:
    Mutex() = default;
    Mutex(const Mutex&) = delete;
    Mutex& operator=(const Mutex&) = delete;

    void lock() ACQUIRE() { mu_.lock(); }
    void unlock() RELEASE() { mu_.unlock(); }
    bool try_lock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

    /**
     * The wrapped std::mutex, for interop the analysis cannot model
     * (CondVar::wait re-locks through it). Holding the native handle
     * is invisible to the analysis — never lock through it directly.
     */
    std::mutex& native() { return mu_; }

  private:
    std::mutex mu_;
};

/** RAII lock for Mutex — an annotated std::lock_guard. */
class SCOPED_CAPABILITY MutexLock
{
  public:
    explicit MutexLock(Mutex& mu) ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
    ~MutexLock() RELEASE() { mu_.unlock(); }

    MutexLock(const MutexLock&) = delete;
    MutexLock& operator=(const MutexLock&) = delete;

  private:
    Mutex& mu_;
};

/**
 * Condition variable paired with util::Mutex. wait() must be called
 * with the mutex held (enforced at compile time) and holds it again on
 * return; use the classic while-loop around the predicate.
 */
class CondVar
{
  public:
    CondVar() = default;
    CondVar(const CondVar&) = delete;
    CondVar& operator=(const CondVar&) = delete;

    /** Atomically release `mu`, sleep, re-acquire before returning. */
    void
    wait(Mutex& mu) REQUIRES(mu)
    {
        std::unique_lock<std::mutex> native(mu.native(),
                                            std::adopt_lock);
        cv_.wait(native);
        native.release();  // still held: ownership stays with caller
    }

    void notifyOne() { cv_.notify_one(); }
    void notifyAll() { cv_.notify_all(); }

  private:
    std::condition_variable cv_;
};

}  // namespace hercules::util
