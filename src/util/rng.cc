#include "util/rng.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace hercules {

uint64_t
Rng::nextU64()
{
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

Rng
Rng::fork()
{
    return Rng(nextU64());
}

double
Rng::uniform()
{
    // 53 high-quality bits -> double in [0, 1).
    return static_cast<double>(nextU64() >> 11) * 0x1.0p-53;
}

double
Rng::uniform(double lo, double hi)
{
    return lo + (hi - lo) * uniform();
}

int64_t
Rng::uniformInt(int64_t lo, int64_t hi)
{
    if (lo > hi)
        panic("uniformInt: lo %lld > hi %lld", static_cast<long long>(lo),
              static_cast<long long>(hi));
    uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
    return lo + static_cast<int64_t>(nextU64() % span);
}

double
Rng::exponential(double rate)
{
    if (rate <= 0.0)
        panic("exponential: non-positive rate %f", rate);
    double u = uniform();
    // Guard against log(0).
    if (u <= 0.0)
        u = 0x1.0p-53;
    return -std::log(u) / rate;
}

double
Rng::normal()
{
    // Box-Muller; one value per call keeps the stream stateless.
    double u1 = uniform();
    double u2 = uniform();
    if (u1 <= 0.0)
        u1 = 0x1.0p-53;
    return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
}

double
Rng::normal(double mean, double stddev)
{
    return mean + stddev * normal();
}

double
Rng::lognormal(double mu, double sigma)
{
    return std::exp(normal(mu, sigma));
}

uint64_t
Rng::poisson(double mean)
{
    if (mean < 0.0)
        panic("poisson: negative mean %f", mean);
    if (mean == 0.0)
        return 0;
    if (mean > 64.0) {
        // Normal approximation with continuity correction.
        double v = normal(mean, std::sqrt(mean));
        return v < 0.0 ? 0 : static_cast<uint64_t>(v + 0.5);
    }
    const double limit = std::exp(-mean);
    double prod = 1.0;
    uint64_t count = 0;
    do {
        prod *= uniform();
        ++count;
    } while (prod > limit);
    return count - 1;
}

namespace {

/** Euler-Maclaurin approximation of H_m(s) = sum_{i=1..m} i^-s. */
double
harmonicApprox(double m, double s)
{
    if (m < 1.0)
        return 0.0;
    if (m <= 32.0) {
        double sum = 0.0;
        for (int i = 1; i <= static_cast<int>(m); ++i)
            sum += std::pow(i, -s);
        return sum;
    }
    double tail;
    if (std::abs(s - 1.0) < 1e-9)
        tail = std::log(m / 32.0);
    else
        tail = (std::pow(m, 1.0 - s) - std::pow(32.0, 1.0 - s)) /
               (1.0 - s);
    return harmonicApprox(32.0, s) + tail +
           0.5 * (std::pow(m, -s) - std::pow(32.0, -s));
}

}  // namespace

double
zipfTopMass(uint64_t n, double exponent, uint64_t k)
{
    if (n == 0)
        fatal("zipfTopMass: empty domain");
    if (k == 0)
        return 0.0;
    if (k >= n)
        return 1.0;
    return harmonicApprox(static_cast<double>(k), exponent) /
           harmonicApprox(static_cast<double>(n), exponent);
}

ZipfSampler::ZipfSampler(uint64_t n, double exponent) : n_(n)
{
    if (n == 0)
        fatal("ZipfSampler: empty domain");
    if (exponent < 0.0)
        fatal("ZipfSampler: negative exponent %f", exponent);

    // Tabulate up to 1M ranks explicitly; the tail (if any) is served from
    // a uniform remainder. Production embedding tables can have hundreds
    // of millions of rows and full tabulation would be wasteful while the
    // tail mass is tiny for the skews we model.
    table_size_ = std::min<uint64_t>(n, 1u << 20);
    cdf_.resize(table_size_);
    double sum = 0.0;
    for (uint64_t i = 0; i < table_size_; ++i) {
        sum += 1.0 / std::pow(static_cast<double>(i + 1), exponent);
        cdf_[i] = sum;
    }
    // Approximate the tail mass by the integral of x^-s from table_size_
    // to n (exact enough for sampling purposes).
    double tail = 0.0;
    if (n > table_size_) {
        double s = exponent;
        double a = static_cast<double>(table_size_);
        double b = static_cast<double>(n);
        if (std::abs(s - 1.0) < 1e-9)
            tail = std::log(b / a);
        else
            tail = (std::pow(b, 1.0 - s) - std::pow(a, 1.0 - s)) / (1.0 - s);
    }
    tail_mass_ = tail;
    double total = sum + tail;
    for (auto& c : cdf_)
        c /= total;
    tail_mass_ /= total;
}

uint64_t
ZipfSampler::sample(Rng& rng) const
{
    double u = rng.uniform();
    if (u < cdf_.back()) {
        auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
        return static_cast<uint64_t>(it - cdf_.begin());
    }
    // Tail: uniform over [table_size_, n).
    uint64_t span = n_ - table_size_;
    if (span == 0)
        return n_ - 1;
    return table_size_ + rng.nextU64() % span;
}

double
ZipfSampler::topMass(uint64_t k) const
{
    if (k == 0)
        return 0.0;
    if (k >= table_size_)
        return cdf_.back();
    return cdf_[k - 1];
}

}  // namespace hercules
