/**
 * @file
 * Status/error reporting helpers in the gem5 tradition.
 *
 * - inform(): normal operating messages.
 * - warn():   something questionable happened but execution continues.
 * - fatal():  unrecoverable *user* error (bad configuration / arguments);
 *             exits with status 1.
 * - panic():  unrecoverable *internal* bug (broken invariant); aborts.
 */
#pragma once

#include <cstdarg>
#include <string>

namespace hercules {

/** Print an informational message to stderr (printf-style). */
void inform(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/** Print a warning message to stderr (printf-style). */
void warn(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/**
 * Report an unrecoverable user error and exit(1).
 *
 * Use for invalid configurations or arguments — conditions that are the
 * caller's fault, not a bug in the library.
 */
[[noreturn]] void fatal(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * Report a broken internal invariant and abort().
 *
 * Use for conditions that should be impossible regardless of user input.
 */
[[noreturn]] void panic(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * The current UTC time as ISO-8601 ("2026-01-31T12:34:56Z") — the
 * provenance stamp every emitted report JSON carries.
 */
std::string isoUtcTimestamp();

/** Global verbosity switch for inform(); warnings always print. */
void setVerbose(bool verbose);

/** @return whether inform() output is enabled. */
bool verboseEnabled();

}  // namespace hercules
