/**
 * @file
 * Status/error reporting helpers in the gem5 tradition, with leveled,
 * tagged output.
 *
 * - logDebug()/logInfo()/logWarn(): leveled messages with a subsystem
 *   tag ("obs", "scenario", ...), gated on the global log level.
 * - inform(): normal operating messages (Info level, untagged).
 * - warn():   something questionable happened but execution continues.
 * - fatal():  unrecoverable *user* error (bad configuration / arguments);
 *             exits with status 1.
 * - panic():  unrecoverable *internal* bug (broken invariant); aborts.
 *
 * The level defaults to Warn and can be overridden by the HERCULES_LOG
 * environment variable ("debug", "info", "warn", "quiet") or
 * programmatically via setLogLevel(). fatal()/panic() always print.
 */
#pragma once

#include <cstdarg>
#include <optional>
#include <string>

namespace hercules {

/** Log verbosity, most to least verbose. Quiet silences even warn(). */
enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Quiet = 3 };

/** @return display name ("debug", "info", "warn", "quiet"). */
const char* logLevelName(LogLevel level);

/** Parse a name as printed by logLevelName(); nullopt when unknown. */
std::optional<LogLevel> parseLogLevel(const std::string& name);

/**
 * The effective log level: the last setLogLevel() value, else the
 * HERCULES_LOG environment variable, else Warn.
 */
LogLevel logLevel();

/** Override the log level (beats HERCULES_LOG). */
void setLogLevel(LogLevel level);

/** @return whether messages at `level` currently print. */
bool logEnabled(LogLevel level);

/** Print "debug: [tag] ..." to stderr when Debug is enabled. */
void logDebug(const char* tag, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));

/** Print "info: [tag] ..." to stderr when Info is enabled. */
void logInfo(const char* tag, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));

/** Print "warn: [tag] ..." to stderr unless Quiet. */
void logWarn(const char* tag, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));

/** Print an informational message to stderr (printf-style, untagged). */
void inform(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/** Print a warning message to stderr (printf-style, untagged). */
void warn(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/**
 * Report an unrecoverable user error and exit(1).
 *
 * Use for invalid configurations or arguments — conditions that are the
 * caller's fault, not a bug in the library.
 */
[[noreturn]] void fatal(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * Report a broken internal invariant and abort().
 *
 * Use for conditions that should be impossible regardless of user input.
 */
[[noreturn]] void panic(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * The current UTC time as ISO-8601 ("2026-01-31T12:34:56Z") — the
 * provenance stamp every emitted report JSON carries.
 */
std::string isoUtcTimestamp();

/**
 * Legacy verbosity switch: true lowers the level to Info (enabling
 * inform()), false raises it back to Warn. setLogLevel()/HERCULES_LOG
 * are the finer-grained interface.
 */
void setVerbose(bool verbose);

/** @return whether inform() output is enabled (level <= Info). */
bool verboseEnabled();

}  // namespace hercules
