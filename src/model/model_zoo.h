/**
 * @file
 * The six industry-representative recommendation models of Table I:
 * DLRM-RMC1/RMC2/RMC3 (Meta social media), MT-WnD (Google video),
 * DIN / DIEN (Alibaba e-commerce).
 *
 * Each model is built as a computation graph in both its production-scale
 * variant (tens of GB of embeddings; requires HW-aware partitioning on
 * accelerators) and the small variant used by the paper's accelerator
 * characterization (fits in 16 GB of HBM).
 */
#pragma once

#include <string>
#include <vector>

#include "model/graph.h"

namespace hercules::model {

/** The six models of Table I. */
enum class ModelId { DlrmRmc1, DlrmRmc2, DlrmRmc3, MtWnd, Din, Dien };

/** Production-scale vs. small (GPU-resident) configuration. */
enum class Variant { Prod, Small };

/** @return all six model ids in Table I order. */
const std::vector<ModelId>& allModels();

/** @return canonical display name, e.g. "DLRM-RMC1". */
const char* modelName(ModelId id);

/** @return the service category from Table I, e.g. "Social Media". */
const char* modelService(ModelId id);

/**
 * @return the SLA latency target (ms) the paper's evaluation assigns to
 * this model (Fig 15 caption): RMC1 20 ms, RMC2/RMC3/DIN 50 ms,
 * DIEN/MT-WnD 100 ms.
 */
double defaultSlaMs(ModelId id);

/**
 * A recommendation model: the computation graph plus the Table I
 * metadata the benches print and the partitioner consults.
 */
struct Model
{
    ModelId id = ModelId::DlrmRmc1;
    Variant variant = Variant::Prod;
    std::string name;          ///< display name including variant
    Graph graph;               ///< the computation graph Gm

    int num_tables = 0;        ///< embedding table count
    int64_t rows_min = 0;      ///< smallest table rows
    int64_t rows_max = 0;      ///< largest table rows
    int emb_dim = 0;           ///< embedding width
    double pooling_min = 1.0;  ///< lookups per item, low
    double pooling_max = 1.0;  ///< lookups per item, high
    bool pooled = false;       ///< multi-hot Gather-and-Reduce?
    double sla_ms = 0.0;       ///< default SLA latency target

    /** @return total embedding bytes (>95% of model footprint). */
    int64_t embeddingBytes() const;

    /** @return total parameter bytes of the dense part. */
    int64_t denseParamBytes() const;

    /** @return full model footprint in bytes. */
    int64_t totalBytes() const
    { return embeddingBytes() + denseParamBytes(); }
};

/**
 * Build a model by id/variant.
 *
 * Table rows are spread geometrically between rows_min and rows_max so
 * that table-size heterogeneity (and thus hot-split behaviour) matches
 * the production spread described in Table I.
 */
Model buildModel(ModelId id, Variant variant = Variant::Prod);

}  // namespace hercules::model
