/**
 * @file
 * Computation graph `Gm`: operator nodes plus dependency edges.
 *
 * The task scheduler partitions this graph (SparseNet `Gs`, DenseNet
 * `Gd`, Hot-SparseNet `Gs.hot`) and maps the pieces onto devices; the
 * simulator walks it in dependency order to model per-thread execution.
 */
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "model/op.h"

namespace hercules::model {

/** Which side of the sparse/dense split a node belongs to. */
enum class Stage { Sparse, Dense };

/** @return printable name for a stage. */
const char* stageName(Stage s);

/** One operator instance in a computation graph. */
struct Node
{
    int id = -1;               ///< index within the owning graph
    std::string name;          ///< unique human-readable name
    OpParams params;           ///< operator shape descriptor
    Stage stage = Stage::Dense;///< sparse/dense classification
    std::vector<int> deps;     ///< ids of nodes that must finish first

    /** @return the operator kind. */
    OpKind kind() const { return opKindOf(params); }
};

/**
 * A directed acyclic computation graph.
 *
 * Nodes are added in any order; edges reference node ids. The graph
 * validates acyclicity on demand and provides the queries the scheduler
 * needs: topological order, stage subsets, and dependency-chain depth
 * (which bounds op-parallel speedup — the root cause of the op-worker
 * idling the paper measures in Fig 5).
 */
class Graph
{
  public:
    /**
     * Add a node; returns its id.
     *
     * @param name   unique name (fatal on duplicates).
     * @param params operator descriptor.
     * @param stage  sparse/dense classification.
     * @param deps   ids of prerequisite nodes (must already exist).
     */
    int addNode(const std::string& name, OpParams params, Stage stage,
                const std::vector<int>& deps = {});

    /** @return node by id (panics when out of range). */
    const Node& node(int id) const;

    /** @return all nodes in insertion order. */
    const std::vector<Node>& nodes() const { return nodes_; }

    /** @return number of nodes. */
    int size() const { return static_cast<int>(nodes_.size()); }

    /**
     * @return node ids in a valid topological order; fatal on cycles.
     * The order is memoized and invalidated by addNode(), since the
     * simulator walks graphs millions of times.
     */
    const std::vector<int>& topoOrder() const;

    /** @return ids of all nodes in the given stage. */
    std::vector<int> stageNodes(Stage stage) const;

    /** @return true when the graph has at least one node of the stage. */
    bool hasStage(Stage stage) const;

    /**
     * Length (in nodes) of the longest dependency chain restricted to
     * the given node subset. With unlimited workers, execution time is
     * bounded below by this critical path.
     */
    int criticalPathLength(const std::vector<int>& subset) const;

    /** @return ids of nodes with no prerequisites. */
    std::vector<int> roots() const;

    /** @return id of a node by name, or -1 when absent. */
    int findNode(const std::string& name) const;

  private:
    std::vector<Node> nodes_;
    mutable std::vector<int> topo_cache_;  ///< memoized topoOrder()
};

}  // namespace hercules::model
