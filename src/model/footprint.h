/**
 * @file
 * Roofline-style cost descriptors: per-ranked-item FLOPs, DRAM traffic
 * and host-to-device input bytes for every operator and whole models.
 *
 * These numbers drive both the Fig 1 characterization (compute vs memory
 * footprint per query) and the hardware cost model in src/hw.
 *
 * Accounting rules:
 *  - Embedding tables are tens of GB and never cache-resident, so every
 *    gathered row is DRAM traffic.
 *  - Dense-layer weights are MBs and LLC/HBM-resident after the first
 *    touch, so steady-state FC/GRU/attention traffic is counted as
 *    compute only (the paper's models are either bandwidth-bound in the
 *    SparseNet or compute-bound in the DenseNet — Fig 1).
 *  - `input_bytes` counts what must cross PCIe when the operator runs on
 *    a discrete accelerator: embedding indices (8 B each) and root dense
 *    features. This is what makes DLRM-RMC3 data-loading-dominated on
 *    GPUs (Fig 7).
 */
#pragma once

#include "model/graph.h"
#include "model/model_zoo.h"

namespace hercules::model {

/** Per-ranked-item cost of one operator. */
struct OpCost
{
    double flops = 0.0;        ///< arithmetic operations
    double dram_bytes = 0.0;   ///< DRAM-resident traffic
    double input_bytes = 0.0;  ///< host->device transfer volume
    double output_bytes = 0.0; ///< operator output size (queue traffic)
};

/**
 * @param n        operator node.
 * @param is_root  true when the node has no intra-graph producers and
 *                 therefore reads model inputs (dense features).
 * @return expected per-item cost using mean pooling / sequence length.
 */
OpCost opCostPerItem(const Node& n, bool is_root);

/** Convenience overload: derives is_root from n.deps. */
OpCost opCostPerItem(const Node& n);

/** Aggregate per-item cost plus static footprint of a model. */
struct ModelFootprint
{
    double flops_per_item = 0.0;
    double dram_bytes_per_item = 0.0;
    double input_bytes_per_item = 0.0;
    int64_t emb_bytes = 0;      ///< embedding-table bytes
    int64_t param_bytes = 0;    ///< dense parameter bytes

    /** @return arithmetic intensity (FLOPs per DRAM byte). */
    double intensity() const
    {
        return dram_bytes_per_item > 0.0
            ? flops_per_item / dram_bytes_per_item
            : 1e9;
    }
};

/** Sum the per-item operator costs over a whole model. */
ModelFootprint analyzeModel(const Model& m);

}  // namespace hercules::model
