#include "model/footprint.h"

namespace hercules::model {

namespace {

/** Bytes of one embedding index on the wire (int64 ids in production). */
constexpr double kIndexBytes = 8.0;

struct CostVisitor
{
    bool is_root;

    OpCost operator()(const EmbeddingParams& p) const
    {
        OpCost c;
        double pooling = p.avgPooling();
        c.dram_bytes = pooling * p.emb_dim * 4.0;
        c.flops = p.pooled ? pooling * p.emb_dim : 0.0;
        c.input_bytes = pooling * kIndexBytes;
        double out_rows = p.pooled ? 1.0 : pooling;
        c.output_bytes = out_rows * p.emb_dim * 4.0;
        return c;
    }

    OpCost operator()(const FcParams& p) const
    {
        OpCost c;
        c.flops = 2.0 * p.in_dim * p.out_dim;
        if (is_root)
            c.input_bytes = p.in_dim * 4.0;
        c.output_bytes = p.out_dim * 4.0;
        return c;
    }

    OpCost operator()(const AttentionParams& p) const
    {
        OpCost c;
        double seq = p.avgSeqLen();
        // Activation unit per behaviour: concat(behaviour, candidate,
        // interaction) -> hidden -> scalar, then the weighted sum.
        double unit = 2.0 * (3.0 * p.behavior_dim * p.hidden_dim +
                             p.hidden_dim);
        c.flops = seq * (unit + 2.0 * p.behavior_dim);
        c.output_bytes = p.behavior_dim * 4.0;
        return c;
    }

    OpCost operator()(const GruParams& p) const
    {
        OpCost c;
        double seq = p.avgSeqLen();
        // 3 gates, each input and recurrent GEMV, per layer per step.
        double step = 6.0 * p.hidden_dim * (p.input_dim + p.hidden_dim);
        c.flops = p.layers * seq * step;
        c.output_bytes = static_cast<double>(p.hidden_dim) * 4.0;
        return c;
    }

    OpCost operator()(const InteractionParams& p) const
    {
        OpCost c;
        double pairs = 0.5 * p.num_features * (p.num_features - 1);
        c.flops = pairs * p.feature_dim * 2.0 +
                  static_cast<double>(p.num_features) * p.feature_dim;
        c.output_bytes = pairs * 4.0;
        return c;
    }

    OpCost operator()(const ConcatParams& p) const
    {
        OpCost c;
        c.flops = static_cast<double>(p.total_dim);  // pure data movement
        c.output_bytes = static_cast<double>(p.total_dim) * 4.0;
        return c;
    }

    OpCost operator()(const ActivationParams& p) const
    {
        OpCost c;
        c.flops = static_cast<double>(p.dim);
        c.output_bytes = static_cast<double>(p.dim) * 4.0;
        return c;
    }
};

}  // namespace

OpCost
opCostPerItem(const Node& n, bool is_root)
{
    return std::visit(CostVisitor{is_root}, n.params);
}

OpCost
opCostPerItem(const Node& n)
{
    return opCostPerItem(n, n.deps.empty());
}

ModelFootprint
analyzeModel(const Model& m)
{
    ModelFootprint f;
    for (const auto& n : m.graph.nodes()) {
        OpCost c = opCostPerItem(n);
        f.flops_per_item += c.flops;
        f.dram_bytes_per_item += c.dram_bytes;
        f.input_bytes_per_item += c.input_bytes;
    }
    f.emb_bytes = m.embeddingBytes();
    f.param_bytes = m.denseParamBytes();
    return f;
}

}  // namespace hercules::model
