#include "model/partition.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "util/logging.h"
#include "util/rng.h"

namespace hercules::model {

const char*
partitionKindName(PartitionKind k)
{
    switch (k) {
      case PartitionKind::ModelBased: return "model-based";
      case PartitionKind::SdPipeline: return "S-D pipeline";
      case PartitionKind::HotSplit:   return "hot-split";
    }
    panic("unknown PartitionKind %d", static_cast<int>(k));
}

Graph
subgraph(const Graph& g, const std::vector<int>& keep)
{
    std::unordered_map<int, int> remap;
    Graph out;
    for (int old_id : keep) {
        const Node& n = g.node(old_id);
        std::vector<int> deps;
        for (int d : n.deps) {
            auto it = remap.find(d);
            if (it != remap.end())
                deps.push_back(it->second);
        }
        int new_id = out.addNode(n.name, n.params, n.stage, deps);
        remap[old_id] = new_id;
    }
    return out;
}

Graph
sparseSubgraph(const Graph& g)
{
    return subgraph(g, g.stageNodes(Stage::Sparse));
}

Graph
denseSubgraph(const Graph& g)
{
    return subgraph(g, g.stageNodes(Stage::Dense));
}

HotSplit
computeHotSplit(const Model& m, int64_t capacity_bytes)
{
    if (capacity_bytes < 0)
        fatal("computeHotSplit: negative capacity");

    // Collect the embedding tables in graph order.
    std::vector<const EmbeddingParams*> tables;
    for (const auto& n : m.graph.nodes()) {
        if (n.kind() == OpKind::EmbeddingLookup)
            tables.push_back(&std::get<EmbeddingParams>(n.params));
    }

    HotSplit hs;
    hs.capacity_bytes = capacity_bytes;
    hs.hot_rows_per_table.assign(tables.size(), 0);
    if (tables.empty()) {
        hs.hit_rate = 1.0;
        return hs;
    }

    // Lookup traffic per table decides both the budget split and the
    // hit-rate weighting: a table touched 160 times per item matters far
    // more than a one-hot table.
    double total_traffic = 0.0;
    std::vector<double> traffic(tables.size());
    for (size_t t = 0; t < tables.size(); ++t) {
        traffic[t] = tables[t]->avgPooling();
        total_traffic += traffic[t];
    }

    // Greedy marginal-gain allocation: hand out the budget in chunks,
    // each chunk going to the table whose next hot rows capture the
    // most lookup traffic per byte. This is the locality-aware ranking
    // of Fig 10(a): hot rows are the Zipf head of each table, weighted
    // by how often the table is touched.
    const int kRounds = 192;
    int64_t chunk = std::max<int64_t>(capacity_bytes / kRounds, 4096);
    int64_t remaining = capacity_bytes;
    std::vector<int64_t> hot(tables.size(), 0);
    while (remaining > 0) {
        int best = -1;
        double best_gain = 0.0;
        int64_t best_rows = 0;
        for (size_t t = 0; t < tables.size(); ++t) {
            const EmbeddingParams* p = tables[t];
            if (hot[t] >= p->rows)
                continue;
            int64_t row_bytes = static_cast<int64_t>(p->emb_dim) * 4;
            int64_t take_rows = std::min<int64_t>(
                {p->rows - hot[t], std::max<int64_t>(chunk / row_bytes, 1),
                 remaining / row_bytes});
            if (take_rows <= 0)
                continue;
            double mass_now = zipfTopMass(
                static_cast<uint64_t>(p->rows), p->zipf_exponent,
                static_cast<uint64_t>(hot[t]));
            double mass_next = zipfTopMass(
                static_cast<uint64_t>(p->rows), p->zipf_exponent,
                static_cast<uint64_t>(hot[t] + take_rows));
            double gain = traffic[t] / total_traffic *
                          (mass_next - mass_now) /
                          static_cast<double>(take_rows * row_bytes);
            if (best < 0 || gain > best_gain) {
                best = static_cast<int>(t);
                best_gain = gain;
                best_rows = take_rows;
            }
        }
        if (best < 0)
            break;  // everything resident
        int64_t row_bytes =
            static_cast<int64_t>(tables[static_cast<size_t>(best)]
                                     ->emb_dim) * 4;
        hot[static_cast<size_t>(best)] += best_rows;
        remaining -= best_rows * row_bytes;
    }
    hs.hot_rows_per_table = hot;

    // Expected hit rate: traffic-weighted Zipf popularity mass of the
    // resident prefix of each table (hot rows are the most popular).
    double hit = 0.0;
    bool all_resident = true;
    for (size_t t = 0; t < tables.size(); ++t) {
        int64_t rows = hs.hot_rows_per_table[t];
        hs.hot_rows += rows;
        hs.hot_bytes += rows * tables[t]->emb_dim * 4;
        double mass = 0.0;
        if (rows >= tables[t]->rows) {
            mass = 1.0;
        } else if (rows > 0) {
            all_resident = false;
            mass = zipfTopMass(static_cast<uint64_t>(tables[t]->rows),
                               tables[t]->zipf_exponent,
                               static_cast<uint64_t>(rows));
        } else {
            all_resident = false;
        }
        hit += traffic[t] / total_traffic * mass;
    }
    // Exact 1.0 when everything is on-device (the weighted sum can land
    // a few ulps short).
    hs.hit_rate = all_resident ? 1.0 : std::min(1.0, hit);
    return hs;
}

Graph
fuseElementwise(const Graph& g)
{
    // An Activation is fuseable when it has exactly one dependency that
    // is a compute op (FC / GRU / Attention). Consumers of the
    // activation are rerouted to the producer.
    std::unordered_map<int, int> alias;  // removed id -> producer id
    std::vector<int> keep;
    for (const auto& n : g.nodes()) {
        bool fuseable = false;
        if (n.kind() == OpKind::Activation && n.deps.size() == 1) {
            OpKind dep_kind = g.node(n.deps[0]).kind();
            fuseable = dep_kind == OpKind::Fc || dep_kind == OpKind::Gru ||
                       dep_kind == OpKind::Attention;
        }
        if (fuseable) {
            int producer = n.deps[0];
            // Producer may itself have been aliased (not for activations,
            // but stay safe under chained fusion).
            auto it = alias.find(producer);
            alias[n.id] = it == alias.end() ? producer : it->second;
        } else {
            keep.push_back(n.id);
        }
    }

    Graph out;
    std::unordered_map<int, int> remap;
    for (int old_id : keep) {
        const Node& n = g.node(old_id);
        std::vector<int> deps;
        for (int d : n.deps) {
            auto a = alias.find(d);
            int resolved = a == alias.end() ? d : a->second;
            auto it = remap.find(resolved);
            if (it != remap.end())
                deps.push_back(it->second);
        }
        remap[old_id] = out.addNode(n.name, n.params, n.stage, deps);
    }
    return out;
}

}  // namespace hercules::model
