#include "model/graph.h"

#include <algorithm>
#include <unordered_set>

#include "util/logging.h"

namespace hercules::model {

const char*
opKindName(OpKind k)
{
    switch (k) {
      case OpKind::EmbeddingLookup: return "EmbeddingLookup";
      case OpKind::Fc:              return "FC";
      case OpKind::Attention:       return "Attention";
      case OpKind::Gru:             return "GRU";
      case OpKind::Interaction:     return "Interaction";
      case OpKind::Concat:          return "Concat";
      case OpKind::Activation:      return "Activation";
    }
    panic("unknown OpKind %d", static_cast<int>(k));
}

OpKind
opKindOf(const OpParams& params)
{
    struct Visitor
    {
        OpKind operator()(const EmbeddingParams&) const
        { return OpKind::EmbeddingLookup; }
        OpKind operator()(const FcParams&) const { return OpKind::Fc; }
        OpKind operator()(const AttentionParams&) const
        { return OpKind::Attention; }
        OpKind operator()(const GruParams&) const { return OpKind::Gru; }
        OpKind operator()(const InteractionParams&) const
        { return OpKind::Interaction; }
        OpKind operator()(const ConcatParams&) const
        { return OpKind::Concat; }
        OpKind operator()(const ActivationParams&) const
        { return OpKind::Activation; }
    };
    return std::visit(Visitor{}, params);
}

const char*
stageName(Stage s)
{
    return s == Stage::Sparse ? "Sparse" : "Dense";
}

int
Graph::addNode(const std::string& name, OpParams params, Stage stage,
               const std::vector<int>& deps)
{
    if (findNode(name) != -1)
        fatal("Graph: duplicate node name '%s'", name.c_str());
    for (int d : deps) {
        if (d < 0 || d >= size())
            fatal("Graph: node '%s' depends on unknown id %d", name.c_str(),
                  d);
    }
    Node n;
    n.id = size();
    n.name = name;
    n.params = std::move(params);
    n.stage = stage;
    n.deps = deps;
    nodes_.push_back(std::move(n));
    topo_cache_.clear();
    return nodes_.back().id;
}

const Node&
Graph::node(int id) const
{
    if (id < 0 || id >= size())
        panic("Graph: node id %d out of range [0, %d)", id, size());
    return nodes_[static_cast<size_t>(id)];
}

const std::vector<int>&
Graph::topoOrder() const
{
    if (!topo_cache_.empty() || nodes_.empty())
        return topo_cache_;
    std::vector<int> indeg(nodes_.size(), 0);
    std::vector<std::vector<int>> out(nodes_.size());
    for (const auto& n : nodes_) {
        indeg[static_cast<size_t>(n.id)] = static_cast<int>(n.deps.size());
        for (int d : n.deps)
            out[static_cast<size_t>(d)].push_back(n.id);
    }
    std::vector<int> order;
    order.reserve(nodes_.size());
    std::vector<int> frontier;
    for (const auto& n : nodes_)
        if (n.deps.empty())
            frontier.push_back(n.id);
    while (!frontier.empty()) {
        int id = frontier.back();
        frontier.pop_back();
        order.push_back(id);
        for (int succ : out[static_cast<size_t>(id)]) {
            if (--indeg[static_cast<size_t>(succ)] == 0)
                frontier.push_back(succ);
        }
    }
    if (order.size() != nodes_.size())
        fatal("Graph: dependency cycle detected");
    topo_cache_ = std::move(order);
    return topo_cache_;
}

std::vector<int>
Graph::stageNodes(Stage stage) const
{
    std::vector<int> ids;
    for (const auto& n : nodes_)
        if (n.stage == stage)
            ids.push_back(n.id);
    return ids;
}

bool
Graph::hasStage(Stage stage) const
{
    return !stageNodes(stage).empty();
}

int
Graph::criticalPathLength(const std::vector<int>& subset) const
{
    std::unordered_set<int> in_set(subset.begin(), subset.end());
    std::vector<int> depth(nodes_.size(), 0);
    int best = 0;
    for (int id : topoOrder()) {
        if (!in_set.count(id))
            continue;
        int d = 1;
        for (int dep : node(id).deps) {
            if (in_set.count(dep))
                d = std::max(d, depth[static_cast<size_t>(dep)] + 1);
        }
        depth[static_cast<size_t>(id)] = d;
        best = std::max(best, d);
    }
    return best;
}

std::vector<int>
Graph::roots() const
{
    std::vector<int> ids;
    for (const auto& n : nodes_)
        if (n.deps.empty())
            ids.push_back(n.id);
    return ids;
}

int
Graph::findNode(const std::string& name) const
{
    for (const auto& n : nodes_)
        if (n.name == name)
            return n.id;
    return -1;
}

}  // namespace hercules::model
