/**
 * @file
 * Operator IR for recommendation-model computation graphs.
 *
 * The simulator never executes real tensor math; each operator carries
 * the *shape* information a roofline-style cost model needs (FLOPs and
 * bytes as a function of batch size and pooling factor). This mirrors how
 * the paper treats models: as computation graphs whose operators have
 * measurable latency/energy on each device.
 */
#pragma once

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

namespace hercules::model {

/** Operator categories found in the six production models (Table I). */
enum class OpKind {
    EmbeddingLookup,  ///< SparseLengthsSum-style gather(-and-reduce)
    Fc,               ///< fully-connected layer (GEMM)
    Attention,        ///< DIN-style local activation unit over behaviors
    Gru,              ///< DIEN-style recurrent unit over behaviors
    Interaction,      ///< dense/sparse feature interaction (dot products)
    Concat,           ///< feature concatenation
    Activation,       ///< elementwise (ReLU / sigmoid)
};

/** @return human-readable name of an operator kind. */
const char* opKindName(OpKind k);

/**
 * One embedding table lookup (and optional pooling).
 *
 * A multi-hot lookup gathers `pooling` rows per ranked item and reduces
 * them into a single vector (Gather-and-Reduce); a one-hot lookup
 * (`pooling == 1`) gathers a single row (Gather).
 */
struct EmbeddingParams
{
    int64_t rows = 0;          ///< number of rows in this table
    int emb_dim = 0;           ///< embedding vector width (fp32 elements)
    double pooling_min = 1.0;  ///< per-item pooling factor, lower bound
    double pooling_max = 1.0;  ///< per-item pooling factor, upper bound
    bool pooled = false;       ///< true => Gather-and-Reduce (SLS)
    double zipf_exponent = 0.9;///< index-locality skew (hot-split input)

    /** @return expected pooling factor (midpoint of the range). */
    double avgPooling() const { return 0.5 * (pooling_min + pooling_max); }

    /** @return table size in bytes (fp32 rows). */
    int64_t tableBytes() const { return rows * emb_dim * 4; }
};

/** One fully-connected layer: [in_dim -> out_dim] GEMM + bias. */
struct FcParams
{
    int in_dim = 0;
    int out_dim = 0;
};

/**
 * DIN-style attention: a small MLP evaluated per behavior-sequence
 * element against the candidate item.
 */
struct AttentionParams
{
    int behavior_dim = 0;     ///< embedding width of one behavior
    int hidden_dim = 0;       ///< activation-unit hidden width
    double seq_len_min = 1.0; ///< behavior sequence length, lower bound
    double seq_len_max = 1.0; ///< behavior sequence length, upper bound

    /** @return expected behavior-sequence length. */
    double avgSeqLen() const { return 0.5 * (seq_len_min + seq_len_max); }
};

/** DIEN-style GRU over the behavior sequence. */
struct GruParams
{
    int input_dim = 0;
    int hidden_dim = 0;
    double seq_len_min = 1.0;
    double seq_len_max = 1.0;
    int layers = 1;           ///< stacked GRU layers (DIEN: GRU + AUGRU)

    /** @return expected behavior-sequence length. */
    double avgSeqLen() const { return 0.5 * (seq_len_min + seq_len_max); }
};

/** Pairwise dot-product feature interaction over n vectors of width d. */
struct InteractionParams
{
    int num_features = 0;     ///< number of interacting vectors
    int feature_dim = 0;      ///< width of each vector
};

/** Concatenation of feature vectors (pure data movement). */
struct ConcatParams
{
    int64_t total_dim = 0;    ///< concatenated output width
};

/** Elementwise activation over a vector. */
struct ActivationParams
{
    int64_t dim = 0;
};

/** Tagged union of all operator parameter structs. */
using OpParams = std::variant<EmbeddingParams, FcParams, AttentionParams,
                              GruParams, InteractionParams, ConcatParams,
                              ActivationParams>;

/** @return the OpKind corresponding to the active OpParams alternative. */
OpKind opKindOf(const OpParams& params);

}  // namespace hercules::model
