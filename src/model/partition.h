/**
 * @file
 * HW-aware model partitioning (paper §IV-B, Fig 10):
 *
 *  - sparse/dense (S-D) split: SparseNet `Gs` = the embedding lookups
 *    (no inter-op dependencies), DenseNet `Gd` = everything else (the
 *    dependency-chained MLP/attention part);
 *  - locality-aware hot-embedding split: given an accelerator capacity
 *    budget, pick the most frequently accessed embedding rows per table
 *    (access frequency modeled by each table's Zipf skew) to form
 *    Hot-SparseNet `Gs.hot`, and report the expected hit rate;
 *  - element-wise operator fusion (TVM-style) to remove per-op launch
 *    overhead for activations.
 */
#pragma once

#include <cstdint>
#include <vector>

#include "model/graph.h"
#include "model/model_zoo.h"

namespace hercules::model {

/** How a model is mapped onto the execution engine(s). */
enum class PartitionKind {
    ModelBased,  ///< whole graph Gm launched by one inference thread
    SdPipeline,  ///< SparseNet and DenseNet threads in a pipeline
    HotSplit,    ///< Gs.hot + Gd on accelerator, cold SparseNet on host
};

/** @return printable name of a partition kind. */
const char* partitionKindName(PartitionKind k);

/**
 * Keep only `keep` nodes of `g`, remapping dependencies among kept nodes
 * and dropping edges to removed ones. Order of `keep` defines new ids.
 */
Graph subgraph(const Graph& g, const std::vector<int>& keep);

/** @return SparseNet Gs: all embedding-lookup nodes. */
Graph sparseSubgraph(const Graph& g);

/** @return DenseNet Gd: all non-embedding nodes. */
Graph denseSubgraph(const Graph& g);

/**
 * Result of the locality-aware hot-embedding partition.
 *
 * `hit_rate` is the expected fraction of embedding lookups served by the
 * hot tables; the remaining (1 - hit_rate) of lookups are executed by
 * host-side SparseNet threads which forward a partial sum (Psum).
 */
struct HotSplit
{
    int64_t capacity_bytes = 0;  ///< accelerator budget given
    int64_t hot_bytes = 0;       ///< bytes actually placed on device
    int64_t hot_rows = 0;        ///< total hot rows across tables
    double hit_rate = 0.0;       ///< expected lookup hit fraction
    std::vector<int64_t> hot_rows_per_table;  ///< indexed by table order

    /** @return true when the whole SparseNet fits (no host path left). */
    bool full() const { return hit_rate >= 1.0; }
};

/**
 * Locality-aware embedding partition (Fig 10(a)).
 *
 * Distributes the capacity budget across tables proportionally to their
 * lookup traffic, clamps to table size, and computes the expected hit
 * rate from each table's Zipf popularity mass. A model whose embeddings
 * fit entirely returns hit_rate == 1.
 *
 * @param m               the model to partition.
 * @param capacity_bytes  device bytes available for embeddings
 *                        (memory capacity / co-located threads, minus
 *                        dense parameters).
 */
HotSplit computeHotSplit(const Model& m, int64_t capacity_bytes);

/**
 * Fuse elementwise Activation nodes into their single producer
 * (FC/GRU/attention), removing them from the graph and rerouting
 * consumers. Reduces per-operator dispatch overhead.
 */
Graph fuseElementwise(const Graph& g);

}  // namespace hercules::model
