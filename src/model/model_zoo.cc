#include "model/model_zoo.h"

#include <cmath>

#include "util/logging.h"

namespace hercules::model {

const std::vector<ModelId>&
allModels()
{
    static const std::vector<ModelId> ids = {
        ModelId::DlrmRmc1, ModelId::DlrmRmc2, ModelId::DlrmRmc3,
        ModelId::MtWnd,    ModelId::Din,      ModelId::Dien,
    };
    return ids;
}

const char*
modelName(ModelId id)
{
    switch (id) {
      case ModelId::DlrmRmc1: return "DLRM-RMC1";
      case ModelId::DlrmRmc2: return "DLRM-RMC2";
      case ModelId::DlrmRmc3: return "DLRM-RMC3";
      case ModelId::MtWnd:    return "MT-WnD";
      case ModelId::Din:      return "DIN";
      case ModelId::Dien:     return "DIEN";
    }
    panic("unknown ModelId %d", static_cast<int>(id));
}

const char*
modelService(ModelId id)
{
    switch (id) {
      case ModelId::DlrmRmc1:
      case ModelId::DlrmRmc2:
      case ModelId::DlrmRmc3: return "Social Media";
      case ModelId::MtWnd:    return "Video";
      case ModelId::Din:
      case ModelId::Dien:     return "E-commerce";
    }
    panic("unknown ModelId %d", static_cast<int>(id));
}

double
defaultSlaMs(ModelId id)
{
    switch (id) {
      case ModelId::DlrmRmc1: return 20.0;
      case ModelId::DlrmRmc2: return 50.0;
      case ModelId::DlrmRmc3: return 50.0;
      case ModelId::Din:      return 50.0;
      case ModelId::Dien:     return 100.0;
      case ModelId::MtWnd:    return 100.0;
    }
    panic("unknown ModelId %d", static_cast<int>(id));
}

namespace {

/**
 * Spread `count` table sizes geometrically across [rows_min, rows_max] so
 * a model has a realistic mix of small and large tables.
 */
int64_t
tableRows(int table, int count, int64_t rows_min, int64_t rows_max)
{
    if (count <= 1 || rows_min == rows_max)
        return rows_max;
    double t = static_cast<double>(table) / static_cast<double>(count - 1);
    double lo = std::log(static_cast<double>(rows_min));
    double hi = std::log(static_cast<double>(rows_max));
    return static_cast<int64_t>(std::exp(lo + t * (hi - lo)));
}

/** Append a chain of FC(+activation) layers; returns the last node id. */
int
addFcChain(Graph& g, const std::string& prefix,
           const std::vector<int>& dims, int dep)
{
    int prev = dep;
    for (size_t i = 0; i + 1 < dims.size(); ++i) {
        FcParams fc;
        fc.in_dim = dims[i];
        fc.out_dim = dims[i + 1];
        std::vector<int> deps;
        if (prev >= 0)
            deps.push_back(prev);
        prev = g.addNode(prefix + "_fc" + std::to_string(i), fc,
                         Stage::Dense, deps);
        // Fuse-able elementwise activation after each FC.
        ActivationParams act;
        act.dim = dims[i + 1];
        prev = g.addNode(prefix + "_act" + std::to_string(i), act,
                         Stage::Dense, {prev});
    }
    return prev;
}

/** Add the model's embedding-lookup nodes; returns their ids. */
std::vector<int>
addEmbeddings(Graph& g, Model& m, double zipf)
{
    std::vector<int> ids;
    for (int t = 0; t < m.num_tables; ++t) {
        EmbeddingParams e;
        e.rows = tableRows(t, m.num_tables, m.rows_min, m.rows_max);
        e.emb_dim = m.emb_dim;
        e.pooling_min = m.pooling_min;
        e.pooling_max = m.pooling_max;
        e.pooled = m.pooled;
        e.zipf_exponent = zipf;
        ids.push_back(g.addNode("emb" + std::to_string(t), e, Stage::Sparse));
    }
    return ids;
}

Model
buildDlrm(ModelId id, Variant variant)
{
    Model m;
    m.id = id;
    m.variant = variant;
    m.emb_dim = 32;
    m.pooled = true;

    std::vector<int> bottom, predict;
    switch (id) {
      case ModelId::DlrmRmc1:
        m.num_tables = 10;
        m.rows_min = variant == Variant::Prod ? 1'000'000 : 500'000;
        m.rows_max = variant == Variant::Prod ? 5'000'000 : 1'000'000;
        m.pooling_min = 20;
        m.pooling_max = 160;
        bottom = {256, 128, 32};
        predict = {256, 64, 1};
        break;
      case ModelId::DlrmRmc2:
        m.num_tables = 100;
        m.rows_min = variant == Variant::Prod ? 1'000'000 : 300'000;
        m.rows_max = variant == Variant::Prod ? 5'000'000 : 1'000'000;
        m.pooling_min = 20;
        m.pooling_max = 160;
        bottom = {256, 128, 32};
        predict = {512, 128, 1};
        break;
      case ModelId::DlrmRmc3:
        m.num_tables = 10;
        m.rows_min = variant == Variant::Prod ? 10'000'000 : 500'000;
        m.rows_max = variant == Variant::Prod ? 20'000'000 : 1'000'000;
        m.pooling_min = 20;
        m.pooling_max = 50;
        bottom = {2560, 512, 32};
        predict = {512, 128, 1};
        break;
      default:
        panic("buildDlrm: not a DLRM id");
    }

    Graph& g = m.graph;
    auto embs = addEmbeddings(g, m, 0.95);
    int bot = addFcChain(g, "bottom", bottom, -1);

    InteractionParams inter;
    inter.num_features = m.num_tables + 1;  // sparse vectors + bottom out
    inter.feature_dim = m.emb_dim;
    std::vector<int> ideps = embs;
    ideps.push_back(bot);
    int interact = g.addNode("interaction", inter, Stage::Dense, ideps);

    ConcatParams cat;
    cat.total_dim = predict.front();
    int catn = g.addNode("concat", cat, Stage::Dense, {interact});
    addFcChain(g, "predict", predict, catn);
    return m;
}

Model
buildMtWnd(Variant variant)
{
    Model m;
    m.id = ModelId::MtWnd;
    m.variant = variant;
    m.num_tables = 26;
    // Table I quotes 3M-40M rows; we cap at 20M so the production
    // variant fits the smallest (64 GB) host in Table II — see
    // DESIGN.md "Substitutions". The small variant (~8 GB) fits one
    // V100 but not two copies, which is what limits Baymax-style model
    // co-location for MT-WnD in the paper (Fig 6: 1.03x).
    m.rows_min = variant == Variant::Prod ? 3'000'000 : 1'200'000;
    m.rows_max = variant == Variant::Prod ? 20'000'000 : 1'200'000;
    m.emb_dim = 64;
    m.pooling_min = 1;
    m.pooling_max = 1;
    m.pooled = false;

    Graph& g = m.graph;
    auto embs = addEmbeddings(g, m, 0.9);

    // Wide linear part over the raw dense features.
    int wide = addFcChain(g, "wide", {256, 1}, -1);

    // Wide-and-Deep has no bottom MLP in Table I; sparse embeddings plus
    // raw dense features are concatenated and fed to N task towers.
    ConcatParams cat;
    cat.total_dim = static_cast<int64_t>(m.num_tables) * m.emb_dim + 256;
    std::vector<int> cdeps = embs;
    cdeps.push_back(wide);
    int catn = g.addNode("concat", cat, Stage::Dense, cdeps);

    // Multi-task: N independent prediction towers (N = 5), each
    // 1024-512-256 with a scalar head. Independent towers are the one
    // place op-parallelism finds work in this model.
    const int num_tasks = 5;
    for (int t = 0; t < num_tasks; ++t) {
        addFcChain(g, "task" + std::to_string(t),
                   {static_cast<int>(cat.total_dim), 1024, 512, 256, 1},
                   catn);
    }
    return m;
}

Model
buildDinDien(ModelId id, Variant variant)
{
    Model m;
    m.id = id;
    m.variant = variant;
    m.num_tables = 3;
    // Table I quotes 0.1M-600M rows; we cap at 300M so the production
    // variant fits the smallest (64 GB) host in Table II — see
    // DESIGN.md "Substitutions".
    m.rows_min = 100'000;
    m.rows_max = variant == Variant::Prod ? 300'000'000 : 1'000'000;
    m.emb_dim = 32;
    // Table I: lookups "1, 100 - 1000" — the candidate/user profile
    // lookups are one-hot, the behaviour-sequence lookup gathers the
    // user's history. We model the sequence on the largest table.
    m.pooling_min = 1;
    m.pooling_max = 1;
    m.pooled = false;

    Graph& g = m.graph;
    std::vector<int> embs;
    for (int t = 0; t < m.num_tables; ++t) {
        EmbeddingParams e;
        e.rows = tableRows(t, m.num_tables, m.rows_min, m.rows_max);
        e.emb_dim = m.emb_dim;
        e.pooled = false;
        e.zipf_exponent = 0.85;
        if (t == m.num_tables - 1) {
            // Behaviour-sequence gather: 100-1000 rows per item.
            e.pooling_min = 100;
            e.pooling_max = 1000;
        } else {
            e.pooling_min = 1;
            e.pooling_max = 1;
        }
        embs.push_back(g.addNode("emb" + std::to_string(t), e,
                                 Stage::Sparse));
    }

    int attn_in = embs.back();
    if (id == ModelId::Dien) {
        // DIEN: interest-extractor GRU + interest-evolution AUGRU over
        // the behaviour sequence, then the attention readout.
        GruParams gru;
        gru.input_dim = m.emb_dim;
        gru.hidden_dim = m.emb_dim;
        gru.seq_len_min = 100;
        gru.seq_len_max = 1000;
        gru.layers = 2;
        attn_in = g.addNode("gru", gru, Stage::Dense, {attn_in});
    }

    AttentionParams att;
    att.behavior_dim = m.emb_dim;
    att.hidden_dim = 36;
    att.seq_len_min = 100;
    att.seq_len_max = 1000;
    std::vector<int> adeps = {attn_in, embs[0]};
    int attn = g.addNode("attention", att, Stage::Dense, adeps);

    ConcatParams cat;
    cat.total_dim = 200;
    std::vector<int> cdeps = embs;
    cdeps.push_back(attn);
    int catn = g.addNode("concat", cat, Stage::Dense, cdeps);
    addFcChain(g, "predict", {200, 80, 2}, catn);
    return m;
}

}  // namespace

int64_t
Model::embeddingBytes() const
{
    int64_t total = 0;
    for (const auto& n : graph.nodes()) {
        if (n.kind() == OpKind::EmbeddingLookup)
            total += std::get<EmbeddingParams>(n.params).tableBytes();
    }
    return total;
}

int64_t
Model::denseParamBytes() const
{
    int64_t total = 0;
    for (const auto& n : graph.nodes()) {
        switch (n.kind()) {
          case OpKind::Fc: {
            const auto& p = std::get<FcParams>(n.params);
            total += static_cast<int64_t>(p.in_dim) * p.out_dim * 4;
            break;
          }
          case OpKind::Attention: {
            const auto& p = std::get<AttentionParams>(n.params);
            total += static_cast<int64_t>(3 * p.behavior_dim) *
                     p.hidden_dim * 4;
            break;
          }
          case OpKind::Gru: {
            const auto& p = std::get<GruParams>(n.params);
            total += static_cast<int64_t>(p.layers) * 3 *
                     (p.input_dim + p.hidden_dim) * p.hidden_dim * 4;
            break;
          }
          default:
            break;
        }
    }
    return total;
}

Model
buildModel(ModelId id, Variant variant)
{
    Model m;
    switch (id) {
      case ModelId::DlrmRmc1:
      case ModelId::DlrmRmc2:
      case ModelId::DlrmRmc3:
        m = buildDlrm(id, variant);
        break;
      case ModelId::MtWnd:
        m = buildMtWnd(variant);
        break;
      case ModelId::Din:
      case ModelId::Dien:
        m = buildDinDien(id, variant);
        break;
    }
    m.name = std::string(modelName(id)) +
             (variant == Variant::Small ? " (small)" : "");
    m.sla_ms = defaultSlaMs(id);
    return m;
}

}  // namespace hercules::model
