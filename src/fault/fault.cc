#include "fault/fault.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"
#include "util/rng.h"

namespace hercules::fault {

const char* healthStateName(HealthState s)
{
    switch (s) {
        case HealthState::Healthy: return "healthy";
        case HealthState::Degraded: return "degraded";
        case HealthState::Failed: return "failed";
    }
    return "?";
}

std::optional<HealthState> parseHealthState(const std::string& name)
{
    if (name == "healthy") return HealthState::Healthy;
    if (name == "degraded") return HealthState::Degraded;
    if (name == "failed") return HealthState::Failed;
    return std::nullopt;
}

namespace {

void checkKnob(const char* what, double v)
{
    if (std::isnan(v) || v < 0.0)
        fatal("FaultSchedule: %s must be finite and non-negative (got %f)",
              what, v);
}

/**
 * Append one server's alternating up/down renewal process: exponential
 * up-time with mean `mtbf`, then `down` state for an exponential
 * down-time with mean `mttr`, repeated until the horizon. A zero MTTR
 * still emits the down event (an instantaneous blip) so the counters
 * see it; the recovery lands at the same timestamp and insertion order
 * resolves the tie.
 */
void appendProcess(std::vector<FaultEvent>* out, Rng rng, int h, int slot,
                   HealthState down, double slowdown, double mtbf,
                   double mttr, double horizon_hours)
{
    double t = rng.exponential(1.0 / mtbf);
    while (t < horizon_hours) {
        out->push_back({t, h, slot, down, slowdown});
        t += rng.exponential(mttr > 0.0 ? 1.0 / mttr : 1e12);
        if (t >= horizon_hours) break;
        out->push_back({t, h, slot, HealthState::Healthy, 1.0});
        t += rng.exponential(1.0 / mtbf);
    }
}

}  // namespace

FaultSchedule::FaultSchedule(const FaultSpec& spec,
                             const std::vector<int>& slots_per_type,
                             double horizon_hours)
{
    checkKnob("crash_mtbf_hours", spec.crash_mtbf_hours);
    checkKnob("crash_mttr_hours", spec.crash_mttr_hours);
    checkKnob("degrade_mtbf_hours", spec.degrade_mtbf_hours);
    checkKnob("degrade_mttr_hours", spec.degrade_mttr_hours);
    if (std::isnan(spec.degrade_slowdown) || spec.degrade_slowdown < 1.0)
        fatal("FaultSchedule: degrade_slowdown must be >= 1 (got %f)",
              spec.degrade_slowdown);

    for (size_t i = 0; i < spec.events.size(); ++i) {
        const FaultEvent& e = spec.events[i];
        if (std::isnan(e.t_hours) || e.t_hours < 0.0)
            fatal("FaultSchedule: event %zu at negative time %f", i,
                  e.t_hours);
        if (e.fleet_index < 0 ||
            e.fleet_index >= static_cast<int>(slots_per_type.size()))
            fatal("FaultSchedule: event %zu fleet index %d out of range "
                  "(fleet has %zu types)",
                  i, e.fleet_index, slots_per_type.size());
        if (e.slot < 0 || e.slot >= slots_per_type[e.fleet_index])
            fatal("FaultSchedule: event %zu slot %d out of range (type %d "
                  "has %d slots)",
                  i, e.slot, e.fleet_index, slots_per_type[e.fleet_index]);
        if (e.state == HealthState::Degraded &&
            (std::isnan(e.slowdown) || e.slowdown < 1.0))
            fatal("FaultSchedule: event %zu slowdown must be >= 1 (got %f)",
                  i, e.slowdown);
        events_.push_back(e);
        // Non-degrade events always carry the neutral multiplier so two
        // specs that differ only in an ignored field expand identically.
        if (e.state != HealthState::Degraded) events_.back().slowdown = 1.0;
    }

    // Seeded processes: one independent forked stream per (server,
    // process), consumed in fixed (fleet index, slot) order.
    Rng root(spec.seed);
    for (size_t h = 0; h < slots_per_type.size(); ++h) {
        for (int slot = 0; slot < slots_per_type[h]; ++slot) {
            Rng crash_rng = root.fork();
            Rng degrade_rng = root.fork();
            if (spec.crash_mtbf_hours > 0.0)
                appendProcess(&events_, crash_rng, static_cast<int>(h), slot,
                              HealthState::Failed, 1.0,
                              spec.crash_mtbf_hours, spec.crash_mttr_hours,
                              horizon_hours);
            if (spec.degrade_mtbf_hours > 0.0)
                appendProcess(&events_, degrade_rng, static_cast<int>(h),
                              slot, HealthState::Degraded,
                              spec.degrade_slowdown, spec.degrade_mtbf_hours,
                              spec.degrade_mttr_hours, horizon_hours);
        }
    }

    std::stable_sort(events_.begin(), events_.end(),
                     [](const FaultEvent& a, const FaultEvent& b) {
                         return a.t_hours < b.t_hours;
                     });
}

}  // namespace hercules::fault
