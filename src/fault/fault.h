/**
 * @file
 * Deterministic fault injection for the online serving stack: per-shard
 * health states and the schedules that drive them.
 *
 * A physical server is always in exactly one of three health states:
 *
 *   healthy --------> degraded(slowdown)     (straggler: latencies x F)
 *      ^  \                 |
 *      |   \                v
 *      +----+---------- failed                (crash: in-flight killed)
 *
 * Any state can transition to any other; `healthy` is the recovery
 * target for both pathologies. The *mechanics* of each state live in
 * the simulator (src/sim/): a failed shard kills its in-flight queries
 * (counted as `failed_inflight` SLA violations) and is never routed to;
 * a degraded shard keeps serving with every service latency multiplied
 * by the slowdown factor, so the latency-feedback router has to learn
 * to shift weight away. This module only decides *when* transitions
 * happen.
 *
 * Two sources of events compose into one FaultSchedule:
 *  - scripted events (`FaultSpec::events`) — exact, reproducible
 *    storylines for tests and shipped scenarios;
 *  - seeded random processes — per-server alternating renewal processes
 *    with exponential time-to-failure (MTBF) and time-to-repair (MTTR),
 *    one independent forked Rng stream per physical server.
 *
 * Determinism contract: equal FaultSpec + equal fleet shape + equal
 * horizon => bit-identical event list. Expansion iterates servers in
 * (fleet index, slot) order, forks one child Rng per process from a
 * single root seeded with `FaultSpec::seed`, and breaks time ties by
 * insertion order (scripted events first), so the schedule never
 * depends on container iteration order or wall-clock anything.
 */
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace hercules::fault {

/** Health of one physical server (and every personality shard on it). */
enum class HealthState {
    /** Serving normally. */
    Healthy,
    /** Straggler: serving, but every service latency is multiplied. */
    Degraded,
    /** Crashed: in-flight killed, unroutable until recovery. */
    Failed,
};

/** @return display name ("healthy", "degraded", "failed"). */
const char* healthStateName(HealthState s);

/** Parse a health-state name as printed by healthStateName(). */
std::optional<HealthState> parseHealthState(const std::string& name);

/**
 * One health transition of one physical server, in fleet coordinates
 * (the cluster layer maps these onto every personality shard hosted by
 * that server).
 */
struct FaultEvent
{
    /** When the transition happens, in trace hours. */
    double t_hours = 0.0;
    /** Index into the fleet vector (server type group). */
    int fleet_index = 0;
    /** Physical slot within that type group. */
    int slot = 0;
    /** State the server enters at t_hours. */
    HealthState state = HealthState::Healthy;
    /** Latency multiplier while Degraded (>= 1); ignored otherwise. */
    double slowdown = 1.0;
};

/**
 * Everything needed to (re)generate a fault timeline: scripted events
 * plus the knobs of the seeded random processes. Default-constructed
 * specs inject nothing and leave the engine bit-identical to a run
 * without fault plumbing.
 */
struct FaultSpec
{
    /** Scripted transitions (any order; the schedule sorts them). */
    std::vector<FaultEvent> events;
    /** Root seed for the per-server random processes. */
    uint64_t seed = 1;
    /** Mean time between crashes, hours; 0 disables the process. */
    double crash_mtbf_hours = 0.0;
    /** Mean time to repair after a crash, hours. */
    double crash_mttr_hours = 0.5;
    /** Mean time between degradations, hours; 0 disables the process. */
    double degrade_mtbf_hours = 0.0;
    /** Mean time to recovery from a degradation, hours. */
    double degrade_mttr_hours = 1.0;
    /** Latency multiplier applied by the random degrade process. */
    double degrade_slowdown = 4.0;

    /** @return true when the spec can produce at least one event. */
    bool enabled() const
    {
        return !events.empty() || crash_mtbf_hours > 0.0 ||
               degrade_mtbf_hours > 0.0;
    }
};

/**
 * A FaultSpec expanded against a concrete fleet and horizon into one
 * time-sorted event list (the form the serving loop consumes).
 */
class FaultSchedule
{
  public:
    /** An empty schedule: no faults ever. */
    FaultSchedule() = default;

    /**
     * Expand `spec` over a fleet with `slots_per_type[h]` physical
     * servers of each type, generating random-process events in
     * [0, horizon_hours).
     *
     * Panics (util::fatal) on invalid knobs: negative MTBF/MTTR,
     * slowdown < 1, scripted events out of fleet range or at negative
     * times. Callers that need a recoverable error (spec binding, CLI
     * parsing) validate first.
     */
    FaultSchedule(const FaultSpec& spec,
                  const std::vector<int>& slots_per_type,
                  double horizon_hours);

    /** Events sorted ascending by t_hours (ties: insertion order). */
    const std::vector<FaultEvent>& events() const { return events_; }

    /** @return true when no event will ever fire. */
    bool empty() const { return events_.empty(); }

  private:
    std::vector<FaultEvent> events_;
};

}  // namespace hercules::fault
