#include "scenario/spec_io.h"

#include <cerrno>
#include <cmath>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>

#include "fault/fault.h"
#include "model/model_zoo.h"

namespace hercules::scenario {

namespace {

// ---- value tree ----------------------------------------------------------

struct Field;

/** One parsed JSON-subset value, carrying its 1-based source line. */
struct Value
{
    enum class Kind { Object, Array, String, Number, Bool };
    Kind kind = Kind::Object;
    int line = 0;
    double num = 0.0;
    bool boolean = false;
    std::string str;
    std::vector<Field> fields;  ///< Kind::Object, in source order
    std::vector<Value> items;   ///< Kind::Array
};

struct Field
{
    std::string key;
    int line = 0;  ///< line of the key token
    Value value;
};

const char*
kindName(Value::Kind k)
{
    switch (k) {
      case Value::Kind::Object: return "an object";
      case Value::Kind::Array: return "an array";
      case Value::Kind::String: return "a string";
      case Value::Kind::Number: return "a number";
      case Value::Kind::Bool: return "a boolean";
    }
    return "a value";
}

std::string
fmt(const char* f, ...)
{
    char buf[256];
    va_list ap;
    va_start(ap, f);
    std::vsnprintf(buf, sizeof buf, f, ap);
    va_end(ap);
    return buf;
}

// ---- parser --------------------------------------------------------------

/** Recursive-descent parser over the strict JSON subset. */
class Parser
{
  public:
    explicit Parser(const std::string& text) : t_(text) {}

    bool
    parse(Value& out)
    {
        skipWs();
        if (pos_ >= t_.size())
            return fail("empty input");
        if (t_[pos_] != '{')
            return fail("top-level value must be an object");
        if (!parseValue(out))
            return false;
        skipWs();
        if (pos_ != t_.size())
            return fail("trailing content after the top-level object");
        return true;
    }

    std::string error;

  private:
    bool
    fail(const char* f, ...)
    {
        char buf[200];
        va_list ap;
        va_start(ap, f);
        std::vsnprintf(buf, sizeof buf, f, ap);
        va_end(ap);
        error = fmt("line %d: %s", line_, buf);
        return false;
    }

    void
    skipWs()
    {
        while (pos_ < t_.size()) {
            char c = t_[pos_];
            if (c == '\n')
                ++line_;
            if (c != ' ' && c != '\t' && c != '\n' && c != '\r')
                break;
            ++pos_;
        }
    }

    bool
    parseValue(Value& out)
    {
        skipWs();
        if (pos_ >= t_.size())
            return fail("unexpected end of input");
        out.line = line_;
        char c = t_[pos_];
        if (c == '{')
            return parseObject(out);
        if (c == '[')
            return parseArray(out);
        if (c == '"') {
            out.kind = Value::Kind::String;
            return parseString(out.str);
        }
        if (c == 't' || c == 'f')
            return parseBool(out);
        if (c == '-' || (c >= '0' && c <= '9'))
            return parseNumber(out);
        return fail("unexpected character '%c'", c);
    }

    bool
    parseObject(Value& out)
    {
        out.kind = Value::Kind::Object;
        ++pos_;  // '{'
        skipWs();
        if (pos_ < t_.size() && t_[pos_] == '}') {
            ++pos_;
            return true;
        }
        while (true) {
            skipWs();
            if (pos_ >= t_.size() || t_[pos_] != '"')
                return fail("expected a key string");
            Field f;
            f.line = line_;
            if (!parseString(f.key))
                return false;
            for (const Field& prev : out.fields)
                if (prev.key == f.key) {
                    line_ = f.line;
                    return fail("duplicate key '%s'", f.key.c_str());
                }
            skipWs();
            if (pos_ >= t_.size() || t_[pos_] != ':')
                return fail("expected ':' after key '%s'",
                            f.key.c_str());
            ++pos_;
            if (!parseValue(f.value))
                return false;
            out.fields.push_back(std::move(f));
            skipWs();
            if (pos_ >= t_.size())
                return fail("unterminated object");
            if (t_[pos_] == ',') {
                ++pos_;
                continue;
            }
            if (t_[pos_] == '}') {
                ++pos_;
                return true;
            }
            return fail("expected ',' or '}' in object");
        }
    }

    bool
    parseArray(Value& out)
    {
        out.kind = Value::Kind::Array;
        ++pos_;  // '['
        skipWs();
        if (pos_ < t_.size() && t_[pos_] == ']') {
            ++pos_;
            return true;
        }
        while (true) {
            Value item;
            if (!parseValue(item))
                return false;
            out.items.push_back(std::move(item));
            skipWs();
            if (pos_ >= t_.size())
                return fail("unterminated array");
            if (t_[pos_] == ',') {
                ++pos_;
                continue;
            }
            if (t_[pos_] == ']') {
                ++pos_;
                return true;
            }
            return fail("expected ',' or ']' in array");
        }
    }

    bool
    parseString(std::string& out)
    {
        ++pos_;  // opening '"'
        out.clear();
        while (pos_ < t_.size()) {
            char c = t_[pos_];
            if (c == '"') {
                ++pos_;
                return true;
            }
            if (c == '\n')
                return fail("unterminated string");
            if (c == '\\') {
                if (pos_ + 1 >= t_.size())
                    return fail("unterminated string");
                char e = t_[++pos_];
                switch (e) {
                  case '"': out.push_back('"'); break;
                  case '\\': out.push_back('\\'); break;
                  case '/': out.push_back('/'); break;
                  case 'n': out.push_back('\n'); break;
                  case 't': out.push_back('\t'); break;
                  case 'r': out.push_back('\r'); break;
                  default:
                      return fail("unsupported escape '\\%c'", e);
                }
                ++pos_;
                continue;
            }
            out.push_back(c);
            ++pos_;
        }
        return fail("unterminated string");
    }

    bool
    parseNumber(Value& out)
    {
        out.kind = Value::Kind::Number;
        size_t start = pos_;
        if (t_[pos_] == '-')
            ++pos_;
        auto digits = [&]() {
            size_t n = 0;
            while (pos_ < t_.size() && t_[pos_] >= '0' &&
                   t_[pos_] <= '9') {
                ++pos_;
                ++n;
            }
            return n;
        };
        if (digits() == 0)
            return fail("malformed number");
        if (pos_ < t_.size() && t_[pos_] == '.') {
            ++pos_;
            if (digits() == 0)
                return fail("malformed number");
        }
        if (pos_ < t_.size() && (t_[pos_] == 'e' || t_[pos_] == 'E')) {
            ++pos_;
            if (pos_ < t_.size() &&
                (t_[pos_] == '+' || t_[pos_] == '-'))
                ++pos_;
            if (digits() == 0)
                return fail("malformed number");
        }
        std::string tok = t_.substr(start, pos_ - start);
        errno = 0;
        out.num = std::strtod(tok.c_str(), nullptr);
        if (errno == ERANGE || !std::isfinite(out.num))
            return fail("number out of range");
        return true;
    }

    bool
    parseBool(Value& out)
    {
        out.kind = Value::Kind::Bool;
        if (t_.compare(pos_, 4, "true") == 0) {
            out.boolean = true;
            pos_ += 4;
            return true;
        }
        if (t_.compare(pos_, 5, "false") == 0) {
            out.boolean = false;
            pos_ += 5;
            return true;
        }
        return fail("unexpected token");
    }

    const std::string& t_;
    size_t pos_ = 0;
    int line_ = 1;
};

// ---- binder --------------------------------------------------------------

/**
 * Reads one object's keys onto spec fields, tracking which keys were
 * consumed so finish() can reject unknown ones with their line.
 * Absent keys leave the (default-initialized) target untouched.
 */
class ObjectReader
{
  public:
    ObjectReader(const Value& v, std::string ctx, std::string* err)
        : v_(v), ctx_(std::move(ctx)), err_(err),
          used_(v.fields.size(), false)
    {
    }

    const Value*
    find(const char* key)
    {
        for (size_t i = 0; i < v_.fields.size(); ++i)
            if (v_.fields[i].key == key) {
                used_[i] = true;
                return &v_.fields[i].value;
            }
        return nullptr;
    }

    bool
    typeError(const Value& v, const char* key, const char* want)
    {
        *err_ = fmt("line %d: key '%s' in %s expects %s (got %s)",
                    v.line, key, ctx_.c_str(), want, kindName(v.kind));
        return false;
    }

    bool
    number(const char* key, double* out)
    {
        const Value* v = find(key);
        if (v == nullptr)
            return true;
        if (v->kind != Value::Kind::Number)
            return typeError(*v, key, "a number");
        *out = v->num;
        return true;
    }

    /**
     * number() that additionally rejects values below `lo` (strictly
     * below, or equal when `strict`) with a "must be <desc>" error.
     * The comparison is written to also reject NaN, which a hand-built
     * Value could carry even though the grammar cannot produce one.
     */
    bool
    numberMin(const char* key, double lo, bool strict,
              const char* desc, double* out)
    {
        const Value* v = find(key);
        if (v == nullptr)
            return true;
        if (v->kind != Value::Kind::Number)
            return typeError(*v, key, "a number");
        bool bad = strict ? !(v->num > lo) : !(v->num >= lo);
        if (bad) {
            *err_ = fmt("line %d: key '%s' in %s must be %s (got %g)",
                        v->line, key, ctx_.c_str(), desc, v->num);
            return false;
        }
        *out = v->num;
        return true;
    }

    bool
    nonNegative(const char* key, double* out)
    {
        return numberMin(key, 0.0, false, "non-negative", out);
    }

    bool
    positive(const char* key, double* out)
    {
        return numberMin(key, 0.0, true, "positive", out);
    }

    bool
    integer(const char* key, long long lo, long long hi,
            long long* out)
    {
        const Value* v = find(key);
        if (v == nullptr)
            return true;
        if (v->kind != Value::Kind::Number ||
            v->num != std::floor(v->num))
            return typeError(*v, key, "an integer");
        if (v->num < static_cast<double>(lo) ||
            v->num > static_cast<double>(hi)) {
            *err_ = fmt("line %d: key '%s' in %s is out of range",
                        v->line, key, ctx_.c_str());
            return false;
        }
        *out = static_cast<long long>(v->num);
        return true;
    }

    bool
    intField(const char* key, int* out)
    {
        long long v = *out;
        if (!integer(key, -2147483648LL, 2147483647LL, &v))
            return false;
        *out = static_cast<int>(v);
        return true;
    }

    bool
    u64Field(const char* key, uint64_t* out)
    {
        // Seeds ride through the number grammar: exact up to 2^53.
        long long v = static_cast<long long>(*out);
        if (!integer(key, 0, 9007199254740992LL, &v))
            return false;
        *out = static_cast<uint64_t>(v);
        return true;
    }

    bool
    sizeField(const char* key, size_t* out)
    {
        long long v = static_cast<long long>(*out);
        if (!integer(key, 0, 9007199254740992LL, &v))
            return false;
        *out = static_cast<size_t>(v);
        return true;
    }

    bool
    str(const char* key, std::string* out)
    {
        const Value* v = find(key);
        if (v == nullptr)
            return true;
        if (v->kind != Value::Kind::String)
            return typeError(*v, key, "a string");
        *out = v->str;
        return true;
    }

    bool
    boolean(const char* key, bool* out)
    {
        const Value* v = find(key);
        if (v == nullptr)
            return true;
        if (v->kind != Value::Kind::Bool)
            return typeError(*v, key, "a boolean");
        *out = v->boolean;
        return true;
    }

    /**
     * Look up a string key and map it through `parse` (an enum-name
     * parser); absent keys keep the default.
     */
    template <typename T, typename ParseFn>
    bool
    named(const char* key, const char* what, ParseFn parse, T* out)
    {
        const Value* v = find(key);
        if (v == nullptr)
            return true;
        if (v->kind != Value::Kind::String)
            return typeError(*v, key, "a string");
        auto parsed = parse(v->str);
        if (!parsed.has_value()) {
            *err_ = fmt("line %d: unknown %s '%s' in %s", v->line,
                        what, v->str.c_str(), ctx_.c_str());
            return false;
        }
        *out = *parsed;
        return true;
    }

    /** Typed sub-value lookup; null when absent, error on wrong kind. */
    const Value*
    sub(const char* key, Value::Kind kind, bool* ok)
    {
        *ok = true;
        const Value* v = find(key);
        if (v == nullptr)
            return nullptr;
        if (v->kind != kind) {
            *ok = typeError(*v, key,
                            kind == Value::Kind::Object ? "an object"
                                                        : "an array");
            return nullptr;
        }
        return v;
    }

    bool
    finish()
    {
        for (size_t i = 0; i < v_.fields.size(); ++i)
            if (!used_[i]) {
                *err_ = fmt("line %d: unknown key '%s' in %s",
                            v_.fields[i].line,
                            v_.fields[i].key.c_str(), ctx_.c_str());
                return false;
            }
        return true;
    }

    const std::string& ctx() const { return ctx_; }

  private:
    const Value& v_;
    std::string ctx_;
    std::string* err_;
    std::vector<bool> used_;
};

std::optional<hw::ServerType>
parseServerTypeName(const std::string& s)
{
    for (hw::ServerType t : hw::allServerTypes())
        if (s == hw::serverTypeName(t))
            return t;
    return std::nullopt;
}

std::optional<model::ModelId>
parseModelName(const std::string& s)
{
    for (model::ModelId m : model::allModels())
        if (s == model::modelName(m))
            return m;
    return std::nullopt;
}

// ---- per-section binders -------------------------------------------------

bool
bindFleetEntry(const Value& v, const std::string& ctx, FleetEntry* out,
               std::string* err)
{
    if (v.kind != Value::Kind::Object) {
        *err = fmt("line %d: %s expects an object", v.line,
                   ctx.c_str());
        return false;
    }
    ObjectReader r(v, ctx, err);
    if (r.find("type") == nullptr) {
        *err = fmt("line %d: missing key 'type' in %s", v.line,
                   ctx.c_str());
        return false;
    }
    // find() only marks the key consumed, so re-reading it below is
    // harmless.
    if (!r.named("type", "server type", parseServerTypeName,
                 &out->type))
        return false;
    if (!r.intField("slots", &out->shard_slots))
        return false;
    return r.finish();
}

bool
bindCapPoint(const Value& v, const std::string& ctx,
             cluster::PowerCapPoint* out, std::string* err)
{
    if (v.kind != Value::Kind::Object) {
        *err = fmt("line %d: %s expects an object", v.line,
                   ctx.c_str());
        return false;
    }
    ObjectReader r(v, ctx, err);
    if (!r.nonNegative("from_hour", &out->from_hour))
        return false;
    if (!r.nonNegative("cap_w", &out->cap_w))
        return false;
    return r.finish();
}

bool
bindFaultEvent(const Value& v, const std::string& ctx,
               fault::FaultEvent* out, std::string* err)
{
    if (v.kind != Value::Kind::Object) {
        *err = fmt("line %d: %s expects an object", v.line,
                   ctx.c_str());
        return false;
    }
    ObjectReader r(v, ctx, err);
    if (!r.nonNegative("at_hour", &out->t_hours))
        return false;
    if (!r.intField("fleet", &out->fleet_index))
        return false;
    if (!r.intField("slot", &out->slot))
        return false;
    if (!r.named("state", "health state", fault::parseHealthState,
                 &out->state))
        return false;
    if (!r.numberMin("slowdown", 1.0, false, ">= 1", &out->slowdown))
        return false;
    return r.finish();
}

bool
bindService(const Value& v, const std::string& ctx,
            ServiceScenario* out, std::string* err)
{
    if (v.kind != Value::Kind::Object) {
        *err = fmt("line %d: %s expects an object", v.line,
                   ctx.c_str());
        return false;
    }
    ObjectReader r(v, ctx, err);
    if (r.find("model") == nullptr) {
        *err = fmt("line %d: missing key 'model' in %s", v.line,
                   ctx.c_str());
        return false;
    }
    cluster::ServiceSpec& s = out->spec;
    bool ok = r.str("name", &out->name) &&
              r.named("model", "model", parseModelName, &s.model) &&
              r.nonNegative("peak_qps_frac", &out->peak_qps_frac) &&
              r.nonNegative("peak_qps", &s.load.peak_qps) &&
              r.number("trough_frac", &s.load.trough_frac) &&
              r.number("peak_hour", &s.load.peak_hour) &&
              r.number("noise_frac", &s.load.noise_frac) &&
              r.u64Field("load_seed", &s.load.seed) &&
              r.number("surge_hour", &s.load.surge_hour) &&
              r.nonNegative("surge_hours", &s.load.surge_hours) &&
              r.nonNegative("surge_factor", &s.load.surge_factor) &&
              r.nonNegative("sla_ms", &s.sla_ms) &&
              r.intField("priority", &s.qos.priority) &&
              r.named("tier", "tier", qos::parseTier, &s.qos.tier) &&
              r.nonNegative("qos_sla_ms", &s.qos.sla_ms) &&
              r.number("size_median", &s.sizes.median) &&
              r.number("size_sigma", &s.sizes.sigma) &&
              r.intField("size_min", &s.sizes.min_size) &&
              r.intField("size_max", &s.sizes.max_size) &&
              r.number("pooling_sigma", &s.pooling.sigma);
    return ok && r.finish();
}

bool
bindSpec(const Value& root, ScenarioSpec* out, std::string* err)
{
    ObjectReader r(root, "scenario", err);
    bool ok;

    if (!r.str("name", &out->name) ||
        !r.str("description", &out->description))
        return false;

    if (const Value* fleet = r.sub("fleet", Value::Kind::Array, &ok)) {
        for (size_t i = 0; i < fleet->items.size(); ++i) {
            FleetEntry e;
            if (!bindFleetEntry(fleet->items[i],
                                fmt("fleet[%zu]", i), &e, err))
                return false;
            out->fleet.push_back(e);
        }
    } else if (!ok) {
        return false;
    }

    if (const Value* svcs =
            r.sub("services", Value::Kind::Array, &ok)) {
        for (size_t i = 0; i < svcs->items.size(); ++i) {
            ServiceScenario s;
            if (!bindService(svcs->items[i], fmt("services[%zu]", i),
                             &s, err))
                return false;
            out->services.push_back(std::move(s));
        }
    } else if (!ok) {
        return false;
    }

    if (!r.named("provisioner", "provisioner", parseProvisionerKind,
                 &out->provisioner) ||
        !r.u64Field("nh_seed", &out->nh_seed) ||
        !r.boolean("lint", &out->lint) ||
        !r.named("router", "router policy", sim::parseRouterPolicy,
                 &out->serve.router) ||
        !r.u64Field("router_seed", &out->serve.router_seed) ||
        !r.positive("horizon_hours", &out->serve.horizon_hours) ||
        !r.positive("interval_hours", &out->serve.interval_hours) ||
        !r.nonNegative("sla_ms", &out->serve.sla_ms) ||
        // A negative overprovision_rate means "estimate from the
        // curve", so it stays a plain number.
        !r.number("overprovision_rate",
                  &out->serve.overprovision_rate) ||
        !r.nonNegative("power_cap_w", &out->serve.power_cap_w))
        return false;

    if (const Value* fb = r.sub("feedback", Value::Kind::Object, &ok)) {
        ObjectReader fr(*fb, "feedback", err);
        if (!fr.number("gain", &out->serve.feedback.gain) ||
            !fr.number("floor_frac", &out->serve.feedback.floor_frac) ||
            !fr.finish())
            return false;
    } else if (!ok) {
        return false;
    }

    if (const Value* ad =
            r.sub("admission", Value::Kind::Object, &ok)) {
        ObjectReader ar(*ad, "admission", err);
        qos::AdmissionConfig& a = out->serve.admission;
        if (!ar.named("policy", "admission policy",
                      qos::parseAdmissionPolicy, &a.policy) ||
            !ar.sizeField("queue_cap", &a.queue_cap) ||
            !ar.number("deadline_slack", &a.deadline_slack) ||
            !ar.boolean("cross_shard_retry", &a.cross_shard_retry) ||
            !ar.finish())
            return false;
    } else if (!ok) {
        return false;
    }

    if (const Value* sched =
            r.sub("power_cap_schedule", Value::Kind::Array, &ok)) {
        for (size_t i = 0; i < sched->items.size(); ++i) {
            cluster::PowerCapPoint p;
            if (!bindCapPoint(sched->items[i],
                              fmt("power_cap_schedule[%zu]", i), &p,
                              err))
                return false;
            out->serve.power_cap_schedule.push_back(p);
        }
    } else if (!ok) {
        return false;
    }

    if (const Value* fl = r.sub("faults", Value::Kind::Object, &ok)) {
        ObjectReader fr(*fl, "faults", err);
        fault::FaultSpec& fs = out->serve.faults;
        if (!fr.u64Field("seed", &fs.seed) ||
            !fr.nonNegative("crash_mtbf_hours",
                            &fs.crash_mtbf_hours) ||
            !fr.nonNegative("crash_mttr_hours",
                            &fs.crash_mttr_hours) ||
            !fr.nonNegative("degrade_mtbf_hours",
                            &fs.degrade_mtbf_hours) ||
            !fr.nonNegative("degrade_mttr_hours",
                            &fs.degrade_mttr_hours) ||
            !fr.numberMin("degrade_slowdown", 1.0, false, ">= 1",
                          &fs.degrade_slowdown))
            return false;
        bool fok;
        if (const Value* evs =
                fr.sub("events", Value::Kind::Array, &fok)) {
            for (size_t i = 0; i < evs->items.size(); ++i) {
                fault::FaultEvent e;
                if (!bindFaultEvent(evs->items[i],
                                    fmt("faults.events[%zu]", i), &e,
                                    err))
                    return false;
                fs.events.push_back(e);
            }
        } else if (!fok) {
            return false;
        }
        if (!fr.finish())
            return false;
    } else if (!ok) {
        return false;
    }

    if (const Value* tr = r.sub("trace", Value::Kind::Object, &ok)) {
        ObjectReader tro(*tr, "trace", err);
        workload::TraceOptions& t = out->serve.trace;
        if (!tro.number("bucket_seconds", &t.bucket_seconds) ||
            !tro.number("time_compression", &t.time_compression) ||
            !tro.u64Field("seed", &t.seed) || !tro.finish())
            return false;
    } else if (!ok) {
        return false;
    }

    if (const Value* pf = r.sub("profile", Value::Kind::Object, &ok)) {
        ObjectReader pr(*pf, "profile", err);
        ProfileSpec& p = out->profile;
        if (!pr.str("table_cache", &p.table_cache) ||
            !pr.str("eval_memo", &p.eval_memo) ||
            !pr.intField("num_queries", &p.num_queries) ||
            !pr.intField("warmup_queries", &p.warmup_queries) ||
            !pr.intField("bisect_iters", &p.bisect_iters) ||
            !pr.u64Field("seed", &p.seed) || !pr.finish())
            return false;
    } else if (!ok) {
        return false;
    }

    if (const Value* ob = r.sub("observability", Value::Kind::Object,
                                &ok)) {
        ObjectReader obr(*ob, "observability", err);
        obs::ObsSpec& o = out->observability;
        if (!obr.str("trace_file", &o.trace_file) ||
            !obr.str("metrics_file", &o.metrics_file) ||
            !obr.number("sample_rate", &o.sample_rate) || !obr.finish())
            return false;
    } else if (!ok) {
        return false;
    }

    return r.finish();
}

// ---- serializer ----------------------------------------------------------

/** Shortest decimal that round-trips through strtod. */
std::string
fmtNumber(double v)
{
    if (v == std::floor(v) && std::fabs(v) < 1e15) {
        char buf[32];
        std::snprintf(buf, sizeof buf, "%lld",
                      static_cast<long long>(v));
        return buf;
    }
    for (int prec = 1; prec <= 17; ++prec) {
        char buf[40];
        std::snprintf(buf, sizeof buf, "%.*g", prec, v);
        if (std::strtod(buf, nullptr) == v)
            return buf;
    }
    return "0";
}

std::string
quote(const std::string& s)
{
    std::string out = "\"";
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          case '\r': out += "\\r"; break;
          default: out.push_back(c);
        }
    }
    out.push_back('"');
    return out;
}

/** "key": value fragments of one object, joined by the emitters. */
class Fragments
{
  public:
    void
    add(const char* key, std::string value)
    {
        parts_.push_back(fmt("\"%s\": ", key) + std::move(value));
    }

    void
    num(const char* key, double v, double def)
    {
        if (v != def)
            add(key, fmtNumber(v));
    }

    void
    str(const char* key, const std::string& v, const std::string& def)
    {
        if (v != def)
            add(key, quote(v));
    }

    void
    b(const char* key, bool v, bool def)
    {
        if (v != def)
            add(key, v ? "true" : "false");
    }

    bool empty() const { return parts_.empty(); }

    /** {"a": 1, "b": 2} */
    std::string
    inlineObj() const
    {
        std::string out = "{";
        for (size_t i = 0; i < parts_.size(); ++i) {
            if (i > 0)
                out += ", ";
            out += parts_[i];
        }
        return out + "}";
    }

    /** Multi-line object at `indent` spaces (keys one level deeper). */
    std::string
    multiline(int indent) const
    {
        std::string pad(static_cast<size_t>(indent), ' ');
        std::string out = "{\n";
        for (size_t i = 0; i < parts_.size(); ++i) {
            out += pad + "  " + parts_[i];
            out += i + 1 < parts_.size() ? ",\n" : "\n";
        }
        return out + pad + "}";
    }

  private:
    std::vector<std::string> parts_;
};

std::string
serviceText(const ServiceScenario& s)
{
    static const ServiceScenario kDef{};
    const cluster::ServiceSpec& d = kDef.spec;
    Fragments f;
    f.str("name", s.name, kDef.name);
    f.add("model", quote(model::modelName(s.spec.model)));
    f.num("peak_qps_frac", s.peak_qps_frac, kDef.peak_qps_frac);
    f.num("peak_qps", s.spec.load.peak_qps, d.load.peak_qps);
    f.num("trough_frac", s.spec.load.trough_frac, d.load.trough_frac);
    f.num("peak_hour", s.spec.load.peak_hour, d.load.peak_hour);
    f.num("noise_frac", s.spec.load.noise_frac, d.load.noise_frac);
    f.num("load_seed", static_cast<double>(s.spec.load.seed),
          static_cast<double>(d.load.seed));
    f.num("surge_hour", s.spec.load.surge_hour, d.load.surge_hour);
    f.num("surge_hours", s.spec.load.surge_hours, d.load.surge_hours);
    f.num("surge_factor", s.spec.load.surge_factor,
          d.load.surge_factor);
    f.num("sla_ms", s.spec.sla_ms, d.sla_ms);
    f.num("priority", s.spec.qos.priority, d.qos.priority);
    if (s.spec.qos.tier != d.qos.tier)
        f.add("tier", quote(qos::tierName(s.spec.qos.tier)));
    f.num("qos_sla_ms", s.spec.qos.sla_ms, d.qos.sla_ms);
    f.num("size_median", s.spec.sizes.median, d.sizes.median);
    f.num("size_sigma", s.spec.sizes.sigma, d.sizes.sigma);
    f.num("size_min", s.spec.sizes.min_size, d.sizes.min_size);
    f.num("size_max", s.spec.sizes.max_size, d.sizes.max_size);
    f.num("pooling_sigma", s.spec.pooling.sigma, d.pooling.sigma);
    return f.multiline(4);
}

}  // namespace

std::optional<ScenarioSpec>
parseSpec(const std::string& text, std::string* error)
{
    Value root;
    Parser p(text);
    if (!p.parse(root)) {
        if (error != nullptr)
            *error = p.error;
        return std::nullopt;
    }
    ScenarioSpec spec;
    std::string err;
    if (!bindSpec(root, &spec, &err)) {
        if (error != nullptr)
            *error = err;
        return std::nullopt;
    }
    return spec;
}

std::optional<ScenarioSpec>
loadSpecFile(const std::string& path, std::string* error)
{
    std::ifstream in(path);
    if (!in) {
        if (error != nullptr)
            *error = path + ": cannot open";
        return std::nullopt;
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    std::string err;
    auto spec = parseSpec(ss.str(), &err);
    if (!spec.has_value() && error != nullptr)
        *error = path + ": " + err;
    return spec;
}

std::string
toText(const ScenarioSpec& spec)
{
    static const ScenarioSpec kDef{};
    const cluster::TraceServeOptions& dv = kDef.serve;
    std::vector<std::string> lines;
    auto put = [&](const char* key, const std::string& value) {
        lines.push_back(fmt("  \"%s\": ", key) + value);
    };

    put("name", quote(spec.name));
    if (!spec.description.empty())
        put("description", quote(spec.description));

    if (!spec.fleet.empty()) {
        std::string out = "[\n";
        for (size_t i = 0; i < spec.fleet.size(); ++i) {
            Fragments f;
            f.add("type",
                  quote(hw::serverTypeName(spec.fleet[i].type)));
            f.num("slots", spec.fleet[i].shard_slots,
                  FleetEntry{}.shard_slots);
            out += "    " + f.inlineObj();
            out += i + 1 < spec.fleet.size() ? ",\n" : "\n";
        }
        put("fleet", out + "  ]");
    }

    if (!spec.services.empty()) {
        std::string out = "[\n";
        for (size_t i = 0; i < spec.services.size(); ++i) {
            out += "    " + serviceText(spec.services[i]);
            out += i + 1 < spec.services.size() ? ",\n" : "\n";
        }
        put("services", out + "  ]");
    }

    if (spec.provisioner != kDef.provisioner)
        put("provisioner",
            quote(provisionerKindName(spec.provisioner)));
    if (spec.nh_seed != kDef.nh_seed)
        put("nh_seed", fmtNumber(static_cast<double>(spec.nh_seed)));
    if (spec.lint != kDef.lint)
        put("lint", spec.lint ? "true" : "false");
    if (spec.serve.router != dv.router)
        put("router", quote(sim::routerPolicyName(spec.serve.router)));
    if (spec.serve.router_seed != dv.router_seed)
        put("router_seed",
            fmtNumber(static_cast<double>(spec.serve.router_seed)));

    {
        Fragments f;
        f.num("gain", spec.serve.feedback.gain, dv.feedback.gain);
        f.num("floor_frac", spec.serve.feedback.floor_frac,
              dv.feedback.floor_frac);
        if (!f.empty())
            put("feedback", f.inlineObj());
    }
    {
        const qos::AdmissionConfig& a = spec.serve.admission;
        const qos::AdmissionConfig& d = dv.admission;
        Fragments f;
        if (a.policy != d.policy)
            f.add("policy", quote(qos::admissionPolicyName(a.policy)));
        f.num("queue_cap", static_cast<double>(a.queue_cap),
              static_cast<double>(d.queue_cap));
        f.num("deadline_slack", a.deadline_slack, d.deadline_slack);
        f.b("cross_shard_retry", a.cross_shard_retry,
            d.cross_shard_retry);
        if (!f.empty())
            put("admission", f.inlineObj());
    }

    if (spec.serve.horizon_hours != dv.horizon_hours)
        put("horizon_hours", fmtNumber(spec.serve.horizon_hours));
    if (spec.serve.interval_hours != dv.interval_hours)
        put("interval_hours", fmtNumber(spec.serve.interval_hours));
    if (spec.serve.sla_ms != dv.sla_ms)
        put("sla_ms", fmtNumber(spec.serve.sla_ms));
    if (spec.serve.overprovision_rate != dv.overprovision_rate)
        put("overprovision_rate",
            fmtNumber(spec.serve.overprovision_rate));
    if (std::isfinite(spec.serve.power_cap_w))
        put("power_cap_w", fmtNumber(spec.serve.power_cap_w));

    if (!spec.serve.power_cap_schedule.empty()) {
        std::string out = "[\n";
        const auto& sched = spec.serve.power_cap_schedule;
        for (size_t i = 0; i < sched.size(); ++i) {
            Fragments f;
            f.add("from_hour", fmtNumber(sched[i].from_hour));
            f.add("cap_w", fmtNumber(sched[i].cap_w));
            out += "    " + f.inlineObj();
            out += i + 1 < sched.size() ? ",\n" : "\n";
        }
        put("power_cap_schedule", out + "  ]");
    }

    {
        const fault::FaultSpec& fs = spec.serve.faults;
        const fault::FaultSpec& d = dv.faults;
        Fragments f;
        f.num("seed", static_cast<double>(fs.seed),
              static_cast<double>(d.seed));
        f.num("crash_mtbf_hours", fs.crash_mtbf_hours,
              d.crash_mtbf_hours);
        f.num("crash_mttr_hours", fs.crash_mttr_hours,
              d.crash_mttr_hours);
        f.num("degrade_mtbf_hours", fs.degrade_mtbf_hours,
              d.degrade_mtbf_hours);
        f.num("degrade_mttr_hours", fs.degrade_mttr_hours,
              d.degrade_mttr_hours);
        f.num("degrade_slowdown", fs.degrade_slowdown,
              d.degrade_slowdown);
        if (!fs.events.empty()) {
            std::string ev = "[\n";
            for (size_t i = 0; i < fs.events.size(); ++i) {
                const fault::FaultEvent& e = fs.events[i];
                Fragments g;
                g.add("at_hour", fmtNumber(e.t_hours));
                g.num("fleet", e.fleet_index, 0);
                g.num("slot", e.slot, 0);
                // Always emitted: the state IS the event, even when
                // it is the (default) recovery back to healthy.
                g.add("state", quote(fault::healthStateName(e.state)));
                g.num("slowdown", e.slowdown, 1.0);
                ev += "      " + g.inlineObj();
                ev += i + 1 < fs.events.size() ? ",\n" : "\n";
            }
            f.add("events", ev + "    ]");
            put("faults", f.multiline(2));
        } else if (!f.empty()) {
            put("faults", f.inlineObj());
        }
    }

    {
        const workload::TraceOptions& t = spec.serve.trace;
        const workload::TraceOptions& d = dv.trace;
        Fragments f;
        f.num("bucket_seconds", t.bucket_seconds, d.bucket_seconds);
        f.num("time_compression", t.time_compression,
              d.time_compression);
        f.num("seed", static_cast<double>(t.seed),
              static_cast<double>(d.seed));
        if (!f.empty())
            put("trace", f.inlineObj());
    }
    {
        const ProfileSpec& p = spec.profile;
        const ProfileSpec& d = kDef.profile;
        Fragments f;
        f.str("table_cache", p.table_cache, d.table_cache);
        f.str("eval_memo", p.eval_memo, d.eval_memo);
        f.num("num_queries", p.num_queries, d.num_queries);
        f.num("warmup_queries", p.warmup_queries, d.warmup_queries);
        f.num("bisect_iters", p.bisect_iters, d.bisect_iters);
        f.num("seed", static_cast<double>(p.seed),
              static_cast<double>(d.seed));
        if (!f.empty())
            put("profile", f.inlineObj());
    }
    {
        const obs::ObsSpec& o = spec.observability;
        const obs::ObsSpec& d = kDef.observability;
        Fragments f;
        f.str("trace_file", o.trace_file, d.trace_file);
        f.str("metrics_file", o.metrics_file, d.metrics_file);
        f.num("sample_rate", o.sample_rate, d.sample_rate);
        if (!f.empty())
            put("observability", f.inlineObj());
    }

    std::string out = "{\n";
    for (size_t i = 0; i < lines.size(); ++i) {
        out += lines[i];
        out += i + 1 < lines.size() ? ",\n" : "\n";
    }
    return out + "}\n";
}

bool
saveSpecFile(const std::string& path, const ScenarioSpec& spec)
{
    std::ofstream out(path);
    if (!out)
        return false;
    out << toText(spec);
    return static_cast<bool>(out);
}

}  // namespace hercules::scenario
