#include "scenario/lint.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "hw/power.h"
#include "hw/server.h"
#include "model/model_zoo.h"

namespace hercules::scenario {

namespace {

/** Collects diagnostics; every check funnels through error()/warning(). */
class Linter
{
  public:
    Linter(const ScenarioSpec& spec, const core::EfficiencyTable* table)
        : spec_(spec), table_(table)
    {
    }

    std::vector<Diagnostic>
    run()
    {
        checkFleet();
        checkHorizon();
        checkPowerCap();
        checkServices();
        checkAdmission();
        checkFaults();
        checkObservability();
        checkPeakDemand();
        return std::move(out_);
    }

  private:
    void
    emit(const char* code, Severity sev, std::string path,
         std::string message)
    {
        out_.push_back(Diagnostic{code, sev, std::move(message),
                                  std::move(path)});
    }

    void
    error(const char* code, std::string path, std::string message)
    {
        emit(code, Severity::Error, std::move(path),
             std::move(message));
    }

    void
    warning(const char* code, std::string path, std::string message)
    {
        emit(code, Severity::Warning, std::move(path),
             std::move(message));
    }

    static std::string
    num(double v)
    {
        char buf[40];
        std::snprintf(buf, sizeof buf, "%g", v);
        return buf;
    }

    /** Idle draw (W) of the cheapest-to-idle fleet type with slots. */
    double
    cheapestIdleW(hw::ServerType* which) const
    {
        double best = std::numeric_limits<double>::infinity();
        for (const FleetEntry& e : spec_.fleet) {
            if (e.shard_slots <= 0)
                continue;
            double idle =
                hw::PowerModel(hw::serverSpec(e.type)).idlePowerW();
            if (idle < best) {
                best = idle;
                if (which != nullptr)
                    *which = e.type;
            }
        }
        return best;
    }

    /** True when the cap schedule parses as a usable timeline. */
    bool
    scheduleWellFormed() const
    {
        const auto& sched = spec_.serve.power_cap_schedule;
        for (size_t i = 0; i < sched.size(); ++i) {
            if (!(sched[i].from_hour >= 0.0) ||
                !std::isfinite(sched[i].from_hour) ||
                !(sched[i].cap_w >= 0.0))
                return false;
            if (i > 0 && sched[i].from_hour < sched[i - 1].from_hour)
                return false;
        }
        return true;
    }

    // ---- checks ----------------------------------------------------------

    void
    checkFleet()
    {
        if (spec_.fleet.empty()) {
            error("E101", "fleet",
                  "empty fleet: the scenario has no servers to "
                  "provision");
        }
        for (size_t i = 0; i < spec_.fleet.size(); ++i) {
            const FleetEntry& e = spec_.fleet[i];
            std::string path =
                "fleet[" + std::to_string(i) + "].slots";
            if (e.shard_slots < 0)
                error("E103", path,
                      std::string("negative shard slots (") +
                          std::to_string(e.shard_slots) + ") for " +
                          hw::serverTypeName(e.type));
            else if (e.shard_slots == 0)
                warning("W210", path,
                        std::string("fleet entry ") +
                            hw::serverTypeName(e.type) +
                            " has zero slots: it can never host a "
                            "shard (dead entry)");
        }
        if (spec_.services.empty())
            error("E102", "services",
                  "no services: the scenario has nothing to serve");
    }

    void
    checkHorizon()
    {
        if (!(spec_.serve.horizon_hours > 0.0))
            error("E104", "horizon_hours",
                  "horizon_hours must be positive (got " +
                      num(spec_.serve.horizon_hours) + ")");
        if (!(spec_.serve.interval_hours > 0.0))
            error("E104", "interval_hours",
                  "interval_hours must be positive (got " +
                      num(spec_.serve.interval_hours) + ")");
    }

    void
    checkPowerCap()
    {
        const auto& sched = spec_.serve.power_cap_schedule;
        for (size_t i = 0; i < sched.size(); ++i) {
            std::string path =
                "power_cap_schedule[" + std::to_string(i) + "]";
            if (!(sched[i].from_hour >= 0.0) ||
                !std::isfinite(sched[i].from_hour) ||
                !(sched[i].cap_w >= 0.0))
                error("E105", path,
                      "non-finite or negative schedule point "
                      "(from_hour " +
                          num(sched[i].from_hour) + ", cap_w " +
                          num(sched[i].cap_w) + ")");
            else if (i > 0 &&
                     sched[i].from_hour < sched[i - 1].from_hour)
                error("E105", path,
                      "power_cap_schedule not sorted by from_hour (" +
                          num(sched[i].from_hour) + " after " +
                          num(sched[i - 1].from_hour) + ")");
        }
        if (!scheduleWellFormed())
            return;  // E105 already reported; derived checks would lie

        hw::ServerType cheapest = hw::ServerType::T1;
        double idle_w = cheapestIdleW(&cheapest);
        auto below_idle = [&](double cap_w, const std::string& path) {
            if (std::isfinite(idle_w) && cap_w < idle_w)
                error("E106", path,
                      "power cap " + num(cap_w) +
                          " W is below the cheapest single-server "
                          "idle draw (" +
                          hw::serverTypeName(cheapest) + " idles at " +
                          num(idle_w) +
                          " W): every interval under this cap sheds "
                          "the whole fleet and serves nothing");
        };
        double scalar = spec_.serve.power_cap_w;
        if (std::isfinite(scalar))
            below_idle(scalar, "power_cap_w");
        double horizon = spec_.serve.horizon_hours;
        for (size_t i = 0; i < sched.size(); ++i) {
            std::string path =
                "power_cap_schedule[" + std::to_string(i) + "]";
            if (horizon > 0.0 && sched[i].from_hour >= horizon) {
                warning("W208", path,
                        "schedule point at hour " +
                            num(sched[i].from_hour) +
                            " starts at/after the " + num(horizon) +
                            "h horizon: dead segment");
                continue;
            }
            double effective = std::min(sched[i].cap_w, scalar);
            if (std::isfinite(effective))
                below_idle(effective, path + ".cap_w");
        }
    }

    void
    checkServices()
    {
        double horizon = spec_.serve.horizon_hours;
        double frac_sum = 0.0;
        bool any_frac = false;
        for (size_t i = 0; i < spec_.services.size(); ++i) {
            const ServiceScenario& s = spec_.services[i];
            std::string ctx = "services[" + std::to_string(i) + "]";
            const workload::DiurnalConfig& load = s.spec.load;
            if (load.surge_hours > 0.0 && load.surge_factor != 1.0 &&
                horizon > 0.0 && load.surge_hour >= horizon)
                warning("W201", ctx + ".surge_hour",
                        "surge window [" + num(load.surge_hour) +
                            "h, " +
                            num(load.surge_hour + load.surge_hours) +
                            "h) lies entirely outside the " +
                            num(horizon) + "h horizon: dead knob");
            if (s.peak_qps_frac > 0.0) {
                any_frac = true;
                frac_sum += s.peak_qps_frac;
            }
            if (table_ != nullptr)
                checkServiceFeasible(i, ctx);
        }
        if (any_frac && frac_sum > 1.0)
            warning("W206", "services",
                    "peak_qps_frac values sum to " + num(frac_sum) +
                        " > 1: at coincident peaks the services "
                        "demand more than the full fleet's capacity, "
                        "so provisioning can never fit");

        if (spec_.serve.router == sim::RouterPolicy::LatencyFeedback) {
            int slots = 0;
            for (const FleetEntry& e : spec_.fleet)
                slots += std::max(e.shard_slots, 0);
            if (slots == 1)
                warning("W205", "router",
                        "latency-feedback router over a single-shard "
                        "fleet is degenerate: with one shard per "
                        "service there is no alternative to shift "
                        "weight to");
        }
    }

    /** E130: with a table, a model no fleet type can serve is fatal. */
    void
    checkServiceFeasible(size_t i, const std::string& ctx)
    {
        const ServiceScenario& s = spec_.services[i];
        bool any_type = false, any_feasible = false;
        for (const FleetEntry& e : spec_.fleet) {
            const core::EfficiencyEntry* ent =
                table_->get(e.type, s.spec.model);
            if (ent == nullptr)
                continue;
            any_type = true;
            any_feasible = any_feasible || ent->feasible;
        }
        if (any_type && !any_feasible)
            error("E130", ctx + ".model",
                  std::string("model ") +
                      model::modelName(s.spec.model) +
                      " is infeasible on every fleet type in the "
                      "efficiency table: its SLA is tighter than the "
                      "hardware's minimum achievable latency, so no "
                      "shard can ever serve it");
    }

    void
    checkAdmission()
    {
        const qos::AdmissionConfig& a = spec_.serve.admission;
        if (a.policy == qos::AdmissionPolicy::Deadline &&
            a.deadline_slack > 1.0)
            warning("W207", "admission.deadline_slack",
                    "deadline_slack " + num(a.deadline_slack) +
                        " > 1 makes the admission deadline looser "
                        "than the SLA: queries admitted under it can "
                        "still violate, so the deadline cannot "
                        "protect the SLA (dead knob)");
    }

    void
    checkObservability()
    {
        const obs::ObsSpec& o = spec_.observability;
        // sample_rate only thins the per-query trace; with no
        // trace_file there is nothing to thin. Rate 1.0 is the
        // default (indistinguishable from "unset"), so only a
        // non-default rate is a dead knob.
        if (!o.tracing() && o.sample_rate != 1.0 && o.sample_rate > 0.0)
            warning("W211", "observability.sample_rate",
                    "sample_rate " + num(o.sample_rate) +
                        " is set but no trace_file is configured: "
                        "sampling only thins the per-query trace, so "
                        "the knob does nothing (dead knob)");
        if (o.tracing() && o.sample_rate == 0.0)
            warning("W211", "observability.trace_file",
                    "trace_file '" + o.trace_file +
                        "' is configured with sample_rate 0: every "
                        "query is skipped, so the trace will be "
                        "empty; drop trace_file or raise sample_rate");
    }

    void
    checkFaults()
    {
        const fault::FaultSpec& fs = spec_.serve.faults;
        auto bad_knob = [&](double v, const char* name) {
            if (!(v >= 0.0))
                error("E107", std::string("faults.") + name,
                      std::string(name) +
                          " must be non-negative (got " + num(v) +
                          ")");
        };
        bad_knob(fs.crash_mtbf_hours, "crash_mtbf_hours");
        bad_knob(fs.crash_mttr_hours, "crash_mttr_hours");
        bad_knob(fs.degrade_mtbf_hours, "degrade_mtbf_hours");
        bad_knob(fs.degrade_mttr_hours, "degrade_mttr_hours");
        if (!(fs.degrade_slowdown >= 1.0))
            error("E108", "faults.degrade_slowdown",
                  "degrade_slowdown must be >= 1 (got " +
                      num(fs.degrade_slowdown) + ")");

        if (fs.crash_mtbf_hours > 0.0 &&
            fs.crash_mttr_hours >= fs.crash_mtbf_hours)
            warning("W203", "faults.crash_mttr_hours",
                    "crash MTTR (" + num(fs.crash_mttr_hours) +
                        "h) >= MTBF (" + num(fs.crash_mtbf_hours) +
                        "h): servers spend more time crashed than "
                        "serving");
        if (fs.degrade_mtbf_hours > 0.0 &&
            fs.degrade_mttr_hours >= fs.degrade_mtbf_hours)
            warning("W204", "faults.degrade_mttr_hours",
                    "degrade MTTR (" + num(fs.degrade_mttr_hours) +
                        "h) >= MTBF (" + num(fs.degrade_mtbf_hours) +
                        "h): servers spend more time degraded than "
                        "healthy");

        double horizon = spec_.serve.horizon_hours;
        for (size_t i = 0; i < fs.events.size(); ++i) {
            const fault::FaultEvent& e = fs.events[i];
            std::string ctx =
                "faults.events[" + std::to_string(i) + "]";
            if (!(e.t_hours >= 0.0))
                error("E110", ctx + ".at_hour",
                      "negative (or NaN) at_hour " + num(e.t_hours));
            if (e.fleet_index < 0 ||
                e.fleet_index >= static_cast<int>(spec_.fleet.size())) {
                error("E111", ctx + ".fleet",
                      "fleet index " + std::to_string(e.fleet_index) +
                          " does not exist (fleet has " +
                          std::to_string(spec_.fleet.size()) +
                          " entries)");
            } else if (e.slot < 0 ||
                       e.slot >=
                           spec_.fleet[e.fleet_index].shard_slots) {
                error("E112", ctx + ".slot",
                      "slot " + std::to_string(e.slot) +
                          " does not exist (" +
                          hw::serverTypeName(
                              spec_.fleet[e.fleet_index].type) +
                          " has " +
                          std::to_string(
                              spec_.fleet[e.fleet_index].shard_slots) +
                          " slots)");
            }
            if (e.state == fault::HealthState::Degraded &&
                !(e.slowdown >= 1.0))
                error("E113", ctx + ".slowdown",
                      "degraded slowdown must be >= 1 (got " +
                          num(e.slowdown) + ")");
            if (e.t_hours >= horizon && horizon > 0.0 &&
                e.t_hours >= 0.0)
                warning("W202", ctx + ".at_hour",
                        "event at hour " + num(e.t_hours) +
                            " fires at/after the " + num(horizon) +
                            "h horizon: it can never apply");
        }
    }

    /**
     * W209: with a table, warn when the tightest cap anywhere in the
     * horizon cannot even power the forecast peak demand of the
     * must-serve priority tier (the services shed last — every
     * service when priorities are uniform).
     */
    void
    checkPeakDemand()
    {
        if (table_ == nullptr || spec_.services.empty() ||
            !scheduleWellFormed())
            return;

        double min_cap = spec_.serve.power_cap_w;
        double horizon = spec_.serve.horizon_hours;
        for (const cluster::PowerCapPoint& p :
             spec_.serve.power_cap_schedule)
            if (horizon <= 0.0 || p.from_hour < horizon)
                min_cap = std::min(min_cap, p.cap_w);
        if (!std::isfinite(min_cap))
            return;

        // Resolve fraction-of-capacity peaks the same way run() does,
        // on a copy: lint never mutates the spec.
        ScenarioSpec resolved = spec_;
        resolvePeaks(resolved, *table_);

        int top = 0;
        for (const ServiceScenario& s : resolved.services)
            top = std::max(top, s.spec.qos.priority);

        // Cheapest watts that serve each must-serve service's peak:
        // its demand divided by the best QPS/W any fleet type offers.
        double demand_w = 0.0;
        bool estimable = false;
        for (const ServiceScenario& s : resolved.services) {
            if (s.spec.qos.priority != top)
                continue;
            double best_qpw = 0.0;
            for (const FleetEntry& e : spec_.fleet) {
                const core::EfficiencyEntry* ent =
                    table_->get(e.type, s.spec.model);
                if (ent != nullptr && ent->feasible)
                    best_qpw = std::max(best_qpw, ent->qps_per_watt);
            }
            if (best_qpw > 0.0 && s.spec.load.peak_qps > 0.0) {
                demand_w += s.spec.load.peak_qps / best_qpw;
                estimable = true;
            }
        }
        if (estimable && min_cap < demand_w)
            warning("W209", "power_cap_w",
                    "tightest power cap in the horizon (" +
                        num(min_cap) +
                        " W) is below the forecast peak demand of "
                        "the must-serve priority tier (needs at "
                        "least " +
                        num(demand_w) +
                        " W at the fleet's best efficiency): "
                        "must-serve services will shed capacity at "
                        "peak");
    }

    const ScenarioSpec& spec_;
    const core::EfficiencyTable* table_;
    std::vector<Diagnostic> out_;
};

}  // namespace

const char*
severityName(Severity s)
{
    return s == Severity::Error ? "error" : "warning";
}

std::string
formatDiagnostic(const Diagnostic& d)
{
    std::string out = d.code;
    out += ' ';
    out += severityName(d.severity);
    if (!d.path.empty()) {
        out += " at ";
        out += d.path;
    }
    out += ": ";
    out += d.message;
    return out;
}

std::vector<Diagnostic>
lint(const ScenarioSpec& spec, const core::EfficiencyTable* table)
{
    return Linter(spec, table).run();
}

bool
hasErrors(const std::vector<Diagnostic>& ds)
{
    for (const Diagnostic& d : ds)
        if (d.severity == Severity::Error)
            return true;
    return false;
}

}  // namespace hercules::scenario
