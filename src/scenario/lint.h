/**
 * @file
 * Static semantic analysis of scenario specs: scenario::lint() walks a
 * parsed ScenarioSpec — *without simulating anything* — and reports
 * every configuration that either cannot run at all or silently cannot
 * do what it says (a power cap no server fits under, a fault process
 * that keeps the fleet dead, a feedback router with nothing to choose
 * between).
 *
 * Every diagnostic carries a stable code: E1xx are errors (the spec
 * cannot run, or the run is provably meaningless — scenario::run()
 * would fatal or produce an all-dark replay) and W2xx are warnings
 * (the spec runs, but a knob is dead or the configuration is
 * degenerate). Codes are append-only across PRs: tooling (CI's
 * scenario-lint step, tests/test_lint.cc) pins them.
 *
 * The checks needing an efficiency table (QPS -> watts, per-type
 * feasibility) run only when one is passed in; linting stays cheap and
 * simulation-free either way — a table is only ever *read*, typically
 * from a CSV cache.
 *
 * Three surfaces consume this pass:
 *  - `online_serving_sim --lint FILE` (exit 1 on errors, 0 otherwise,
 *    all diagnostics printed);
 *  - the opt-in `"lint": true` spec key: scenario::run() rejects a
 *    spec with lint errors before profiling;
 *  - CI lints every shipped .scn in scenarios/ expecting zero
 *    diagnostics (pinned by tests/test_lint.cc too).
 */
#pragma once

#include <string>
#include <vector>

#include "core/efficiency_table.h"
#include "scenario/scenario.h"

namespace hercules::scenario {

/** Diagnostic severity. */
enum class Severity {
    /** The spec cannot run, or the run is provably meaningless. */
    Error,
    /** The spec runs, but part of it is dead or degenerate. */
    Warning,
};

/** @return display name ("error", "warning"). */
const char* severityName(Severity s);

/** One finding of the lint pass. */
struct Diagnostic
{
    /**
     * Stable code, "E1xx" for errors / "W2xx" for warnings (table in
     * src/scenario/README.md). Append-only: codes never change meaning
     * or get reused.
     */
    std::string code;
    Severity severity = Severity::Error;
    /** Human-readable explanation, including the offending values. */
    std::string message;
    /**
     * Spec path that triggered the finding, e.g. "services[1].sla_ms"
     * or "power_cap_schedule[0].cap_w". Empty for whole-spec findings.
     */
    std::string path;
};

/** "E106 error at power_cap_w: ..." — the --lint output line. */
std::string formatDiagnostic(const Diagnostic& d);

/**
 * Statically analyze `spec`. Diagnostics are reported in a
 * deterministic order (check order, then spec order); a clean spec
 * returns an empty vector.
 *
 * With `table` null only the table-free checks run; passing the
 * efficiency table the spec would serve from additionally enables the
 * hardware-feasibility checks (E130, W209). lint() never simulates:
 * tables come from ScenarioSpec::profile.table_cache or a prior run.
 *
 * Errors are a superset of validateSpec(): any spec validateSpec()
 * rejects lints with at least one E1xx, so a lint-clean spec never
 * fatals inside scenario::run() for structural reasons.
 */
std::vector<Diagnostic> lint(const ScenarioSpec& spec,
                             const core::EfficiencyTable* table = nullptr);

/** @return true when `ds` contains at least one error. */
bool hasErrors(const std::vector<Diagnostic>& ds);

}  // namespace hercules::scenario
