#include "scenario/scenario.h"

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <memory>

#include "obs/self_profile.h"
#include "scenario/lint.h"
#include "util/logging.h"

namespace hercules::scenario {

namespace {

void
validate(const ScenarioSpec& spec)
{
    std::string err;
    if (!validateSpec(spec, &err))
        fatal("%s", err.c_str());
}

std::unique_ptr<cluster::Provisioner>
makeProvisioner(const ScenarioSpec& spec)
{
    switch (spec.provisioner) {
      case ProvisionerKind::Hercules:
        return std::make_unique<cluster::HerculesProvisioner>();
      case ProvisionerKind::Greedy:
        return std::make_unique<cluster::GreedyProvisioner>();
      case ProvisionerKind::PriorityAware:
        return std::make_unique<cluster::PriorityAwareProvisioner>();
      case ProvisionerKind::Nh:
        return std::make_unique<cluster::NhProvisioner>(spec.nh_seed);
    }
    panic("makeProvisioner: bad kind %d",
          static_cast<int>(spec.provisioner));
}

}  // namespace

const char*
provisionerKindName(ProvisionerKind k)
{
    switch (k) {
      case ProvisionerKind::Hercules: return "hercules";
      case ProvisionerKind::Greedy: return "greedy";
      case ProvisionerKind::PriorityAware: return "priority-aware";
      case ProvisionerKind::Nh: return "nh";
    }
    panic("provisionerKindName: bad kind %d", static_cast<int>(k));
}

std::optional<ProvisionerKind>
parseProvisionerKind(const std::string& name)
{
    for (ProvisionerKind k :
         {ProvisionerKind::Hercules, ProvisionerKind::Greedy,
          ProvisionerKind::PriorityAware, ProvisionerKind::Nh})
        if (name == provisionerKindName(k))
            return k;
    return std::nullopt;
}

bool
validateSpec(const ScenarioSpec& spec, std::string* error)
{
    auto fail = [&](const std::string& msg) {
        if (error != nullptr)
            *error = "scenario '" + spec.name + "': " + msg;
        return false;
    };
    if (spec.fleet.empty())
        return fail("empty fleet");
    if (spec.services.empty())
        return fail("no services");
    for (const FleetEntry& e : spec.fleet)
        if (e.shard_slots < 0)
            return fail(std::string("negative slots for ") +
                        hw::serverTypeName(e.type));
    if (spec.serve.horizon_hours <= 0.0 ||
        spec.serve.interval_hours <= 0.0)
        return fail("non-positive horizon/interval");
    const auto& sched = spec.serve.power_cap_schedule;
    for (size_t i = 0; i < sched.size(); ++i) {
        if (!(sched[i].from_hour >= 0.0) ||
            !std::isfinite(sched[i].from_hour) ||
            !(sched[i].cap_w >= 0.0))
            return fail("power_cap_schedule[" + std::to_string(i) +
                        "]: non-finite or negative point");
        if (i > 0 && sched[i].from_hour < sched[i - 1].from_hour)
            return fail("power_cap_schedule not sorted by from_hour");
    }
    const fault::FaultSpec& fs = spec.serve.faults;
    if (!(fs.crash_mtbf_hours >= 0.0) ||
        !(fs.crash_mttr_hours >= 0.0) ||
        !(fs.degrade_mtbf_hours >= 0.0) ||
        !(fs.degrade_mttr_hours >= 0.0))
        return fail("faults: negative (or NaN) MTBF/MTTR");
    if (!(fs.degrade_slowdown >= 1.0))
        return fail("faults: degrade_slowdown must be >= 1");
    for (size_t i = 0; i < fs.events.size(); ++i) {
        const fault::FaultEvent& e = fs.events[i];
        const std::string ctx =
            "faults.events[" + std::to_string(i) + "]: ";
        if (!(e.t_hours >= 0.0))
            return fail(ctx + "negative (or NaN) at_hour");
        if (e.fleet_index < 0 ||
            e.fleet_index >= static_cast<int>(spec.fleet.size()))
            return fail(ctx + "fleet index out of range");
        if (e.slot < 0 ||
            e.slot >= spec.fleet[e.fleet_index].shard_slots)
            return fail(ctx + "slot out of range");
        if (e.state == fault::HealthState::Degraded &&
            !(e.slowdown >= 1.0))
            return fail(ctx + "degraded slowdown must be >= 1");
    }
    const obs::ObsSpec& ob = spec.observability;
    if (!(ob.sample_rate >= 0.0) || !(ob.sample_rate <= 1.0))
        return fail("observability.sample_rate must be in [0, 1]");
    return true;
}

core::EfficiencyTable
profileTable(const ScenarioSpec& spec)
{
    validate(spec);
    if (!spec.profile.table_cache.empty() &&
        std::filesystem::exists(spec.profile.table_cache)) {
        auto cached =
            core::EfficiencyTable::tryReadCsv(spec.profile.table_cache);
        if (cached.has_value())
            return *cached;
    }

    core::ProfilerOptions popt;
    popt.search.measure.sim.num_queries = spec.profile.num_queries;
    popt.search.measure.sim.warmup_queries =
        spec.profile.warmup_queries;
    popt.search.measure.bisect_iters = spec.profile.bisect_iters;
    popt.search.measure.sim.seed = spec.profile.seed;
    for (const FleetEntry& e : spec.fleet)
        popt.servers.push_back(e.type);
    for (const ServiceScenario& s : spec.services) {
        bool seen = false;
        for (model::ModelId m : popt.models)
            seen = seen || m == s.spec.model;
        if (!seen)
            popt.models.push_back(s.spec.model);
    }

    // One engine for the whole grid; the memo spill warm-starts
    // repeated runs (and CI jobs restoring it from an actions cache).
    core::EvalEngine engine(popt.search.eval);
    if (!spec.profile.eval_memo.empty())
        engine.loadCache(spec.profile.eval_memo);
    popt.search.engine = &engine;

    core::EfficiencyTable table = core::offlineProfile(popt);

    if (!spec.profile.eval_memo.empty())
        engine.saveCache(spec.profile.eval_memo);
    if (!spec.profile.table_cache.empty())
        table.writeCsv(spec.profile.table_cache);
    return table;
}

void
resolvePeaks(ScenarioSpec& spec, const core::EfficiencyTable& table)
{
    for (ServiceScenario& s : spec.services) {
        if (s.name.empty())
            s.name = model::modelName(s.spec.model);
        if (s.peak_qps_frac <= 0.0)
            continue;
        double capacity = 0.0;
        for (const FleetEntry& e : spec.fleet) {
            const core::EfficiencyEntry* ent =
                table.get(e.type, s.spec.model);
            if (ent != nullptr && ent->feasible)
                capacity += e.shard_slots * ent->qps;
        }
        s.spec.load.peak_qps = s.peak_qps_frac * capacity;
        s.peak_qps_frac = 0.0;
    }
}

ScenarioResult
run(const ScenarioSpec& spec, const core::EfficiencyTable* table)
{
    // Opt-in lint gate: reject statically-broken specs before any
    // profiling or trace generation spends time on them.
    if (spec.lint) {
        std::vector<Diagnostic> ds = lint(spec, table);
        std::string errs;
        for (const Diagnostic& d : ds)
            if (d.severity == Severity::Error)
                errs += (errs.empty() ? "" : "; ") +
                        formatDiagnostic(d);
        if (!errs.empty())
            fatal("scenario '%s' rejected by lint gate: %s",
                  spec.name.c_str(), errs.c_str());
    }
    validate(spec);

    ScenarioResult out;
    obs::WallTimer profile_timer;
    out.table = table != nullptr ? *table : profileTable(spec);
    out.profile_wall_ms = profile_timer.elapsedMs();

    out.resolved = spec;
    std::vector<hw::ServerType> fleet;
    std::vector<int> slots;
    for (const FleetEntry& e : spec.fleet) {
        fleet.push_back(e.type);
        slots.push_back(e.shard_slots);
    }

    // Resolve fraction-of-capacity peaks against the profiled table
    // and fill display names, so `resolved` replays without either.
    resolvePeaks(out.resolved, out.table);
    std::vector<cluster::ServiceSpec> services;
    for (const ServiceScenario& s : out.resolved.services)
        services.push_back(s.spec);

    std::unique_ptr<cluster::Provisioner> policy =
        makeProvisioner(spec);

    // Telemetry (spec "observability" block): attach a sink for the
    // serve phase, then emit the configured files. With both files
    // empty no sink is attached — the pre-telemetry path, bit-exact.
    obs::Telemetry telemetry(spec.observability);
    cluster::TraceServeOptions sopt = spec.serve;
    if (spec.observability.enabled())
        sopt.telemetry = &telemetry;

    obs::WallTimer serve_timer;
    out.serve = cluster::serveTraces(out.table, fleet, slots, services,
                                     *policy, sopt);
    out.serve_wall_ms = serve_timer.elapsedMs();

    if (spec.observability.enabled()) {
        telemetry.writeTraceFile();
        telemetry.writeMetricsFile();
    }
    return out;
}

bool
writeResultJson(const std::string& path, const ScenarioResult& r,
                const char* git_sha, const std::string& generated_at)
{
    FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr)
        return false;
    const ScenarioSpec& spec = r.resolved;
    const sim::ClusterSimResult& sim = r.serve.sim;

    std::fprintf(f, "{\n");
    std::fprintf(f, "  \"git_sha\": \"%s\",\n", git_sha);
    std::fprintf(
        f, "  \"generated_at\": \"%s\",\n",
        generated_at.empty() ? isoUtcTimestamp().c_str()
                             : generated_at.c_str());
    std::fprintf(f, "  \"scenario\": \"%s\",\n", spec.name.c_str());
    std::fprintf(f, "  \"provisioner\": \"%s\",\n",
                 provisionerKindName(spec.provisioner));
    std::fprintf(f, "  \"router\": \"%s\",\n",
                 sim::routerPolicyName(spec.serve.router));
    std::fprintf(f, "  \"admission\": \"%s\",\n",
                 qos::admissionPolicyName(spec.serve.admission.policy));
    std::fprintf(f, "  \"horizon_hours\": %.2f,\n",
                 spec.serve.horizon_hours);
    std::fprintf(f, "  \"interval_hours\": %.2f,\n",
                 spec.serve.interval_hours);
    std::fprintf(f, "  \"time_compression\": %.0f,\n",
                 spec.serve.trace.time_compression);
    if (std::isfinite(spec.serve.power_cap_w))
        std::fprintf(f, "  \"power_cap_w\": %.2f,\n",
                     spec.serve.power_cap_w);
    if (!spec.serve.power_cap_schedule.empty()) {
        std::fprintf(f, "  \"power_cap_schedule\": [");
        const auto& sched = spec.serve.power_cap_schedule;
        for (size_t i = 0; i < sched.size(); ++i)
            std::fprintf(f, "%s{\"from_hour\": %.2f, \"cap_w\": %.2f}",
                         i ? ", " : "", sched[i].from_hour,
                         sched[i].cap_w);
        std::fprintf(f, "],\n");
    }
    std::fprintf(f, "  \"estimated_r\": %.4f,\n", r.serve.estimated_r);
    std::fprintf(f, "  \"trace_queries\": %zu,\n",
                 r.serve.trace_queries);
    std::fprintf(f, "  \"reprovisions\": %d,\n", r.serve.reprovisions);
    std::fprintf(f, "  \"shard_slots\": %d,\n", r.serve.shard_slots);
    std::fprintf(f, "  \"profile_wall_ms\": %.1f,\n",
                 r.profile_wall_ms);
    std::fprintf(f, "  \"serve_wall_ms\": %.1f,\n", r.serve_wall_ms);

    std::fprintf(f, "  \"services\": [\n");
    for (size_t s = 0; s < spec.services.size(); ++s) {
        const ServiceScenario& svc = spec.services[s];
        const sim::ServiceRunStats& st = sim.services[s];
        std::fprintf(
            f,
            "    {\"name\": \"%s\", \"model\": \"%s\", "
            "\"peak_qps\": %.1f, \"peak_hour\": %.2f, "
            "\"priority\": %d, \"tier\": \"%s\", \"sla_ms\": %.2f, "
            "\"capacity_qps\": %.1f, \"completed\": %zu, "
            "\"rejected\": %zu, \"dropped\": %zu, \"p50_ms\": %.4f, "
            "\"p99_ms\": %.4f, \"sla_violation_rate\": %.6f}%s\n",
            svc.name.c_str(), model::modelName(svc.spec.model),
            svc.spec.load.peak_qps, svc.spec.load.peak_hour,
            svc.spec.qos.priority, qos::tierName(svc.spec.qos.tier),
            r.serve.service_sla_ms[s],
            r.serve.service_capacity_qps[s], st.completed,
            st.rejected, st.dropped, st.p50_ms, st.p99_ms,
            st.sla_violation_rate,
            s + 1 < spec.services.size() ? "," : "");
    }
    std::fprintf(f, "  ],\n");

    std::fprintf(f, "  \"completed\": %zu,\n", sim.completed);
    std::fprintf(f, "  \"rejected\": %zu,\n", sim.rejected);
    std::fprintf(f, "  \"dropped\": %zu,\n", sim.dropped);
    std::fprintf(f, "  \"admission_retries\": %zu,\n",
                 sim.admission_retries);
    std::fprintf(f, "  \"p50_ms\": %.4f,\n", sim.p50_ms);
    std::fprintf(f, "  \"p99_ms\": %.4f,\n", sim.p99_ms);
    std::fprintf(f, "  \"sla_violations\": %zu,\n",
                 sim.sla_violations);
    std::fprintf(f, "  \"sla_violation_rate\": %.6f,\n",
                 sim.sla_violation_rate);
    std::fprintf(f, "  \"avg_provisioned_power_w\": %.2f,\n",
                 sim.avg_provisioned_power_w);
    std::fprintf(f, "  \"avg_consumed_power_w\": %.2f,\n",
                 sim.avg_consumed_power_w);

    // Fault timeline: every applied health transition. Always emitted
    // (empty array on fault-free runs) so consumers never key-check.
    std::fprintf(f, "  \"health_transitions\": [");
    for (size_t i = 0; i < sim.health_transitions.size(); ++i) {
        const sim::HealthTransition& ht = sim.health_transitions[i];
        std::fprintf(f,
                     "%s\n    {\"t_s\": %.2f, \"shard\": %d, "
                     "\"service\": %d, \"from\": \"%s\", \"to\": \"%s\", "
                     "\"slowdown\": %.2f, \"killed_inflight\": %zu}",
                     i ? "," : "", ht.t_s, ht.shard, ht.service,
                     fault::healthStateName(ht.from),
                     fault::healthStateName(ht.to), ht.slowdown,
                     ht.killed_inflight);
    }
    std::fprintf(f, "%s],\n",
                 sim.health_transitions.empty() ? "" : "\n  ");

    // DES self-profile: event counts are deterministic, wall timings
    // are provenance (vary run to run).
    std::fprintf(f, "  \"des_events_executed\": %llu,\n",
                 static_cast<unsigned long long>(sim.des.events_executed));
    std::fprintf(f, "  \"des_peak_event_queue_depth\": %zu,\n",
                 sim.des.peak_event_queue_depth);
    std::fprintf(f, "  \"des_events_per_sec\": %.0f,\n",
                 sim.des.events_per_sec);

    hercules::sim::writeIntervalArraysJson(f, sim.intervals, "  ");
    std::fprintf(f, "}\n");
    std::fclose(f);
    return true;
}

}  // namespace hercules::scenario
