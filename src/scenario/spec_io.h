/**
 * @file
 * Text serialization of ScenarioSpec: a strict JSON subset (objects,
 * arrays, strings, numbers, booleans — no null, no comments) with
 *
 *  - exact round-trip: toText(parse(toText(s))) == toText(s) for every
 *    spec, with doubles printed at the shortest precision that
 *    round-trips through strtod;
 *  - canonical output: fields appear in schema order and fields equal
 *    to their default are omitted (which is also how the format
 *    serializes infinities — an uncapped power_cap_w never appears);
 *  - line/key-precise errors: duplicate keys are rejected at parse
 *    time, unknown keys at bind time, both reporting the offending
 *    key and its 1-based line ("scenario.scn: line 12: unknown key
 *    'peek_qps' in services[0]").
 *
 * The grammar is documented in src/scenario/README.md.
 */
#pragma once

#include <optional>
#include <string>

#include "scenario/scenario.h"

namespace hercules::scenario {

/**
 * Parse a scenario spec from text.
 *
 * @param text  the spec source.
 * @param error out (may be null): on failure, a message carrying the
 *              1-based line and the offending key where applicable.
 * @return the spec, or nullopt on any syntax/schema error.
 */
std::optional<ScenarioSpec> parseSpec(const std::string& text,
                                      std::string* error = nullptr);

/**
 * Load + parse a scenario file. Errors are prefixed with the path
 * ("scenarios/foo.scn: line 12: ...").
 */
std::optional<ScenarioSpec> loadSpecFile(const std::string& path,
                                         std::string* error = nullptr);

/** Serialize to canonical text (ends with a newline). */
std::string toText(const ScenarioSpec& spec);

/**
 * Write toText(spec) to `path`.
 * @return true when the file was written.
 */
bool saveSpecFile(const std::string& path, const ScenarioSpec& spec);

}  // namespace hercules::scenario
