/**
 * @file
 * The declarative scenario API: one spec, one entry point for every
 * serving experiment.
 *
 * A ScenarioSpec composes the *whole* experiment the online-serving
 * stack can express — the heterogeneous shard fleet, N co-served
 * services (model, diurnal curve incl. unforecast surge windows,
 * query-size/pooling distributions, SLA, QoS class), the query router
 * and its feedback knobs, the provisioning policy, admission control,
 * horizon/interval, and a time-varying power-cap schedule — plus the
 * offline-profiling knobs that size the efficiency table the run is
 * built from. Specs serialize to a text (JSON-subset) format with
 * exact round-trip and line/key-precise parse errors (spec_io.h), so
 * an experiment is a file in scenarios/, not a new .cpp.
 *
 * scenario::run() is the single entry point: it profiles (or loads)
 * the efficiency table, resolves fraction-of-capacity peak loads and
 * per-service SLAs, builds the provisioner, and drives
 * cluster::serveTraces. A spec whose fields mirror a hand-wired
 * serveTraces call reproduces it bit-identically (golden-pinned in
 * tests/test_scenario.cc).
 */
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "cluster/serving.h"
#include "core/efficiency_table.h"
#include "core/profiler.h"
#include "obs/telemetry.h"

namespace hercules::scenario {

/** One server type of the scenario's shard fleet. */
struct FleetEntry
{
    hw::ServerType type = hw::ServerType::T2;
    /** Simulated shard slots of this type (the availability Nh). */
    int shard_slots = 1;
};

/** One co-served service of the scenario. */
struct ServiceScenario
{
    /** Display name; empty = the model's name. */
    std::string name;
    /**
     * Peak load as a fraction of the service's *full-fleet* capacity
     * (every slot of every feasible type serving only it), resolved
     * against the profiled efficiency table at run time. > 0 overrides
     * spec.load.peak_qps — this is how a scenario file stays portable
     * across profiling configurations.
     */
    double peak_qps_frac = 0.0;
    /** The underlying service spec (model, curve, SLA, QoS, sizes). */
    cluster::ServiceSpec spec;
};

/** The cluster provisioning policies a scenario can pick. */
enum class ProvisionerKind {
    Hercules,
    Greedy,
    PriorityAware,
    Nh,
};

/** @return display name ("hercules", "greedy", "priority-aware", "nh"). */
const char* provisionerKindName(ProvisionerKind k);

/** Parse a name as printed by provisionerKindName(). */
std::optional<ProvisionerKind> parseProvisionerKind(
    const std::string& name);

/**
 * How the efficiency table the run is built from is obtained. Defaults
 * mirror the library measurement defaults (sim::SimOptions /
 * sim::MeasureOptions); scenario files meant for CI smoke set smaller
 * values.
 */
struct ProfileSpec
{
    /**
     * Efficiency-table CSV cache: loaded when it exists and parses,
     * written after a fresh profile. Empty = always profile.
     */
    std::string table_cache;
    /**
     * EvalEngine memo spill (core::EvalEngine::saveCache format):
     * loaded before profiling, saved after, so repeated runs (and CI
     * jobs restoring the file from an actions cache) warm-start the
     * measurement layer instead of re-simulating. Empty = off.
     */
    std::string eval_memo;
    int num_queries = 600;     ///< queries per measurement probe
    int warmup_queries = 120;  ///< excluded from probe statistics
    int bisect_iters = 6;      ///< QPS bisection refinement steps
    uint64_t seed = 42;        ///< measurement RNG seed
};

/** The whole experiment, declaratively. */
struct ScenarioSpec
{
    std::string name = "scenario";
    std::string description;
    /** The heterogeneous shard fleet; must be non-empty to run. */
    std::vector<FleetEntry> fleet;
    /** Co-served services; must be non-empty to run. */
    std::vector<ServiceScenario> services;
    ProvisionerKind provisioner = ProvisionerKind::Hercules;
    /** Seed of the heterogeneity-oblivious NH provisioner. */
    uint64_t nh_seed = 17;
    /**
     * Opt-in lint gate (spec key "lint"): run() statically analyzes
     * the spec (scenario/lint.h) and rejects it on any E1xx error
     * before profiling — a malformed 24h replay fails in microseconds
     * instead of minutes. Warnings never block. Default off: legacy
     * specs run exactly as before.
     */
    bool lint = false;
    ProfileSpec profile;
    /**
     * Everything cluster::serveTraces consumes: horizon/interval,
     * fallback SLA, over-provision rate, router + feedback, admission,
     * scalar power cap and the time-varying cap schedule, and the
     * arrival-trace options (compression, bucket, seed).
     */
    cluster::TraceServeOptions serve;
    /**
     * Telemetry emission (spec block "observability"): per-query JSONL
     * trace and/or metrics export, with deterministic query-id-hash
     * sampling. Both files empty (the default) = telemetry off —
     * bit-identical to a build without the subsystem; non-empty only
     * *adds* output files, never changes a simulated statistic.
     */
    obs::ObsSpec observability;
};

/** Outcome of one scenario run. */
struct ScenarioResult
{
    /**
     * The spec as executed: peak_qps resolved from peak_qps_frac,
     * service names filled in. Serializing this spec reproduces the
     * run without the table (peak_qps_frac is cleared once resolved).
     */
    ScenarioSpec resolved;
    /** The efficiency table the run was built from. */
    core::EfficiencyTable table;
    /** The serving outcome (aggregates, per-service, per-interval). */
    cluster::MultiServeResult serve;
    double profile_wall_ms = 0.0;  ///< table profile/load wall time
    double serve_wall_ms = 0.0;    ///< serveTraces wall time
};

/**
 * Profile (or load) the efficiency table a spec's run needs: the
 * (fleet type x service model) grid under the spec's measurement
 * knobs, with the CSV cache and EvalEngine memo spill of
 * ScenarioSpec::profile applied.
 */
core::EfficiencyTable profileTable(const ScenarioSpec& spec);

/**
 * Resolve every service's peak_qps_frac against a profiled table, in
 * place: load.peak_qps = frac * full-fleet capacity, frac cleared.
 * run() does this internally; callers that derive further knobs from
 * the resolved loads (e.g. a power-cap sweep) use it up front.
 */
void resolvePeaks(ScenarioSpec& spec,
                  const core::EfficiencyTable& table);

/**
 * Semantic validation of a parsed spec — the same checks run()
 * enforces fatally (non-empty fleet/services, positive slots and
 * horizon/interval, sorted power-cap schedule), non-fatally so lint
 * paths (--parse-only, CI scenario-smoke) can reject a spec that
 * parses but cannot run.
 * @return true when the spec is runnable; else fills *error.
 */
bool validateSpec(const ScenarioSpec& spec,
                  std::string* error = nullptr);

/**
 * Run one scenario end to end — THE entry point every serving
 * experiment goes through.
 *
 * With `table` null the efficiency table comes from profileTable();
 * passing one (e.g. shared across a sweep of spec deltas) skips
 * profiling. Fatals on an invalid spec (empty fleet/services,
 * non-positive horizon, unsorted cap schedule).
 */
ScenarioResult run(const ScenarioSpec& spec,
                   const core::EfficiencyTable* table = nullptr);

/**
 * Write a BENCH_scenario.json-style result file: provenance header
 * (caller-supplied git SHA + ISO timestamp), the resolved spec's
 * headline knobs, run aggregates, per-service stats and the
 * per-interval trajectory arrays.
 * @return true when the file was written.
 */
bool writeResultJson(const std::string& path, const ScenarioResult& r,
                     const char* git_sha = "unknown",
                     const std::string& generated_at = "");

}  // namespace hercules::scenario
