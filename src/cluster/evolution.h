/**
 * @file
 * The synthetic model-evolution scenario of Fig 16: three services
 * whose traffic migrates linearly from the legacy DLRM workloads
 * (RMC1/RMC2/RMC3) to the newer, higher-complexity models
 * (DIN/DIEN/MT-WnD) over a model-update cycle.
 */
#pragma once

#include <vector>

#include "cluster/cluster_manager.h"

namespace hercules::cluster {

/** One service: a legacy model being replaced by a successor. */
struct EvolutionService
{
    model::ModelId legacy;
    model::ModelId successor;
    workload::DiurnalConfig load;  ///< total service traffic
};

/** @return the paper's three services (RMC1->DIN, RMC2->DIEN,
 *  RMC3->MT-WnD) with synchronized 50K-QPS-peak diurnal loads. */
std::vector<EvolutionService> defaultEvolutionServices();

/**
 * Workload set at evolution stage `s` in [0, 1]: every service splits
 * its traffic (1-s) to the legacy model and s to the successor.
 * Workloads with zero share are dropped.
 */
std::vector<ClusterWorkload> evolutionWorkloads(
    const std::vector<EvolutionService>& services, double s);

/**
 * The models participating at stage `s` (legacy + successor set),
 * matching evolutionWorkloads() order.
 */
std::vector<model::ModelId> evolutionModels(
    const std::vector<EvolutionService>& services, double s);

}  // namespace hercules::cluster
