/**
 * @file
 * Trace-driven online serving (Fig 13, end to end): a heterogeneous
 * shard fleet built from the efficiency table serves diurnal arrival
 * traces through per-service query routers, while the chosen
 * Provisioner re-provisions the active shard set every interval.
 * Released shards drain their in-flight queries before going dark; the
 * provisioned power budget of each interval is enforced (an optional
 * global cap additionally trims the allocation).
 *
 * Two entry points:
 *  - serveTrace():  one service on the shard fleet (the original
 *    single-tenant replay; now a thin wrapper over serveTraces);
 *  - serveTraces(): N services co-served on one *shared* heterogeneous
 *    fleet — per-service diurnal curves with (typically) phase-shifted
 *    peaks merged into one tagged arrival stream, the multi-model
 *    ProvisionProblem solved jointly every interval, and one
 *    cross-service power cap shedding the least energy-efficient
 *    (server type, service) pair first.
 *
 * This replaces the purely analytic cluster::runCluster() scaling for
 * experiments that need real tail latency: every query flows through a
 * simulated ServerInstance shard.
 */
#pragma once

#include <limits>
#include <vector>

#include "cluster/provision.h"
#include "core/efficiency_table.h"
#include "fault/fault.h"
#include "qos/qos.h"
#include "sim/cluster_sim.h"
#include "workload/diurnal.h"
#include "workload/trace_gen.h"

namespace hercules::cluster {

/**
 * One step of a time-varying power-cap schedule: from `from_hour` on
 * (until the next point's from_hour) the global cap is `cap_w`.
 */
struct PowerCapPoint
{
    double from_hour = 0.0;  ///< step start (hours into the horizon)
    double cap_w = std::numeric_limits<double>::infinity();
};

/**
 * The effective global power cap at `t_hours`: the cap_w of the last
 * schedule point with from_hour <= t_hours, combined (min) with the
 * scalar `cap_w` floor. Before the first point — or with an empty
 * schedule — only the scalar applies, so legacy single-cap runs are
 * unchanged. `schedule` must be sorted ascending by from_hour.
 */
double powerCapAt(const std::vector<PowerCapPoint>& schedule,
                  double cap_w, double t_hours);

/** Options of one trace-driven serving run. */
struct TraceServeOptions
{
    double horizon_hours = 24.0;
    /** Re-provisioning (and statistics) interval. */
    double interval_hours = 0.5;
    /** Latency SLA the violation rate is measured against. */
    double sla_ms = 25.0;
    /** Over-provision rate R; negative = estimate from the curve. */
    double overprovision_rate = -1.0;
    /** Global power cap (W); the allocation is trimmed to fit. */
    double power_cap_w = std::numeric_limits<double>::infinity();
    /**
     * Time-varying cap schedule (e.g. an evening brownout), applied on
     * top of power_cap_w via powerCapAt(). Points must be sorted
     * ascending by from_hour with finite, non-negative cap_w;
     * serveTraces rejects anything else (fatal).
     */
    std::vector<PowerCapPoint> power_cap_schedule;
    sim::RouterPolicy router = sim::RouterPolicy::HerculesWeighted;
    uint64_t router_seed = 1;
    /**
     * Per-shard admission control (src/qos/): default policy `none`
     * keeps today's unbounded queues, bit-identical.
     */
    qos::AdmissionConfig admission{};
    /** Weight-update knobs of the latency-feedback router. */
    qos::FeedbackConfig feedback{};
    /**
     * Fault injection (src/fault/): scripted and/or seeded crash and
     * straggler events against physical (fleet index, slot) servers.
     * Each event hits every service personality hosted by that server;
     * at every interval boundary the provisioner sees only surviving
     * capacity, so it activates replacement slots — still under the
     * power cap — and the run *self-heals*. The default spec injects
     * nothing and is bit-identical to the pre-fault engine.
     */
    fault::FaultSpec faults{};
    /** Arrival-trace options; horizon is overridden by horizon_hours. */
    workload::TraceOptions trace{};
    /**
     * Optional telemetry sink (src/obs/), forwarded to ClusterSim. Not
     * owned; null = telemetry off. Attaching one never changes any
     * simulated statistic — it only records what happened.
     */
    obs::Telemetry* telemetry = nullptr;
};

/** One co-served service of a multi-service run. */
struct ServiceSpec
{
    model::ModelId model = model::ModelId::DlrmRmc1;
    /** Its diurnal curve (phase-shift peak_hour between services). */
    workload::DiurnalConfig load{};
    /** Per-service SLA (ms); <= 0 uses the model-zoo default. */
    double sla_ms = 0.0;
    /**
     * QoS class: priority steers the power-cap shedding order (higher
     * keeps capacity longer), tier steers provisioning (throughput-
     * tier services are provisioned to horizon-mean demand, not peak),
     * and a positive qos.sla_ms overrides sla_ms. Defaults are
     * behaviour-preserving.
     */
    qos::ServiceClass qos{};
    workload::QuerySizeDist sizes{};
    workload::PoolingDist pooling{};
};

/** Result of one single-service trace-driven serving run. */
struct TraceServeResult
{
    sim::ClusterSimResult sim;   ///< per-interval + aggregate serving
    double estimated_r = 0.0;    ///< the over-provision rate used
    size_t trace_queries = 0;    ///< arrivals in the generated trace
    int reprovisions = 0;        ///< intervals that changed the fleet
    int shard_slots = 0;         ///< shards built (feasible types only)
    double fleet_capacity_qps = 0.0;  ///< sum of shard tuple QPS
};

/** Result of one multi-service co-serving run. */
struct MultiServeResult
{
    sim::ClusterSimResult sim;  ///< aggregates + per-service stats
    double estimated_r = 0.0;   ///< the over-provision rate used (max)
    std::vector<double> service_r;  ///< per-service curve estimate
    size_t trace_queries = 0;   ///< arrivals in the merged trace
    int reprovisions = 0;       ///< intervals that changed the fleet
    int shard_slots = 0;        ///< shard instances built, all services
    /** Full-fleet capacity per service (every slot on that service). */
    std::vector<double> service_capacity_qps;
    /** The SLA each service was held to (resolved from spec / zoo). */
    std::vector<double> service_sla_ms;
};

/**
 * Shed whole servers from a (server type x service) activation-count
 * matrix until its provisioned power fits `cap_w` — the cross-service
 * shedding policy of the global power cap.
 *
 * Victim order: strictly ascending service priority first (every
 * server of a lower-priority service is shed before any higher-
 * priority pair loses one), then least energy-efficient (QPS/W) pair
 * within the priority level. Exact QPS/W ties break deterministically
 * by (type, service) scan order — the lowest (h, m) pair wins. With
 * `priorities` empty (or all equal) the order is pure QPS/W, the
 * pre-QoS behaviour.
 *
 * @param problem    supplies PairPerf for every (type, service) pair.
 * @param counts     counts[h][m], mutated in place.
 * @param cap_w      the cap; +inf disables shedding.
 * @param power_w    out: provisioned power of the final counts.
 * @param priorities per-service shedding priority (higher keeps
 *                   capacity longer), indexed like the problem's
 *                   models; empty = all equal.
 * @return true when at least one server was shed.
 */
bool shedToPowerCap(const ProvisionProblem& problem,
                    std::vector<std::vector<int>>& counts, double cap_w,
                    double* power_w,
                    const std::vector<int>& priorities = {});

/**
 * Serve one model's diurnal trace on a sharded heterogeneous fleet.
 *
 * @param table       offline-profiled efficiency tuples (provides both
 *                    the per-type optimal scheduling configs that the
 *                    shards run and the QPS weights the router and
 *                    provisioner use).
 * @param fleet       server types in play.
 * @param shard_slots simulated shards available per type (same order
 *                    as `fleet`). These stand in for the availability
 *                    Nh of a production fleet at simulation scale.
 * @param model_id    the served workload.
 * @param load_cfg    its diurnal curve (peak_qps should be sized
 *                    against the shard fleet's aggregate capacity).
 * @param policy      provisioning policy invoked every interval.
 * @param opt         serving options.
 */
TraceServeResult serveTrace(const core::EfficiencyTable& table,
                            const std::vector<hw::ServerType>& fleet,
                            const std::vector<int>& shard_slots,
                            model::ModelId model_id,
                            const workload::DiurnalConfig& load_cfg,
                            Provisioner& policy,
                            const TraceServeOptions& opt);

/**
 * Co-serve N services' merged diurnal traces on one shared
 * heterogeneous fleet.
 *
 * The fleet is materialized as one shard instance per (server type,
 * service) pair and slot — the per-service "personalities" of the
 * physical pool. Each interval the multi-model ProvisionProblem is
 * solved jointly over the current per-service loads; the resulting
 * N_{h,m} activation (which never exceeds shard_slots[h] per type
 * across services, so the physical availability is honoured) picks
 * which personalities route. A finite opt.power_cap_w is enforced
 * across all services via shedToPowerCap().
 *
 * Queries are routed per service (each service has its own router over
 * its own active shards) and accounted against the service's SLA
 * (ServiceSpec::sla_ms, or the model-zoo default); dropped arrivals
 * count as violations. opt.sla_ms is only the fallback for services
 * without either.
 *
 * @param services at least one service; Query::service_id values in
 *                 the merged trace index this vector.
 */
MultiServeResult serveTraces(const core::EfficiencyTable& table,
                             const std::vector<hw::ServerType>& fleet,
                             const std::vector<int>& shard_slots,
                             const std::vector<ServiceSpec>& services,
                             Provisioner& policy,
                             const TraceServeOptions& opt);

}  // namespace hercules::cluster
