/**
 * @file
 * Trace-driven online serving (Fig 13, end to end): a heterogeneous
 * shard fleet built from the efficiency table serves a diurnal arrival
 * trace through a query router, while the chosen Provisioner
 * re-provisions the active shard set every interval. Released shards
 * drain their in-flight queries before going dark; the provisioned
 * power budget of each interval is enforced (an optional global cap
 * additionally trims the allocation).
 *
 * This replaces the purely analytic cluster::runCluster() scaling for
 * experiments that need real tail latency: every query flows through a
 * simulated ServerInstance shard.
 */
#pragma once

#include <limits>
#include <vector>

#include "cluster/provision.h"
#include "core/efficiency_table.h"
#include "sim/cluster_sim.h"
#include "workload/diurnal.h"
#include "workload/trace_gen.h"

namespace hercules::cluster {

/** Options of one trace-driven serving run. */
struct TraceServeOptions
{
    double horizon_hours = 24.0;
    /** Re-provisioning (and statistics) interval. */
    double interval_hours = 0.5;
    /** Latency SLA the violation rate is measured against. */
    double sla_ms = 25.0;
    /** Over-provision rate R; negative = estimate from the curve. */
    double overprovision_rate = -1.0;
    /** Global power cap (W); the allocation is trimmed to fit. */
    double power_cap_w = std::numeric_limits<double>::infinity();
    sim::RouterPolicy router = sim::RouterPolicy::HerculesWeighted;
    uint64_t router_seed = 1;
    /** Arrival-trace options; horizon is overridden by horizon_hours. */
    workload::TraceOptions trace{};
};

/** Result of one trace-driven serving run. */
struct TraceServeResult
{
    sim::ClusterSimResult sim;   ///< per-interval + aggregate serving
    double estimated_r = 0.0;    ///< the over-provision rate used
    size_t trace_queries = 0;    ///< arrivals in the generated trace
    int reprovisions = 0;        ///< intervals that changed the fleet
    int shard_slots = 0;         ///< shards built (feasible types only)
    double fleet_capacity_qps = 0.0;  ///< sum of shard tuple QPS
};

/**
 * Serve one model's diurnal trace on a sharded heterogeneous fleet.
 *
 * @param table       offline-profiled efficiency tuples (provides both
 *                    the per-type optimal scheduling configs that the
 *                    shards run and the QPS weights the router and
 *                    provisioner use).
 * @param fleet       server types in play.
 * @param shard_slots simulated shards available per type (same order
 *                    as `fleet`). These stand in for the availability
 *                    Nh of a production fleet at simulation scale.
 * @param model_id    the served workload.
 * @param load_cfg    its diurnal curve (peak_qps should be sized
 *                    against the shard fleet's aggregate capacity).
 * @param policy      provisioning policy invoked every interval.
 * @param opt         serving options.
 */
TraceServeResult serveTrace(const core::EfficiencyTable& table,
                            const std::vector<hw::ServerType>& fleet,
                            const std::vector<int>& shard_slots,
                            model::ModelId model_id,
                            const workload::DiurnalConfig& load_cfg,
                            Provisioner& policy,
                            const TraceServeOptions& opt);

}  // namespace hercules::cluster
