#include "cluster/cluster_manager.h"

#include <algorithm>

#include "util/logging.h"

namespace hercules::cluster {

double
estimateOverprovisionRate(const workload::DiurnalLoad& load,
                          double interval_hours, double horizon_hours)
{
    double worst = 0.0;
    // Forecast view: the rate is estimated from load *history*, so an
    // unforecast surge window must not leak into it.
    for (double t = 0.0; t + interval_hours <= horizon_hours;
         t += interval_hours / 4.0) {
        double now = load.forecastAt(t);
        double next = load.forecastAt(t + interval_hours);
        if (now > 1e-9)
            worst = std::max(worst, (next - now) / now);
    }
    return std::clamp(worst, 0.0, 1.0);
}

ClusterRunResult
runCluster(const ProvisionProblem& problem,
           const std::vector<ClusterWorkload>& workloads,
           Provisioner& policy, const ClusterManagerOptions& opt)
{
    if (static_cast<int>(workloads.size()) != problem.numModels())
        fatal("runCluster: %zu workloads but problem has %d models",
              workloads.size(), problem.numModels());

    std::vector<workload::DiurnalLoad> curves;
    curves.reserve(workloads.size());
    for (const auto& w : workloads)
        curves.emplace_back(w.load);

    double r = opt.overprovision_rate;
    if (r < 0.0) {
        r = 0.0;
        for (const auto& c : curves)
            r = std::max(r, estimateOverprovisionRate(
                                c, opt.interval_hours, opt.horizon_hours));
    }

    ClusterRunResult result;
    double power_sum = 0.0;
    double server_sum = 0.0;
    for (double t = 0.0; t < opt.horizon_hours; t += opt.interval_hours) {
        IntervalRecord rec;
        rec.t_hours = t;
        for (const auto& c : curves)
            rec.loads.push_back(c.loadAt(t));
        rec.alloc = policy.provision(problem, rec.loads, r);
        rec.activated_servers = rec.alloc.activatedServers();
        rec.provisioned_power_w = rec.alloc.provisionedPowerW(problem);
        rec.satisfied = rec.alloc.satisfies(problem, rec.loads, r) &&
                        rec.alloc.withinAvailability(problem);
        if (!rec.satisfied)
            ++result.unsatisfied_intervals;
        result.peak_power_w =
            std::max(result.peak_power_w, rec.provisioned_power_w);
        result.peak_servers =
            std::max(result.peak_servers, rec.activated_servers);
        power_sum += rec.provisioned_power_w;
        server_sum += rec.activated_servers;
        result.intervals.push_back(std::move(rec));
    }
    if (!result.intervals.empty()) {
        result.avg_power_w =
            power_sum / static_cast<double>(result.intervals.size());
        result.avg_servers =
            server_sum / static_cast<double>(result.intervals.size());
    }
    return result;
}

}  // namespace hercules::cluster
