#include "cluster/evolution.h"

#include "util/logging.h"

namespace hercules::cluster {

std::vector<EvolutionService>
defaultEvolutionServices()
{
    std::vector<EvolutionService> services;
    workload::DiurnalConfig base;
    base.peak_qps = 50'000.0;
    base.trough_frac = 0.40;
    base.peak_hour = 20.0;

    EvolutionService s1{model::ModelId::DlrmRmc1, model::ModelId::Din,
                        base};
    s1.load.seed = 11;
    EvolutionService s2{model::ModelId::DlrmRmc2, model::ModelId::Dien,
                        base};
    s2.load.seed = 22;
    s2.load.peak_hour = 19.5;  // synchronized but not identical
    EvolutionService s3{model::ModelId::DlrmRmc3, model::ModelId::MtWnd,
                        base};
    s3.load.seed = 33;
    s3.load.peak_hour = 20.5;
    return {s1, s2, s3};
}

std::vector<ClusterWorkload>
evolutionWorkloads(const std::vector<EvolutionService>& services, double s)
{
    if (s < 0.0 || s > 1.0)
        fatal("evolutionWorkloads: stage %f outside [0,1]", s);
    std::vector<ClusterWorkload> out;
    for (const auto& svc : services) {
        if (s < 1.0) {
            ClusterWorkload w;
            w.model = svc.legacy;
            w.load = svc.load;
            w.load.peak_qps = svc.load.peak_qps * (1.0 - s);
            out.push_back(w);
        }
        if (s > 0.0) {
            ClusterWorkload w;
            w.model = svc.successor;
            w.load = svc.load;
            w.load.peak_qps = svc.load.peak_qps * s;
            w.load.seed = svc.load.seed + 1000;  // distinct ripple
            out.push_back(w);
        }
    }
    return out;
}

std::vector<model::ModelId>
evolutionModels(const std::vector<EvolutionService>& services, double s)
{
    std::vector<model::ModelId> out;
    for (const auto& w : evolutionWorkloads(services, s))
        out.push_back(w.model);
    return out;
}

}  // namespace hercules::cluster
