/**
 * @file
 * Dense two-phase primal simplex solver for the cluster-provisioning
 * linear program (paper Eq. (1)–(3)). The paper uses an off-the-shelf
 * interior-point solver [12]; for the problem sizes involved (tens of
 * variables, a handful of constraints) simplex reaches the same optimum
 * and is self-contained. Bland's rule guarantees termination.
 */
#pragma once

#include <vector>

namespace hercules::cluster {

/**
 * minimize    c' x
 * subject to  A x <= b,  x >= 0
 *
 * Rows of `b` may be negative (encode `>=` constraints by negating).
 */
struct LpProblem
{
    std::vector<double> c;               ///< objective, size n
    std::vector<std::vector<double>> a;  ///< constraints, m x n
    std::vector<double> b;               ///< right-hand side, size m
};

/** Solver outcome. */
struct LpResult
{
    enum class Status { Optimal, Infeasible, Unbounded };

    Status status = Status::Infeasible;
    double objective = 0.0;
    std::vector<double> x;  ///< primal solution (size n when Optimal)
};

/** Solve with two-phase primal simplex (Bland's anti-cycling rule). */
LpResult solveLp(const LpProblem& p);

}  // namespace hercules::cluster
