#include "cluster/lp.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/logging.h"

namespace hercules::cluster {

namespace {

constexpr double kEps = 1e-9;

/**
 * Dense simplex tableau.
 *
 * Layout: rows 0..m-1 are constraints (columns: structural + slack +
 * artificial + rhs), row m is the phase objective. `basis[i]` is the
 * column currently basic in row i.
 */
class Tableau
{
  public:
    Tableau(const LpProblem& p)
        : m_(static_cast<int>(p.b.size())),
          n_(static_cast<int>(p.c.size()))
    {
        // Normalize rows so every rhs is non-negative; rows that
        // started negative get an artificial variable (their slack
        // column enters with coefficient -1 and cannot be basic).
        std::vector<bool> needs_artificial(m_, false);
        int num_art = 0;
        for (int i = 0; i < m_; ++i) {
            if (p.b[i] < 0.0) {
                needs_artificial[i] = true;
                ++num_art;
            }
        }
        cols_ = n_ + m_ + num_art + 1;  // + slack + artificial + rhs
        rows_.assign(m_ + 1, std::vector<double>(cols_, 0.0));
        basis_.assign(m_, -1);

        int art = 0;
        for (int i = 0; i < m_; ++i) {
            double sign = needs_artificial[i] ? -1.0 : 1.0;
            for (int j = 0; j < n_; ++j)
                rows_[i][j] = sign * p.a[i][j];
            rows_[i][n_ + i] = sign;  // slack
            rows_[i][cols_ - 1] = sign * p.b[i];
            if (needs_artificial[i]) {
                int acol = n_ + m_ + art++;
                rows_[i][acol] = 1.0;
                basis_[i] = acol;
            } else {
                basis_[i] = n_ + i;
            }
        }
        first_artificial_ = n_ + m_;
        num_artificial_ = num_art;
    }

    /** Run phase 1; @return true when a feasible basis exists. */
    bool
    phase1()
    {
        if (num_artificial_ == 0)
            return true;
        // Objective: minimize sum of artificials.
        auto& obj = rows_[m_];
        std::fill(obj.begin(), obj.end(), 0.0);
        for (int a = 0; a < num_artificial_; ++a)
            obj[first_artificial_ + a] = 1.0;
        // Price out the basic artificials.
        for (int i = 0; i < m_; ++i) {
            if (basis_[i] >= first_artificial_)
                subtractRow(m_, i, 1.0);
        }
        if (!iterate(first_artificial_ + num_artificial_))
            return false;  // unbounded phase 1 cannot happen, treat as fail
        if (rows_[m_][cols_ - 1] < -kEps)
            return false;  // positive artificial sum -> infeasible
        // Pivot any artificial still in the basis out (degenerate).
        for (int i = 0; i < m_; ++i) {
            if (basis_[i] < first_artificial_)
                continue;
            bool pivoted = false;
            for (int j = 0; j < first_artificial_ && !pivoted; ++j) {
                if (std::fabs(rows_[i][j]) > kEps) {
                    pivot(i, j);
                    pivoted = true;
                }
            }
            // An all-zero row is redundant; the artificial stays basic
            // at value zero, harmless for phase 2.
        }
        return true;
    }

    /** Run phase 2 with the real objective; @return false = unbounded. */
    bool
    phase2(const std::vector<double>& c)
    {
        auto& obj = rows_[m_];
        std::fill(obj.begin(), obj.end(), 0.0);
        for (int j = 0; j < n_; ++j)
            obj[j] = c[j];
        for (int i = 0; i < m_; ++i) {
            int bj = basis_[i];
            if (bj < n_ && std::fabs(c[bj]) > kEps)
                subtractRow(m_, i, c[bj]);
        }
        return iterate(first_artificial_);  // artificials stay non-basic
    }

    /** Extract the structural solution. */
    std::vector<double>
    solution() const
    {
        std::vector<double> x(static_cast<size_t>(n_), 0.0);
        for (int i = 0; i < m_; ++i) {
            if (basis_[i] < n_)
                x[static_cast<size_t>(basis_[i])] = rows_[i][cols_ - 1];
        }
        return x;
    }

    /** @return current objective value (phase 2). */
    double
    objective(const std::vector<double>& c) const
    {
        std::vector<double> x = solution();
        double v = 0.0;
        for (int j = 0; j < n_; ++j)
            v += c[static_cast<size_t>(j)] * x[static_cast<size_t>(j)];
        return v;
    }

  private:
    /** rows_[dst] -= factor * rows_[src]. */
    void
    subtractRow(int dst, int src, double factor)
    {
        for (int j = 0; j < cols_; ++j)
            rows_[dst][j] -= factor * rows_[src][j];
    }

    void
    pivot(int row, int col)
    {
        double p = rows_[row][col];
        if (std::fabs(p) < kEps)
            panic("simplex: zero pivot");
        for (int j = 0; j < cols_; ++j)
            rows_[row][j] /= p;
        for (int i = 0; i <= m_; ++i) {
            if (i == row)
                continue;
            double f = rows_[i][col];
            if (std::fabs(f) > kEps)
                subtractRow(i, row, f);
        }
        basis_[row] = col;
    }

    /**
     * Simplex iterations with Bland's rule over columns [0, col_limit).
     * @return false when the LP is unbounded in the current objective.
     */
    bool
    iterate(int col_limit)
    {
        const auto& obj = rows_[m_];
        for (int guard = 0; guard < 100000; ++guard) {
            // Bland: entering = smallest index with negative reduced
            // cost (minimization: improve while any obj coeff < 0).
            int enter = -1;
            for (int j = 0; j < col_limit; ++j) {
                if (obj[j] < -kEps) {
                    enter = j;
                    break;
                }
            }
            if (enter < 0)
                return true;  // optimal
            // Leaving: min ratio, ties broken by smallest basis index.
            int leave = -1;
            double best_ratio = std::numeric_limits<double>::infinity();
            for (int i = 0; i < m_; ++i) {
                double a = rows_[i][enter];
                if (a > kEps) {
                    double ratio = rows_[i][cols_ - 1] / a;
                    if (ratio < best_ratio - kEps ||
                        (ratio < best_ratio + kEps &&
                         (leave < 0 || basis_[i] < basis_[leave]))) {
                        best_ratio = ratio;
                        leave = i;
                    }
                }
            }
            if (leave < 0)
                return false;  // unbounded
            pivot(leave, enter);
        }
        panic("simplex: iteration guard exceeded");
    }

    int m_;
    int n_;
    int cols_ = 0;
    int first_artificial_ = 0;
    int num_artificial_ = 0;
    std::vector<std::vector<double>> rows_;
    std::vector<int> basis_;
};

}  // namespace

LpResult
solveLp(const LpProblem& p)
{
    if (p.c.empty())
        fatal("solveLp: no variables");
    if (p.a.size() != p.b.size())
        fatal("solveLp: %zu constraint rows but %zu rhs entries",
              p.a.size(), p.b.size());
    for (const auto& row : p.a)
        if (row.size() != p.c.size())
            fatal("solveLp: constraint width mismatch");

    LpResult r;
    Tableau t(p);
    if (!t.phase1()) {
        r.status = LpResult::Status::Infeasible;
        return r;
    }
    if (!t.phase2(p.c)) {
        r.status = LpResult::Status::Unbounded;
        return r;
    }
    r.status = LpResult::Status::Optimal;
    r.x = t.solution();
    r.objective = t.objective(p.c);
    return r;
}

}  // namespace hercules::cluster
