/**
 * @file
 * The online-serving cluster manager (Fig 13): every provisioning
 * interval it reads the diurnal loads, invokes a provisioning policy
 * against the efficiency-tuple table, and activates/releases servers.
 * Records per-interval capacity and provisioned power for the Fig
 * 8/16/17 experiments.
 */
#pragma once

#include <memory>
#include <vector>

#include "cluster/provision.h"
#include "workload/diurnal.h"

namespace hercules::cluster {

/** One workload being served by the cluster. */
struct ClusterWorkload
{
    model::ModelId model = model::ModelId::DlrmRmc1;
    workload::DiurnalConfig load{};
};

/** Options of a cluster-serving run. */
struct ClusterManagerOptions
{
    double horizon_hours = 24.0;
    /** Coarse re-provisioning interval (paper: tens of minutes). */
    double interval_hours = 0.5;
    /**
     * Over-provision rate R; negative = estimate from the load curves'
     * maximum inter-interval increase (the paper's history profiling).
     */
    double overprovision_rate = -1.0;
};

/** Snapshot of one provisioning interval. */
struct IntervalRecord
{
    double t_hours = 0.0;
    std::vector<double> loads;       ///< per workload
    Allocation alloc;
    int activated_servers = 0;
    double provisioned_power_w = 0.0;
    bool satisfied = false;          ///< loads met within availability
};

/** Aggregates of a full run. */
struct ClusterRunResult
{
    std::vector<IntervalRecord> intervals;
    double peak_power_w = 0.0;
    double avg_power_w = 0.0;
    int peak_servers = 0;
    double avg_servers = 0.0;
    int unsatisfied_intervals = 0;
};

/**
 * Estimate the over-provision rate R from a load curve: the maximum
 * relative load increase across one provisioning interval.
 */
double estimateOverprovisionRate(const workload::DiurnalLoad& load,
                                 double interval_hours,
                                 double horizon_hours = 24.0);

/** Run the cluster manager over the horizon with a given policy. */
ClusterRunResult runCluster(const ProvisionProblem& problem,
                            const std::vector<ClusterWorkload>& workloads,
                            Provisioner& policy,
                            const ClusterManagerOptions& opt);

}  // namespace hercules::cluster
